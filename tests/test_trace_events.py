"""Event-trace correctness: scheduler equality, derived views, export.

The tracing contract (DESIGN.md) is that a traced run is *observationally
free*: tracing changes no statistic and no schedule, and — the strong
property — the fast park/wake scheduler and the exhaustive reference loop
produce the **byte-identical event log** on the same workload, because the
fast path synthesizes exactly the stall spans it skipped.  These tests
pin that contract over every equivalence topology, then check the derived
views (occupancy timelines, link transits, waterfall analysis) and the
Chrome-trace export against it.
"""

from __future__ import annotations

import dataclasses
import json

import numpy as np
import pytest

from repro.dataflow import Tracer, analyze_trace, load_chrome_trace, simulate
from repro.dataflow.tracing import analyze_run
from repro.nn import export_model

from .conftest import make_tiny_chain_model, make_tiny_resnet_model


def _images(seed: int, n: int = 2, size: int = 16) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.integers(0, 4, size=(n, size, size, 3), dtype=np.int64)


def _half_partition(graph):
    names = [n for n in graph.topological() if n != graph.input_name]
    half = len(names) // 2
    return [names[:half], names[half:]]


def _case(name: str):
    if name in ("chain", "bitops"):
        graph = export_model(make_tiny_chain_model(), (16, 16, 3), name="tiny-chain")
    else:
        graph = export_model(make_tiny_resnet_model(), (16, 16, 3), name="tiny-resnet")
    kwargs = {}
    if name == "bitops":
        kwargs["use_bitops"] = True
    if name == "multi_dfe":
        kwargs["partition"] = _half_partition(graph)
    return graph, kwargs


TOPOLOGIES = ["chain", "resnet", "bitops", "multi_dfe"]


@pytest.fixture(scope="module")
def traced_runs():
    """One traced fast + exhaustive run per topology (they are not cheap)."""
    runs = {}
    for name in TOPOLOGIES:
        graph, kwargs = _case(name)
        images = _images(0)
        t_fast, t_slow = Tracer(), Tracer()
        fast = simulate(graph, images, fast=True, trace=t_fast, **kwargs)
        slow = simulate(graph, images, fast=False, trace=t_slow, **kwargs)
        runs[name] = (fast, slow, t_fast, t_slow)
    return runs


# -- scheduler equality -------------------------------------------------


@pytest.mark.parametrize("topology", TOPOLOGIES)
def test_fast_and_exhaustive_traces_identical(traced_runs, topology):
    """The tentpole property: both schedulers emit the same event log."""
    _, _, t_fast, t_slow = traced_runs[topology]
    assert t_fast.state() == t_slow.state()


@pytest.mark.parametrize("topology", TOPOLOGIES)
def test_tracing_is_observationally_free(traced_runs, topology):
    """A traced run has bit-identical stats to an untraced one."""
    graph, kwargs = _case(topology)
    fast, _, _, _ = traced_runs[topology]
    bare = simulate(graph, _images(0), fast=True, **kwargs)
    assert bare.cycles == fast.cycles
    assert bare.run.completion_cycles == fast.run.completion_cycles
    assert np.array_equal(bare.output, fast.output)
    for name, stats in bare.run.kernel_stats.items():
        assert dataclasses.asdict(fast.run.kernel_stats[name]) == dataclasses.asdict(stats)
    for name, stats in bare.run.stream_stats.items():
        assert dataclasses.asdict(fast.run.stream_stats[name]) == dataclasses.asdict(stats)


# -- span/event structure ----------------------------------------------


def test_spans_tile_the_run_exactly(traced_runs):
    """Per kernel: spans are disjoint, contiguous, and cover [0, cycles)."""
    fast, _, tracer, _ = traced_runs["chain"]
    for kernel, spans in tracer.kernel_spans.items():
        assert spans, f"{kernel}: no spans"
        assert spans[0].start == 0, kernel
        for a, b in zip(spans, spans[1:]):
            assert b.start == a.end + 1, f"{kernel}: gap/overlap at {a}..{b}"
        assert spans[-1].end == fast.cycles - 1, kernel


def test_span_cycles_match_aggregate_counters(traced_runs):
    """Summed span lengths reproduce every KernelStats counter."""
    fast, _, tracer, _ = traced_runs["resnet"]
    for name, stats in fast.run.kernel_stats.items():
        by_kind: dict[str, int] = {}
        for span in tracer.kernel_spans[name]:
            by_kind[span.kind] = by_kind.get(span.kind, 0) + span.cycles
        assert by_kind.get("compute", 0) == stats.active_cycles, name
        assert by_kind.get("starved", 0) == stats.input_starved_cycles, name
        assert by_kind.get("blocked", 0) == stats.output_blocked_cycles, name
        assert by_kind.get("idle", 0) == stats.idle_cycles, name


def test_stream_events_match_aggregate_counters(traced_runs):
    """Push/pop event counts and reject span cycles match StreamStats."""
    fast, _, tracer, _ = traced_runs["chain"]
    for name, stats in fast.run.stream_stats.items():
        events = tracer.stream_events[name]
        assert sum(1 for e in events if e.kind == "push") == stats.pushes, name
        assert sum(1 for e in events if e.kind == "pop") == stats.pops, name
        rejected = sum(s.cycles for s in tracer.reject_spans[name])
        assert rejected == stats.full_rejections, name
        # max_occupancy is the instantaneous peak, visible in the raw
        # per-event occupancies (the step timeline keeps only each cycle's
        # final depth, which can sit below a mid-cycle push+pop peak).
        if events:
            assert max(e.occupancy for e in events) == stats.max_occupancy, name


def test_completions_match_run(traced_runs):
    fast, _, tracer, _ = traced_runs["chain"]
    assert [c.cycle for c in tracer.completions] == fast.run.completion_cycles
    assert [c.index for c in tracer.completions] == list(range(len(tracer.completions)))


def test_occupancy_timeline_is_bounded_and_steps(traced_runs):
    """Occupancy samples stay within [0, capacity] and cycles increase."""
    _, _, tracer, _ = traced_runs["chain"]
    for name, meta in tracer._stream_meta.items():
        timeline = tracer.occupancy_timeline(name)
        cycles = [c for c, _ in timeline]
        assert cycles == sorted(set(cycles)), name
        for _, occupancy in timeline:
            assert 0 <= occupancy <= meta["capacity"], name


def test_link_transits_only_on_latency_streams(traced_runs):
    """multi_dfe crossing streams report transits of exactly their latency."""
    _, _, tracer, _ = traced_runs["multi_dfe"]
    latency_streams = [n for n, m in tracer._stream_meta.items() if m["latency"] > 0]
    assert latency_streams, "multi_dfe case must produce at least one link stream"
    for name in tracer._stream_meta:
        transits = tracer.link_transits(name)
        if name not in latency_streams:
            assert transits == []
            continue
        latency = tracer._stream_meta[name]["latency"]
        assert transits
        for pushed, ready in transits:
            assert ready - pushed == 1 + latency, name


# -- analysis parity ----------------------------------------------------


@pytest.mark.parametrize("topology", TOPOLOGIES)
def test_analyze_trace_matches_analyze_run(traced_runs, topology):
    """The event log derives the same PipelineTrace as the aggregate stats."""
    fast, _, tracer, _ = traced_runs[topology]
    from_stats = analyze_run(fast.run, skip_idle=False)
    from_trace = analyze_trace(tracer, skip_idle=False)
    assert from_trace.total_cycles == from_stats.total_cycles
    assert {w.name: w for w in from_trace.windows} == {w.name: w for w in from_stats.windows}


# -- Chrome-trace export -----------------------------------------------


def test_chrome_trace_round_trips_and_validates(traced_runs, tmp_path):
    fast, _, tracer, _ = traced_runs["multi_dfe"]
    path = tracer.write_chrome_trace(tmp_path / "trace.json")
    data = load_chrome_trace(path)
    events = data["traceEvents"]
    assert data["otherData"]["total_cycles"] == fast.cycles
    phases = {e["ph"] for e in events}
    # Metadata, spans, counters, async transit pairs, and instants all present.
    assert {"M", "X", "C", "b", "e", "i"} <= phases
    for event in events:
        assert isinstance(event["name"], str)
        assert event["pid"] in (0, 1)
        if event["ph"] in ("X", "C", "b", "e", "i"):
            assert 0 <= event["ts"] <= fast.cycles
        if event["ph"] == "X":
            assert event["dur"] >= 1
    begins = sorted(e["id"] for e in events if e["ph"] == "b")
    ends = sorted(e["id"] for e in events if e["ph"] == "e")
    assert begins and begins == ends
    # The file is a single JSON object Perfetto can load directly.
    assert json.loads(path.read_text())["displayTimeUnit"] == "ms"


def test_tracer_is_single_use():
    graph, kwargs = _case("chain")
    tracer = Tracer()
    simulate(graph, _images(1, n=1), trace=tracer, **kwargs)
    with pytest.raises(ValueError, match="single-use"):
        simulate(graph, _images(1, n=1), trace=tracer, **kwargs)


def test_chrome_trace_image_lifecycle_spans(traced_runs):
    """Schema v2: every completed image renders as an admission->sink span."""
    fast, _, tracer, _ = traced_runs["chain"]
    data = tracer.to_chrome_trace()
    assert data["otherData"]["schema"] == "repro-trace/2"
    spans = [
        e for e in data["traceEvents"] if e["ph"] == "X" and e.get("cat") == "image"
    ]
    assert len(spans) == len(tracer.completions)
    by_index = {f"image {c.index}": c for c in tracer.completions}
    for span in spans:
        completion = by_index[span["name"]]
        assert completion.admission >= 0
        assert span["ts"] == completion.admission
        assert span["dur"] == max(1, completion.span_cycles)
        assert span["args"]["admission_cycle"] == completion.admission
        assert span["args"]["completion_cycle"] == completion.cycle
    # The dedicated "images" track is named via thread metadata.
    threads = [
        e for e in data["traceEvents"] if e["ph"] == "M" and e["name"] == "thread_name"
    ]
    assert any(e["args"]["name"] == "images" for e in threads)
