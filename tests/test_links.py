"""Direct tests for the inter-chip link models (dataflow/links.py)."""

import pytest

from repro.dataflow.links import MAXRING, PCIE_GEN2_X8, LinkSpec, required_bandwidth_mbps


class TestRequiredBandwidth:
    def test_paper_case_2bit_at_105mhz_is_210_mbps(self):
        """§III-B6: a 2-bit stream at 105 MHz needs exactly 210 Mbps."""
        assert required_bandwidth_mbps(2, 105.0) == pytest.approx(210.0)

    def test_zero_width_stream_needs_no_bandwidth(self):
        assert required_bandwidth_mbps(0, 105.0) == 0.0

    def test_scales_linearly_in_bits_and_clock(self):
        base = required_bandwidth_mbps(2, 105.0)
        assert required_bandwidth_mbps(4, 105.0) == pytest.approx(2 * base)
        assert required_bandwidth_mbps(2, 210.0) == pytest.approx(2 * base)


class TestLinkSpecSupports:
    def test_maxring_supports_the_paper_stream(self):
        assert MAXRING.supports(2, 105.0)

    def test_exact_capacity_boundary_is_supported(self):
        """`supports` is inclusive: demand == capacity still fits."""
        link = LinkSpec(name="test", bandwidth_gbps=0.210, latency_cycles=1)
        assert link.supports(2, 105.0)
        assert not link.supports(2, 105.0 + 1e-6)

    def test_fclk_boundary_just_over_capacity_fails(self):
        link = LinkSpec(name="test", bandwidth_gbps=1.0, latency_cycles=1)
        # 16 bits * 62.5 MHz = 1000 Mbps = exactly 1 Gbps.
        assert link.supports(16, 62.5)
        assert not link.supports(16, 62.6)

    def test_zero_width_stream_supported_by_any_link(self):
        tiny = LinkSpec(name="tiny", bandwidth_gbps=0.001, latency_cycles=1)
        assert tiny.supports(0, 105.0)


class TestLinkSpecUtilization:
    def test_paper_utilization_is_about_five_percent(self):
        """210 Mbps over a 4 Gbps MaxRing: ~5% used, ~19x headroom."""
        util = MAXRING.utilization(2, 105.0)
        assert util == pytest.approx(210.0 / 4000.0)
        assert util < 0.06

    def test_utilization_one_at_exact_capacity(self):
        link = LinkSpec(name="test", bandwidth_gbps=0.210, latency_cycles=1)
        assert link.utilization(2, 105.0) == pytest.approx(1.0)

    def test_zero_width_stream_has_zero_utilization(self):
        assert MAXRING.utilization(0, 105.0) == 0.0

    def test_pcie_has_more_headroom_than_maxring(self):
        assert PCIE_GEN2_X8.utilization(2, 105.0) < MAXRING.utilization(2, 105.0)
