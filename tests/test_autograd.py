"""Gradient checks for the autograd engine (numerical differentiation)."""

import numpy as np
import pytest

from repro.nn import autograd as ag
from repro.nn.autograd import Tensor
from repro.quantization import UniformQuantizer

RNG = np.random.default_rng(4)


def numerical_grad(f, x, eps=1e-6):
    g = np.zeros_like(x)
    it = np.nditer(x, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        orig = x[idx]
        x[idx] = orig + eps
        fp = f()
        x[idx] = orig - eps
        fm = f()
        x[idx] = orig
        g[idx] = (fp - fm) / (2 * eps)
        it.iternext()
    return g


def check_grad(build, params, tol=1e-5):
    """build() -> scalar Tensor; checks analytic vs numerical grads."""
    out = build()
    out.backward()
    for p in params:
        analytic = p.grad.copy()
        num = numerical_grad(lambda: float(build().data), p.data)
        assert np.allclose(analytic, num, atol=tol, rtol=1e-4), (
            f"grad mismatch for {p.name or 'param'}: max "
            f"{np.abs(analytic - num).max()}"
        )
        p.zero_grad()


class TestBasicOps:
    def test_add_backward(self):
        a = Tensor(RNG.normal(size=(3, 4)), requires_grad=True)
        b = Tensor(RNG.normal(size=(3, 4)), requires_grad=True)
        w = RNG.normal(size=(3, 4))
        check_grad(lambda: _weighted_sum(ag.add(a, b), w), [a, b])

    def test_add_broadcast(self):
        a = Tensor(RNG.normal(size=(3, 4)), requires_grad=True)
        b = Tensor(RNG.normal(size=(4,)), requires_grad=True)
        w = RNG.normal(size=(3, 4))
        check_grad(lambda: _weighted_sum(ag.add(a, b), w), [a, b])

    def test_matmul_backward(self):
        x = Tensor(RNG.normal(size=(5, 3)), requires_grad=True)
        w = Tensor(RNG.normal(size=(3, 2)), requires_grad=True)
        wt = RNG.normal(size=(5, 2))
        check_grad(lambda: _weighted_sum(ag.matmul(x, w), wt), [x, w])

    def test_scale(self):
        a = Tensor(RNG.normal(size=(4,)), requires_grad=True)
        w = RNG.normal(size=(4,))
        check_grad(lambda: _weighted_sum(2.5 * a, w), [a])

    def test_reshape(self):
        x = Tensor(RNG.normal(size=(2, 6)), requires_grad=True)
        w = RNG.normal(size=(3, 4))
        check_grad(lambda: _weighted_sum(ag.reshape(x, (3, 4)), w), [x])

    def test_relu(self):
        x = Tensor(RNG.normal(size=(10,)) + 0.05, requires_grad=True)
        w = RNG.normal(size=(10,))
        check_grad(lambda: _weighted_sum(ag.relu(x), w), [x])


def _weighted_sum(t: Tensor, w) -> Tensor:
    out = Tensor((t.data * w).sum(), t.requires_grad, (t,))

    def backward():
        if t.requires_grad:
            t.accumulate_grad(out.grad * w)

    out._backward = backward
    return out


class TestConvGrad:
    @pytest.mark.parametrize("stride,pad", [(1, 0), (1, 1), (2, 1)])
    def test_conv2d_backward(self, stride, pad):
        x = Tensor(RNG.normal(size=(2, 5, 5, 2)), requires_grad=True)
        w = Tensor(RNG.normal(size=(3, 3, 2, 3)), requires_grad=True)
        ho = (5 + 2 * pad - 3) // stride + 1
        wt = RNG.normal(size=(2, ho, ho, 3))
        check_grad(lambda: _weighted_sum(ag.conv2d(x, w, stride, pad, 0.3), wt), [x, w])


class TestPoolGrad:
    def test_maxpool_backward(self):
        x = Tensor(RNG.normal(size=(2, 4, 4, 2)), requires_grad=True)
        wt = RNG.normal(size=(2, 2, 2, 2))
        check_grad(lambda: _weighted_sum(ag.maxpool2d(x, 2), wt), [x])

    def test_maxpool_padded_backward(self):
        x = Tensor(RNG.normal(size=(1, 5, 5, 2)), requires_grad=True)
        out = ag.maxpool2d(x, 3, 2, pad=1, pad_value=-100.0)
        wt = RNG.normal(size=out.data.shape)
        check_grad(lambda: _weighted_sum(ag.maxpool2d(x, 3, 2, pad=1, pad_value=-100.0), wt), [x])

    def test_global_avgpool_backward(self):
        x = Tensor(RNG.normal(size=(2, 3, 3, 4)), requires_grad=True)
        wt = RNG.normal(size=(2, 4))
        check_grad(lambda: _weighted_sum(ag.global_avgpool(x), wt), [x])


class TestBatchNormGrad:
    def test_training_mode_backward(self):
        x = Tensor(RNG.normal(size=(8, 3)), requires_grad=True)
        gamma = Tensor(RNG.uniform(0.5, 1.5, 3), requires_grad=True)
        beta = Tensor(RNG.normal(size=3), requires_grad=True)
        wt = RNG.normal(size=(8, 3))

        def build():
            rm, rv = np.zeros(3), np.ones(3)
            return _weighted_sum(ag.batchnorm(x, gamma, beta, rm, rv, training=True), wt)

        check_grad(build, [x, gamma, beta], tol=1e-4)

    def test_eval_mode_backward(self):
        x = Tensor(RNG.normal(size=(6, 3)), requires_grad=True)
        gamma = Tensor(RNG.uniform(0.5, 1.5, 3), requires_grad=True)
        beta = Tensor(RNG.normal(size=3), requires_grad=True)
        rm, rv = RNG.normal(size=3), RNG.uniform(0.5, 2.0, 3)
        wt = RNG.normal(size=(6, 3))
        check_grad(
            lambda: _weighted_sum(ag.batchnorm(x, gamma, beta, rm, rv, training=False), wt),
            [x, gamma, beta],
        )

    def test_running_stats_update(self):
        x = Tensor(RNG.normal(loc=2.0, size=(64, 2)))
        gamma, beta = Tensor(np.ones(2)), Tensor(np.zeros(2))
        rm, rv = np.zeros(2), np.ones(2)
        ag.batchnorm(x, gamma, beta, rm, rv, training=True, momentum=1.0)
        assert np.allclose(rm, x.data.mean(axis=0))

    def test_eval_does_not_update_stats(self):
        x = Tensor(RNG.normal(size=(10, 2)))
        rm, rv = np.zeros(2), np.ones(2)
        ag.batchnorm(x, Tensor(np.ones(2)), Tensor(np.zeros(2)), rm, rv, training=False)
        assert (rm == 0).all() and (rv == 1).all()


class TestSTE:
    def test_sign_forward(self):
        w = Tensor(np.array([-0.5, 0.0, 0.7]), requires_grad=True)
        assert ag.sign_ste(w).data.tolist() == [-1.0, 1.0, 1.0]

    def test_sign_ste_gradient_clip(self):
        w = Tensor(np.array([-2.0, -0.5, 0.5, 2.0]), requires_grad=True)
        out = ag.sign_ste(w)
        out.backward(np.ones(4))
        assert w.grad.tolist() == [0.0, 1.0, 1.0, 0.0]

    def test_uniform_quant_forward(self):
        q = UniformQuantizer(bits=2, lo=0.0, d=0.5)
        x = Tensor(np.array([0.1, 0.6, 1.3, 5.0]), requires_grad=True)
        assert np.allclose(ag.uniform_quant_ste(x, q).data, q.quantize(x.data))

    def test_uniform_quant_ste_gradient_window(self):
        q = UniformQuantizer(bits=2, lo=0.0, d=0.5)
        x = Tensor(np.array([-0.1, 0.5, 1.9, 2.1]), requires_grad=True)
        ag.uniform_quant_ste(x, q).backward(np.ones(4))
        assert x.grad.tolist() == [0.0, 1.0, 1.0, 0.0]


class TestCrossEntropy:
    def test_matches_manual(self):
        logits = Tensor(RNG.normal(size=(4, 3)), requires_grad=True)
        labels = np.array([0, 2, 1, 1])
        loss = ag.cross_entropy(logits, labels)
        p = np.exp(logits.data) / np.exp(logits.data).sum(axis=1, keepdims=True)
        manual = -np.log(p[np.arange(4), labels]).mean()
        assert np.isclose(float(loss.data), manual)

    def test_gradient(self):
        logits = Tensor(RNG.normal(size=(5, 4)), requires_grad=True)
        labels = RNG.integers(0, 4, size=5)

        def build():
            return ag.cross_entropy(Tensor(logits.data, requires_grad=True, _prev=()), labels)

        loss = ag.cross_entropy(logits, labels)
        loss.backward()
        analytic = logits.grad
        num = numerical_grad(lambda: float(ag.cross_entropy(Tensor(logits.data), labels).data), logits.data)
        assert np.allclose(analytic, num, atol=1e-5)


class TestBackwardMechanics:
    def test_scalar_required_without_grad(self):
        t = Tensor(np.ones((2, 2)), requires_grad=True)
        with pytest.raises(ValueError):
            t.backward()

    def test_grad_accumulation_through_fanout(self):
        a = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        out = ag.add(a, a)
        out.backward(np.ones(2))
        assert a.grad.tolist() == [2.0, 2.0]

    def test_deep_chain_no_recursion_error(self):
        x = Tensor(np.array([1.0]), requires_grad=True)
        y = x
        for _ in range(3000):
            y = 1.0 * y
        y.backward(np.ones(1))
        assert x.grad[0] == 1.0
