"""Tests for the live telemetry subsystem (src/repro/telemetry/)."""

import json

import numpy as np
import pytest

from repro.dataflow import Tracer, simulate
from repro.dataflow.manager import build_pipeline
from repro.dataflow.tracing import analyze_trace
from repro.dataflow.verify import solve_skip_capacities, verify_pipeline
from repro.models import direct_resnet18_graph
from repro.nn import input_to_levels
from repro.nn.export import export_model
from repro.telemetry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    PeriodicExporter,
    Telemetry,
    deadlock_root_edge,
    host_manifest,
    render_frame,
    render_prometheus,
    run_attributed,
    run_manifest,
    snapshot_registry,
    validate_exposition,
    write_text_file,
)
from tests.conftest import make_tiny_chain_model


# -- registry primitives ---------------------------------------------------


class TestRegistry:
    def test_counter_is_monotone(self):
        c = Counter()
        c.inc(3)
        c.set_total(10)
        assert c.value == 10
        with pytest.raises(ValueError):
            c.set_total(9)
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_gauge_moves_freely(self):
        g = Gauge()
        g.set(5)
        g.inc(-2)
        assert g.value == 3

    def test_histogram_buckets_and_cumulative(self):
        h = Histogram([1, 4, 16])
        for v in (0, 1, 2, 5, 100):
            h.observe(v)
        assert h.count == 5
        assert h.sum == 108
        cum = h.cumulative()
        assert [c for _, c in cum] == [2, 3, 4, 5]
        assert cum[-1][0] == float("inf")

    def test_family_label_schema_enforced(self):
        reg = MetricsRegistry()
        fam = reg.counter("repro_test_total", "help.", ("kernel",))
        fam.labels(kernel="a").inc()
        with pytest.raises(ValueError):
            fam.labels(stream="a")
        with pytest.raises(ValueError):
            fam.inc()  # labelled family has no default child

    def test_registration_idempotent_but_schema_checked(self):
        reg = MetricsRegistry()
        a = reg.gauge("repro_g", "help.")
        assert reg.gauge("repro_g", "help.") is a
        with pytest.raises(ValueError):
            reg.counter("repro_g", "help.")

    def test_invalid_metric_and_label_names_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.gauge("0bad", "help.")
        with pytest.raises(ValueError):
            reg.gauge("repro_ok", "help.", ("bad-label",))
        with pytest.raises(ValueError):
            reg.gauge("repro_ok", "help.", ("__reserved",))


# -- collector reconciliation ---------------------------------------------


@pytest.fixture(scope="module")
def chain_case():
    model = make_tiny_chain_model()
    graph = export_model(model, (16, 16, 3), name="tiny-chain")
    rng = np.random.default_rng(0)
    levels = input_to_levels(rng.uniform(0, 1, (2, 16, 16, 3)), model.layers[0].quantizer)
    return graph, levels


def _assert_reconciles(telemetry, run):
    """Sealed telemetry counters must equal collect_stats bit for bit."""
    kstats, sstats = run.pipeline.engine.collect_stats()
    kc = telemetry.registry.get("repro_kernel_cycles_total")
    ke = telemetry.registry.get("repro_kernel_elements_total")
    for name, st in kstats.items():
        assert kc.labels(kernel=name, state="busy").value == st.active_cycles
        assert kc.labels(kernel=name, state="starved").value == st.input_starved_cycles
        assert kc.labels(kernel=name, state="blocked").value == st.output_blocked_cycles
        assert kc.labels(kernel=name, state="idle").value == st.idle_cycles
        assert ke.labels(kernel=name, direction="in").value == st.elements_in
        assert ke.labels(kernel=name, direction="out").value == st.elements_out
    se = telemetry.registry.get("repro_stream_events_total")
    peak = telemetry.registry.get("repro_stream_occupancy_peak")
    for name, st in sstats.items():
        assert se.labels(stream=name, event="push").value == st.pushes
        assert se.labels(stream=name, event="pop").value == st.pops
        assert se.labels(stream=name, event="reject").value == st.full_rejections
        assert peak.labels(stream=name).value == st.max_occupancy
    images = telemetry.registry.get("repro_images_completed_total")._default().value
    assert images == len(run.pipeline.sink.completion_cycles)
    assert telemetry.registry.get("repro_cycles")._default().value == run.cycles


@pytest.mark.parametrize("fast", [True, False], ids=["fast", "exhaustive"])
def test_telemetry_reconciles_with_collect_stats(chain_case, fast):
    graph, levels = chain_case
    telemetry = Telemetry(sample_every=100)
    run = simulate(graph, levels, fast=fast, telemetry=telemetry)
    assert telemetry.finished and telemetry.total_cycles == run.cycles
    _assert_reconciles(telemetry, run)


@pytest.mark.parametrize("fast", [True, False], ids=["fast", "exhaustive"])
def test_telemetry_reconciles_with_pipeline_trace(chain_case, fast):
    """The sealed counters equal the Tracer-derived PipelineTrace's."""
    graph, levels = chain_case
    telemetry = Telemetry(sample_every=100)
    tracer = Tracer()
    run = simulate(graph, levels, fast=fast, trace=tracer, telemetry=telemetry)
    trace = analyze_trace(tracer, skip_idle=False)
    kc = telemetry.registry.get("repro_kernel_cycles_total")
    for window in trace.windows:
        assert kc.labels(kernel=window.name, state="busy").value == window.active_cycles
        assert kc.labels(kernel=window.name, state="starved").value == window.input_starved
        assert kc.labels(kernel=window.name, state="blocked").value == window.output_blocked
    images = telemetry.registry.get("repro_images_completed_total")._default().value
    assert images == len(run.pipeline.sink.completion_cycles)


def test_fast_midrun_samples_match_exhaustive(chain_case):
    """Virtual park accounting: a fast-path sample equals the exhaustive
    loop's counters at the very same cycle, not just at the end."""
    graph, levels = chain_case

    def capture(store):
        def listener(tel, cycle):
            store[cycle] = {
                row["name"]: (row["busy"], row["starved"], row["blocked"], row["idle"])
                for row in tel.kernel_rows()
            }

        return listener

    exhaustive: dict = {}
    simulate(
        graph, levels, fast=False, telemetry=Telemetry(sample_every=1, on_sample=capture(exhaustive))
    )
    fast: dict = {}
    simulate(
        graph, levels, fast=True, telemetry=Telemetry(sample_every=97, on_sample=capture(fast))
    )
    assert len(fast) > 5
    for cycle, rows in fast.items():
        assert rows == exhaustive[cycle], f"divergence at cycle {cycle}"


def test_telemetry_is_single_use(chain_case):
    graph, levels = chain_case
    telemetry = Telemetry()
    simulate(graph, levels, telemetry=telemetry)
    with pytest.raises(ValueError):
        simulate(graph, levels, telemetry=telemetry)


def test_derived_gauges(chain_case):
    graph, levels = chain_case
    telemetry = Telemetry()
    run = simulate(graph, levels, telemetry=telemetry)
    reg = telemetry.registry
    latency = reg.get("repro_image_latency_cycles")._default().value
    assert latency == run.latency_cycles
    interval = reg.get("repro_steady_state_interval_cycles")._default().value
    assert interval == pytest.approx(run.run.steady_state_interval)
    fps = reg.get("repro_throughput_fps")._default().value
    assert fps == pytest.approx(run.pipeline.fclk_mhz * 1e6 / interval)
    ii = reg.get("repro_initiation_interval_cycles")._default().value
    assert 0 < ii < run.cycles
    duty = reg.get("repro_kernel_duty_cycle")
    for _, child in duty.samples():
        assert 0.0 <= child.value <= 1.0


# -- exporters -------------------------------------------------------------


class TestExporters:
    def test_prometheus_exposition_validates(self, chain_case):
        graph, levels = chain_case
        telemetry = Telemetry()
        telemetry.manifest = run_manifest(graph, seed=0, images=2)
        simulate(graph, levels, telemetry=telemetry)
        text = telemetry.export_prometheus()
        assert validate_exposition(text) == []
        assert "repro_build_info{" in text
        assert "# TYPE repro_kernel_cycles_total counter" in text
        assert "repro_stream_occupancy_sampled_bucket" in text
        assert 'le="+Inf"' in text

    def test_validator_catches_corruption(self):
        reg = MetricsRegistry()
        reg.gauge("repro_x", "help.").set(1)
        good = render_prometheus(reg)
        assert validate_exposition(good) == []
        assert validate_exposition("repro_orphan 1\n")  # no TYPE header
        assert validate_exposition("# TYPE repro_x gauge\nrepro_x{ 1\n")
        assert validate_exposition("# TYPE repro_x gauge\nrepro_x not_a_number\n")

    def test_json_snapshot_round_trips(self, chain_case):
        graph, levels = chain_case
        telemetry = Telemetry()
        simulate(graph, levels, telemetry=telemetry)
        payload = telemetry.export_json()
        decoded = json.loads(json.dumps(payload))
        assert decoded["schema"] == "repro-telemetry/1"
        assert decoded["finished"] is True
        names = {f["name"] for f in decoded["metrics"]}
        assert "repro_kernel_cycles_total" in names
        assert "repro_throughput_fps" in names

    def test_snapshot_registry_histograms_have_inf_bucket(self):
        reg = MetricsRegistry()
        reg.histogram("repro_h", "help.", [1, 2]).observe(1.5)
        fam = snapshot_registry(reg)[0]
        assert fam["samples"][0]["buckets"][-1][0] == "+Inf"

    def test_write_text_file_refuses_overwrite(self, tmp_path):
        target = tmp_path / "out.prom"
        write_text_file(target, "a\n")
        with pytest.raises(FileExistsError):
            write_text_file(target, "b\n")
        write_text_file(target, "b\n", force=True)
        assert target.read_text() == "b\n"

    def test_periodic_exporter_guards_and_writes(self, chain_case, tmp_path):
        graph, levels = chain_case
        prom = tmp_path / "metrics.prom"
        snap = tmp_path / "metrics.json"
        telemetry = Telemetry(sample_every=200)
        telemetry.add_listener(PeriodicExporter(prom_path=prom, json_path=snap))
        simulate(graph, levels, telemetry=telemetry)
        assert validate_exposition(prom.read_text()) == []
        assert json.loads(snap.read_text())["finished"] is True
        # Existing outputs require force.
        with pytest.raises(FileExistsError):
            PeriodicExporter(prom_path=prom)
        PeriodicExporter(prom_path=prom, force=True)


# -- manifests -------------------------------------------------------------


class TestManifest:
    def test_host_manifest_keys(self):
        mf = host_manifest()
        for key in ("revision", "git_describe", "python", "numpy", "cpu_count"):
            assert key in mf
        assert mf["cpu_count"] >= 1

    def test_run_manifest_topology(self, chain_case):
        graph, _ = chain_case
        mf = run_manifest(graph, seed=7, images=2, fclk_mhz=105.0)
        assert mf["schema"] == "repro-run-manifest/1"
        assert mf["topology"]["name"] == graph.name
        assert mf["topology"]["input"] == [16, 16, 3]
        assert mf["seed"] == 7 and mf["images"] == 2


# -- dashboard -------------------------------------------------------------


def test_dashboard_frame_renders(chain_case):
    graph, levels = chain_case
    telemetry = Telemetry()
    simulate(graph, levels, telemetry=telemetry)
    frame = render_frame(telemetry)
    assert "run complete" in frame
    assert "host_sink" in frame
    assert "FPS" in frame


# -- bottleneck attribution ------------------------------------------------


@pytest.fixture(scope="module")
def tiny_residual():
    graph = direct_resnet18_graph(16, width=0.0625, classes=4, stages=[(64, 1, 1)])
    rng = np.random.default_rng(0)
    images = rng.integers(0, 4, size=(2, 16, 16, 3))
    return graph, images


def test_attribution_on_healthy_run(tiny_residual):
    graph, images = tiny_residual
    report = run_attributed(graph, images)
    assert not report.aborted
    assert report.root_edge is None
    assert report.images == 2
    assert report.fps and report.fps > 0
    names = [k.name for k in report.kernels]
    assert "host_sink" in names
    utils = [k.utilization for k in report.kernels]
    assert utils == sorted(utils)
    assert "stall-adjusted utilization" in report.render()


@pytest.mark.parametrize("fast", [True, False], ids=["fast", "exhaustive"])
def test_attribution_names_v301_edge_on_undersized_skip(tiny_residual, fast):
    """Fault injection: `repro stats` and `repro check` must point at the
    same edge when a skip FIFO is deliberately undersized (V301)."""
    graph, images = tiny_residual
    exact = solve_skip_capacities(graph)
    victim = sorted(exact)[0]
    injected = dict(exact)
    injected[victim] = exact[victim] - 1

    pipeline = build_pipeline(graph, images, skip_sizing=injected)
    check = verify_pipeline(pipeline, exact_skip=exact)
    v301 = [d for d in check.diagnostics if d.code == "V301"]
    assert len(v301) == 1 and v301[0].severity == "error"

    report = run_attributed(
        graph, images, skip_sizing=injected, max_cycles=100_000, fast=fast
    )
    assert report.aborted
    assert report.root_edge == v301[0].where
    assert report.root_required == exact[victim]
    assert report.root_capacity == exact[victim] - 1
    assert f"minimum safe capacity {exact[victim]}" in report.render()


def test_deadlock_root_edge_none_on_healthy_engine(tiny_residual):
    graph, images = tiny_residual
    pipeline = build_pipeline(graph, images)
    pipeline.engine.run(lambda: pipeline.sink.done)
    assert deadlock_root_edge(pipeline.engine) is None


# -- dashboard rendering contract ------------------------------------------


def _bare_telemetry(last):
    """A collector with no probes: the frame is fully determined by .last."""
    telemetry = Telemetry()
    telemetry.last = last
    return telemetry


GOLDEN_LAST = {
    "cycle": 1234,
    "images": 2,
    "latency": 600,
    "interval": 300.0,
    "fps": 350000.0,
    "initiation": 100,
    "latency_p50": 600,
    "latency_p95": 610,
    "latency_p99": 612,
    "latency_max": 620,
    "queue_depth": 3,
}

GOLDEN_FRAME = "\n".join(
    [
        "repro top — running @ cycle 1,234 | images 2",
        "  350,000.0 FPS @ 105 MHz | interval 300 cyc/img | II 100 cyc",
        "  latency p50 600 | p95 610 | p99 612 | max 620 cyc | host queue 3",
        "",
        "  kernel                  utilization              busy/starved/blocked",
    ]
)


def test_dashboard_golden_frame():
    """The frame layout is a contract: headline, latency row, kernel table."""
    assert render_frame(_bare_telemetry(dict(GOLDEN_LAST))) == GOLDEN_FRAME


def test_dashboard_latency_na_marker():
    telemetry = _bare_telemetry({"cycle": 50, "images": 0})
    telemetry.finished = True
    frame = render_frame(telemetry)
    assert "latency: n/a (no completed images)" in frame
    # Mid-run with nothing completed yet: no latency row, no n/a noise.
    running = _bare_telemetry({"cycle": 50, "images": 0})
    assert "latency" not in render_frame(running)


def test_dashboard_ansi_redraw_and_throttle(monkeypatch):
    """Fake clock: frames drop inside min_interval_s, final frame always lands."""
    import io

    from repro.telemetry import dashboard as dashboard_mod
    from repro.telemetry.dashboard import Dashboard

    clock = {"now": 1000.0}
    monkeypatch.setattr(dashboard_mod.time, "monotonic", lambda: clock["now"])
    out = io.StringIO()
    board = Dashboard(out=out, min_interval_s=0.5, ansi=True)
    telemetry = _bare_telemetry(dict(GOLDEN_LAST))

    board(telemetry, 1234)  # renders (first frame)
    board(telemetry, 1300)  # dropped: clock has not advanced
    assert board.frames == 1
    clock["now"] += 0.1
    board(telemetry, 1400)  # still inside the throttle window
    assert board.frames == 1
    clock["now"] += 1.0
    board(telemetry, 1500)  # renders
    assert board.frames == 2
    telemetry.finished = True
    board(telemetry, 1600)  # final frame ignores the throttle
    assert board.frames == 3
    text = out.getvalue()
    # Every rendered frame is an in-place ANSI redraw of the golden frame
    # (the final one swaps the "running" headline for "run complete").
    assert text.count("\x1b[H\x1b[J") == 3
    final_frame = GOLDEN_FRAME.replace("running", "run complete")
    assert text == ("\x1b[H\x1b[J" + GOLDEN_FRAME + "\n") * 2 + (
        "\x1b[H\x1b[J" + final_frame + "\n"
    )


def test_periodic_exporter_fake_sample_cadence(tmp_path):
    """every_samples gates writes; the final sample always flushes."""

    class _FakeTelemetry:
        def __init__(self):
            self.finished = False
            self.prom_renders = 0

        def export_prometheus(self):
            self.prom_renders += 1
            return f"# render {self.prom_renders}\n"

        def export_json(self):
            return {"renders": self.prom_renders}

    prom = tmp_path / "metrics.prom"
    snap = tmp_path / "snapshot.json"
    exporter = PeriodicExporter(prom_path=prom, json_path=snap, every_samples=3)
    telemetry = _FakeTelemetry()
    for cycle in range(1, 8):  # samples 1..7: writes on 3 and 6 only
        exporter(telemetry, cycle * 100)
    assert telemetry.prom_renders == 2
    telemetry.finished = True
    exporter(telemetry, 800)  # sample 8: not a multiple of 3, but final
    assert telemetry.prom_renders == 3
    assert prom.read_text() == "# render 3\n"
    assert json.loads(snap.read_text()) == {"renders": 3}


def test_periodic_exporter_refuses_existing_outputs_up_front(tmp_path):
    prom = tmp_path / "metrics.prom"
    snap = tmp_path / "snapshot.json"
    snap.write_text("{}")
    with pytest.raises(FileExistsError, match="--force"):
        PeriodicExporter(prom_path=prom, json_path=snap)
    assert not prom.exists()  # the guard fired before any write
    PeriodicExporter(prom_path=prom, json_path=snap, force=True)


def test_attribution_renders_na_markers_on_zero_completions(tiny_residual):
    """An aborted run with no completed image degrades to explicit n/a
    markers instead of dividing by zero or printing garbage."""
    graph, images = tiny_residual
    exact = solve_skip_capacities(graph)
    injected = dict(exact)
    injected[sorted(exact)[0]] = 1  # deadlock before any image completes
    report = run_attributed(graph, images, skip_sizing=injected, max_cycles=50_000)
    assert report.aborted
    rendered = report.render()
    assert "first-image latency: n/a (no image completed)" in rendered
    assert "steady-state interval / FPS: n/a (needs two completed images)" in rendered
