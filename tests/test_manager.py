"""Tests for the DFE manager: graph -> pipeline lowering details."""

import numpy as np
import pytest

from repro.dataflow import build_pipeline, skip_formula_bound, solve_skip_capacities
from repro.kernels import AddKernel, ConvKernel, ForkKernel, MaxPoolKernel, ThresholdKernel
from repro.nn import input_to_levels


@pytest.fixture()
def chain_pipeline(tiny_chain_model, tiny_chain_graph, images16):
    lv = input_to_levels(images16[:1], tiny_chain_model.layers[0].quantizer)
    return build_pipeline(tiny_chain_graph, lv)


@pytest.fixture()
def resnet_pipeline(tiny_resnet_model, tiny_resnet_graph, images16):
    lv = input_to_levels(images16[:1], tiny_resnet_model.layers[0].quantizer)
    return build_pipeline(tiny_resnet_graph, lv)


class TestKernelMapping:
    def test_one_kernel_per_compute_node(self, chain_pipeline):
        g = chain_pipeline.graph
        compute_nodes = [n for n in g.nodes if n != g.input_name]
        assert set(chain_pipeline.kernels_by_node) == set(compute_nodes)

    def test_kernel_types(self, resnet_pipeline):
        kinds = {type(k).__name__ for k in resnet_pipeline.kernels_by_node.values()}
        assert {"ConvKernel", "ThresholdKernel", "AddKernel"} <= kinds

    def test_host_endpoints_present(self, chain_pipeline):
        names = [k.name for k in chain_pipeline.engine.kernels]
        assert names[0] == "host_source" and names[-1] == "host_sink"


class TestForks:
    def test_forks_inserted_for_fanout(self, resnet_pipeline):
        forks = [k for k in resnet_pipeline.engine.kernels if isinstance(k, ForkKernel)]
        # each residual block forks twice: the block input and add1's output
        assert len(forks) >= 4

    def test_no_forks_in_plain_chain(self, chain_pipeline):
        forks = [k for k in chain_pipeline.engine.kernels if isinstance(k, ForkKernel)]
        assert not forks

    def test_fork_has_all_outputs(self, resnet_pipeline):
        for k in resnet_pipeline.engine.kernels:
            if isinstance(k, ForkKernel):
                assert len(k.outputs) >= 2


class TestStreams:
    def test_skip_streams_sized_by_exact_solver(self, resnet_pipeline, tiny_resnet_graph):
        assert resnet_pipeline.skip_streams
        assert resnet_pipeline.skip_sizing == "exact"
        exact = solve_skip_capacities(tiny_resnet_graph)
        for add_name, stream in resnet_pipeline.skip_streams.items():
            assert stream.capacity == exact[add_name]
            # the exact size never exceeds the closed-form §III-B5 bound
            assert stream.capacity <= skip_formula_bound(tiny_resnet_graph, add_name)

    def test_regular_streams_small(self, chain_pipeline):
        for stream in chain_pipeline.engine.streams:
            assert stream.capacity <= 16

    def test_stream_bits_follow_specs(self, chain_pipeline):
        g = chain_pipeline.graph
        for stream in chain_pipeline.engine.streams:
            # streams are named "<producer>-><consumer>[port]" or "<n>->fork"
            producer = stream.name.split("->")[0]
            if producer in g.specs:
                assert stream.bits == g.specs[producer].stream_bits

    def test_add_kernels_have_two_inputs(self, resnet_pipeline):
        for k in resnet_pipeline.engine.kernels:
            if isinstance(k, AddKernel):
                assert len(k.inputs) == 2


class TestPartitionWiring:
    def test_no_crossings_single_dfe(self, chain_pipeline):
        assert chain_pipeline.crossings == []

    def test_crossing_latency_applied(self, tiny_chain_model, tiny_chain_graph, images16):
        lv = input_to_levels(images16[:1], tiny_chain_model.layers[0].quantizer)
        names = [n for n in tiny_chain_graph.order if n != tiny_chain_graph.input_name]
        half = len(names) // 2
        pipeline = build_pipeline(tiny_chain_graph, lv, partition=[names[:half], names[half:]])
        assert len(pipeline.crossings) == 1
        crossing_streams = [
            s for s in pipeline.engine.streams if s.latency > 0
        ]
        assert len(crossing_streams) == 1
        assert crossing_streams[0].capacity > 16  # covers link round-trip

    def test_sink_never_counts_as_crossing(self, tiny_chain_model, tiny_chain_graph, images16):
        lv = input_to_levels(images16[:1], tiny_chain_model.layers[0].quantizer)
        names = [n for n in tiny_chain_graph.order if n != tiny_chain_graph.input_name]
        pipeline = build_pipeline(tiny_chain_graph, lv, partition=[names])
        assert pipeline.crossings == []

    def test_image_shape_validation(self, tiny_chain_graph):
        with pytest.raises(ValueError):
            build_pipeline(tiny_chain_graph, np.zeros((1, 4, 4, 3), dtype=np.int64))
