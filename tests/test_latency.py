"""Per-image latency observability: records, percentiles, reconciliation.

The load-bearing property: latency percentiles are *bit-identical* between
the fast (park/wake) and exhaustive schedulers on every topology — single
DFE chains, residual graphs, and a 2-DFE MaxRing partition — in both
closed-loop and open-loop (rate-limited) runs, and every record reconciles
exactly with the Tracer's completion events and the aggregate
``RunResult.latency_cycles``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.dataflow import Tracer, simulate
from repro.models import direct_resnet18_graph, direct_vgg_graph
from repro.telemetry import (
    LatencySummary,
    exact_quantile,
    image_records,
    latency_report,
    reconcile,
)
from repro.telemetry.latency import summarize

N_IMAGES = 5


def _chain_graph():
    return direct_vgg_graph(16, width=0.0625, classes=4)


def _residual_graph():
    return direct_resnet18_graph(16, width=0.0625, classes=4, stages=[(64, 1, 1)])


def _images(graph, n=N_IMAGES, seed=0):
    rng = np.random.default_rng(seed)
    spec = graph.input_spec
    return rng.integers(0, 4, size=(n, spec.height, spec.width, spec.channels))


def _halves(graph):
    """A contiguous 2-DFE partition of the compute nodes (MaxRing link)."""
    names = [n for n in graph.order if n != graph.input_name]
    half = len(names) // 2
    return [names[:half], names[half:]]


TOPOLOGIES = {
    "chain": lambda: (_chain_graph(), None),
    "residual": lambda: (_residual_graph(), None),
    "chain-2dfe": lambda: (_chain_graph(), "halves"),
}


def _build(name):
    graph, part = TOPOLOGIES[name]()
    partition = _halves(graph) if part == "halves" else None
    return graph, partition


def _open_loop_schedule(n, gap=4000):
    return [i * gap for i in range(n)]


class TestExactQuantile:
    def test_nearest_rank_returns_observed_values(self):
        values = [10, 20, 30, 40, 50]
        assert exact_quantile(values, 0.50) == 30
        assert exact_quantile(values, 0.95) == 50
        assert exact_quantile(values, 0.99) == 50
        assert exact_quantile(values, 1.0) == 50
        assert exact_quantile([7], 0.5) == 7

    def test_empty_and_bad_q_raise(self):
        with pytest.raises(ValueError):
            exact_quantile([], 0.5)
        with pytest.raises(ValueError):
            exact_quantile([1], 0.0)
        with pytest.raises(ValueError):
            exact_quantile([1], 1.5)

    def test_summarize_empty_is_explicit_na(self):
        summary = summarize([])
        assert summary.count == 0
        assert summary.p50 is None and summary.p99 is None and summary.max is None
        assert "n/a" in summary.render()

    def test_summary_is_comparable(self):
        assert summarize([3, 1, 2]) == summarize([1, 2, 3])
        assert isinstance(summarize([1]), LatencySummary)


@pytest.mark.parametrize("topology", sorted(TOPOLOGIES))
@pytest.mark.parametrize("open_loop", [False, True], ids=["closed", "open"])
def test_percentiles_bit_identical_fast_vs_exhaustive(topology, open_loop):
    graph, partition = _build(topology)
    images = _images(graph)
    arrivals = _open_loop_schedule(N_IMAGES) if open_loop else None
    kwargs = dict(partition=partition, arrival_cycles=arrivals)
    slow = simulate(graph, images, fast=False, **kwargs)
    fast = simulate(graph, images, fast=True, **kwargs)
    rep_slow = latency_report(slow.pipeline, slow.cycles)
    rep_fast = latency_report(fast.pipeline, fast.cycles)
    assert rep_fast.service == rep_slow.service
    assert rep_fast.queue_wait == rep_slow.queue_wait
    assert rep_fast.sojourn == rep_slow.sojourn
    assert [r.as_dict() for r in rep_fast.records] == [r.as_dict() for r in rep_slow.records]
    assert [s for s in rep_fast.as_dict()["segments"]] == [
        s for s in rep_slow.as_dict()["segments"]
    ]


@pytest.mark.parametrize("topology", sorted(TOPOLOGIES))
def test_records_reconcile_with_tracer_and_aggregate(topology):
    graph, partition = _build(topology)
    images = _images(graph)
    tracer = Tracer()
    run = simulate(graph, images, partition=partition, trace=tracer)
    report = latency_report(run.pipeline, run.cycles)
    assert report.n_images == N_IMAGES
    # Record 0's completion IS the aggregate first-image latency.
    assert report.records[0].completion == run.latency_cycles
    # Every record agrees with both the RunResult and the Tracer events.
    reconcile(report, run=run.run, tracer=tracer)


def test_reconcile_detects_disagreement():
    graph, partition = _build("chain")
    run = simulate(graph, _images(graph, n=2), partition=partition)
    report = latency_report(run.pipeline, run.cycles)
    report.records[1].completion += 1
    with pytest.raises(ValueError, match="completion"):
        reconcile(report, run=run.run)


def test_open_loop_queue_wait_and_arrival_semantics():
    graph, _ = _build("chain")
    images = _images(graph, n=4)
    # Arrivals far slower than service: the fabric idles between images and
    # nothing ever waits in the host queue.
    slack = simulate(graph, images, arrival_cycles=[i * 50_000 for i in range(4)])
    slack_report = latency_report(slack.pipeline, slack.cycles)
    assert all(r.queue_wait == 0 for r in slack_report.records)
    assert all(r.admission == r.arrival for r in slack_report.records)
    # Arrivals far faster than service: later images queue at the host, so
    # sojourn (arrival->sink) strictly exceeds service (admission->sink).
    burst = simulate(graph, images, arrival_cycles=[0, 1, 2, 3])
    burst_report = latency_report(burst.pipeline, burst.cycles)
    assert burst_report.records[-1].queue_wait > 0
    assert burst_report.sojourn.max > burst_report.service.max
    # Closed-loop runs define arrival == cycle 0 for every image.
    closed = simulate(graph, images)
    closed_report = latency_report(closed.pipeline, closed.cycles)
    assert closed_report.open_loop is False
    assert all(r.arrival == 0 for r in closed_report.records)


def test_two_dfe_partition_breakdown_names_the_crossing():
    graph, partition = _build("chain-2dfe")
    run = simulate(graph, _images(graph), partition=partition)
    assert len(run.pipeline.crossings) == 1
    report = latency_report(run.pipeline, run.cycles)
    # Two boundary streams: the MaxRing crossing and the sink edge, giving
    # three lifecycle instants per image and two per-partition segments.
    crossing = run.pipeline.crossings[0]
    crossing_prefix = f"{crossing.edge[0]}->{crossing.edge[1]}["
    for record in report.records:
        assert len(record.first_out) == 2
        assert any(name.startswith(crossing_prefix) for name in record.first_out)
    assert len(report.segments) == 3
    # Segment spans are positive and sum consistently with the service span:
    # ingest -> crossing -> completion covers each image's full service time.
    for record in report.records:
        marks = sorted(record.first_out.values())
        assert record.admission <= marks[0] <= marks[1] <= record.completion


def test_tail_attribution_names_a_kernel_and_edge():
    graph, partition = _build("chain")
    run = simulate(graph, _images(graph, n=6), partition=partition)
    report = latency_report(run.pipeline, run.cycles)
    assert report.tail is not None
    engine_kernels = {k.name for k in run.pipeline.engine.kernels}
    assert report.tail.kernel in engine_kernels
    assert report.tail.kernel not in ("host_source", "host_sink")
    assert report.tail.image_indices  # at least one image in the slowest decile
    rendered = report.render()
    assert "slowest decile" in rendered


def test_image_records_empty_on_zero_completions():
    from repro.dataflow import build_pipeline

    graph, _ = _build("chain")
    images = _images(graph, n=2)
    # Withhold every image beyond the cycle budget: the run aborts with
    # nothing completed, and the report must degrade to explicit n/a.
    pipeline = build_pipeline(graph, images, arrival_cycles=[10**9, 2 * 10**9])
    with pytest.raises(RuntimeError):
        pipeline.engine.run(lambda: pipeline.sink.done, max_cycles=5_000)
    report = latency_report(pipeline, 5_000)
    assert report.n_images == 0
    assert image_records(pipeline) == []
    assert report.service.count == 0
    assert "n/a (no completed images)" in report.render()
    # And the JSON form survives zero images (no division anywhere).
    payload = report.as_dict()
    assert payload["images"] == 0
