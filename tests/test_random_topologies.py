"""Random-topology property tests: the streaming substrate must be bit-exact
with the functional executor for *any* valid network, not just the zoo."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.models import random_threshold_unit
from repro.nn.graph import (
    AddNode,
    ConvNode,
    GlobalAvgSumNode,
    InputNode,
    LayerGraph,
    MaxPoolNode,
    ThresholdNode,
)
from repro.nn.verify import verify_backends


def _signs(rng, shape):
    return (rng.integers(0, 2, size=shape) * 2 - 1).astype(np.int8)


def build_random_graph(seed: int, size: int, depth: int, with_residual: bool) -> LayerGraph:
    """A random but always-valid network: conv/pool stages, optional residual."""
    rng = np.random.default_rng(seed)
    g = LayerGraph(name=f"rand-{seed}")
    g.add(InputNode("input", size, size, int(rng.integers(1, 4)), 2))
    prev = "input"

    def spec():
        return g.specs[prev]

    for i in range(depth):
        s = spec()
        choice = rng.integers(0, 3)
        if choice == 0 and min(s.height, s.width) >= 4 and s.kind == "levels":
            node = MaxPoolNode(f"pool{i}", 2)
            g.add(node, [prev])
            prev = node.name
            continue
        k = int(rng.choice([1, 3]))
        pad = 1 if (k == 3 and rng.integers(0, 2)) else 0
        stride = int(rng.choice([1, 2])) if min(s.height, s.width) >= k + 2 else 1
        if s.height + 2 * pad < k or s.width + 2 * pad < k:
            k, pad, stride = 1, 0, 1
        out_ch = int(rng.integers(1, 5))
        node = ConvNode(
            f"conv{i}",
            _signs(rng, (k, k, s.channels, out_ch)),
            stride=stride,
            pad=pad,
            threshold=random_threshold_unit(rng, out_ch, 2),
        )
        g.add(node, [prev])
        prev = node.name

    if with_residual:
        s = spec()
        if s.kind == "levels" and min(s.height, s.width) >= 3:
            c = s.channels
            conv1 = ConvNode("res.conv1", _signs(rng, (3, 3, c, c)), stride=1, pad=1)
            g.add(conv1, [prev])
            add1 = AddNode("res.add1")
            g.add(add1, [conv1.name, prev])
            th1 = ThresholdNode("res.bnact1", random_threshold_unit(rng, c, 2))
            g.add(th1, [add1.name])
            conv2 = ConvNode("res.conv2", _signs(rng, (3, 3, c, c)), stride=1, pad=1)
            g.add(conv2, [th1.name])
            add2 = AddNode("res.add2")
            g.add(add2, [conv2.name, add1.name])
            th2 = ThresholdNode("res.bnact2", random_threshold_unit(rng, c, 2))
            g.add(th2, [add2.name])
            prev = th2.name

    s = spec()
    if s.kind == "levels":
        g.add(GlobalAvgSumNode("avg"), [prev])
        prev = "avg"
        g.add(ConvNode("head", _signs(rng, (1, 1, s.channels, 3))), [prev])
    g.validate()
    return g


@given(
    st.integers(0, 2**31 - 1),
    st.integers(6, 12),
    st.integers(1, 4),
    st.booleans(),
)
@settings(max_examples=20, deadline=None)
def test_random_network_backends_agree(seed, size, depth, with_residual):
    """Invariant: functional == bitops == streaming for random topologies."""
    graph = build_random_graph(seed, size, depth, with_residual)
    rng = np.random.default_rng(seed ^ 0xABCDEF)
    levels = rng.integers(0, 4, size=(1, size, size, graph.input_spec.channels))
    report = verify_backends(graph, levels, max_cycles=5_000_000)
    assert report.all_agree, report.summary()


class TestVerifyBackendsAPI:
    def test_report_fields(self, tiny_chain_model, tiny_chain_graph, images16):
        from repro.nn import input_to_levels

        lv = input_to_levels(images16[:1], tiny_chain_model.layers[0].quantizer)
        report = verify_backends(tiny_chain_graph, lv)
        assert report.all_agree
        assert report.streaming_latency_cycles > 0
        assert "OK" in report.summary()

    def test_skip_bitops(self, tiny_chain_model, tiny_chain_graph, images16):
        from repro.nn import input_to_levels

        lv = input_to_levels(images16[:1], tiny_chain_model.layers[0].quantizer)
        report = verify_backends(tiny_chain_graph, lv, check_bitops=False)
        assert report.functional_vs_streaming
