"""Tests for the synthetic dataset substrate."""

import numpy as np
import pytest

from repro.datasets import DATASET_PRESETS, make_dataset


class TestPresets:
    def test_preset_shapes(self):
        assert DATASET_PRESETS["cifar10-like"] == (32, 3, 10)
        assert DATASET_PRESETS["imagenet-like"] == (224, 3, 1000)

    def test_unknown_preset_raises(self):
        with pytest.raises(ValueError):
            make_dataset("mnist")


class TestGeneration:
    def test_shapes(self):
        ds = make_dataset("cifar10-like", n_train=20, n_test=10)
        assert ds.x_train.shape == (20, 32, 32, 3)
        assert ds.x_test.shape == (10, 32, 32, 3)
        assert ds.y_train.shape == (20,)
        assert ds.input_shape == (32, 32, 3)

    def test_value_range(self):
        ds = make_dataset("cifar10-like", n_train=30, n_test=5, seed=1)
        assert ds.x_train.min() >= 0.0
        assert ds.x_train.max() < 1.0

    def test_labels_in_range(self):
        ds = make_dataset("cifar10-like", n_train=50, n_test=5, classes=4)
        assert set(np.unique(ds.y_train)) <= set(range(4))

    def test_deterministic(self):
        a = make_dataset("cifar10-like", n_train=10, n_test=5, seed=7)
        b = make_dataset("cifar10-like", n_train=10, n_test=5, seed=7)
        assert (a.x_train == b.x_train).all() and (a.y_train == b.y_train).all()

    def test_seed_changes_data(self):
        a = make_dataset("cifar10-like", n_train=10, n_test=5, seed=1)
        b = make_dataset("cifar10-like", n_train=10, n_test=5, seed=2)
        assert not (a.x_train == b.x_train).all()

    def test_overrides(self):
        ds = make_dataset("cifar10-like", n_train=8, n_test=4, size=16, channels=1, classes=3)
        assert ds.x_train.shape == (8, 16, 16, 1)
        assert ds.classes == 3

    def test_class_structure_is_learnable(self):
        """A nearest-class-mean classifier must beat chance comfortably."""
        ds = make_dataset("cifar10-like", n_train=200, n_test=100, classes=4, size=16, seed=3)
        means = np.stack([ds.x_train[ds.y_train == c].mean(axis=0) for c in range(4)])
        flat_means = means.reshape(4, -1)
        flat_test = ds.x_test.reshape(len(ds.x_test), -1)
        dists = ((flat_test[:, None, :] - flat_means[None]) ** 2).sum(axis=-1)
        acc = (dists.argmin(axis=1) == ds.y_test).mean()
        assert acc > 0.5, f"nearest-mean accuracy {acc}"

    def test_noise_makes_it_harder(self):
        clean = make_dataset("cifar10-like", n_train=100, n_test=50, classes=4, size=16, noise=0.01, seed=4)
        noisy = make_dataset("cifar10-like", n_train=100, n_test=50, classes=4, size=16, noise=0.6, seed=4)

        def nm_acc(ds):
            means = np.stack([ds.x_train[ds.y_train == c].mean(axis=0) for c in range(4)]).reshape(4, -1)
            flat = ds.x_test.reshape(len(ds.x_test), -1)
            d = ((flat[:, None, :] - means[None]) ** 2).sum(axis=-1)
            return (d.argmin(axis=1) == ds.y_test).mean()

        assert nm_acc(clean) >= nm_acc(noisy)
