"""Unit tests for the bit-packed arithmetic substrate."""

import numpy as np
import pytest

from repro.quantization import (
    BitPackedMatrix,
    BitplaneTensor,
    bitplane_dot,
    bitplane_gemm,
    masked_popcount_dot,
    pack_bitplanes,
    pack_bits,
    pack_signs,
    packed_words,
    popcount,
    unpack_bits,
    unpack_signs,
    xnor_popcount_dot,
    xnor_popcount_gemm,
)

RNG = np.random.default_rng(0)


class TestPackedWords:
    def test_exact_multiples(self):
        assert packed_words(64) == 1
        assert packed_words(128) == 2

    def test_rounding_up(self):
        assert packed_words(1) == 1
        assert packed_words(65) == 2

    def test_zero(self):
        assert packed_words(0) == 0

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            packed_words(-1)


class TestPackBits:
    @pytest.mark.parametrize("n", [1, 7, 63, 64, 65, 127, 128, 200])
    def test_roundtrip(self, n):
        bits = RNG.integers(0, 2, size=n).astype(np.uint8)
        assert (unpack_bits(pack_bits(bits), n) == bits).all()

    def test_batched_roundtrip(self):
        bits = RNG.integers(0, 2, size=(4, 5, 70)).astype(np.uint8)
        assert (unpack_bits(pack_bits(bits), 70) == bits).all()

    def test_lsb_first_layout(self):
        bits = np.zeros(64, dtype=np.uint8)
        bits[0] = 1
        assert pack_bits(bits)[0] == 1
        bits = np.zeros(64, dtype=np.uint8)
        bits[63] = 1
        assert pack_bits(bits)[0] == np.uint64(1) << np.uint64(63)

    def test_tail_bits_zero(self):
        bits = np.ones(65, dtype=np.uint8)
        words = pack_bits(bits)
        # the 63 tail bits of word 1 must be zero
        assert words[1] == 1

    def test_scalar_rejected(self):
        with pytest.raises(ValueError):
            pack_bits(np.uint8(1))


class TestPackSigns:
    @pytest.mark.parametrize("n", [1, 64, 100])
    def test_roundtrip(self, n):
        signs = RNG.choice([-1, 1], size=(3, n)).astype(np.int8)
        assert (unpack_signs(pack_signs(signs), n) == signs).all()

    def test_rejects_non_sign_values(self):
        with pytest.raises(ValueError):
            pack_signs(np.array([1, 0, -1]))

    def test_plus_one_maps_to_set_bit(self):
        words = pack_signs(np.array([1, -1, 1, -1]))
        assert words[0] == 0b0101


class TestPopcount:
    def test_known_value(self):
        assert popcount(np.array([0xFF], dtype=np.uint64))[()] == 8

    def test_sums_over_axis(self):
        w = np.array([[1, 3], [7, 0]], dtype=np.uint64)
        assert popcount(w).tolist() == [3, 3]

    def test_elementwise(self):
        w = np.array([1, 3], dtype=np.uint64)
        assert popcount(w, axis=None).tolist() == [1, 2]


class TestXnorDot:
    @pytest.mark.parametrize("n", [1, 3, 64, 65, 300])
    def test_matches_dense(self, n):
        a = RNG.choice([-1, 1], size=n)
        b = RNG.choice([-1, 1], size=n)
        got = xnor_popcount_dot(pack_signs(a), pack_signs(b), n)
        assert got.sum() == int(a @ b)

    def test_identical_vectors(self):
        a = RNG.choice([-1, 1], size=100)
        assert xnor_popcount_dot(pack_signs(a), pack_signs(a), 100).sum() == 100

    def test_opposite_vectors(self):
        a = RNG.choice([-1, 1], size=100)
        assert xnor_popcount_dot(pack_signs(a), pack_signs(-a), 100).sum() == -100


class TestXnorGemm:
    @pytest.mark.parametrize("shape", [(1, 1, 1), (3, 5, 64), (7, 4, 130), (2, 8, 31)])
    def test_matches_dense(self, shape):
        o, n, k = shape
        w = RNG.choice([-1, 1], size=(o, k))
        x = RNG.choice([-1, 1], size=(n, k))
        got = xnor_popcount_gemm(pack_signs(w), pack_signs(x), k)
        assert (got == x @ w.T).all()


class TestMaskedPopcount:
    @pytest.mark.parametrize("n", [5, 64, 129])
    def test_matches_dense(self, n):
        w = RNG.choice([-1, 1], size=n)
        m = RNG.integers(0, 2, size=n)
        got = masked_popcount_dot(pack_signs(w), pack_bits(m))
        assert got.sum() == int(w @ m)


class TestBitplanes:
    @pytest.mark.parametrize("bits", [1, 2, 3, 8])
    def test_roundtrip(self, bits):
        x = RNG.integers(0, 1 << bits, size=(4, 90))
        bt = BitplaneTensor.from_levels(x, bits)
        assert (bt.to_levels() == x).all()

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError):
            pack_bitplanes(np.array([[4]]), 2)
        with pytest.raises(ValueError):
            pack_bitplanes(np.array([[-1]]), 2)

    def test_zero_bits_raises(self):
        with pytest.raises(ValueError):
            pack_bitplanes(np.array([[0]]), 0)

    @pytest.mark.parametrize("bits", [1, 2, 4])
    def test_bitplane_dot_matches_dense(self, bits):
        n = 150
        w = RNG.choice([-1, 1], size=n)
        x = RNG.integers(0, 1 << bits, size=n)
        planes = pack_bitplanes(x[None, :], bits)
        got = bitplane_dot(pack_signs(w)[None, :], planes)
        assert got.sum() == int(w @ x)

    @pytest.mark.parametrize("bits", [1, 2, 3])
    def test_bitplane_gemm_matches_dense(self, bits):
        w = RNG.choice([-1, 1], size=(6, 100))
        x = RNG.integers(0, 1 << bits, size=(4, 100))
        bt = BitplaneTensor.from_levels(x, bits)
        got = bitplane_gemm(pack_signs(w), list(bt.planes))
        assert (got == x @ w.T).all()

    def test_empty_planes_raise(self):
        with pytest.raises(ValueError):
            bitplane_gemm(pack_signs(RNG.choice([-1, 1], size=(2, 8))), [])


class TestBitPackedMatrix:
    def test_from_signs_roundtrip(self):
        signs = RNG.choice([-1, 1], size=(5, 77)).astype(np.int8)
        m = BitPackedMatrix.from_signs(signs)
        assert m.rows == 5 and m.cols == 77
        assert (m.to_signs() == signs).all()

    def test_from_float_binarizes_with_sign(self):
        w = np.array([[0.5, -0.1, 0.0, -2.0]])
        m = BitPackedMatrix.from_float(w)
        assert (m.to_signs() == [[1, -1, 1, -1]]).all()

    def test_matmul_binary(self):
        w = RNG.choice([-1, 1], size=(4, 70))
        x = RNG.choice([-1, 1], size=(3, 70))
        m = BitPackedMatrix.from_signs(w)
        assert (m.matmul_binary(pack_signs(x)) == x @ w.T).all()

    def test_matmul_planes(self):
        w = RNG.choice([-1, 1], size=(4, 70))
        x = RNG.integers(0, 4, size=(3, 70))
        m = BitPackedMatrix.from_signs(w)
        bt = BitplaneTensor.from_levels(x, 2)
        assert (m.matmul_planes(list(bt.planes)) == x @ w.T).all()

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            BitPackedMatrix.from_signs(np.ones(5))

    def test_nbytes_positive(self):
        m = BitPackedMatrix.from_signs(RNG.choice([-1, 1], size=(2, 65)))
        assert m.nbytes == 2 * 2 * 8
