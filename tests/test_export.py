"""Exporter correctness: the float eval model and the integer IR must agree."""

import numpy as np
import pytest

from repro.models import (
    build_alexnet,
    build_resnet,
    build_vgg_like,
    make_input_quantizer,
    randomize_batchnorm,
)
from repro.nn import (
    BatchNorm2d,
    ExportError,
    QActivation,
    QConv2d,
    QLinear,
    Sequential,
    Tensor,
    export_model,
    input_to_levels,
    run_graph,
)
from repro.nn.inference import classify

RNG = np.random.default_rng(7)


def assert_bit_exact(model, shape, n=3, seed=0):
    rng = np.random.default_rng(seed)
    model.eval()
    graph = export_model(model, shape)
    x = rng.uniform(0, 1, size=(n, *shape))
    levels = input_to_levels(x, model.layers[0].quantizer)
    got = run_graph(graph, levels).logits(graph)
    ref = model(Tensor(x)).data
    np.testing.assert_allclose(got, ref, atol=1e-9)
    return graph, levels


class TestChainExport:
    def test_vgg_like_bit_exact(self, tiny_chain_model):
        assert_bit_exact(tiny_chain_model, (16, 16, 3))

    def test_bnn_variant_bit_exact(self):
        model = build_vgg_like(input_size=16, width=0.0625, classes=4, act_bits=1, seed=3)
        randomize_batchnorm(model, np.random.default_rng(4))
        assert_bit_exact(model, (16, 16, 3))

    def test_alexnet_tiny_bit_exact(self):
        model = build_alexnet(input_size=67, width=0.04, classes=4, seed=5)
        randomize_batchnorm(model, np.random.default_rng(6))
        assert_bit_exact(model, (67, 67, 3), n=1)

    def test_bitops_route_identical(self, tiny_chain_model, tiny_chain_graph, images16):
        levels = input_to_levels(images16, tiny_chain_model.layers[0].quantizer)
        a = run_graph(tiny_chain_graph, levels)
        b = run_graph(tiny_chain_graph, levels, use_bitops=True)
        assert (a.output == b.output).all()

    def test_classify_matches_float_argmax(self, tiny_chain_model, tiny_chain_graph, images16):
        levels = input_to_levels(images16, tiny_chain_model.layers[0].quantizer)
        ref = tiny_chain_model(Tensor(images16)).data.argmax(axis=-1)
        assert (classify(tiny_chain_graph, levels) == ref).all()


class TestResidualExport:
    def test_resnet_bit_exact(self, tiny_resnet_model):
        assert_bit_exact(tiny_resnet_model, (16, 16, 3))

    def test_resnet_with_stem_pool_bit_exact(self):
        model = build_resnet(
            input_size=20, width=0.0625, classes=4,
            stages=[(64, 1, 1)], stem_kernel=3, stem_stride=1, stem_pool=True, seed=11,
        )
        randomize_batchnorm(model, np.random.default_rng(12))
        assert_bit_exact(model, (20, 20, 3), n=2)

    def test_deeper_resnet_bit_exact(self):
        model = build_resnet(
            input_size=16, width=0.125, classes=4,
            stages=[(32, 2, 1), (64, 1, 2)], stem_kernel=3, stem_stride=1, stem_pool=False, seed=13,
        )
        randomize_batchnorm(model, np.random.default_rng(14))
        assert_bit_exact(model, (16, 16, 3), n=2)

    def test_skip_graph_structure(self, tiny_resnet_graph):
        """Residual blocks lower to conv/add/threshold with fan-out."""
        from repro.nn.graph import AddNode

        adds = [n for n in tiny_resnet_graph.order if isinstance(tiny_resnet_graph.nodes[n], AddNode)]
        assert len(adds) == 4  # two blocks x two adds
        for a in adds:
            assert len(tiny_resnet_graph.parents(a)) == 2


class TestExportValidation:
    def test_requires_input_quantizer(self):
        model = Sequential(QConv2d(3, 4, 3))
        with pytest.raises(ExportError):
            export_model(model, (8, 8, 3))

    def test_pad_value_mismatch_rejected(self):
        in_q = make_input_quantizer(2)
        conv = QConv2d(3, 4, 3, pad=1, pad_value=0.77)  # wrong: level-0 value is 0.125
        model = Sequential(in_q, conv, BatchNorm2d(4), QActivation(bits=2, d=0.5))
        model.eval()
        with pytest.raises(ExportError, match="pad_value"):
            export_model(model, (8, 8, 3))

    def test_bn_without_activation_rejected(self):
        in_q = make_input_quantizer(2)
        model = Sequential(in_q, QConv2d(3, 4, 3), BatchNorm2d(4))
        model.eval()
        with pytest.raises(ExportError):
            export_model(model, (8, 8, 3))

    def test_non_binary_conv_rejected(self):
        in_q = make_input_quantizer(2)
        model = Sequential(in_q, QConv2d(3, 4, 3, binary=False))
        model.eval()
        with pytest.raises(ExportError, match="binary"):
            export_model(model, (8, 8, 3))

    def test_linear_shape_mismatch_rejected(self):
        from repro.nn import Flatten

        in_q = make_input_quantizer(2)
        model = Sequential(in_q, Flatten(), QLinear(999, 4))
        model.eval()
        with pytest.raises(ExportError):
            export_model(model, (8, 8, 3))

    def test_unsupported_module_rejected(self):
        class Strange:
            pass

        from repro.nn.modules import Module

        class StrangeModule(Module):
            def forward(self, x):
                return x

        in_q = make_input_quantizer(2)
        model = Sequential(in_q, StrangeModule())
        model.eval()
        with pytest.raises(ExportError, match="unsupported"):
            export_model(model, (8, 8, 3))


class TestAffineMetadata:
    def test_output_affine_present(self, tiny_chain_graph):
        assert tiny_chain_graph.output_affine is not None

    def test_logits_requires_affine(self, tiny_chain_graph, tiny_chain_model, images16):
        levels = input_to_levels(images16, tiny_chain_model.layers[0].quantizer)
        res = run_graph(tiny_chain_graph, levels)
        affine = tiny_chain_graph.output_affine
        tiny_chain_graph.output_affine = None
        try:
            with pytest.raises(ValueError):
                res.logits(tiny_chain_graph)
        finally:
            tiny_chain_graph.output_affine = affine

    def test_input_validation(self, tiny_chain_graph):
        with pytest.raises(ValueError):
            run_graph(tiny_chain_graph, np.zeros((4, 4, 3), dtype=np.int64))
        bad = np.full((16, 16, 3), 9, dtype=np.int64)  # out of 2-bit range
        with pytest.raises(ValueError):
            run_graph(tiny_chain_graph, bad)
