"""Unit tests for quantizers and threshold folding."""

import numpy as np
import pytest

from repro.quantization import (
    BatchNormParams,
    SignQuantizer,
    ThresholdUnit,
    UniformQuantizer,
    fold_batchnorm,
    fold_batchnorm_sign,
)

RNG = np.random.default_rng(3)


class TestSignQuantizer:
    def test_values(self):
        q = SignQuantizer()
        assert (q.quantize(np.array([-0.5, 0.0, 2.0])) == [-1, 1, 1]).all()

    def test_bits_and_levels(self):
        q = SignQuantizer()
        assert q.bits == 1 and q.levels == 2

    def test_dequantize_identity(self):
        q = SignQuantizer()
        assert (q.dequantize(np.array([-1, 1])) == [-1.0, 1.0]).all()


class TestUniformQuantizer:
    def test_level_count(self):
        assert UniformQuantizer(bits=2).levels == 4
        assert UniformQuantizer(bits=3).levels == 8

    def test_quantize_level_basics(self):
        q = UniformQuantizer(bits=2, lo=0.0, d=0.5)
        x = np.array([-1.0, 0.0, 0.49, 0.5, 1.2, 1.99, 2.5])
        assert q.quantize_level(x).tolist() == [0, 0, 0, 1, 2, 3, 3]

    def test_clamping(self):
        q = UniformQuantizer(bits=1, lo=0.0, d=1.0)
        assert q.quantize_level(np.array([-100.0, 100.0])).tolist() == [0, 1]

    def test_dequantize_midpoint(self):
        q = UniformQuantizer(bits=2, lo=0.0, d=0.5, midpoint=True)
        assert q.dequantize(np.array([0, 3])).tolist() == [0.25, 1.75]

    def test_dequantize_left_edge(self):
        q = UniformQuantizer(bits=2, lo=0.0, d=0.5, midpoint=False)
        assert q.dequantize(np.array([0, 3])).tolist() == [0.0, 1.5]

    def test_boundaries(self):
        q = UniformQuantizer(bits=2, lo=1.0, d=0.5)
        assert q.boundaries().tolist() == [1.5, 2.0, 2.5]

    def test_hi(self):
        q = UniformQuantizer(bits=2, lo=0.0, d=0.25)
        assert q.hi == 1.0

    def test_quantize_is_idempotent(self):
        q = UniformQuantizer(bits=2, lo=0.0, d=0.5)
        x = RNG.normal(0, 2, size=100)
        once = q.quantize(x)
        assert np.allclose(q.quantize(once), once)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            UniformQuantizer(bits=0)
        with pytest.raises(ValueError):
            UniformQuantizer(bits=2, d=0.0)

    def test_nonzero_lo(self):
        q = UniformQuantizer(bits=1, lo=-1.0, d=1.0)
        assert q.quantize_level(np.array([-0.5, 0.5])).tolist() == [0, 1]


def random_bn(channels, rng, gamma_sign=None):
    gamma = rng.uniform(0.3, 2.0, channels)
    if gamma_sign is not None:
        gamma = gamma * gamma_sign
    else:
        gamma = gamma * rng.choice([-1.0, 1.0], channels)
    return BatchNormParams.from_moments(
        gamma=gamma,
        beta=rng.normal(0, 1, channels),
        running_mean=rng.normal(0, 2, channels),
        running_var=rng.uniform(0.2, 3.0, channels),
    )


class TestBatchNormParams:
    def test_apply_matches_formula(self):
        p = random_bn(4, RNG)
        a = RNG.normal(0, 2, size=(10, 4))
        expected = p.gamma * (a - p.mu) * p.inv_std + p.beta
        assert np.allclose(p.apply(a), expected)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            BatchNormParams(np.ones(3), np.ones(2), np.ones(3), np.ones(3))

    def test_channel_axis(self):
        p = random_bn(5, RNG)
        a = RNG.normal(0, 1, size=(5, 7))
        moved = p.apply(a, channel_axis=0)
        assert np.allclose(moved, p.apply(a.T).T)

    def test_from_moments_inv_std(self):
        p = BatchNormParams.from_moments(np.ones(2), np.zeros(2), np.zeros(2), np.array([3.0, 8.0]), eps=1.0)
        assert np.allclose(p.inv_std, [0.5, 1.0 / 3.0])


class TestFoldBatchnorm:
    @pytest.mark.parametrize("bits", [1, 2, 3])
    @pytest.mark.parametrize("gamma_sign", [1.0, -1.0, None])
    def test_matches_reference(self, bits, gamma_sign):
        rng = np.random.default_rng(bits * 10 + 1)
        p = random_bn(6, rng, gamma_sign)
        q = UniformQuantizer(bits=bits, lo=0.0, d=0.7)
        unit = fold_batchnorm(p, q)
        a = rng.normal(0, 4, size=(50, 6))
        assert (unit.apply(a) == q.quantize_level(p.apply(a))).all()

    def test_nonzero_lo_anchor(self):
        rng = np.random.default_rng(5)
        p = random_bn(4, rng)
        q = UniformQuantizer(bits=2, lo=-1.0, d=0.5)
        unit = fold_batchnorm(p, q)
        a = rng.normal(0, 3, size=(40, 4))
        assert (unit.apply(a) == q.quantize_level(p.apply(a))).all()

    def test_zero_slope_constant_level(self):
        p = BatchNormParams(
            gamma=np.array([0.0]), mu=np.array([1.0]), inv_std=np.array([1.0]), beta=np.array([1.2])
        )
        q = UniformQuantizer(bits=2, lo=0.0, d=0.5)
        unit = fold_batchnorm(p, q)
        a = np.linspace(-5, 5, 11)[:, None]
        expected = q.quantize_level(np.full_like(a, 1.2))
        assert (unit.apply(a) == expected).all()

    def test_binary_search_equivalence(self):
        rng = np.random.default_rng(6)
        p = random_bn(8, rng)
        q = UniformQuantizer(bits=3, lo=0.0, d=0.4)
        unit = fold_batchnorm(p, q)
        a = rng.normal(0, 5, size=(30, 8))
        assert (unit.apply_binary_search(a) == unit.apply(a)).all()

    def test_two_parameters_suffice(self):
        """The paper's claim: τ and d/(γ·i) generate all endpoints."""
        rng = np.random.default_rng(7)
        p = random_bn(3, rng, gamma_sign=1.0)
        q = UniformQuantizer(bits=2, lo=0.0, d=0.5)
        unit = fold_batchnorm(p, q)
        ends = unit.endpoints()
        alphas = np.arange(1, 4)
        manual = unit.tau[:, None] + alphas[None, :] * unit.step[:, None]
        assert np.allclose(ends, manual)

    def test_endpoint_count(self):
        rng = np.random.default_rng(8)
        unit = fold_batchnorm(random_bn(2, rng), UniformQuantizer(bits=4, d=0.3))
        assert unit.endpoints().shape == (2, 15)


class TestFoldSign:
    def test_matches_sign_of_batchnorm(self):
        rng = np.random.default_rng(9)
        p = random_bn(6, rng)
        unit = fold_batchnorm_sign(p)
        a = rng.normal(0, 4, size=(60, 6))
        expected = (p.apply(a) >= 0).astype(np.int64)
        assert (unit.apply(a) == expected).all()

    def test_zero_slope(self):
        p = BatchNormParams(
            gamma=np.array([0.0, 0.0]),
            mu=np.zeros(2),
            inv_std=np.ones(2),
            beta=np.array([-1.0, 1.0]),
        )
        unit = fold_batchnorm_sign(p)
        a = np.zeros((3, 2))
        assert (unit.apply(a) == [0, 1]).all()

    def test_is_one_bit(self):
        rng = np.random.default_rng(10)
        assert fold_batchnorm_sign(random_bn(2, rng)).bits == 1


class TestCacheWords:
    def test_roundtrip_float32(self):
        rng = np.random.default_rng(11)
        p = random_bn(16, rng)
        q = UniformQuantizer(bits=2, lo=0.0, d=0.5)
        unit = fold_batchnorm(p, q)
        words = unit.cache_words()
        assert words.dtype == np.uint64 and words.shape == (16,)
        rebuilt = ThresholdUnit.from_cache_words(words, bits=2)
        assert np.allclose(rebuilt.tau, unit.tau.astype(np.float32))
        assert np.allclose(rebuilt.step, unit.step.astype(np.float32))

    def test_one_word_per_channel(self):
        """§III-B3: the normalization cache has O entries of 64 bits."""
        rng = np.random.default_rng(12)
        unit = fold_batchnorm(random_bn(7, rng), UniformQuantizer(bits=2, d=0.5))
        assert unit.cache_words().nbytes == 7 * 8
