"""Scheduler equivalence for the cycle simulator: exhaustive / fast / leap.

The park/wake scheduler (``Engine.run(..., fast=True)``) and the
steady-state leap scheduler (``simulate(..., mode="leap")``) must both be
*observably identical* to the exhaustive per-cycle tick loop: same total
cycles, same per-image completion cycles, same output tensors, bit-identical
kernel and stream statistics — stall counters included, since the paper's
occupancy and bottleneck analyses are computed from them — and byte-identical
event traces.  These tests drive every tiny topology used across the suite
through all three paths, plus hypothesis-randomized networks for the long
tail of shapes.  (Deeper leap-specific behaviour — demotion, vetoes, the
paper-scale interval check — lives in test_leap.py.)
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dataflow.engine import Engine
from repro.dataflow.kernel import Kernel
from repro.dataflow.manager import simulate
from repro.dataflow.stream import Stream
from repro.dataflow.trace import Tracer
from repro.nn import export_model

from .conftest import make_tiny_chain_model, make_tiny_resnet_model
from .test_random_topologies import build_random_graph


def _half_partition(graph):
    names = [n for n in graph.topological() if n != graph.input_name]
    half = len(names) // 2
    return [names[:half], names[half:]]


def _assert_runs_identical(slow, fast):
    assert fast.cycles == slow.cycles
    assert fast.run.completion_cycles == slow.run.completion_cycles
    assert np.array_equal(fast.output, slow.output)
    for name, a in slow.run.kernel_stats.items():
        b = fast.run.kernel_stats[name]
        assert dataclasses.asdict(b) == dataclasses.asdict(a), f"kernel {name}"
    for name, a in slow.run.stream_stats.items():
        b = fast.run.stream_stats[name]
        assert dataclasses.asdict(b) == dataclasses.asdict(a), f"stream {name}"


def _images(seed: int, n: int = 2, size: int = 16) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.integers(0, 4, size=(n, size, size, 3), dtype=np.int64)


def _case(name: str):
    if name in ("chain", "bitops"):
        graph = export_model(make_tiny_chain_model(), (16, 16, 3), name="tiny-chain")
    else:
        graph = export_model(make_tiny_resnet_model(), (16, 16, 3), name="tiny-resnet")
    kwargs = {}
    if name == "bitops":
        kwargs["use_bitops"] = True
    if name == "multi_dfe":
        kwargs["partition"] = _half_partition(graph)
    return graph, kwargs


@pytest.mark.parametrize("topology", ["chain", "resnet", "bitops", "multi_dfe"])
def test_fast_path_matches_exhaustive(topology):
    graph, kwargs = _case(topology)
    images = _images(0)
    slow = simulate(graph, images, fast=False, **kwargs)
    fast = simulate(graph, images, fast=True, **kwargs)
    _assert_runs_identical(slow, fast)


@pytest.mark.parametrize("topology", ["chain", "resnet", "bitops", "multi_dfe"])
def test_leap_mode_matches_exhaustive_and_fast(topology):
    """Three-way equivalence with the leap scheduler actually leaping.

    Eight images give the pipeline enough steady state for the controller
    to prove a period and jump; everything observable — cycles, outputs,
    stats, and the full event trace — must still be bit-identical.
    """
    graph, kwargs = _case(topology)
    images = _images(1, n=8)
    t_slow, t_fast, t_leap = Tracer(), Tracer(), Tracer()
    slow = simulate(graph, images, mode="exhaustive", trace=t_slow, **kwargs)
    fast = simulate(graph, images, mode="fast", trace=t_fast, **kwargs)
    leap = simulate(graph, images, mode="leap", trace=t_leap, **kwargs)
    _assert_runs_identical(slow, fast)
    _assert_runs_identical(slow, leap)
    assert t_fast.state() == t_slow.state()
    assert t_leap.state() == t_slow.state()
    assert leap.leap_report is not None
    assert leap.leap_report.leaps >= 1, "leap controller never engaged"
    assert fast.leap_report is None


@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    size=st.sampled_from([6, 8, 10]),
    depth=st.integers(1, 3),
    with_residual=st.booleans(),
)
def test_fast_path_matches_exhaustive_random(seed, size, depth, with_residual):
    graph = build_random_graph(seed, size, depth, with_residual)
    rng = np.random.default_rng(seed + 1)
    channels = graph.input_spec.channels
    images = rng.integers(0, 4, size=(5, size, size, channels), dtype=np.int64)
    slow = simulate(graph, images, fast=False)
    fast = simulate(graph, images, fast=True)
    leap = simulate(graph, images, mode="leap")
    _assert_runs_identical(slow, fast)
    _assert_runs_identical(slow, leap)


# -- synthetic regression topologies ------------------------------------
#
# Hand-built kernels for scheduler edge cases the model-derived graphs
# cannot reach.  They follow the Kernel stats conventions exactly so the
# fast path's bulk accounting applies to them unchanged, and they record
# every live tick cycle so tests can assert the clock never ran backwards.


class _RecordingKernel(Kernel):
    """Base for synthetic kernels: records the cycle of every live tick."""

    def __init__(self, name: str) -> None:
        super().__init__(name)
        self.tick_cycles: list[int] = []

    def tick(self, cycle: int) -> int | None:
        self.tick_cycles.append(cycle)
        return self._tick(cycle)


class _ListSource(_RecordingKernel):
    """Pushes a fixed list of values, one per cycle; idles when drained."""

    blocked_rejects_output = True

    def __init__(self, name: str, values: list[int]) -> None:
        super().__init__(name)
        self._values = list(values)
        self._pos = 0

    def _tick(self, cycle: int) -> int | None:
        if self._pos >= len(self._values):
            return self._idle(cycle)
        if self.outputs[0].push(self._values[self._pos], cycle):
            self._pos += 1
            self.stats.elements_out += 1
            self.stats.mark_active(cycle)
            return None
        return self._blocked(cycle)


class _EagerAdd(_RecordingKernel):
    """Adds two streams, popping input 0 *before* checking input 1.

    The eager pop is legal — the element is held across ticks, and every
    cycle the kernel then spends parked is side-effect-free — but it is
    exactly the shape that wakes a blocked writer whose sweep slot has
    already passed, leaving the writer's ``_wake_at`` in the past.  With
    every kernel parked right after, the fast path's fast-forward used to
    adopt that stale wake-up and run the clock backwards.
    """

    def __init__(self, name: str) -> None:
        super().__init__(name)
        self._held: int | None = None

    def _tick(self, cycle: int) -> int | None:
        a, b = self.inputs
        if self._held is None and a.can_pop(cycle):
            self._held = a.pop(cycle)
            self.stats.elements_in += 1
        if self._held is None or not b.can_pop(cycle):
            return self._starved(cycle)
        out = self.outputs[0]
        if not out.can_push():
            return self._blocked(cycle)
        out.push(self._held + b.pop(cycle), cycle)
        self._held = None
        self.stats.elements_in += 1
        self.stats.elements_out += 1
        self.stats.mark_active(cycle)
        return None


class _CountSink(_RecordingKernel):
    """Pops everything that arrives; done after ``expected`` elements."""

    def __init__(self, name: str, expected: int) -> None:
        super().__init__(name)
        self.expected = expected
        self.received: list[int] = []

    @property
    def done(self) -> bool:
        return len(self.received) >= self.expected

    def _tick(self, cycle: int) -> int | None:
        inp = self.inputs[0]
        if not inp.can_pop(cycle):
            return self._starved(cycle)
        self.received.append(inp.pop(cycle))
        self.stats.elements_in += 1
        self.stats.mark_active(cycle)
        return None


class _RingStage(_RecordingKernel):
    """Pass-through +1 stage used to build an (intentionally) deadlocked ring."""

    def _tick(self, cycle: int) -> int | None:
        inp = self.inputs[0]
        if not inp.can_pop(cycle):
            return self._starved(cycle)
        if not self.outputs[0].can_push():
            return self._blocked(cycle)
        self.outputs[0].push(inp.pop(cycle) + 1, cycle)
        self.stats.elements_in += 1
        self.stats.elements_out += 1
        self.stats.mark_active(cycle)
        return None


def _build_rewind_topology():
    """The clock-rewind regression shape (see _EagerAdd).

    Sweep order puts the capacity-1 writer ``w`` before the eager adder
    ``e``; ``p`` feeds the adder's second input through a latency-6 link so
    that after the eager pop *every* kernel is parked and the fast path
    fast-forwards — with ``w`` holding a wake-up cycle already in the past.
    """
    engine = Engine("rewind")
    w = _ListSource("w", [10, 11, 12])
    p = _ListSource("p", [1])
    e = _EagerAdd("e")
    s = _CountSink("s", expected=1)
    for kernel in (w, p, e, s):
        engine.add_kernel(kernel)
    engine.connect(w, e, Stream("a", capacity=1))
    engine.connect(p, e, Stream("b", capacity=4, latency=6))
    engine.connect(e, s, Stream("out", capacity=4))
    return engine, s


def _run_engine(fast: bool, trace: Tracer | None = None):
    engine, sink = _build_rewind_topology()
    cycles = engine.run(lambda: sink.done, max_cycles=10_000, fast=fast, trace=trace)
    kstats, sstats = engine.collect_stats()
    return engine, sink, cycles, kstats, sstats


def test_fast_forward_never_rewinds_the_clock():
    """Regression: a stale pop-hook wake-up must not drag the clock back.

    Pre-fix, ``cycle = target`` in the fast-forward adopted the parked
    writer's past wake cycle, the writer ticked the same cycle twice, and
    its push landed one cycle earlier than the exhaustive loop's.
    """
    slow_engine, slow_sink, slow_cycles, slow_k, slow_s = _run_engine(fast=False)
    fast_engine, fast_sink, fast_cycles, fast_k, fast_s = _run_engine(fast=True)

    assert fast_cycles == slow_cycles
    assert fast_sink.received == slow_sink.received
    for name, a in slow_k.items():
        assert dataclasses.asdict(fast_k[name]) == dataclasses.asdict(a), f"kernel {name}"
    for name, a in slow_s.items():
        assert dataclasses.asdict(fast_s[name]) == dataclasses.asdict(a), f"stream {name}"
    # No kernel may ever observe the clock move backwards, and no kernel
    # may tick the same cycle twice (the rewind's double-tick signature).
    for kernel in fast_engine.kernels:
        ticks = kernel.tick_cycles
        assert all(b > a for a, b in zip(ticks, ticks[1:])), f"{kernel.name}: {ticks}"


def test_fast_forward_rewind_trace_equality():
    """The regression topology also produces identical event traces."""
    t_slow, t_fast = Tracer(), Tracer()
    _run_engine(fast=False, trace=t_slow)
    _run_engine(fast=True, trace=t_fast)
    assert t_fast.state() == t_slow.state()


@pytest.mark.parametrize("fast", [False, True])
def test_deadlock_aborts_at_max_cycles(fast):
    """A cyclic starvation deadlock must abort at exactly ``max_cycles``."""
    engine = Engine("ring")
    a = _RingStage("a")
    b = _RingStage("b")
    engine.add_kernel(a)
    engine.add_kernel(b)
    engine.connect(a, b, Stream("ab", capacity=2))
    engine.connect(b, a, Stream("ba", capacity=2))
    with pytest.raises(RuntimeError, match="no convergence after 500 cycles"):
        engine.run(lambda: False, max_cycles=500, fast=fast)


def test_deadlock_abort_settles_identical_stall_counters():
    """Fast and exhaustive abort with bit-identical settled statistics."""
    results = {}
    for fast in (False, True):
        engine = Engine("ring")
        a = _RingStage("a")
        b = _RingStage("b")
        engine.add_kernel(a)
        engine.add_kernel(b)
        engine.connect(a, b, Stream("ab", capacity=2))
        engine.connect(b, a, Stream("ba", capacity=2))
        with pytest.raises(RuntimeError):
            engine.run(lambda: False, max_cycles=500, fast=fast)
        kstats, sstats = engine.collect_stats()
        results[fast] = (
            {n: dataclasses.asdict(s) for n, s in kstats.items()},
            {n: dataclasses.asdict(s) for n, s in sstats.items()},
        )
    assert results[True] == results[False]
    kstats, _ = results[True]
    assert kstats["a"]["input_starved_cycles"] == 500
    assert kstats["b"]["input_starved_cycles"] == 500


@pytest.mark.parametrize("max_cycles", [0, -1])
def test_run_rejects_non_positive_cycle_budget(max_cycles):
    engine = Engine("guard")
    with pytest.raises(ValueError, match="max_cycles must be a positive cycle budget"):
        engine.run(lambda: True, max_cycles=max_cycles)
