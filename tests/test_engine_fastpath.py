"""Fast-path / exhaustive-path equivalence for the cycle simulator.

The park/wake scheduler (``Engine.run(..., fast=True)``) must be *observably
identical* to the exhaustive per-cycle tick loop: same total cycles, same
per-image completion cycles, same output tensors, and bit-identical kernel
and stream statistics — stall counters included, since the paper's occupancy
and bottleneck analyses are computed from them.  These tests drive every
tiny topology used across the suite through both paths, plus
hypothesis-randomized networks for the long tail of shapes.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dataflow.manager import simulate
from repro.nn import export_model

from .conftest import make_tiny_chain_model, make_tiny_resnet_model
from .test_random_topologies import build_random_graph


def _half_partition(graph):
    names = [n for n in graph.topological() if n != graph.input_name]
    half = len(names) // 2
    return [names[:half], names[half:]]


def _assert_runs_identical(slow, fast):
    assert fast.cycles == slow.cycles
    assert fast.run.completion_cycles == slow.run.completion_cycles
    assert np.array_equal(fast.output, slow.output)
    for name, a in slow.run.kernel_stats.items():
        b = fast.run.kernel_stats[name]
        assert dataclasses.asdict(b) == dataclasses.asdict(a), f"kernel {name}"
    for name, a in slow.run.stream_stats.items():
        b = fast.run.stream_stats[name]
        assert dataclasses.asdict(b) == dataclasses.asdict(a), f"stream {name}"


def _images(seed: int, n: int = 2, size: int = 16) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.integers(0, 4, size=(n, size, size, 3), dtype=np.int64)


def _case(name: str):
    if name in ("chain", "bitops"):
        graph = export_model(make_tiny_chain_model(), (16, 16, 3), name="tiny-chain")
    else:
        graph = export_model(make_tiny_resnet_model(), (16, 16, 3), name="tiny-resnet")
    kwargs = {}
    if name == "bitops":
        kwargs["use_bitops"] = True
    if name == "multi_dfe":
        kwargs["partition"] = _half_partition(graph)
    return graph, kwargs


@pytest.mark.parametrize("topology", ["chain", "resnet", "bitops", "multi_dfe"])
def test_fast_path_matches_exhaustive(topology):
    graph, kwargs = _case(topology)
    images = _images(0)
    slow = simulate(graph, images, fast=False, **kwargs)
    fast = simulate(graph, images, fast=True, **kwargs)
    _assert_runs_identical(slow, fast)


@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    size=st.sampled_from([6, 8, 10]),
    depth=st.integers(1, 3),
    with_residual=st.booleans(),
)
def test_fast_path_matches_exhaustive_random(seed, size, depth, with_residual):
    graph = build_random_graph(seed, size, depth, with_residual)
    rng = np.random.default_rng(seed + 1)
    channels = graph.input_spec.channels
    images = rng.integers(0, 4, size=(2, size, size, channels), dtype=np.int64)
    slow = simulate(graph, images, fast=False)
    fast = simulate(graph, images, fast=True)
    _assert_runs_identical(slow, fast)
