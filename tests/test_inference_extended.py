"""Extended inference-executor tests: activations, batching, robustness."""

import numpy as np

from repro.nn import input_to_levels, run_graph
from repro.nn.inference import classify


class TestActivationCapture:
    def test_keep_activations(self, tiny_chain_model, tiny_chain_graph, images16):
        lv = input_to_levels(images16[:1], tiny_chain_model.layers[0].quantizer)
        res = run_graph(tiny_chain_graph, lv, keep_activations=True)
        assert set(res.activations) == set(tiny_chain_graph.nodes)
        # every captured activation respects its spec's value range
        for name, value in res.activations.items():
            spec = tiny_chain_graph.specs[name]
            if spec.kind == "levels":
                assert value.min() >= 0 and value.max() < (1 << spec.bits), name

    def test_activations_empty_by_default(self, tiny_chain_model, tiny_chain_graph, images16):
        lv = input_to_levels(images16[:1], tiny_chain_model.layers[0].quantizer)
        assert run_graph(tiny_chain_graph, lv).activations == {}


class TestBatching:
    def test_single_image_equals_batch_row(self, tiny_chain_model, tiny_chain_graph, images16):
        lv = input_to_levels(images16, tiny_chain_model.layers[0].quantizer)
        batch = run_graph(tiny_chain_graph, lv).output
        single = run_graph(tiny_chain_graph, lv[0]).output
        assert (batch[0] == single).all()

    def test_classify_shape(self, tiny_chain_model, tiny_chain_graph, images16):
        lv = input_to_levels(images16, tiny_chain_model.layers[0].quantizer)
        preds = classify(tiny_chain_graph, lv)
        assert preds.shape == (len(images16),)

    def test_deterministic(self, tiny_chain_model, tiny_chain_graph, images16):
        lv = input_to_levels(images16, tiny_chain_model.layers[0].quantizer)
        a = run_graph(tiny_chain_graph, lv).output
        b = run_graph(tiny_chain_graph, lv).output
        assert (a == b).all()


class TestCrossBackendActivations:
    def test_streaming_intermediate_values_match(self, tiny_chain_model, tiny_chain_graph, images16):
        """Not just the output: every intermediate stream agrees too."""
        from repro.dataflow import build_pipeline

        lv = input_to_levels(images16[:1], tiny_chain_model.layers[0].quantizer)
        ref = run_graph(tiny_chain_graph, lv, keep_activations=True)
        pipeline = build_pipeline(tiny_chain_graph, lv)
        pipeline.engine.run(lambda: pipeline.sink.done, max_cycles=10_000_000)
        # sink output equals the final activation
        final = ref.activations[tiny_chain_graph.output_name]
        assert (pipeline.sink.output_tensor() == final.reshape(pipeline.sink.output_tensor().shape)).all()


class TestInputQuantization:
    def test_input_to_levels_range(self, tiny_chain_model, rng):
        q = tiny_chain_model.layers[0].quantizer
        x = rng.uniform(0, 1, size=(4, 16, 16, 3))
        lv = input_to_levels(x, q)
        assert lv.min() >= 0 and lv.max() < q.levels

    def test_input_to_levels_monotone(self, tiny_chain_model):
        q = tiny_chain_model.layers[0].quantizer
        xs = np.linspace(0, 0.999, 50)
        lv = input_to_levels(xs, q)
        assert (np.diff(lv) >= 0).all()
