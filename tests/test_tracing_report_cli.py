"""Tests for pipeline tracing, design reports, and the CLI."""

import numpy as np
import pytest

from repro.cli import main as cli_main
from repro.dataflow import simulate
from repro.dataflow.tracing import analyze_run, render_waterfall
from repro.hardware import STRATIX_10_PROJECTION, STRATIX_V_5SGSD8
from repro.hardware.report import build_design_report
from repro.models import direct_resnet18_graph, direct_vgg_graph
from repro.nn import input_to_levels


@pytest.fixture(scope="module")
def chain_run():
    from tests.conftest import make_tiny_chain_model
    from repro.nn.export import export_model

    model = make_tiny_chain_model()
    graph = export_model(model, (16, 16, 3), name="tiny-chain")
    rng = np.random.default_rng(0)
    levels = input_to_levels(rng.uniform(0, 1, (2, 16, 16, 3)), model.layers[0].quantizer)
    return simulate(graph, levels)


class TestTracing:
    def test_windows_cover_all_active_kernels(self, chain_run):
        trace = analyze_run(chain_run.run)
        names = {w.name for w in trace.windows}
        assert "host_source" in names and "host_sink" in names

    def test_initiation_interval_positive(self, chain_run):
        trace = analyze_run(chain_run.run)
        assert 0 < trace.initiation_interval < chain_run.cycles

    def test_pipeline_fill_is_monotone(self, chain_run):
        """Downstream kernels wake up later: the stair-step waterfall."""
        trace = analyze_run(chain_run.run)
        firsts = {w.name: w.first_active for w in trace.windows}
        assert firsts["host_source"] <= firsts["host_sink"]
        convs = [n for n in firsts if n.startswith("conv")]
        ordered = sorted(convs)
        for earlier, later in zip(ordered, ordered[1:]):
            assert firsts[earlier] <= firsts[later]

    def test_duty_cycles_bounded(self, chain_run):
        trace = analyze_run(chain_run.run)
        for w in trace.windows:
            assert 0.0 <= w.duty_cycle <= 1.0

    def test_stall_report_sorted(self, chain_run):
        trace = analyze_run(chain_run.run)
        rows = trace.stall_report()
        totals = [starved + blocked for _, starved, blocked in rows]
        assert totals == sorted(totals, reverse=True)

    def test_waterfall_renders(self, chain_run):
        trace = analyze_run(chain_run.run)
        text = render_waterfall(trace)
        assert "initiation interval" in text
        assert len(text.splitlines()) == len(trace.windows) + 2

    def test_busiest_is_a_conv(self, chain_run):
        trace = analyze_run(chain_run.run)
        assert "conv" in trace.busiest.name or "fc" in trace.busiest.name

    def test_empty_run_raises(self):
        from repro.dataflow.engine import RunResult

        empty = RunResult(cycles=0, completion_cycles=[], output=None, kernel_stats={}, stream_stats={}, converged=True)
        with pytest.raises(ValueError):
            analyze_run(empty)

    def test_idle_kernels_keep_no_fake_window(self, chain_run):
        """skip_idle=False must not fabricate [0, 0] windows for dead kernels.

        A never-active kernel used to appear as first=last=0, silently
        shrinking the initiation interval and steady fraction; it must now
        surface as an explicit idle window excluded from interval math.
        """
        from dataclasses import replace

        from repro.dataflow.engine import RunResult
        from repro.dataflow.kernel import KernelStats

        stats = dict(chain_run.run.kernel_stats)
        stats["dead"] = KernelStats(input_starved_cycles=chain_run.cycles)
        run = replace(chain_run.run, kernel_stats=stats)

        trace = analyze_run(run, skip_idle=False)
        dead = next(w for w in trace.windows if w.name == "dead")
        assert dead.is_idle
        assert dead.first_active is None and dead.last_active is None
        assert dead.live_span == 0 and dead.duty_cycle == 0.0
        baseline = analyze_run(chain_run.run)
        assert trace.initiation_interval == baseline.initiation_interval
        assert trace.steady_fraction == baseline.steady_fraction
        # The idle kernel's stalls stay visible in the report and waterfall.
        assert ("dead", chain_run.cycles, 0) in trace.stall_report()
        assert "idle" in render_waterfall(trace)

    def test_skip_idle_default_drops_idle_windows(self, chain_run):
        from dataclasses import replace

        from repro.dataflow.kernel import KernelStats

        stats = dict(chain_run.run.kernel_stats)
        stats["dead"] = KernelStats()
        run = replace(chain_run.run, kernel_stats=stats)
        names = {w.name for w in analyze_run(run).windows}
        assert "dead" not in names


class TestDesignReport:
    @pytest.fixture(scope="class")
    def report(self):
        return build_design_report(direct_vgg_graph(32, pool_to=4))

    def test_report_values_consistent(self, report):
        assert report.partition.n_dfes == 1
        assert report.energy_per_image_j == pytest.approx(
            report.power.total_w * report.timing.latency_ms / 1000.0
        )

    def test_render_contains_key_lines(self, report):
        text = report.render()
        assert "design report" in text
        assert "DFEs: 1" in text
        assert "latency" in text and "power" in text

    def test_resnet_on_stratix5_needs_two(self):
        rep = build_design_report(direct_resnet18_graph(), device=STRATIX_V_5SGSD8)
        assert rep.partition.n_dfes == 2

    def test_resnet_fits_single_stratix10(self):
        """§IV-B4: Stratix 10 would 'fit even bigger networks onto a single
        FPGA' — ResNet-18 collapses to one device."""
        rep = build_design_report(direct_resnet18_graph(), device=STRATIX_10_PROJECTION)
        assert rep.partition.n_dfes == 1
        assert rep.timing.latency_ms < 4.0  # 5x clock projection

    def test_gpu_comparison_present(self, report):
        assert report.gpu_ms > 0 and report.gpu_w > 0


class TestCLI:
    def test_list(self, capsys):
        assert cli_main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table3" in out and "figure8" in out

    def test_reproduce_single(self, capsys):
        assert cli_main(["reproduce", "table2", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "Stratix V" in out

    def test_report_vgg(self, capsys):
        assert cli_main(["report", "vgg", "--size", "32"]) == 0
        out = capsys.readouterr().out
        assert "design report" in out

    def test_report_stratix10(self, capsys):
        assert cli_main(["report", "vgg", "--size", "32", "--device", "stratix10"]) == 0
        out = capsys.readouterr().out
        assert "Stratix 10" in out

    def test_simulate(self, capsys):
        assert cli_main(["simulate", "--size", "16", "--images", "1"]) == 0
        out = capsys.readouterr().out
        assert "cycles" in out and "initiation interval" in out

    def test_simulate_bad_size(self, capsys):
        assert cli_main(["simulate", "--size", "15"]) == 2

    def test_trace_writes_chrome_json(self, capsys, tmp_path):
        from repro.dataflow import load_chrome_trace

        out = tmp_path / "trace.json"
        assert cli_main(["trace", "--size", "16", "--images", "2", "--out", str(out)]) == 0
        text = capsys.readouterr().out
        assert "cycles" in text and "initiation interval" in text
        assert "ui.perfetto.dev" in text
        data = load_chrome_trace(out)
        assert data["otherData"]["total_cycles"] > 0
        assert any(e.get("ph") == "X" for e in data["traceEvents"])

    def test_trace_bad_size(self, capsys, tmp_path):
        assert cli_main(["trace", "--size", "15", "--out", str(tmp_path / "t.json")]) == 2

    def test_unknown_network_rejected(self):
        with pytest.raises(SystemExit):
            cli_main(["report", "lenet"])
