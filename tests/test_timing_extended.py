"""Extended timing-model tests: parameter load, fills, edge shapes."""

import numpy as np
import pytest

from repro.hardware import estimate_network_timing, kernel_timing
from repro.models import direct_resnet18_graph, direct_vgg_graph, random_threshold_unit
from repro.nn.graph import ConvNode, InputNode, LayerGraph, ThresholdNode

RNG = np.random.default_rng(11)


def signs(shape):
    return (RNG.integers(0, 2, size=shape) * 2 - 1).astype(np.int8)


class TestParameterLoad:
    def test_counts_weight_and_norm_entries(self):
        g = LayerGraph(name="t")
        g.add(InputNode("in", 8, 8, 2, 2))
        g.add(
            ConvNode("c1", signs((3, 3, 2, 4)), pad=1, threshold=random_threshold_unit(RNG, 4, 2)),
            ["in"],
        )
        g.add(ConvNode("c2", signs((1, 1, 4, 6))), ["c1"])
        g.add(ThresholdNode("t1", random_threshold_unit(RNG, 6, 2)), ["c2"])
        t = estimate_network_timing(g)
        # c1: 4 weight entries + 4 norm words; c2: 6 weight entries; t1: 6 norm words
        assert t.parameter_load_cycles == 4 + 4 + 6 + 6

    def test_load_is_once_not_per_image(self):
        """§III-B1a: parameters load once; per-image latency excludes them."""
        g = direct_vgg_graph(32, pool_to=4)
        t = estimate_network_timing(g)
        assert t.parameter_load_cycles > 0
        assert t.parameter_load_cycles < 0.1 * t.latency_cycles

    def test_resnet_load_small(self):
        t = estimate_network_timing(direct_resnet18_graph())
        assert t.parameter_load_ms < 0.2  # a fraction of a millisecond

    def test_load_preserved_at_clock(self):
        t = estimate_network_timing(direct_vgg_graph(32, pool_to=4))
        assert t.at_clock(525.0).parameter_load_cycles == t.parameter_load_cycles


class TestFillCycles:
    def test_conv_fill_is_buffer_plus_emits(self):
        g = LayerGraph(name="t")
        g.add(InputNode("in", 10, 10, 2, 2))
        g.add(ConvNode("c", signs((3, 3, 2, 4)), pad=1), ["in"])
        t = kernel_timing(g, "c")
        # (K-1) padded lines + K pixels, times I channels, plus O emits
        assert t.fill_cycles == (2 * 12 + 3) * 2 + 4

    def test_threshold_fill_minimal(self):
        g = LayerGraph(name="t")
        g.add(InputNode("in", 4, 4, 2, 2))
        g.add(ConvNode("c", signs((1, 1, 2, 2))), ["in"])
        g.add(ThresholdNode("th", random_threshold_unit(RNG, 2, 2)), ["c"])
        assert kernel_timing(g, "th").fill_cycles == 1

    def test_unknown_node_type_raises(self):
        from repro.hardware.timing import kernel_timing as kt

        class _FakeGraph:
            nodes = {"weird": object()}

            @staticmethod
            def parents(_name):
                return []

        with pytest.raises(TypeError):
            kt(_FakeGraph(), "weird")


class TestSweepShapes:
    def test_latency_superlinear_in_input_size(self):
        """Runtime grows faster than linearly with image side (Fig. 5)."""
        t32 = estimate_network_timing(direct_vgg_graph(32, pool_to=4)).latency_cycles
        t96 = estimate_network_timing(direct_vgg_graph(96, pool_to=4)).latency_cycles
        assert t96 / t32 > (96 / 32)

    def test_first_layer_stride_speedup(self):
        """§III-B1: 'given the stride S = 4, we acquire around 13x speedup'
        in the first layer — emit stalls drop by roughly S^2."""
        g = direct_vgg_graph(32)  # stride-1 network, for the conv shape
        from repro.nn.graph import TensorSpec

        in_spec = TensorSpec(224, 224, 3, "levels", 2)
        node_s1 = ConvNode("s1", signs((11, 11, 3, 96)), stride=1, pad=2)
        node_s4 = ConvNode("s4", signs((11, 11, 3, 96)), stride=4, pad=2)
        spec1 = node_s1.infer([in_spec])
        spec4 = node_s4.infer([in_spec])
        emits1 = spec1.pixels * 96
        emits4 = spec4.pixels * 96
        assert 12 < emits1 / emits4 < 18
