"""Fleet simulator: ingress sharing, routing policies, invariants, CLI.

The three invariants the issue pins down:

* conservation — every admitted request completes exactly once, for every
  policy and replica count;
* JSQ dominates RR on deterministic traffic into a heterogeneous fleet
  (queue-aware routing cannot lose to blind alternation there);
* the serial reference path and the multiprocessing worker pool produce
  byte-identical fleet reports for the same seed.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.dataflow.links import LinkSpec
from repro.fleet import (
    FleetConfig,
    ReplicaSpec,
    ReplicaState,
    SharedIngress,
    default_rate_ladder,
    fleet_capacity_fps,
    fleet_sweep,
    make_router,
    min_replicas_for_slo,
    parse_mix,
    plan_fleet,
    profile_replica,
    simulate_fleet,
)

FAST = ReplicaSpec("vgg", 16, width=0.0625)
SLOW = ReplicaSpec("vgg", 16, width=0.25)


def _config(**overrides):
    defaults = dict(replicas=[FAST, FAST], rate_fps=20_000.0, n_requests=8, policy="rr", seed=3)
    defaults.update(overrides)
    return FleetConfig(**defaults)


class TestIngress:
    def test_transfer_cycles_is_image_bits_over_link_rate(self):
        ingress = SharedIngress(fclk_mhz=105.0)
        spec = FAST.graph().input_spec
        # 16x16x3 two-bit pixels over PCIe Gen2 x8 at 105 MHz:
        # 1536 bits / (32000/105 bits-per-cycle) -> 6 whole cycles.
        assert spec.elements * spec.stream_bits == 1536
        assert ingress.bits_per_cycle() == pytest.approx(32_000.0 / 105.0)
        assert ingress.transfer_cycles(spec) == 6

    def test_fifo_serialization_and_link_latency(self):
        ingress = SharedIngress(link=LinkSpec(name="slow", bandwidth_gbps=0.001, latency_cycles=10))
        spec = FAST.graph().input_spec
        cycles = ingress.transfer_cycles(spec)
        assert cycles > 1  # the link is slow enough to congest
        first = ingress.admit(0, 0, spec)
        second = ingress.admit(1, 1, spec)  # arrives while the link is busy
        assert first.start == 0 and first.done == cycles
        assert second.start == first.done  # queued behind the first transfer
        assert second.wait_cycles == first.done - 1
        assert first.fabric_arrival == first.done + 10
        assert 0.0 < ingress.utilization() <= 1.0

    def test_rejects_out_of_order_admission(self):
        ingress = SharedIngress()
        spec = FAST.graph().input_spec
        ingress.admit(0, 100, spec)
        with pytest.raises(ValueError):
            ingress.admit(1, 99, spec)


class TestRouter:
    def _states(self, n=3):
        return [ReplicaState(index=i, latency_cycles=100, interval_cycles=10.0) for i in range(n)]

    def test_round_robin_cycles(self):
        router = make_router("rr")
        states = self._states()
        assert [router.choose(i, 0, states) for i in range(5)] == [0, 1, 2, 0, 1]

    def test_jsq_picks_least_outstanding_with_index_tiebreak(self):
        router = make_router("jsq")
        states = self._states()
        assert router.choose(0, 0, states) == 0  # all empty -> lowest index
        states[0].on_dispatch(0)
        states[1].on_dispatch(0)
        assert router.choose(1, 0, states) == 2
        # Virtual completions drain the queue: past busy_until, 0 is empty again.
        assert router.choose(2, 10_000, states) == 0

    def test_batch_reroutes_only_at_batch_boundaries(self):
        router = make_router("batch", batch=3)
        states = self._states(2)
        picks = []
        for i in range(6):
            choice = router.choose(i, 0, states)
            states[choice].on_dispatch(0)
            picks.append(choice)
        assert picks == [0, 0, 0, 1, 1, 1]

    def test_first_image_pays_fill_latency_then_interval(self):
        state = ReplicaState(index=0, latency_cycles=100, interval_cycles=10.0)
        state.on_dispatch(0)
        assert state.busy_until == 100.0
        state.on_dispatch(0)
        assert state.busy_until == 110.0
        assert state.outstanding(99) == 2
        assert state.outstanding(110) == 0

    def test_static_has_no_router(self):
        with pytest.raises(ValueError):
            make_router("static")
        with pytest.raises(ValueError):
            make_router("lifo")
        with pytest.raises(ValueError):
            make_router("batch", batch=0)


class TestSpecs:
    def test_parse_mix_with_defaults(self):
        specs = parse_mix("vgg:16:0.0625,resnet18:16, vgg")
        assert specs[0] == FAST
        assert specs[1] == ReplicaSpec("resnet18", 16, width=0.0625)
        assert specs[2] == ReplicaSpec("vgg", 16, width=0.0625)

    def test_rejects_unknown_family_and_bad_size(self):
        with pytest.raises(ValueError):
            ReplicaSpec("lenet", 16)
        with pytest.raises(ValueError):
            ReplicaSpec("vgg", 4)
        with pytest.raises(ValueError):
            parse_mix("vgg,,resnet18")

    def test_profile_is_deterministic_and_cached(self):
        first = profile_replica(FAST)
        again = profile_replica(FAST)
        assert first == again
        latency, interval = first
        assert latency > 0 and interval is not None and interval > 0
        assert fleet_capacity_fps([FAST, FAST]) == pytest.approx(2 * 105e6 / interval)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            _config(replicas=[])
        with pytest.raises(ValueError):
            _config(policy="fifo")
        with pytest.raises(ValueError):
            _config(n_requests=0)
        with pytest.raises(ValueError):
            _config(rate_fps=0.0)
        # static pre-partitions Poisson streams; fixed arrivals make no sense.
        with pytest.raises(ValueError):
            _config(policy="static", process="fixed")


class TestConservation:
    @pytest.mark.parametrize("policy", ["rr", "jsq", "batch", "static"])
    @pytest.mark.parametrize("n_replicas", [1, 3])
    def test_every_request_completes_exactly_once(self, policy, n_replicas):
        config = _config(
            replicas=[FAST] * n_replicas,
            n_requests=7,
            policy=policy,
            process="poisson" if policy == "static" else "fixed",
        )
        report = simulate_fleet(config)
        agg = report.aggregate
        assert agg["conserved"] and agg["completed"] == 7
        # The plan's assignments partition the global request index space.
        routed = sorted(i for reqs in report.plan.assignments for i in reqs)
        assert routed == list(range(7))
        for r, rep in enumerate(report.replicas):
            assert rep["n_completed"] == rep["n_dispatched"] == len(report.plan.assignments[r])

    def test_plan_fabric_arrivals_are_non_decreasing_per_replica(self):
        plan = plan_fleet(_config(policy="jsq", n_requests=10, rate_fps=50_000.0))
        for arrivals in plan.fabric_arrivals:
            assert all(x <= y for x, y in zip(arrivals, arrivals[1:]))


class TestJsqDominatesRr:
    def test_heterogeneous_fleet_deterministic_traffic(self):
        # A fast and a slow replica (4x width => ~4x the steady-state
        # interval).  Offered fixed-rate traffic exceeds twice the slow
        # replica's capacity, so blind alternation overloads it while the
        # fast replica idles; queue-aware JSQ shifts load and must win.
        _, slow_interval = profile_replica(SLOW)
        slow_capacity = 105e6 / slow_interval
        rate = 2.6 * slow_capacity
        kwargs = dict(replicas=[SLOW, FAST], rate_fps=rate, n_requests=12, process="fixed", seed=0)
        rr = simulate_fleet(FleetConfig(policy="rr", **kwargs))
        jsq = simulate_fleet(FleetConfig(policy="jsq", **kwargs))
        assert rr.aggregate["conserved"] and jsq.aggregate["conserved"]
        assert jsq.aggregate["sojourn_cycles"]["p99"] < rr.aggregate["sojourn_cycles"]["p99"]
        assert jsq.aggregate["sojourn_cycles"]["max"] < rr.aggregate["sojourn_cycles"]["max"]
        # JSQ routes the bulk of the traffic away from the slow replica.
        assert len(jsq.plan.assignments[0]) < len(rr.plan.assignments[0])


class TestByteIdentity:
    @pytest.mark.parametrize("policy", ["jsq", "static"])
    def test_serial_and_pool_reports_are_byte_identical(self, policy):
        kwargs = dict(
            replicas=[FAST, FAST, FAST],
            rate_fps=30_000.0,
            n_requests=6,
            policy=policy,
            process="poisson",
            seed=11,
        )
        serial = simulate_fleet(FleetConfig(workers=0, **kwargs))
        pooled = simulate_fleet(FleetConfig(workers=2, **kwargs))
        assert json.dumps(serial.as_dict(), sort_keys=True) == json.dumps(
            pooled.as_dict(), sort_keys=True
        )

    def test_reruns_are_deterministic(self):
        first = simulate_fleet(_config(policy="jsq", process="poisson"))
        again = simulate_fleet(_config(policy="jsq", process="poisson"))
        assert json.dumps(first.as_dict()) == json.dumps(again.as_dict())


class TestSchemasAndCapacity:
    def test_report_schema_and_serialisability(self):
        report = simulate_fleet(_config())
        payload = report.as_dict()
        assert payload["schema"] == "repro-fleet/1"
        assert len(payload["replicas"]) == 2
        for rep in payload["replicas"]:
            assert rep["profile"]["interval_cycles"] > 0
        assert payload["aggregate"]["conserved"]
        json.dumps(payload)  # must be JSON-clean as-is
        assert "fleet [rr]" in report.render()

    def test_sweep_emits_one_frontier_per_policy(self):
        rates = [10_000.0, 60_000.0]
        payload = fleet_sweep(_config(n_requests=5), rates, policies=["rr", "jsq"])
        assert payload["schema"] == "repro-fleet-sweep/1"
        assert set(payload["policies"]) == {"rr", "jsq"}
        for frontier in payload["policies"].values():
            assert [p["offered_fps"] for p in frontier["points"]] == rates
            # Latency-throughput shape: sojourn p99 grows with offered rate.
            p99s = [p["p99_sojourn_cycles"] for p in frontier["points"]]
            assert p99s[0] <= p99s[-1]
        json.dumps(payload)
        with pytest.raises(ValueError):
            fleet_sweep(_config(), [])

    def test_default_ladder_brackets_capacity(self):
        ladder = default_rate_ladder([FAST, FAST])
        capacity = fleet_capacity_fps([FAST, FAST])
        assert ladder == sorted(ladder)
        assert ladder[0] < capacity < ladder[-1]

    def test_min_replicas_walks_until_slo_holds(self):
        # At ~1.4x one replica's capacity with a tight SLO, one replica
        # queues past the budget and two absorb the load.
        _, interval = profile_replica(FAST)
        capacity = 105e6 / interval
        latency, _ = profile_replica(FAST)
        answer = min_replicas_for_slo(
            FAST, 1.4 * capacity, 12, int(latency + 2 * interval), policy="jsq", max_replicas=4
        )
        assert answer["schema"] == "repro-fleet-capacity/1"
        assert answer["min_replicas"] == 2
        assert [t["replicas"] for t in answer["trail"]] == [1, 2]
        assert not answer["trail"][0]["satisfied"] and answer["trail"][1]["satisfied"]

    def test_unreachable_slo_reports_none(self):
        answer = min_replicas_for_slo(FAST, 5_000.0, 4, 1, max_replicas=2)
        assert answer["min_replicas"] is None
        assert len(answer["trail"]) == 2


class TestCli:
    def test_fleet_json_is_deterministic(self, capsys):
        argv = [
            "fleet", "--replicas", "2", "--policy", "jsq", "--rate", "20000",
            "--images", "4", "--seed", "2", "--json",
        ]
        assert main(argv) == 0
        first = json.loads(capsys.readouterr().out)
        assert main(argv) == 0
        second = json.loads(capsys.readouterr().out)
        assert first == second
        assert first["schema"] == "repro-fleet/1"
        assert first["aggregate"]["conserved"]

    def test_fleet_render_and_slo_gate(self, capsys):
        ok = main(["fleet", "--replicas", "2", "--rate", "20000", "--images", "4",
                   "--slo-p99-cycles", "100000"])
        assert ok == 0
        assert "fleet [rr]" in capsys.readouterr().out
        bad = main(["fleet", "--replicas", "1", "--rate", "20000", "--images", "4",
                    "--slo-p99-cycles", "10"])
        assert bad == 1
        assert "SLO VIOLATION" in capsys.readouterr().err

    def test_fleet_sweep_writes_frontier_json(self, tmp_path, capsys):
        out = tmp_path / "frontier.json"
        argv = ["fleet", "--replicas", "2", "--images", "3", "--sweep", "10000", "40000",
                "--policies", "rr", "jsq", "--out", str(out)]
        assert main(argv) == 0
        payload = json.loads(out.read_text())
        assert payload["schema"] == "repro-fleet-sweep/1"
        assert set(payload["policies"]) == {"rr", "jsq"}
        capsys.readouterr()
        assert main(argv) == 2  # refuses to overwrite
        assert "--force" in capsys.readouterr().err
        assert main(argv + ["--force"]) == 0

    def test_find_capacity_requires_rate_and_slo(self, capsys):
        assert main(["fleet", "--find-capacity", "--slo-p99-cycles", "10000"]) == 2
        assert "--rate" in capsys.readouterr().err
        assert main(["fleet", "--find-capacity", "--rate", "20000"]) == 2
        assert "--slo-p99-cycles" in capsys.readouterr().err

    def test_find_capacity_answers(self, capsys):
        assert main(["fleet", "--find-capacity", "--rate", "20000", "--images", "4",
                     "--slo-p99-cycles", "100000", "--max-replicas", "2"]) == 0
        out = capsys.readouterr().out
        assert "capacity [rr]" in out and "R=1" in out

    def test_bad_mix_exits_cleanly(self, capsys):
        assert main(["fleet", "--mix", "lenet:28", "--rate", "1000", "--images", "2"]) == 2
        assert "lenet" in capsys.readouterr().err
