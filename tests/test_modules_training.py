"""Tests for trainable modules and the QAT training loop."""

import numpy as np
import pytest

from repro.datasets import make_dataset
from repro.models import build_vgg_like
from repro.nn import (
    Adam,
    BatchNorm2d,
    Flatten,
    GlobalAvgPool,
    MaxPool2d,
    QActivation,
    QConv2d,
    QLinear,
    SGD,
    Sequential,
    SignActivation,
    Tensor,
)
from repro.nn.training import evaluate, iterate_minibatches, train

RNG = np.random.default_rng(5)


class TestModuleBasics:
    def test_parameter_discovery(self):
        m = Sequential(QConv2d(3, 4, 3), BatchNorm2d(4), QActivation())
        names = [p.name for p in m.parameters()]
        assert len(names) == 3  # conv weight + bn gamma + bn beta

    def test_train_eval_propagates(self):
        m = Sequential(QConv2d(3, 4, 3), BatchNorm2d(4))
        m.eval()
        assert all(not mod.training for mod in m.modules())
        m.train()
        assert all(mod.training for mod in m.modules())

    def test_zero_grad(self):
        m = Sequential(QLinear(4, 2))
        out = m(Tensor(RNG.normal(size=(3, 4))))
        out.backward(np.ones((3, 2)))
        assert next(m.parameters()).grad is not None
        m.zero_grad()
        assert next(m.parameters()).grad is None

    def test_sequential_indexing(self):
        layers = [QLinear(4, 4), QLinear(4, 2)]
        m = Sequential(*layers)
        assert m[0] is layers[0] and list(m) == layers


class TestQConv2d:
    def test_binary_forward_uses_signs(self):
        conv = QConv2d(1, 1, 1, binary=True)
        conv.weight.data[:] = 0.3
        x = Tensor(np.ones((1, 2, 2, 1)))
        assert np.allclose(conv(x).data, 1.0)  # sign(0.3) = +1

    def test_non_binary_forward(self):
        conv = QConv2d(1, 1, 1, binary=False)
        conv.weight.data[:] = 0.3
        x = Tensor(np.ones((1, 2, 2, 1)))
        assert np.allclose(conv(x).data, 0.3)

    def test_output_shape(self):
        conv = QConv2d(3, 8, 3, stride=2, pad=1)
        out = conv(Tensor(RNG.normal(size=(2, 8, 8, 3))))
        assert out.data.shape == (2, 4, 4, 8)


class TestBatchNorm2d:
    def test_training_normalises(self):
        bn = BatchNorm2d(4)
        x = Tensor(RNG.normal(loc=5.0, scale=3.0, size=(2, 6, 6, 4)))
        out = bn(x)
        assert abs(out.data.mean()) < 1e-6
        assert abs(out.data.std() - 1.0) < 1e-2

    def test_eval_uses_running_stats(self):
        bn = BatchNorm2d(2)
        bn.running_mean[:] = [1.0, -1.0]
        bn.running_var[:] = [4.0, 0.25]
        bn.eval()
        x = Tensor(np.zeros((1, 1, 1, 2)))
        out = bn(x)
        assert np.allclose(out.data[0, 0, 0], [-0.5, 2.0], atol=1e-3)


class TestActivations:
    def test_qactivation_levels(self):
        act = QActivation(bits=2, d=0.5)
        x = Tensor(np.array([[-1.0, 0.3, 0.8, 5.0]]))
        assert np.allclose(act(x).data, [[0.25, 0.25, 0.75, 1.75]])

    def test_sign_activation(self):
        act = SignActivation()
        x = Tensor(np.array([[-0.5, 0.5]]))
        assert act(x).data.tolist() == [[-1.0, 1.0]]

    def test_bits_attribute(self):
        assert QActivation(bits=2).bits == 2
        assert SignActivation().bits == 1


class TestOptimizers:
    def test_sgd_descends_quadratic(self):
        from repro.nn.modules import Parameter

        p = Parameter(np.array([5.0]), name="p")
        opt = SGD([p], lr=0.1, clip=None)
        for _ in range(50):
            opt.zero_grad()
            p.grad = 2 * p.data
            opt.step()
        assert abs(p.data[0]) < 0.1

    def test_adam_descends_quadratic(self):
        from repro.nn.modules import Parameter

        p = Parameter(np.array([5.0]), name="p")
        opt = Adam([p], lr=0.3, clip=None)
        for _ in range(100):
            opt.zero_grad()
            p.grad = 2 * p.data
            opt.step()
        assert abs(p.data[0]) < 0.2

    def test_weight_clipping(self):
        from repro.nn.modules import Parameter

        p = Parameter(np.array([0.99]), name="m.weight")
        opt = SGD([p], lr=1.0, clip=1.0)
        p.grad = np.array([-10.0])
        opt.step()
        assert p.data[0] == 1.0  # clipped at +1

    def test_momentum_accumulates(self):
        from repro.nn.modules import Parameter

        p = Parameter(np.array([0.0]), name="p")
        opt = SGD([p], lr=0.1, momentum=0.9, clip=None)
        for _ in range(3):
            opt.zero_grad()
            p.grad = np.array([1.0])
            opt.step()
        # with momentum the third step is larger than lr * grad
        assert p.data[0] < -0.3


class TestMinibatches:
    def test_covers_all_samples(self):
        x = np.arange(10)[:, None]
        y = np.arange(10)
        seen = []
        for xb, yb in iterate_minibatches(x, y, 3, np.random.default_rng(0)):
            seen.extend(yb.tolist())
        assert sorted(seen) == list(range(10))


class TestTraining:
    @pytest.fixture(scope="class")
    def dataset(self):
        return make_dataset("cifar10-like", n_train=160, n_test=80, classes=3, size=16, seed=2)

    def test_loss_decreases(self, dataset):
        model = build_vgg_like(input_size=16, width=0.0625, classes=3, seed=0)
        result = train(model, dataset.x_train, dataset.y_train, epochs=4, batch_size=32, lr=3e-3)
        assert result.losses[-1] < result.losses[0]

    def test_accuracy_above_chance(self, dataset):
        model = build_vgg_like(input_size=16, width=0.125, classes=3, seed=1)
        train(model, dataset.x_train, dataset.y_train, epochs=6, batch_size=32, lr=3e-3, seed=1)
        acc = evaluate(model, dataset.x_test, dataset.y_test)
        assert acc > 1.0 / 3.0 + 0.1, f"accuracy {acc} not above chance"

    def test_validation_history(self, dataset):
        model = build_vgg_like(input_size=16, width=0.0625, classes=3, seed=2)
        result = train(
            model,
            dataset.x_train,
            dataset.y_train,
            dataset.x_test,
            dataset.y_test,
            epochs=2,
            batch_size=32,
        )
        assert len(result.val_accuracies) == 2
        assert result.final_val_accuracy == result.val_accuracies[-1]

    def test_shadow_weights_stay_clipped(self, dataset):
        model = build_vgg_like(input_size=16, width=0.0625, classes=3, seed=3)
        train(model, dataset.x_train[:64], dataset.y_train[:64], epochs=2, batch_size=32, lr=0.05)
        for p in model.parameters():
            if p.name.endswith(".weight"):
                assert np.abs(p.data).max() <= 1.0 + 1e-12
