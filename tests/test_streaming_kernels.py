"""Per-kernel streaming tests: each kernel against its functional reference."""

import numpy as np
import pytest

from repro.dataflow import Engine, Stream
from repro.kernels import (
    AddKernel,
    ConvKernel,
    ForkKernel,
    GlobalAvgSumKernel,
    HostSink,
    HostSource,
    MaxPoolKernel,
    ThresholdKernel,
)
from repro.models import random_threshold_unit
from repro.nn.graph import ConvNode, MaxPoolNode, TensorSpec, ThresholdNode

RNG = np.random.default_rng(8)


def signs(shape):
    return (RNG.integers(0, 2, size=shape) * 2 - 1).astype(np.int8)


def run_single_kernel(kernel, in_values_list, out_spec, n_images=1):
    """Drive one kernel with raw element streams; return collected output."""
    eng = Engine()
    sources = []
    for i, vals in enumerate(in_values_list):
        src = _RawSource(f"src{i}", vals)
        sources.append(src)
        eng.add_kernel(src)
    eng.add_kernel(kernel)
    sink = _RawSink("sink", out_spec.elements * n_images)
    for src in sources:
        eng.connect(src, kernel, Stream(f"{src.name}->k", capacity=8, bits=2))
    eng.add_kernel(sink)
    eng.connect(kernel, sink, Stream("k->sink", capacity=8))
    cycles = eng.run(lambda: sink.done, max_cycles=2_000_000)
    return np.array(sink.received), cycles


from repro.dataflow.kernel import Kernel


class _RawSource(Kernel):
    def __init__(self, name, values):
        super().__init__(name)
        self.values = list(int(v) for v in values)
        self.pos = 0

    def tick(self, cycle):
        if self.pos < len(self.values) and self.outputs[0].push(self.values[self.pos], cycle):
            self.pos += 1


class _RawSink(Kernel):
    def __init__(self, name, expected):
        super().__init__(name)
        self.received = []
        self.expected = expected

    @property
    def done(self):
        return len(self.received) >= self.expected

    def tick(self, cycle):
        if self.inputs[0].can_pop(cycle):
            self.received.append(self.inputs[0].pop(cycle))


class TestConvKernel:
    @pytest.mark.parametrize("stride,pad", [(1, 0), (1, 1), (2, 1), (2, 0)])
    def test_matches_node_compute(self, stride, pad):
        node = ConvNode("c", signs((3, 3, 2, 4)), stride=stride, pad=pad,
                        threshold=random_threshold_unit(RNG, 4, 2))
        in_spec = TensorSpec(7, 7, 2, "levels", 2)
        out_spec = node.infer([in_spec])
        x = RNG.integers(0, 4, size=(7, 7, 2))
        kernel = ConvKernel("c", node, in_spec)
        out, _ = run_single_kernel(kernel, [x.reshape(-1)], out_spec)
        ref = node.compute([x])
        assert (out.reshape(ref.shape) == ref).all()

    def test_raw_accumulator_output(self):
        node = ConvNode("c", signs((3, 3, 2, 3)), stride=1, pad=0)
        in_spec = TensorSpec(5, 5, 2, "levels", 2)
        out_spec = node.infer([in_spec])
        x = RNG.integers(0, 4, size=(5, 5, 2))
        out, _ = run_single_kernel(ConvKernel("c", node, in_spec), [x.reshape(-1)], out_spec)
        assert (out.reshape(3, 3, 3) == node.compute([x])).all()

    def test_bitops_route(self):
        node = ConvNode("c", signs((3, 3, 2, 3)), pad=1, threshold=random_threshold_unit(RNG, 3, 2))
        in_spec = TensorSpec(6, 6, 2, "levels", 2)
        out_spec = node.infer([in_spec])
        x = RNG.integers(0, 4, size=(6, 6, 2))
        out, _ = run_single_kernel(ConvKernel("c", node, in_spec, use_bitops=True), [x.reshape(-1)], out_spec)
        assert (out.reshape(node.compute([x]).shape) == node.compute([x])).all()

    def test_multi_image(self):
        node = ConvNode("c", signs((2, 2, 1, 2)), threshold=random_threshold_unit(RNG, 2, 2))
        in_spec = TensorSpec(4, 4, 1, "levels", 2)
        out_spec = node.infer([in_spec])
        xs = RNG.integers(0, 4, size=(3, 4, 4, 1))
        kernel = ConvKernel("c", node, in_spec)
        out, _ = run_single_kernel(kernel, [xs.reshape(-1)], out_spec, n_images=3)
        refs = np.stack([node.compute([x]) for x in xs])
        assert (out.reshape(refs.shape) == refs).all()
        assert kernel.images_done == 3

    def test_expected_cycles_match_simulation(self):
        """The analytic per-image cycle formula is exact in isolation."""
        node = ConvNode("c", signs((3, 3, 2, 4)), stride=1, pad=1,
                        threshold=random_threshold_unit(RNG, 4, 2))
        in_spec = TensorSpec(6, 6, 2, "levels", 2)
        out_spec = node.infer([in_spec])
        x = RNG.integers(0, 4, size=(6, 6, 2))
        kernel = ConvKernel("c", node, in_spec)
        _, cycles = run_single_kernel(kernel, [x.reshape(-1)], out_spec)
        expected = kernel.expected_cycles_per_image()
        # allow pipeline fill slack (register delays at both ends)
        assert expected <= cycles <= expected + 16

    def test_stride_skips_reduce_emits(self):
        """§III-B1: strided conv produces far fewer emit stalls (the 13x effect)."""
        in_spec = TensorSpec(17, 17, 1, "levels", 2)
        node_s1 = ConvNode("s1", signs((5, 5, 1, 8)), stride=1)
        node_s4 = ConvNode("s4", signs((5, 5, 1, 8)), stride=4)
        k1 = ConvKernel("s1", node_s1, in_spec)
        k4 = ConvKernel("s4", node_s4, in_spec)
        scan = 17 * 17 * 1
        stall1 = k1.expected_cycles_per_image() - scan
        stall4 = k4.expected_cycles_per_image() - scan
        assert stall1 / stall4 > 10

    def test_buffer_formula(self):
        node = ConvNode("c", signs((3, 3, 4, 4)), pad=1)
        in_spec = TensorSpec(10, 10, 4, "levels", 2)
        kernel = ConvKernel("c", node, in_spec)
        assert kernel.hardware_buffer_elements() == 4 * 12 * 2 + 4 * 3


class TestMaxPoolKernel:
    @pytest.mark.parametrize("k,stride", [(2, 2), (3, 2), (2, 1)])
    def test_matches_node_compute(self, k, stride):
        node = MaxPoolNode("p", k, stride)
        in_spec = TensorSpec(8, 8, 3, "levels", 2)
        out_spec = node.infer([in_spec])
        x = RNG.integers(0, 4, size=(8, 8, 3))
        out, _ = run_single_kernel(MaxPoolKernel("p", node, in_spec), [x.reshape(-1)], out_spec)
        assert (out.reshape(node.compute([x]).shape) == node.compute([x])).all()

    def test_padded_pool_matches(self):
        node = MaxPoolNode("p", 3, 2, pad=1)
        in_spec = TensorSpec(8, 8, 2, "levels", 2)
        out_spec = node.infer([in_spec])
        x = RNG.integers(0, 4, size=(8, 8, 2))
        out, _ = run_single_kernel(MaxPoolKernel("p", node, in_spec), [x.reshape(-1)], out_spec)
        assert (out.reshape(node.compute([x]).shape) == node.compute([x])).all()

    def test_no_extra_stall_cycles(self):
        """§III-B2: pooling emits the same cycle input arrives — scan-bound."""
        node = MaxPoolNode("p", 2, 2)
        in_spec = TensorSpec(6, 6, 2, "levels", 2)
        out_spec = node.infer([in_spec])
        x = RNG.integers(0, 4, size=(6, 6, 2))
        kernel = MaxPoolKernel("p", node, in_spec)
        _, cycles = run_single_kernel(kernel, [x.reshape(-1)], out_spec)
        assert cycles <= in_spec.elements + 16


class TestThresholdKernel:
    def test_matches_unit_apply(self):
        unit = random_threshold_unit(RNG, 4, 2)
        node = ThresholdNode("t", unit)
        in_spec = TensorSpec(5, 5, 4, "acc", 12)
        out_spec = node.infer([in_spec])
        x = RNG.integers(-50, 50, size=(5, 5, 4))
        out, _ = run_single_kernel(ThresholdKernel("t", node, in_spec), [x.reshape(-1)], out_spec)
        assert (out.reshape(5, 5, 4) == unit.apply(x)).all()

    def test_one_in_one_out_rate(self):
        unit = random_threshold_unit(RNG, 2, 2)
        node = ThresholdNode("t", unit)
        in_spec = TensorSpec(4, 4, 2, "acc", 12)
        out_spec = node.infer([in_spec])
        x = RNG.integers(-9, 9, size=(4, 4, 2))
        _, cycles = run_single_kernel(ThresholdKernel("t", node, in_spec), [x.reshape(-1)], out_spec)
        assert cycles <= in_spec.elements + 8


class TestElementwiseKernels:
    def test_add_kernel(self):
        a = RNG.integers(-100, 100, size=24)
        b = RNG.integers(-100, 100, size=24)
        kernel = AddKernel("add", per_image_elements=24)
        out, _ = run_single_kernel(kernel, [a, b], TensorSpec(2, 3, 4, "acc", 13))
        assert (out == a + b).all()
        assert kernel.images_done == 1

    def test_fork_kernel_duplicates(self):
        eng = Engine()
        src = _RawSource("src", [1, 2, 3, 4])
        fork = ForkKernel("fork", per_image_elements=4)
        s1, s2 = _RawSink("s1", 4), _RawSink("s2", 4)
        for k in (src, fork, s1, s2):
            eng.add_kernel(k)
        eng.connect(src, fork, Stream("a"))
        eng.connect(fork, s1, Stream("b"))
        eng.connect(fork, s2, Stream("c"))
        eng.run(lambda: s1.done and s2.done)
        assert s1.received == [1, 2, 3, 4] and s2.received == [1, 2, 3, 4]

    def test_fork_blocks_until_all_outputs_free(self):
        eng = Engine()
        src = _RawSource("src", list(range(10)))
        fork = ForkKernel("fork", per_image_elements=10)
        s1 = _RawSink("s1", 10)
        slow = _RawSink("s2", 10)
        for k in (src, fork, s1, slow):
            eng.add_kernel(k)
        eng.connect(src, fork, Stream("a"))
        eng.connect(fork, s1, Stream("b", capacity=1))
        eng.connect(fork, slow, Stream("c", capacity=1))
        eng.run(lambda: s1.done and slow.done)
        assert s1.received == slow.received == list(range(10))


class TestReduceKernel:
    def test_global_avg_sum(self):
        in_spec = TensorSpec(4, 4, 3, "levels", 2)
        x = RNG.integers(0, 4, size=(4, 4, 3))
        kernel = GlobalAvgSumKernel("avg", in_spec)
        out, _ = run_single_kernel(kernel, [x.reshape(-1)], TensorSpec(1, 1, 3, "acc", 8))
        assert (out == x.sum(axis=(0, 1))).all()

    def test_multi_image_resets_sums(self):
        in_spec = TensorSpec(2, 2, 2, "levels", 2)
        xs = RNG.integers(0, 4, size=(2, 2, 2, 2))
        kernel = GlobalAvgSumKernel("avg", in_spec)
        out, _ = run_single_kernel(kernel, [xs.reshape(-1)], TensorSpec(1, 1, 2, "acc", 8), n_images=2)
        expected = np.concatenate([xs[0].sum(axis=(0, 1)), xs[1].sum(axis=(0, 1))])
        assert (out == expected).all()


class TestHostIO:
    def test_source_streams_depth_first(self):
        spec = TensorSpec(2, 2, 2, "levels", 2)
        img = np.arange(8).reshape(1, 2, 2, 2)
        eng = Engine()
        src = HostSource("src", img, spec)
        sink = _RawSink("sink", 8)
        eng.add_kernel(src)
        eng.add_kernel(sink)
        eng.connect(src, sink, Stream("s"))
        eng.run(lambda: sink.done)
        assert sink.received == list(range(8))

    def test_sink_reassembles(self):
        spec = TensorSpec(2, 2, 2, "levels", 2)
        data = np.arange(16).reshape(2, 2, 2, 2)
        eng = Engine()
        src = HostSource("src", data, spec)
        sink = HostSink("sink", spec, n_images=2)
        eng.add_kernel(src)
        eng.add_kernel(sink)
        eng.connect(src, sink, Stream("s"))
        eng.run(lambda: sink.done)
        assert (sink.output_tensor() == data).all()
        assert len(sink.completion_cycles) == 2

    def test_source_shape_validation(self):
        spec = TensorSpec(2, 2, 2, "levels", 2)
        with pytest.raises(ValueError):
            HostSource("src", np.zeros((1, 3, 3, 2)), spec)

    def test_sink_incomplete_raises(self):
        spec = TensorSpec(2, 2, 1, "levels", 2)
        sink = HostSink("sink", spec, n_images=1)
        with pytest.raises(RuntimeError):
            sink.output_tensor()
