"""Tests for the FINN baseline model (Table IV comparator)."""

import pytest

from repro.baselines.finn import (
    FINN_PAPER_POINT,
    build_finn_cnv,
    finn_performance_model,
)
from repro.models import direct_vgg_graph
from repro.nn.modules import SignActivation


class TestFinnNetwork:
    def test_uses_sign_activations(self):
        model = build_finn_cnv(width=0.0625)
        acts = [m for m in model.modules() if isinstance(m, SignActivation)]
        assert len(acts) >= 6  # after every conv/fc except the head

    def test_trainable_and_exportable(self):
        import numpy as np

        from repro.models import randomize_batchnorm
        from repro.nn import Tensor, export_model, input_to_levels, run_graph

        model = build_finn_cnv(input_size=16, classes=4, width=0.0625)
        randomize_batchnorm(model, np.random.default_rng(0))
        model.eval()
        graph = export_model(model, (16, 16, 3))
        x = np.random.default_rng(1).uniform(0, 1, (2, 16, 16, 3))
        levels = input_to_levels(x, model.layers[0].quantizer)
        got = run_graph(graph, levels).logits(graph)
        ref = model(Tensor(x)).data
        assert abs(got - ref).max() < 1e-9

    def test_binary_streams_are_one_bit(self):
        import numpy as np

        from repro.models import randomize_batchnorm
        from repro.nn import export_model

        model = build_finn_cnv(input_size=16, classes=4, width=0.0625)
        randomize_batchnorm(model, np.random.default_rng(0))
        model.eval()
        graph = export_model(model, (16, 16, 3))
        level_specs = [s for s in graph.specs.values() if s.kind == "levels"]
        # all post-activation streams are 1-bit (input stream is 2-bit)
        assert any(s.bits == 1 for s in level_specs)


class TestFinnPerformance:
    def test_published_point(self):
        assert FINN_PAPER_POINT.time_ms == pytest.approx(0.0456)
        assert FINN_PAPER_POINT.accuracy == pytest.approx(0.801)

    def test_model_reproduces_published_throughput(self):
        """The folded-MVU model must land near FINN's 0.0456 ms CNV point."""
        graph = direct_vgg_graph(32)
        perf = finn_performance_model(graph)
        assert 0.5 * FINN_PAPER_POINT.time_ms < perf["time_ms"] < 2.0 * FINN_PAPER_POINT.time_ms

    def test_finn_is_faster_than_streaming_dfe(self):
        from repro.hardware import estimate_network_timing

        graph = direct_vgg_graph(32)
        finn_ms = finn_performance_model(graph)["time_ms"]
        dfe_ms = estimate_network_timing(graph).latency_ms
        assert finn_ms < dfe_ms

    def test_more_parallelism_is_faster(self):
        graph = direct_vgg_graph(32)
        slow = finn_performance_model(graph, fold_parallelism=16)
        fast = finn_performance_model(graph, fold_parallelism=64)
        assert fast["time_ms"] < slow["time_ms"]
