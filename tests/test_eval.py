"""Tests for the experiment harness (tables, figures, registry)."""

import pytest

from repro.eval import (
    EXPERIMENTS,
    ExperimentResult,
    format_series,
    format_table,
    run_all,
    run_experiment,
)


class TestRegistry:
    def test_all_paper_artifacts_registered(self):
        for exp_id in ("table1", "table2", "table3", "table4", "figure5", "figure6", "figure7", "figure8", "scalability"):
            assert exp_id in EXPERIMENTS

    def test_unknown_experiment(self):
        with pytest.raises(KeyError):
            run_experiment("table99")


class TestTables:
    def test_table1_matches_paper_dims(self):
        res = run_experiment("table1")
        by_layer = {r["layer"]: r for r in res.rows}
        assert by_layer["conv1"]["output size"] == "112x112"
        assert by_layer["conv2_x"]["output size"] == "56x56"
        assert by_layer["conv5_x"]["output size"] == "7x7"
        assert all("OK" in n for n in res.notes)

    def test_table2_constants(self):
        res = run_experiment("table2")
        devices = {r["device"] for r in res.rows}
        assert "Stratix V 5SGSD8" in devices

    def test_table3_shape_claims(self):
        res = run_experiment("table3")
        rows = {r["network"]: r for r in res.rows}
        assert rows["resnet18"]["LUT"] > rows["alexnet"]["LUT"]
        assert rows["resnet18"]["BRAM (Kbits)"] < rows["alexnet"]["BRAM (Kbits)"]
        assert rows["resnet18"]["runtime (ms)"] > rows["alexnet"]["runtime (ms)"]
        assert rows["alexnet"]["DFEs"] == 3
        assert rows["resnet18"]["DFEs"] == 2

    def test_table4_quick_mode(self):
        res = run_experiment("table4", quick=True)
        metrics = {r["metric"]: r for r in res.rows}
        assert metrics["time (ms)"]["FINN"] < metrics["time (ms)"]["DFE (ours)"]
        assert metrics["power (W)"]["FINN"] < metrics["power (W)"]["DFE (ours)"]


class TestFigures:
    def test_figure5_directions(self):
        res = run_experiment("figure5")
        rows = {(r["input"], r["network"]): r for r in res.rows}
        # DFE wins at 32x32, GPU wins for ResNet at 224x224
        assert rows[("32x32", "vgg-like")]["DFE (ms)"] < rows[("32x32", "vgg-like")]["P100 (ms)"]
        assert rows[("224x224", "resnet18")]["DFE (ms)"] > rows[("224x224", "resnet18")]["P100 (ms)"]

    def test_figure6_growth_small(self):
        res = run_experiment("figure6")
        row96 = next(r for r in res.rows if r["input"] == "96x96")
        growth = float(row96["LUT vs 32"].rstrip("%"))
        assert growth < 10.0

    def test_figure7_power_ratio(self):
        res = run_experiment("figure7")
        single_dfe = [r for r in res.rows if r["DFEs"] == 1]
        assert all(r["GPU/DFE"] > 8 for r in single_dfe)

    def test_figure8_energy_direction(self):
        res = run_experiment("figure8")
        assert all(r["GPU/DFE"] > 1.0 for r in res.rows)

    def test_scalability_rows(self):
        res = run_experiment("scalability")
        q = {r["quantity"]: r["value"] for r in res.rows}
        assert q["throughput (fps, pipelined)"] > 60
        assert q["DFEs required"] == 2
        assert q["runtime @Stratix-10 5x clock (ms)"] < 4.0


class TestRunAll:
    def test_run_all_quick(self):
        results = run_all(quick=True)
        assert len(results) == len(EXPERIMENTS)
        assert all(isinstance(r, ExperimentResult) for r in results)
        for r in results:
            text = r.render()
            assert r.exp_id in text


class TestFormatting:
    def test_format_table_aligns(self):
        txt = format_table(["a", "bb"], [{"a": 1, "bb": 2.5}, {"a": 100, "bb": "x"}])
        lines = txt.splitlines()
        assert len(lines) == 4
        assert len(set(len(line.rstrip()) for line in lines[0:1])) == 1

    def test_format_table_missing_cell(self):
        txt = format_table(["a", "b"], [{"a": 1}])
        assert "1" in txt

    def test_format_series(self):
        s = format_series("dfe", [32, 96], [1.5, 11.2], unit="ms")
        assert "32=1.5" in s.replace("1.500", "1.5")
