"""Tests for the integer inference IR (nodes, specs, graph mechanics)."""

import numpy as np
import pytest

from repro.models import random_threshold_unit
from repro.nn.graph import (
    AddNode,
    Affine,
    ConvNode,
    GlobalAvgSumNode,
    InputNode,
    LayerGraph,
    MaxPoolNode,
    TensorSpec,
    ThresholdNode,
)

RNG = np.random.default_rng(6)


def signs(shape):
    return (RNG.integers(0, 2, size=shape) * 2 - 1).astype(np.int8)


class TestTensorSpec:
    def test_counts(self):
        s = TensorSpec(4, 5, 3, "levels", 2)
        assert s.pixels == 20 and s.elements == 60 and s.stream_bits == 2

    def test_invalid_kind(self):
        with pytest.raises(ValueError):
            TensorSpec(1, 1, 1, "float", 32)


class TestAffine:
    def test_apply(self):
        a = Affine(scale=0.5, offset=1.0)
        assert np.allclose(a.apply(np.array([0, 2])), [1.0, 2.0])

    def test_offset_vector_scalar(self):
        assert Affine(1.0, 2.0).offset_vector(3).tolist() == [2.0, 2.0, 2.0]

    def test_offset_vector_mismatch(self):
        with pytest.raises(ValueError):
            Affine(1.0, np.zeros(2)).offset_vector(3)


class TestConvNode:
    def test_spec_inference_fused(self):
        unit = random_threshold_unit(RNG, 8, 2)
        node = ConvNode("c", signs((3, 3, 4, 8)), stride=1, pad=1, threshold=unit)
        spec = node.infer([TensorSpec(10, 10, 4, "levels", 2)])
        assert (spec.height, spec.width, spec.channels) == (10, 10, 8)
        assert spec.kind == "levels" and spec.bits == 2

    def test_spec_inference_raw(self):
        node = ConvNode("c", signs((3, 3, 4, 8)))
        spec = node.infer([TensorSpec(10, 10, 4, "levels", 2)])
        assert spec.kind == "acc"
        # worst case |acc| = 9*4*3 = 108 -> 8 bits
        assert spec.bits == 8

    def test_channel_mismatch(self):
        node = ConvNode("c", signs((3, 3, 4, 8)))
        with pytest.raises(ValueError):
            node.infer([TensorSpec(10, 10, 5, "levels", 2)])

    def test_rejects_non_sign_weights(self):
        with pytest.raises(ValueError):
            ConvNode("c", np.zeros((3, 3, 1, 1)))

    def test_accumulate_matches_manual(self):
        node = ConvNode("c", signs((3, 3, 2, 4)), stride=2, pad=1)
        x = RNG.integers(0, 4, size=(6, 6, 2))
        acc = node.accumulate(x)
        from repro.nn import functional as F

        ref = F.conv2d(
            x.astype(float), node.weights.astype(float), stride=2, pad=1, pad_value=0.0
        )
        assert np.allclose(acc, ref)

    def test_bitpacked_equals_dense(self):
        node = ConvNode("c", signs((3, 3, 3, 5)), stride=1, pad=1)
        x = RNG.integers(0, 4, size=(8, 8, 3))
        assert (node.accumulate_bitpacked(x, 2) == node.accumulate(x)).all()

    def test_packed_weights_cache_layout(self):
        """§III-B1a: O entries of K*K*I bits each."""
        node = ConvNode("c", signs((3, 3, 4, 8)))
        packed = node.packed_weights()
        assert packed.rows == 8 and packed.cols == 36

    def test_pad_level_out_of_range(self):
        node = ConvNode("c", signs((3, 3, 1, 1)), pad=1, pad_level=7)
        with pytest.raises(ValueError):
            node.infer([TensorSpec(5, 5, 1, "levels", 2)])


class TestOtherNodes:
    def test_maxpool_spec(self):
        node = MaxPoolNode("p", 2)
        spec = node.infer([TensorSpec(8, 8, 3, "levels", 2)])
        assert (spec.height, spec.width) == (4, 4)

    def test_maxpool_padded_spec(self):
        node = MaxPoolNode("p", 3, 2, pad=1)
        spec = node.infer([TensorSpec(112, 112, 64, "levels", 2)])
        assert (spec.height, spec.width) == (56, 56)

    def test_maxpool_pad_requires_levels(self):
        node = MaxPoolNode("p", 3, 2, pad=1)
        with pytest.raises(ValueError):
            node.infer([TensorSpec(8, 8, 3, "acc", 12)])

    def test_maxpool_too_large(self):
        with pytest.raises(ValueError):
            MaxPoolNode("p", 9).infer([TensorSpec(4, 4, 1, "levels", 2)])

    def test_threshold_spec(self):
        unit = random_threshold_unit(RNG, 4, 2)
        node = ThresholdNode("t", unit)
        spec = node.infer([TensorSpec(5, 5, 4, "acc", 12)])
        assert spec.kind == "levels" and spec.bits == 2

    def test_threshold_channel_mismatch(self):
        unit = random_threshold_unit(RNG, 4, 2)
        with pytest.raises(ValueError):
            ThresholdNode("t", unit).infer([TensorSpec(5, 5, 3, "acc", 12)])

    def test_avgsum_compute_is_sum(self):
        node = GlobalAvgSumNode("a")
        x = RNG.integers(0, 4, size=(3, 3, 2))
        out = node.compute([x])
        assert out.shape == (1, 1, 2)
        assert (out[0, 0] == x.sum(axis=(0, 1))).all()

    def test_add_shape_check(self):
        node = AddNode("add")
        with pytest.raises(ValueError):
            node.infer([TensorSpec(2, 2, 2, "acc", 8), TensorSpec(2, 2, 3, "acc", 8)])

    def test_add_overflow_guard(self):
        """§III-B5: skip data is 16-bit; overflow must be loud, not silent."""
        node = AddNode("add")
        big = np.full((1, 1, 1), 40000, dtype=np.int64)
        with pytest.raises(OverflowError):
            node.compute([big, big])

    def test_add_tracks_high_water(self):
        node = AddNode("add")
        node.compute([np.full((1, 1, 1), 100), np.full((1, 1, 1), 23)])
        assert node.max_abs_seen == 123


class TestLayerGraph:
    def make_chain(self):
        g = LayerGraph(name="t")
        g.add(InputNode("in", 8, 8, 2, 2))
        g.add(ConvNode("c1", signs((3, 3, 2, 4)), pad=1, threshold=random_threshold_unit(RNG, 4, 2)), ["in"])
        g.add(MaxPoolNode("p1", 2), ["c1"])
        return g

    def test_duplicate_name_rejected(self):
        g = self.make_chain()
        with pytest.raises(ValueError):
            g.add(MaxPoolNode("p1", 2), ["c1"])

    def test_unknown_input_rejected(self):
        g = self.make_chain()
        with pytest.raises(ValueError):
            g.add(MaxPoolNode("p2", 2), ["nope"])

    def test_arity_check(self):
        g = self.make_chain()
        with pytest.raises(ValueError):
            g.add(AddNode("a"), ["c1"])

    def test_two_inputs_rejected(self):
        g = self.make_chain()
        with pytest.raises(ValueError):
            g.add(InputNode("in2", 8, 8, 2, 2))

    def test_parents_in_port_order(self):
        g = self.make_chain()
        g.add(ConvNode("c2", signs((1, 1, 4, 4))), ["p1"])
        g.add(AddNode("a"), ["c2", "p1"])
        assert g.parents("a") == ["c2", "p1"]

    def test_specs_and_topology(self):
        g = self.make_chain()
        assert g.input_spec.elements == 8 * 8 * 2
        assert g.output_spec.height == 4
        assert g.topological()[0] == "in"

    def test_total_weight_bits(self):
        g = self.make_chain()
        assert g.total_weight_bits() == 3 * 3 * 2 * 4

    def test_validate_ok(self):
        self.make_chain().validate()

    def test_validate_empty(self):
        with pytest.raises(ValueError):
            LayerGraph().validate()
