"""Tests for the model zoo: topology fidelity to the paper."""

import numpy as np
import pytest

from repro.models import (
    build_alexnet,
    build_resnet,
    build_resnet18,
    build_vgg_like,
    direct_alexnet_graph,
    direct_resnet18_graph,
    direct_vgg_graph,
)
from repro.nn import export_model
from repro.nn.graph import AddNode, ConvNode


class TestResNet18Topology:
    @pytest.fixture(scope="class")
    def graph(self):
        return direct_resnet18_graph()

    def test_table1_output_sizes(self, graph):
        """Table I: 112 -> 56 -> 28 -> 14 -> 7 -> 1."""
        assert (graph.specs["conv1"].height, graph.specs["conv1"].width) == (112, 112)
        assert graph.specs["maxpool"].height == 56
        assert graph.specs["conv2_2.bnact2"].height == 56
        assert graph.specs["conv3_2.bnact2"].height == 28
        assert graph.specs["conv4_2.bnact2"].height == 14
        assert graph.specs["conv5_2.bnact2"].height == 7
        assert graph.specs["avgpool"].height == 1

    def test_table1_channels(self, graph):
        assert graph.specs["conv2_2.bnact2"].channels == 64
        assert graph.specs["conv3_2.bnact2"].channels == 128
        assert graph.specs["conv4_2.bnact2"].channels == 256
        assert graph.specs["conv5_2.bnact2"].channels == 512
        assert graph.specs["fc"].channels == 1000

    def test_weight_count_near_11_7m(self, graph):
        """Real ResNet-18 has ~11.7M parameters; 1-bit weights = 11.7M bits."""
        assert 11e6 < graph.total_weight_bits() < 12.5e6

    def test_eight_residual_blocks(self, graph):
        adds = [n for n in graph.order if isinstance(graph.nodes[n], AddNode)]
        assert len(adds) == 16  # 2 adds per block x 8 blocks

    def test_downsampling_blocks_have_projections(self, graph):
        projections = [n for n in graph.order if n.endswith(".proj")]
        assert len(projections) == 3  # conv3_1, conv4_1, conv5_1

    def test_stride2_stages(self, graph):
        for stage in ("conv3_1", "conv4_1", "conv5_1"):
            node = graph.nodes[f"{stage}.conv1"]
            assert node.stride == 2


class TestAlexNetTopology:
    @pytest.fixture(scope="class")
    def graph(self):
        return direct_alexnet_graph()

    def test_conv1_geometry(self, graph):
        """11x11 stride 4 -> 55x55 with 96 maps."""
        spec = graph.specs["conv1"]
        assert (spec.height, spec.channels) == (55, 96)

    def test_fc_stage(self, graph):
        assert graph.specs["fc6"].channels == 4096
        assert graph.specs["fc8"].channels == 1000

    def test_weight_count_near_62m(self, graph):
        assert 60e6 < graph.total_weight_bits() < 65e6

    def test_eight_weight_layers(self, graph):
        convs = [n for n in graph.order if isinstance(graph.nodes[n], ConvNode)]
        assert len(convs) == 8


class TestVGGTopology:
    def test_block_structure(self):
        g = direct_vgg_graph(32)
        convs = [n for n in g.order if isinstance(g.nodes[n], ConvNode)]
        assert len(convs) == 9  # 6 conv + 3 fc

    def test_channel_plan(self):
        g = direct_vgg_graph(32)
        assert g.specs["conv1_2"].channels == 64
        assert g.specs["conv2_2"].channels == 128
        assert g.specs["conv3_2"].channels == 256
        assert g.specs["fc1"].channels == 512

    def test_input_size_must_divide_8(self):
        with pytest.raises(ValueError):
            direct_vgg_graph(30)

    def test_pool_to_keeps_fc_constant(self):
        g32 = direct_vgg_graph(32, pool_to=4)
        g96 = direct_vgg_graph(96, pool_to=4)
        w32 = g32.nodes["fc1"].weight_count
        w96 = g96.nodes["fc1"].weight_count
        assert w32 == w96

    def test_pool_to_for_non_divisible_feat(self):
        # 144 -> feat 18, not divisible by 4; pooling must still yield 4x4
        g = direct_vgg_graph(144, pool_to=4)
        assert g.specs["pool_fc"].height == 4


class TestDirectVsExported:
    """The direct IR builders must structurally match the exporter route."""

    def test_vgg_structure_matches(self):
        direct = direct_vgg_graph(16, width=0.0625, classes=4)
        model = build_vgg_like(input_size=16, width=0.0625, classes=4)
        model.eval()
        exported = export_model(model, (16, 16, 3))
        d_kinds = [type(direct.nodes[n]).__name__ for n in direct.order]
        e_kinds = [type(exported.nodes[n]).__name__ for n in exported.order]
        assert d_kinds == e_kinds
        d_shapes = [direct.specs[n] for n in direct.order]
        e_shapes = [exported.specs[n] for n in exported.order]
        assert d_shapes == e_shapes

    def test_resnet_structure_matches(self):
        stages = [(64, 1, 1), (128, 1, 2)]
        direct = direct_resnet18_graph(32, width=0.0625, classes=4, stages=stages)
        model = build_resnet(
            input_size=32, width=0.0625, classes=4, stages=stages,
            stem_kernel=7, stem_stride=2, stem_pool=True,
        )
        model.eval()
        exported = export_model(model, (32, 32, 3))
        d_kinds = [type(direct.nodes[n]).__name__ for n in direct.order]
        e_kinds = [type(exported.nodes[n]).__name__ for n in exported.order]
        assert d_kinds == e_kinds
        d_shapes = [(direct.specs[n].height, direct.specs[n].channels) for n in direct.order]
        e_shapes = [(exported.specs[n].height, exported.specs[n].channels) for n in exported.order]
        assert d_shapes == e_shapes


class TestBuilderValidation:
    def test_resnet_rejects_binary_activations(self):
        with pytest.raises(ValueError):
            build_resnet(act_bits=1)

    def test_alexnet_rejects_collapsing_input(self):
        with pytest.raises(ValueError):
            build_alexnet(input_size=16)

    def test_resnet18_default_is_table1(self):
        model = build_resnet18()
        assert model.name == "resnet18-224"

    def test_width_scales_channels(self):
        g = direct_vgg_graph(32, width=0.5)
        assert g.specs["conv1_1"].channels == 32
