"""Property-based tests (hypothesis) for the core invariants of DESIGN.md."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.quantization import (
    BatchNormParams,
    BitplaneTensor,
    UniformQuantizer,
    bitplane_gemm,
    fold_batchnorm,
    fold_batchnorm_sign,
    pack_bits,
    pack_signs,
    unpack_bits,
    unpack_signs,
    xnor_popcount_gemm,
)

sign_arrays = hnp.arrays(
    dtype=np.int8,
    shape=st.tuples(st.integers(1, 5), st.integers(1, 200)),
    elements=st.sampled_from([-1, 1]),
)


@given(sign_arrays)
@settings(max_examples=60, deadline=None)
def test_pack_unpack_signs_roundtrip(signs):
    n = signs.shape[-1]
    assert (unpack_signs(pack_signs(signs), n) == signs).all()


@given(
    hnp.arrays(
        dtype=np.uint8,
        shape=st.tuples(st.integers(1, 4), st.integers(1, 300)),
        elements=st.integers(0, 1),
    )
)
@settings(max_examples=60, deadline=None)
def test_pack_unpack_bits_roundtrip(bits):
    n = bits.shape[-1]
    assert (unpack_bits(pack_bits(bits), n) == bits).all()


@given(
    st.integers(1, 150),
    st.integers(1, 6),
    st.integers(1, 6),
    st.integers(0, 2**32 - 1),
)
@settings(max_examples=50, deadline=None)
def test_xnor_gemm_equals_dense(n, o, m, seed):
    """Invariant: XNOR-popcount == dense ±1 product, any packing length."""
    rng = np.random.default_rng(seed)
    w = rng.choice([-1, 1], size=(o, n))
    x = rng.choice([-1, 1], size=(m, n))
    assert (xnor_popcount_gemm(pack_signs(w), pack_signs(x), n) == x @ w.T).all()


@given(
    st.integers(1, 120),
    st.integers(1, 5),
    st.integers(1, 5),
    st.integers(1, 4),
    st.integers(0, 2**32 - 1),
)
@settings(max_examples=50, deadline=None)
def test_bitplane_gemm_equals_dense(n, o, m, bits, seed):
    """Invariant: bit-plane AND-popcount == dense binary-weight x n-bit gemm."""
    rng = np.random.default_rng(seed)
    w = rng.choice([-1, 1], size=(o, n))
    x = rng.integers(0, 1 << bits, size=(m, n))
    bt = BitplaneTensor.from_levels(x, bits)
    assert (bitplane_gemm(pack_signs(w), list(bt.planes)) == x @ w.T).all()


@given(
    st.integers(1, 4),
    st.integers(1, 8),
    st.floats(0.05, 3.0),
    st.floats(-2.0, 2.0),
    st.integers(0, 2**32 - 1),
)
@settings(max_examples=60, deadline=None)
def test_threshold_fold_equals_reference(bits, channels, d, lo, seed):
    """Invariant: the folded threshold unit == quantize(BatchNorm(x)) for any
    valid Θk including negative γ and any range anchor."""
    rng = np.random.default_rng(seed)
    params = BatchNormParams.from_moments(
        gamma=rng.uniform(0.2, 2.0, channels) * rng.choice([-1.0, 1.0], channels),
        beta=rng.normal(0, 1, channels),
        running_mean=rng.normal(0, 2, channels),
        running_var=rng.uniform(0.2, 3.0, channels),
    )
    q = UniformQuantizer(bits=bits, lo=lo, d=d)
    unit = fold_batchnorm(params, q)
    a = rng.normal(0, 4, size=(30, channels))
    assert (unit.apply(a) == q.quantize_level(params.apply(a))).all()


@given(st.integers(1, 8), st.integers(0, 2**32 - 1))
@settings(max_examples=40, deadline=None)
def test_sign_fold_equals_reference(channels, seed):
    rng = np.random.default_rng(seed)
    params = BatchNormParams.from_moments(
        gamma=rng.uniform(0.2, 2.0, channels) * rng.choice([-1.0, 1.0], channels),
        beta=rng.normal(0, 1, channels),
        running_mean=rng.normal(0, 2, channels),
        running_var=rng.uniform(0.2, 3.0, channels),
    )
    unit = fold_batchnorm_sign(params)
    a = rng.normal(0, 4, size=(25, channels))
    assert (unit.apply(a) == (params.apply(a) >= 0)).all()


@given(
    st.integers(3, 10),
    st.integers(1, 3),
    st.integers(1, 4),
    st.integers(2, 3),
    st.integers(1, 2),
    st.booleans(),
    st.integers(0, 2**32 - 1),
)
@settings(max_examples=25, deadline=None)
def test_streaming_conv_equals_functional(size, in_ch, out_ch, k, stride, padded, seed):
    """Invariant: the cycle-driven conv kernel is bit-exact with the node."""
    from repro.dataflow import Engine, Stream
    from repro.kernels import ConvKernel
    from repro.models import random_threshold_unit
    from repro.nn.graph import ConvNode, TensorSpec
    from tests.test_streaming_kernels import _RawSink, _RawSource

    rng = np.random.default_rng(seed)
    pad = 1 if padded else 0
    if size + 2 * pad < k:
        return
    weights = (rng.integers(0, 2, size=(k, k, in_ch, out_ch)) * 2 - 1).astype(np.int8)
    node = ConvNode("c", weights, stride=stride, pad=pad,
                    threshold=random_threshold_unit(rng, out_ch, 2))
    in_spec = TensorSpec(size, size, in_ch, "levels", 2)
    try:
        out_spec = node.infer([in_spec])
    except ValueError:
        return  # geometry collapses; nothing to test
    x = rng.integers(0, 4, size=(size, size, in_ch))

    eng = Engine()
    src = _RawSource("src", x.reshape(-1))
    kernel = ConvKernel("c", node, in_spec)
    sink = _RawSink("sink", out_spec.elements)
    for kk in (src, kernel, sink):
        eng.add_kernel(kk)
    eng.connect(src, kernel, Stream("a", capacity=8))
    eng.connect(kernel, sink, Stream("b", capacity=8))
    eng.run(lambda: sink.done, max_cycles=500_000)
    got = np.array(sink.received).reshape(node.compute([x]).shape)
    assert (got == node.compute([x])).all()


@given(st.integers(2, 64), st.integers(1, 64), st.integers(1, 7))
@settings(max_examples=60, deadline=None)
def test_depth_first_buffer_smaller(line, channels, k):
    """Invariant: depth-first scanning needs less buffer whenever W > K."""
    from repro.dataflow import depth_first_buffer_elements, width_first_buffer_elements

    if line <= k or channels < 2:
        return
    assert depth_first_buffer_elements(line, channels, k) <= width_first_buffer_elements(
        line, line, channels, k
    )


@given(
    st.floats(0.01, 10.0),
    st.floats(-5.0, 5.0),
    st.integers(1, 16),
    st.integers(0, 2**32 - 1),
)
@settings(max_examples=40, deadline=None)
def test_affine_roundtrip(scale, offset, channels, seed):
    """Invariant: the exporter affine maps integers to floats linearly."""
    from repro.nn.graph import Affine

    rng = np.random.default_rng(seed)
    ints = rng.integers(-100, 100, size=(10, channels))
    a = Affine(scale=scale, offset=offset)
    floats = a.apply(ints)
    assert np.allclose((floats - offset) / scale, ints)


@given(st.integers(1, 3), st.integers(0, 2**32 - 1))
@settings(max_examples=10, deadline=None)
def test_export_bit_exactness_random_models(width_idx, seed):
    """Invariant: exported integer graphs agree with float eval models."""
    from repro.models import build_vgg_like, randomize_batchnorm
    from repro.nn import Tensor, export_model, input_to_levels, run_graph

    rng = np.random.default_rng(seed)
    width = [0.03125, 0.0625, 0.09][width_idx - 1]
    model = build_vgg_like(input_size=8, width=width, classes=3, seed=seed % 1000)
    randomize_batchnorm(model, rng)
    model.eval()
    graph = export_model(model, (8, 8, 3))
    x = rng.uniform(0, 1, size=(2, 8, 8, 3))
    levels = input_to_levels(x, model.layers[0].quantizer)
    got = run_graph(graph, levels).logits(graph)
    ref = model(Tensor(x)).data
    assert np.allclose(got, ref, atol=1e-9)
