"""Failure-injection and robustness tests: backpressure, tiny FIFOs, odd configs."""

import numpy as np
import pytest

from repro.dataflow import DEFAULT_STREAM_CAPACITY, Engine, Stream, simulate
from repro.dataflow.manager import build_pipeline
from repro.models import build_vgg_like, randomize_batchnorm
from repro.nn import Tensor, export_model, input_to_levels, run_graph


class TestBackpressure:
    """Correctness must survive arbitrary stream starvation/backpressure."""

    def _run_with_capacity(self, graph, levels, capacity):
        pipeline = build_pipeline(graph, levels)
        # shrink every non-skip stream to the target capacity
        for stream in pipeline.engine.streams:
            if stream.capacity <= DEFAULT_STREAM_CAPACITY * 4:
                stream.capacity = capacity
        pipeline.engine.run(lambda: pipeline.sink.done, max_cycles=20_000_000)
        return pipeline.sink.output_tensor()

    def test_capacity_one_still_correct(self, tiny_chain_model, tiny_chain_graph, images16):
        lv = input_to_levels(images16[:1], tiny_chain_model.layers[0].quantizer)
        ref = run_graph(tiny_chain_graph, lv).output
        out = self._run_with_capacity(tiny_chain_graph, lv, capacity=1)
        assert (out == ref.reshape(out.shape)).all()

    def test_capacity_two_residual_correct(self, tiny_resnet_model, tiny_resnet_graph, images16):
        lv = input_to_levels(images16[:1], tiny_resnet_model.layers[0].quantizer)
        ref = run_graph(tiny_resnet_graph, lv).output
        out = self._run_with_capacity(tiny_resnet_graph, lv, capacity=2)
        assert (out == ref.reshape(out.shape)).all()

    def test_small_capacity_costs_cycles_not_correctness(
        self, tiny_chain_model, tiny_chain_graph, images16
    ):
        lv = input_to_levels(images16[:1], tiny_chain_model.layers[0].quantizer)
        normal = simulate(tiny_chain_graph, lv)

        pipeline = build_pipeline(tiny_chain_graph, lv)
        for stream in pipeline.engine.streams:
            if stream.capacity <= DEFAULT_STREAM_CAPACITY * 4:
                stream.capacity = 1
        cycles = pipeline.engine.run(lambda: pipeline.sink.done, max_cycles=20_000_000)
        assert cycles >= normal.cycles
        assert (pipeline.sink.output_tensor() == normal.output).all()


class TestEngineLimits:
    def test_max_cycles_enforced(self, tiny_chain_model, tiny_chain_graph, images16):
        lv = input_to_levels(images16[:1], tiny_chain_model.layers[0].quantizer)
        with pytest.raises(RuntimeError, match="no convergence"):
            simulate(tiny_chain_graph, lv, max_cycles=10)

    def test_engine_rerun_after_reset(self, tiny_chain_model, tiny_chain_graph, images16):
        lv = input_to_levels(images16[:1], tiny_chain_model.layers[0].quantizer)
        pipeline = build_pipeline(tiny_chain_graph, lv)
        pipeline.engine.run(lambda: pipeline.sink.done, max_cycles=10_000_000)
        first = pipeline.sink.output_tensor().copy()
        pipeline.engine.reset()
        pipeline.engine.run(lambda: pipeline.sink.done, max_cycles=10_000_000)
        assert (pipeline.sink.output_tensor() == first).all()


class TestOddConfigurations:
    def test_three_bit_activations_export_exactly(self):
        model = build_vgg_like(input_size=16, width=0.0625, classes=4, act_bits=3, seed=21)
        randomize_batchnorm(model, np.random.default_rng(22))
        model.eval()
        graph = export_model(model, (16, 16, 3))
        rng = np.random.default_rng(23)
        x = rng.uniform(0, 1, size=(2, 16, 16, 3))
        levels = input_to_levels(x, model.layers[0].quantizer)
        got = run_graph(graph, levels).logits(graph)
        ref = model(Tensor(x)).data
        assert np.allclose(got, ref, atol=1e-9)

    def test_three_bit_streams_are_three_bit(self):
        model = build_vgg_like(input_size=16, width=0.0625, classes=4, act_bits=3, seed=21)
        model.eval()
        graph = export_model(model, (16, 16, 3))
        post_act = [s for n, s in graph.specs.items() if s.kind == "levels" and n != "input"]
        assert all(s.bits == 3 for s in post_act)

    def test_single_channel_input(self):
        model = build_vgg_like(input_size=16, in_channels=1, width=0.0625, classes=3, seed=24)
        randomize_batchnorm(model, np.random.default_rng(25))
        model.eval()
        graph = export_model(model, (16, 16, 1))
        rng = np.random.default_rng(26)
        x = rng.uniform(0, 1, size=(1, 16, 16, 1))
        levels = input_to_levels(x, model.layers[0].quantizer)
        sr = simulate(graph, levels)
        ref = run_graph(graph, levels)
        assert (sr.output == ref.output.reshape(sr.output.shape)).all()

    def test_wide_quantizer_range_export(self):
        """Unusually coarse activation quantizer still exports exactly."""
        from repro.models.common import ACT_D

        model = build_vgg_like(input_size=16, width=0.0625, classes=3, seed=27)
        # coarsen every activation
        from repro.nn.modules import QActivation

        for m in model.modules():
            if isinstance(m, QActivation) and m.quantizer.d == ACT_D:
                m.quantizer = type(m.quantizer)(bits=2, lo=0.0, d=2.0)
        # pad values must match the new level-0 value (lo + d/2 = 1.0)
        from repro.nn.modules import QConv2d

        for m in model.modules():
            if isinstance(m, QConv2d) and m.pad > 0 and m.name != "conv1_1":
                m.pad_value = 1.0
        randomize_batchnorm(model, np.random.default_rng(28))
        model.eval()
        graph = export_model(model, (16, 16, 3))
        rng = np.random.default_rng(29)
        x = rng.uniform(0, 1, size=(1, 16, 16, 3))
        levels = input_to_levels(x, model.layers[0].quantizer)
        got = run_graph(graph, levels).logits(graph)
        ref = model(Tensor(x)).data
        assert np.allclose(got, ref, atol=1e-9)
