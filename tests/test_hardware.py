"""Tests for the hardware cost models: resources, timing, power, GPU, partition."""

import numpy as np
import pytest

from repro.hardware import (
    GTX1080,
    P100,
    STRATIX_10_PROJECTION,
    STRATIX_V_5SGSD8,
    FPGAPowerModel,
    GPUModel,
    estimate_network,
    estimate_network_timing,
    gpu_launch_count,
    kernel_timing,
    m20k_blocks,
    network_macs,
    partition_network,
    weight_cache_blocks,
)
from repro.hardware.partition import atomic_groups
from repro.models import (
    direct_alexnet_graph,
    direct_resnet18_graph,
    direct_vgg_graph,
)
from repro.nn.graph import ConvNode

RNG = np.random.default_rng(9)


def signs(shape):
    return (RNG.integers(0, 2, size=shape) * 2 - 1).astype(np.int8)


@pytest.fixture(scope="module")
def vgg32():
    return direct_vgg_graph(32, pool_to=4)


@pytest.fixture(scope="module")
def vgg96():
    return direct_vgg_graph(96, pool_to=4)


@pytest.fixture(scope="module")
def resnet18():
    return direct_resnet18_graph()


@pytest.fixture(scope="module")
def alexnet():
    return direct_alexnet_graph()


class TestM20KGeometry:
    def test_single_block_cases(self):
        assert m20k_blocks(40, 512) == 1
        assert m20k_blocks(1, 16384) == 1

    def test_width_tiling(self):
        assert m20k_blocks(80, 512) == 2
        assert m20k_blocks(41, 512) == 2

    def test_depth_tiling(self):
        assert m20k_blocks(40, 1024) == 2

    def test_picks_best_configuration(self):
        # 20 bits x 1024 fits one block in 1024x20 mode, not two in 512x40.
        assert m20k_blocks(20, 1024) == 1

    def test_zero(self):
        assert m20k_blocks(0, 100) == 0


class TestWeightCache:
    def test_waste_at_least_25pct_when_shallow(self):
        """§III-B1a: min depth 512 vs at most 384 entries wastes >= 25%."""
        for o in (64, 128, 256, 384):
            node = ConvNode("c", signs((3, 3, 64, o)))
            _, waste = weight_cache_blocks(node)
            assert waste >= 0.25 - 1e-9, f"O={o}: waste {waste}"

    def test_full_depth_is_efficient(self):
        node = ConvNode("c", signs((1, 1, 40, 512)))
        blocks, waste = weight_cache_blocks(node)
        assert blocks == 1 and waste < 1e-9

    def test_blocks_scale_with_width(self):
        small = weight_cache_blocks(ConvNode("a", signs((3, 3, 16, 64))))[0]
        large = weight_cache_blocks(ConvNode("b", signs((3, 3, 64, 64))))[0]
        assert large > small


class TestResourceEstimation:
    def test_paper_calibration_points(self, vgg32, resnet18):
        """Calibrated model must stay pinned to Tables III/IV."""
        r32 = estimate_network(vgg32).total
        assert abs(r32.luts - 133887) / 133887 < 0.05
        assert abs(r32.ffs - 278501) / 278501 < 0.05
        assert abs(r32.bram_kbits - 11020) / 11020 < 0.05
        rrn = estimate_network(resnet18).total
        assert abs(rrn.luts - 596081) / 596081 < 0.05
        assert abs(rrn.ffs - 1175373) / 1175373 < 0.05
        assert abs(rrn.bram_kbits - 30854) / 30854 < 0.05

    def test_figure6_growth_is_small(self, vgg32, vgg96):
        """Figure 6: ~5% growth from 32x32 to 96x96."""
        a = estimate_network(vgg32).total
        b = estimate_network(vgg96).total
        assert (b.luts / a.luts - 1) < 0.10
        assert (b.ffs / a.ffs - 1) < 0.10
        assert (b.bram_kbits / a.bram_kbits - 1) < 0.10

    def test_resnet_fewer_bram_than_alexnet(self, resnet18, alexnet):
        """Table III: ResNet needs fewer BRAMs (no big FC layers)."""
        assert (
            estimate_network(resnet18).total.bram_kbits
            < estimate_network(alexnet).total.bram_kbits
        )

    def test_resnet_more_luts_than_alexnet(self, resnet18, alexnet):
        assert estimate_network(resnet18).total.luts > estimate_network(alexnet).total.luts

    def test_utilization_fractions(self, vgg32):
        util = estimate_network(vgg32).utilization(STRATIX_V_5SGSD8)
        assert 0 < util["lut"] < 1 and 0 < util["ff"] < 1 and 0 < util["bram"] < 1

    def test_monotone_in_input_size(self):
        sizes = (32, 64, 96)
        luts = [estimate_network(direct_vgg_graph(s, pool_to=4)).total.luts for s in sizes]
        assert luts == sorted(luts)


class TestTimingModel:
    def test_conv_cycle_formula(self, vgg32):
        """scan + emits, exactly as the kernel behaves."""
        t = kernel_timing(vgg32, "conv1_1")
        assert t.cycles_per_image == 34 * 34 * 3 + 32 * 32 * 64

    def test_pool_is_scan_bound(self, vgg32):
        t = kernel_timing(vgg32, "pool1")
        assert t.cycles_per_image == 32 * 32 * 64

    def test_interval_is_bottleneck(self, vgg32):
        timing = estimate_network_timing(vgg32)
        assert timing.interval_cycles == max(t.cycles_per_image for t in timing.per_kernel)

    def test_latency_at_least_bottleneck(self, vgg32):
        timing = estimate_network_timing(vgg32)
        assert timing.latency_cycles >= timing.interval_cycles

    def test_sequential_exceeds_latency(self, resnet18):
        """Streaming overlap beats run-to-completion scheduling."""
        timing = estimate_network_timing(resnet18)
        assert timing.overlap_speedup > 2.0

    def test_resnet_clocks_per_picture_order_of_magnitude(self, resnet18):
        """§IV-B4: the paper estimates ~1.85e6 clocks; ours must be same order."""
        timing = estimate_network_timing(resnet18)
        assert 5e5 < timing.latency_cycles < 4e6

    def test_stratix10_projection(self, resnet18):
        """5x clock -> 5x faster (the paper projects 3-4 ms)."""
        timing = estimate_network_timing(resnet18)
        fast = timing.at_clock(STRATIX_10_PROJECTION.fabric_mhz)
        assert np.isclose(fast.latency_ms, timing.latency_ms / 5)
        assert fast.latency_ms < 4.0

    def test_realtime_requirement(self, resnet18, alexnet, vgg32):
        """Conclusion: 'more than 60 fps for all types of inputs'."""
        for g in (resnet18, alexnet, vgg32):
            assert estimate_network_timing(g).throughput_fps > 60

    def test_multidfe_adds_only_link_latency(self, vgg32):
        base = estimate_network_timing(vgg32)
        names = [n for n in vgg32.order if n != vgg32.input_name]
        half = len(names) // 2
        part = [names[:half], names[half:]]
        split = estimate_network_timing(vgg32, partition=part)
        assert split.interval_cycles == base.interval_cycles
        assert 0 < split.latency_cycles - base.latency_cycles <= 4 * 16

    def test_fclk_scaling(self, vgg32):
        t = estimate_network_timing(vgg32, fclk_mhz=105.0)
        assert np.isclose(t.latency_ms, t.latency_cycles / 105e3)


class TestPowerModel:
    def test_vgg32_power_near_12w(self, vgg32):
        """Table IVa: the single-DFE design draws ~12 W."""
        power = FPGAPowerModel(STRATIX_V_5SGSD8).power(estimate_network(vgg32))
        assert 10.0 < power.total_w < 14.0

    def test_power_grows_with_dfes(self, alexnet):
        pm = FPGAPowerModel(STRATIX_V_5SGSD8)
        r = estimate_network(alexnet)
        assert pm.power(r, n_dfes=3).total_w > pm.power(r, n_dfes=1).total_w

    def test_power_scales_with_clock(self, vgg32):
        pm = FPGAPowerModel(STRATIX_V_5SGSD8)
        r = estimate_network(vgg32)
        assert pm.power(r, fclk_mhz=210.0).dynamic_w == pytest.approx(
            2 * pm.power(r, fclk_mhz=105.0).dynamic_w
        )

    def test_energy_per_image(self, vgg32):
        pm = FPGAPowerModel(STRATIX_V_5SGSD8)
        rep = pm.power(estimate_network(vgg32))
        assert rep.energy_per_image_j(10.0) == pytest.approx(rep.total_w * 0.01)


class TestGPUModel:
    def test_macs_resnet18(self, resnet18):
        """ResNet-18 at 224x224 is ~1.8 GMACs."""
        assert 1.6e9 < network_macs(resnet18) < 2.0e9

    def test_launch_counts(self, vgg32, alexnet, resnet18):
        assert gpu_launch_count(vgg32) == 12  # 9 conv/fc + 3 pool
        assert gpu_launch_count(alexnet) == 11
        assert gpu_launch_count(resnet18) == 23

    def test_dfe_beats_gpu_at_32(self, vgg32):
        """Figure 5: our network is faster than the GPU at 32x32."""
        dfe_ms = estimate_network_timing(vgg32).latency_ms
        gpu_ms = GPUModel(P100).time_per_image(vgg32).per_image_ms
        assert dfe_ms < gpu_ms

    def test_gpu_beats_dfe_at_224(self, resnet18):
        dfe_ms = estimate_network_timing(resnet18).latency_ms
        gpu_ms = GPUModel(P100).time_per_image(resnet18).per_image_ms
        assert gpu_ms < dfe_ms

    def test_minibatch_amortisation(self, resnet18):
        """'Modern GPUs can process at least 128-256 inputs with very small
        inference time degradation' — per-image time falls with batch."""
        m = GPUModel(P100)
        t1 = m.time_per_image(resnet18, batch=1).per_image_s
        t128 = m.time_per_image(resnet18, batch=128).per_image_s
        assert t128 < t1

    def test_layer_count_sensitivity(self, resnet18, alexnet):
        """GPU time grows with layer count (the paper's +42.5% argument)."""
        m = GPUModel(P100)
        ratio = (
            m.time_per_image(resnet18).per_image_ms / m.time_per_image(alexnet).per_image_ms
        )
        assert ratio > 1.3

    def test_power_at_least_8x_dfe(self, vgg32):
        gpu_w = GPUModel(P100).power_w()
        dfe_w = FPGAPowerModel(STRATIX_V_5SGSD8).power(estimate_network(vgg32)).total_w
        assert gpu_w / dfe_w > 8

    def test_energy_ratio_direction(self, vgg32):
        """Figure 8: FPGA energy per image is lower."""
        dfe_t = estimate_network_timing(vgg32)
        dfe_e = FPGAPowerModel(STRATIX_V_5SGSD8).power(estimate_network(vgg32)).energy_per_image_j(
            dfe_t.latency_ms
        )
        gpu_e = GPUModel(P100).energy_per_image_j(vgg32)
        assert gpu_e > 2 * dfe_e

    def test_invalid_batch(self, vgg32):
        with pytest.raises(ValueError):
            GPUModel(P100).time_per_image(vgg32, batch=0)

    def test_gtx1080_slower_than_p100(self, resnet18):
        assert (
            GPUModel(GTX1080).time_per_image(resnet18).per_image_ms
            > GPUModel(P100).time_per_image(resnet18).per_image_ms
        )


class TestPartitioner:
    def test_alexnet_needs_three_dfes(self, alexnet):
        """Abstract: AlexNet runs on three FPGAs."""
        assert partition_network(alexnet).n_dfes == 3

    def test_resnet_needs_two_dfes(self, resnet18):
        """Abstract: ResNet-18 runs on two FPGAs."""
        assert partition_network(resnet18).n_dfes == 2

    def test_vgg_fits_one_dfe_up_to_144(self):
        """Conclusion: 'for inputs up to 144x144 ... fits a single FPGA'."""
        for size in (32, 96, 144):
            g = direct_vgg_graph(size, pool_to=4)
            assert partition_network(g).n_dfes == 1, f"size {size}"

    def test_partition_respects_fill_cap(self, resnet18):
        part = partition_network(resnet18)
        for i in range(part.n_dfes):
            util = part.utilization(i)
            assert max(util.values()) <= part.fill_cap + 1e-9

    def test_groups_cover_all_nodes(self, resnet18):
        part = partition_network(resnet18)
        covered = {n for g in part.groups for n in g}
        expected = set(resnet18.nodes) - {resnet18.input_name}
        assert covered == expected

    def test_groups_contiguous_in_topo_order(self, resnet18):
        part = partition_network(resnet18)
        order = [n for n in resnet18.order if n != resnet18.input_name]
        flat = [n for g in part.groups for n in g]
        assert flat == order

    def test_residual_blocks_atomic(self, resnet18):
        """Skip streams never cross DFEs."""
        part = partition_network(resnet18)
        dfe_of = {}
        for i, g in enumerate(part.groups):
            for n in g:
                dfe_of[n] = i
        from repro.nn.graph import AddNode

        for name in resnet18.order:
            if isinstance(resnet18.nodes[name], AddNode):
                for p in resnet18.parents(name):
                    if p != resnet18.input_name:
                        assert dfe_of[p] == dfe_of[name]

    def test_link_feasible(self, resnet18):
        """§III-B6: every crossing fits MaxRing bandwidth (210 Mbps needed)."""
        part = partition_network(resnet18)
        assert part.link_feasible()
        for _, _, mbps in part.crossings:
            assert mbps == pytest.approx(210.0)

    def test_atomic_groups_partition_order(self, resnet18):
        groups = atomic_groups(resnet18)
        flat = [n for g in groups for n in g]
        assert flat == [n for n in resnet18.order if n != resnet18.input_name]

    def test_impossible_partition_raises(self, resnet18):
        from repro.hardware import FPGASpec

        tiny_device = FPGASpec("tiny", alms=1000, m20k_blocks=10, ffs=1000, fabric_mhz=105, static_power_w=1)
        with pytest.raises(ValueError):
            partition_network(resnet18, device=tiny_device)


class TestDeviceSpecs:
    def test_table2_fpga(self):
        assert STRATIX_V_5SGSD8.alms == 262400
        assert STRATIX_V_5SGSD8.m20k_blocks == 2567
        assert STRATIX_V_5SGSD8.ffs == 1_050_000

    def test_table2_gpus(self):
        assert P100.cuda_cores == 3584 and P100.core_clock_mhz == 1480
        assert GTX1080.cuda_cores == 2560 and GTX1080.core_clock_mhz == 1733

    def test_stratix10_is_5x_clock(self):
        assert STRATIX_10_PROJECTION.fabric_mhz == 5 * STRATIX_V_5SGSD8.fabric_mhz

    def test_peak_flops(self):
        assert P100.peak_fp32_gflops == pytest.approx(2 * 3584 * 1.48, rel=1e-3)
