"""Shared fixtures: tiny trained/untrained models and graphs."""

from __future__ import annotations

import numpy as np
import pytest

from repro.models import build_resnet, build_vgg_like, randomize_batchnorm
from repro.nn import export_model


def pytest_configure(config):
    """Register the perfwatch perf-recording plugin (idempotent).

    Zero-modification for every test: wall/CPU/RSS are metered per test,
    and a ``repro-perf/1`` report is written when ``REPRO_PERF_REPORT``
    (or ``--perf-report``, for entry-point loads) names a path.
    """
    from repro.perfwatch import plugin as perfwatch_plugin

    perfwatch_plugin.pytest_configure(config)


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(1234)


def make_tiny_chain_model(seed: int = 7):
    """A small conv+pool+fc chain with diverse BatchNorm statistics."""
    model = build_vgg_like(input_size=16, width=0.0625, classes=4, seed=seed)
    randomize_batchnorm(model, np.random.default_rng(seed + 1))
    model.eval()
    return model


def make_tiny_resnet_model(seed: int = 9):
    """A small residual network with one plain and one downsampling block."""
    model = build_resnet(
        input_size=16,
        width=0.0625,
        classes=4,
        stages=[(64, 1, 1), (128, 1, 2)],
        stem_kernel=3,
        stem_stride=1,
        stem_pool=False,
        seed=seed,
    )
    randomize_batchnorm(model, np.random.default_rng(seed + 1))
    model.eval()
    return model


@pytest.fixture(scope="session")
def tiny_chain_model():
    return make_tiny_chain_model()


@pytest.fixture(scope="session")
def tiny_chain_graph(tiny_chain_model):
    return export_model(tiny_chain_model, (16, 16, 3), name="tiny-chain")


@pytest.fixture(scope="session")
def tiny_resnet_model():
    return make_tiny_resnet_model()


@pytest.fixture(scope="session")
def tiny_resnet_graph(tiny_resnet_model):
    return export_model(tiny_resnet_model, (16, 16, 3), name="tiny-resnet")


@pytest.fixture()
def images16(rng):
    return rng.uniform(0.0, 1.0, size=(2, 16, 16, 3))
