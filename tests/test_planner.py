"""Tests for the static partition planner (repro.planner).

The acceptance contract has three legs, each asserted here per family:

1. **Strict-clean winners** — the min-DFE plan's partition re-verifies with
   the full static checker and produces zero error/warning diagnostics.
2. **Exact prediction** — the plan's predicted steady-state interval and
   fill latency equal what a real (leap-mode) simulation of the planned
   partition measures, bit for bit, for the same image count.  This leans
   on value-independent scheduling: the planner's zero-batch replay walks
   the identical cycle schedule as a run on real data.
3. **Neighbor dominance** — simulating every ±1-cut neighbor of the winner
   is strictly no better than the winner (the search did not miss a local
   improvement).

Multi-DFE forcing recipe: tiny test graphs fit one device at any sane fill
cap, so tests that need a real cut compute ``(u1 + u2) / 2`` — the midpoint
between the 1-DFE plan's peak utilization and the best 2-split's — and pass
it as ``fill_cap``.  That cap makes one device infeasible and two feasible
by construction (naive scaling fails: per-DFE infrastructure BRAM alone
exceeds very small budgets).
"""

import json

import numpy as np
import pytest

from repro.dataflow import simulate, verify
from repro.models import direct_alexnet_graph, direct_resnet18_graph, direct_vgg_graph
from repro.planner import (
    PlanError,
    allowed_cut_positions,
    neighbor_partitions,
    plan_partition,
    predict_partition_timing,
)


def _images(graph, n, seed=0):
    spec = graph.input_spec
    rng = np.random.default_rng(seed)
    return rng.integers(0, 4, size=(n, spec.height, spec.width, spec.channels))


def _forcing_cap(graph):
    """Fill cap that makes 1 DFE infeasible and 2 DFEs feasible."""
    one = plan_partition(graph, fill_cap=1.0, predict=False)
    assert one.n_dfes == 1
    two = plan_partition(
        graph, objective="min-latency", n_dfes=2, fill_cap=1.0, predict=False
    )
    return (one.max_utilization + two.max_utilization) / 2


FAMILIES = {
    "vgg": lambda: direct_vgg_graph(16, width=0.0625, classes=4),
    "alexnet": lambda: direct_alexnet_graph(64, width=0.25, classes=4),
    "resnet18": lambda: direct_resnet18_graph(
        16, width=0.25, classes=4, stages=[(64, 1, 1)]
    ),
}


@pytest.fixture(scope="module", params=sorted(FAMILIES))
def forced_plan(request):
    """A forced-2-DFE min-DFE plan per family (module-scoped: replays once)."""
    graph = FAMILIES[request.param]()
    cap = _forcing_cap(graph)
    plan = plan_partition(graph, fill_cap=cap)
    return graph, plan


class TestWinnersVerifyClean:
    def test_forced_winner_is_strict_clean(self, forced_plan):
        graph, plan = forced_plan
        assert plan.n_dfes == 2
        report = verify(graph, partition=plan.groups)
        assert not report.errors and not report.warnings, report.render()

    @pytest.mark.parametrize("family", sorted(FAMILIES))
    def test_single_dfe_winner_is_strict_clean(self, family):
        graph = FAMILIES[family]()
        plan = plan_partition(graph, predict=False)
        assert plan.n_dfes == 1
        report = verify(graph, partition=plan.groups)
        assert not report.errors and not report.warnings, report.render()


class TestExactPrediction:
    def test_predicted_timing_matches_leap_simulation_bit_for_bit(self, forced_plan):
        graph, plan = forced_plan
        predicted = plan.predicted
        run = simulate(
            graph, _images(graph, predicted.n_images), partition=plan.groups, mode="leap"
        )
        assert run.latency_cycles == predicted.latency_cycles
        assert run.steady_state_interval == predicted.interval
        assert tuple(run.run.completion_cycles) == predicted.completion_cycles

    def test_prediction_is_mode_independent(self):
        graph = FAMILIES["vgg"]()
        predicted = predict_partition_timing(graph, [list(graph.order[1:])])
        run = simulate(
            graph, _images(graph, predicted.n_images), mode="fast"
        )
        assert run.latency_cycles == predicted.latency_cycles
        assert tuple(run.run.completion_cycles) == predicted.completion_cycles

    def test_replay_is_cached_per_partition(self):
        graph = FAMILIES["vgg"]()
        partition = [list(graph.order[1:])]
        a = predict_partition_timing(graph, partition)
        b = predict_partition_timing(graph, partition)
        assert a is b


class TestNeighborDominance:
    def test_no_neighbor_beats_the_winner(self, forced_plan):
        graph, plan = forced_plan
        winner = plan.predicted.interval
        assert winner is not None
        neighbors = neighbor_partitions(graph, plan)
        assert neighbors, "a forced 2-DFE plan must have at least one neighbor"
        for cuts, partition in neighbors:
            run = simulate(
                graph,
                _images(graph, plan.predicted.n_images),
                partition=partition,
                mode="leap",
            )
            interval = run.steady_state_interval
            assert interval is not None
            assert interval >= winner, (
                f"neighbor {cuts} beats winner {plan.cuts}: {interval} < {winner}"
            )


class TestSearchInternals:
    def test_dp_and_branch_and_bound_agree_on_chains(self):
        # vgg is linear: min-dfes routes to the DP; min-latency at the same
        # device count routes to branch-and-bound.  Both must land on the
        # same cut (analytic latency is cut-invariant on chains, so the
        # bottleneck-utilization tiebreak decides in both searches).
        graph = FAMILIES["vgg"]()
        cap = _forcing_cap(graph)
        dp = plan_partition(graph, fill_cap=cap, predict=False)
        bnb = plan_partition(
            graph, objective="min-latency", n_dfes=2, fill_cap=cap, predict=False
        )
        assert dp.n_dfes == bnb.n_dfes == 2
        assert dp.cuts == bnb.cuts

    def test_audit_records_budget_kills(self, forced_plan):
        _, plan = forced_plan
        codes = {pruned.killed_by for pruned in plan.audit}
        assert codes & {"V701", "V702", "V703"}, codes

    def test_residual_cuts_are_killed_as_v503(self):
        graph = FAMILIES["resnet18"]()
        cap = _forcing_cap(graph)
        plan = plan_partition(graph, fill_cap=cap, predict=False)
        codes = {pruned.killed_by for pruned in plan.audit}
        assert "V503" in codes, codes
        # And the winner's cut respects block atomicity by construction.
        assert all(cut in allowed_cut_positions(graph) for cut in plan.cuts)

    def test_allowed_positions_exclude_residual_interiors(self):
        graph = FAMILIES["resnet18"]()
        nodes = [n for n in graph.order if n != graph.order[0]]
        positions = allowed_cut_positions(graph)
        inside = next(
            i for i, n in enumerate(nodes) if ".add" in n
        )  # cut right before an adder splits it from its operands
        assert inside not in positions

    def test_min_latency_requires_dfes(self):
        graph = FAMILIES["vgg"]()
        with pytest.raises(ValueError, match="n_dfes"):
            plan_partition(graph, objective="min-latency")

    def test_infeasible_budget_raises_plan_error(self):
        graph = FAMILIES["vgg"]()
        with pytest.raises(PlanError):
            plan_partition(graph, fill_cap=0.01, predict=False)

    def test_unmeetable_slo_raises_plan_error(self):
        graph = FAMILIES["vgg"]()
        with pytest.raises(PlanError, match="V704"):
            plan_partition(graph, slo_fps=1e12, predict=False)


class TestPlanSerialization:
    def test_plan_schema_round_trips(self, forced_plan):
        _, plan = forced_plan
        payload = json.loads(json.dumps(plan.as_dict()))
        assert payload["schema"] == "repro-plan/1"
        assert payload["n_dfes"] == 2
        assert payload["cuts"] == list(plan.cuts)
        assert len(payload["ledgers"]) == 2
        for ledger in payload["ledgers"]:
            assert 0.0 < ledger["max_utilization"] <= 1.0
        assert payload["predicted"]["interval"] == plan.predicted.interval
        assert all(p["killed_by"] for p in payload["audit"])

    def test_render_mentions_the_prediction(self, forced_plan):
        _, plan = forced_plan
        text = plan.render()
        assert "2 DFE(s)" in text
        assert "predicted: interval" in text


class TestVerifyReportJson:
    def test_verify_report_as_dict_schema(self):
        graph = FAMILIES["vgg"]()
        report = verify(graph)
        payload = json.loads(json.dumps(report.as_dict()))
        assert payload["schema"] == "repro-check/1"
        assert payload["subject"] == graph.name
        assert payload["ok"] is True
        assert payload["counts"]["errors"] == 0
        for diag in payload["diagnostics"]:
            assert set(diag) == {"code", "severity", "where", "message", "paper", "data"}

    def test_diagnostics_order_is_stable(self):
        graph = FAMILIES["resnet18"]()
        a = verify(graph).as_dict()
        b = verify(graph).as_dict()
        assert a == b


class TestPartitionFeasibility:
    def test_clean_partition_has_no_findings(self):
        from repro.dataflow.verify import partition_feasibility

        graph = FAMILIES["vgg"]()
        diags = partition_feasibility(graph, [list(graph.order[1:])])
        assert [d for d in diags if d.severity != "info"] == []

    def test_budget_overflow_codes(self):
        from repro.dataflow.verify import partition_feasibility

        graph = FAMILIES["vgg"]()
        diags = partition_feasibility(graph, [list(graph.order[1:])], fill_cap=0.01)
        codes = {d.code for d in diags if d.severity == "error"}
        assert codes >= {"V701", "V702", "V703"}

    def test_residual_cut_is_v503(self):
        from repro.dataflow.verify import partition_feasibility

        graph = FAMILIES["resnet18"]()
        nodes = [n for n in graph.order if n != graph.order[0]]
        adder = next(i for i, n in enumerate(nodes) if ".add" in n)
        partition = [nodes[:adder], nodes[adder:]]
        codes = {d.code for d in partition_feasibility(graph, partition)}
        assert "V503" in codes


class TestPlanCli:
    def test_plan_check_simulate_neighbors_exit_zero(self, capsys):
        from repro.cli import main

        assert (
            main(["plan", "vgg:16:0.0625", "--check", "--simulate", "--neighbors"]) == 0
        )
        out = capsys.readouterr().out
        assert "exact match" in out

    def test_plan_json_payload(self, capsys, tmp_path):
        from repro.cli import main

        out_file = tmp_path / "plan.json"
        assert main(["plan", "vgg:16:0.0625", "--json", "--out", str(out_file)]) == 0
        payload = json.loads(out_file.read_text())
        assert payload["schema"] == "repro-plan/1"
        # Refuse to overwrite without --force.
        assert main(["plan", "vgg:16:0.0625", "--json", "--out", str(out_file)]) == 2
        assert (
            main(
                ["plan", "vgg:16:0.0625", "--json", "--out", str(out_file), "--force"]
            )
            == 0
        )

    def test_check_json_payload(self, capsys):
        from repro.cli import main

        assert main(["check", "vgg:16:0.0625", "--plan", "--strict", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == "repro-check/1"
        assert len(payload["reports"]) == 1
        assert payload["reports"][0]["ok"] is True

    def test_fleet_plan_dfes(self, capsys):
        from repro.cli import main

        assert main(["fleet", "--mix", "vgg:16:0.0625,resnet18:16", "--plan-dfes"]) == 0
        out = capsys.readouterr().out
        assert "fits one 8-DFE MPC-X node" in out


class TestFleetDfePlanning:
    def test_plan_fleet_dfes_schema(self):
        from repro.fleet import ReplicaSpec, plan_fleet_dfes

        specs = [ReplicaSpec("vgg", 16), ReplicaSpec("vgg", 16)]
        answer = plan_fleet_dfes(specs)
        assert answer["schema"] == "repro-fleet-dfes/1"
        assert answer["total_dfes"] == 2  # one DFE each at test scale
        assert answer["fits_node"] is True
        assert len(answer["replicas"]) == 2
        assert answer["replicas"][0]["n_dfes"] == 1
