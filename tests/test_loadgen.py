"""Open-loop load generation: schedules, determinism, sweeps, SLO gating."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.cli import main
from repro.models import direct_vgg_graph
from repro.telemetry import (
    fixed_rate_schedule,
    make_schedule,
    poisson_schedule,
    run_load,
    spawn_poisson_schedules,
    sweep,
)
from repro.telemetry.loadgen import cycles_per_image


def _graph():
    return direct_vgg_graph(16, width=0.0625, classes=4)


def _images(n=5, seed=0):
    rng = np.random.default_rng(seed)
    return rng.integers(0, 4, size=(n, 16, 16, 3))


class TestSchedules:
    def test_cycles_per_image(self):
        assert cycles_per_image(105e6, fclk_mhz=105.0) == 1.0
        assert cycles_per_image(1000.0, fclk_mhz=105.0) == 105_000.0
        with pytest.raises(ValueError):
            cycles_per_image(0.0)

    def test_fixed_rate_is_a_metronome(self):
        sched = fixed_rate_schedule(4, 1000.0, fclk_mhz=105.0)
        assert sched.cycles == [0, 105_000, 210_000, 315_000]
        assert sched.kind == "fixed" and sched.seed is None

    def test_poisson_is_deterministic_per_seed(self):
        a = poisson_schedule(16, 5000.0, seed=42)
        b = poisson_schedule(16, 5000.0, seed=42)
        c = poisson_schedule(16, 5000.0, seed=43)
        assert a.cycles == b.cycles
        assert a.cycles != c.cycles
        assert a.cycles[0] == 0
        assert all(x <= y for x, y in zip(a.cycles, a.cycles[1:]))

    def test_poisson_accepts_injected_rng(self):
        rng = np.random.default_rng(7)
        via_rng = poisson_schedule(8, 2000.0, seed=999, rng=rng)
        direct = poisson_schedule(8, 2000.0, seed=7)
        assert via_rng.cycles == direct.cycles  # seed is ignored when rng given

    def test_spawned_replica_streams_are_decorrelated(self):
        # Seeding N replicas with one shared integer replays the identical
        # gap sequence everywhere — lockstep queues that understate fleet
        # queueing.  SeedSequence.spawn children must (a) stay deterministic,
        # (b) differ pairwise, and (c) carry no pairwise gap correlation.
        n, images, rate = 4, 64, 5_000.0
        streams = spawn_poisson_schedules(n, images, rate, seed=42)
        again = spawn_poisson_schedules(n, images, rate, seed=42)
        assert [s.cycles for s in streams] == [s.cycles for s in again]
        for i in range(n):
            for j in range(i + 1, n):
                assert streams[i].cycles != streams[j].cycles
                gaps_i = np.diff(streams[i].cycles).astype(float)
                gaps_j = np.diff(streams[j].cycles).astype(float)
                corr = np.corrcoef(gaps_i, gaps_j)[0, 1]
                assert abs(corr) < 0.35, f"replicas {i},{j} correlated: r={corr:.3f}"
        # The naive shared-seed construction is exactly the lockstep bug.
        naive = [poisson_schedule(images, rate, seed=42) for _ in range(n)]
        assert naive[0].cycles == naive[1].cycles

    def test_spawn_rejects_zero_replicas(self):
        with pytest.raises(ValueError):
            spawn_poisson_schedules(0, 4, 100.0, seed=1)

    def test_make_schedule_dispatch(self):
        assert make_schedule(3, 100.0, "fixed").kind == "fixed"
        assert make_schedule(3, 100.0, "poisson", seed=1).kind == "poisson"
        with pytest.raises(ValueError):
            make_schedule(3, 100.0, "uniform")


class TestRunLoad:
    def test_bit_identical_across_runs_and_schedulers(self):
        kwargs = dict(rate_fps=20_000.0, process="poisson", seed=11)
        first = run_load(_graph(), _images(), **kwargs)
        again = run_load(_graph(), _images(), **kwargs)
        exhaustive = run_load(_graph(), _images(), fast=False, **kwargs)
        assert first.as_dict() == again.as_dict()
        assert first.as_dict() == exhaustive.as_dict()

    def test_underload_achieves_offered_rate(self):
        result = run_load(_graph(), _images(), rate_fps=2_000.0)
        assert not result.aborted
        assert result.achieved_fps == pytest.approx(2_000.0, rel=0.01)
        assert result.report.queue_wait.max == 0
        assert result.queue_depth_peak == 0

    def test_overload_saturates_and_queues(self):
        result = run_load(_graph(), _images(n=6), rate_fps=10**8)
        assert not result.aborted
        assert result.achieved_fps < result.offered_fps / 2
        assert result.report.queue_wait.max > 0
        assert result.queue_depth_peak > 0
        assert "offered" in result.render() and "achieved" in result.render()

    def test_slo_verdicts(self):
        result = run_load(_graph(), _images(), rate_fps=2_000.0)
        p99 = result.report.sojourn.p99
        assert p99 is not None
        assert not result.slo_violated(p99)
        assert result.slo_violated(p99 - 1)
        # Overload shows up in sojourn even though service stays flat.
        overload = run_load(_graph(), _images(n=6), rate_fps=10**8)
        service_p99 = overload.report.service.p99
        assert service_p99 is not None
        assert overload.slo_violated(service_p99 + 100)


class TestSweep:
    def test_curve_schema_and_points(self):
        rates = [500.0, 5_000.0, 50_000.0]
        payload = sweep(_graph(), _images(), rates, seed=5)
        assert payload["schema"] == "repro-load-sweep/1"
        assert [p["offered_fps"] for p in payload["points"]] == rates
        for point in payload["points"]:
            assert point["images_completed"] == 5
            assert point["p99_cycles"] >= point["p50_cycles"] > 0
            assert not point["aborted"]
        # Achieved FPS is monotone non-decreasing along the offered ladder
        # until saturation; the highest rate cannot beat its offer.
        achieved = [p["achieved_fps"] for p in payload["points"]]
        assert achieved[0] <= achieved[-1]
        json.dumps(payload)  # must be JSON-serialisable as-is

    def test_empty_rate_ladder_rejected(self):
        with pytest.raises(ValueError):
            sweep(_graph(), _images(), [])


class TestCli:
    def test_load_deterministic_and_json(self, capsys):
        argv = ["load", "--rate", "9000", "--images", "4", "--seed", "2",
                "--process", "poisson", "--json"]
        assert main(argv) == 0
        first = json.loads(capsys.readouterr().out)
        assert main(argv) == 0
        second = json.loads(capsys.readouterr().out)
        assert first == second
        assert first["schema"] == "repro-load/1"
        assert first["latency"]["service_cycles"]["p99"] == second["latency"]["service_cycles"]["p99"]

    def test_load_requires_a_rate(self, capsys):
        assert main(["load", "--images", "2"]) == 2
        assert "--rate" in capsys.readouterr().err

    def test_slo_gate_exit_codes(self, capsys):
        ok = main(["load", "--rate", "2000", "--images", "3", "--slo-p99-cycles", "100000"])
        assert ok == 0
        # Fault injection: an offered rate the tiny pipeline cannot sustain
        # blows the p99 budget and the gate exits non-zero.
        bad = main(
            ["load", "--rate", "100000000", "--images", "6", "--slo-p99-cycles", "4000"]
        )
        assert bad == 1
        assert "SLO VIOLATION" in capsys.readouterr().err

    def test_sweep_writes_json_and_respects_force(self, tmp_path, capsys):
        out = tmp_path / "sweep.json"
        argv = ["load", "--sweep", "1000", "20000", "--images", "3", "--out", str(out)]
        assert main(argv) == 0
        payload = json.loads(out.read_text())
        assert payload["schema"] == "repro-load-sweep/1"
        assert len(payload["points"]) == 2
        capsys.readouterr()
        assert main(argv) == 2  # refuses to overwrite
        assert "--force" in capsys.readouterr().err
        assert main(argv + ["--force"]) == 0
