"""Unit tests for the reference NumPy operators."""

import numpy as np
import pytest
from scipy import signal

from repro.nn import functional as F

RNG = np.random.default_rng(2)


def naive_conv2d(x, w, stride, pad, pad_value):
    """Direct-loop reference convolution (HWC / KKIO)."""
    k = w.shape[0]
    xp = F.pad2d(x, pad, pad_value)
    h, wd, ci = xp.shape
    co = w.shape[3]
    ho = (h - k) // stride + 1
    wo = (wd - k) // stride + 1
    out = np.zeros((ho, wo, co))
    for i in range(ho):
        for j in range(wo):
            patch = xp[i * stride : i * stride + k, j * stride : j * stride + k, :]
            for o in range(co):
                out[i, j, o] = (patch * w[:, :, :, o]).sum()
    return out


class TestConvOutputSize:
    def test_basic(self):
        assert F.conv_output_size(32, 3, 1, 1) == 32
        assert F.conv_output_size(224, 7, 2, 3) == 112
        assert F.conv_output_size(224, 11, 4, 2) == 55

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            F.conv_output_size(2, 5, 1, 0)


class TestPad2d:
    def test_value_and_shape(self):
        x = np.ones((2, 2, 1))
        p = F.pad2d(x, 1, -1.0)
        assert p.shape == (4, 4, 1)
        assert p[0, 0, 0] == -1.0 and p[1, 1, 0] == 1.0

    def test_zero_pad_identity(self):
        x = RNG.normal(size=(3, 3, 2))
        assert F.pad2d(x, 0) is x or (F.pad2d(x, 0) == x).all()

    def test_batched(self):
        x = RNG.normal(size=(2, 3, 3, 2))
        assert F.pad2d(x, 2).shape == (2, 7, 7, 2)

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            F.pad2d(np.ones((2, 2, 1)), -1)


class TestIm2col:
    def test_patch_order_row_col_channel(self):
        """The flattening order must match the weight cache layout."""
        x = np.arange(2 * 2 * 2).reshape(2, 2, 2)
        cols = F.im2col(x, 2)
        # single patch = whole input flattened in (row, col, channel) order
        assert (cols[0, 0] == x.reshape(-1)).all()

    def test_stride(self):
        x = RNG.normal(size=(6, 6, 1))
        cols = F.im2col(x, 2, stride=2)
        assert cols.shape == (3, 3, 4)

    def test_batched_shape(self):
        x = RNG.normal(size=(4, 8, 8, 3))
        assert F.im2col(x, 3).shape == (4, 6, 6, 27)


class TestConv2d:
    @pytest.mark.parametrize("stride,pad", [(1, 0), (1, 1), (2, 0), (2, 1), (3, 2)])
    def test_matches_naive(self, stride, pad):
        x = RNG.normal(size=(9, 9, 3))
        w = RNG.normal(size=(3, 3, 3, 4))
        got = F.conv2d(x, w, stride=stride, pad=pad, pad_value=0.5)
        assert np.allclose(got, naive_conv2d(x, w, stride, pad, 0.5))

    def test_matches_scipy_single_channel(self):
        x = RNG.normal(size=(10, 10, 1))
        w = RNG.normal(size=(3, 3, 1, 1))
        got = F.conv2d(x, w)[..., 0]
        # scipy correlate2d 'valid' equals our unpadded convolution
        ref = signal.correlate2d(x[..., 0], w[:, :, 0, 0], mode="valid")
        assert np.allclose(got, ref)

    def test_bias(self):
        x = RNG.normal(size=(4, 4, 2))
        w = RNG.normal(size=(1, 1, 2, 3))
        b = np.array([1.0, -1.0, 0.5])
        assert np.allclose(F.conv2d(x, w, bias=b), F.conv2d(x, w) + b)

    def test_batched_equals_per_image(self):
        x = RNG.normal(size=(3, 6, 6, 2))
        w = RNG.normal(size=(3, 3, 2, 4))
        batched = F.conv2d(x, w, pad=1)
        for i in range(3):
            assert np.allclose(batched[i], F.conv2d(x[i], w, pad=1))

    def test_channel_mismatch_raises(self):
        with pytest.raises(ValueError):
            F.conv2d(np.ones((4, 4, 2)), np.ones((3, 3, 3, 1)))

    def test_non_square_filter_raises(self):
        with pytest.raises(ValueError):
            F.conv2d(np.ones((4, 4, 1)), np.ones((2, 3, 1, 1)))


class TestPooling:
    def test_maxpool_known(self):
        x = np.arange(16, dtype=float).reshape(4, 4, 1)
        out = F.maxpool2d(x, 2)
        assert out[..., 0].tolist() == [[5, 7], [13, 15]]

    def test_maxpool_stride(self):
        x = RNG.normal(size=(6, 6, 2))
        out = F.maxpool2d(x, 3, 2)
        assert out.shape == (2, 2, 2)

    def test_avgpool(self):
        x = np.arange(8, dtype=float).reshape(2, 2, 2)
        out = F.avgpool2d(x, 2)
        assert np.allclose(out[0, 0], [(0 + 2 + 4 + 6) / 4, (1 + 3 + 5 + 7) / 4])

    def test_global_avgpool(self):
        x = RNG.normal(size=(2, 5, 5, 3))
        out = F.global_avgpool(x)
        assert out.shape == (2, 3)
        assert np.allclose(out, x.mean(axis=(1, 2)))


class TestLinearSoftmax:
    def test_linear(self):
        x = RNG.normal(size=(4, 5))
        w = RNG.normal(size=(5, 3))
        assert np.allclose(F.linear(x, w), x @ w)

    def test_softmax_normalises(self):
        z = RNG.normal(size=(3, 7)) * 100
        s = F.softmax(z)
        assert np.allclose(s.sum(axis=-1), 1.0)
        assert (s >= 0).all()

    def test_softmax_stability(self):
        z = np.array([[1e4, 1e4 + 1]])
        s = F.softmax(z)
        assert np.isfinite(s).all()

    def test_log_softmax_consistent(self):
        z = RNG.normal(size=(2, 5))
        assert np.allclose(np.exp(F.log_softmax(z)), F.softmax(z))
