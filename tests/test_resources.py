"""Golden-value and property tests for the resource model (hardware/resources).

The partition planner prunes candidates on these estimates, so two things
must hold beyond the paper-calibration points already covered in
``test_hardware.py``:

* **Goldens** — the three test-scale family graphs produce exactly the
  totals pinned here.  A calibration-constant or formula change that moves
  any of them shows up as a diff against a number a human signed off on
  (and silently reshapes every plan the search returns).
* **Monotonicity** — estimates never decrease when a layer gets wider
  (more channels) or deeper (more activation bits).  The DP's early-exit
  ("first overflowing cut kills all longer segments") and the
  branch-and-bound lower bound are only admissible if cost is monotone in
  what a segment contains.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware import DEFAULT_RESOURCE_CAL, estimate_network, estimate_node, m20k_blocks
from repro.models import direct_alexnet_graph, direct_resnet18_graph, direct_vgg_graph

# Pinned against the current calibration (see module docstring).  Totals
# include one DFE of Maxeler infrastructure.
GOLDEN_TOTALS = {
    "vgg": (35383.7, 51185.7, 290),
    "alexnet": (81055.7, 156224.8, 436),
    "resnet18": (35738.7, 52150.5, 266),
}


def _family_graph(family):
    if family == "vgg":
        return direct_vgg_graph(16, width=0.0625, classes=4)
    if family == "alexnet":
        return direct_alexnet_graph(64, width=0.25, classes=4)
    return direct_resnet18_graph(16, width=0.25, classes=4, stages=[(64, 1, 1)])


class TestGoldenTotals:
    @pytest.mark.parametrize("family", sorted(GOLDEN_TOTALS))
    def test_family_totals_are_pinned(self, family):
        luts, ffs, bram_blocks = GOLDEN_TOTALS[family]
        total = estimate_network(_family_graph(family)).total
        assert total.luts == pytest.approx(luts, abs=0.05)
        assert total.ffs == pytest.approx(ffs, abs=0.05)
        assert total.bram_blocks == bram_blocks

    def test_totals_sum_nodes_plus_infrastructure(self):
        graph = _family_graph("vgg")
        net = estimate_network(graph)
        luts = net.infrastructure.luts + sum(nr.estimate.luts for nr in net.per_node)
        assert net.total.luts == pytest.approx(luts)

    def test_infrastructure_scales_with_dfes(self):
        graph = _family_graph("vgg")
        one = estimate_network(graph, n_dfes=1)
        two = estimate_network(graph, n_dfes=2)
        assert (
            two.infrastructure.luts - one.infrastructure.luts
            == DEFAULT_RESOURCE_CAL.lut_infrastructure
        )


WIDTHS = [0.0625, 0.125, 0.25, 0.5]
BITS = [1, 2, 3, 4]


def _total(width, bits):
    graph = direct_vgg_graph(16, width=width, classes=4, act_bits=bits, input_bits=bits)
    return estimate_network(graph).total


class TestMonotonicity:
    @settings(max_examples=20, deadline=None)
    @given(
        lo=st.sampled_from(range(len(WIDTHS))),
        hi=st.sampled_from(range(len(WIDTHS))),
        bits=st.sampled_from(BITS),
    )
    def test_monotone_in_channel_count(self, lo, hi, bits):
        if lo > hi:
            lo, hi = hi, lo
        narrow, wide = _total(WIDTHS[lo], bits), _total(WIDTHS[hi], bits)
        assert narrow.luts <= wide.luts
        assert narrow.ffs <= wide.ffs
        assert narrow.bram_blocks <= wide.bram_blocks

    @settings(max_examples=20, deadline=None)
    @given(
        width=st.sampled_from(WIDTHS),
        lo=st.sampled_from(range(len(BITS))),
        hi=st.sampled_from(range(len(BITS))),
    )
    def test_monotone_in_bitwidth(self, width, lo, hi):
        if lo > hi:
            lo, hi = hi, lo
        shallow, deep = _total(width, BITS[lo]), _total(width, BITS[hi])
        assert shallow.luts <= deep.luts
        assert shallow.ffs <= deep.ffs
        assert shallow.bram_blocks <= deep.bram_blocks

    def test_per_node_monotone_in_width(self):
        # The planner's prefix sums are per node: every conv's own estimate
        # must grow with the width multiplier, not just the network total.
        narrow = direct_vgg_graph(16, width=0.0625, classes=4)
        wide = direct_vgg_graph(16, width=0.25, classes=4)
        for name in narrow.order:
            if name not in wide.nodes:
                continue
            a = estimate_node(narrow, name).estimate
            b = estimate_node(wide, name).estimate
            assert a.luts <= b.luts, name
            assert a.bram_blocks <= b.bram_blocks, name


class TestM20kGeometryEdgeCases:
    def test_min_depth_tiling_picks_cheapest_config(self):
        # 40 bits x 512 deep: one 40x512 M20K beats two 20x1024 halves.
        assert m20k_blocks(40, 512) == 1

    def test_monotone_in_depth_and_width(self):
        assert m20k_blocks(40, 513) >= m20k_blocks(40, 512)
        assert m20k_blocks(41, 512) >= m20k_blocks(40, 512)
