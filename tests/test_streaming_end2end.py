"""End-to-end streaming tests: whole networks through the cycle simulator."""

import numpy as np
import pytest

from repro.dataflow import MAXRING, simulate
from repro.dataflow.window import skip_buffer_elements
from repro.hardware import estimate_network_timing
from repro.nn import input_to_levels, run_graph


def levels_for(model, images):
    return input_to_levels(images, model.layers[0].quantizer)


class TestBitExactness:
    def test_chain_network(self, tiny_chain_model, tiny_chain_graph, images16):
        lv = levels_for(tiny_chain_model, images16)
        ref = run_graph(tiny_chain_graph, lv)
        sr = simulate(tiny_chain_graph, lv)
        assert (sr.output == ref.output).all()

    def test_residual_network(self, tiny_resnet_model, tiny_resnet_graph, images16):
        lv = levels_for(tiny_resnet_model, images16)
        ref = run_graph(tiny_resnet_graph, lv)
        sr = simulate(tiny_resnet_graph, lv)
        assert (sr.output == ref.output.reshape(sr.output.shape)).all()

    def test_bitops_route(self, tiny_chain_model, tiny_chain_graph, images16):
        lv = levels_for(tiny_chain_model, images16[:1])
        ref = run_graph(tiny_chain_graph, lv)
        sr = simulate(tiny_chain_graph, lv, use_bitops=True)
        assert (sr.output == ref.output).all()


class TestPipelineBehaviour:
    def test_steady_state_interval_matches_bottleneck(self, tiny_chain_model, tiny_chain_graph, rng):
        """Pipelined throughput equals the slowest kernel's per-image cycles."""
        images = rng.uniform(0, 1, size=(4, 16, 16, 3))
        lv = levels_for(tiny_chain_model, images)
        sr = simulate(tiny_chain_graph, lv)
        timing = estimate_network_timing(tiny_chain_graph)
        interval = sr.run.steady_state_interval
        assert abs(interval - timing.interval_cycles) / timing.interval_cycles < 0.05

    def test_analytic_latency_close_to_simulated(self, tiny_chain_model, tiny_chain_graph, images16):
        lv = levels_for(tiny_chain_model, images16[:1])
        sr = simulate(tiny_chain_graph, lv)
        timing = estimate_network_timing(tiny_chain_graph)
        rel = abs(sr.latency_cycles - timing.latency_cycles) / sr.latency_cycles
        assert rel < 0.25, f"analytic {timing.latency_cycles} vs sim {sr.latency_cycles}"

    def test_analytic_latency_residual(self, tiny_resnet_model, tiny_resnet_graph, images16):
        lv = levels_for(tiny_resnet_model, images16[:1])
        sr = simulate(tiny_resnet_graph, lv)
        timing = estimate_network_timing(tiny_resnet_graph)
        rel = abs(sr.latency_cycles - timing.latency_cycles) / sr.latency_cycles
        assert rel < 0.25, f"analytic {timing.latency_cycles} vs sim {sr.latency_cycles}"

    def test_layers_overlap(self, tiny_chain_model, tiny_chain_graph, rng):
        """The paper's core premise: after the initiation interval all layers
        compute simultaneously."""
        images = rng.uniform(0, 1, size=(3, 16, 16, 3))
        lv = levels_for(tiny_chain_model, images)
        sr = simulate(tiny_chain_graph, lv)
        conv_kernels = [n for n in tiny_chain_graph.order if "conv" in n]
        overlap = sr.run.overlap_fraction(conv_kernels)
        assert overlap > 0.5, f"pipeline overlap only {overlap:.2f}"
        # and including the late FC stages it is still substantial
        all_compute = [n for n in tiny_chain_graph.order if "conv" in n or "fc" in n]
        assert sr.run.overlap_fraction(all_compute) > 0.35

    def test_latency_much_less_than_sequential(self, tiny_chain_model, tiny_chain_graph, images16):
        lv = levels_for(tiny_chain_model, images16[:1])
        sr = simulate(tiny_chain_graph, lv)
        timing = estimate_network_timing(tiny_chain_graph)
        assert sr.latency_cycles < 0.6 * timing.sequential_cycles


class TestSkipConnections:
    def test_skip_buffer_bounded_by_formula(self, tiny_resnet_model, tiny_resnet_graph, images16):
        """§III-B5: the delay buffer needs at most the conv-buffer size."""
        lv = levels_for(tiny_resnet_model, images16[:1])
        sr = simulate(tiny_resnet_graph, lv)
        g = tiny_resnet_graph
        for add_name, stream in sr.pipeline.skip_streams.items():
            conv_name = g.parents(add_name)[0]
            conv = g.nodes[conv_name]
            if not hasattr(conv, "kernel_size"):
                continue
            in_spec = g.specs[g.parents(conv_name)[0]]
            bound = skip_buffer_elements(in_spec.width + 2 * conv.pad, conv.in_channels, conv.kernel_size)
            assert stream.stats.max_occupancy <= bound + 8, (
                f"{add_name}: occupancy {stream.stats.max_occupancy} > bound {bound}"
            )

    def test_skip_stream_never_backpressures(self, tiny_resnet_model, tiny_resnet_graph, images16):
        """§III-B5: 'the skip buffer ... never creates delays by itself'."""
        lv = levels_for(tiny_resnet_model, images16[:1])
        sr = simulate(tiny_resnet_graph, lv)
        for stream in sr.pipeline.skip_streams.values():
            assert stream.stats.full_rejections == 0


class TestMultiDFE:
    def _partition(self, graph, n):
        names = [nm for nm in graph.order if nm != graph.input_name]
        chunk = (len(names) + n - 1) // n
        return [names[i : i + chunk] for i in range(0, len(names), chunk)]

    def test_outputs_identical_across_partitions(self, tiny_chain_model, tiny_chain_graph, images16):
        lv = levels_for(tiny_chain_model, images16[:1])
        single = simulate(tiny_chain_graph, lv)
        double = simulate(tiny_chain_graph, lv, partition=self._partition(tiny_chain_graph, 2))
        triple = simulate(tiny_chain_graph, lv, partition=self._partition(tiny_chain_graph, 3))
        assert (single.output == double.output).all()
        assert (single.output == triple.output).all()

    def test_crossings_recorded_with_bandwidth(self, tiny_chain_model, tiny_chain_graph, images16):
        lv = levels_for(tiny_chain_model, images16[:1])
        sr = simulate(tiny_chain_graph, lv, partition=self._partition(tiny_chain_graph, 2))
        assert len(sr.pipeline.crossings) >= 1
        for crossing in sr.pipeline.crossings:
            assert crossing.required_mbps <= MAXRING.bandwidth_gbps * 1000

    def test_performance_degradation_is_small(self, tiny_chain_model, tiny_chain_graph, images16):
        """§III-B6: splitting across DFEs costs only link latency."""
        lv = levels_for(tiny_chain_model, images16[:1])
        single = simulate(tiny_chain_graph, lv)
        double = simulate(tiny_chain_graph, lv, partition=self._partition(tiny_chain_graph, 2))
        extra = double.latency_cycles - single.latency_cycles
        assert 0 <= extra <= 8 * MAXRING.latency_cycles

    def test_partition_rejects_duplicates(self, tiny_chain_graph, tiny_chain_model, images16):
        lv = levels_for(tiny_chain_model, images16[:1])
        names = [nm for nm in tiny_chain_graph.order if nm != tiny_chain_graph.input_name]
        with pytest.raises(ValueError):
            simulate(tiny_chain_graph, lv, partition=[names, names[:1]])

    def test_partition_rejects_missing(self, tiny_chain_graph, tiny_chain_model, images16):
        lv = levels_for(tiny_chain_model, images16[:1])
        names = [nm for nm in tiny_chain_graph.order if nm != tiny_chain_graph.input_name]
        with pytest.raises(ValueError):
            simulate(tiny_chain_graph, lv, partition=[names[:2]])
