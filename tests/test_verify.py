"""Tests for the static pipeline verifier (repro.dataflow.verify).

Fault-injection strategy: start from a topology that verifies clean, break
exactly one invariant, and assert the verifier reports exactly the expected
diagnostic code — plus, where the fault is dynamic (an undersized skip
FIFO), that the engine's run-time abort agrees with the static verdict.
"""

import copy
import dataclasses

import numpy as np
import pytest

from repro.dataflow import (
    LinkSpec,
    build_pipeline,
    check_skip_high_water,
    simulate,
    skip_formula_bound,
    solve_skip_capacities,
    verify,
    verify_graph,
    verify_pipeline,
)
from repro.dataflow.verify import SKIP_FORMULA_SLACK, SOLVER_IMAGES, Diagnostic
from repro.kernels import ForkKernel
from repro.nn import input_to_levels
from repro.nn.graph import AddNode


def _first_add(graph):
    return next(n for n in graph.order if isinstance(graph.nodes[n], AddNode))


def _levels(model, images):
    return input_to_levels(images, model.layers[0].quantizer)


@pytest.fixture()
def resnet_levels(tiny_resnet_model, images16):
    return _levels(tiny_resnet_model, images16)


def _fresh_resnet_graph(tiny_resnet_model):
    """A private graph copy: fault injections must not poison the session fixture."""
    from repro.nn import export_model

    return export_model(tiny_resnet_model, (16, 16, 3), name="tiny-resnet")


# -- clean topologies produce zero errors and zero warnings ----------------


class TestCleanTopologies:
    @pytest.mark.parametrize("fixture", ["tiny_chain_graph", "tiny_resnet_graph"])
    def test_no_false_positives(self, fixture, request):
        graph = request.getfixturevalue(fixture)
        report = verify(graph)
        assert report.ok, report.render()
        assert report.errors == []
        assert report.warnings == []

    def test_resnet_reports_exact_skip_sizes(self, tiny_resnet_graph):
        report = verify(tiny_resnet_graph)
        assert report.skip_mode == "exact"
        assert report.skip_capacities == solve_skip_capacities(tiny_resnet_graph)
        assert "V401" in report.codes()

    def test_rate_summary_present(self, tiny_chain_graph):
        report = verify(tiny_chain_graph)
        (rate,) = report.by_code("V303")
        assert rate.severity == "info"
        assert rate.paper == "§IV-B4"
        assert rate.data["interval_cycles"] > 0

    def test_bram_audit_fires_on_small_caches(self, tiny_resnet_graph):
        # Every tiny conv has O <= 384 outputs, so the §III-B1a waste claim
        # must hold for at least one weight cache.
        report = verify_graph(tiny_resnet_graph)
        audits = report.by_code("V601")
        assert audits
        assert all(d.severity == "info" and d.data["waste"] >= 0.25 for d in audits)

    def test_render_mentions_status_and_counts(self, tiny_chain_graph):
        report = verify(tiny_chain_graph)
        text = report.render()
        assert text.startswith(f"check {tiny_chain_graph.name}: ok — 0 error(s)")
        assert "skip sizing:" in text

    def test_diagnostic_rejects_unknown_severity(self):
        with pytest.raises(ValueError, match="severity"):
            Diagnostic("V999", "fatal", "x", "boom")


# -- the exact §III-B5 solver vs the engine --------------------------------


class TestSkipSolver:
    def test_solver_matches_engine_high_water(self, tiny_resnet_graph, resnet_levels):
        exact = solve_skip_capacities(tiny_resnet_graph)
        sr = simulate(tiny_resnet_graph, resnet_levels)  # 2 images: steady state
        for add_name, stream in sr.pipeline.skip_streams.items():
            assert stream.capacity == exact[add_name]
            assert stream.stats.max_occupancy == exact[add_name]
            assert stream.stats.full_rejections == 0

    def test_high_water_stable_beyond_solver_images(
        self, tiny_resnet_model, tiny_resnet_graph, rng
    ):
        # The solver replays SOLVER_IMAGES; a longer run must not peak higher
        # (the sanitizer inside simulate asserts exact equality).
        images = rng.uniform(0.0, 1.0, size=(SOLVER_IMAGES + 2, 16, 16, 3))
        sr = simulate(tiny_resnet_graph, _levels(tiny_resnet_model, images))
        exact = solve_skip_capacities(tiny_resnet_graph)
        for add_name, stream in sr.pipeline.skip_streams.items():
            assert stream.stats.max_occupancy == exact[add_name]

    def test_exact_within_formula_bound(self, tiny_resnet_graph):
        exact = solve_skip_capacities(tiny_resnet_graph)
        for add_name, required in exact.items():
            bound = skip_formula_bound(tiny_resnet_graph, add_name)
            assert 1 <= required <= bound + SKIP_FORMULA_SLACK

    def test_solution_cached_on_graph(self, tiny_resnet_graph):
        first = solve_skip_capacities(tiny_resnet_graph)
        assert tiny_resnet_graph._skip_capacity_cache
        assert solve_skip_capacities(tiny_resnet_graph) == first

    def test_sanitizer_catches_doctored_prediction(self, tiny_resnet_graph, resnet_levels):
        sr = simulate(tiny_resnet_graph, resnet_levels)
        pipeline = sr.pipeline
        stream = next(iter(pipeline.skip_streams.values()))
        stream.stats.max_occupancy -= 1  # pretend the engine peaked lower
        with pytest.raises(RuntimeError, match="solver and the engine disagree"):
            check_skip_high_water(pipeline, n_images=2)

    def test_sanitizer_catches_overflow(self, tiny_resnet_graph, resnet_levels):
        sr = simulate(tiny_resnet_graph, resnet_levels)
        pipeline = sr.pipeline
        stream = next(iter(pipeline.skip_streams.values()))
        stream.stats.max_occupancy = stream.capacity + 5
        with pytest.raises(RuntimeError, match="exceeds its capacity"):
            check_skip_high_water(pipeline, n_images=2)

    def test_single_image_held_to_at_most(self, tiny_resnet_graph, resnet_levels):
        # One image fills an empty pipeline once and may peak below the
        # steady-state mark; the sanitizer (inside simulate) must accept it.
        sr = simulate(tiny_resnet_graph, resnet_levels[:1])
        assert sr.output.shape[0] == 1


# -- fault injection: every class is caught statically ---------------------


class TestGraphFaults:
    def test_cycle_detected(self, tiny_resnet_model):
        graph = _fresh_resnet_graph(tiny_resnet_model)
        order = graph.topological()
        graph.graph.add_edge(order[-1], order[1], port=1)  # back edge
        report = verify(graph)
        assert not report.ok
        assert "V105" in report.codes()

    def test_unreachable_node_detected(self, tiny_resnet_model):
        graph = _fresh_resnet_graph(tiny_resnet_model)
        first = graph.topological()[1]
        graph.graph.remove_edge(graph.input_name, first)
        report = verify(graph)
        assert "V106" in report.codes()

    def test_missing_input_port_detected(self, tiny_resnet_model):
        graph = _fresh_resnet_graph(tiny_resnet_model)
        add = _first_add(graph)
        parent = graph.parents(add)[1]
        graph.graph.remove_edge(parent, add)
        report = verify(graph)
        codes = report.codes()
        assert "V103" in codes
        (diag,) = [d for d in report.by_code("V103") if d.where == add]
        assert diag.data["expected"] == 2

    def test_no_input_node_detected(self, tiny_resnet_model):
        graph = _fresh_resnet_graph(tiny_resnet_model)
        graph.input_name = None
        report = verify(graph)
        assert report.by_code("V107")[0].severity == "error"

    def test_wide_skip_operand_detected(self, tiny_resnet_model):
        graph = _fresh_resnet_graph(tiny_resnet_model)
        add = _first_add(graph)
        parent = graph.parents(add)[1]
        graph.specs[parent] = dataclasses.replace(graph.specs[parent], bits=18)
        report = verify_graph(graph)
        (diag,) = report.by_code("V202")
        assert diag.severity == "error"
        assert diag.where == add and diag.data["bits"] == 18

    def test_inflated_requirement_trips_formula_check(self, tiny_resnet_graph):
        adds = list(solve_skip_capacities(tiny_resnet_graph))
        fake = {
            name: skip_formula_bound(tiny_resnet_graph, name) + SKIP_FORMULA_SLACK + 1
            for name in adds
        }
        report = verify_graph(tiny_resnet_graph, exact_skip=fake)
        v402 = report.by_code("V402")
        assert len(v402) == len(adds)
        assert all(d.severity == "warning" for d in v402)

    def test_budget_fallback_reports_v403(self, tiny_resnet_graph):
        report = verify(tiny_resnet_graph, replay_budget=0, build=False)
        assert report.skip_mode == "bound"
        assert report.by_code("V403")
        assert "V401" not in report.codes()


class TestPipelineFaults:
    def test_undersized_skip_fifo_flagged_with_exact_minimum(
        self, tiny_resnet_graph, resnet_levels
    ):
        exact = solve_skip_capacities(tiny_resnet_graph)
        undersized = {name: cap - 1 for name, cap in exact.items()}
        pipeline = build_pipeline(tiny_resnet_graph, resnet_levels, skip_sizing=undersized)
        report = verify_pipeline(pipeline)
        v301 = report.by_code("V301")
        assert len(v301) == len(exact)
        for diag in v301:
            assert diag.severity == "error"
            assert diag.data["required"] == exact[diag.data["add"]]
            assert f"minimum safe capacity is {diag.data['required']}" in diag.message

    def test_undersized_skip_fifo_deadlocks_with_pointer(
        self, tiny_resnet_graph, resnet_levels
    ):
        exact = solve_skip_capacities(tiny_resnet_graph)
        undersized = dict(exact)
        first = next(iter(undersized))
        undersized[first] = max(1, exact[first] // 2)
        with pytest.raises(RuntimeError, match="no convergence") as excinfo:
            simulate(tiny_resnet_graph, resnet_levels, skip_sizing=undersized, max_cycles=60_000)
        message = str(excinfo.value)
        assert "stalled kernels at abort" in message
        assert "blocked on full" in message
        assert "python -m repro check" in message

    def test_exactly_sized_fifo_does_not_deadlock(self, tiny_resnet_graph, resnet_levels):
        exact = solve_skip_capacities(tiny_resnet_graph)
        sr = simulate(tiny_resnet_graph, resnet_levels, skip_sizing=dict(exact))
        assert sr.pipeline.skip_sizing == "custom"
        assert sr.output.shape[0] == 2

    def test_skip_sizing_mapping_must_cover_all_adders(
        self, tiny_resnet_graph, resnet_levels
    ):
        exact = solve_skip_capacities(tiny_resnet_graph)
        partial = dict(list(exact.items())[:-1])
        with pytest.raises(ValueError, match="misses residual adders"):
            build_pipeline(tiny_resnet_graph, resnet_levels, skip_sizing=partial)

    def test_corrupt_stream_bits_flagged(self, tiny_resnet_graph, resnet_levels):
        pipeline = build_pipeline(tiny_resnet_graph, resnet_levels)
        victim = next(s for s in pipeline.engine.streams if s.bits == 2)
        victim.bits = 7
        report = verify_pipeline(pipeline)
        (diag,) = report.by_code("V201")
        assert diag.severity == "error"
        assert diag.where == victim.name
        assert diag.data["declared"] == 7
        assert diag.data["expected"] == 2

    def test_fork_arm_removal_flagged(self, tiny_resnet_graph, resnet_levels):
        pipeline = build_pipeline(tiny_resnet_graph, resnet_levels)
        fork = next(k for k in pipeline.engine.kernels if isinstance(k, ForkKernel))
        fork.outputs.pop()
        report = verify_pipeline(pipeline)
        assert "V104" in report.codes()
        assert any(d.where == fork.name for d in report.by_code("V104"))

    def test_dangling_reader_flagged(self, tiny_resnet_graph, resnet_levels):
        pipeline = build_pipeline(tiny_resnet_graph, resnet_levels)
        stream = pipeline.engine.streams[1]
        stream.reader = None
        report = verify_pipeline(pipeline)
        assert any(
            d.code == "V101" and d.where == stream.name for d in report.diagnostics
        )

    def test_double_binding_flagged(self, tiny_resnet_graph, resnet_levels):
        pipeline = build_pipeline(tiny_resnet_graph, resnet_levels)
        a, b = pipeline.engine.streams[1], pipeline.engine.streams[2]
        b.reader = a.reader  # b now claims a's consumer, orphaning its own
        report = verify_pipeline(pipeline)
        assert "V102" in report.codes()

    def test_weak_link_overcommitted(self, tiny_chain_model, tiny_chain_graph, images16):
        lv = _levels(tiny_chain_model, images16[:1])
        names = [n for n in tiny_chain_graph.order if n != tiny_chain_graph.input_name]
        half = len(names) // 2
        dialup = LinkSpec(name="dialup", bandwidth_gbps=0.0001, latency_cycles=16)
        pipeline = build_pipeline(
            tiny_chain_graph, lv, partition=[names[:half], names[half:]], link=dialup
        )
        report = verify_pipeline(pipeline)
        v501 = report.by_code("V501")
        assert v501 and all(d.severity == "error" for d in v501)
        assert all(d.data["utilization"] > 1.0 for d in v501)

    def test_healthy_link_reports_headroom(
        self, tiny_chain_model, tiny_chain_graph, images16
    ):
        lv = _levels(tiny_chain_model, images16[:1])
        names = [n for n in tiny_chain_graph.order if n != tiny_chain_graph.input_name]
        half = len(names) // 2
        pipeline = build_pipeline(tiny_chain_graph, lv, partition=[names[:half], names[half:]])
        report = verify_pipeline(pipeline)
        assert report.ok
        assert "V501" not in report.codes()
        assert report.by_code("V502")[0].data["utilization"] < 1.0

    def test_shallow_crossing_fifo_flagged(
        self, tiny_chain_model, tiny_chain_graph, images16
    ):
        lv = _levels(tiny_chain_model, images16[:1])
        names = [n for n in tiny_chain_graph.order if n != tiny_chain_graph.input_name]
        half = len(names) // 2
        pipeline = build_pipeline(tiny_chain_graph, lv, partition=[names[:half], names[half:]])
        crossing = next(s for s in pipeline.engine.streams if s.latency > 0)
        crossing.capacity = 2
        report = verify_pipeline(pipeline)
        (diag,) = report.by_code("V302")
        assert diag.severity == "warning" and diag.where == crossing.name

    def test_skip_stream_across_chips_flagged(self, tiny_resnet_graph, resnet_levels):
        names = [n for n in tiny_resnet_graph.order if n != tiny_resnet_graph.input_name]
        add = _first_add(tiny_resnet_graph)
        cut = names.index(add)  # split right before a residual adder
        pipeline = build_pipeline(
            tiny_resnet_graph, resnet_levels, partition=[names[:cut], names[cut:]]
        )
        report = verify_pipeline(pipeline)
        assert "V503" in report.codes()


# -- raise_on_error and report plumbing ------------------------------------


class TestReportApi:
    def test_raise_on_error(self, tiny_resnet_model):
        graph = _fresh_resnet_graph(tiny_resnet_model)
        graph.input_name = None
        with pytest.raises(RuntimeError, match="V107"):
            verify(graph).raise_on_error()

    def test_clean_report_passes_through(self, tiny_chain_graph):
        report = verify(tiny_chain_graph)
        assert report.raise_on_error() is report

    def test_render_hides_info_when_asked(self, tiny_resnet_graph):
        report = verify(tiny_resnet_graph)
        assert "V401" in report.render(show_info=True)
        assert "V401" not in report.render(show_info=False)

    def test_deepcopyable(self, tiny_chain_graph):
        report = verify(tiny_chain_graph)
        clone = copy.deepcopy(report)
        assert clone.codes() == report.codes()


# -- the check CLI ---------------------------------------------------------


class TestCheckCli:
    def test_check_vgg_clean(self, capsys):
        from repro.cli import main

        assert main(["check", "vgg:16:0.0625", "--no-info"]) == 0
        out = capsys.readouterr().out
        assert "ok — 0 error(s)" in out

    def test_check_graph_only(self, capsys):
        from repro.cli import main

        assert main(["check", "vgg:16:0.0625", "--graph-only", "--bound"]) == 0

    def test_check_unknown_network(self, capsys):
        from repro.cli import main

        assert main(["check", "lenet"]) == 2
        assert "unknown network" in capsys.readouterr().err
