"""CLI tests for the telemetry-facing subcommands (simulate --json, top, stats)."""

import json

import pytest

from repro.cli import main as cli_main
from repro.telemetry import validate_exposition


class TestSimulateJson:
    def test_json_mode_is_machine_readable(self, capsys):
        rc = cli_main(["simulate", "--images", "2", "--json"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == "repro-telemetry/1"
        assert payload["stats"]["images"] == 2
        assert payload["stats"]["cycles"] > payload["stats"]["latency_cycles"] > 0
        assert payload["stats"]["fps"] > 0
        assert payload["manifest"]["topology"]["name"].startswith("vgg")
        names = {f["name"] for f in payload["metrics"]}
        assert "repro_kernel_cycles_total" in names

    def test_exports_prometheus_and_snapshot_files(self, capsys, tmp_path):
        prom = tmp_path / "m.prom"
        snap = tmp_path / "m.json"
        rc = cli_main(
            ["simulate", "--images", "2", "--prom", str(prom), "--snapshot", str(snap)]
        )
        assert rc == 0
        assert validate_exposition(prom.read_text()) == []
        assert json.loads(snap.read_text())["finished"] is True

    def test_existing_export_requires_force(self, capsys, tmp_path):
        prom = tmp_path / "m.prom"
        prom.write_text("old\n")
        rc = cli_main(["simulate", "--prom", str(prom)])
        assert rc == 2
        assert "--force" in capsys.readouterr().err
        assert prom.read_text() == "old\n"
        rc = cli_main(["simulate", "--prom", str(prom), "--force"])
        assert rc == 0
        assert prom.read_text() != "old\n"


class TestSimulateLeapDemotion:
    def test_open_loop_leap_warns_with_reason(self, capsys):
        # An open-loop arrival schedule demotes --mode leap to the fast
        # path; the CLI must say so (one stderr line naming the reason)
        # instead of silently delivering fast-path wall clock.
        rc = cli_main(
            ["simulate", "--images", "2", "--mode", "leap", "--rate", "9000"]
        )
        assert rc == 0
        captured = capsys.readouterr()
        assert "leap demoted to the fast path" in captured.err
        assert "open-loop" in captured.err
        # The demotion line replaces the no-window note on stdout.
        assert "no steady-state window" not in captured.out

    def test_closed_loop_leap_does_not_warn(self, capsys):
        rc = cli_main(["simulate", "--images", "2", "--mode", "leap"])
        assert rc == 0
        captured = capsys.readouterr()
        assert "demoted" not in captured.err

    def test_open_loop_rate_without_leap_mode_is_quiet(self, capsys):
        rc = cli_main(["simulate", "--images", "2", "--rate", "9000"])
        assert rc == 0
        assert "demoted" not in capsys.readouterr().err


class TestTraceOverwriteGuard:
    def test_trace_refuses_existing_out(self, capsys, tmp_path):
        out = tmp_path / "trace.json"
        out.write_text("{}")
        rc = cli_main(["trace", "--out", str(out)])
        assert rc == 2
        assert "--force" in capsys.readouterr().err
        assert out.read_text() == "{}"

    def test_trace_force_overwrites(self, capsys, tmp_path):
        out = tmp_path / "trace.json"
        out.write_text("{}")
        rc = cli_main(["trace", "--out", str(out), "--force"])
        assert rc == 0
        assert out.read_text() != "{}"


class TestTop:
    def test_plain_dashboard_runs(self, capsys):
        rc = cli_main(["top", "--plain", "--images", "2", "--refresh", "0"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "repro top" in out
        assert "run complete" in out
        assert "utilization" in out


class TestStats:
    def test_healthy_run_reports_ok(self, capsys):
        rc = cli_main(["stats", "--images", "2"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "stall-adjusted utilization" in out
        assert "FPS" in out

    def test_fault_injected_skip_names_root_edge(self, capsys):
        rc = cli_main(
            [
                "stats",
                "--network",
                "resnet18",
                "--skip-capacity",
                "8",
                "--max-cycles",
                "50000",
            ]
        )
        assert rc == 1
        out = capsys.readouterr().out
        assert "root bottleneck edge" in out
        assert "minimum safe capacity" in out

    def test_skip_capacity_on_chain_topology_rejected(self, capsys):
        rc = cli_main(["stats", "--network", "vgg", "--skip-capacity", "4"])
        assert rc == 2
        assert "no adders" in capsys.readouterr().err
