"""Perf-regression harness: policy, trajectory integrity, diff gate, plugin.

Covers the four perfwatch layers end-to-end:

* the shared strict/loose threshold policy (the single source the bench
  guards and the CI gate both draw from);
* ``BENCH_streaming.json`` integrity — the committed file must parse,
  stay append-only with non-decreasing timestamps, carry the required
  host keys on every entry, and use only registered case names;
* the diff gate — an injected slow case or inflated-RSS case makes
  ``repro perf diff`` exit non-zero naming that case, while the committed
  baseline passes clean even under ``--strict``;
* the pytest plugin — a real subprocess session writes a valid
  ``repro-perf/1`` report, metering overhead on the tiny_chain workload
  stays within the telemetry-guard budget, and reports are deterministic
  modulo timing fields.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time
from pathlib import Path

import numpy as np
import pytest

from repro.cli import main
from repro.perfwatch import (
    KNOWN_CASES,
    LOOSE_FLOOR,
    STRICT_FLOOR,
    PerfDataError,
    PerfRecord,
    PerfReport,
    check_cost,
    check_rate,
    diff_reports,
    diff_trajectory,
    latest_rate,
    load_trajectory,
    rate_floor,
    sparkline,
    trajectory_payload,
    validate_trajectory,
)
from repro.perfwatch.plugin import PerfMeter

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_PATH = REPO_ROOT / "BENCH_streaming.json"
SRC_DIR = REPO_ROOT / "src"


# ---------------------------------------------------------------------------
# policy


def test_rate_floor_defaults_loose(monkeypatch):
    monkeypatch.delenv("REPRO_BENCH_STRICT", raising=False)
    assert rate_floor() == LOOSE_FLOOR
    assert rate_floor(strict=True) == STRICT_FLOOR
    assert rate_floor(strict=False) == LOOSE_FLOOR


def test_rate_floor_env_strict(monkeypatch):
    monkeypatch.setenv("REPRO_BENCH_STRICT", "1")
    assert rate_floor() == STRICT_FLOOR
    # An explicit argument still wins over the environment.
    assert rate_floor(strict=False) == LOOSE_FLOOR


def test_check_rate_boundaries():
    # Exactly at the floor passes; just below fails and names the case.
    assert check_rate("c", 60.0, 100.0, strict=False) is None
    violation = check_rate("c", 59.9, 100.0, strict=False)
    assert violation is not None and violation.case == "c"
    assert "c:" in str(violation) and "below" in str(violation)
    assert violation.severity > 1.0
    assert check_rate("c", 95.0, 100.0, strict=True) is None
    assert check_rate("c", 94.0, 100.0, strict=True) is not None


def test_check_cost_boundaries():
    # Cost may grow to baseline/floor; beyond that is a violation.
    assert check_cost("c", 100.0 / 0.6, 100.0, strict=False) is None
    violation = check_cost("c", 100.0 / 0.6 + 1, 100.0, strict=False)
    assert violation is not None and violation.kind == "cost"
    assert "exceeds" in str(violation)
    assert check_cost("c", 0.0, 0.0) is None  # zero baseline never trips


# ---------------------------------------------------------------------------
# trajectory integrity (the committed file is the fixture)


def test_committed_trajectory_is_valid():
    entries = load_trajectory(BENCH_PATH)
    assert entries, "BENCH_streaming.json must hold at least the seed entry"
    assert validate_trajectory(entries) == []


def test_committed_trajectory_passes_strict_diff():
    result = diff_trajectory(load_trajectory(BENCH_PATH), strict=True)
    assert result.ok, result.render()
    assert result.worst is None


def _entry(timestamp, revision, cases):
    return {
        "timestamp": timestamp,
        "revision": revision,
        "python": "3.11.7",
        "numpy": "2.4.6",
        "cases": cases,
    }


def _case(rate):
    return {
        "simulated_cycles": 100_000,
        "seconds": 100_000 / rate,
        "simulated_cycles_per_second": rate,
    }


def test_validate_names_each_problem():
    entries = [
        _entry("2026-08-02T00:00:00Z", "aaa", {"tiny_chain": _case(1000.0)}),
        # out-of-order timestamp, missing revision, unknown case, rate-less case
        {
            "timestamp": "2026-08-01T00:00:00Z",
            "python": "3.11.7",
            "numpy": "2.4.6",
            "cases": {"no_such_case": _case(1000.0), "tiny_resnet": {"seconds": 1.0}},
        },
    ]
    problems = "\n".join(validate_trajectory(entries))
    assert "append-only" in problems
    assert "missing required key 'revision'" in problems
    assert "unknown case 'no_such_case'" in problems
    assert "no positive simulated_cycles_per_second" in problems


def test_validate_rejects_bad_timestamp_and_shapes():
    problems = "\n".join(
        validate_trajectory(
            [
                _entry("yesterday-ish", "aaa", {"tiny_chain": _case(1.0)}),
                {"timestamp": "2026-08-01T00:00:00Z", "revision": "b", "python": "x", "numpy": "y"},
                "not-an-object",
            ]
        )
    )
    assert "not UTC ISO" in problems
    assert "missing or empty 'cases'" in problems
    assert "not an object" in problems


def test_flush_refuses_malformed_append(tmp_path, monkeypatch):
    from benchmarks import perf_trajectory

    monkeypatch.setattr(perf_trajectory, "BENCH_PATH", tmp_path / "traj.json")
    perf_trajectory.record("no_such_case", 1000, 0.5)
    try:
        with pytest.raises(PerfDataError, match="no_such_case"):
            perf_trajectory.flush()
        assert not (tmp_path / "traj.json").exists()
    finally:
        perf_trajectory._cases.clear()


def test_flush_appends_valid_entry_and_peek(tmp_path, monkeypatch):
    from benchmarks import perf_trajectory

    monkeypatch.setattr(perf_trajectory, "BENCH_PATH", tmp_path / "traj.json")
    perf_trajectory.record("tiny_chain", 5614, 0.05)
    assert "tiny_chain" in perf_trajectory.peek()
    try:
        perf_trajectory.flush()
        entries = load_trajectory(tmp_path / "traj.json")
        assert validate_trajectory(entries) == []
        assert latest_rate(entries, "tiny_chain") == pytest.approx(5614 / 0.05, rel=1e-3)
        # After the flush peek still answers (the plugin may run second).
        assert "tiny_chain" in perf_trajectory.peek()
    finally:
        perf_trajectory._cases.clear()
        perf_trajectory._last_flushed.clear()


# ---------------------------------------------------------------------------
# diff gate


def test_diff_flags_injected_regression_and_names_worst():
    entries = [
        _entry("2026-08-01T00:00:00Z", "aaa", {"tiny_chain": _case(100_000.0), "vgg32_dense": _case(200_000.0)}),
        _entry("2026-08-02T00:00:00Z", "bbb", {"tiny_chain": _case(40_000.0), "vgg32_dense": _case(190_000.0)}),
    ]
    result = diff_trajectory(entries)  # loose floor: 40% retained < 60%
    assert not result.ok
    assert result.worst is not None and result.worst.case == "tiny_chain"
    assert "tiny_chain" in result.render()
    payload = result.as_dict()
    assert payload["schema"] == "repro-perf-diff/1"
    assert payload["worst_offender"] == "tiny_chain"


def test_diff_strict_catches_what_loose_allows():
    entries = [
        _entry("2026-08-01T00:00:00Z", "aaa", {"vgg32_leap": _case(1_000_000.0)}),
        _entry("2026-08-02T00:00:00Z", "bbb", {"vgg32_leap": _case(800_000.0)}),
    ]
    assert diff_trajectory(entries, strict=False).ok
    assert not diff_trajectory(entries, strict=True).ok


def test_diff_against_best_uses_alltime_peak():
    entries = [
        _entry("2026-08-01T00:00:00Z", "aaa", {"tiny_chain": _case(150_000.0)}),
        _entry("2026-08-02T00:00:00Z", "bbb", {"tiny_chain": _case(90_000.0)}),
        _entry("2026-08-03T00:00:00Z", "ccc", {"tiny_chain": _case(88_000.0)}),
    ]
    # vs prev (88k/90k) both floors pass; vs best (88k/150k = 59%) loose trips.
    assert diff_trajectory(entries, against="prev").ok
    assert not diff_trajectory(entries, against="best").ok


def test_diff_single_recording_is_new_and_passes():
    entries = [_entry("2026-08-01T00:00:00Z", "aaa", {"tiny_chain_plan": _case(1000.0)})]
    result = diff_trajectory(entries, strict=True)
    assert result.ok and result.deltas[0].new


def test_diff_cli_trajectory_gate(tmp_path, capsys):
    path = tmp_path / "traj.json"
    path.write_text(
        json.dumps(
            [
                _entry("2026-08-01T00:00:00Z", "aaa", {"tiny_chain": _case(100_000.0)}),
                _entry("2026-08-02T00:00:00Z", "bbb", {"tiny_chain": _case(40_000.0)}),
            ]
        )
    )
    rc = main(["perf", "diff", "--baseline", str(path)])
    captured = capsys.readouterr()
    assert rc == 1
    assert "PERF REGRESSION" in captured.err and "tiny_chain" in captured.err

    clean = tmp_path / "clean.json"
    clean.write_text(
        json.dumps([_entry("2026-08-01T00:00:00Z", "aaa", {"tiny_chain": _case(100_000.0)})])
    )
    assert main(["perf", "diff", "--baseline", str(clean), "--strict"]) == 0
    capsys.readouterr()


def test_diff_cli_rejects_malformed_trajectory(tmp_path, capsys):
    bad = tmp_path / "bad.json"
    bad.write_text(json.dumps([{"cases": {"tiny_chain": _case(1.0)}}]))
    assert main(["perf", "diff", "--baseline", str(bad)]) == 2
    assert "malformed" in capsys.readouterr().err
    missing = tmp_path / "missing.json"
    assert main(["perf", "diff", "--baseline", str(missing)]) == 2
    capsys.readouterr()


def _write_perf_report(path, wall_s=0.1, rss_kb=50_000, extra=None):
    records = {
        "tests/test_probe.py::test_alpha": PerfRecord(wall_s, wall_s * 0.9, rss_kb, 100),
        "tests/test_probe.py::test_beta": PerfRecord(0.05, 0.04, 40_000, 50),
    }
    if extra:
        records.update(extra)
    report = PerfReport(records=records, timestamp="2026-08-09T00:00:00Z")
    report.write(path)
    return report


def test_diff_cli_report_mode_slow_case(tmp_path, capsys):
    base = tmp_path / "base.json"
    cur = tmp_path / "cur.json"
    _write_perf_report(base, wall_s=0.1)
    _write_perf_report(cur, wall_s=0.2)  # 2x slower: beyond the loose 1/0.6 budget
    rc = main(["perf", "diff", "--report", str(cur), "--baseline", str(base)])
    captured = capsys.readouterr()
    assert rc == 1
    assert "test_alpha" in captured.err and "wall seconds" in captured.err


def test_diff_cli_report_mode_inflated_rss(tmp_path, capsys):
    base = tmp_path / "base.json"
    cur = tmp_path / "cur.json"
    _write_perf_report(base, rss_kb=50_000)
    _write_perf_report(cur, rss_kb=120_000)  # 2.4x the baseline peak RSS
    rc = main(["perf", "diff", "--report", str(cur), "--baseline", str(base)])
    captured = capsys.readouterr()
    assert rc == 1
    assert "test_alpha" in captured.err and "peak RSS" in captured.err


def test_diff_cli_report_mode_clean_and_new_tests_pass(tmp_path, capsys):
    base = tmp_path / "base.json"
    cur = tmp_path / "cur.json"
    _write_perf_report(base)
    _write_perf_report(
        cur, extra={"tests/test_probe.py::test_gamma": PerfRecord(9.9, 9.0, 999_999, 0)}
    )
    assert main(["perf", "diff", "--report", str(cur), "--baseline", str(base), "--strict"]) == 0
    capsys.readouterr()


def test_diff_reports_cross_host_annotation():
    base = PerfReport(
        records={"t": PerfRecord(0.1, 0.1, 1000, 0)}, manifest={"python": "3.10.0"}
    )
    cur = PerfReport(
        records={"t": PerfRecord(0.1, 0.1, 1000, 0)}, manifest={"python": "3.11.7"}
    )
    result = diff_reports(cur, base)
    assert result.ok
    assert all(d.cross_host.get("python") == ("3.11.7", "3.10.0") for d in result.deltas)


# ---------------------------------------------------------------------------
# trajectory report rendering


def test_sparkline_scales_and_handles_flat():
    assert sparkline([]) == ""
    assert sparkline([5.0, 5.0]) == "▄▄"
    line = sparkline([0.0, 50.0, 100.0])
    assert line[0] == "▁" and line[-1] == "█" and len(line) == 3


def test_report_cli_renders_every_entry_and_revision(capsys):
    rc = main(["perf", "report", "--trajectory", str(BENCH_PATH), "--markdown"])
    out = capsys.readouterr().out
    assert rc == 0
    entries = json.loads(BENCH_PATH.read_text())
    for entry in entries:
        assert entry["revision"] in out
        for case in entry["cases"]:
            assert f"`{case}`" in out


def test_report_cli_table_lists_all_cases(capsys):
    rc = main(["perf", "report", "--trajectory", str(BENCH_PATH)])
    out = capsys.readouterr().out
    assert rc == 0
    entries = json.loads(BENCH_PATH.read_text())
    recorded = {case for entry in entries for case in entry["cases"]}
    for case in recorded:
        assert case in out


def test_report_cli_json_payload(capsys):
    rc = main(["perf", "report", "--trajectory", str(BENCH_PATH), "--json"])
    payload = json.loads(capsys.readouterr().out)
    assert rc == 0
    assert payload["schema"] == "repro-perf-trajectory/1"
    assert payload["cases"]["tiny_chain"]["recordings"]
    for case in payload["cases"]:
        assert case in KNOWN_CASES


def test_report_cli_out_refuses_overwrite(tmp_path, capsys):
    out = tmp_path / "report.md"
    out.write_text("precious")
    rc = main(
        ["perf", "report", "--trajectory", str(BENCH_PATH), "--markdown", "--out", str(out)]
    )
    assert rc == 2
    assert "exists" in capsys.readouterr().err
    rc = main(
        [
            "perf",
            "report",
            "--trajectory",
            str(BENCH_PATH),
            "--html",
            "--out",
            str(out),
            "--force",
        ]
    )
    assert rc == 0
    assert out.read_text().startswith("<!doctype html>")
    capsys.readouterr()


def test_trajectory_payload_counts_match_file():
    entries = load_trajectory(BENCH_PATH)
    payload = trajectory_payload(entries)
    assert payload["entries"] == len(entries)
    n_recordings = sum(len(c["recordings"]) for c in payload["cases"].values())
    assert n_recordings == sum(len(e["cases"]) for e in entries)


# ---------------------------------------------------------------------------
# the plugin and its meter


def test_perf_meter_records_sane_values():
    meter = PerfMeter().start()
    data = np.arange(500_000, dtype=np.float64)
    total = float(data.sum())
    record = meter.stop()
    assert total > 0
    assert record.wall_s > 0
    assert record.cpu_s >= 0
    assert record.peak_rss_kb > 0
    assert record.rss_growth_kb >= 0
    assert record.tracemalloc_peak_kb is None
    assert record.outcome == "passed"


def test_perf_meter_tracemalloc_sees_allocations():
    meter = PerfMeter(trace_alloc=True).start()
    blob = [bytearray(1024) for _ in range(2048)]  # ~2 MB live
    record = meter.stop()
    assert len(blob) == 2048
    assert record.tracemalloc_peak_kb is not None
    assert record.tracemalloc_peak_kb >= 1024


def test_meter_overhead_on_tiny_chain_within_telemetry_budget():
    """The meter wrapped around the bench workload must be ~free.

    Same budget as the telemetry/loadgen overhead guards: the metered run
    may cost at most 1/floor of the bare run (5% strict, 40% loose) —
    metering is two getrusage calls and two clock reads per test, so this
    holds with enormous margin on any machine.
    """
    from repro.dataflow import simulate
    from repro.nn import input_to_levels
    from repro.nn.export import export_model
    from tests.conftest import make_tiny_chain_model

    model = make_tiny_chain_model()
    graph = export_model(model, (16, 16, 3), name="tiny-chain")
    rng = np.random.default_rng(0)
    levels = input_to_levels(rng.uniform(0, 1, (2, 16, 16, 3)), model.layers[0].quantizer)

    simulate(graph, levels)  # warm caches before timing either path
    bare = min(_timed(lambda: simulate(graph, levels)) for _ in range(3))

    def metered():
        meter = PerfMeter().start()
        simulate(graph, levels)
        meter.stop()

    wrapped = min(_timed(metered) for _ in range(3))
    assert check_cost("tiny_chain_metered", wrapped, bare, metric="wall seconds") is None, (
        f"perfwatch meter overhead too high: {wrapped:.4f}s vs {bare:.4f}s bare "
        f"(floor {rate_floor():.0%})"
    )


def _timed(fn):
    t0 = time.perf_counter()
    fn()
    return time.perf_counter() - t0


def _run_plugin_session(tmp_path, tag):
    """Run a tiny pytest session in a subprocess under the plugin."""
    probe = tmp_path / "test_probe.py"
    probe.write_text(
        "def test_fast():\n"
        "    assert sum(range(1000)) == 499500\n"
        "\n"
        "def test_broken():\n"
        "    assert False\n"
    )
    report_path = tmp_path / f"perf_{tag}.json"
    env = dict(os.environ)
    env["REPRO_PERF_REPORT"] = str(report_path)
    env["PYTHONPATH"] = str(SRC_DIR) + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, "-m", "pytest", "-q", "-p", "repro.perfwatch.plugin", str(probe)],
        cwd=tmp_path,
        env=env,
        capture_output=True,
        text=True,
        timeout=180,
    )
    assert proc.returncode == 1, proc.stdout + proc.stderr  # one failing probe test
    return PerfReport.load(report_path)


def test_plugin_end_to_end_writes_valid_report(tmp_path):
    report = _run_plugin_session(tmp_path, "a")
    assert set(report.records) == {
        "test_probe.py::test_fast",
        "test_probe.py::test_broken",
    }
    fast = report.records["test_probe.py::test_fast"]
    broken = report.records["test_probe.py::test_broken"]
    assert fast.outcome == "passed" and broken.outcome == "failed"
    assert fast.wall_s > 0 and fast.peak_rss_kb > 0
    payload = json.loads((tmp_path / "perf_a.json").read_text())
    assert payload["schema"] == "repro-perf/1"
    for key in ("revision", "python", "numpy"):
        assert payload.get(key), key


def test_plugin_report_deterministic_modulo_timing(tmp_path):
    (tmp_path / "run1").mkdir()
    (tmp_path / "run2").mkdir()
    first = _run_plugin_session(tmp_path / "run1", "x")
    second = _run_plugin_session(tmp_path / "run2", "x")
    assert first.stable_dict() == second.stable_dict()
    # ... while the timing fields themselves did get recorded.
    assert all(r.wall_s > 0 for r in first.records.values())


def test_report_roundtrip_and_schema_guard(tmp_path):
    report = _write_perf_report(tmp_path / "r.json")
    loaded = PerfReport.load(tmp_path / "r.json")
    assert loaded.as_dict() == report.as_dict()
    (tmp_path / "bad.json").write_text(json.dumps({"schema": "other/1", "records": {}}))
    with pytest.raises(PerfDataError, match="schema"):
        PerfReport.load(tmp_path / "bad.json")
