"""Tests for the kernel-contract linter (tools/lint_kernels.py)."""

import importlib.util
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[1]
LINTER = REPO_ROOT / "tools" / "lint_kernels.py"

_spec = importlib.util.spec_from_file_location("lint_kernels", LINTER)
lint_kernels = importlib.util.module_from_spec(_spec)
sys.modules.setdefault("lint_kernels", lint_kernels)
_spec.loader.exec_module(lint_kernels)


def _codes(source: str, tmp_path: Path) -> list[str]:
    path = tmp_path / "probe.py"
    path.write_text(source)
    return [v.code for v in lint_kernels.lint_file(path)]


class TestRepoIsClean:
    def test_default_paths_have_no_violations(self):
        violations = lint_kernels.lint_paths(list(lint_kernels.DEFAULT_PATHS))
        assert violations == [], [v.render() for v in violations]

    def test_cli_exit_zero_on_repo(self, capsys):
        assert lint_kernels.main([]) == 0
        assert "lint clean" in capsys.readouterr().out

    def test_cli_exit_nonzero_on_missing_path(self, capsys):
        assert lint_kernels.main([str(REPO_ROOT / "no" / "such" / "file.py")]) == 1
        assert "KC000" in capsys.readouterr().out


class TestTickReturns:
    def test_bad_return_value_flagged(self, tmp_path):
        src = """
class BadKernel(Kernel):
    def tick(self, cycle):
        return 7
"""
        assert _codes(src, tmp_path) == ["KC001"]

    @pytest.mark.parametrize(
        "ret",
        ["return", "return None", "return self._starved(cycle)",
         "return self._blocked(cycle)", "return self._idle(cycle)"],
    )
    def test_allowed_returns_pass(self, ret, tmp_path):
        src = f"""
class GoodKernel(Kernel):
    def tick(self, cycle):
        {ret}
"""
        assert _codes(src, tmp_path) == []

    def test_non_kernel_classes_ignored(self, tmp_path):
        src = """
class Helper:
    def tick(self, cycle):
        return 3.14 / 2
"""
        assert _codes(src, tmp_path) == []


class TestStreamMutation:
    def test_direct_fifo_mutator_flagged(self, tmp_path):
        src = """
class BadKernel(Kernel):
    def tick(self, cycle):
        self.inputs[0]._fifo.popleft()
"""
        assert _codes(src, tmp_path) == ["KC002"]

    def test_aliased_fifo_mutator_flagged(self, tmp_path):
        src = """
class BadKernel(Kernel):
    def tick(self, cycle):
        inp = self.inputs[0]
        fifo = inp._fifo
        fifo.append((0, 1))
"""
        assert _codes(src, tmp_path) == ["KC002"]

    def test_stream_attribute_assignment_flagged(self, tmp_path):
        src = """
class BadKernel(Kernel):
    def tick(self, cycle):
        out = self.outputs[0]
        out.capacity = 99
"""
        assert _codes(src, tmp_path) == ["KC002"]

    def test_tuple_unpacked_stream_alias_tracked(self, tmp_path):
        src = """
class BadKernel(Kernel):
    def tick(self, cycle):
        a, b = self.inputs
        b._fifo = None
"""
        assert _codes(src, tmp_path) == ["KC002"]

    def test_fifo_reads_allowed(self, tmp_path):
        # Reading the deque on the hot path is the repo's documented idiom.
        src = """
class GoodKernel(Kernel):
    def tick(self, cycle):
        inp = self.inputs[0]
        fifo = inp._fifo
        if fifo and fifo[0][1] <= cycle:
            value = inp.pop(cycle)
"""
        assert _codes(src, tmp_path) == []

    def test_own_state_alias_writes_allowed(self, tmp_path):
        # Hoisting `stats = self.stats` and writing through it is fine.
        src = """
class GoodKernel(Kernel):
    def tick(self, cycle):
        stats = self.stats
        stats.active_cycles += 1
        grid = self._grid
        grid[0] = 5
        self.outputs[0].push(1, cycle)
"""
        assert _codes(src, tmp_path) == []


class TestFloatFreeTick:
    def test_float_literal_flagged(self, tmp_path):
        src = """
class BadKernel(Kernel):
    def tick(self, cycle):
        x = 0.5
"""
        assert _codes(src, tmp_path) == ["KC003"]

    def test_true_division_flagged(self, tmp_path):
        src = """
class BadKernel(Kernel):
    def tick(self, cycle):
        x = cycle / 2
"""
        assert _codes(src, tmp_path) == ["KC003"]

    def test_float_call_flagged(self, tmp_path):
        src = """
class BadKernel(Kernel):
    def tick(self, cycle):
        x = float(cycle)
"""
        assert _codes(src, tmp_path) == ["KC003"]

    def test_floor_division_and_ints_pass(self, tmp_path):
        src = """
class GoodKernel(Kernel):
    def tick(self, cycle):
        x = cycle // 2 + 3
"""
        assert _codes(src, tmp_path) == []

    def test_float_outside_tick_allowed(self, tmp_path):
        # Numeric lowering helpers (e.g. _compute_outputs) may use floats.
        src = """
class GoodKernel(Kernel):
    def tick(self, cycle):
        return None

    def _compute_outputs(self, window):
        return [x / 2.0 for x in window]
"""
        assert _codes(src, tmp_path) == []


class TestSlotsDataclasses:
    def test_missing_slots_flagged(self, tmp_path):
        src = """
from dataclasses import dataclass

@dataclass
class Record:
    x: int = 0
"""
        assert _codes(src, tmp_path) == ["KC004"]

    def test_slots_true_passes(self, tmp_path):
        src = """
from dataclasses import dataclass

@dataclass(slots=True)
class Record:
    x: int = 0
"""
        assert _codes(src, tmp_path) == []

    def test_syntax_error_reported_not_raised(self, tmp_path):
        assert _codes("def broken(:\n", tmp_path) == ["KC000"]


class TestStateMutationScope:
    def test_mutation_from_accessor_flagged(self, tmp_path):
        src = """
class BadKernel(Kernel):
    def tick(self, cycle):
        return None

    def render(self):
        self.stats.emitted += 1
        return "x"
"""
        assert _codes(src, tmp_path) == ["KC005"]

    def test_mutation_via_tick_helper_allowed(self, tmp_path):
        src = """
class GoodKernel(Kernel):
    def tick(self, cycle):
        self._account(cycle)
        return None

    def _account(self, cycle):
        self._bump()

    def _bump(self):
        self.stats.ticks += 1
"""
        assert _codes(src, tmp_path) == []

    def test_batch_compute_is_a_root(self, tmp_path):
        src = """
class GoodKernel(Kernel):
    def batch_compute(self, images):
        self.stats.images += 1
"""
        assert _codes(src, tmp_path) == []

    def test_same_file_slots_dataclass_attr_tracked(self, tmp_path):
        src = """
from dataclasses import dataclass

@dataclass(slots=True)
class Window:
    rows: int = 0

class BadKernel(Kernel):
    def __init__(self):
        self.window = Window()

    def tick(self, cycle):
        return None

    def describe(self):
        self.window.rows = 3
"""
        assert _codes(src, tmp_path) == ["KC005"]

    def test_constructors_and_reset_exempt(self, tmp_path):
        src = """
class GoodKernel(Kernel):
    def __init__(self):
        self.stats.ticks = 0

    def reset(self):
        self.stats.ticks = 0

    def tick(self, cycle):
        return None
"""
        assert _codes(src, tmp_path) == []

    def test_subscript_mutation_below_state_flagged(self, tmp_path):
        src = """
class BadKernel(Kernel):
    def tick(self, cycle):
        return None

    def snapshot(self):
        self.stats.counts[0] = 1
"""
        assert _codes(src, tmp_path) == ["KC005"]

    def test_kernel_without_local_roots_skipped(self, tmp_path):
        # tick() lives on the base class; mutation scope is its contract.
        src = """
class Mixin(Kernel):
    def helper(self):
        self.stats.ticks += 1
"""
        assert _codes(src, tmp_path) == []

    def test_non_state_attributes_ignored(self, tmp_path):
        src = """
class GoodKernel(Kernel):
    def tick(self, cycle):
        return None

    def configure(self):
        self.capacity.limit = 5
"""
        assert _codes(src, tmp_path) == []


class TestSelectFlag:
    def test_select_filters_codes(self, tmp_path, capsys):
        src = """
class BadKernel(Kernel):
    def tick(self, cycle):
        x = 0.5
        return 7
"""
        path = tmp_path / "probe.py"
        path.write_text(src)
        assert lint_kernels.main([str(path), "--select", "KC003"]) == 1
        out = capsys.readouterr().out
        assert "KC003" in out and "KC001" not in out
        assert lint_kernels.main([str(path), "--select", "KC005"]) == 0
