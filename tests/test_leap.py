"""Leap scheduler: detection, fallback, synthesis, and the paper interval.

The three-way cycle/output/stats/trace equivalence lives in
test_engine_fastpath.py; this file covers the leap-specific behaviour on
top of it:

* the shared interval helpers (satellite of the leap work: one derivation
  used by the engine, the telemetry collector, the benches, and the
  periodicity detector);
* controller construction rules — any kernel outside the value-independence
  contract, or an open-loop host source, demotes the run to the fast path;
* fallback properties under randomized open-loop arrivals, undersized skip
  buffers (deadlock), and cycle-budget aborts — bit-identical behaviour in
  all three modes whether or not leaping is possible;
* synthesized observables: batched functional outputs against
  ``run_graph``, and per-image latency records/percentiles across a leap;
* §IV-B4: the simulated per-image interval against the analytic
  clocks-per-picture model, at test scale in tier 1 and at the paper's
  224×224 ResNet-18 scale behind ``REPRO_PAPER_SCALE=1``.
"""

from __future__ import annotations

import os

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dataflow import (
    LeapController,
    Tracer,
    batch_reference_outputs,
    build_pipeline,
    exact_completion_period,
    mean_completion_interval,
    simulate,
)
from repro.hardware.timing import estimate_network_timing
from repro.models import direct_resnet18_graph, direct_vgg_graph
from repro.nn import run_graph
from repro.telemetry import latency_report


def _chain_graph():
    return direct_vgg_graph(16, width=0.0625, classes=4)


def _residual_graph():
    return direct_resnet18_graph(16, width=0.0625, classes=4, stages=[(64, 1, 1)])


def _images(graph, n, seed=0):
    rng = np.random.default_rng(seed)
    spec = graph.input_spec
    return rng.integers(0, 4, size=(n, spec.height, spec.width, spec.channels))


# ---------------------------------------------------------------------------
# Shared interval helpers
# ---------------------------------------------------------------------------


class TestIntervalHelpers:
    def test_mean_interval_is_span_over_gaps(self):
        assert mean_completion_interval([10, 30, 50]) == 20.0
        assert mean_completion_interval([7, 10]) == 3.0
        # Bit-identical to averaging np.diff — the closed form the engine,
        # collector and benches all share now.
        cycles = [100, 2464, 4828, 7192]
        assert mean_completion_interval(cycles) == float(np.diff(cycles).mean())

    def test_mean_interval_none_under_two_completions(self):
        # Explicit None — not a raise, not a NaN: telemetry gauges and bench
        # extra_info rows consume this directly and render n/a.
        assert mean_completion_interval([42]) is None
        assert mean_completion_interval([]) is None

    def test_single_completion_run_reports_no_interval(self):
        graph = _chain_graph()
        run = simulate(graph, _images(graph, 1))
        assert run.run.completion_cycles and len(run.run.completion_cycles) == 1
        assert run.steady_state_interval is None
        assert run.run.steady_state_interval is None

    def test_exact_period_of_agreeing_gaps(self):
        assert exact_completion_period([10, 20, 30]) == 10
        assert exact_completion_period([5, 10, 20, 30], window=2) == 10
        assert exact_completion_period([10, 20], window=1) == 10

    def test_exact_period_none_when_gaps_disagree_or_short(self):
        assert exact_completion_period([10, 20, 31]) is None
        assert exact_completion_period([10, 20]) is None  # default window=2
        assert exact_completion_period([10], window=1) is None
        assert exact_completion_period([10, 10], window=1) is None  # gap 0

    def test_exact_period_rejects_bad_window(self):
        with pytest.raises(ValueError, match="window must be >= 1"):
            exact_completion_period([10, 20, 30], window=0)


# ---------------------------------------------------------------------------
# Controller construction: the whole-engine opt-in rule
# ---------------------------------------------------------------------------


class TestControllerConstruction:
    def test_model_pipeline_is_eligible(self):
        graph = _chain_graph()
        pipe = build_pipeline(graph, _images(graph, 2))
        assert LeapController.for_engine(pipe.engine) is not None

    def test_one_unopted_kernel_demotes_the_engine(self):
        graph = _chain_graph()
        pipe = build_pipeline(graph, _images(graph, 2))
        compute = [k for k in pipe.engine.kernels if k.__class__.supports_leap][0]
        compute.supports_leap = False  # instance override, as a custom kernel would
        assert LeapController.for_engine(pipe.engine) is None

    def test_open_loop_source_demotes_the_engine(self):
        graph = _chain_graph()
        pipe = build_pipeline(graph, _images(graph, 2), arrival_cycles=[0, 9000])
        assert LeapController.for_engine(pipe.engine) is None

    def test_open_loop_leap_run_reports_visible_demotion(self):
        graph = _chain_graph()
        images = _images(graph, 2)
        run = simulate(graph, images, mode="leap", arrival_cycles=[0, 9000])
        rep = run.leap_report  # degraded to the plain fast path, visibly
        assert rep is not None and rep.demoted and rep.leaps == 0
        assert rep.demotion_reason is not None and "open-loop" in rep.demotion_reason

    def test_ineligibility_reasons_name_the_cause(self):
        graph = _chain_graph()
        closed = build_pipeline(graph, _images(graph, 2))
        assert LeapController.ineligibility(closed.engine) is None
        open_loop = build_pipeline(graph, _images(graph, 2), arrival_cycles=[0, 9000])
        reason = LeapController.ineligibility(open_loop.engine)
        assert reason is not None and "open-loop" in reason and "host_source" in reason
        contract = build_pipeline(graph, _images(graph, 2))
        compute = [k for k in contract.engine.kernels if k.__class__.supports_leap][0]
        compute.supports_leap = False
        reason = LeapController.ineligibility(contract.engine)
        assert reason is not None and "contract" in reason and compute.name in reason


# ---------------------------------------------------------------------------
# Engagement and non-engagement
# ---------------------------------------------------------------------------


class TestEngagement:
    def test_leap_engages_and_accounts_consistently(self):
        graph = _chain_graph()
        run = simulate(graph, _images(graph, 10), mode="leap")
        rep = run.leap_report
        assert rep is not None and rep.leaps >= 1
        assert rep.windows >= rep.leaps
        assert rep.period > 0
        assert rep.leaped_cycles > 0
        assert rep.vetoes == 0
        # The proven period is the exact completion gap in steady state.
        assert exact_completion_period(run.run.completion_cycles, window=1) == rep.period

    def test_too_few_images_leaves_nothing_to_leap(self):
        # With two images every admission happens before periodicity is
        # proven; the budget (images_left // d_adm - 1) is never positive.
        graph = _chain_graph()
        images = _images(graph, 2)
        run = simulate(graph, images, mode="leap")
        assert run.leap_report is not None and run.leap_report.leaps == 0
        fast = simulate(graph, images, mode="fast")
        assert run.cycles == fast.cycles
        np.testing.assert_array_equal(run.output, fast.output)

    def test_leap_engages_through_skip_buffer_refills(self):
        # The residual topology parks and refills the skip delay FIFO every
        # image; phase equality must still be provable across it.
        graph = _residual_graph()
        run = simulate(graph, _images(graph, 8), mode="leap")
        assert run.leap_report is not None and run.leap_report.leaps >= 1
        slow = simulate(graph, _images(graph, 8), mode="exhaustive")
        assert run.cycles == slow.cycles
        np.testing.assert_array_equal(run.output, slow.output)


# ---------------------------------------------------------------------------
# Fallback properties: identical behaviour when leaping is impossible
# ---------------------------------------------------------------------------


class TestFallback:
    @settings(max_examples=8, deadline=None)
    @given(
        gaps=st.lists(st.integers(min_value=0, max_value=2500), min_size=3, max_size=5),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_randomized_open_loop_arrivals_identical_across_modes(self, gaps, seed):
        graph = _chain_graph()
        images = _images(graph, len(gaps), seed=seed)
        arrivals = list(np.cumsum(gaps))
        slow = simulate(graph, images, mode="exhaustive", arrival_cycles=arrivals)
        fast = simulate(graph, images, mode="fast", arrival_cycles=arrivals)
        leap = simulate(graph, images, mode="leap", arrival_cycles=arrivals)
        # Open loop: no controller at all, and the report says so.
        assert leap.leap_report is not None and leap.leap_report.demoted
        assert slow.cycles == fast.cycles == leap.cycles
        assert (
            slow.run.completion_cycles
            == fast.run.completion_cycles
            == leap.run.completion_cycles
        )
        np.testing.assert_array_equal(slow.output, fast.output)
        np.testing.assert_array_equal(slow.output, leap.output)

    def test_undersized_skip_buffer_deadlocks_identically(self):
        # A one-element skip FIFO wedges the fork before the main branch
        # can deliver its first element to the adder: classic deadlock.
        # Completions stop, so the leap controller never fires, and all
        # three modes must abort at exactly the cycle budget.
        graph = _residual_graph()
        images = _images(graph, 3)
        adds = [n for n in graph.order if type(graph.nodes[n]).__name__ == "AddNode"]
        assert adds, "residual graph must contain an adder"
        caps = {n: 1 for n in adds}
        for mode in ("exhaustive", "fast", "leap"):
            with pytest.raises(RuntimeError, match="no convergence after 4000 cycles"):
                simulate(graph, images, mode=mode, skip_sizing=caps, max_cycles=4000)

    def test_cycle_budget_abort_is_identical_even_mid_leap(self):
        # The window budget clamps jumps to max_cycles - 1, so a leap run
        # must hit the budget abort at exactly the exhaustive loop's cycle
        # even when it was happily leaping beforehand.
        graph = _chain_graph()
        images = _images(graph, 10)
        full = simulate(graph, images, mode="leap")
        assert full.leap_report is not None and full.leap_report.leaps >= 1
        budget = full.cycles - 10
        for mode in ("exhaustive", "fast", "leap"):
            with pytest.raises(RuntimeError, match=f"no convergence after {budget} cycles"):
                simulate(graph, images, mode=mode, max_cycles=budget)


# ---------------------------------------------------------------------------
# Synthesized observables
# ---------------------------------------------------------------------------


class TestSynthesis:
    def test_batched_outputs_match_run_graph_and_stream(self):
        graph = _residual_graph()
        images = _images(graph, 8)
        run = simulate(graph, images, mode="leap")
        assert run.leap_report is not None and run.leap_report.leaps >= 1
        ref = run_graph(graph, images)
        np.testing.assert_array_equal(run.output, ref.output)
        np.testing.assert_array_equal(batch_reference_outputs(run.pipeline, images), ref.output)

    @pytest.mark.parametrize("topology", ["chain", "residual"])
    def test_latency_records_bit_identical_across_a_leap(self, topology):
        graph = _chain_graph() if topology == "chain" else _residual_graph()
        images = _images(graph, 8)
        slow = simulate(graph, images, mode="exhaustive")
        leap = simulate(graph, images, mode="leap")
        assert leap.leap_report is not None and leap.leap_report.leaps >= 1
        rep_slow = latency_report(slow.pipeline, slow.cycles)
        rep_leap = latency_report(leap.pipeline, leap.cycles)
        assert rep_leap.service == rep_slow.service
        assert rep_leap.queue_wait == rep_slow.queue_wait
        assert rep_leap.sojourn == rep_slow.sojourn
        assert [r.as_dict() for r in rep_leap.records] == [
            r.as_dict() for r in rep_slow.records
        ]

    def test_trace_marks_and_spans_identical_across_a_leap(self):
        graph = _residual_graph()
        images = _images(graph, 8)
        t_slow, t_leap = Tracer(), Tracer()
        slow = simulate(graph, images, mode="exhaustive", trace=t_slow)
        leap = simulate(graph, images, mode="leap", trace=t_leap)
        assert leap.leap_report is not None and leap.leap_report.leaps >= 1
        assert t_leap.state() == t_slow.state()
        assert slow.cycles == leap.cycles


# ---------------------------------------------------------------------------
# §IV-B4: simulated interval vs the analytic clocks-per-picture model
# ---------------------------------------------------------------------------


class TestPaperInterval:
    def test_resnet18_224_analytic_interval_in_paper_window(self):
        """The paper estimates ~1.85e6 clocks/picture for ResNet-18 at 224².

        The analytic §IV-B4 model must land in the same order-of-magnitude
        window the scalability experiment enforces; the simulated interval
        is tied to this same model by the bridge test below (exact at test
        scale) and by the paper-scale run behind ``REPRO_PAPER_SCALE=1``.
        """
        timing = estimate_network_timing(direct_resnet18_graph())
        assert 5e5 < timing.interval_cycles < 4e6
        assert 5e5 < timing.latency_cycles < 4e6

    def test_simulated_interval_matches_analytic_at_test_scale(self):
        # The same IR, kernel formulas and simulator as 224×224 — only the
        # spatial size differs, so agreement here plus the analytic model
        # is what licenses the paper-window assertion above.
        graph = _residual_graph()
        run = simulate(graph, _images(graph, 8), mode="leap")
        assert run.leap_report is not None and run.leap_report.leaps >= 1
        timing = estimate_network_timing(graph)
        interval = run.steady_state_interval
        assert abs(interval - timing.interval_cycles) / timing.interval_cycles < 0.05

    @pytest.mark.skipif(
        not os.environ.get("REPRO_PAPER_SCALE"),
        reason="224×224 ResNet-18 simulation takes minutes in pure Python; "
        "set REPRO_PAPER_SCALE=1 (the CI leap-smoke job does)",
    )
    def test_resnet18_224_simulated_interval_matches_paper(self):
        graph = direct_resnet18_graph()
        images = _images(graph, 6)
        run = simulate(graph, images, mode="leap", skip_sizing="bound")
        assert run.leap_report is not None and run.leap_report.leaps >= 1
        period = exact_completion_period(run.run.completion_cycles, window=1)
        assert period is not None
        # Same order as the paper's 1.85e6 clocks/picture...
        assert 5e5 < period < 4e6
        # ...and exactly the analytic §IV-B4 steady-state interval (5%
        # tolerance covers pipeline skew between bottleneck and sink).
        timing = estimate_network_timing(graph)
        assert abs(period - timing.interval_cycles) / timing.interval_cycles < 0.05
