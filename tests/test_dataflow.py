"""Tests for the dataflow substrate: streams, windows, engine, links."""

import numpy as np
import pytest

from repro.dataflow import (
    MAXRING,
    PCIE_GEN2_X8,
    Engine,
    ScanWindow,
    Stream,
    depth_first_buffer_elements,
    required_bandwidth_mbps,
    skip_buffer_elements,
    width_first_buffer_elements,
)
from repro.dataflow.kernel import Kernel


class TestStream:
    def test_push_pop_fifo_order(self):
        s = Stream("s", capacity=4)
        s.push(1, cycle=0)
        s.push(2, cycle=0)
        assert s.pop(cycle=1) == 1
        assert s.pop(cycle=1) == 2

    def test_one_cycle_register_delay(self):
        s = Stream("s")
        s.push(42, cycle=5)
        assert not s.can_pop(5)
        assert s.can_pop(6)

    def test_extra_latency(self):
        s = Stream("s", latency=10)
        s.push(1, cycle=0)
        assert not s.can_pop(10)
        assert s.can_pop(11)

    def test_capacity_rejection(self):
        s = Stream("s", capacity=2)
        assert s.push(1, 0) and s.push(2, 0)
        assert not s.push(3, 0)
        assert s.stats.full_rejections == 1

    def test_occupancy_stats(self):
        s = Stream("s", capacity=8)
        for i in range(5):
            s.push(i, 0)
        assert s.stats.max_occupancy == 5
        s.pop(1)
        assert s.occupancy == 4

    def test_ready_count(self):
        s = Stream("s", latency=2)
        s.push(1, 0)  # ready at 3
        s.push(2, 1)  # ready at 4
        assert s.ready_count(3) == 1
        assert s.ready_count(4) == 2

    def test_pop_empty_raises(self):
        with pytest.raises(RuntimeError):
            Stream("s").pop(0)

    def test_peek(self):
        s = Stream("s")
        s.push(9, 0)
        assert s.peek(1) == 9
        assert s.occupancy == 1

    def test_reset(self):
        s = Stream("s")
        s.push(1, 0)
        s.reset()
        assert s.occupancy == 0 and s.stats.pushes == 0

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            Stream("s", capacity=0)
        with pytest.raises(ValueError):
            Stream("s", latency=-1)


class TestBufferFormulas:
    def test_depth_first_formula(self):
        """§III-B1b: I·L·(K−1) + I·K."""
        assert depth_first_buffer_elements(10, 4, 3) == 4 * 10 * 2 + 4 * 3

    def test_width_first_formula(self):
        assert width_first_buffer_elements(10, 12, 4, 3) == 10 * 12 * 3 + 10 * 2 + 3

    def test_depth_first_wins_when_line_exceeds_k(self):
        """The paper's scan-order argument: W > K ⇒ depth-first is smaller."""
        for line in (8, 32, 224):
            for ch in (3, 64, 256):
                for k in (3, 5, 7):
                    if line > k and ch > 1:
                        assert depth_first_buffer_elements(line, ch, k) < width_first_buffer_elements(
                            line, line, ch, k
                        )

    def test_skip_buffer_equals_conv_buffer(self):
        """§III-B5: 'exactly same size ... not accidental'."""
        assert skip_buffer_elements(10, 4, 3) == depth_first_buffer_elements(10, 4, 3)


class TestScanWindow:
    def test_position_order_depth_first(self):
        w = ScanWindow(2, 2, 3, 1)
        seen = []
        for v in range(2 * 2 * 3):
            seen.append(w.position)
            w.feed(v)
        # channels innermost, then columns, then rows
        assert seen[:4] == [(0, 0, 0), (0, 0, 1), (0, 0, 2), (0, 1, 0)]

    def test_window_completion(self):
        w = ScanWindow(3, 3, 1, 2)
        results = [w.feed(v) for v in range(9)]
        completions = [r for r in results if r is not None]
        assert len(completions) == 4  # 2x2 output positions
        r, c, window = completions[0]
        assert (r, c) == (1, 1)
        assert (window[..., 0] == [[0, 1], [3, 4]]).all()

    def test_window_contents_multichannel(self):
        w = ScanWindow(2, 2, 2, 2)
        vals = list(range(8))
        result = None
        for v in vals:
            out = w.feed(v)
            if out is not None:
                result = out
        r, c, window = result
        assert window.shape == (2, 2, 2)
        assert (window.reshape(-1) == vals).all()

    def test_overfeed_raises(self):
        w = ScanWindow(1, 1, 1, 1)
        w.feed(0)
        with pytest.raises(RuntimeError):
            w.feed(1)

    def test_window_larger_than_grid_raises(self):
        with pytest.raises(ValueError):
            ScanWindow(2, 2, 1, 3)

    def test_hardware_buffer_elements(self):
        w = ScanWindow(5, 7, 4, 3)
        assert w.hardware_buffer_elements() == depth_first_buffer_elements(7, 4, 3)

    def test_reset(self):
        w = ScanWindow(2, 2, 1, 1)
        for v in range(4):
            w.feed(v)
        assert w.done
        w.reset()
        assert not w.done and w.position == (0, 0, 0)


class _Producer(Kernel):
    def __init__(self, name, values):
        super().__init__(name)
        self.values = list(values)

    def tick(self, cycle):
        if self.values and self.outputs[0].push(self.values[0], cycle):
            self.values.pop(0)


class _Consumer(Kernel):
    def __init__(self, name):
        super().__init__(name)
        self.received = []

    def tick(self, cycle):
        if self.inputs[0].can_pop(cycle):
            self.received.append(self.inputs[0].pop(cycle))


class TestEngine:
    def test_simple_pipeline(self):
        eng = Engine()
        p = _Producer("p", [1, 2, 3])
        c = _Consumer("c")
        eng.add_kernel(p)
        eng.add_kernel(c)
        eng.connect(p, c, Stream("p->c"))
        cycles = eng.run(lambda: len(c.received) == 3)
        assert c.received == [1, 2, 3]
        assert cycles >= 4  # 3 elements + 1 register delay

    def test_latency_respected(self):
        eng = Engine()
        p = _Producer("p", [7])
        c = _Consumer("c")
        eng.add_kernel(p)
        eng.add_kernel(c)
        eng.connect(p, c, Stream("p->c", latency=20))
        cycles = eng.run(lambda: len(c.received) == 1)
        assert cycles >= 22

    def test_deadlock_detection(self):
        eng = Engine()
        c = _Consumer("c")
        p = _Producer("p", [])
        eng.add_kernel(p)
        eng.add_kernel(c)
        eng.connect(p, c, Stream("s"))
        with pytest.raises(RuntimeError, match="no convergence"):
            eng.run(lambda: False, max_cycles=100)

    def test_reset_clears_state(self):
        eng = Engine()
        p = _Producer("p", [1])
        c = _Consumer("c")
        eng.add_kernel(p)
        eng.add_kernel(c)
        s = eng.connect(p, c, Stream("s"))
        eng.run(lambda: len(c.received) == 1)
        eng.reset()
        assert s.occupancy == 0


class TestLinks:
    def test_paper_bandwidth_number(self):
        """§III-B6: 2 bits at 105 MHz needs 210 Mbps."""
        assert required_bandwidth_mbps(2, 105.0) == 210.0

    def test_maxring_supports_pixel_stream(self):
        assert MAXRING.supports(2, 105.0)
        assert MAXRING.utilization(2, 105.0) < 0.1

    def test_maxring_rejects_absurd_width(self):
        assert not MAXRING.supports(2048, 105.0)

    def test_pcie_supports(self):
        assert PCIE_GEN2_X8.supports(16, 105.0)
