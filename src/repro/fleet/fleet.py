"""Fleet-scale serving simulation: R pipeline replicas behind one router.

The paper's hardware target is an MPC-X node with 8 MAX4 DFEs; everything
below this module simulates one pipeline chain.  Here a *fleet* of compiled
replicas (homogeneous or mixed AlexNet/ResNet/VGG) serves an open-loop
request stream the way FINN and Blott et al.'s scaling study evaluate
accelerators: a host-side admission router picks a replica per image, the
shared PCIe ingress serializes the transfer, and each replica then runs its
own cycle-exact engine against the arrival schedule the plan handed it.

The load-bearing design decision: the router decides from host-observable
state only (dispatch counts plus a calibrated service model from a
closed-loop, leap-eligible profiling run — see :mod:`.router`), so once the
plan is fixed, replica simulations share nothing.  That makes the
worker-pool path trivially correct: ``workers=N`` farms the same jobs to a
process pool and must produce a byte-identical fleet report to the serial
reference for the same seed — a tested invariant, not an aspiration.

Capacity planning rides on top: :func:`fleet_sweep` emits the per-policy
latency-throughput frontier (schema ``repro-fleet-sweep/1``) and
:func:`min_replicas_for_slo` answers "how many DFEs hold p99 sojourn ≤ X
at N requests/s?" by walking replica counts until the SLO holds.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

import numpy as np

from ..dataflow.links import PCIE_GEN2_X8, LinkSpec
from ..telemetry.latency import latency_report, summarize
from ..telemetry.loadgen import make_schedule, spawn_poisson_schedules
from .ingress import IngressTransfer, SharedIngress
from .router import POLICIES, ReplicaState, make_router

if TYPE_CHECKING:
    from ..nn.graph import LayerGraph

__all__ = [
    "FleetConfig",
    "FleetPlan",
    "FleetReport",
    "ReplicaSpec",
    "default_rate_ladder",
    "fleet_capacity_fps",
    "fleet_sweep",
    "min_replicas_for_slo",
    "parse_mix",
    "plan_fleet",
    "plan_fleet_dfes",
    "profile_replica",
    "simulate_fleet",
]

DEFAULT_FCLK_MHZ = 105.0
# Closed-loop images per profiling run: enough completions to prove a
# steady-state interval (and let the leap controller engage) while staying
# a fixed, small cost per distinct replica configuration.
PROFILE_IMAGES = 6


@dataclass(frozen=True, slots=True)
class ReplicaSpec:
    """One replica's compiled pipeline configuration."""

    family: str  # "vgg" | "alexnet" | "resnet18"
    size: int  # input resolution
    width: float = 0.0625
    classes: int = 4

    def __post_init__(self) -> None:
        if self.family not in ("vgg", "alexnet", "resnet18"):
            raise ValueError(f"unknown model family {self.family!r}")
        if self.size < 8:
            raise ValueError(f"input size must be >= 8, got {self.size!r}")

    def graph(self) -> "LayerGraph":
        from ..models import direct_alexnet_graph, direct_resnet18_graph, direct_vgg_graph

        if self.family == "vgg":
            return direct_vgg_graph(self.size, width=self.width, classes=self.classes)
        if self.family == "alexnet":
            return direct_alexnet_graph(self.size, width=self.width, classes=self.classes)
        # Small inputs cannot survive the full 4-stage downsampling ladder;
        # mirror `repro stats` and keep one residual stage at test scale.
        if self.size <= 32:
            return direct_resnet18_graph(
                self.size, width=self.width, classes=self.classes, stages=[(64, 1, 1)]
            )
        return direct_resnet18_graph(self.size, width=self.width, classes=self.classes)

    def as_dict(self) -> dict[str, Any]:
        return {
            "family": self.family,
            "size": self.size,
            "width": self.width,
            "classes": self.classes,
        }

    def label(self) -> str:
        return f"{self.family}:{self.size}:{self.width:g}"


def parse_mix(mix: str) -> list[ReplicaSpec]:
    """Parse ``family[:size[:width]]`` specs, comma-separated.

    ``"vgg:16,vgg:16:0.25"`` → a two-replica heterogeneous fleet.
    """
    specs: list[ReplicaSpec] = []
    for chunk in mix.split(","):
        parts = chunk.strip().split(":")
        if not parts[0]:
            raise ValueError(f"empty replica spec in mix {mix!r}")
        family = parts[0]
        size = int(parts[1]) if len(parts) > 1 and parts[1] else 16
        width = float(parts[2]) if len(parts) > 2 and parts[2] else 0.0625
        specs.append(ReplicaSpec(family=family, size=size, width=width))
    return specs


# Profiles are deterministic per spec/fclk, so one closed-loop run per
# distinct configuration serves every fleet built in this process.
_PROFILE_CACHE: dict[tuple[Any, ...], tuple[int, float]] = {}


def profile_replica(spec: ReplicaSpec, fclk_mhz: float = DEFAULT_FCLK_MHZ) -> tuple[int, float]:
    """(first-image latency, steady-state interval) for one replica config.

    Runs :data:`PROFILE_IMAGES` zero images *closed-loop* through the
    replica's pipeline — the one place in the fleet layer where the leap
    scheduler is eligible (open-loop replica runs demote, per the leap
    contract), so paper-scale replicas profile in seconds, not minutes.
    Timing is value-independent, so zero images measure the real schedule.
    """
    key = (spec.family, spec.size, spec.width, spec.classes, fclk_mhz)
    cached = _PROFILE_CACHE.get(key)
    if cached is not None:
        return cached
    from ..dataflow.manager import simulate

    graph = spec.graph()
    ispec = graph.input_spec
    images = np.zeros((PROFILE_IMAGES, ispec.height, ispec.width, ispec.channels), dtype=np.int64)
    run = simulate(graph, images, fclk_mhz=fclk_mhz, mode="leap")
    interval = run.steady_state_interval
    assert interval is not None  # PROFILE_IMAGES >= 2 completions
    profile = (run.latency_cycles, interval)
    _PROFILE_CACHE[key] = profile
    return profile


@dataclass(slots=True)
class FleetConfig:
    """Everything one fleet run depends on (and nothing it does not)."""

    replicas: list[ReplicaSpec]
    rate_fps: float  # offered rate across the whole fleet
    n_requests: int
    policy: str = "rr"  # "rr" | "jsq" | "batch" | "static"
    process: str = "fixed"  # arrival process ("static" policy forces poisson)
    seed: int = 0
    fclk_mhz: float = DEFAULT_FCLK_MHZ
    host_link: LinkSpec = PCIE_GEN2_X8
    batch: int = 4  # batch-aware policy's granularity
    max_cycles: int = 50_000_000  # per-replica abort budget
    workers: int = 0  # 0 = serial reference path

    def __post_init__(self) -> None:
        if not self.replicas:
            raise ValueError("a fleet needs at least one replica")
        if self.policy not in POLICIES:
            raise ValueError(f"policy must be one of {POLICIES}, got {self.policy!r}")
        if self.n_requests < 1:
            raise ValueError(f"need at least one request, got {self.n_requests!r}")
        if self.rate_fps <= 0:
            raise ValueError(f"rate must be > 0 FPS, got {self.rate_fps!r}")
        if self.policy == "static" and self.process != "poisson":
            raise ValueError(
                "policy 'static' pre-partitions traffic into independent "
                "per-replica Poisson streams; it requires process='poisson'"
            )


@dataclass(slots=True)
class FleetPlan:
    """The routing decision record: who serves which request, and when.

    ``assignments[r]`` lists global request indices dispatched to replica
    ``r`` in fabric-arrival order; the parallel lists carry each request's
    host-arrival and fabric-arrival cycles.  Once built, replica
    simulations depend only on their own slice of this plan.
    """

    config: FleetConfig
    assignments: list[list[int]]
    host_arrivals: list[list[int]]
    fabric_arrivals: list[list[int]]
    ingress_waits: list[int]  # per request, in ingress order
    ingress_busy_cycles: int
    ingress_utilization: float
    profiles: list[tuple[int, float]]  # per replica (latency, interval)


def plan_fleet(config: FleetConfig) -> FleetPlan:
    """Route every request to a replica and serialize the shared ingress."""
    profiles = [profile_replica(spec, config.fclk_mhz) for spec in config.replicas]
    n_replicas = len(config.replicas)
    graphs = [spec.graph() for spec in config.replicas]
    ingress = SharedIngress(link=config.host_link, fclk_mhz=config.fclk_mhz)

    assignments: list[list[int]] = [[] for _ in range(n_replicas)]
    host_arrivals: list[list[int]] = [[] for _ in range(n_replicas)]
    fabric_arrivals: list[list[int]] = [[] for _ in range(n_replicas)]
    ingress_waits: list[int] = []

    def dispatch(request: int, arrival: int, replica: int) -> IngressTransfer:
        transfer = ingress.admit(request, arrival, graphs[replica].input_spec)
        assignments[replica].append(request)
        host_arrivals[replica].append(arrival)
        fabric_arrivals[replica].append(transfer.fabric_arrival)
        ingress_waits.append(transfer.wait_cycles)
        return transfer

    if config.policy == "static":
        # Pre-partitioned traffic: independent per-replica Poisson streams
        # (decorrelated via SeedSequence.spawn), merged only so the shared
        # ingress serializes transfers in true arrival order.
        per_replica = _split_requests(config.n_requests, n_replicas)
        streams = spawn_poisson_schedules(
            n_replicas,
            max(per_replica),
            config.rate_fps / n_replicas,
            config.seed,
            config.fclk_mhz,
        )
        merged = sorted(
            (stream.cycles[i], r, i)
            for r, stream in enumerate(streams)
            for i in range(per_replica[r])
        )
        for request, (arrival, replica, _) in enumerate(merged):
            dispatch(request, arrival, replica)
    else:
        # Router policies observe the virtual queue, so every dispatch must
        # feed back into the state the next decision reads.
        schedule = make_schedule(
            config.n_requests, config.rate_fps, config.process, config.seed, config.fclk_mhz
        )
        router = make_router(config.policy, config.batch)
        states = [
            ReplicaState(index=r, latency_cycles=lat, interval_cycles=interval)
            for r, (lat, interval) in enumerate(profiles)
        ]
        for request, arrival in enumerate(schedule.cycles):
            replica = router.choose(request, arrival, states)
            transfer = dispatch(request, arrival, replica)
            states[replica].on_dispatch(transfer.fabric_arrival)

    return FleetPlan(
        config=config,
        assignments=assignments,
        host_arrivals=host_arrivals,
        fabric_arrivals=fabric_arrivals,
        ingress_waits=ingress_waits,
        ingress_busy_cycles=ingress.busy_cycles,
        ingress_utilization=ingress.utilization(),
        profiles=profiles,
    )


def plan_fleet_dfes(
    specs: list[ReplicaSpec],
    *,
    fill_cap: float = 0.8,
    slo_fps: float | None = None,
    fclk_mhz: float = DEFAULT_FCLK_MHZ,
    node_dfes: int = 8,
) -> dict[str, Any]:
    """How many DFEs does this fleet mix occupy on an MPC-X node?

    Runs the static partition planner (min-DFE objective) once per distinct
    replica configuration and sums the device counts — answering the
    capacity question *upstream* of any simulation: does the mix even fit
    the paper's 8-DFE node?  Schema ``repro-fleet-dfes/1``.
    """
    from ..planner import plan_partition

    plans: dict[str, Any] = {}
    replicas: list[dict[str, Any]] = []
    for spec in specs:
        label = spec.label()
        plan = plans.get(label)
        if plan is None:
            plan = plan_partition(
                spec.graph(),
                objective="min-dfes",
                slo_fps=slo_fps,
                fill_cap=fill_cap,
                fclk_mhz=fclk_mhz,
                predict=False,
            )
            plans[label] = plan
        replicas.append(
            {
                "spec": spec.as_dict(),
                "label": label,
                "n_dfes": plan.n_dfes,
                "cuts": list(plan.cuts),
                "max_utilization": plan.max_utilization,
            }
        )
    total = sum(rep["n_dfes"] for rep in replicas)
    device_name = next(iter(plans.values())).device_name if plans else None
    return {
        "schema": "repro-fleet-dfes/1",
        "device": device_name,
        "fill_cap": fill_cap,
        "slo_fps": slo_fps,
        "node_dfes": node_dfes,
        "replicas": replicas,
        "total_dfes": total,
        "fits_node": total <= node_dfes,
    }


def _split_requests(n_requests: int, n_replicas: int) -> list[int]:
    """Split N requests over R replicas as evenly as possible."""
    base, extra = divmod(n_requests, n_replicas)
    return [base + (1 if r < extra else 0) for r in range(n_replicas)]


def _request_image(seed: int, request: int, height: int, width: int, channels: int) -> np.ndarray:
    """The deterministic 2-bit image for one global request index.

    Derived from a per-request spawned child stream, so the image depends
    only on ``(seed, request)`` — never on routing order or which worker
    generated it.
    """
    rng = np.random.default_rng(np.random.SeedSequence([seed, 0x1A6E, request]))
    return rng.integers(0, 4, size=(height, width, channels))


def _replica_worker(job: tuple[Any, ...]) -> dict[str, Any]:
    """Simulate one replica against its planned arrival schedule.

    Takes and returns only plain picklable values so the serial reference
    path and the process-pool path execute literally the same function —
    byte-identical fleet reports fall out of that, not out of luck.
    """
    (
        index,
        family,
        size,
        width,
        classes,
        requests,
        fabric_arrivals,
        seed,
        fclk_mhz,
        max_cycles,
    ) = job
    spec = ReplicaSpec(family=family, size=size, width=width, classes=classes)
    result: dict[str, Any] = {
        "index": index,
        "spec": spec.as_dict(),
        "n_dispatched": len(requests),
        "n_completed": 0,
        "aborted": False,
        "abort_message": None,
        "achieved_fps": None,
        "cycles": 0,
        "output_checksum": None,
        "latency": None,
        "completions": [],
    }
    if not requests:
        return result
    from ..dataflow.manager import build_pipeline

    graph = spec.graph()
    ispec = graph.input_spec
    images = np.stack(
        [
            _request_image(seed, request, ispec.height, ispec.width, ispec.channels)
            for request in requests
        ]
    )
    pipeline = build_pipeline(
        graph, images, fclk_mhz=fclk_mhz, arrival_cycles=list(fabric_arrivals)
    )
    try:
        cycles = pipeline.engine.run(
            lambda: pipeline.sink.done, max_cycles=max_cycles, fast=True
        )
    except RuntimeError as err:
        result["aborted"] = True
        result["abort_message"] = str(err)
        cycles = max_cycles
    report = latency_report(pipeline, cycles)
    completions = pipeline.sink.completion_cycles
    result["n_completed"] = len(completions)
    result["cycles"] = cycles
    result["latency"] = report.as_dict()
    result["completions"] = list(completions)
    if len(completions) >= 2 and completions[-1] > completions[0]:
        result["achieved_fps"] = (
            (len(completions) - 1) / (completions[-1] - completions[0]) * fclk_mhz * 1e6
        )
    if not result["aborted"]:
        result["output_checksum"] = int(pipeline.sink.output_tensor().sum())
    return result


def _replica_jobs(plan: FleetPlan) -> list[tuple[Any, ...]]:
    config = plan.config
    return [
        (
            r,
            spec.family,
            spec.size,
            spec.width,
            spec.classes,
            list(plan.assignments[r]),
            list(plan.fabric_arrivals[r]),
            config.seed,
            config.fclk_mhz,
            config.max_cycles,
        )
        for r, spec in enumerate(config.replicas)
    ]


def _pool_context() -> multiprocessing.context.BaseContext:
    # fork is cheap and inherits the imported interpreter; fall back to
    # spawn where fork is unavailable (the jobs are spawn-safe anyway).
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


@dataclass(slots=True)
class FleetReport:
    """One fleet run's full result: per-replica detail plus the aggregate."""

    config: FleetConfig
    plan: FleetPlan
    replicas: list[dict[str, Any]]
    aggregate: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.aggregate:
            return
        config = self.config
        # Completions live on the global clock (fabric arrivals are global
        # cycles and every replica engine starts at cycle 0), so they merge.
        merged = sorted(c for rep in self.replicas for c in rep["completions"])
        achieved = None
        if len(merged) >= 2 and merged[-1] > merged[0]:
            achieved = (len(merged) - 1) / (merged[-1] - merged[0]) * config.fclk_mhz * 1e6
        sojourn: list[int] = []
        service: list[int] = []
        queue_wait: list[int] = []
        for r, rep in enumerate(self.replicas):
            if rep["latency"] is None:
                continue
            host = self.plan.host_arrivals[r]
            for record in rep["latency"]["records"]:
                i = record["index"]
                # Fleet-level sojourn starts at *host* arrival — it includes
                # the ingress queue/transfer and the PCIe hop, which the
                # replica-local report cannot see.
                sojourn.append(record["completion"] - host[i])
                service.append(record["service_cycles"])
                queue_wait.append(record["completion"] - host[i] - record["service_cycles"])
        n_completed = sum(rep["n_completed"] for rep in self.replicas)
        self.aggregate = {
            "requests": config.n_requests,
            "completed": n_completed,
            "conserved": n_completed == config.n_requests
            and all(rep["n_completed"] == rep["n_dispatched"] for rep in self.replicas),
            "aborted_replicas": sum(1 for rep in self.replicas if rep["aborted"]),
            "offered_fps": config.rate_fps,
            "achieved_fps": achieved,
            "makespan_cycles": merged[-1] if merged else 0,
            "sojourn_cycles": summarize(sojourn).as_dict(),
            "service_cycles": summarize(service).as_dict(),
            "queue_wait_cycles": summarize(queue_wait).as_dict(),
            "ingress_wait_cycles": summarize(list(self.plan.ingress_waits)).as_dict(),
            "ingress_utilization": self.plan.ingress_utilization,
        }

    def slo_violated(self, p99_sojourn_cycles: int) -> bool:
        """True when the fleet misses a p99 *sojourn* SLO (or lost images)."""
        p99 = self.aggregate["sojourn_cycles"]["p99"]
        return (
            not self.aggregate["conserved"]
            or p99 is None
            or p99 > p99_sojourn_cycles
        )

    def as_dict(self) -> dict[str, Any]:
        config = self.config
        return {
            "schema": "repro-fleet/1",
            "policy": config.policy,
            "process": config.process,
            "seed": config.seed,
            "fclk_mhz": config.fclk_mhz,
            "requests": config.n_requests,
            "offered_fps": config.rate_fps,
            "batch": config.batch,
            "ingress": {
                "link": config.host_link.name,
                "bandwidth_gbps": config.host_link.bandwidth_gbps,
                "latency_cycles": config.host_link.latency_cycles,
                "busy_cycles": self.plan.ingress_busy_cycles,
                "utilization": self.plan.ingress_utilization,
            },
            "replicas": [
                {
                    **rep,
                    "profile": {
                        "latency_cycles": self.plan.profiles[r][0],
                        "interval_cycles": self.plan.profiles[r][1],
                    },
                    "requests": list(self.plan.assignments[r]),
                }
                for r, rep in enumerate(self.replicas)
            ],
            "aggregate": dict(self.aggregate),
        }

    def render(self) -> str:
        agg = self.aggregate
        config = self.config
        achieved = f"{agg['achieved_fps']:,.1f}" if agg["achieved_fps"] is not None else "n/a"
        lines = [
            f"fleet [{config.policy}] {len(config.replicas)} replica(s), "
            f"{config.n_requests} request(s) at {config.rate_fps:,.1f} FPS "
            f"({config.process}): achieved {achieved} FPS, "
            f"{agg['completed']}/{agg['requests']} completed"
            + ("" if agg["conserved"] else " — CONSERVATION VIOLATED")
        ]
        for name in ("sojourn_cycles", "service_cycles", "queue_wait_cycles"):
            s = agg[name]
            label = name.removesuffix("_cycles").replace("_", " ")
            if s["count"]:
                lines.append(
                    f"  {label}: p50 {s['p50']:,} | p99 {s['p99']:,} | "
                    f"max {s['max']:,} cycles (n={s['count']})"
                )
            else:
                lines.append(f"  {label}: n/a (no completed images)")
        lines.append(
            f"  ingress [{config.host_link.name}]: "
            f"{agg['ingress_utilization']:.1%} utilized, "
            f"wait p99 {agg['ingress_wait_cycles']['p99'] or 0:,} cycles"
        )
        for r, rep in enumerate(self.replicas):
            spec = self.config.replicas[r]
            fps = f"{rep['achieved_fps']:,.1f}" if rep["achieved_fps"] is not None else "n/a"
            lines.append(
                f"  replica {r} [{spec.label()}]: "
                f"{rep['n_completed']}/{rep['n_dispatched']} image(s), {fps} FPS"
                + (" ABORTED" if rep["aborted"] else "")
            )
        return "\n".join(lines)


def simulate_fleet(config: FleetConfig, plan: FleetPlan | None = None) -> FleetReport:
    """Plan, route, and simulate one fleet run.

    ``config.workers = 0`` runs the serial reference path; ``workers > 0``
    farms replica simulations to a process pool.  Both paths execute the
    same :func:`_replica_worker` on the same plan, so their reports are
    byte-identical for the same seed (tested invariant).
    """
    if plan is None:
        plan = plan_fleet(config)
    jobs = _replica_jobs(plan)
    if config.workers > 0:
        with _pool_context().Pool(processes=config.workers) as pool:
            replicas = pool.map(_replica_worker, jobs)
    else:
        replicas = [_replica_worker(job) for job in jobs]
    return FleetReport(config=config, plan=plan, replicas=replicas)


def fleet_capacity_fps(
    specs: list[ReplicaSpec], fclk_mhz: float = DEFAULT_FCLK_MHZ
) -> float:
    """The fleet's aggregate steady-state capacity from profiled intervals."""
    return sum(fclk_mhz * 1e6 / profile_replica(s, fclk_mhz)[1] for s in specs)


def default_rate_ladder(
    specs: list[ReplicaSpec], fclk_mhz: float = DEFAULT_FCLK_MHZ
) -> list[float]:
    """An offered-rate ladder bracketing the fleet's profiled capacity.

    The knee of the latency-throughput curve sits at capacity; points at
    25/50/75/90/100/110% expose both the flat region and the blow-up.
    """
    capacity = fleet_capacity_fps(specs, fclk_mhz)
    return [round(capacity * f, 1) for f in (0.25, 0.5, 0.75, 0.9, 1.0, 1.1)]


def fleet_sweep(
    config: FleetConfig,
    rates: list[float],
    policies: list[str] | None = None,
) -> dict[str, Any]:
    """Per-policy latency-throughput frontiers over an offered-rate ladder.

    Returns schema ``repro-fleet-sweep/1``: for each policy, one point per
    offered rate with the aggregate achieved FPS and exact sojourn
    percentiles — the FINN-style frontier, lifted from one pipeline to the
    fleet.
    """
    if not rates:
        raise ValueError("sweep needs at least one offered rate")
    policies = policies or [config.policy]
    frontiers: dict[str, Any] = {}
    for policy in policies:
        points: list[dict[str, Any]] = []
        for rate in rates:
            run_config = FleetConfig(
                replicas=config.replicas,
                rate_fps=rate,
                n_requests=config.n_requests,
                policy=policy,
                process="poisson" if policy == "static" else config.process,
                seed=config.seed,
                fclk_mhz=config.fclk_mhz,
                host_link=config.host_link,
                batch=config.batch,
                max_cycles=config.max_cycles,
                workers=config.workers,
            )
            report = simulate_fleet(run_config)
            agg = report.aggregate
            points.append(
                {
                    "offered_fps": rate,
                    "achieved_fps": agg["achieved_fps"],
                    "completed": agg["completed"],
                    "conserved": agg["conserved"],
                    "aborted_replicas": agg["aborted_replicas"],
                    "p50_sojourn_cycles": agg["sojourn_cycles"]["p50"],
                    "p99_sojourn_cycles": agg["sojourn_cycles"]["p99"],
                    "p99_service_cycles": agg["service_cycles"]["p99"],
                    "ingress_utilization": agg["ingress_utilization"],
                }
            )
        frontiers[policy] = {"points": points}
    return {
        "schema": "repro-fleet-sweep/1",
        "replicas": [spec.as_dict() for spec in config.replicas],
        "requests": config.n_requests,
        "process": config.process,
        "seed": config.seed,
        "fclk_mhz": config.fclk_mhz,
        "capacity_fps": fleet_capacity_fps(config.replicas, config.fclk_mhz),
        "policies": frontiers,
    }


def min_replicas_for_slo(
    spec: ReplicaSpec,
    rate_fps: float,
    n_requests: int,
    slo_p99_sojourn_cycles: int,
    *,
    policy: str = "jsq",
    max_replicas: int = 8,
    seed: int = 0,
    process: str = "fixed",
    fclk_mhz: float = DEFAULT_FCLK_MHZ,
    workers: int = 0,
) -> dict[str, Any]:
    """How many replicas hold p99 sojourn ≤ the SLO at the offered rate?

    Walks ``R = 1..max_replicas`` (the MPC-X node tops out at 8 DFEs) and
    returns the first count that satisfies the SLO, with the full trail of
    attempts so the answer is auditable.
    """
    trail: list[dict[str, Any]] = []
    answer: int | None = None
    for n in range(1, max_replicas + 1):
        config = FleetConfig(
            replicas=[spec] * n,
            rate_fps=rate_fps,
            n_requests=n_requests,
            policy=policy,
            process="poisson" if policy == "static" else process,
            seed=seed,
            fclk_mhz=fclk_mhz,
            workers=workers,
        )
        report = simulate_fleet(config)
        p99 = report.aggregate["sojourn_cycles"]["p99"]
        ok = not report.slo_violated(slo_p99_sojourn_cycles)
        trail.append(
            {
                "replicas": n,
                "p99_sojourn_cycles": p99,
                "conserved": report.aggregate["conserved"],
                "satisfied": ok,
            }
        )
        if ok:
            answer = n
            break
    return {
        "schema": "repro-fleet-capacity/1",
        "spec": spec.as_dict(),
        "policy": policy,
        "offered_fps": rate_fps,
        "requests": n_requests,
        "slo_p99_sojourn_cycles": slo_p99_sojourn_cycles,
        "min_replicas": answer,  # None: not satisfiable within max_replicas
        "max_replicas_tried": max_replicas,
        "trail": trail,
    }
