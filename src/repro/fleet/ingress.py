"""Shared PCIe ingress: one host link feeding every DFE replica.

The paper's MPC-X node hangs 8 MAX4 DFEs off one host; images reach a
replica through the node's PCIe fabric, not through private wires.  The
fleet simulator therefore serializes every image transfer over a single
:class:`~repro.dataflow.links.LinkSpec` (PCIe Gen2 x8 by default): a
transfer occupies the link for ``ceil(image_bits / bits_per_cycle)``
cycles, transfers queue FIFO in host-arrival order, and a replica sees the
image only ``link.latency_cycles`` after its transfer drains.  At the
paper's 2-bit pixel streams the link is generous (§III-C's argument), so
ingress sharing costs almost nothing at sane rates — but it is exactly
what clips the frontier when a router drives many replicas near capacity,
which is why it is modeled rather than assumed away.

Everything here is integer arithmetic over the same link math
:mod:`repro.dataflow.links` gives the cycle simulator, so fleet reports
stay deterministic and byte-identical across serial and worker-pool runs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..dataflow.links import PCIE_GEN2_X8, LinkSpec

if TYPE_CHECKING:
    from ..nn.graph import TensorSpec

__all__ = ["IngressTransfer", "SharedIngress"]


@dataclass(frozen=True, slots=True)
class IngressTransfer:
    """One image's trip over the shared host link."""

    request: int  # global request index
    arrival: int  # host arrival cycle (the load generator's clock)
    start: int  # cycle the transfer won the link
    done: int  # cycle the last bit left the host
    fabric_arrival: int  # done + link latency: when the replica can see it

    @property
    def wait_cycles(self) -> int:
        """Cycles the image queued behind other transfers."""
        return self.start - self.arrival


class SharedIngress:
    """Serializes image transfers over one host link, FIFO in arrival order."""

    def __init__(self, link: LinkSpec = PCIE_GEN2_X8, fclk_mhz: float = 105.0) -> None:
        if fclk_mhz <= 0:
            raise ValueError(f"fclk must be > 0 MHz, got {fclk_mhz!r}")
        self.link = link
        self.fclk_mhz = fclk_mhz
        self._free_at = 0  # first cycle the link is idle again
        self.busy_cycles = 0
        self.transfers: list[IngressTransfer] = []

    def bits_per_cycle(self) -> float:
        """Link bits deliverable per fabric clock (bandwidth / f_clk)."""
        return self.link.bandwidth_gbps * 1000.0 / self.fclk_mhz

    def transfer_cycles(self, spec: "TensorSpec") -> int:
        """Whole cycles one image of ``spec`` occupies the link."""
        image_bits = spec.elements * spec.stream_bits
        return max(1, math.ceil(image_bits / self.bits_per_cycle()))

    def admit(self, request: int, arrival: int, spec: "TensorSpec") -> IngressTransfer:
        """Queue one image; returns its transfer span.  Call in arrival order."""
        if self.transfers and arrival < self.transfers[-1].arrival:
            raise ValueError(
                f"ingress admissions must be fed in arrival order "
                f"(got {arrival} after {self.transfers[-1].arrival})"
            )
        cycles = self.transfer_cycles(spec)
        start = max(arrival, self._free_at)
        done = start + cycles
        self._free_at = done
        self.busy_cycles += cycles
        transfer = IngressTransfer(
            request=request,
            arrival=arrival,
            start=start,
            done=done,
            fabric_arrival=done + self.link.latency_cycles,
        )
        self.transfers.append(transfer)
        return transfer

    def utilization(self) -> float:
        """Busy fraction of the link over the span it was in use."""
        if not self.transfers:
            return 0.0
        span = self.transfers[-1].done - self.transfers[0].arrival
        return self.busy_cycles / span if span > 0 else 1.0
