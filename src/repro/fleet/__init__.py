"""Fleet-scale serving simulation: R replicas behind one admission router.

The paper's MPC-X deployment unit is a node of 8 MAX4 DFEs behind one host;
this package lifts the single-pipeline simulator to that scale:

* :mod:`~repro.fleet.ingress` — the shared PCIe host link every image
  transfer serializes over (FIFO, cycle-granular, same link math as the
  cycle simulator);
* :mod:`~repro.fleet.router` — host-side admission policies (round-robin,
  join-shortest-queue, batch-aware JSQ) over a calibrated virtual queue
  model, deterministic by construction;
* :mod:`~repro.fleet.fleet` — plans, routes, and simulates whole fleets:
  serial reference path and byte-identical multiprocessing worker pool,
  per-policy latency-throughput frontiers (``repro fleet --sweep``), and
  capacity answers ("how many DFEs hold p99 ≤ X at N req/s?").
"""

from .fleet import (
    FleetConfig,
    FleetPlan,
    FleetReport,
    ReplicaSpec,
    default_rate_ladder,
    fleet_capacity_fps,
    fleet_sweep,
    min_replicas_for_slo,
    parse_mix,
    plan_fleet,
    plan_fleet_dfes,
    profile_replica,
    simulate_fleet,
)
from .ingress import IngressTransfer, SharedIngress
from .router import (
    POLICIES,
    BatchAwareRouter,
    JoinShortestQueueRouter,
    ReplicaState,
    RoundRobinRouter,
    Router,
    make_router,
)

__all__ = [
    "POLICIES",
    "BatchAwareRouter",
    "FleetConfig",
    "FleetPlan",
    "FleetReport",
    "IngressTransfer",
    "JoinShortestQueueRouter",
    "ReplicaSpec",
    "ReplicaState",
    "RoundRobinRouter",
    "Router",
    "SharedIngress",
    "default_rate_ladder",
    "fleet_capacity_fps",
    "fleet_sweep",
    "make_router",
    "min_replicas_for_slo",
    "parse_mix",
    "plan_fleet",
    "plan_fleet_dfes",
    "profile_replica",
    "simulate_fleet",
]
