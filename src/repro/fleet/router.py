"""Host-side admission routing: which replica serves the next image.

The router runs on the host, ahead of the shared PCIe ingress, and decides
from *host-observable* state only: how many images it has dispatched to
each replica and a calibrated service model (first-image latency plus the
steady-state completion interval from a closed-loop, leap-eligible
profiling run).  It never peeks at cycle-exact fabric state — that is what
keeps replica simulations independent of each other between router
decisions, which in turn is what lets the fleet layer run replicas on a
worker pool and still produce byte-identical reports.

Three policies, the classic ladder:

* ``rr`` — round-robin, the zero-knowledge baseline;
* ``jsq`` — join-shortest-queue over the virtual outstanding count (the
  host's estimate of images dispatched but not yet completed);
* ``batch`` — JSQ at batch granularity: keep ``batch`` consecutive images
  on one replica before re-evaluating, trading queue balance for longer
  uninterrupted steady-state windows on each replica (the regime the leap
  scheduler and the fabric both like best).

All tie-breaks are by lowest replica index, so every policy is a pure
function of the arrival sequence — deterministic by construction.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field

__all__ = ["POLICIES", "ReplicaState", "Router", "make_router"]


@dataclass(slots=True)
class ReplicaState:
    """The host's virtual queue model of one replica.

    ``interval_cycles`` is the replica's profiled steady-state completion
    interval; an image that queues behind in-flight work pipelines and is
    modeled as one interval of occupancy starting when the replica frees
    up.  An image that finds the replica *drained* (fabric arrival at or
    past ``busy_until``) must refill the pipeline and pays the full
    ``latency_cycles`` instead — charging the fill only once would make
    sporadically-fed replicas look faster than they are.
    """

    index: int
    latency_cycles: int
    interval_cycles: float
    busy_until: float = 0.0
    dispatched: int = 0
    _est_completions: list[float] = field(default_factory=list)

    def outstanding(self, cycle: int) -> int:
        """Virtual queue depth: dispatched images not yet (estimated) done."""
        return self.dispatched - bisect_right(self._est_completions, float(cycle))

    def on_dispatch(self, fabric_arrival: int) -> None:
        """Account one image routed here, arriving on-fabric at ``fabric_arrival``."""
        start = max(float(fabric_arrival), self.busy_until)
        # A drained pipeline refills (full latency); queued images pipeline
        # behind in-flight ones (one steady-state interval each).
        drained = float(fabric_arrival) >= self.busy_until
        service = float(self.latency_cycles) if drained else self.interval_cycles
        self.busy_until = start + max(1.0, service)
        self._est_completions.append(self.busy_until)
        self.dispatched += 1


class Router:
    """Base class: subclasses implement :meth:`choose`."""

    name = "base"

    def choose(self, request: int, arrival: int, states: list[ReplicaState]) -> int:
        raise NotImplementedError


class RoundRobinRouter(Router):
    name = "rr"

    def __init__(self) -> None:
        self._next = 0

    def choose(self, request: int, arrival: int, states: list[ReplicaState]) -> int:
        chosen = self._next
        self._next = (self._next + 1) % len(states)
        return chosen


class JoinShortestQueueRouter(Router):
    name = "jsq"

    def choose(self, request: int, arrival: int, states: list[ReplicaState]) -> int:
        return min(states, key=lambda s: (s.outstanding(arrival), s.index)).index


class BatchAwareRouter(Router):
    """JSQ at batch granularity: re-route only every ``batch`` images."""

    name = "batch"

    def __init__(self, batch: int = 4) -> None:
        if batch < 1:
            raise ValueError(f"batch must be >= 1, got {batch!r}")
        self.batch = batch
        self._current: int | None = None
        self._filled = 0

    def choose(self, request: int, arrival: int, states: list[ReplicaState]) -> int:
        if self._current is None or self._filled >= self.batch:
            self._current = min(
                states, key=lambda s: (s.outstanding(arrival), s.index)
            ).index
            self._filled = 0
        self._filled += 1
        return self._current


POLICIES = ("rr", "jsq", "batch", "static")


def make_router(policy: str, batch: int = 4) -> Router:
    """Instantiate a routing policy by name (``static`` has no router)."""
    if policy == "rr":
        return RoundRobinRouter()
    if policy == "jsq":
        return JoinShortestQueueRouter()
    if policy == "batch":
        return BatchAwareRouter(batch)
    raise ValueError(
        f"policy must be one of {POLICIES[:-1]} (static pre-partitions traffic "
        f"without a router), got {policy!r}"
    )
