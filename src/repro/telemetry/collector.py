"""The Telemetry collector: low-overhead live sampling of a running engine.

A :class:`Telemetry` object attached to
:meth:`Engine.run <repro.dataflow.engine.Engine.run>` (directly or through
``simulate(..., telemetry=...)``) samples the simulation every
``sample_every`` simulated cycles and mirrors its state into a typed
:class:`~repro.telemetry.registry.MetricsRegistry`:

* per-kernel busy/starved/blocked/idle **cycle counters** — mirrored from
  the engine's own :class:`~repro.dataflow.kernel.KernelStats`, with the
  fast path's parked-but-unaccounted cycles added virtually, so a mid-run
  sample reads the same totals the exhaustive scheduler would report;
* per-stream **occupancy gauges** (instantaneous + high-water), sampled
  **occupancy histograms**, and push/pop/reject counters;
* per-crossing **link gauges** — required and measured Mbps against the
  link's capacity (the paper's 2-bit @ 105 MHz = 210 Mbps budget) and the
  elements currently in flight;
* **derived gauges** — initiation interval, image latency, steady-state
  interval and FPS at the configured fabric clock, per-kernel duty cycle
  and stall-adjusted utilization;
* an **images-completed counter** read from the host sink;
* **per-image latency** — exact nearest-rank p50/p95/p99/max service
  latency gauges (admission to completion, matching
  :mod:`repro.telemetry.latency` bit-for-bit), a service-latency
  histogram observed once per completed image, and a host-queue depth
  gauge (images arrived but not yet admitted — the open-loop backlog).

Overhead contract (held by the ``bench_streaming_sim`` regression guard):
with no telemetry attached the engine's hot loops pay exactly one
``is not None`` test per simulated cycle — no per-event hooks, no
allocation; with telemetry attached, sampling touches each kernel and
stream only once per ``sample_every`` cycles, keeping the enabled overhead
within 5% on the tiny-chain benchmark.  Because the collector *reads* the
same aggregate counters :meth:`Engine.collect_stats` returns (push/pop
totals maintained by :class:`~repro.dataflow.stream.Stream`, tick
classifications maintained by the kernels), the final sample reconciles
exactly with both the aggregate stats and the Tracer-derived
:class:`~repro.dataflow.tracing.PipelineTrace` — a tested property.

Like a :class:`~repro.dataflow.trace.Tracer`, a Telemetry is single-use:
create a fresh one per run.
"""

from __future__ import annotations

from collections.abc import Callable
from typing import TYPE_CHECKING, Any

from ..dataflow.interval import mean_completion_interval
from .latency import LATENCY_BUCKETS, exact_quantile
from .registry import Counter, Gauge, Histogram, MetricsRegistry

if TYPE_CHECKING:
    from ..dataflow.engine import Engine
    from ..dataflow.kernel import Kernel
    from ..dataflow.manager import Pipeline
    from ..dataflow.stream import Stream

__all__ = ["Telemetry", "DEFAULT_SAMPLE_EVERY", "OCCUPANCY_BUCKETS"]

DEFAULT_SAMPLE_EVERY = 256

# Geometric occupancy buckets: FIFO depths span flip-flop chains (capacity 4)
# to §III-B5 skip buffers (thousands of elements).
OCCUPANCY_BUCKETS = (0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0, 1024.0, 2048.0, 4096.0)

# Kernel park-kind codes (mirrors repro.dataflow.kernel.STALL_*; literals keep
# this module import-light and cycle-free).
_STALL_STARVED = 1
_STALL_BLOCKED = 2

_STATES = ("busy", "starved", "blocked", "idle")

Listener = Callable[["Telemetry", int], None]


class _KernelProbe:
    """Pre-resolved metric children for one kernel (avoids per-sample lookups)."""

    __slots__ = ("kernel", "cycles", "elements", "duty", "utilization")

    def __init__(
        self,
        kernel: "Kernel",
        cycles: dict[str, Counter],
        elements: dict[str, Counter],
        duty: Gauge,
        utilization: Gauge,
    ) -> None:
        self.kernel = kernel
        self.cycles = cycles
        self.elements = elements
        self.duty = duty
        self.utilization = utilization


class _StreamProbe:
    """Pre-resolved metric children for one stream."""

    __slots__ = ("stream", "occupancy", "peak", "capacity", "events", "sampled")

    def __init__(
        self,
        stream: "Stream",
        occupancy: Gauge,
        peak: Gauge,
        capacity: Gauge,
        events: dict[str, Counter],
        sampled: Histogram,
    ) -> None:
        self.stream = stream
        self.occupancy = occupancy
        self.peak = peak
        self.capacity = capacity
        self.events = events
        self.sampled = sampled


class _LinkProbe:
    """Pre-resolved gauges for one DFE-to-DFE crossing."""

    __slots__ = ("edge", "stream", "required", "measured", "capacity", "utilization", "in_flight", "within")

    def __init__(self, edge: str, stream: "Stream | None", gauges: dict[str, Gauge]) -> None:
        self.edge = edge
        self.stream = stream
        self.required = gauges["required"]
        self.measured = gauges["measured"]
        self.capacity = gauges["capacity"]
        self.utilization = gauges["utilization"]
        self.in_flight = gauges["in_flight"]
        self.within = gauges["within"]


class Telemetry:
    """Samples one engine run into a metrics registry (single-use)."""

    def __init__(
        self,
        sample_every: int = DEFAULT_SAMPLE_EVERY,
        fclk_mhz: float = 105.0,
        registry: MetricsRegistry | None = None,
        on_sample: Listener | None = None,
    ) -> None:
        if sample_every < 1:
            raise ValueError(f"sample_every must be >= 1, got {sample_every!r}")
        self.sample_every = int(sample_every)
        self.fclk_mhz = float(fclk_mhz)
        self.registry = registry if registry is not None else MetricsRegistry()
        self.manifest: dict[str, Any] = {}
        self.engine: "Engine | None" = None
        self.pipeline: "Pipeline | None" = None
        self.finished = False
        self.total_cycles: int | None = None
        # Read by the engine's run loops: the next cycle at which to sample.
        self.next_sample_at = self.sample_every
        # Convenience summary refreshed on every sample (dashboard food).
        self.last: dict[str, Any] = {"cycle": 0, "images": 0}
        self._listeners: list[Listener] = [on_sample] if on_sample is not None else []
        self._attached = False
        self._kernel_probes: list[_KernelProbe] = []
        self._stream_probes: list[_StreamProbe] = []
        self._link_probes: list[_LinkProbe] = []
        self._sinks: list[Any] = []
        self._sources: list[Any] = []
        # Completed images whose service latency is already in the histogram
        # (samples overlap; each image must be observed exactly once).
        self._latency_observed = 0
        self._declare_families()

    # -- setup -----------------------------------------------------------
    def _declare_families(self) -> None:
        r = self.registry
        self._m_cycles = r.gauge("repro_cycles", "Simulated cycles elapsed in the current run.")
        self._m_samples = r.counter("repro_telemetry_samples_total", "Telemetry samples taken.")
        self._m_kcycles = r.counter(
            "repro_kernel_cycles_total",
            "Per-kernel cycles by classification (busy/starved/blocked/idle).",
            ("kernel", "state"),
        )
        self._m_kelems = r.counter(
            "repro_kernel_elements_total",
            "Stream elements consumed (in) and produced (out) per kernel.",
            ("kernel", "direction"),
        )
        self._m_duty = r.gauge(
            "repro_kernel_duty_cycle",
            "Fraction of its live window each kernel spent computing.",
            ("kernel",),
        )
        self._m_util = r.gauge(
            "repro_kernel_utilization",
            "Stall-adjusted utilization: busy / (busy + starved + blocked).",
            ("kernel",),
        )
        self._m_occ = r.gauge(
            "repro_stream_occupancy", "Instantaneous FIFO occupancy at the last sample.", ("stream",)
        )
        self._m_peak = r.gauge(
            "repro_stream_occupancy_peak", "High-water FIFO occupancy over the run.", ("stream",)
        )
        self._m_cap = r.gauge("repro_stream_capacity", "Configured FIFO capacity.", ("stream",))
        self._m_sevents = r.counter(
            "repro_stream_events_total",
            "Stream events by kind (push/pop/reject).",
            ("stream", "event"),
        )
        self._m_socc = r.histogram(
            "repro_stream_occupancy_sampled",
            "FIFO occupancy distribution, observed once per telemetry sample.",
            OCCUPANCY_BUCKETS,
            ("stream",),
        )
        link_labels = ("edge",)
        self._m_link = {
            "required": r.gauge(
                "repro_link_required_mbps",
                "Static bandwidth one element per clock needs (bits x f_clk).",
                link_labels,
            ),
            "measured": r.gauge(
                "repro_link_measured_mbps",
                "Measured average crossing bandwidth (pushes x bits x f_clk / cycles).",
                link_labels,
            ),
            "capacity": r.gauge(
                "repro_link_capacity_mbps", "Link capacity per the LinkSpec.", link_labels
            ),
            "utilization": r.gauge(
                "repro_link_utilization", "required_mbps / capacity_mbps.", link_labels
            ),
            "in_flight": r.gauge(
                "repro_link_in_flight", "Elements currently in transit on the link.", link_labels
            ),
            "within": r.gauge(
                "repro_link_within_budget",
                "1 when the crossing fits the link budget (paper SIII-B6), else 0.",
                link_labels,
            ),
        }
        self._m_images = r.counter("repro_images_completed_total", "Images fully emerged from the sink.")
        self._m_initiation = r.gauge(
            "repro_initiation_interval_cycles",
            "Cycles until every active kernel had produced/consumed at least once.",
        )
        self._m_latency = r.gauge(
            "repro_image_latency_cycles", "Cycles until the first image fully emerged."
        )
        self._m_interval = r.gauge(
            "repro_steady_state_interval_cycles",
            "Mean cycles between consecutive image completions.",
        )
        self._m_fps = r.gauge(
            "repro_throughput_fps",
            "Steady-state images/second at the configured fabric clock.",
        )
        self._m_lat_quant = r.gauge(
            "repro_image_service_latency_quantile_cycles",
            "Exact nearest-rank service-latency quantile (admission to completion).",
            ("quantile",),
        )
        self._m_lat_hist = r.histogram(
            "repro_image_service_latency_cycles",
            "Per-image service latency, observed once per completed image.",
            LATENCY_BUCKETS,
        )
        self._m_queue_depth = r.gauge(
            "repro_host_queue_depth",
            "Images arrived at the host but not yet admitted into the fabric.",
        )

    def add_listener(self, listener: Listener) -> None:
        """Register a callable invoked as ``listener(telemetry, cycle)`` per sample."""
        self._listeners.append(listener)

    def attach_pipeline(self, pipeline: "Pipeline") -> None:
        """Adopt a built pipeline's context: fabric clock, sink, crossings."""
        self.pipeline = pipeline
        self.fclk_mhz = float(pipeline.fclk_mhz)

    def attach(self, engine: "Engine") -> None:
        """Install on ``engine`` (called by ``Engine.run``); single-use."""
        if self._attached or self.finished:
            raise ValueError("a Telemetry is single-use; create a fresh one per run")
        self._attached = True
        self.engine = engine
        for kernel in engine.kernels:
            name = kernel.name
            self._kernel_probes.append(
                _KernelProbe(
                    kernel,
                    {
                        state: self._m_kcycles.labels(kernel=name, state=state)  # type: ignore[misc]
                        for state in _STATES
                    },
                    {
                        direction: self._m_kelems.labels(kernel=name, direction=direction)  # type: ignore[misc]
                        for direction in ("in", "out")
                    },
                    self._m_duty.labels(kernel=name),  # type: ignore[arg-type]
                    self._m_util.labels(kernel=name),  # type: ignore[arg-type]
                )
            )
            if hasattr(kernel, "completion_cycles"):
                self._sinks.append(kernel)
            if hasattr(kernel, "admission_cycles"):
                self._sources.append(kernel)
        for stream in engine.streams:
            name = stream.name
            self._stream_probes.append(
                _StreamProbe(
                    stream,
                    self._m_occ.labels(stream=name),  # type: ignore[arg-type]
                    self._m_peak.labels(stream=name),  # type: ignore[arg-type]
                    self._m_cap.labels(stream=name),  # type: ignore[arg-type]
                    {
                        event: self._m_sevents.labels(stream=name, event=event)  # type: ignore[misc]
                        for event in ("push", "pop", "reject")
                    },
                    self._m_socc.labels(stream=name),  # type: ignore[arg-type]
                )
            )
        pipeline = self.pipeline
        if pipeline is not None:
            for crossing in pipeline.crossings:
                edge = f"{crossing.edge[0]}->{crossing.edge[1]}"
                prefix = f"{crossing.edge[0]}->{crossing.edge[1]}["
                stream = next(
                    (s for s in engine.streams if s.latency > 0 and s.name.startswith(prefix)),
                    None,
                )
                gauges = {
                    key: family.labels(edge=edge)  # type: ignore[misc]
                    for key, family in self._m_link.items()
                }
                probe = _LinkProbe(edge, stream, gauges)  # type: ignore[arg-type]
                capacity_mbps = crossing.link.bandwidth_gbps * 1000.0
                probe.required.set(crossing.required_mbps)
                probe.capacity.set(capacity_mbps)
                util = crossing.required_mbps / capacity_mbps if capacity_mbps else float("inf")
                probe.utilization.set(util)
                probe.within.set(1.0 if util <= 1.0 else 0.0)
                self._link_probes.append(probe)

    # -- sampling --------------------------------------------------------
    def sample(self, cycle: int) -> None:
        """Mirror the engine's current state into the registry.

        Called by the engine's run loops whenever ``cycle`` reaches
        :attr:`next_sample_at`, and once more by :meth:`finish`.  Kernels
        the fast scheduler has parked carry stall cycles it has not
        bulk-accounted yet; those are added virtually (the same arithmetic
        the engine's wake accounting replays), so sampled totals match the
        exhaustive scheduler's at every cycle.
        """
        self.next_sample_at = cycle + self.sample_every
        self._m_samples.inc()
        self._m_cycles.set(cycle)

        first_actives: list[int] = []
        for probe in self._kernel_probes:
            kernel = probe.kernel
            stats = kernel.stats
            busy = stats.active_cycles
            starved = stats.input_starved_cycles
            blocked = stats.output_blocked_cycles
            idle = stats.idle_cycles
            if kernel._parked:
                pending = cycle - 1 - kernel._park_cycle
                if pending > 0:
                    kind = kernel._park_kind
                    if kind == _STALL_STARVED:
                        starved += pending
                    elif kind == _STALL_BLOCKED:
                        blocked += pending
                    else:
                        idle += pending
            cycles = probe.cycles
            cycles["busy"].set_total(busy)
            cycles["starved"].set_total(starved)
            cycles["blocked"].set_total(blocked)
            cycles["idle"].set_total(idle)
            probe.elements["in"].set_total(stats.elements_in)
            probe.elements["out"].set_total(stats.elements_out)
            first = stats.first_active_cycle
            if first is not None:
                first_actives.append(first)
                last = stats.last_active_cycle
                span = (last - first + 1) if last is not None else 1
                probe.duty.set(busy / span if span else 0.0)
            stalls = busy + starved + blocked
            probe.utilization.set(busy / stalls if stalls else 0.0)

        for sprobe in self._stream_probes:
            stream = sprobe.stream
            occ = len(stream._fifo)
            sstats = stream.stats
            sprobe.occupancy.set(occ)
            sprobe.peak.set(sstats.max_occupancy)
            sprobe.capacity.set(stream.capacity)
            sprobe.events["push"].set_total(sstats.pushes)
            sprobe.events["pop"].set_total(sstats.pops)
            sprobe.events["reject"].set_total(sstats.full_rejections)
            sprobe.sampled.observe(occ)

        for lprobe in self._link_probes:
            stream = lprobe.stream
            if stream is None:
                continue
            lprobe.in_flight.set(sum(1 for _, ready in stream._fifo if ready > cycle))
            if cycle > 0:
                lprobe.measured.set(stream.stats.pushes * stream.bits * self.fclk_mhz / cycle)

        completions: list[int] = []
        for sink in self._sinks:
            completions.extend(sink.completion_cycles)
        completions.sort()
        self._m_images.set_total(len(completions))
        if completions:
            self._m_latency.set(completions[0])
        # None under two completions: the gauges simply stay unset (n/a).
        interval = mean_completion_interval(completions)
        if interval is not None:
            self._m_interval.set(interval)
            if interval > 0:
                self._m_fps.set(self.fclk_mhz * 1e6 / interval)
        if first_actives:
            self._m_initiation.set(max(first_actives))

        # Per-image service latency: pair sink completions with source
        # admissions by image index (the single-source/single-sink pipelines
        # this engine builds keep both lists in index order).
        service: list[int] = []
        if len(self._sources) == 1 and len(self._sinks) == 1:
            admissions = self._sources[0].admission_cycles
            done = self._sinks[0].completion_cycles
            service = [done[i] - admissions[i] for i in range(min(len(done), len(admissions)))]
        for value in service[self._latency_observed :]:
            self._m_lat_hist.observe(value)
        self._latency_observed = max(self._latency_observed, len(service))
        quantiles: dict[str, int | None] = {"p50": None, "p95": None, "p99": None, "max": None}
        if service:
            quantiles = {
                "p50": exact_quantile(service, 0.50),
                "p95": exact_quantile(service, 0.95),
                "p99": exact_quantile(service, 0.99),
                "max": max(service),
            }
            self._m_lat_quant.labels(quantile="0.5").set(quantiles["p50"])  # type: ignore[union-attr, arg-type]
            self._m_lat_quant.labels(quantile="0.95").set(quantiles["p95"])  # type: ignore[union-attr, arg-type]
            self._m_lat_quant.labels(quantile="0.99").set(quantiles["p99"])  # type: ignore[union-attr, arg-type]
            self._m_lat_quant.labels(quantile="1.0").set(quantiles["max"])  # type: ignore[union-attr, arg-type]
        queue_depth = sum(
            source.arrived_count(cycle) - len(source.admission_cycles) for source in self._sources
        )
        self._m_queue_depth.set(queue_depth)

        self.last = {
            "cycle": cycle,
            "images": len(completions),
            "latency": completions[0] if completions else None,
            "interval": interval,
            "fps": (self.fclk_mhz * 1e6 / interval) if interval else None,
            "initiation": max(first_actives) if first_actives else None,
            "latency_p50": quantiles["p50"],
            "latency_p95": quantiles["p95"],
            "latency_p99": quantiles["p99"],
            "latency_max": quantiles["max"],
            "queue_depth": queue_depth,
        }
        for listener in self._listeners:
            listener(self, cycle)

    def finish(self, total_cycles: int) -> None:
        """Seal the run with a final sample at the run's cycle count."""
        if self.engine is None:
            raise ValueError("telemetry was never attached to an engine")
        self.finished = True
        self.total_cycles = total_cycles
        self.sample(total_cycles)

    # -- views -----------------------------------------------------------
    def kernel_rows(self) -> list[dict[str, Any]]:
        """Per-kernel values as of the last sample (dashboard/report food)."""
        rows: list[dict[str, Any]] = []
        for probe in self._kernel_probes:
            cycles = probe.cycles
            rows.append(
                {
                    "name": probe.kernel.name,
                    "busy": int(cycles["busy"].value),
                    "starved": int(cycles["starved"].value),
                    "blocked": int(cycles["blocked"].value),
                    "idle": int(cycles["idle"].value),
                    "utilization": probe.utilization.value,
                    "duty": probe.duty.value,
                }
            )
        return rows

    def stream_rows(self) -> list[dict[str, Any]]:
        """Per-stream occupancy as of the last sample."""
        return [
            {
                "name": probe.stream.name,
                "occupancy": int(probe.occupancy.value),
                "peak": int(probe.peak.value),
                "capacity": int(probe.capacity.value),
            }
            for probe in self._stream_probes
        ]

    # -- export ----------------------------------------------------------
    def export_prometheus(self) -> str:
        """The registry in Prometheus text exposition format."""
        from .exporters import render_prometheus

        return render_prometheus(self.registry, manifest=self.manifest or None)

    def export_json(self) -> dict[str, Any]:
        """The registry plus manifest as one JSON-serialisable snapshot."""
        from .exporters import snapshot_registry

        return {
            "schema": "repro-telemetry/1",
            "manifest": dict(self.manifest),
            "cycles": self.last.get("cycle", 0),
            "finished": self.finished,
            "metrics": snapshot_registry(self.registry),
        }
