"""Live telemetry for the streaming simulator.

The observability layer the ROADMAP's serving-system north star needs:

* :mod:`~repro.telemetry.registry` — typed Counter/Gauge/Histogram metric
  families with Prometheus-compatible names and labels;
* :mod:`~repro.telemetry.collector` — :class:`Telemetry`, the low-overhead
  sampling hook ``Engine.run(telemetry=...)`` accepts (per-kernel
  busy/starved/blocked counters, FIFO occupancy, link bandwidth vs the
  §III-C budget, derived II/FPS/duty-cycle gauges);
* :mod:`~repro.telemetry.exporters` — Prometheus text exposition and JSON
  snapshots, periodic or at run end;
* :mod:`~repro.telemetry.manifest` — host/run manifests (git describe,
  python/numpy versions, topology) stamped onto every export;
* :mod:`~repro.telemetry.dashboard` — the ``repro top`` live view;
* :mod:`~repro.telemetry.attribution` — the ``repro stats`` bottleneck
  report, naming the same edges ``repro check`` anchors its diagnostics to;
* :mod:`~repro.telemetry.latency` — per-image lifecycle records (arrival,
  admission, per-partition first-pixel-out, completion) and exact
  nearest-rank percentile summaries, scheduler-independent by construction;
* :mod:`~repro.telemetry.loadgen` — the ``repro load`` open-loop load
  generator: seeded arrival processes, offered-vs-achieved FPS, SLO
  verdicts, and FINN-style latency-throughput sweeps.

Telemetry is strictly opt-in: with no collector attached the engine's hot
loops stay hook-free (one ``is not None`` test per simulated cycle).
"""

from .attribution import (
    AttributionReport,
    attribute_run,
    deadlock_root_edge,
    kernel_attributions,
    run_attributed,
)
from .collector import DEFAULT_SAMPLE_EVERY, OCCUPANCY_BUCKETS, Telemetry
from .dashboard import Dashboard, render_frame
from .exporters import (
    PeriodicExporter,
    render_prometheus,
    snapshot_registry,
    validate_exposition,
    write_text_file,
)
from .latency import (
    LATENCY_BUCKETS,
    ImageRecord,
    LatencyReport,
    LatencySummary,
    exact_quantile,
    image_records,
    latency_report,
    reconcile,
    tail_attribution,
)
from .loadgen import (
    ArrivalSchedule,
    LoadResult,
    fixed_rate_schedule,
    make_schedule,
    poisson_schedule,
    run_load,
    spawn_poisson_schedules,
    sweep,
)
from .manifest import host_manifest, run_manifest
from .registry import Counter, Gauge, Histogram, MetricFamily, MetricsRegistry

__all__ = [
    "ArrivalSchedule",
    "AttributionReport",
    "Counter",
    "Dashboard",
    "DEFAULT_SAMPLE_EVERY",
    "Gauge",
    "Histogram",
    "ImageRecord",
    "LATENCY_BUCKETS",
    "LatencyReport",
    "LatencySummary",
    "LoadResult",
    "MetricFamily",
    "MetricsRegistry",
    "OCCUPANCY_BUCKETS",
    "PeriodicExporter",
    "Telemetry",
    "attribute_run",
    "deadlock_root_edge",
    "exact_quantile",
    "fixed_rate_schedule",
    "host_manifest",
    "image_records",
    "kernel_attributions",
    "latency_report",
    "make_schedule",
    "poisson_schedule",
    "reconcile",
    "render_frame",
    "render_prometheus",
    "run_attributed",
    "run_load",
    "run_manifest",
    "snapshot_registry",
    "spawn_poisson_schedules",
    "sweep",
    "tail_attribution",
]
