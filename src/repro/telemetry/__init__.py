"""Live telemetry for the streaming simulator.

The observability layer the ROADMAP's serving-system north star needs:

* :mod:`~repro.telemetry.registry` — typed Counter/Gauge/Histogram metric
  families with Prometheus-compatible names and labels;
* :mod:`~repro.telemetry.collector` — :class:`Telemetry`, the low-overhead
  sampling hook ``Engine.run(telemetry=...)`` accepts (per-kernel
  busy/starved/blocked counters, FIFO occupancy, link bandwidth vs the
  §III-C budget, derived II/FPS/duty-cycle gauges);
* :mod:`~repro.telemetry.exporters` — Prometheus text exposition and JSON
  snapshots, periodic or at run end;
* :mod:`~repro.telemetry.manifest` — host/run manifests (git describe,
  python/numpy versions, topology) stamped onto every export;
* :mod:`~repro.telemetry.dashboard` — the ``repro top`` live view;
* :mod:`~repro.telemetry.attribution` — the ``repro stats`` bottleneck
  report, naming the same edges ``repro check`` anchors its diagnostics to.

Telemetry is strictly opt-in: with no collector attached the engine's hot
loops stay hook-free (one ``is not None`` test per simulated cycle).
"""

from .attribution import AttributionReport, attribute_run, deadlock_root_edge, run_attributed
from .collector import DEFAULT_SAMPLE_EVERY, OCCUPANCY_BUCKETS, Telemetry
from .dashboard import Dashboard, render_frame
from .exporters import (
    PeriodicExporter,
    render_prometheus,
    snapshot_registry,
    validate_exposition,
    write_text_file,
)
from .manifest import host_manifest, run_manifest
from .registry import Counter, Gauge, Histogram, MetricFamily, MetricsRegistry

__all__ = [
    "AttributionReport",
    "Counter",
    "Dashboard",
    "DEFAULT_SAMPLE_EVERY",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricsRegistry",
    "OCCUPANCY_BUCKETS",
    "PeriodicExporter",
    "Telemetry",
    "attribute_run",
    "deadlock_root_edge",
    "host_manifest",
    "render_frame",
    "render_prometheus",
    "run_attributed",
    "run_manifest",
    "snapshot_registry",
    "validate_exposition",
    "write_text_file",
]
