"""Per-image latency: lifecycle records, exact percentiles, tail blame.

The paper's headline serving numbers — initiation interval, steady-state
throughput, the near-free MaxRing hand-off (§III-B6) — are all *per-image*
quantities, yet an aggregate run only reports the first image's latency.
This module turns the lifecycle instants the dataflow layer now stamps into
a per-image record set and a distribution view:

* **records** — one :class:`ImageRecord` per completed image: host arrival
  (open-loop runs), fabric admission (the source's first push), first pixel
  out of every partition (inter-DFE crossing marks), and sink completion;
* **exact percentiles** — nearest-rank p50/p95/p99/max over the cycle
  domain, deterministic and therefore bit-identical between the fast and
  exhaustive schedulers (both produce the identical event timeline);
* **per-partition breakdown** — segment latencies for multi-DFE runs
  (ingest → crossing, crossing → sink), showing where a span is spent;
* **tail attribution** — the kernel and edge responsible for the slowest
  decile, reusing the stall accounting :mod:`repro.telemetry.attribution`
  ranks bottlenecks with.

Everything reconciles, exactly, with what already exists: record ``i``'s
completion equals the sink's ``completion_cycles[i]`` (so record 0's
completion *is* the aggregate ``RunResult.latency_cycles``), and a traced
run's :class:`~repro.dataflow.trace.ImageCompletion` events carry the same
(admission, completion) pairs — :func:`reconcile` asserts both round trips.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:
    from ..dataflow.engine import RunResult
    from ..dataflow.manager import Pipeline
    from ..dataflow.trace import Tracer

__all__ = [
    "LATENCY_BUCKETS",
    "ImageRecord",
    "LatencySummary",
    "LatencyReport",
    "TailAttribution",
    "exact_quantile",
    "image_records",
    "latency_report",
    "reconcile",
    "segment_summaries",
    "summarize",
    "tail_attribution",
]

# Cycle-domain histogram buckets for registry latency histograms: geometric
# powers of two spanning flip-flop-latency tiny chains to paper-scale runs.
LATENCY_BUCKETS = tuple(float(1 << e) for e in range(8, 25))


@dataclass(slots=True)
class ImageRecord:
    """The lifecycle of one image through the pipeline, in cycles.

    ``arrival`` is when the image became available at the host (0 for every
    image in a closed-loop run), ``admission`` when its first element
    entered the fabric, ``completion`` when its last element reached the
    sink.  ``first_out`` maps a boundary stream name (inter-DFE crossings
    and the sink edge) to the cycle the image's first element was pushed
    onto it.
    """

    index: int
    arrival: int
    admission: int
    completion: int
    first_out: dict[str, int] = field(default_factory=dict)

    @property
    def queue_wait(self) -> int:
        """Cycles spent waiting in the host queue before admission."""
        return self.admission - self.arrival

    @property
    def service_cycles(self) -> int:
        """Ingest-to-sink span: the per-image latency headline."""
        return self.completion - self.admission

    @property
    def sojourn_cycles(self) -> int:
        """Arrival-to-sink span: service plus host-queue wait."""
        return self.completion - self.arrival

    def as_dict(self) -> dict[str, Any]:
        return {
            "index": self.index,
            "arrival": self.arrival,
            "admission": self.admission,
            "completion": self.completion,
            "queue_wait": self.queue_wait,
            "service_cycles": self.service_cycles,
            "sojourn_cycles": self.sojourn_cycles,
            "first_out": dict(self.first_out),
        }


def exact_quantile(values: list[int], q: float) -> int:
    """Nearest-rank quantile over integer cycle counts (no interpolation).

    The nearest-rank definition (value at rank ``ceil(q * n)``) always
    returns an observed value, so quantiles stay in the cycle domain and
    are bit-identical wherever the underlying records are — the property
    the fast/exhaustive reconciliation tests pin down.
    """
    if not values:
        raise ValueError("quantile of an empty sample")
    if not 0.0 < q <= 1.0:
        raise ValueError(f"quantile must be in (0, 1], got {q!r}")
    ordered = sorted(values)
    rank = max(1, math.ceil(q * len(ordered)))
    return ordered[rank - 1]


@dataclass(slots=True)
class LatencySummary:
    """Exact distribution summary of one cycle-domain quantity.

    All fields are ``None`` for an empty sample (an aborted run with zero
    completed images) — renderers print ``n/a`` instead of dividing.
    """

    count: int
    p50: int | None
    p95: int | None
    p99: int | None
    max: int | None
    mean: float | None

    def as_dict(self) -> dict[str, Any]:
        return {
            "count": self.count,
            "p50": self.p50,
            "p95": self.p95,
            "p99": self.p99,
            "max": self.max,
            "mean": self.mean,
        }

    def render(self) -> str:
        if not self.count:
            return "n/a (no completed images)"
        return (
            f"p50 {self.p50:,} | p95 {self.p95:,} | p99 {self.p99:,} | "
            f"max {self.max:,} cycles (n={self.count})"
        )


def summarize(values: list[int]) -> LatencySummary:
    """Exact percentile summary of ``values`` (``n/a`` markers when empty)."""
    if not values:
        return LatencySummary(count=0, p50=None, p95=None, p99=None, max=None, mean=None)
    return LatencySummary(
        count=len(values),
        p50=exact_quantile(values, 0.50),
        p95=exact_quantile(values, 0.95),
        p99=exact_quantile(values, 0.99),
        max=max(values),
        mean=sum(values) / len(values),
    )


@dataclass(slots=True)
class TailAttribution:
    """Blame for the slowest decile of images."""

    threshold_cycles: int  # p90 of service latency: the decile boundary
    image_indices: list[int]  # images at or above the threshold
    kernel: str  # the stall-dominant kernel over the run
    verdict: str  # "starved" | "blocked" | "busy" | "idle"
    edge: str | None  # the starving input / back-pressuring output stream
    edge_role: str | None

    def render(self) -> str:
        where = ""
        if self.edge is not None and self.edge_role is not None:
            where = f" through {self.edge_role} edge {self.edge!r}"
        return (
            f"slowest decile (>= {self.threshold_cycles:,} cycles, "
            f"{len(self.image_indices)} image(s)): dominated by {self.kernel!r} "
            f"({self.verdict}{where})"
        )


def tail_attribution(records: list[ImageRecord], pipeline: "Pipeline") -> "TailAttribution | None":
    """Name the kernel/edge responsible for the slowest decile of images.

    Reuses :mod:`repro.telemetry.attribution`'s stall accounting: among the
    compute kernels (host endpoints excluded — their stalls *are* the
    latency being explained), the one with the most stall cycles carries
    the blame, together with the specific starving/back-pressuring edge.
    """
    from .attribution import kernel_attributions

    if not records:
        return None
    values = [r.service_cycles for r in records]
    threshold = exact_quantile(values, 0.90)
    slow = [r.index for r in records if r.service_cycles >= threshold]
    candidates = [
        k
        for k in kernel_attributions(pipeline.engine)
        if k.name not in (pipeline.source.name, pipeline.sink.name)
    ]
    if not candidates:
        return None
    worst = max(candidates, key=lambda k: (k.starved + k.blocked, -k.utilization))
    return TailAttribution(
        threshold_cycles=threshold,
        image_indices=slow,
        kernel=worst.name,
        verdict=worst.verdict,
        edge=worst.edge,
        edge_role=worst.edge_role,
    )


@dataclass(slots=True)
class LatencyReport:
    """The per-image latency view of one run."""

    graph_name: str
    cycles: int
    n_images: int  # completed images
    open_loop: bool
    fclk_mhz: float
    records: list[ImageRecord]
    service: LatencySummary  # admission -> completion
    sojourn: LatencySummary  # arrival -> completion (== service closed-loop)
    queue_wait: LatencySummary  # arrival -> admission
    segments: list[tuple[str, LatencySummary]]  # per-partition breakdown
    tail: TailAttribution | None

    def as_dict(self) -> dict[str, Any]:
        return {
            "schema": "repro-latency/1",
            "graph": self.graph_name,
            "cycles": self.cycles,
            "images": self.n_images,
            "open_loop": self.open_loop,
            "fclk_mhz": self.fclk_mhz,
            "service_cycles": self.service.as_dict(),
            "sojourn_cycles": self.sojourn.as_dict(),
            "queue_wait_cycles": self.queue_wait.as_dict(),
            "segments": [
                {"segment": label, **summary.as_dict()} for label, summary in self.segments
            ],
            "tail": None
            if self.tail is None
            else {
                "threshold_cycles": self.tail.threshold_cycles,
                "images": list(self.tail.image_indices),
                "kernel": self.tail.kernel,
                "verdict": self.tail.verdict,
                "edge": self.tail.edge,
                "edge_role": self.tail.edge_role,
            },
            "records": [r.as_dict() for r in self.records],
        }

    def render(self) -> str:
        lines = [
            f"latency {self.graph_name}: {self.n_images} image(s) over "
            f"{self.cycles:,} cycles ({'open' if self.open_loop else 'closed'} loop)"
        ]
        lines.append(f"  service latency: {self.service.render()}")
        if self.open_loop:
            lines.append(f"  host-queue wait: {self.queue_wait.render()}")
            lines.append(f"  sojourn latency: {self.sojourn.render()}")
        for label, summary in self.segments:
            lines.append(f"  segment {label}: {summary.render()}")
        if self.tail is not None:
            lines.append(f"  {self.tail.render()}")
        return "\n".join(lines)


def _boundary_streams(pipeline: "Pipeline") -> list[Any]:
    """Marked boundary streams in dataflow order: crossings, then sink edge."""
    engine = pipeline.engine
    ordered: list[Any] = []
    for crossing in pipeline.crossings:
        prefix = f"{crossing.edge[0]}->{crossing.edge[1]}["
        for stream in engine.streams:
            if stream.mark_every and stream.name.startswith(prefix) and stream not in ordered:
                ordered.append(stream)
                break
    sink_edge = pipeline.sink.inputs[0] if pipeline.sink.inputs else None
    if sink_edge is not None and sink_edge.mark_every and sink_edge not in ordered:
        ordered.append(sink_edge)
    return ordered


def image_records(pipeline: "Pipeline") -> list[ImageRecord]:
    """Lifecycle records for every *completed* image of a finished run."""
    source = pipeline.source
    sink = pipeline.sink
    completions = sink.completion_cycles
    admissions = source.admission_cycles
    arrivals = source.arrival_cycles
    n = len(completions)
    if len(admissions) < n:
        raise ValueError(
            f"{n} completion(s) but only {len(admissions)} admission(s); "
            "the source never stamped these images"
        )
    boundaries = _boundary_streams(pipeline)
    records: list[ImageRecord] = []
    for i in range(n):
        first_out = {
            stream.name: stream.mark_cycles[i]
            for stream in boundaries
            if i < len(stream.mark_cycles)
        }
        records.append(
            ImageRecord(
                index=i,
                arrival=arrivals[i] if arrivals is not None else 0,
                admission=admissions[i],
                completion=completions[i],
                first_out=first_out,
            )
        )
    return records


def _segments(pipeline: "Pipeline", records: list[ImageRecord]) -> list[tuple[str, LatencySummary]]:
    """Per-partition segment latencies: admission -> marks ... -> completion."""
    boundaries = _boundary_streams(pipeline)
    if not boundaries or not records:
        return []
    segments: list[tuple[str, LatencySummary]] = []
    prev_label = "ingest"
    prev_cycles = [r.admission for r in records]
    for stream in boundaries:
        label = f"{prev_label} -> {stream.name}"
        cycles = [r.first_out[stream.name] for r in records if stream.name in r.first_out]
        if len(cycles) != len(records):
            continue
        segments.append(
            (label, summarize([c - p for c, p in zip(cycles, prev_cycles)]))
        )
        prev_label = stream.name
        prev_cycles = cycles
    segments.append(
        (
            f"{prev_label} -> completion",
            summarize([r.completion - p for r, p in zip(records, prev_cycles)]),
        )
    )
    return segments


def segment_summaries(
    pipeline: "Pipeline",
    records: list[ImageRecord] | None = None,
) -> list[tuple[str, LatencySummary]]:
    """Per-partition segment latencies of a finished run (public API).

    The same decomposition :func:`latency_report` embeds — admission to
    each inter-DFE crossing's first-pixel-out mark, then to completion —
    exposed on its own so the partition planner can attach measured
    per-device segments to a plan without building a full report.
    """
    if records is None:
        records = image_records(pipeline)
    return _segments(pipeline, records)


def latency_report(
    pipeline: "Pipeline",
    cycles: int,
    *,
    attribute_tail: bool = True,
) -> LatencyReport:
    """Build the per-image latency report from a finished (or aborted) run."""
    records = image_records(pipeline)
    return LatencyReport(
        graph_name=pipeline.graph.name,
        cycles=cycles,
        n_images=len(records),
        open_loop=pipeline.source.arrival_cycles is not None,
        fclk_mhz=pipeline.fclk_mhz,
        records=records,
        service=summarize([r.service_cycles for r in records]),
        sojourn=summarize([r.sojourn_cycles for r in records]),
        queue_wait=summarize([r.queue_wait for r in records]),
        segments=_segments(pipeline, records),
        tail=tail_attribution(records, pipeline) if attribute_tail else None,
    )


def reconcile(
    report: LatencyReport,
    run: "RunResult | None" = None,
    tracer: "Tracer | None" = None,
) -> None:
    """Assert the report agrees exactly with the aggregate run and/or trace.

    * against a :class:`RunResult`: record ``i``'s completion equals
      ``completion_cycles[i]`` (so record 0's completion is the aggregate
      ``latency_cycles``);
    * against a :class:`Tracer`: every ``ImageCompletion`` event's
      ``(index, admission, cycle)`` triple matches the record's.

    Raises :class:`ValueError` on the first disagreement; silence means the
    three views of the run are bit-identical.
    """
    if run is not None:
        got = [r.completion for r in report.records]
        if got != list(run.completion_cycles):
            raise ValueError(
                f"latency records disagree with RunResult completions: "
                f"{got} != {list(run.completion_cycles)}"
            )
    if tracer is not None:
        if len(tracer.completions) != len(report.records):
            raise ValueError(
                f"{len(tracer.completions)} traced completion(s) for "
                f"{len(report.records)} record(s)"
            )
        for event, record in zip(tracer.completions, report.records):
            if event.index != record.index or event.cycle != record.completion:
                raise ValueError(
                    f"traced completion {event} disagrees with record {record}"
                )
            if event.admission >= 0 and event.admission != record.admission:
                raise ValueError(
                    f"traced admission {event.admission} != record admission "
                    f"{record.admission} for image {event.index}"
                )
