"""Typed metrics registry: Counter / Gauge / Histogram families with labels.

The registry is the substrate of the live telemetry layer: every quantity
the simulator exposes — per-kernel busy/starved/blocked cycles, FIFO
occupancy, link bandwidth, derived throughput — is one metric family with
Prometheus-compatible naming (``[a-zA-Z_:][a-zA-Z0-9_:]*``) and label
semantics.  Families are created once (idempotently) on a
:class:`MetricsRegistry` and children materialise lazily per label-value
tuple, so the set of kernels/streams never has to be declared up front.

Three metric types, matching the Prometheus data model:

* :class:`Counter` — monotonically non-decreasing.  Besides ``inc``, a
  counter supports ``set_total`` so the collector can mirror the engine's
  own aggregate counters (``KernelStats`` / ``StreamStats``) exactly
  instead of double-counting events; monotonicity is still enforced.
* :class:`Gauge` — a value that can go anywhere (occupancy, utilization,
  derived rates).
* :class:`Histogram` — fixed upper-bound buckets plus sum/count; rendered
  cumulatively (``le``-style) by the Prometheus exporter.

The registry itself knows nothing about the simulator; the wiring lives in
:mod:`repro.telemetry.collector`.
"""

from __future__ import annotations

import math
import re
from bisect import bisect_left
from collections.abc import Iterable, Iterator, Sequence
from typing import Union

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricsRegistry",
]

_METRIC_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

METRIC_TYPES = ("counter", "gauge", "histogram")


class Counter:
    """A monotonically non-decreasing value."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: float = 0

    def inc(self, amount: float = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter increment must be >= 0, got {amount!r}")
        self.value += amount

    def set_total(self, value: float) -> None:
        """Set the absolute total (mirroring an external monotone counter)."""
        if value < self.value:
            raise ValueError(
                f"counter would decrease: {self.value!r} -> {value!r} (counters are monotone)"
            )
        self.value = value


class Gauge:
    """An instantaneous value."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: float = 0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1) -> None:
        self.value += amount


class Histogram:
    """Fixed-bucket distribution with sum and count.

    ``bucket_counts[i]`` counts observations ``<= uppers[i]`` exclusively of
    earlier buckets (per-bucket, not cumulative — the exporter accumulates);
    the implicit final ``+Inf`` bucket is ``bucket_counts[-1]``.
    """

    __slots__ = ("uppers", "bucket_counts", "sum", "count")

    def __init__(self, uppers: Sequence[float]) -> None:
        cleaned = sorted({float(u) for u in uppers})
        if not cleaned:
            raise ValueError("histogram needs at least one finite bucket bound")
        if any(math.isinf(u) or math.isnan(u) for u in cleaned):
            raise ValueError("histogram bucket bounds must be finite (+Inf is implicit)")
        self.uppers: tuple[float, ...] = tuple(cleaned)
        self.bucket_counts: list[int] = [0] * (len(cleaned) + 1)
        self.sum: float = 0.0
        self.count: int = 0

    def observe(self, value: float) -> None:
        self.bucket_counts[bisect_left(self.uppers, value)] += 1
        self.sum += value
        self.count += 1

    def cumulative(self) -> list[tuple[float, int]]:
        """``(le, cumulative_count)`` pairs ending with ``(+Inf, count)``."""
        out: list[tuple[float, int]] = []
        running = 0
        for upper, n in zip(self.uppers, self.bucket_counts):
            running += n
            out.append((upper, running))
        out.append((math.inf, self.count))
        return out


Child = Union[Counter, Gauge, Histogram]


class MetricFamily:
    """One named metric with a fixed label schema and lazy children."""

    __slots__ = ("name", "help", "type", "labelnames", "buckets", "_children")

    def __init__(
        self,
        name: str,
        help: str,
        type: str,
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] | None = None,
    ) -> None:
        if not _METRIC_NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        if type not in METRIC_TYPES:
            raise ValueError(f"metric type must be one of {METRIC_TYPES}, got {type!r}")
        if not help:
            raise ValueError(f"metric {name!r} needs a help string")
        for label in labelnames:
            if not _LABEL_NAME_RE.match(label) or label.startswith("__"):
                raise ValueError(f"invalid label name {label!r} on metric {name!r}")
        if type == "histogram" and not buckets:
            raise ValueError(f"histogram {name!r} needs bucket bounds")
        self.name = name
        self.help = help
        self.type = type
        self.labelnames: tuple[str, ...] = tuple(labelnames)
        self.buckets: tuple[float, ...] | None = tuple(buckets) if buckets else None
        self._children: dict[tuple[str, ...], Child] = {}

    def _make_child(self) -> Child:
        if self.type == "counter":
            return Counter()
        if self.type == "gauge":
            return Gauge()
        assert self.buckets is not None
        return Histogram(self.buckets)

    def labels(self, **labels: str) -> Child:
        """The child for one label-value assignment (created on first use)."""
        if tuple(sorted(labels)) != tuple(sorted(self.labelnames)):
            raise ValueError(
                f"metric {self.name!r} takes labels {list(self.labelnames)}, "
                f"got {sorted(labels)}"
            )
        key = tuple(str(labels[name]) for name in self.labelnames)
        child = self._children.get(key)
        if child is None:
            child = self._make_child()
            self._children[key] = child
        return child

    # Convenience for label-less families: act like the single child.
    def _default(self) -> Child:
        if self.labelnames:
            raise ValueError(f"metric {self.name!r} has labels {list(self.labelnames)}; use .labels()")
        return self.labels()

    def inc(self, amount: float = 1) -> None:
        child = self._default()
        if isinstance(child, Histogram):
            raise TypeError(f"{self.name!r} is a histogram; use observe()")
        child.inc(amount)

    def set(self, value: float) -> None:
        child = self._default()
        if not isinstance(child, Gauge):
            raise TypeError(f"{self.name!r} is not a gauge")
        child.set(value)

    def set_total(self, value: float) -> None:
        child = self._default()
        if not isinstance(child, Counter):
            raise TypeError(f"{self.name!r} is not a counter")
        child.set_total(value)

    def observe(self, value: float) -> None:
        child = self._default()
        if not isinstance(child, Histogram):
            raise TypeError(f"{self.name!r} is not a histogram")
        child.observe(value)

    def samples(self) -> Iterator[tuple[dict[str, str], Child]]:
        """``(labels, child)`` pairs in sorted label order."""
        for key in sorted(self._children):
            yield dict(zip(self.labelnames, key)), self._children[key]


class MetricsRegistry:
    """An ordered collection of metric families."""

    def __init__(self) -> None:
        self._families: dict[str, MetricFamily] = {}

    def _register(
        self,
        name: str,
        help: str,
        type: str,
        labelnames: Sequence[str],
        buckets: Sequence[float] | None = None,
    ) -> MetricFamily:
        existing = self._families.get(name)
        if existing is not None:
            if (
                existing.type != type
                or existing.labelnames != tuple(labelnames)
                or existing.help != help
            ):
                raise ValueError(f"metric {name!r} already registered with a different schema")
            return existing
        family = MetricFamily(name, help, type, labelnames, buckets)
        self._families[name] = family
        return family

    def counter(self, name: str, help: str, labelnames: Sequence[str] = ()) -> MetricFamily:
        return self._register(name, help, "counter", labelnames)

    def gauge(self, name: str, help: str, labelnames: Sequence[str] = ()) -> MetricFamily:
        return self._register(name, help, "gauge", labelnames)

    def histogram(
        self,
        name: str,
        help: str,
        buckets: Sequence[float],
        labelnames: Sequence[str] = (),
    ) -> MetricFamily:
        return self._register(name, help, "histogram", labelnames, buckets)

    def collect(self) -> Iterable[MetricFamily]:
        """Families in registration order."""
        return self._families.values()

    def get(self, name: str) -> MetricFamily:
        return self._families[name]

    def __contains__(self, name: str) -> bool:
        return name in self._families
