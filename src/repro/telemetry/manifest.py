"""Run manifests: who/what/where a measurement came from.

Every exported telemetry snapshot (and every perf-trajectory entry in
``BENCH_streaming.json``) carries enough host and topology metadata to be
comparable across machines and commits: interpreter and numpy versions, CPU
count, platform, and the git revision the tree was at.  The helpers here
are the single source of that metadata — the exporters, the benchmark
trajectory, and the CLI all call :func:`host_manifest` /
:func:`run_manifest` rather than rolling their own.
"""

from __future__ import annotations

import os
import platform
import subprocess
import time
from pathlib import Path
from typing import TYPE_CHECKING, Any

import numpy as np

if TYPE_CHECKING:
    from ..nn.graph import LayerGraph

__all__ = ["COMPARABLE_KEYS", "host_manifest", "run_manifest", "manifest_delta"]

# The host-manifest fields that make two measurements speed-comparable.
# Revision is deliberately absent: trajectory entries differ by revision
# by design — what must match for a fair perf comparison is the toolchain
# and the machine.
COMPARABLE_KEYS = ("python", "numpy", "platform", "machine", "cpu_count")

_REPO_DIR = Path(__file__).resolve().parent


def _git(args: list[str]) -> str:
    try:
        out = subprocess.run(
            ["git", *args],
            capture_output=True,
            text=True,
            cwd=_REPO_DIR,
            timeout=10,
        )
        if out.returncode == 0 and out.stdout.strip():
            return out.stdout.strip()
    except OSError:
        pass
    return "unknown"


def host_manifest() -> dict[str, Any]:
    """Host + toolchain metadata: everything that affects simulator speed."""
    return {
        "revision": _git(["rev-parse", "--short", "HEAD"]),
        "git_describe": _git(["describe", "--always", "--dirty", "--tags"]),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count() or 1,
    }


def manifest_delta(
    a: dict[str, Any],
    b: dict[str, Any],
    keys: tuple[str, ...] = COMPARABLE_KEYS,
) -> dict[str, tuple[Any, Any]]:
    """Host-manifest fields that differ between two manifests/entries.

    An empty dict means the two measurements came from an equivalent host
    and toolchain; anything else annotates a cross-host comparison (the
    perf diff engine surfaces it rather than judging such deltas blindly).
    """
    return {k: (a.get(k), b.get(k)) for k in keys if a.get(k) != b.get(k)}


def run_manifest(
    graph: "LayerGraph | None" = None,
    *,
    seed: int | None = None,
    images: int | None = None,
    fclk_mhz: float | None = None,
    extra: dict[str, Any] | None = None,
) -> dict[str, Any]:
    """A full run manifest: host metadata plus the run's topology and inputs."""
    manifest: dict[str, Any] = {
        "schema": "repro-run-manifest/1",
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        **host_manifest(),
    }
    if graph is not None:
        spec = graph.input_spec
        manifest["topology"] = {
            "name": graph.name,
            "nodes": len(graph.nodes),
            "input": [spec.height, spec.width, spec.channels],
            "input_bits": spec.bits,
        }
    if seed is not None:
        manifest["seed"] = int(seed)
    if images is not None:
        manifest["images"] = int(images)
    if fclk_mhz is not None:
        manifest["fclk_mhz"] = float(fclk_mhz)
    if extra:
        manifest.update(extra)
    return manifest
