"""``python -m repro top``: a live dashboard over a running simulation.

The dashboard is just another telemetry sample listener: every time the
collector samples the engine (every ``sample_every`` simulated cycles) the
listener re-renders kernel utilization bars, FIFO occupancy, and the
throughput headline — while the simulation keeps running in-process.

On a real terminal it redraws in place with ANSI cursor control (no curses
dependency: ``ESC[H``/``ESC[J`` are universal and keep the renderer usable
inside pipes and CI logs); when stdout is not a TTY it degrades to
periodic plain-text frames.  Wall-clock throttling keeps rendering off the
simulation's critical path: frames are dropped, samples are not.
"""

from __future__ import annotations

import sys
import time
from typing import IO, TYPE_CHECKING, Any

if TYPE_CHECKING:
    from .collector import Telemetry

__all__ = ["Dashboard", "render_frame"]

_BAR_WIDTH = 24


def _bar(fraction: float, width: int = _BAR_WIDTH) -> str:
    fraction = min(1.0, max(0.0, fraction))
    filled = int(round(fraction * width))
    return "#" * filled + "." * (width - filled)


def render_frame(telemetry: "Telemetry", max_streams: int = 12) -> str:
    """One dashboard frame as plain text (also what the tests assert on)."""
    last = telemetry.last
    cycle = last.get("cycle", 0)
    images = last.get("images", 0)
    fps = last.get("fps")
    interval = last.get("interval")
    initiation = last.get("initiation")
    title = "run complete" if telemetry.finished else "running"
    head = [f"repro top — {title} @ cycle {cycle:,} | images {images}"]
    parts = []
    if fps is not None:
        parts.append(f"{fps:,.1f} FPS @ {telemetry.fclk_mhz:g} MHz")
    if interval is not None:
        parts.append(f"interval {interval:,.0f} cyc/img")
    if initiation is not None:
        parts.append(f"II {initiation:,} cyc")
    if parts:
        head.append("  " + " | ".join(parts))
    p99 = last.get("latency_p99")
    queue_depth = last.get("queue_depth")
    if p99 is not None:
        lat = (
            f"  latency p50 {last['latency_p50']:,} | p95 {last['latency_p95']:,} "
            f"| p99 {p99:,} | max {last['latency_max']:,} cyc"
        )
        if queue_depth:
            lat += f" | host queue {queue_depth}"
        head.append(lat)
    elif telemetry.finished and images == 0:
        head.append("  latency: n/a (no completed images)")

    lines = head + ["", "  kernel                  utilization              busy/starved/blocked"]
    for row in telemetry.kernel_rows():
        lines.append(
            f"  {row['name']:<22} [{_bar(row['utilization'])}] "
            f"{row['utilization']:>6.1%}  {row['busy']:,}/{row['starved']:,}/{row['blocked']:,}"
        )

    streams = telemetry.stream_rows()
    streams.sort(key=lambda r: (-(r["occupancy"] / r["capacity"] if r["capacity"] else 0), r["name"]))
    shown = streams[:max_streams]
    if shown:
        lines += ["", "  stream                  occupancy                occ/cap (peak)"]
        for row in shown:
            frac = row["occupancy"] / row["capacity"] if row["capacity"] else 0.0
            lines.append(
                f"  {row['name']:<22} [{_bar(frac)}] "
                f"{row['occupancy']:>6,}/{row['capacity']:,} ({row['peak']:,})"
            )
        if len(streams) > len(shown):
            lines.append(f"  ... and {len(streams) - len(shown)} more streams")
    return "\n".join(lines)


class Dashboard:
    """A sample listener that re-renders the dashboard as the run progresses."""

    def __init__(
        self,
        out: IO[str] | None = None,
        min_interval_s: float = 0.2,
        ansi: bool | None = None,
        max_streams: int = 12,
    ) -> None:
        self.out: IO[str] = out if out is not None else sys.stdout
        self.min_interval_s = min_interval_s
        if ansi is None:
            ansi = bool(getattr(self.out, "isatty", lambda: False)())
        self.ansi = ansi
        self.max_streams = max_streams
        self.frames = 0
        self._last_render = 0.0

    def __call__(self, telemetry: "Telemetry", cycle: int) -> None:
        now = time.monotonic()
        if not telemetry.finished and now - self._last_render < self.min_interval_s:
            return  # drop the frame, keep the sample cheap
        self._last_render = now
        frame = render_frame(telemetry, max_streams=self.max_streams)
        if self.ansi:
            # Home the cursor and clear to end of screen: an in-place redraw.
            self.out.write("\x1b[H\x1b[J" + frame + "\n")
        else:
            if self.frames:
                self.out.write("\n")
            self.out.write(frame + "\n")
        self.out.flush()
        self.frames += 1
