"""Bottleneck attribution: who is stalling whom, and through which edge.

``python -m repro stats`` runs a pipeline (or inspects one that just ran)
and produces a ranked report: every kernel with its stall-adjusted
utilization (``busy / (busy + starved + blocked)``), a verdict naming the
dominant stall cause, and the specific edge responsible — the input FIFO
that ran dry for a starved kernel, the output FIFO that filled for a
blocked one.  Edge names are the engine's stream names, the same strings
:mod:`repro.dataflow.verify` anchors its diagnostics to, so the report and
``repro check`` point at the same place (tested property: on an
undersized-skip topology the attribution's root edge equals V301's
``where``).

For a deadlocked run the root cause is found by walking the blame chain
downstream: start from any kernel blocked on a full output and follow full
streams reader-to-reader until the reader is no longer blocked — the last
full stream is the root edge (for an undersized skip FIFO: the fork is
blocked on the full skip arm while the adder starves on port 0, so the
walk stops at the skip stream, exactly where V301 points).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

import numpy as np

if TYPE_CHECKING:
    from ..dataflow.engine import Engine
    from ..dataflow.manager import Pipeline
    from ..nn.graph import LayerGraph
    from .collector import Telemetry

__all__ = [
    "KernelAttribution",
    "AttributionReport",
    "deadlock_root_edge",
    "attribute_run",
    "kernel_attributions",
    "run_attributed",
]


@dataclass(slots=True)
class KernelAttribution:
    """One kernel's stall accounting over a run."""

    name: str
    busy: int
    starved: int
    blocked: int
    idle: int
    utilization: float  # busy / (busy + starved + blocked)
    verdict: str  # "busy" | "starved" | "blocked" | "idle"
    edge: str | None  # the starving input / back-pressuring output stream
    edge_role: str | None  # "starving" | "backpressure"


@dataclass(slots=True)
class AttributionReport:
    """The full bottleneck report for one run."""

    graph_name: str
    cycles: int
    aborted: bool
    abort_message: str | None
    fclk_mhz: float
    images: int
    latency_cycles: int | None
    interval_cycles: float | None
    fps: float | None
    initiation_cycles: int | None
    kernels: list[KernelAttribution] = field(default_factory=list)
    root_edge: str | None = None
    root_capacity: int | None = None
    root_required: int | None = None
    links: list[dict[str, Any]] = field(default_factory=list)
    bram: list[dict[str, Any]] = field(default_factory=list)

    def render(self) -> str:
        status = "ABORTED (deadlock or budget)" if self.aborted else "ok"
        lines = [
            f"stats {self.graph_name}: {status} after {self.cycles:,} cycles, "
            f"{self.images} image(s) completed"
        ]
        if self.root_edge is not None:
            detail = ""
            if self.root_required is not None and self.root_capacity is not None:
                detail = (
                    f" (capacity {self.root_capacity}, minimum safe capacity "
                    f"{self.root_required} per the SIII-B5 solver)"
                )
            lines.append(f"  root bottleneck edge: {self.root_edge!r}{detail}")
        lines.append("  kernels by stall-adjusted utilization (worst first):")
        header = f"    {'kernel':<22} {'util':>6} {'busy':>10} {'starved':>10} {'blocked':>10} {'idle':>10}  cause"
        lines.append(header)
        for k in self.kernels:
            cause = k.verdict
            if k.edge is not None and k.edge_role is not None:
                cause += f" ({k.edge_role} edge {k.edge!r})"
            lines.append(
                f"    {k.name:<22} {k.utilization:>6.1%} {k.busy:>10,} {k.starved:>10,} "
                f"{k.blocked:>10,} {k.idle:>10,}  {cause}"
            )
        lines.append("  paper summary:")
        # Explicit n/a markers: an aborted/deadlocked run may have zero
        # completed images, and silently omitting the headline quantities
        # reads like an oversight rather than a measurement that does not
        # exist.
        if self.initiation_cycles is not None:
            lines.append(f"    initiation interval: {self.initiation_cycles:,} cycles  [SIV-B4]")
        else:
            lines.append("    initiation interval: n/a (no kernel became active)")
        if self.latency_cycles is not None:
            lines.append(f"    first-image latency: {self.latency_cycles:,} cycles")
        else:
            lines.append("    first-image latency: n/a (no image completed)")
        if self.interval_cycles is not None and self.fps is not None:
            lines.append(
                f"    steady-state interval: {self.interval_cycles:,.1f} cycles/image "
                f"-> {self.fps:,.1f} FPS @ {self.fclk_mhz:g} MHz"
            )
        else:
            lines.append(
                "    steady-state interval / FPS: n/a (needs two completed images)"
            )
        for link in self.links:
            lines.append(
                f"    link {link['edge']}: {link['required_mbps']:,.0f} Mbps required vs "
                f"{link['capacity_mbps']:,.0f} Mbps capacity "
                f"({link['utilization']:.1%} used)  [SIII-B6]"
            )
        for row in self.bram:
            lines.append(
                f"    BRAM {row['node']}: wastes {row['waste']:.0%} of {row['blocks']} "
                f"M20K block(s)  [SIII-B1a]"
            )
        return "\n".join(lines)


def deadlock_root_edge(engine: "Engine") -> str | None:
    """Walk the blame chain to the full stream that originates the backpressure."""

    def blocked_output(kernel: Any) -> Any:
        for stream in kernel.outputs:
            if len(stream._fifo) >= stream.capacity:
                return stream
        return None

    start = None
    for kernel in engine.kernels:
        start = blocked_output(kernel)
        if start is not None:
            break
    if start is None:
        return None
    visited = {id(start)}
    current = start
    while True:
        reader = current.reader
        if reader is None:
            return current.name
        downstream = blocked_output(reader)
        if downstream is None or id(downstream) in visited:
            return current.name
        visited.add(id(downstream))
        current = downstream


def _starving_edge(kernel: Any) -> str | None:
    """The input FIFO that chronically ran dry (lowest high-water mark)."""
    if not kernel.inputs:
        return None
    return min(kernel.inputs, key=lambda s: (s.stats.max_occupancy, s.name)).name


def _backpressure_edge(kernel: Any) -> str | None:
    """The output FIFO that pushed back (most rejections, then fullest)."""
    if not kernel.outputs:
        return None
    return max(
        kernel.outputs,
        key=lambda s: (s.stats.full_rejections, len(s._fifo) / s.capacity, s.name),
    ).name


def kernel_attributions(engine: "Engine") -> list[KernelAttribution]:
    """Per-kernel stall accounting for every kernel of a finished engine.

    The rows (in engine order, unsorted) carry each kernel's stall-adjusted
    utilization, dominant verdict, and the specific starving or
    back-pressuring edge — the accounting both :func:`attribute_run` and
    the latency tail attribution rank bottlenecks with.
    """
    kernels: list[KernelAttribution] = []
    for kernel in engine.kernels:
        stats = kernel.stats
        busy = stats.active_cycles
        starved = stats.input_starved_cycles
        blocked = stats.output_blocked_cycles
        idle = stats.idle_cycles
        stalls = busy + starved + blocked
        util = busy / stalls if stalls else 0.0
        dominant = max(
            (("busy", busy), ("starved", starved), ("blocked", blocked), ("idle", idle)),
            key=lambda pair: pair[1],
        )[0]
        edge: str | None = None
        role: str | None = None
        if dominant == "starved":
            edge, role = _starving_edge(kernel), "starving"
        elif dominant == "blocked":
            edge, role = _backpressure_edge(kernel), "backpressure"
        kernels.append(
            KernelAttribution(
                name=kernel.name,
                busy=busy,
                starved=starved,
                blocked=blocked,
                idle=idle,
                utilization=util,
                verdict=dominant,
                edge=edge,
                edge_role=role,
            )
        )
    return kernels


def attribute_run(
    pipeline: "Pipeline",
    cycles: int,
    aborted: bool = False,
    abort_message: str | None = None,
) -> AttributionReport:
    """Build the attribution report from a pipeline's post-run engine state."""
    from ..hardware.resources import weight_cache_blocks
    from ..nn.graph import ConvNode

    engine = pipeline.engine
    kernels = kernel_attributions(engine)
    first_actives: list[int] = [
        k.stats.first_active_cycle
        for k in engine.kernels
        if k.stats.first_active_cycle is not None
    ]
    kernels.sort(key=lambda k: (k.utilization, k.name))

    completions = sorted(pipeline.sink.completion_cycles)
    latency = completions[0] if completions else None
    interval: float | None = None
    fps: float | None = None
    if len(completions) >= 2:
        interval = (completions[-1] - completions[0]) / (len(completions) - 1)
        if interval > 0:
            fps = pipeline.fclk_mhz * 1e6 / interval

    root_edge: str | None = None
    root_capacity: int | None = None
    root_required: int | None = None
    if aborted:
        root_edge = deadlock_root_edge(engine)
        if root_edge is not None:
            stream = next((s for s in engine.streams if s.name == root_edge), None)
            if stream is not None:
                root_capacity = stream.capacity
            # If the root is a skip FIFO, the SIII-B5 solver names the
            # minimum safe capacity — the same number V301 reports.
            for add_name, skip in pipeline.skip_streams.items():
                if skip.name == root_edge:
                    from ..dataflow.verify import solve_skip_capacities

                    root_required = solve_skip_capacities(
                        pipeline.graph,
                        partition=pipeline.partition,
                        link=pipeline.link,
                        fclk_mhz=pipeline.fclk_mhz,
                    )[add_name]
                    break

    links: list[dict[str, Any]] = []
    for crossing in pipeline.crossings:
        capacity_mbps = crossing.link.bandwidth_gbps * 1000.0
        links.append(
            {
                "edge": f"{crossing.edge[0]}->{crossing.edge[1]}",
                "required_mbps": crossing.required_mbps,
                "capacity_mbps": capacity_mbps,
                "utilization": crossing.required_mbps / capacity_mbps if capacity_mbps else 0.0,
                "link": crossing.link.name,
            }
        )

    bram: list[dict[str, Any]] = []
    for name, node in pipeline.graph.nodes.items():
        if not isinstance(node, ConvNode):
            continue
        blocks, waste = weight_cache_blocks(node)
        if blocks and waste >= 0.25:
            bram.append({"node": name, "blocks": blocks, "waste": waste})

    return AttributionReport(
        graph_name=pipeline.graph.name,
        cycles=cycles,
        aborted=aborted,
        abort_message=abort_message,
        fclk_mhz=pipeline.fclk_mhz,
        images=len(completions),
        latency_cycles=latency,
        interval_cycles=interval,
        fps=fps,
        initiation_cycles=max(first_actives) if first_actives else None,
        kernels=kernels,
        root_edge=root_edge,
        root_capacity=root_capacity,
        root_required=root_required,
        links=links,
        bram=bram,
    )


def run_attributed(
    graph: "LayerGraph",
    images: np.ndarray,
    *,
    partition: list[list[str]] | None = None,
    fclk_mhz: float = 105.0,
    max_cycles: int = 50_000_000,
    fast: bool = True,
    use_bitops: bool = False,
    skip_sizing: "str | dict[str, int]" = "exact",
    telemetry: "Telemetry | None" = None,
) -> AttributionReport:
    """Run ``images`` through ``graph`` and attribute the result.

    Unlike :func:`repro.dataflow.manager.simulate`, a non-converging run
    (deadlock / exhausted cycle budget) does not propagate: the engine's
    settled stall counters at the abort point are exactly what the
    attribution needs, so the report is built either way and carries the
    abort message.
    """
    from ..dataflow.manager import build_pipeline

    images = np.asarray(images)
    if images.ndim == 3:
        images = images[None]
    pipeline = build_pipeline(
        graph,
        images,
        use_bitops=use_bitops,
        partition=partition,
        fclk_mhz=fclk_mhz,
        skip_sizing=skip_sizing,
    )
    if telemetry is not None:
        telemetry.attach_pipeline(pipeline)
    aborted = False
    abort_message: str | None = None
    cycles = 0
    try:
        cycles = pipeline.engine.run(
            lambda: pipeline.sink.done,
            max_cycles=max_cycles,
            fast=fast,
            telemetry=telemetry,
        )
    except RuntimeError as err:
        aborted = True
        abort_message = str(err)
        cycles = max_cycles
        if telemetry is not None and not telemetry.finished:
            telemetry.finish(cycles)
    return attribute_run(pipeline, cycles, aborted=aborted, abort_message=abort_message)
