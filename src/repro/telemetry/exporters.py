"""Exporters: Prometheus text exposition and JSON snapshots.

Two serialisations of one :class:`~repro.telemetry.registry.MetricsRegistry`:

* :func:`render_prometheus` — the Prometheus text exposition format
  (``# HELP`` / ``# TYPE`` headers, escaped label values, cumulative
  ``le``-bucket histograms, a ``repro_build_info`` info-metric carrying the
  run manifest) suitable for a file-based scrape or pushgateway.
* :func:`snapshot_registry` — a JSON-serialisable structure with the same
  content, written by ``repro simulate --json`` and the periodic snapshot
  files.

:func:`validate_exposition` is a self-contained lint of the exposition
format (name/label grammar, header presence, histogram invariants) used by
the CI smoke job and the test suite, so the exporter cannot silently drift
from what a real Prometheus scraper would accept.

File writes go through :func:`write_text_file`, which refuses to overwrite
an existing file unless ``force`` is set — the same contract ``repro trace
--out`` follows.
"""

from __future__ import annotations

import json
import math
import re
from pathlib import Path
from typing import Any

from .registry import Counter, Gauge, Histogram, MetricsRegistry

__all__ = [
    "render_prometheus",
    "snapshot_registry",
    "validate_exposition",
    "write_text_file",
    "PeriodicExporter",
]

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\\n]|\\["\\n])*)"')
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r" (?P<value>[^ ]+)$"
)


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _fmt(value: float) -> str:
    """Prometheus sample-value formatting (``+Inf``, integral floats bare)."""
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if math.isnan(value):
        return "NaN"
    if isinstance(value, int) or float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _labels_block(labels: dict[str, str]) -> str:
    if not labels:
        return ""
    body = ",".join(f'{name}="{_escape_label(value)}"' for name, value in labels.items())
    return "{" + body + "}"


def render_prometheus(registry: MetricsRegistry, manifest: dict[str, Any] | None = None) -> str:
    """The registry in Prometheus text exposition format."""
    lines: list[str] = []
    if manifest:
        # Info-metric idiom: constant 1 with the manifest's scalar entries
        # as labels (nested structures don't fit the label model).
        info_labels = {
            key: str(value)
            for key, value in sorted(manifest.items())
            if isinstance(value, (str, int, float, bool))
        }
        lines.append("# HELP repro_build_info Run manifest (host, toolchain, topology).")
        lines.append("# TYPE repro_build_info gauge")
        lines.append(f"repro_build_info{_labels_block(info_labels)} 1")
    for family in registry.collect():
        lines.append(f"# HELP {family.name} {family.help}")
        lines.append(f"# TYPE {family.name} {family.type}")
        for labels, child in family.samples():
            block = _labels_block(labels)
            if isinstance(child, (Counter, Gauge)):
                lines.append(f"{family.name}{block} {_fmt(child.value)}")
            elif isinstance(child, Histogram):
                for upper, cum in child.cumulative():
                    bucket_labels = dict(labels)
                    bucket_labels["le"] = _fmt(upper)
                    lines.append(f"{family.name}_bucket{_labels_block(bucket_labels)} {cum}")
                lines.append(f"{family.name}_sum{block} {_fmt(child.sum)}")
                lines.append(f"{family.name}_count{block} {child.count}")
    return "\n".join(lines) + "\n"


def snapshot_registry(registry: MetricsRegistry) -> list[dict[str, Any]]:
    """The registry as a JSON-serialisable list of metric families."""
    out: list[dict[str, Any]] = []
    for family in registry.collect():
        samples: list[dict[str, Any]] = []
        for labels, child in family.samples():
            if isinstance(child, (Counter, Gauge)):
                samples.append({"labels": labels, "value": child.value})
            elif isinstance(child, Histogram):
                samples.append(
                    {
                        "labels": labels,
                        "buckets": [
                            ["+Inf" if math.isinf(le) else le, cum]
                            for le, cum in child.cumulative()
                        ],
                        "sum": child.sum,
                        "count": child.count,
                    }
                )
        out.append(
            {
                "name": family.name,
                "type": family.type,
                "help": family.help,
                "samples": samples,
            }
        )
    return out


def _parse_value(text: str) -> float | None:
    if text == "+Inf":
        return math.inf
    if text == "-Inf":
        return -math.inf
    try:
        return float(text)
    except ValueError:
        return None


def validate_exposition(text: str) -> list[str]:
    """Lint a Prometheus text exposition; returns problems (empty = valid)."""
    problems: list[str] = []
    typed: dict[str, str] = {}
    helped: set[str] = set()
    # base name -> {labels-without-le -> last cumulative count} for bucket checks
    bucket_runs: dict[tuple[str, str], tuple[float, float]] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("# HELP "):
            parts = line.split(" ", 3)
            if len(parts) < 4 or not parts[3].strip():
                problems.append(f"line {lineno}: HELP without text")
            else:
                helped.add(parts[2])
            continue
        if line.startswith("# TYPE "):
            parts = line.split(" ")
            if len(parts) != 4 or parts[3] not in ("counter", "gauge", "histogram"):
                problems.append(f"line {lineno}: malformed TYPE line {line!r}")
            else:
                typed[parts[2]] = parts[3]
            continue
        if line.startswith("#"):
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            problems.append(f"line {lineno}: unparseable sample {line!r}")
            continue
        name = match.group("name")
        labels_text = match.group("labels")
        labels: dict[str, str] = {}
        if labels_text:
            consumed = 0
            for lmatch in _LABEL_RE.finditer(labels_text):
                labels[lmatch.group(1)] = lmatch.group(2)
                consumed += len(lmatch.group(0))
            stripped = labels_text.replace(",", "")
            if consumed != len(stripped):
                problems.append(f"line {lineno}: malformed label block {{{labels_text}}}")
        value = _parse_value(match.group("value"))
        if value is None:
            problems.append(f"line {lineno}: unparseable value {match.group('value')!r}")
            continue
        base = name
        for suffix in ("_bucket", "_sum", "_count"):
            trimmed = name.removesuffix(suffix)
            if trimmed != name and typed.get(trimmed) == "histogram":
                base = trimmed
                break
        if base not in typed:
            problems.append(f"line {lineno}: sample {name!r} has no TYPE header")
            continue
        if base not in helped and base != "repro_build_info":
            problems.append(f"line {lineno}: sample {name!r} has no HELP header")
        if typed[base] == "counter" and value < 0:
            problems.append(f"line {lineno}: counter {name!r} is negative ({value})")
        if name == base + "_bucket" and typed[base] == "histogram":
            le = _parse_value(labels.get("le", ""))
            if le is None:
                problems.append(f"line {lineno}: histogram bucket without valid 'le' label")
                continue
            series = (base, repr(sorted((k, v) for k, v in labels.items() if k != "le")))
            prev = bucket_runs.get(series)
            if prev is not None:
                prev_le, prev_cum = prev
                if le <= prev_le:
                    problems.append(f"line {lineno}: bucket le={le} not increasing")
                if value < prev_cum:
                    problems.append(f"line {lineno}: bucket count {value} decreased")
            bucket_runs[series] = (le, value)
    for (base, _), (last_le, _) in bucket_runs.items():
        if not math.isinf(last_le):
            problems.append(f"histogram {base!r}: bucket run does not end at le=+Inf")
    return problems


def write_text_file(path: str | Path, text: str, force: bool = False) -> Path:
    """Write ``text`` to ``path``; refuse to overwrite unless ``force``."""
    target = Path(path)
    if target.exists() and not force:
        raise FileExistsError(
            f"{target} exists; pass --force (or force=True) to overwrite"
        )
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(text)
    return target


class PeriodicExporter:
    """A sample listener that writes exposition/snapshot files as a run progresses.

    Register with :meth:`Telemetry.add_listener`; every ``every_samples``-th
    sample (and unconditionally on the final sample) it rewrites the
    configured Prometheus and/or JSON files in place — the file-based
    scrape pattern.  The overwrite guard applies once, up front: if a
    target exists and ``force`` is false, construction fails before the
    run starts rather than clobbering mid-run.
    """

    def __init__(
        self,
        prom_path: str | Path | None = None,
        json_path: str | Path | None = None,
        every_samples: int = 1,
        force: bool = False,
    ) -> None:
        if prom_path is None and json_path is None:
            raise ValueError("PeriodicExporter needs at least one output path")
        if every_samples < 1:
            raise ValueError(f"every_samples must be >= 1, got {every_samples!r}")
        self.prom_path = Path(prom_path) if prom_path is not None else None
        self.json_path = Path(json_path) if json_path is not None else None
        self.every_samples = every_samples
        self._samples_seen = 0
        for target in (self.prom_path, self.json_path):
            if target is not None and target.exists() and not force:
                raise FileExistsError(
                    f"{target} exists; pass --force (or force=True) to overwrite"
                )

    def __call__(self, telemetry: Any, cycle: int) -> None:
        self._samples_seen += 1
        if self._samples_seen % self.every_samples and not telemetry.finished:
            return
        self.write(telemetry)

    def write(self, telemetry: Any) -> None:
        if self.prom_path is not None:
            self.prom_path.parent.mkdir(parents=True, exist_ok=True)
            self.prom_path.write_text(telemetry.export_prometheus())
        if self.json_path is not None:
            self.json_path.parent.mkdir(parents=True, exist_ok=True)
            self.json_path.write_text(json.dumps(telemetry.export_json(), indent=2) + "\n")
