"""Open-loop load generation: arrival processes, offered-vs-achieved FPS.

The paper evaluates its accelerator the way FINN and Blott et al.'s scaling
study do — latency/throughput trade-off curves under a sustained request
stream — while a plain ``simulate`` call streams images back-to-back (a
closed loop that can never expose queueing).  This module injects images at
a **target rate** instead: a deterministic arrival schedule (fixed-rate or
Poisson via an injected seeded RNG) feeds the host source's open-loop mode,
and the run reports offered vs achieved FPS, host-queue depth, and the full
per-image latency distribution from :mod:`repro.telemetry.latency`.

:func:`sweep` runs a ladder of rates and emits the FINN-style
latency-throughput curve as JSON (schema ``repro-load-sweep/1``): as the
offered rate approaches the pipeline's steady-state capacity, achieved FPS
saturates and tail latency grows without bound — the knee of that curve is
the serving capacity the ROADMAP's north star cares about.

Everything is deterministic given (images, rate, seed): the schedule is
pure arithmetic over a seeded RNG and the simulator is cycle-exact, so two
runs produce bit-identical percentiles — a CI-testable property.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

import numpy as np

from .latency import LatencyReport, latency_report

if TYPE_CHECKING:
    from ..nn.graph import LayerGraph

__all__ = [
    "ArrivalSchedule",
    "LoadResult",
    "cycles_per_image",
    "fixed_rate_schedule",
    "make_schedule",
    "poisson_schedule",
    "run_load",
    "spawn_poisson_schedules",
    "sweep",
]

DEFAULT_FCLK_MHZ = 105.0


def cycles_per_image(rate_fps: float, fclk_mhz: float = DEFAULT_FCLK_MHZ) -> float:
    """Mean inter-arrival gap in fabric cycles for a target FPS."""
    if rate_fps <= 0:
        raise ValueError(f"rate must be > 0 FPS, got {rate_fps!r}")
    return fclk_mhz * 1e6 / rate_fps


@dataclass(slots=True)
class ArrivalSchedule:
    """A deterministic open-loop arrival process."""

    kind: str  # "fixed" | "poisson"
    rate_fps: float  # offered rate
    fclk_mhz: float
    seed: int | None  # None for the (seedless) fixed process
    cycles: list[int]  # non-decreasing arrival cycle per image

    @property
    def n_images(self) -> int:
        return len(self.cycles)

    def as_dict(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "rate_fps": self.rate_fps,
            "fclk_mhz": self.fclk_mhz,
            "seed": self.seed,
            "cycles": list(self.cycles),
        }


def fixed_rate_schedule(
    n_images: int, rate_fps: float, fclk_mhz: float = DEFAULT_FCLK_MHZ
) -> ArrivalSchedule:
    """Image *i* arrives at ``round(i * gap)`` — a metronome at the target rate."""
    gap = cycles_per_image(rate_fps, fclk_mhz)
    cycles = [round(i * gap) for i in range(n_images)]
    return ArrivalSchedule("fixed", float(rate_fps), float(fclk_mhz), None, cycles)


def poisson_schedule(
    n_images: int,
    rate_fps: float,
    seed: int,
    fclk_mhz: float = DEFAULT_FCLK_MHZ,
    rng: np.random.Generator | None = None,
) -> ArrivalSchedule:
    """Exponential inter-arrival gaps from a seeded (or injected) RNG.

    The first image arrives at cycle 0; subsequent gaps are drawn from
    ``Exp(mean = gap cycles)``.  Passing ``rng`` overrides the seed (for
    property tests that want to drive the process directly).
    """
    gap = cycles_per_image(rate_fps, fclk_mhz)
    generator = rng if rng is not None else np.random.default_rng(seed)
    gaps = generator.exponential(gap, size=max(0, n_images - 1))
    cycles = [0]
    at = 0.0
    for g in gaps:
        at += float(g)
        cycles.append(round(at))
    return ArrivalSchedule("poisson", float(rate_fps), float(fclk_mhz), seed, cycles[:n_images])


def spawn_poisson_schedules(
    n_replicas: int,
    n_images: int,
    rate_fps: float,
    seed: int,
    fclk_mhz: float = DEFAULT_FCLK_MHZ,
) -> list[ArrivalSchedule]:
    """One *independent* Poisson arrival stream per replica, from one seed.

    Seeding N replicas with the same integer (``poisson_schedule(..,
    seed)`` N times) replays the identical exponential gap sequence on
    every replica: all queues fill and drain in lockstep, which understates
    queueing relative to genuinely independent traffic — exactly the bias a
    fleet capacity answer must not carry.  This helper derives one child
    stream per replica via :meth:`numpy.random.SeedSequence.spawn`, the
    construction NumPy guarantees to be statistically independent, while
    staying fully deterministic given ``(n_replicas, n_images, rate, seed)``.

    ``rate_fps`` is the *per-replica* offered rate; the returned schedules
    are indexed by replica.
    """
    if n_replicas < 1:
        raise ValueError(f"need at least one replica, got {n_replicas!r}")
    children = np.random.SeedSequence(seed).spawn(n_replicas)
    schedules = []
    for child in children:
        sched = poisson_schedule(
            n_images, rate_fps, seed, fclk_mhz, rng=np.random.default_rng(child)
        )
        schedules.append(sched)
    return schedules


def make_schedule(
    n_images: int,
    rate_fps: float,
    process: str = "fixed",
    seed: int = 0,
    fclk_mhz: float = DEFAULT_FCLK_MHZ,
) -> ArrivalSchedule:
    """Dispatch on the process name (``fixed`` | ``poisson``)."""
    if process == "fixed":
        return fixed_rate_schedule(n_images, rate_fps, fclk_mhz)
    if process == "poisson":
        return poisson_schedule(n_images, rate_fps, seed, fclk_mhz)
    raise ValueError(f"arrival process must be 'fixed' or 'poisson', got {process!r}")


@dataclass(slots=True)
class LoadResult:
    """One open-loop run at one offered rate."""

    schedule: ArrivalSchedule
    cycles: int
    report: LatencyReport
    offered_fps: float
    achieved_fps: float | None  # None with < 2 completions
    queue_depth_peak: int
    aborted: bool
    abort_message: str | None

    def slo_violated(self, p99_cycles: int) -> bool:
        """True when the run misses a p99 *sojourn*-latency SLO (or aborted).

        Sojourn (arrival to completion) is what a client experiences: under
        overload the fabric back-pressures admission, so service latency
        stays flat while the host queue absorbs the excess — only sojourn
        exposes an undersized topology.  A run with no completed images
        cannot demonstrate SLO compliance, so it counts as a violation
        rather than a vacuous pass.
        """
        p99 = self.report.sojourn.p99
        return self.aborted or p99 is None or p99 > p99_cycles

    def as_dict(self) -> dict[str, Any]:
        return {
            "schema": "repro-load/1",
            "schedule": self.schedule.as_dict(),
            "cycles": self.cycles,
            "offered_fps": self.offered_fps,
            "achieved_fps": self.achieved_fps,
            "queue_depth_peak": self.queue_depth_peak,
            "aborted": self.aborted,
            "abort_message": self.abort_message,
            "latency": self.report.as_dict(),
        }

    def render(self) -> str:
        achieved = f"{self.achieved_fps:,.1f}" if self.achieved_fps is not None else "n/a"
        status = " ABORTED" if self.aborted else ""
        lines = [
            f"load {self.report.graph_name}:{status} offered {self.offered_fps:,.1f} FPS "
            f"({self.schedule.kind}), achieved {achieved} FPS, "
            f"peak host queue {self.queue_depth_peak} image(s)"
        ]
        lines.append(self.report.render())
        return "\n".join(lines)


def _queue_depth_peak(schedule: ArrivalSchedule, admissions: list[int]) -> int:
    """Peak count of images arrived but not yet admitted, over all admissions."""
    peak = 0
    for i, admitted_at in enumerate(admissions):
        arrived = sum(1 for a in schedule.cycles if a <= admitted_at)
        waiting = arrived - (i + 1)  # image i just left the queue
        if waiting > peak:
            peak = waiting
    return peak


def run_load(
    graph: "LayerGraph",
    images: np.ndarray,
    *,
    rate_fps: float,
    process: str = "fixed",
    seed: int = 0,
    fclk_mhz: float = DEFAULT_FCLK_MHZ,
    fast: bool = True,
    max_cycles: int = 50_000_000,
    partition: list[list[str]] | None = None,
    use_bitops: bool = False,
    skip_sizing: "str | dict[str, int]" = "exact",
) -> LoadResult:
    """Stream ``images`` through ``graph`` at a target offered rate.

    A non-converging run (deadlock, or a rate so far beyond capacity the
    cycle budget runs out) does not propagate: the per-image records of the
    images that *did* complete are exactly what the latency report needs,
    and the result carries the abort message and an SLO-violating verdict.
    """
    from ..dataflow.manager import build_pipeline

    images = np.asarray(images)
    if images.ndim == 3:
        images = images[None]
    schedule = make_schedule(int(images.shape[0]), rate_fps, process, seed, fclk_mhz)
    pipeline = build_pipeline(
        graph,
        images,
        use_bitops=use_bitops,
        partition=partition,
        fclk_mhz=fclk_mhz,
        skip_sizing=skip_sizing,
        arrival_cycles=schedule.cycles,
    )
    aborted = False
    abort_message: str | None = None
    try:
        cycles = pipeline.engine.run(
            lambda: pipeline.sink.done, max_cycles=max_cycles, fast=fast
        )
    except RuntimeError as err:
        aborted = True
        abort_message = str(err)
        cycles = max_cycles
    report = latency_report(pipeline, cycles)
    completions = pipeline.sink.completion_cycles
    achieved: float | None = None
    if len(completions) >= 2 and completions[-1] > completions[0]:
        achieved = (len(completions) - 1) / (completions[-1] - completions[0]) * fclk_mhz * 1e6
    return LoadResult(
        schedule=schedule,
        cycles=cycles,
        report=report,
        offered_fps=float(rate_fps),
        achieved_fps=achieved,
        queue_depth_peak=_queue_depth_peak(schedule, pipeline.source.admission_cycles),
        aborted=aborted,
        abort_message=abort_message,
    )


def sweep(
    graph: "LayerGraph",
    images: np.ndarray,
    rates: list[float],
    *,
    process: str = "fixed",
    seed: int = 0,
    fclk_mhz: float = DEFAULT_FCLK_MHZ,
    fast: bool = True,
    max_cycles: int = 50_000_000,
    partition: list[list[str]] | None = None,
) -> dict[str, Any]:
    """The FINN-style latency-throughput curve: one open-loop run per rate.

    Returns a JSON-serialisable object (schema ``repro-load-sweep/1``) with
    one point per offered rate: achieved FPS, exact p50/p95/p99/max service
    latency, host-queue peak, and the abort flag for rates beyond capacity.
    """
    if not rates:
        raise ValueError("sweep needs at least one offered rate")
    from .manifest import run_manifest

    points: list[dict[str, Any]] = []
    for rate in rates:
        result = run_load(
            graph,
            images,
            rate_fps=rate,
            process=process,
            seed=seed,
            fclk_mhz=fclk_mhz,
            fast=fast,
            max_cycles=max_cycles,
            partition=partition,
        )
        service = result.report.service
        points.append(
            {
                "offered_fps": result.offered_fps,
                "achieved_fps": result.achieved_fps,
                "images_completed": result.report.n_images,
                "p50_cycles": service.p50,
                "p95_cycles": service.p95,
                "p99_cycles": service.p99,
                "max_cycles": service.max,
                "queue_wait_p99_cycles": result.report.queue_wait.p99,
                "queue_depth_peak": result.queue_depth_peak,
                "run_cycles": result.cycles,
                "aborted": result.aborted,
            }
        )
    return {
        "schema": "repro-load-sweep/1",
        "graph": graph.name,
        "process": process,
        "seed": seed,
        "fclk_mhz": fclk_mhz,
        "images": int(np.asarray(images).shape[0] if np.asarray(images).ndim == 4 else 1),
        "manifest": run_manifest(graph, seed=seed, fclk_mhz=fclk_mhz),
        "points": points,
    }
