"""Kernel base class: the unit of functional decomposition.

Each NN layer becomes one kernel (§III: "each layer is represented in the
DFE Manager by a single function call").  A kernel owns input and output
streams and implements :meth:`tick`, which the engine calls once per clock
cycle.  The contract mirrors the paper's hardware model:

* at most one element consumed per input stream per cycle,
* at most one element produced per output stream per cycle,
* a kernel starts computing as soon as enough data has accumulated in its
  internal buffer — there is no layer-level barrier.

Kernels accumulate activity statistics so runs can quantify pipeline
overlap, initiation intervals, and stall causes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .stream import Stream

__all__ = ["Kernel", "KernelStats"]


@dataclass
class KernelStats:
    """Per-kernel activity counters."""

    active_cycles: int = 0
    input_starved_cycles: int = 0
    output_blocked_cycles: int = 0
    idle_cycles: int = 0
    first_active_cycle: int | None = None
    last_active_cycle: int | None = None
    elements_in: int = 0
    elements_out: int = 0

    def mark_active(self, cycle: int) -> None:
        self.active_cycles += 1
        if self.first_active_cycle is None:
            self.first_active_cycle = cycle
        self.last_active_cycle = cycle


class Kernel:
    """Base dataflow kernel."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.inputs: list[Stream] = []
        self.outputs: list[Stream] = []
        self.stats = KernelStats()

    def connect_input(self, stream: Stream) -> None:
        self.inputs.append(stream)

    def connect_output(self, stream: Stream) -> None:
        self.outputs.append(stream)

    def tick(self, cycle: int) -> None:  # pragma: no cover - abstract
        """Advance one clock cycle."""
        raise NotImplementedError

    def reset(self) -> None:
        """Clear run state (image-independent parameters persist)."""
        self.stats = KernelStats()

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r})"

    # convenience helpers ------------------------------------------------
    def _starved(self, cycle: int) -> None:
        self.stats.input_starved_cycles += 1

    def _blocked(self, cycle: int) -> None:
        self.stats.output_blocked_cycles += 1

    def _idle(self, cycle: int) -> None:
        self.stats.idle_cycles += 1
