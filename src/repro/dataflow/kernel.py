"""Kernel base class: the unit of functional decomposition.

Each NN layer becomes one kernel (§III: "each layer is represented in the
DFE Manager by a single function call").  A kernel owns input and output
streams and implements :meth:`tick`, which the engine calls once per clock
cycle.  The contract mirrors the paper's hardware model:

* at most one element consumed per input stream per cycle,
* at most one element produced per output stream per cycle,
* a kernel starts computing as soon as enough data has accumulated in its
  internal buffer — there is no layer-level barrier.

Kernels accumulate activity statistics so runs can quantify pipeline
overlap, initiation intervals, and stall causes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, ClassVar

from .stream import Stream

if TYPE_CHECKING:
    from .trace import Tracer

__all__ = ["Kernel", "KernelStats", "STALL_STARVED", "STALL_BLOCKED", "STALL_IDLE", "WAKE_NEVER"]

# Stall classifications a tick reports through the helpers below.  The fast
# engine path uses them to park a kernel: a kernel that reported a stall is
# guaranteed (by the kernel contract) to keep stalling the same way every
# cycle until one of its streams changes state, so the scheduler can stop
# ticking it and bulk-account the skipped cycles on wake-up.
STALL_STARVED = 1
STALL_BLOCKED = 2
STALL_IDLE = 3

# Wake cycle of a parked kernel with no scheduled wake-up (it can only be
# woken by a stream push/pop hook, or settled when the run ends).
WAKE_NEVER = 1 << 62


@dataclass(slots=True)
class KernelStats:
    """Per-kernel activity counters."""

    active_cycles: int = 0
    input_starved_cycles: int = 0
    output_blocked_cycles: int = 0
    idle_cycles: int = 0
    first_active_cycle: int | None = None
    last_active_cycle: int | None = None
    elements_in: int = 0
    elements_out: int = 0

    def mark_active(self, cycle: int) -> None:
        self.active_cycles += 1
        if self.first_active_cycle is None:
            self.first_active_cycle = cycle
        self.last_active_cycle = cycle


class Kernel:
    """Base dataflow kernel."""

    # True for kernels whose blocked cycles attempt a push (and therefore
    # count a full_rejection on outputs[0] every blocked cycle); the fast
    # scheduler replays those rejections for parked cycles.
    blocked_rejects_output: ClassVar[bool] = False

    # -- leap-mode contract (see dataflow/leap.py) ----------------------
    # A kernel that opts in guarantees its *control flow* never branches on
    # stream element values (only on counts, positions and stream state), and
    # exposes that control state through leap_phase().  The leap scheduler
    # refuses to fast-forward an engine containing any kernel that has not
    # opted in — unknown kernels degrade to the plain fast path, mirroring
    # the park/wake scheduler's own "no classification, no parking" rule.
    # Declared as a plain class attribute (not ClassVar) so instances may
    # veto support at construction time (the open-loop host source does).
    supports_leap: bool = False
    # Attribute names extrapolated linearly across a leap: monotone
    # per-period accumulators beyond KernelStats (e.g. ``images_done``,
    # the host source's flat read position).
    leap_counters: ClassVar[tuple[str, ...]] = ()
    # Attribute names holding cycle-stamped lists that grow once per
    # steady-state period and are replayed shifted by the period (e.g. the
    # source's admission_cycles, the sink's completion_cycles).
    leap_cycle_lists: ClassVar[tuple[str, ...]] = ()
    # Attribute names holding per-element *value* lists that grow once per
    # period; a leap replicates the window's slice unshifted (the values are
    # placeholders — leap-mode outputs come from the batched functional
    # path, see leap.batch_reference_outputs).
    leap_value_lists: ClassVar[tuple[str, ...]] = ()

    def __init__(self, name: str) -> None:
        self.name = name
        self.inputs: list[Stream] = []
        self.outputs: list[Stream] = []
        self.stats = KernelStats()
        # Fast-scheduler park bookkeeping.  A tick reports its stall kind by
        # returning one of the STALL_* codes (via the helpers below); a tick
        # returning None made progress or gave no classification — such
        # kernels are never parked.
        self._parked = False
        self._park_cycle = 0
        self._park_kind = 0
        self._wake_at = WAKE_NEVER
        # Self-scheduled wake-up for an idle park: a tick that returns
        # STALL_IDLE may first set ``_wake_hint`` to a future cycle at which
        # its state will change without any stream event (the open-loop host
        # source waiting for the next image arrival).  The fast scheduler
        # honours the hint instead of parking the kernel forever; the
        # exhaustive loop ignores it (it ticks every cycle anyway), so the
        # idle-cycle accounting stays bit-identical on both paths.
        self._wake_hint = 0
        # Event tracer installed by Engine.run(trace=...) for the duration
        # of a traced run.  The engine records tick classifications itself;
        # this handle is for kernel-level events the engine cannot see,
        # e.g. the host sink's per-image completions.
        self._tracer: Tracer | None = None

    def connect_input(self, stream: Stream) -> None:
        self.inputs.append(stream)

    def connect_output(self, stream: Stream) -> None:
        self.outputs.append(stream)

    def tick(self, cycle: int) -> int | None:  # pragma: no cover - abstract
        """Advance one clock cycle; return a STALL_* code when stalled."""
        raise NotImplementedError

    def leap_phase(self, cycle: int) -> tuple[int, ...]:
        """The kernel's value-independent control state, as a comparable tuple.

        Two equal phases at two sink-completion instants mean the kernel
        will repeat the exact same tick-by-tick behaviour (shifted in time)
        over the next period — the periodicity test the leap scheduler
        anchors on.  Cycle-stamped quantities must be encoded *relative* to
        ``cycle`` (the scheduler adds the park/wake bookkeeping itself).
        Only called when :attr:`supports_leap` is true.
        """
        raise NotImplementedError(f"{type(self).__name__} does not support leap mode")

    def reset(self) -> None:
        """Clear run state (image-independent parameters persist)."""
        self.stats = KernelStats()
        self._parked = False
        self._park_cycle = 0
        self._park_kind = 0
        self._wake_at = WAKE_NEVER
        self._wake_hint = 0

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r})"

    # convenience helpers ------------------------------------------------
    # Each counts one live stall cycle and returns the classification so a
    # tick can report it with ``return self._starved(cycle)``.
    def _starved(self, cycle: int) -> int:
        self.stats.input_starved_cycles += 1
        return STALL_STARVED

    def _blocked(self, cycle: int) -> int:
        self.stats.output_blocked_cycles += 1
        return STALL_BLOCKED

    def _idle(self, cycle: int) -> int:
        self.stats.idle_cycles += 1
        return STALL_IDLE
