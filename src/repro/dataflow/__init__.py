"""Maxeler-style streaming dataflow substrate: streams, kernels, engine, manager."""

from .engine import Engine, RunResult
from .interval import exact_completion_period, mean_completion_interval
from .kernel import Kernel, KernelStats
from .leap import LeapController, LeapReport, batch_reference_outputs
from .links import MAXRING, PCIE_GEN2_X8, LinkSpec, required_bandwidth_mbps
from .manager import (
    DEFAULT_STREAM_CAPACITY,
    LinkCrossing,
    Pipeline,
    StreamingRun,
    build_pipeline,
    simulate,
)
from .stream import Stream, StreamStats
from .trace import (
    ImageCompletion,
    KernelSpan,
    RejectSpan,
    StreamEvent,
    Tracer,
    load_chrome_trace,
)
from .tracing import KernelWindow, PipelineTrace, analyze_run, analyze_trace, render_waterfall
from .verify import (
    Diagnostic,
    VerifyReport,
    check_skip_high_water,
    skip_formula_bound,
    solve_skip_capacities,
    verify,
    verify_graph,
    verify_pipeline,
)
from .window import (
    ScanWindow,
    depth_first_buffer_elements,
    skip_buffer_elements,
    width_first_buffer_elements,
)

__all__ = [
    "Engine",
    "RunResult",
    "Kernel",
    "KernelStats",
    "LeapController",
    "LeapReport",
    "batch_reference_outputs",
    "exact_completion_period",
    "mean_completion_interval",
    "MAXRING",
    "PCIE_GEN2_X8",
    "LinkSpec",
    "required_bandwidth_mbps",
    "DEFAULT_STREAM_CAPACITY",
    "LinkCrossing",
    "Pipeline",
    "StreamingRun",
    "build_pipeline",
    "simulate",
    "Diagnostic",
    "VerifyReport",
    "check_skip_high_water",
    "skip_formula_bound",
    "solve_skip_capacities",
    "verify",
    "verify_graph",
    "verify_pipeline",
    "KernelWindow",
    "PipelineTrace",
    "analyze_run",
    "analyze_trace",
    "render_waterfall",
    "Stream",
    "StreamStats",
    "Tracer",
    "KernelSpan",
    "StreamEvent",
    "RejectSpan",
    "ImageCompletion",
    "load_chrome_trace",
    "ScanWindow",
    "depth_first_buffer_elements",
    "skip_buffer_elements",
    "width_first_buffer_elements",
]
