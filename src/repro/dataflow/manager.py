"""The DFE Manager: lowers a LayerGraph into a streaming kernel pipeline.

This mirrors the paper's development model: "each layer is represented in
the DFE Manager by a single function call ... the building of the network
is similar to the process of building in high level frameworks."  Given an
exported :class:`~repro.nn.graph.LayerGraph`, :func:`build_pipeline`
instantiates one kernel per IR node, wires streams between them, inserts
forks for skip connections, sizes skip delay buffers, and attaches the host
source/sink.  :func:`simulate` runs the result cycle-accurately.

Multi-DFE execution (§III-B6) is expressed as a partition of the node list:
edges crossing a partition boundary become MaxRing-latency streams, and the
report records the bandwidth each crossing requires.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from ..kernels.conv import ConvKernel
from ..kernels.elementwise import AddKernel, ForkKernel
from ..kernels.io import HostSink, HostSource
from ..kernels.pooling import MaxPoolKernel
from ..kernels.reduce import GlobalAvgSumKernel
from ..kernels.threshold import ThresholdKernel
from ..nn.graph import (
    AddNode,
    ConvNode,
    GlobalAvgSumNode,
    InputNode,
    LayerGraph,
    MaxPoolNode,
    TensorSpec,
    ThresholdNode,
)
from .engine import Engine, RunResult
from .kernel import Kernel
from .leap import LeapController, LeapReport, batch_reference_outputs
from .links import MAXRING, PCIE_GEN2_X8, LinkSpec, required_bandwidth_mbps
from .stream import Stream
from .trace import Tracer

if TYPE_CHECKING:
    from ..telemetry.collector import Telemetry

__all__ = ["build_pipeline", "simulate", "StreamingRun", "LinkCrossing", "Pipeline"]

DEFAULT_STREAM_CAPACITY = 4

# Skip-path delay buffers get their *exact* §III-B5 size from the static
# verifier (`skip_sizing="exact"`, the default): the solver replays the
# value-independent schedule on a zero batch and reads the high-water mark.
# The engine's measured high-water is asserted back against that static
# prediction after every run (see verify.check_skip_high_water), turning the
# paper's "never creates delays by itself" claim into a round-trip check.
#
# `skip_sizing="bound"` sizes by the closed-form §III-B5 formula plus an
# in-flight slack (no replay — cheap for paper-scale graphs), and
# `skip_sizing="replay"` is the solver's own unbounded-in-practice mode.
_REPLAY_SKIP_CAPACITY = 1 << 22


@dataclass(frozen=True)
class LinkCrossing:
    """A graph edge mapped onto an inter-DFE link."""

    edge: tuple[str, str]
    from_dfe: int
    to_dfe: int
    stream_bits: int
    required_mbps: float
    link: LinkSpec


@dataclass
class Pipeline:
    """A built (but not yet run) streaming network."""

    engine: Engine
    graph: LayerGraph
    source: HostSource
    sink: HostSink
    kernels_by_node: dict[str, Kernel]
    skip_streams: dict[str, Stream]
    crossings: list[LinkCrossing]
    dfe_of_node: dict[str, int]
    partition: list[list[str]] | None = None
    link: LinkSpec = MAXRING
    fclk_mhz: float = 105.0
    skip_sizing: str = "exact"  # "exact" | "bound" | "replay" | "custom"
    skip_capacities: dict[str, int] = field(default_factory=dict)


@dataclass
class StreamingRun:
    """Results of a cycle-accurate streaming execution."""

    output: np.ndarray
    cycles: int
    run: RunResult
    pipeline: Pipeline
    # Set on every mode="leap" run (None for other modes): how many
    # steady-state periods were skipped and at what period, or — when no
    # controller could be built at all — the demotion flag and reason.
    leap_report: LeapReport | None = None

    @property
    def latency_cycles(self) -> int:
        return self.run.latency_cycles

    @property
    def steady_state_interval(self) -> float | None:
        return self.run.steady_state_interval


def _node_to_kernel(graph: LayerGraph, name: str, use_bitops: bool) -> Kernel:
    node = graph.nodes[name]
    parents = graph.parents(name)
    in_spec = graph.specs[parents[0]] if parents else None
    if isinstance(node, ConvNode):
        return ConvKernel(name, node, in_spec, use_bitops=use_bitops)
    if isinstance(node, MaxPoolNode):
        return MaxPoolKernel(name, node, in_spec)
    if isinstance(node, ThresholdNode):
        return ThresholdKernel(name, node, in_spec)
    if isinstance(node, GlobalAvgSumNode):
        return GlobalAvgSumKernel(name, in_spec)
    if isinstance(node, AddNode):
        return AddKernel(name, graph.specs[name].elements)
    raise TypeError(f"no streaming kernel for node type {type(node).__name__}")


def _resolve_skip_capacities(
    graph: LayerGraph,
    skip_sizing: str | dict[str, int],
    partition: list[list[str]] | None,
    link: LinkSpec,
    fclk_mhz: float,
) -> tuple[dict[str, int], str]:
    """Capacity of every skip delay FIFO, per the chosen sizing mode."""
    adds = [n for n in graph.order if isinstance(graph.nodes[n], AddNode)]
    if not isinstance(skip_sizing, str):
        caps = {name: int(cap) for name, cap in skip_sizing.items()}
        missing = [n for n in adds if n not in caps]
        if missing:
            raise ValueError(f"skip_sizing mapping misses residual adders: {missing}")
        return caps, "custom"
    if not adds:
        return {}, skip_sizing if skip_sizing in ("exact", "bound", "replay") else "exact"
    if skip_sizing == "exact":
        # Lazy import: verify's solver builds a replay pipeline through this
        # very module.
        from .verify import solve_skip_capacities

        return (
            solve_skip_capacities(graph, partition=partition, link=link, fclk_mhz=fclk_mhz),
            "exact",
        )
    if skip_sizing == "bound":
        from .verify import SKIP_FORMULA_SLACK, skip_formula_bound

        return (
            {n: skip_formula_bound(graph, n) + SKIP_FORMULA_SLACK for n in adds},
            "bound",
        )
    if skip_sizing == "replay":
        return {n: _REPLAY_SKIP_CAPACITY for n in adds}, "replay"
    raise ValueError(
        f"skip_sizing must be 'exact', 'bound', 'replay' or a mapping, got {skip_sizing!r}"
    )


def build_pipeline(
    graph: LayerGraph,
    images: np.ndarray,
    use_bitops: bool = False,
    partition: list[list[str]] | None = None,
    link: LinkSpec = MAXRING,
    host_link: LinkSpec = PCIE_GEN2_X8,
    fclk_mhz: float = 105.0,
    skip_sizing: str | dict[str, int] = "exact",
    arrival_cycles: list[int] | None = None,
) -> Pipeline:
    """Instantiate kernels and streams for ``graph``.

    Parameters
    ----------
    graph:
        An exported LayerGraph.
    images:
        Input level tensor ``(N, H, W, C)`` (or a single HWC image).
    use_bitops:
        Route convolution math through packed popcounts.
    partition:
        Optional list of node-name groups, one per DFE, covering all
        compute nodes contiguously in topological order.  ``None`` puts
        everything on one DFE.
    arrival_cycles:
        Optional open-loop arrival schedule, one non-decreasing cycle per
        image: the host source withholds image *i* until its arrival cycle
        (see :class:`~repro.kernels.io.HostSource`).  ``None`` streams
        back-to-back (closed loop).
    skip_sizing:
        How skip delay FIFOs are sized: ``"exact"`` (default) asks the
        static verifier's §III-B5 solver for the sharp per-adder minimum,
        ``"bound"`` uses the paper's closed-form formula plus slack,
        ``"replay"`` is the effectively-unbounded mode the solver itself
        builds with, and a ``{add_node: capacity}`` mapping overrides
        everything (fault injection, experiments).
    """
    graph.validate()
    skip_caps, skip_mode = _resolve_skip_capacities(graph, skip_sizing, partition, link, fclk_mhz)
    images = np.asarray(images)
    if images.ndim == 3:
        images = images[None]

    dfe_of_node: dict[str, int] = {}
    if partition is not None:
        seen: set[str] = set()
        for idx, group in enumerate(partition):
            for node_name in group:
                if node_name in seen:
                    raise ValueError(f"node {node_name!r} assigned to two DFEs")
                seen.add(node_name)
                dfe_of_node[node_name] = idx
        missing = set(graph.nodes) - seen - {graph.input_name}
        if missing:
            raise ValueError(f"partition misses nodes: {sorted(missing)}")
    else:
        for node_name in graph.nodes:
            dfe_of_node[node_name] = 0
    dfe_of_node.setdefault(graph.input_name, dfe_of_node.get(graph.topological()[1], 0))
    # Host endpoints live with the first/last on-fabric kernel; the PCIe hop
    # is accounted by the timing model, not as a MaxRing crossing.
    dfe_of_node["host_sink"] = dfe_of_node.get(graph.output_name, 0)

    engine = Engine(graph.name)
    source = HostSource("host_source", images, graph.input_spec, arrival_cycles=arrival_cycles)
    sink = HostSink("host_sink", graph.output_spec, images.shape[0])

    kernels: dict[str, Kernel] = {}
    engine.add_kernel(source)
    topo = graph.topological()
    for name in topo:
        if name == graph.input_name:
            continue
        kernel = _node_to_kernel(graph, name, use_bitops)
        kernels[name] = kernel
        engine.add_kernel(kernel)
    engine.add_kernel(sink)

    # Producer lookup: IR node -> kernel producing its output stream.  The
    # input node's "kernel" is the host source.
    producer: dict[str, Kernel] = {graph.input_name: source}
    producer.update(kernels)

    skip_streams: dict[str, Stream] = {}
    crossings: list[LinkCrossing] = []

    # Insert forks for fan-out and wire every edge.
    for name in topo:
        consumers = graph.consumers(name)
        spec = graph.specs[name]
        prod = producer[name]
        targets: list[tuple[Kernel, int]] = []
        for consumer in consumers:
            port = graph.graph.edges[name, consumer]["port"]
            targets.append((kernels[consumer], port))
        if name == graph.output_name:
            targets.append((sink, 0))
        if not targets:
            continue
        if len(targets) > 1:
            # Fan-out (the skip-path split of Figure 2): insert a fork.
            fork = ForkKernel(f"{name}.fork", spec.elements)
            engine.kernels.insert(engine.kernels.index(prod) + 1, fork)
            _make_stream(
                f"{name}->fork", spec, prod, fork, dfe_of_node, name, name, link, fclk_mhz, crossings, engine
            )
            prod = fork
        for consumer_kernel, port in sorted(targets, key=lambda t: t[1]):
            _wire(
                engine, graph, prod, consumer_kernel, name, port, spec, dfe_of_node, link, fclk_mhz, crossings, skip_streams, skip_caps
            )

    # Image-boundary marks for the per-image lifecycle records: the sink
    # edge gives every image a "first pixel reached the sink" instant and
    # each inter-DFE crossing a "first pixel left the partition" instant.
    if sink.inputs:
        sink.inputs[0].mark_every = graph.output_spec.elements
    crossing_edges = {f"{c.edge[0]}->{c.edge[1]}[" for c in crossings}
    for stream in engine.streams:
        if stream.latency > 0 and any(stream.name.startswith(p) for p in crossing_edges):
            from_node = stream.name.split("->", 1)[0]
            stream.mark_every = graph.specs[from_node].elements

    return Pipeline(
        engine=engine,
        graph=graph,
        source=source,
        sink=sink,
        kernels_by_node=kernels,
        skip_streams=skip_streams,
        crossings=crossings,
        dfe_of_node=dfe_of_node,
        partition=partition,
        link=link,
        fclk_mhz=fclk_mhz,
        skip_sizing=skip_mode,
        skip_capacities=dict(skip_caps),
    )


def _make_stream(
    name: str,
    spec: TensorSpec,
    prod: Kernel,
    cons: Kernel,
    dfe_of_node: dict[str, int],
    from_node: str,
    to_node: str,
    link: LinkSpec,
    fclk_mhz: float,
    crossings: list[LinkCrossing],
    engine: Engine,
    capacity: int = DEFAULT_STREAM_CAPACITY,
) -> Stream:
    latency = 0
    d_from = dfe_of_node.get(from_node, 0)
    d_to = dfe_of_node.get(to_node, 0)
    if d_from != d_to:
        latency = link.latency_cycles
        crossings.append(
            LinkCrossing(
                edge=(from_node, to_node),
                from_dfe=d_from,
                to_dfe=d_to,
                stream_bits=spec.stream_bits,
                required_mbps=required_bandwidth_mbps(spec.stream_bits, fclk_mhz),
                link=link,
            )
        )
        # Link buffering must cover its own round-trip latency.
        capacity = max(capacity, 2 * latency + 4)
    stream = Stream(name, capacity=capacity, latency=latency, bits=spec.stream_bits)
    engine.connect(prod, cons, stream)
    return stream


def _wire(
    engine: Engine,
    graph: LayerGraph,
    prod: Kernel,
    consumer_kernel: Kernel,
    from_node: str,
    port: int,
    spec: TensorSpec,
    dfe_of_node: dict[str, int],
    link: LinkSpec,
    fclk_mhz: float,
    crossings: list[LinkCrossing],
    skip_streams: dict[str, Stream],
    skip_caps: dict[str, int],
) -> None:
    to_node = consumer_kernel.name.removesuffix(".fork")
    capacity = DEFAULT_STREAM_CAPACITY
    is_skip = isinstance(consumer_kernel, AddKernel) and port == 1
    if is_skip:
        capacity = skip_caps[to_node]
    stream = _make_stream(
        f"{from_node}->{to_node}[{port}]",
        spec,
        prod,
        consumer_kernel,
        dfe_of_node,
        from_node,
        to_node,
        link,
        fclk_mhz,
        crossings,
        engine,
        capacity=capacity,
    )
    if is_skip:
        skip_streams[to_node] = stream


def simulate(
    graph: LayerGraph,
    images: np.ndarray,
    use_bitops: bool = False,
    partition: list[list[str]] | None = None,
    link: LinkSpec = MAXRING,
    fclk_mhz: float = 105.0,
    max_cycles: int = 50_000_000,
    fast: bool = True,
    trace: Tracer | None = None,
    telemetry: "Telemetry | None" = None,
    skip_sizing: str | dict[str, int] = "exact",
    sanitize: bool = True,
    arrival_cycles: list[int] | None = None,
    mode: str | None = None,
) -> StreamingRun:
    """Cycle-accurately stream ``images`` through ``graph``.

    Returns the reassembled integer outputs together with latency and
    throughput measurements; the outputs are bit-exact with
    :func:`repro.nn.inference.run_graph` (tested property).  ``fast``
    selects the event-driven scheduler (default) or the exhaustive
    tick-everything reference loop; both produce identical results and
    statistics (tested property).  Passing a fresh
    :class:`~repro.dataflow.trace.Tracer` as ``trace`` records the run's
    full cycle-exact event log (identical for both schedulers) for
    Perfetto export and occupancy analysis.  Passing a fresh
    :class:`~repro.telemetry.collector.Telemetry` as ``telemetry`` samples
    live metrics (kernel utilization, FIFO occupancy, link bandwidth,
    throughput) into its registry as the run progresses; the collector
    adopts the pipeline's fabric clock and link crossings.

    ``sanitize=True`` (default) asserts every skip stream's measured
    high-water mark against the static §III-B5 prediction after the run
    (exact equality in steady state — the verifier's solver and the engine
    must agree, or the run raises).

    ``mode`` names the scheduler explicitly — ``"exhaustive"``, ``"fast"``
    or ``"leap"`` — and overrides the legacy ``fast`` flag.  ``"leap"``
    runs the fast scheduler plus the steady-state leap controller
    (:mod:`repro.dataflow.leap`): once the pipeline's period is proven,
    whole periods are skipped and their outputs recomputed through the
    kernels' batched functional paths.  Results (cycles, outputs, stats,
    traces, per-image instants) are bit-identical across all three modes;
    pipelines outside the leap contract (open-loop arrivals, custom
    kernels) degrade to the fast path with
    ``StreamingRun.leap_report.demoted`` set and ``demotion_reason``
    naming the cause — check the report to see whether leaps happened.
    """
    if mode is not None:
        if mode not in ("exhaustive", "fast", "leap"):
            raise ValueError(f"mode must be 'exhaustive', 'fast' or 'leap', got {mode!r}")
        fast = mode != "exhaustive"
    images = np.asarray(images)
    if images.ndim == 3:
        images = images[None]
    pipeline = build_pipeline(
        graph,
        images,
        use_bitops=use_bitops,
        partition=partition,
        link=link,
        fclk_mhz=fclk_mhz,
        skip_sizing=skip_sizing,
        arrival_cycles=arrival_cycles,
    )
    if telemetry is not None:
        telemetry.attach_pipeline(pipeline)
    controller: LeapController | None = None
    demoted_report: LeapReport | None = None
    if mode == "leap":
        controller = LeapController.for_engine(pipeline.engine)
        if controller is None:
            # Leap was requested but cannot apply: record why, visibly.
            # The run is still correct — it degrades to the plain fast
            # path — but callers (the CLI, the fleet layer) can now warn
            # instead of silently delivering fast-path wall-clock.
            demoted_report = LeapReport(
                demoted=True,
                demotion_reason=LeapController.ineligibility(pipeline.engine),
            )
    cycles = pipeline.engine.run(
        lambda: pipeline.sink.done,
        max_cycles=max_cycles,
        fast=fast,
        trace=trace,
        telemetry=telemetry,
        leap=controller,
    )
    if sanitize and pipeline.skip_streams:
        from .verify import check_skip_high_water

        check_skip_high_water(pipeline, n_images=int(images.shape[0]))
    kstats, sstats = pipeline.engine.collect_stats()
    leap_report = controller.report if controller is not None else demoted_report
    output = pipeline.sink.output_tensor()
    if leap_report is not None and leap_report.windows > 0:
        # Leaped windows streamed placeholder values through the sink; the
        # batched functional path recomputes every image exactly (it is
        # bit-identical to the streaming datapath — tested property).
        output = batch_reference_outputs(pipeline, images)
    run = RunResult(
        cycles=cycles,
        completion_cycles=pipeline.sink.completion_cycles,
        output=output,
        kernel_stats=kstats,
        stream_stats=sstats,
        converged=True,
    )
    return StreamingRun(
        output=output, cycles=cycles, run=run, pipeline=pipeline, leap_report=leap_report
    )
