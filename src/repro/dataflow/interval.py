"""Steady-state interval derivation, shared across the stack.

The steady-state interval — mean cycles between consecutive image
completions, the paper's initiation-interval measurement (§IV-B4) — used to
be derived independently by :class:`~repro.dataflow.engine.RunResult`, the
telemetry collector's per-sample throughput gauges, and the benchmark
harness's ``extra_info`` rows.  One closed form lives here now; the leap
scheduler's periodicity detector (:mod:`repro.dataflow.leap`) builds on the
same completion-cycle anchors via :func:`exact_completion_period`.

Both helpers take the host sink's ``completion_cycles`` list (monotone
non-decreasing ints, one per completed image).
"""

from __future__ import annotations

from collections.abc import Sequence

__all__ = ["mean_completion_interval", "exact_completion_period"]


def mean_completion_interval(completion_cycles: Sequence[int]) -> float | None:
    """Mean cycles between consecutive completions (throughput⁻¹).

    Equals ``(last - first) / (n - 1)``; completion cycles are integers, so
    the sum of gaps is exact in float64 and this closed form is bit-identical
    to averaging ``np.diff``.  Returns ``None`` with fewer than two
    completions — a single image has a latency, not an interval, and an
    explicit ``None`` is what telemetry gauges and bench ``extra_info`` rows
    render as ``n/a`` (rather than a division-by-zero or a NaN silently
    propagating into exports).
    """
    if len(completion_cycles) < 2:
        return None
    span = completion_cycles[-1] - completion_cycles[0]
    return span / (len(completion_cycles) - 1)


def exact_completion_period(completion_cycles: Sequence[int], window: int = 2) -> int | None:
    """The exact completion period, if the last ``window`` gaps all agree.

    Returns the common cycle gap ``P`` between the last ``window + 1``
    completions when every one of those gaps equals ``P`` (the pipeline is
    *plausibly* periodic — the leap scheduler still verifies full control
    state before trusting it), or ``None`` when the gaps disagree or there
    are not enough completions yet.
    """
    if window < 1:
        raise ValueError(f"window must be >= 1, got {window!r}")
    if len(completion_cycles) < window + 1:
        return None
    tail = completion_cycles[-(window + 1) :]
    period = tail[1] - tail[0]
    if period <= 0:
        return None
    for a, b in zip(tail, tail[1:]):
        if b - a != period:
            return None
    return period
