"""Depth-first scan order and the shift-register window buffer (§III-B1b).

The paper streams feature maps **pixel by pixel with channels innermost**
("depth-first", Figure 4a): element *t* of the stream is channel
``t mod I`` of pixel ``t // I``, pixels advancing column-then-row.  A K x K
convolution then only needs to retain ``K − 1`` full scan lines plus ``K``
pixels of the current line:

    buffer elements = I * L * (K − 1) + I * K

where ``L`` is the scanned line length.  (The paper writes the formula with
``H`` for the line; with row-major scanning the line length is the padded
width.)  Width-first (channel-outermost) scanning would instead require
``L * W * (I − 1) + L * (K − 1) + K`` elements — Θ(I·L + K) per line versus
Θ(I·K): the asymptotic argument reproduced by
:func:`width_first_buffer_elements` and benchmarked in the scan-order
ablation.

:class:`ScanWindow` implements the buffer behaviourally for the cycle
simulator; the resource model uses the closed-form sizes.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "depth_first_buffer_elements",
    "width_first_buffer_elements",
    "skip_buffer_elements",
    "ScanWindow",
]


def depth_first_buffer_elements(line: int, channels: int, k: int) -> int:
    """Buffer elements for depth-first scanning: ``I·L·(K−1) + I·K``."""
    return channels * line * (k - 1) + channels * k


def width_first_buffer_elements(line: int, width: int, channels: int, k: int) -> int:
    """Buffer elements for width-first scanning: ``L·W·(I−1) + L·(K−1) + K``."""
    return line * width * (channels - 1) + line * (k - 1) + k


def skip_buffer_elements(line: int, channels: int, k: int) -> int:
    """Skip-connection delay buffer size (§III-B5).

    The paper proves this equals the convolution buffer of the skipped
    layer: ``I·[L·(K−1) + K]`` — "exactly same size as the buffer in a
    convolutional layer.  This is not accidental."
    """
    return channels * (line * (k - 1) + k)


class ScanWindow:
    """Behavioural line buffer for a K x K window over a depth-first stream.

    The simulator feeds one element per cycle (either a stream value or an
    injected padding level); :meth:`feed` returns the completed ``(K, K, I)``
    window whenever the element just written finishes a window position.
    The caller decides what to do with it (convolve, pool, ...).

    Parameters
    ----------
    height, width:
        Dimensions of the (already padded, if applicable) scanned grid.
    channels:
        Feature maps ``I``.
    k:
        Window size.
    """

    def __init__(self, height: int, width: int, channels: int, k: int) -> None:
        if k > height or k > width:
            raise ValueError(f"window {k} larger than scanned grid {height}x{width}")
        self.height = height
        self.width = width
        self.channels = channels
        self.k = k
        # Full-grid backing store: behaviourally identical to the K-line
        # shift register, while keeping window extraction a cheap slice.
        self._grid = np.zeros((height, width, channels), dtype=np.int64)
        self._flat = self._grid.reshape(-1)
        self._total = height * width * channels
        self._km1 = k - 1
        self._pos = 0  # linear element position: ((r * width) + c) * I + i
        # Scan coordinates maintained incrementally (hot path: one feed per
        # simulated cycle; divmod per element is measurably expensive).
        self._r = 0
        self._c = 0
        self._i = 0
        self._pixel = 0  # r * width + c

    @property
    def total_elements(self) -> int:
        return self._total

    @property
    def position(self) -> tuple[int, int, int]:
        """Current (row, col, channel) about to be written."""
        return self._r, self._c, self._i

    @property
    def done(self) -> bool:
        return self._pos >= self._total

    def hardware_buffer_elements(self) -> int:
        """The flip-flop footprint the real shift register would need."""
        return depth_first_buffer_elements(self.width, self.channels, self.k)

    def feed(self, value: int) -> tuple[int, int, np.ndarray] | None:
        """Write one element; if a window just completed, return it.

        Returns ``(row, col, window)`` where ``(row, col)`` is the
        bottom-right pixel of the completed K x K window and ``window`` has
        shape ``(K, K, I)``, or ``None`` when no window completes.
        """
        pos = self._pos
        if pos >= self._total:
            raise RuntimeError("ScanWindow overfed; reset before the next image")
        self._flat[pos] = value
        self._pos = pos + 1
        i = self._i
        if i + 1 < self.channels:
            self._i = i + 1
            return None
        # Last channel of the pixel: the window (if any) completes here,
        # then the scan advances to the next pixel.
        self._i = 0
        r = self._r
        c = self._c
        km1 = self._km1
        if r >= km1 and c >= km1:
            window = self._grid[r - km1 : r + 1, c - km1 : c + 1, :]
            completed = (r, c, window)
        else:
            completed = None
        if c + 1 < self.width:
            self._c = c + 1
        else:
            self._c = 0
            self._r = r + 1
        self._pixel += 1
        return completed

    def reset(self) -> None:
        self._pos = 0
        self._r = 0
        self._c = 0
        self._i = 0
        self._pixel = 0
        self._grid.fill(0)
