"""Pipeline activity tracing and analysis.

Turns a :class:`~repro.dataflow.engine.RunResult` into the quantities the
paper's architecture narrative is built on:

* per-kernel **live windows** (first to last active cycle) — the visual
  "waterfall" of a streaming pipeline filling up;
* the **initiation interval** — how long until the last kernel wakes up,
  after which "computations are performed by all layers simultaneously";
* per-kernel **duty cycles** and stall breakdowns — where backpressure or
  starvation actually bites;
* a plain-text waterfall rendering for reports and examples.
"""

from __future__ import annotations

from dataclasses import dataclass

from .engine import RunResult

__all__ = ["KernelWindow", "PipelineTrace", "analyze_run", "render_waterfall"]


@dataclass(frozen=True)
class KernelWindow:
    """Activity summary of one kernel over a run."""

    name: str
    first_active: int
    last_active: int
    active_cycles: int
    input_starved: int
    output_blocked: int

    @property
    def live_span(self) -> int:
        return self.last_active - self.first_active + 1

    @property
    def duty_cycle(self) -> float:
        """Fraction of the live window the kernel actually did work."""
        return self.active_cycles / self.live_span if self.live_span else 0.0


@dataclass
class PipelineTrace:
    """Whole-pipeline activity analysis."""

    windows: list[KernelWindow]
    total_cycles: int

    @property
    def initiation_interval(self) -> int:
        """Cycles until every kernel has produced/consumed at least once."""
        return max(w.first_active for w in self.windows)

    @property
    def steady_fraction(self) -> float:
        """Fraction of the run spent with all kernels live simultaneously."""
        start = max(w.first_active for w in self.windows)
        end = min(w.last_active for w in self.windows)
        if end <= start or self.total_cycles == 0:
            return 0.0
        return (end - start) / self.total_cycles

    @property
    def busiest(self) -> KernelWindow:
        return max(self.windows, key=lambda w: w.active_cycles)

    def stall_report(self) -> list[tuple[str, int, int]]:
        """(kernel, starved, blocked) sorted by total stalls, worst first."""
        rows = [(w.name, w.input_starved, w.output_blocked) for w in self.windows]
        return sorted(rows, key=lambda r: r[1] + r[2], reverse=True)


def analyze_run(result: RunResult, skip_idle: bool = True) -> PipelineTrace:
    """Build a :class:`PipelineTrace` from a finished run."""
    windows = []
    for name, stats in result.kernel_stats.items():
        if stats.first_active_cycle is None:
            if skip_idle:
                continue
            windows.append(KernelWindow(name, 0, 0, 0, stats.input_starved_cycles, stats.output_blocked_cycles))
            continue
        windows.append(
            KernelWindow(
                name=name,
                first_active=stats.first_active_cycle,
                last_active=stats.last_active_cycle,
                active_cycles=stats.active_cycles,
                input_starved=stats.input_starved_cycles,
                output_blocked=stats.output_blocked_cycles,
            )
        )
    if not windows:
        raise ValueError("no kernel was ever active; nothing to analyze")
    return PipelineTrace(windows=windows, total_cycles=result.cycles)


def render_waterfall(trace: PipelineTrace, width: int = 60) -> str:
    """ASCII waterfall: one row per kernel, '=' spans its live window.

    The stair-step left edge *is* the paper's pipeline-fill story: each
    kernel starts as soon as enough data accumulated in its buffer.
    """
    total = max(trace.total_cycles, 1)
    lines = [f"{'kernel':24s} |{'pipeline activity':<{width}s}| duty"]
    for w in trace.windows:
        start = int(w.first_active / total * width)
        end = max(start + 1, int(w.last_active / total * width))
        bar = " " * start + "=" * (end - start) + " " * (width - end)
        lines.append(f"{w.name[:24]:24s} |{bar}| {w.duty_cycle:4.0%}")
    lines.append(
        f"{'':24s}  initiation interval: {trace.initiation_interval} cycles; "
        f"steady-state fraction: {trace.steady_fraction:.0%}"
    )
    return "\n".join(lines)
