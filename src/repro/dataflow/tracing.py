"""Pipeline activity analysis: live windows, waterfalls, stall reports.

Turns a finished run into the quantities the paper's architecture
narrative is built on:

* per-kernel **live windows** (first to last active cycle) — the visual
  "waterfall" of a streaming pipeline filling up;
* the **initiation interval** — how long until the last kernel wakes up,
  after which "computations are performed by all layers simultaneously";
* per-kernel **duty cycles** and stall breakdowns — where backpressure or
  starvation actually bites;
* a plain-text waterfall rendering for reports and examples.

Two sources feed the same :class:`PipelineTrace`:

* :func:`analyze_run` reconstructs windows from the aggregate
  :class:`~repro.dataflow.kernel.KernelStats` counters of a
  :class:`~repro.dataflow.engine.RunResult` — always available, no
  tracing overhead;
* :func:`analyze_trace` derives the identical windows from a
  :class:`~repro.dataflow.trace.Tracer` event log — the ground-truth
  cycle-exact record, which additionally knows *where* inside the live
  window each stall sat (the event log is the authority; the aggregate
  path is tested to agree with it).

Kernels that never became active (e.g. a host sink in an aborted run)
carry ``first_active = last_active = None``; they are excluded from
initiation-interval and steady-state math rather than being fabricated
into a ``[0, 0]`` window that would silently corrupt both.
"""

from __future__ import annotations

from dataclasses import dataclass

from .engine import RunResult
from .kernel import KernelStats
from .trace import Tracer

__all__ = ["KernelWindow", "PipelineTrace", "analyze_run", "analyze_trace", "render_waterfall"]


@dataclass(frozen=True)
class KernelWindow:
    """Activity summary of one kernel over a run.

    ``first_active`` / ``last_active`` are ``None`` for a kernel that never
    did any work; such windows report a zero live span and duty cycle.
    """

    name: str
    first_active: int | None
    last_active: int | None
    active_cycles: int
    input_starved: int
    output_blocked: int

    @property
    def is_idle(self) -> bool:
        """True when the kernel never became active during the run."""
        return self.first_active is None

    @property
    def live_span(self) -> int:
        if self.first_active is None or self.last_active is None:
            return 0
        return self.last_active - self.first_active + 1

    @property
    def duty_cycle(self) -> float:
        """Fraction of the live window the kernel actually did work."""
        return self.active_cycles / self.live_span if self.live_span else 0.0


@dataclass
class PipelineTrace:
    """Whole-pipeline activity analysis."""

    windows: list[KernelWindow]
    total_cycles: int

    @property
    def active_windows(self) -> list[KernelWindow]:
        """Windows of kernels that did at least one cycle of work."""
        return [w for w in self.windows if not w.is_idle]

    @property
    def initiation_interval(self) -> int:
        """Cycles until every *active* kernel produced/consumed at least once.

        Never-active kernels are excluded: they have no wake-up cycle, and
        counting them as cycle 0 would shrink the interval arbitrarily.
        """
        active = self.active_windows
        if not active:
            raise ValueError("no kernel was ever active; no initiation interval")
        return max(w.first_active for w in active)

    @property
    def steady_fraction(self) -> float:
        """Fraction of the run spent with all active kernels live simultaneously."""
        active = self.active_windows
        if not active or self.total_cycles == 0:
            return 0.0
        start = max(w.first_active for w in active)
        end = min(w.last_active for w in active)
        if end <= start:
            return 0.0
        return (end - start) / self.total_cycles

    @property
    def busiest(self) -> KernelWindow:
        return max(self.windows, key=lambda w: w.active_cycles)

    def stall_report(self) -> list[tuple[str, int, int]]:
        """(kernel, starved, blocked) sorted by total stalls, worst first."""
        rows = [(w.name, w.input_starved, w.output_blocked) for w in self.windows]
        return sorted(rows, key=lambda r: r[1] + r[2], reverse=True)


def _window_from_stats(name: str, stats: KernelStats) -> KernelWindow:
    return KernelWindow(
        name=name,
        first_active=stats.first_active_cycle,
        last_active=stats.last_active_cycle,
        active_cycles=stats.active_cycles,
        input_starved=stats.input_starved_cycles,
        output_blocked=stats.output_blocked_cycles,
    )


def analyze_run(result: RunResult, skip_idle: bool = True) -> PipelineTrace:
    """Build a :class:`PipelineTrace` from a finished run's aggregate stats.

    ``skip_idle=True`` drops never-active kernels from the window list;
    ``skip_idle=False`` keeps them as explicit idle windows (``first_active
    is None``) so stall counters of dead kernels stay visible without
    polluting interval math.
    """
    windows = []
    for name, stats in result.kernel_stats.items():
        if stats.first_active_cycle is None and skip_idle:
            continue
        windows.append(_window_from_stats(name, stats))
    if not any(not w.is_idle for w in windows):
        raise ValueError("no kernel was ever active; nothing to analyze")
    return PipelineTrace(windows=windows, total_cycles=result.cycles)


def analyze_trace(tracer: Tracer, skip_idle: bool = True) -> PipelineTrace:
    """Build a :class:`PipelineTrace` from a :class:`Tracer` event log.

    Produces windows identical to :func:`analyze_run` over the same run
    (tested property), but from the cycle-exact span record: active cycles
    are the summed ``compute`` spans, stall counters the summed ``starved``
    and ``blocked`` spans.
    """
    if tracer.total_cycles is None:
        raise ValueError("tracer has no finished run to analyze")
    windows = []
    for name, spans in tracer.kernel_spans.items():
        compute = [s for s in spans if s.kind == "compute"]
        starved = sum(s.cycles for s in spans if s.kind == "starved")
        blocked = sum(s.cycles for s in spans if s.kind == "blocked")
        if not compute:
            if skip_idle:
                continue
            windows.append(KernelWindow(name, None, None, 0, starved, blocked))
            continue
        windows.append(
            KernelWindow(
                name=name,
                first_active=compute[0].start,
                last_active=compute[-1].end,
                active_cycles=sum(s.cycles for s in compute),
                input_starved=starved,
                output_blocked=blocked,
            )
        )
    if not any(not w.is_idle for w in windows):
        raise ValueError("no kernel was ever active; nothing to analyze")
    return PipelineTrace(windows=windows, total_cycles=tracer.total_cycles)


def render_waterfall(trace: PipelineTrace, width: int = 60) -> str:
    """ASCII waterfall: one row per kernel, '=' spans its live window.

    The stair-step left edge *is* the paper's pipeline-fill story: each
    kernel starts as soon as enough data accumulated in its buffer.
    Never-active kernels render an empty bar tagged ``idle``.
    """
    total = max(trace.total_cycles, 1)
    lines = [f"{'kernel':24s} |{'pipeline activity':<{width}s}| duty"]
    for w in trace.windows:
        if w.is_idle:
            lines.append(f"{w.name[:24]:24s} |{' ' * width}| idle")
            continue
        start = int(w.first_active / total * width)
        end = max(start + 1, int(w.last_active / total * width))
        bar = " " * start + "=" * (end - start) + " " * (width - end)
        lines.append(f"{w.name[:24]:24s} |{bar}| {w.duty_cycle:4.0%}")
    lines.append(
        f"{'':24s}  initiation interval: {trace.initiation_interval} cycles; "
        f"steady-state fraction: {trace.steady_fraction:.0%}"
    )
    return "\n".join(lines)
