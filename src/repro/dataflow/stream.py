"""Streams: the FIFO channels connecting dataflow kernels.

A :class:`Stream` models the configurable routing + FMem buffering the
Maxeler fabric provides between kernels: bounded capacity, one-cycle
register delay (an element pushed at cycle *t* is visible at *t + 1*), and
optional extra latency for off-chip links (MaxRing / PCIe).  Streams count
their own backpressure events so experiments can verify claims like "the
skip buffer never creates delays by itself" (§III-B5).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from .kernel import Kernel
    from .trace import Tracer

__all__ = ["Stream", "StreamStats"]


@dataclass(slots=True)
class StreamStats:
    """Counters a stream accumulates over a run."""

    pushes: int = 0
    pops: int = 0
    full_rejections: int = 0
    max_occupancy: int = 0


class Stream:
    """A bounded FIFO with cycle-tagged availability.

    Parameters
    ----------
    name:
        Identifier used in traces and error messages.
    capacity:
        Maximum elements buffered.  The small default models the flip-flop
        FIFOs between adjacent kernels; skip-connection delay buffers get
        their exact §III-B5 size from the manager.
    latency:
        Extra cycles before a pushed element becomes visible (0 for on-chip
        streams; link models add their transport latency here).
    bits:
        Width of one element in bits; used by link-bandwidth accounting.
    """

    __slots__ = (
        "name",
        "capacity",
        "latency",
        "bits",
        "_fifo",
        "stats",
        "reader",
        "writer",
        "tracer",
        "mark_every",
        "mark_cycles",
    )

    def __init__(self, name: str, capacity: int = 4, latency: int = 0, bits: int = 2) -> None:
        if capacity < 1:
            raise ValueError(f"stream {name!r}: capacity must be >= 1")
        if latency < 0:
            raise ValueError(f"stream {name!r}: latency must be >= 0")
        self.name = name
        self.capacity = capacity
        self.latency = latency
        self.bits = bits
        self._fifo: deque[tuple[int, int]] = deque()  # (value, ready_cycle)
        self.stats = StreamStats()
        # Endpoint kernels (set by Engine.connect).  push/pop wake parked
        # endpoints directly (see the fast-path invariants in engine.py).
        self.reader: Kernel | None = None
        self.writer: Kernel | None = None
        # Event tracer installed by Engine.run(trace=...) for the duration
        # of a traced run; None keeps the hot path hook-free.
        self.tracer: Tracer | None = None
        # Image-boundary marks: with ``mark_every`` set to the per-image
        # element count of the producing node, the push cycle of every
        # image's first element is recorded in ``mark_cycles`` — the
        # "first-pixel-out" instant the per-image lifecycle records use at
        # partition boundaries and the sink edge.  0 disables marking (one
        # int test per push when off).
        self.mark_every: int = 0
        self.mark_cycles: list[int] = []

    def __repr__(self) -> str:
        return f"Stream({self.name!r}, occ={len(self._fifo)}/{self.capacity})"

    @property
    def occupancy(self) -> int:
        return len(self._fifo)

    def can_push(self) -> bool:
        return len(self._fifo) < self.capacity

    def push(self, value: int, cycle: int) -> bool:
        """Append ``value``; returns False (and counts a rejection) when full."""
        fifo = self._fifo
        stats = self.stats
        occ = len(fifo)
        if occ >= self.capacity:
            stats.full_rejections += 1
            tracer = self.tracer
            if tracer is not None:
                tracer.on_reject(self.name, cycle)
            return False
        ready = cycle + 1 + self.latency
        fifo.append((int(value), ready))
        stats.pushes += 1
        if self.mark_every and (stats.pushes - 1) % self.mark_every == 0:
            self.mark_cycles.append(cycle)
        if occ >= stats.max_occupancy:
            stats.max_occupancy = occ + 1
        tracer = self.tracer
        if tracer is not None:
            tracer.on_push(self.name, cycle, ready, occ + 1)
        if not occ:
            # Only an empty->nonempty transition can unstarve the reader; a
            # push behind existing elements is covered by the wake already
            # scheduled for the head element.  (1 == STALL_STARVED; literal
            # to avoid a circular import with kernel.py.)
            reader = self.reader
            if reader is not None and reader._parked and reader._park_kind == 1:
                if ready < reader._wake_at:
                    reader._wake_at = ready
        return True

    def can_pop(self, cycle: int) -> bool:
        return bool(self._fifo) and self._fifo[0][1] <= cycle

    def ready_count(self, cycle: int) -> int:
        """Number of elements visible at ``cycle`` (cheap scan from the head)."""
        count = 0
        for _, ready in self._fifo:
            if ready <= cycle:
                count += 1
            else:
                break
        return count

    def pop(self, cycle: int) -> int:
        """Remove and return the head element; caller must check :meth:`can_pop`."""
        fifo = self._fifo
        if not (fifo and fifo[0][1] <= cycle):
            raise RuntimeError(f"stream {self.name!r}: pop on empty/unready stream")
        was_full = len(fifo) >= self.capacity
        value, _ = fifo.popleft()
        self.stats.pops += 1
        tracer = self.tracer
        if tracer is not None:
            tracer.on_pop(self.name, cycle, len(fifo))
        if was_full:
            # Only a full->nonfull transition can unblock the writer.  Wake
            # at this very cycle: if the writer's slot in the engine sweep is
            # still ahead it reruns this cycle (non-topological order);
            # otherwise the <= comparison lands it on the next cycle, which
            # matches the exhaustive loop (the writer already ticked blocked
            # this cycle before the pop).  (2 == STALL_BLOCKED.)
            writer = self.writer
            if writer is not None and writer._parked and writer._park_kind == 2:
                if cycle < writer._wake_at:
                    writer._wake_at = cycle
        return value

    def head_ready_cycle(self) -> int | None:
        """Ready cycle of the head element, or None when empty."""
        fifo = self._fifo
        return fifo[0][1] if fifo else None

    def peek(self, cycle: int) -> int:
        if not self.can_pop(cycle):
            raise RuntimeError(f"stream {self.name!r}: peek on empty/unready stream")
        return self._fifo[0][0]

    def reset(self) -> None:
        self._fifo.clear()
        self.stats = StreamStats()
        self.mark_cycles = []
