"""Streams: the FIFO channels connecting dataflow kernels.

A :class:`Stream` models the configurable routing + FMem buffering the
Maxeler fabric provides between kernels: bounded capacity, one-cycle
register delay (an element pushed at cycle *t* is visible at *t + 1*), and
optional extra latency for off-chip links (MaxRing / PCIe).  Streams count
their own backpressure events so experiments can verify claims like "the
skip buffer never creates delays by itself" (§III-B5).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

__all__ = ["Stream", "StreamStats"]


@dataclass
class StreamStats:
    """Counters a stream accumulates over a run."""

    pushes: int = 0
    pops: int = 0
    full_rejections: int = 0
    max_occupancy: int = 0


class Stream:
    """A bounded FIFO with cycle-tagged availability.

    Parameters
    ----------
    name:
        Identifier used in traces and error messages.
    capacity:
        Maximum elements buffered.  The small default models the flip-flop
        FIFOs between adjacent kernels; skip-connection delay buffers get
        their exact §III-B5 size from the manager.
    latency:
        Extra cycles before a pushed element becomes visible (0 for on-chip
        streams; link models add their transport latency here).
    bits:
        Width of one element in bits; used by link-bandwidth accounting.
    """

    __slots__ = ("name", "capacity", "latency", "bits", "_fifo", "stats")

    def __init__(self, name: str, capacity: int = 4, latency: int = 0, bits: int = 2) -> None:
        if capacity < 1:
            raise ValueError(f"stream {name!r}: capacity must be >= 1")
        if latency < 0:
            raise ValueError(f"stream {name!r}: latency must be >= 0")
        self.name = name
        self.capacity = capacity
        self.latency = latency
        self.bits = bits
        self._fifo: deque[tuple[int, int]] = deque()  # (value, ready_cycle)
        self.stats = StreamStats()

    def __repr__(self) -> str:
        return f"Stream({self.name!r}, occ={len(self._fifo)}/{self.capacity})"

    @property
    def occupancy(self) -> int:
        return len(self._fifo)

    def can_push(self) -> bool:
        return len(self._fifo) < self.capacity

    def push(self, value: int, cycle: int) -> bool:
        """Append ``value``; returns False (and counts a rejection) when full."""
        if len(self._fifo) >= self.capacity:
            self.stats.full_rejections += 1
            return False
        self._fifo.append((int(value), cycle + 1 + self.latency))
        self.stats.pushes += 1
        if len(self._fifo) > self.stats.max_occupancy:
            self.stats.max_occupancy = len(self._fifo)
        return True

    def can_pop(self, cycle: int) -> bool:
        return bool(self._fifo) and self._fifo[0][1] <= cycle

    def ready_count(self, cycle: int) -> int:
        """Number of elements visible at ``cycle`` (cheap scan from the head)."""
        count = 0
        for _, ready in self._fifo:
            if ready <= cycle:
                count += 1
            else:
                break
        return count

    def pop(self, cycle: int) -> int:
        """Remove and return the head element; caller must check :meth:`can_pop`."""
        if not self.can_pop(cycle):
            raise RuntimeError(f"stream {self.name!r}: pop on empty/unready stream")
        value, _ = self._fifo.popleft()
        self.stats.pops += 1
        return value

    def peek(self, cycle: int) -> int:
        if not self.can_pop(cycle):
            raise RuntimeError(f"stream {self.name!r}: peek on empty/unready stream")
        return self._fifo[0][0]

    def reset(self) -> None:
        self._fifo.clear()
        self.stats = StreamStats()
