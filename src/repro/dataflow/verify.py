"""Static pipeline verification: compile-time invariant checks for the substrate.

The paper's correctness story is almost entirely *static*: skip delay
buffers are sized exactly to the skipped convolution's buffer (§III-B5),
MaxRing crossings are feasible because ``bits x f_clk`` is far below the
link rate (§III-B6), and the BRAM geometry wastes ≥25% of every weight
cache with ``O <= 384`` outputs (§III-B1a).  This module turns each of
those claims into a check that runs in milliseconds, before any cycle is
simulated:

* :func:`verify_graph` — structural well-formedness of a
  :class:`~repro.nn.graph.LayerGraph` (cycles, unreachable nodes, port
  arity), the §III-B5 skip-buffer requirement per residual block, the rate
  summary, and the BRAM geometry audit.
* :func:`verify_pipeline` — contract checks over a *built*
  :class:`~repro.dataflow.manager.Pipeline`: stream endpoint binding,
  kernel port arity, per-edge bitwidth propagation, skip FIFO capacity
  versus the statically required minimum, and link bandwidth feasibility.
* :func:`verify` — both passes merged; what ``python -m repro check`` runs.
* :func:`solve_skip_capacities` — the exact §III-B5 solver (below).
* :func:`check_skip_high_water` — the run-time sanitizer asserting the
  engine's measured skip high-water marks equal the static prediction.

Every finding is a typed :class:`Diagnostic` — a stable code, a severity,
the paper section it reproduces, and structured data — collected into a
:class:`VerifyReport`.  Error-severity codes only fire on real faults:
shipped model topologies verify clean (tested property).

The exact §III-B5 solver
------------------------
Kernel scheduling in this simulator is completely *value-independent*: the
cycle at which any kernel consumes or emits depends only on tensor
geometry, never on the data.  The solver exploits that by replaying the
pipeline's schedule on a zero image batch with the convolution arithmetic
stubbed out (an "abstract interpretation" that preserves timing exactly)
and reading each skip stream's ``max_occupancy``.  Sizing the real skip
FIFO to exactly that high-water mark is behaviour-preserving: every push in
the unbounded replay happened at occupancy ``<= C - 1``, and the fork
feeding the skip path checks space before pushing, so no rejection or
retiming can occur.  The closed-form §III-B5 bound
(:func:`skip_formula_bound`) remains as the solver's cross-check — the
exact requirement must stay within the paper's formula plus a small
in-flight slack, or V402 fires.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

import networkx as nx
import numpy as np

from ..nn.graph import (
    SKIP_DTYPE_BITS,
    AddNode,
    ConvNode,
    InputNode,
    LayerGraph,
)
from .links import MAXRING, LinkSpec
from .window import depth_first_buffer_elements

if TYPE_CHECKING:
    from ..hardware.calibration import ResourceCalibration
    from ..hardware.device import FPGASpec
    from ..hardware.resources import ResourceEstimate
    from .manager import Pipeline

__all__ = [
    "Diagnostic",
    "VerifyReport",
    "DIAGNOSTIC_CODES",
    "SOLVER_IMAGES",
    "SKIP_FORMULA_SLACK",
    "DEFAULT_REPLAY_BUDGET",
    "skip_formula_bound",
    "estimated_replay_cost",
    "solve_skip_capacities",
    "check_skip_high_water",
    "partition_feasibility",
    "verify_graph",
    "verify_pipeline",
    "verify",
]

# Images the solver replays.  The skip high-water mark reaches steady state
# from the second image on (the first image fills an empty pipeline and can
# peak slightly lower); replaying two is exact for any longer run (tested).
SOLVER_IMAGES = 2

# Allowed excess of the exact skip requirement over the §III-B5 closed-form
# bound before V402 fires: elements in flight in the small inter-kernel
# FIFOs (capacity 4 at each end) plus the 1-cycle visibility registers.
SKIP_FORMULA_SLACK = 16

# Default ceiling on the solver's replay cost (in estimated kernel ticks);
# above it `verify` falls back to the closed-form bound (V403 reports this).
DEFAULT_REPLAY_BUDGET = 5_000_000

SEVERITIES = ("error", "warning", "info")

DIAGNOSTIC_CODES: dict[str, str] = {
    "V101": "dangling stream: missing or unregistered reader/writer endpoint",
    "V102": "stream endpoint double-binding (kernel port bound to a foreign stream)",
    "V103": "node/kernel port arity mismatch",
    "V104": "fork fan-out mismatch (fewer than two live arms)",
    "V105": "graph contains a cycle",
    "V106": "node unreachable from the input",
    "V107": "graph has no input node",
    "V201": "stream bitwidth disagrees with the producer's tensor spec",
    "V202": "skip-path operand exceeds the 16-bit hardware adder width",
    "V301": "FIFO capacity below the statically required minimum (deadlock)",
    "V302": "link-crossing FIFO shallower than the link round trip",
    "V303": "pipeline rate summary (bottleneck, interval, overlap)",
    "V401": "§III-B5 skip buffer requirement (exact vs formula bound)",
    "V402": "exact skip requirement exceeds the §III-B5 formula bound",
    "V403": "skip solver skipped (replay over budget); formula bound used",
    "V501": "link bandwidth overcommitted",
    "V502": "link bandwidth headroom",
    "V503": "skip stream crosses a chip boundary",
    "V601": "weight-cache BRAM geometry waste (≥25% when O ≤ 384)",
    "V701": "per-DFE LUT budget exceeded",
    "V702": "per-DFE flip-flop budget exceeded",
    "V703": "per-DFE BRAM budget exceeded",
    "V704": "predicted throughput below the requested SLO",
}


@dataclass(frozen=True, slots=True)
class Diagnostic:
    """One typed finding of the static verifier."""

    code: str
    severity: str  # "error" | "warning" | "info"
    where: str  # node, stream or kernel name the finding anchors to
    message: str
    paper: str = ""  # paper section the check reproduces, e.g. "§III-B5"
    data: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            raise ValueError(f"unknown severity {self.severity!r}")

    def render(self) -> str:
        tag = f" [{self.paper}]" if self.paper else ""
        return f"{self.severity.upper():<7} {self.code}{tag} {self.where}: {self.message}"


@dataclass(slots=True)
class VerifyReport:
    """All diagnostics of one verification pass."""

    subject: str
    diagnostics: list[Diagnostic] = field(default_factory=list)
    skip_capacities: dict[str, int] = field(default_factory=dict)
    skip_mode: str = "exact"  # "exact" | "bound" — how skip requirements were derived

    @property
    def errors(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == "error"]

    @property
    def warnings(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == "warning"]

    @property
    def infos(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == "info"]

    @property
    def ok(self) -> bool:
        return not self.errors

    def codes(self) -> set[str]:
        return {d.code for d in self.diagnostics}

    def by_code(self, code: str) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.code == code]

    def extend(self, diagnostics: list[Diagnostic]) -> None:
        self.diagnostics.extend(diagnostics)

    def sort(self) -> None:
        order = {sev: i for i, sev in enumerate(SEVERITIES)}
        self.diagnostics.sort(key=lambda d: (order[d.severity], d.code, d.where))

    def render(self, show_info: bool = True) -> str:
        self.sort()
        shown = [d for d in self.diagnostics if show_info or d.severity != "info"]
        status = "FAIL" if self.errors else "ok"
        head = (
            f"check {self.subject}: {status} — {len(self.errors)} error(s), "
            f"{len(self.warnings)} warning(s), {len(self.infos)} info "
            f"(skip sizing: {self.skip_mode})"
        )
        return "\n".join([head, *("  " + d.render() for d in shown)])

    def raise_on_error(self) -> "VerifyReport":
        if self.errors:
            raise RuntimeError(self.render(show_info=False))
        return self

    def as_dict(self) -> dict[str, Any]:
        """Machine-readable report (schema ``repro-check/1``).

        Diagnostics are emitted in the report's stable sort order
        (severity, code, where) so two runs over the same topology diff
        cleanly; ``data`` payloads are sanitized to plain JSON types.
        """
        self.sort()
        return {
            "schema": "repro-check/1",
            "subject": self.subject,
            "ok": self.ok,
            "skip_mode": self.skip_mode,
            "counts": {
                "errors": len(self.errors),
                "warnings": len(self.warnings),
                "infos": len(self.infos),
            },
            "skip_capacities": {k: int(v) for k, v in sorted(self.skip_capacities.items())},
            "diagnostics": [
                {
                    "code": d.code,
                    "severity": d.severity,
                    "where": d.where,
                    "message": d.message,
                    "paper": d.paper,
                    "data": _json_safe(dict(d.data)),
                }
                for d in self.diagnostics
            ],
        }


def _diag(
    code: str,
    severity: str,
    where: str,
    message: str,
    paper: str = "",
    **data: Any,
) -> Diagnostic:
    return Diagnostic(code, severity, where, message, paper, data)


def _json_safe(value: Any) -> Any:
    """Recursively coerce diagnostic payloads to plain JSON types."""
    if isinstance(value, Mapping):
        return {str(k): _json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    return repr(value)


# -- §III-B5: skip-buffer requirements -----------------------------------


def skip_formula_bound(graph: LayerGraph, add_name: str) -> int:
    """The paper's closed-form skip buffer size for one residual adder.

    §III-B5 sizes the delay buffer like the regular-path convolution's
    window buffer (``I·[L·(K−1)+K]``, the depth-first formula); when port 0
    is not a convolution the output tensor size is the defensive fallback,
    matching :func:`repro.hardware.resources._add_resources`.
    """
    parents = graph.parents(add_name)
    conv = graph.nodes[parents[0]] if parents else None
    if isinstance(conv, ConvNode):
        conv_in = graph.specs[graph.parents(parents[0])[0]]
        return depth_first_buffer_elements(
            conv_in.width + 2 * conv.pad, conv.in_channels, conv.kernel_size
        )
    return graph.specs[add_name].elements


def _partition_key(
    partition: list[list[str]] | None,
) -> tuple[tuple[str, ...], ...] | None:
    if partition is None:
        return None
    return tuple(tuple(group) for group in partition)


def estimated_replay_cost(graph: LayerGraph, n_images: int = SOLVER_IMAGES) -> int:
    """Rough kernel-tick count of one solver replay (drives the budget check)."""
    from ..hardware.timing import estimate_network_timing

    timing = estimate_network_timing(graph)
    return n_images * timing.sequential_cycles


def solve_skip_capacities(
    graph: LayerGraph,
    partition: list[list[str]] | None = None,
    link: LinkSpec = MAXRING,
    fclk_mhz: float = 105.0,
    n_images: int = SOLVER_IMAGES,
    max_cycles: int = 500_000_000,
) -> dict[str, int]:
    """Exact §III-B5 skip capacity per residual adder, by abstract replay.

    Builds the pipeline on a zero image batch with every convolution's
    arithmetic stubbed to emit zeros (kernel *timing* is value-independent,
    so the schedule — and therefore each skip stream's high-water mark — is
    exactly that of any real run with the same geometry), runs the fast
    engine, and returns ``{add_node: max_occupancy}``.  Results are cached
    on the graph instance per (partition, link, f_clk, n_images).
    """
    adds = [n for n in graph.order if isinstance(graph.nodes[n], AddNode)]
    if not adds:
        return {}
    key = (_partition_key(partition), link, float(fclk_mhz), int(n_images))
    cache: dict[Any, dict[str, int]] | None = getattr(graph, "_skip_capacity_cache", None)
    if cache is None:
        cache = {}
        graph._skip_capacity_cache = cache  # type: ignore[attr-defined]
    hit = cache.get(key)
    if hit is not None:
        return dict(hit)

    from ..kernels.conv import ConvKernel
    from .manager import build_pipeline

    spec = graph.input_spec
    zeros = np.zeros((n_images, spec.height, spec.width, spec.channels), dtype=np.int64)
    pipeline = build_pipeline(
        graph,
        zeros,
        partition=partition,
        link=link,
        fclk_mhz=fclk_mhz,
        skip_sizing="replay",
    )
    for kernel in pipeline.engine.kernels:
        if isinstance(kernel, ConvKernel):
            # Timing abstraction: emit the right *number* of outputs with no
            # arithmetic.  Instance attribute shadows the method.
            zero_out = [0] * kernel.out_channels
            kernel._compute_outputs = lambda window, _z=zero_out: _z  # type: ignore[method-assign]
    pipeline.engine.run(lambda: pipeline.sink.done, max_cycles=max_cycles)
    solution = {
        add: max(1, stream.stats.max_occupancy)
        for add, stream in pipeline.skip_streams.items()
    }
    cache[key] = dict(solution)
    return solution


def check_skip_high_water(pipeline: "Pipeline", n_images: int) -> None:
    """Run-time §III-B5 sanitizer: measured high-water vs static prediction.

    With exact sizing and a steady-state run (``n_images >= SOLVER_IMAGES``)
    the measured mark must *equal* the capacity the solver predicted; a
    single-image run only fills the pipeline once and may peak lower, so it
    is held to ``<=``.  Called by :func:`repro.dataflow.manager.simulate`
    after every successful run (``sanitize=True``).
    """
    for add_name, stream in pipeline.skip_streams.items():
        occ = stream.stats.max_occupancy
        cap = stream.capacity
        if occ > cap:
            raise RuntimeError(
                f"§III-B5 sanitizer: skip stream {stream.name!r} high-water {occ} "
                f"exceeds its capacity {cap} — FIFO accounting is broken"
            )
        if pipeline.skip_sizing == "exact" and n_images >= SOLVER_IMAGES and occ != cap:
            raise RuntimeError(
                f"§III-B5 sanitizer: skip stream {stream.name!r} ({add_name}) "
                f"high-water {occ} != static prediction {cap}; the solver and the "
                "engine disagree — run `python -m repro check`"
            )


# -- graph-level checks ---------------------------------------------------


def _graph_structure(graph: LayerGraph) -> list[Diagnostic]:
    diags: list[Diagnostic] = []
    if graph.input_name is None:
        diags.append(
            _diag("V107", "error", graph.name, "graph has no input node", "§III-B")
        )
        return diags
    if not nx.is_directed_acyclic_graph(graph.graph):
        cycle_edges = nx.find_cycle(graph.graph)
        members = " -> ".join(edge[0] for edge in cycle_edges)
        diags.append(
            _diag(
                "V105",
                "error",
                graph.name,
                f"graph contains a cycle: {members} -> {cycle_edges[0][0]}",
                "§III-B",
                cycle=[edge[0] for edge in cycle_edges],
            )
        )
        return diags
    reachable = nx.descendants(graph.graph, graph.input_name) | {graph.input_name}
    for name in sorted(set(graph.nodes) - reachable):
        diags.append(
            _diag(
                "V106",
                "error",
                name,
                "node is unreachable from the input",
                "§III-B",
            )
        )
    for name, node in graph.nodes.items():
        if isinstance(node, InputNode):
            continue
        ports = sorted(
            data["port"] for _, _, data in graph.graph.in_edges(name, data=True)
        )
        if ports != list(range(node.arity)):
            diags.append(
                _diag(
                    "V103",
                    "error",
                    name,
                    f"expected input ports {list(range(node.arity))}, found {ports}",
                    "§III-B",
                    expected=node.arity,
                    found=ports,
                )
            )
    return diags


def _graph_skip_widths(graph: LayerGraph) -> list[Diagnostic]:
    """V202: every residual-add operand must fit the 16-bit skip adder."""
    diags: list[Diagnostic] = []
    for name, node in graph.nodes.items():
        if not isinstance(node, AddNode):
            continue
        for parent in graph.parents(name):
            bits = graph.specs[parent].bits
            if bits > SKIP_DTYPE_BITS:
                diags.append(
                    _diag(
                        "V202",
                        "error",
                        name,
                        f"operand from {parent!r} is {bits}-bit, exceeding the "
                        f"{SKIP_DTYPE_BITS}-bit skip-path adder",
                        "§III-B5",
                        parent=parent,
                        bits=bits,
                    )
                )
    return diags


def _graph_rates(
    graph: LayerGraph,
    partition: list[list[str]] | None,
    link: LinkSpec,
    fclk_mhz: float,
) -> list[Diagnostic]:
    """V303: the initiation-interval algebra, reported as one rate summary.

    Per-kernel cycles/image come from the closed-form formulas in
    :mod:`repro.hardware.timing` (window fill, emit bursts, pooling
    decimation, drain tails).  Backpressure makes every *chain* FIFO safe at
    any capacity ≥ 1 — a slower consumer simply stalls its producer — so
    the only deadlock-capable edges are the reconvergent skip FIFOs, which
    V301/V401 size exactly.  The summary surfaces the bottleneck kernel
    (the steady-state interval) and the overlap speedup the paper claims.
    """
    from ..hardware.timing import estimate_network_timing

    timing = estimate_network_timing(graph, fclk_mhz=fclk_mhz, partition=partition, link=link)
    bn = timing.bottleneck
    return [
        _diag(
            "V303",
            "info",
            graph.name,
            f"steady-state interval {timing.interval_cycles:,} cycles/image "
            f"(bottleneck {bn.name!r}); latency ≈ {timing.latency_cycles:,} cycles; "
            f"overlap speedup {timing.overlap_speedup:.1f}x vs layer-sequential",
            "§IV-B4",
            interval_cycles=timing.interval_cycles,
            latency_cycles=timing.latency_cycles,
            bottleneck=bn.name,
            overlap_speedup=timing.overlap_speedup,
        )
    ]


def _graph_bram_audit(graph: LayerGraph) -> list[Diagnostic]:
    """V601: the §III-B1a BRAM geometry claim as a lint finding."""
    from ..hardware.resources import weight_cache_blocks

    diags: list[Diagnostic] = []
    for name, node in graph.nodes.items():
        if not isinstance(node, ConvNode):
            continue
        blocks, waste = weight_cache_blocks(node)
        if blocks and waste >= 0.25:
            diags.append(
                _diag(
                    "V601",
                    "info",
                    name,
                    f"weight cache ({node.out_channels} x "
                    f"{node.kernel_size * node.kernel_size * node.in_channels} bits) wastes "
                    f"{waste:.0%} of {blocks} M20K block(s) "
                    f"(paper: ≥25% whenever O ≤ 384)",
                    "§III-B1a",
                    blocks=blocks,
                    waste=waste,
                    out_channels=node.out_channels,
                )
            )
    return diags


def _graph_skip_requirements(
    graph: LayerGraph,
    exact: dict[str, int] | None,
) -> list[Diagnostic]:
    """V401/V402/V403: per-adder skip buffer requirement."""
    diags: list[Diagnostic] = []
    for name in graph.order:
        if not isinstance(graph.nodes[name], AddNode):
            continue
        bound = skip_formula_bound(graph, name)
        if exact is None:
            diags.append(
                _diag(
                    "V403",
                    "info",
                    name,
                    f"skip solver skipped (replay over budget); formula bound "
                    f"{bound} elements used",
                    "§III-B5",
                    bound=bound,
                )
            )
            continue
        required = exact[name]
        diags.append(
            _diag(
                "V401",
                "info",
                name,
                f"skip buffer needs exactly {required} elements "
                f"(formula bound {bound})",
                "§III-B5",
                required=required,
                bound=bound,
            )
        )
        if required > bound + SKIP_FORMULA_SLACK:
            diags.append(
                _diag(
                    "V402",
                    "warning",
                    name,
                    f"exact skip requirement {required} exceeds the §III-B5 formula "
                    f"bound {bound} (+{SKIP_FORMULA_SLACK} slack) — the regular path "
                    "delays more than one convolution buffer",
                    "§III-B5",
                    required=required,
                    bound=bound,
                )
            )
    return diags


def verify_graph(
    graph: LayerGraph,
    partition: list[list[str]] | None = None,
    link: LinkSpec = MAXRING,
    fclk_mhz: float = 105.0,
    exact_skip: dict[str, int] | None = None,
    solve: bool = False,
) -> VerifyReport:
    """Static checks that need only the IR graph (no pipeline build).

    ``exact_skip`` supplies pre-solved §III-B5 requirements; ``solve=True``
    computes them here (the replay needs a pipeline internally but never
    runs real data).  With neither, the closed-form bound is reported.
    """
    report = VerifyReport(subject=graph.name, skip_mode="exact" if solve or exact_skip else "bound")
    structure = _graph_structure(graph)
    report.extend(structure)
    if any(d.severity == "error" for d in structure):
        report.sort()
        return report
    if exact_skip is None and solve:
        exact_skip = solve_skip_capacities(
            graph, partition=partition, link=link, fclk_mhz=fclk_mhz
        )
    report.extend(_graph_skip_widths(graph))
    report.extend(_graph_skip_requirements(graph, exact_skip))
    report.extend(_graph_rates(graph, partition, link, fclk_mhz))
    report.extend(_graph_bram_audit(graph))
    if exact_skip:
        report.skip_capacities = dict(exact_skip)
    report.sort()
    return report


# -- pipeline-level checks ------------------------------------------------


def _producer_node(pipeline: "Pipeline", stream: Any) -> str | None:
    """IR node whose tensor the stream carries (None for unknown writers)."""
    writer = stream.writer
    if writer is None:
        return None
    name = writer.name
    if name == pipeline.source.name:
        return pipeline.graph.input_name
    node = name.removesuffix(".fork")
    return node if node in pipeline.graph.specs else None


def _pipeline_bindings(pipeline: "Pipeline") -> list[Diagnostic]:
    """V101/V102: every stream fully bound, every port singly bound."""
    diags: list[Diagnostic] = []
    engine = pipeline.engine
    registered = {id(s) for s in engine.streams}
    for stream in engine.streams:
        for role, kernel, ports in (
            ("writer", stream.writer, lambda k: k.outputs),
            ("reader", stream.reader, lambda k: k.inputs),
        ):
            if kernel is None:
                diags.append(
                    _diag(
                        "V101",
                        "error",
                        stream.name,
                        f"dangling stream: no {role} endpoint",
                        "§III-B",
                        role=role,
                    )
                )
            elif not any(s is stream for s in ports(kernel)):
                diags.append(
                    _diag(
                        "V102",
                        "error",
                        stream.name,
                        f"{role} {kernel.name!r} does not list this stream on its ports",
                        "§III-B",
                        role=role,
                        kernel=kernel.name,
                    )
                )
    for kernel in engine.kernels:
        for role, streams in (("input", kernel.inputs), ("output", kernel.outputs)):
            for stream in streams:
                if id(stream) not in registered:
                    diags.append(
                        _diag(
                            "V101",
                            "error",
                            kernel.name,
                            f"{role} stream {stream.name!r} is not registered with the engine",
                            "§III-B",
                            stream=stream.name,
                        )
                    )
                    continue
                endpoint = stream.reader if role == "input" else stream.writer
                if endpoint is not kernel:
                    other = endpoint.name if endpoint is not None else None
                    diags.append(
                        _diag(
                            "V102",
                            "error",
                            kernel.name,
                            f"{role} stream {stream.name!r} is bound to "
                            f"{other!r}, not to this kernel (double-binding)",
                            "§III-B",
                            stream=stream.name,
                            bound_to=other,
                        )
                    )
    return diags


def _pipeline_arities(pipeline: "Pipeline") -> list[Diagnostic]:
    """V103/V104: kernel port counts match their type contracts."""
    from ..kernels.conv import ConvKernel
    from ..kernels.elementwise import AddKernel, ForkKernel
    from ..kernels.io import HostSink, HostSource
    from ..kernels.pooling import MaxPoolKernel
    from ..kernels.reduce import GlobalAvgSumKernel
    from ..kernels.threshold import ThresholdKernel

    diags: list[Diagnostic] = []
    expected: list[tuple[type, int, int]] = [
        (HostSource, 0, 1),
        (HostSink, 1, 0),
        (AddKernel, 2, 1),
        (ConvKernel, 1, 1),
        (MaxPoolKernel, 1, 1),
        (ThresholdKernel, 1, 1),
        (GlobalAvgSumKernel, 1, 1),
    ]
    for kernel in pipeline.engine.kernels:
        if isinstance(kernel, ForkKernel):
            if len(kernel.inputs) != 1 or len(kernel.outputs) < 2:
                diags.append(
                    _diag(
                        "V104",
                        "error",
                        kernel.name,
                        f"fork has {len(kernel.inputs)} input(s) and "
                        f"{len(kernel.outputs)} arm(s); needs 1 input and ≥ 2 arms",
                        "§III-B5",
                        inputs=len(kernel.inputs),
                        outputs=len(kernel.outputs),
                    )
                )
            continue
        for ktype, n_in, n_out in expected:
            if isinstance(kernel, ktype):
                if len(kernel.inputs) != n_in or len(kernel.outputs) != n_out:
                    diags.append(
                        _diag(
                            "V103",
                            "error",
                            kernel.name,
                            f"{ktype.__name__} expects {n_in} input(s) / {n_out} "
                            f"output(s), has {len(kernel.inputs)} / {len(kernel.outputs)}",
                            "§III-B",
                            expected=(n_in, n_out),
                            found=(len(kernel.inputs), len(kernel.outputs)),
                        )
                    )
                break
    return diags


def _pipeline_bits(pipeline: "Pipeline") -> list[Diagnostic]:
    """V201: declared Stream.bits vs the producing node's tensor spec."""
    diags: list[Diagnostic] = []
    for stream in pipeline.engine.streams:
        node = _producer_node(pipeline, stream)
        if node is None:
            continue
        spec = pipeline.graph.specs[node]
        if stream.bits != spec.stream_bits:
            diags.append(
                _diag(
                    "V201",
                    "error",
                    stream.name,
                    f"stream declares {stream.bits}-bit elements but producer "
                    f"{node!r} emits {spec.stream_bits}-bit {spec.kind!r} values",
                    "§III-B2",
                    declared=stream.bits,
                    expected=spec.stream_bits,
                    producer=node,
                )
            )
    return diags


def _pipeline_skip_capacities(
    pipeline: "Pipeline",
    exact: dict[str, int] | None,
) -> list[Diagnostic]:
    """V301: every skip FIFO holds at least its statically required minimum.

    Chain FIFOs are deadlock-free at any capacity ≥ 1 under backpressure
    (the producer stalls, nothing is lost); the reconvergent skip edges are
    the ones that deadlock when undersized — the fork cannot push the skip
    arm, the regular-path convolution starves, and the adder never drains
    either input.  With the exact solver the minimum is sharp; without it
    (bound mode) an undersized capacity is only *suspect*, so the severity
    drops to warning.
    """
    diags: list[Diagnostic] = []
    for add_name, stream in pipeline.skip_streams.items():
        bound = skip_formula_bound(pipeline.graph, add_name)
        required = exact.get(add_name) if exact is not None else None
        if required is not None:
            if stream.capacity < required:
                diags.append(
                    _diag(
                        "V301",
                        "error",
                        stream.name,
                        f"skip FIFO capacity {stream.capacity} < exact requirement "
                        f"{required}; the residual block will deadlock — minimum "
                        f"safe capacity is {required}",
                        "§III-B5",
                        capacity=stream.capacity,
                        required=required,
                        add=add_name,
                    )
                )
        elif stream.capacity < bound:
            diags.append(
                _diag(
                    "V301",
                    "warning",
                    stream.name,
                    f"skip FIFO capacity {stream.capacity} is below the §III-B5 "
                    f"formula bound {bound} and the exact solver did not run — "
                    "the residual block may deadlock",
                    "§III-B5",
                    capacity=stream.capacity,
                    bound=bound,
                    add=add_name,
                )
            )
    return diags


def _pipeline_links(pipeline: "Pipeline") -> list[Diagnostic]:
    """V501/V502/V503/V302: §III-B6 crossing feasibility and buffering."""
    diags: list[Diagnostic] = []
    worst: tuple[float, str] | None = None
    for crossing in pipeline.crossings:
        capacity_mbps = crossing.link.bandwidth_gbps * 1000.0
        util = crossing.required_mbps / capacity_mbps if capacity_mbps else float("inf")
        edge = f"{crossing.edge[0]}->{crossing.edge[1]}"
        if util > 1.0:
            diags.append(
                _diag(
                    "V501",
                    "error",
                    edge,
                    f"crossing needs {crossing.required_mbps:,.0f} Mbps but "
                    f"{crossing.link.name} provides {capacity_mbps:,.0f} Mbps "
                    f"({util:.1f}x overcommitted)",
                    "§III-B6",
                    required_mbps=crossing.required_mbps,
                    capacity_mbps=capacity_mbps,
                    utilization=util,
                )
            )
        elif worst is None or util > worst[0]:
            worst = (util, edge)
    if worst is not None:
        util, edge = worst
        diags.append(
            _diag(
                "V502",
                "info",
                edge,
                f"worst link utilization {util:.1%} "
                f"({1 / util:.0f}x headroom)" if util > 0 else "links idle",
                "§III-B6",
                utilization=util,
            )
        )
    skip_stream_ids = {id(s) for s in pipeline.skip_streams.values()}
    for stream in pipeline.engine.streams:
        if stream.latency > 0:
            min_cap = 2 * stream.latency + 2
            if stream.capacity < min_cap:
                diags.append(
                    _diag(
                        "V302",
                        "warning",
                        stream.name,
                        f"link-crossing FIFO capacity {stream.capacity} cannot cover "
                        f"the {stream.latency}-cycle link round trip (want ≥ {min_cap}); "
                        "throughput will degrade",
                        "§III-B6",
                        capacity=stream.capacity,
                        latency=stream.latency,
                    )
                )
            if id(stream) in skip_stream_ids:
                diags.append(
                    _diag(
                        "V503",
                        "warning",
                        stream.name,
                        "skip stream crosses a chip boundary; §III-B6 keeps residual "
                        "blocks on one DFE (see hardware.partition.atomic_groups)",
                        "§III-B6",
                        latency=stream.latency,
                    )
                )
    return diags


def verify_pipeline(
    pipeline: "Pipeline",
    exact_skip: dict[str, int] | None = None,
    solve: bool = True,
) -> VerifyReport:
    """Contract checks over a built pipeline (no engine run).

    ``exact_skip`` supplies pre-solved §III-B5 requirements; otherwise
    ``solve=True`` (default) runs :func:`solve_skip_capacities` — cached on
    the graph, so a pipeline built with exact sizing re-uses its own
    solution.  ``solve=False`` falls back to the closed-form bound.
    """
    if exact_skip is None and solve and pipeline.skip_streams:
        exact_skip = solve_skip_capacities(
            pipeline.graph,
            partition=pipeline.partition,
            link=pipeline.link,
            fclk_mhz=pipeline.fclk_mhz,
        )
    report = VerifyReport(
        subject=pipeline.graph.name,
        skip_mode="exact" if exact_skip is not None or not pipeline.skip_streams else "bound",
    )
    report.extend(_pipeline_bindings(pipeline))
    report.extend(_pipeline_arities(pipeline))
    report.extend(_pipeline_bits(pipeline))
    report.extend(_pipeline_skip_capacities(pipeline, exact_skip))
    report.extend(_pipeline_links(pipeline))
    if exact_skip:
        report.skip_capacities = dict(exact_skip)
    report.sort()
    return report


# -- partition scoring (planner API) --------------------------------------


def partition_feasibility(
    graph: LayerGraph,
    partition: list[list[str]],
    *,
    device: "FPGASpec | None" = None,
    cal: "ResourceCalibration | None" = None,
    fill_cap: float = 0.8,
    link: LinkSpec = MAXRING,
    fclk_mhz: float = 105.0,
    slo_fps: float | None = None,
    per_dfe: "list[ResourceEstimate] | None" = None,
) -> list[Diagnostic]:
    """Score a candidate partition statically — no pipeline build, no replay.

    The reusable feasibility core behind the partition planner's search
    loop: per-DFE LUT/FF/BRAM budgets at the fill cap (V701/V702/V703),
    §III-B6 link bandwidth on every crossing (V501, with the worst-case
    headroom as V502), skip streams crossing a chip boundary (V503), and an
    optional throughput SLO against the analytic rate model (V704).  An
    empty list means the candidate is feasible.  ``per_dfe`` lets the
    planner hand in ledgers it already computed from cached node estimates.
    """
    from ..hardware.calibration import DEFAULT_RESOURCE_CAL
    from ..hardware.device import STRATIX_V_5SGSD8
    from ..hardware.partition import partition_crossings, partition_resources

    dev = device if device is not None else STRATIX_V_5SGSD8
    res_cal = cal if cal is not None else DEFAULT_RESOURCE_CAL
    if per_dfe is None:
        per_dfe = partition_resources(graph, partition, res_cal)

    diags: list[Diagnostic] = []
    budgets = (
        ("V701", "LUT", dev.luts * fill_cap, lambda e: e.luts),
        ("V702", "FF", dev.ffs * fill_cap, lambda e: e.ffs),
        ("V703", "BRAM Kbit", dev.bram_kbits * fill_cap, lambda e: e.bram_kbits),
    )
    for idx, est in enumerate(per_dfe):
        for code, label, budget, used_of in budgets:
            used = used_of(est)
            if used > budget:
                diags.append(
                    _diag(
                        code,
                        "error",
                        f"dfe{idx}",
                        f"{label} usage {used:,.0f} exceeds the {dev.name} budget "
                        f"{budget:,.0f} (fill cap {fill_cap:.0%})",
                        "§III-B6",
                        dfe=idx,
                        used=used,
                        budget=budget,
                        fill_cap=fill_cap,
                    )
                )

    capacity_mbps = link.bandwidth_gbps * 1000.0
    worst: tuple[float, str] | None = None
    for u, v, mbps in partition_crossings(graph, partition, fclk_mhz):
        util = mbps / capacity_mbps if capacity_mbps else float("inf")
        edge = f"{u}->{v}"
        if util > 1.0:
            diags.append(
                _diag(
                    "V501",
                    "error",
                    edge,
                    f"crossing needs {mbps:,.0f} Mbps but {link.name} provides "
                    f"{capacity_mbps:,.0f} Mbps ({util:.1f}x overcommitted)",
                    "§III-B6",
                    required_mbps=mbps,
                    capacity_mbps=capacity_mbps,
                    utilization=util,
                )
            )
        elif worst is None or util > worst[0]:
            worst = (util, edge)
    if worst is not None:
        util, edge = worst
        diags.append(
            _diag(
                "V502",
                "info",
                edge,
                f"worst link utilization {util:.1%} ({1 / util:.0f}x headroom)"
                if util > 0
                else "links idle",
                "§III-B6",
                utilization=util,
            )
        )

    dfe_of = {n: idx for idx, group in enumerate(partition) for n in group}
    for name, node in graph.nodes.items():
        if not isinstance(node, AddNode) or name not in dfe_of:
            continue
        for parent in graph.parents(name):
            if parent in dfe_of and dfe_of[parent] != dfe_of[name]:
                diags.append(
                    _diag(
                        "V503",
                        "warning",
                        name,
                        f"skip operand from {parent!r} crosses a chip boundary; "
                        "§III-B6 keeps residual blocks on one DFE",
                        "§III-B6",
                        parent=parent,
                        parent_dfe=dfe_of[parent],
                        add_dfe=dfe_of[name],
                    )
                )

    if slo_fps is not None:
        from ..hardware.timing import estimate_network_timing

        timing = estimate_network_timing(
            graph, fclk_mhz=fclk_mhz, partition=partition, link=link
        )
        if timing.throughput_fps < slo_fps:
            diags.append(
                _diag(
                    "V704",
                    "error",
                    graph.name,
                    f"predicted throughput {timing.throughput_fps:,.1f} fps misses the "
                    f"{slo_fps:,.1f} fps SLO (bottleneck {timing.bottleneck.name!r})",
                    "§IV-B4",
                    throughput_fps=timing.throughput_fps,
                    slo_fps=slo_fps,
                    bottleneck=timing.bottleneck.name,
                )
            )
    return diags


def verify(
    graph: LayerGraph,
    partition: list[list[str]] | None = None,
    link: LinkSpec = MAXRING,
    fclk_mhz: float = 105.0,
    exact: bool | None = None,
    replay_budget: int = DEFAULT_REPLAY_BUDGET,
    build: bool = True,
) -> VerifyReport:
    """Full static verification of a topology: graph checks + a build + pipeline checks.

    ``exact=None`` (default) runs the §III-B5 exact solver whenever its
    replay cost estimate fits ``replay_budget`` and falls back to the
    closed-form bound otherwise (reported as V403).  ``build=False`` skips
    pipeline construction — useful for paper-scale graphs whose kernels are
    expensive to instantiate — and keeps only the graph-level checks.
    No engine cycle is ever simulated on real data.
    """
    has_adds = any(isinstance(node, AddNode) for node in graph.nodes.values())
    structure = _graph_structure(graph)
    if any(d.severity == "error" for d in structure):
        report = VerifyReport(subject=graph.name, skip_mode="bound")
        report.extend(structure)
        report.sort()
        return report
    if exact is None:
        exact = not has_adds or estimated_replay_cost(graph) <= replay_budget
    exact_skip: dict[str, int] | None = None
    if exact and has_adds:
        exact_skip = solve_skip_capacities(graph, partition=partition, link=link, fclk_mhz=fclk_mhz)
    report = verify_graph(
        graph, partition=partition, link=link, fclk_mhz=fclk_mhz, exact_skip=exact_skip
    )
    report.skip_mode = "exact" if exact_skip is not None or not has_adds else "bound"
    if build:
        from .manager import build_pipeline

        spec = graph.input_spec
        zeros = np.zeros((1, spec.height, spec.width, spec.channels), dtype=np.int64)
        pipeline = build_pipeline(
            graph,
            zeros,
            partition=partition,
            link=link,
            fclk_mhz=fclk_mhz,
            skip_sizing="exact" if exact_skip is not None else "bound",
        )
        pipe_report = verify_pipeline(pipeline, exact_skip=exact_skip, solve=False)
        report.extend(pipe_report.diagnostics)
        if pipe_report.skip_capacities:
            report.skip_capacities.update(pipe_report.skip_capacities)
    report.sort()
    return report
