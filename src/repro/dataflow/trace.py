"""Structured event tracing for the dataflow simulator.

A :class:`Tracer` attached to :meth:`Engine.run <repro.dataflow.engine.Engine.run>`
records *typed, cycle-exact* events while the simulation runs:

* **kernel spans** — contiguous runs of identical per-cycle classifications
  (``compute`` / ``starved`` / ``blocked`` / ``idle``).  A span's start is
  the park (or first-active) cycle and its end the last cycle before the
  wake, so park/wake instants are exactly the span edges;
* **stream events** — every push and pop with the post-event occupancy
  (push events also carry the cycle the element becomes visible, which is
  how link transits are reconstructed for streams with latency);
* **reject spans** — contiguous full-FIFO push rejections per stream;
* **image completions** — one instant per image leaving the host sink.

The same trace comes out of both engine paths: the exhaustive loop emits
one classification per kernel per cycle and the tracer merges them into
spans, while the fast path emits live-tick classifications plus synthetic
stall spans for the cycles its park/wake scheduler skipped
(:meth:`on_stall_span`, called from the engine's bulk accounting).  Span
merging makes the two byte-identical — a property the test suite asserts
over every equivalence topology.

Everything the older aggregate analysis needs (live windows, duty cycles,
stall breakdowns) is derivable from the event log — see
:func:`repro.dataflow.tracing.analyze_trace` — plus quantities the
aggregate counters cannot express: FIFO occupancy over time
(:meth:`occupancy_timeline`) and the full Chrome-trace/Perfetto timeline
(:meth:`to_chrome_trace` / :meth:`write_chrome_trace`, one simulated cycle
mapped to one microsecond; load the JSON at https://ui.perfetto.dev).
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:
    from .engine import Engine

__all__ = [
    "ImageCompletion",
    "KernelSpan",
    "RejectSpan",
    "StreamEvent",
    "Tracer",
    "load_chrome_trace",
]

# Span kinds, keyed by the STALL_* codes a tick returns (None == progress).
# Unknown positive codes (custom kernels) map to "stall:<code>" so a trace
# never silently drops information.
_KIND_BY_STATUS = {None: "compute", 1: "starved", 2: "blocked", 3: "idle"}


@dataclass(slots=True)
class KernelSpan:
    """A maximal run of cycles with one per-cycle classification."""

    kernel: str
    kind: str
    start: int
    end: int  # inclusive

    @property
    def cycles(self) -> int:
        return self.end - self.start + 1


@dataclass(slots=True)
class StreamEvent:
    """One push or pop on a stream.

    ``occupancy`` is the FIFO depth *after* the event; for pushes ``ready``
    is the cycle the element becomes visible to the reader (``cycle + 1 +
    latency`` — more than one cycle ahead means the element is in transit
    on a link).
    """

    stream: str
    kind: str  # "push" | "pop"
    cycle: int
    occupancy: int
    ready: int = -1  # pushes only; -1 for pops


@dataclass(slots=True)
class RejectSpan:
    """A maximal run of cycles during which a full stream rejected a push."""

    stream: str
    start: int
    end: int  # inclusive

    @property
    def cycles(self) -> int:
        return self.end - self.start + 1


@dataclass(slots=True)
class ImageCompletion:
    """One image fully emerged from the host sink.

    ``admission`` is the cycle the image's first element entered the fabric
    (stamped by the host source), so the pair renders as a duration — the
    image's lifecycle span — rather than a bare completion instant.  It is
    ``-1`` when the source never reported an admission (a custom pipeline
    without a :class:`~repro.kernels.io.HostSource`); schema
    ``repro-trace/2`` added the field, everything older in the JSON shape is
    unchanged.
    """

    index: int
    cycle: int
    admission: int = -1

    @property
    def span_cycles(self) -> int:
        """Ingest-to-sink cycles, or 0 when the admission is unknown."""
        return self.cycle - self.admission if self.admission >= 0 else 0


class Tracer:
    """Collects typed events from one engine run (single-use).

    Create a fresh tracer per run and pass it to ``Engine.run(trace=...)``
    (or ``simulate(..., trace=...)``); the engine attaches it to every
    kernel and stream for the duration of the run and detaches afterwards.
    """

    def __init__(self) -> None:
        self.engine_name: str = ""
        self.kernel_spans: dict[str, list[KernelSpan]] = {}
        self.stream_events: dict[str, list[StreamEvent]] = {}
        self.reject_spans: dict[str, list[RejectSpan]] = {}
        self.completions: list[ImageCompletion] = []
        self.total_cycles: int | None = None
        self._stream_meta: dict[str, dict[str, int]] = {}
        self._admissions: dict[int, int] = {}
        self._attached = False

    # -- engine lifecycle ------------------------------------------------
    def attach(self, engine: Engine) -> None:
        """Register ``engine``'s kernels and streams and install hooks."""
        if self._attached or self.total_cycles is not None:
            raise ValueError("a Tracer is single-use; create a fresh one per run")
        self._attached = True
        self.engine_name = engine.name
        for kernel in engine.kernels:
            self.kernel_spans.setdefault(kernel.name, [])
            kernel._tracer = self
        for stream in engine.streams:
            self.stream_events.setdefault(stream.name, [])
            self.reject_spans.setdefault(stream.name, [])
            self._stream_meta[stream.name] = {
                "capacity": stream.capacity,
                "latency": stream.latency,
                "bits": stream.bits,
            }
            stream.tracer = self

    def detach(self, engine: Engine) -> None:
        for kernel in engine.kernels:
            kernel._tracer = None
        for stream in engine.streams:
            stream.tracer = None

    def finish(self, total_cycles: int) -> None:
        """Seal the trace with the run's final cycle count."""
        self.total_cycles = total_cycles

    # -- recording hooks (called by the engine, streams, and sink) ------
    def on_tick(self, kernel: str, cycle: int, status: int | None) -> None:
        """One live kernel tick classified as progress or a stall kind."""
        kind = _KIND_BY_STATUS.get(status) or f"stall:{status}"
        spans = self.kernel_spans[kernel]
        if spans:
            last = spans[-1]
            if last.kind == kind and last.end == cycle - 1:
                last.end = cycle
                return
        spans.append(KernelSpan(kernel, kind, cycle, cycle))

    def on_stall_span(self, kernel: str, status: int, start: int, end: int) -> None:
        """Synthesized stall cycles ``[start, end]`` for a parked kernel.

        The fast path calls this when it bulk-accounts the cycles it never
        ticked; the span extends the park tick already recorded by
        :meth:`on_tick`, so the merged trace is identical to the exhaustive
        loop's cycle-by-cycle record.
        """
        kind = _KIND_BY_STATUS.get(status) or f"stall:{status}"
        spans = self.kernel_spans[kernel]
        if spans:
            last = spans[-1]
            if last.kind == kind and last.end == start - 1:
                last.end = end
                return
        spans.append(KernelSpan(kernel, kind, start, end))

    def on_push(self, stream: str, cycle: int, ready: int, occupancy: int) -> None:
        self.stream_events[stream].append(StreamEvent(stream, "push", cycle, occupancy, ready))

    def on_pop(self, stream: str, cycle: int, occupancy: int) -> None:
        self.stream_events[stream].append(StreamEvent(stream, "pop", cycle, occupancy))

    def on_reject(self, stream: str, cycle: int) -> None:
        """One live full-FIFO push rejection."""
        self.on_reject_span(stream, cycle, cycle)

    def on_reject_span(self, stream: str, start: int, end: int) -> None:
        """Rejections for every cycle in ``[start, end]`` (bulk-accounted)."""
        spans = self.reject_spans[stream]
        if spans:
            last = spans[-1]
            if last.end == start - 1:
                last.end = end
                return
        spans.append(RejectSpan(stream, start, end))

    def on_image_admitted(self, index: int, cycle: int) -> None:
        """Image ``index``'s first element entered the fabric at ``cycle``."""
        self._admissions[index] = cycle

    def on_image_complete(self, index: int, cycle: int) -> None:
        self.completions.append(ImageCompletion(index, cycle, self._admissions.get(index, -1)))

    # -- derived views ---------------------------------------------------
    def occupancy_timeline(self, stream: str) -> list[tuple[int, int]]:
        """Step samples ``(cycle, occupancy)`` — one per cycle with events.

        The occupancy is the FIFO depth after the cycle's last event; the
        timeline starts implicitly at ``(run start, 0)``.
        """
        samples: list[tuple[int, int]] = []
        for event in self.stream_events[stream]:
            if samples and samples[-1][0] == event.cycle:
                samples[-1] = (event.cycle, event.occupancy)
            else:
                samples.append((event.cycle, event.occupancy))
        return samples

    def link_transits(self, stream: str) -> list[tuple[int, int]]:
        """``(push_cycle, ready_cycle)`` per element for latency streams."""
        if self._stream_meta.get(stream, {}).get("latency", 0) <= 0:
            return []
        return [(e.cycle, e.ready) for e in self.stream_events[stream] if e.kind == "push"]

    def event_count(self) -> int:
        """Total recorded events (spans + stream events + completions)."""
        return (
            sum(len(s) for s in self.kernel_spans.values())
            + sum(len(e) for e in self.stream_events.values())
            + sum(len(r) for r in self.reject_spans.values())
            + len(self.completions)
        )

    # -- Chrome-trace / Perfetto export ----------------------------------
    def to_chrome_trace(self) -> dict[str, Any]:
        """The event log as a Chrome-trace JSON object.

        One simulated cycle maps to one microsecond of trace time.  Kernels
        render as threads of process 0 (one complete-event per span);
        streams render under process 1 as FIFO-occupancy counter tracks,
        reject complete-events, and async begin/end pairs for elements in
        transit on latency links.  Image completions are global instants.
        Perfetto (https://ui.perfetto.dev) and ``chrome://tracing`` both
        load this format directly.
        """
        events: list[dict[str, Any]] = [
            {
                "name": "process_name",
                "ph": "M",
                "pid": 0,
                "tid": 0,
                "args": {"name": f"kernels ({self.engine_name})"},
            },
            {
                "name": "process_name",
                "ph": "M",
                "pid": 1,
                "tid": 0,
                "args": {"name": f"streams ({self.engine_name})"},
            },
        ]
        for tid, (kernel, spans) in enumerate(self.kernel_spans.items()):
            events.append(
                {"name": "thread_name", "ph": "M", "pid": 0, "tid": tid, "args": {"name": kernel}}
            )
            for span in spans:
                events.append(
                    {
                        "name": span.kind,
                        "cat": "kernel",
                        "ph": "X",
                        "pid": 0,
                        "tid": tid,
                        "ts": span.start,
                        "dur": span.cycles,
                        "args": {"cycles": span.cycles},
                    }
                )
        for tid, stream in enumerate(self.stream_events):
            meta = self._stream_meta.get(stream, {})
            events.append(
                {"name": "thread_name", "ph": "M", "pid": 1, "tid": tid, "args": {"name": stream}}
            )
            for cycle, occupancy in self.occupancy_timeline(stream):
                events.append(
                    {
                        "name": f"fifo:{stream}",
                        "cat": "stream",
                        "ph": "C",
                        "pid": 1,
                        "tid": tid,
                        "ts": cycle,
                        "args": {"occupancy": occupancy},
                    }
                )
            for span in self.reject_spans[stream]:
                events.append(
                    {
                        "name": "reject",
                        "cat": "stream",
                        "ph": "X",
                        "pid": 1,
                        "tid": tid,
                        "ts": span.start,
                        "dur": span.cycles,
                        "args": {"rejected_pushes": span.cycles},
                    }
                )
            for element, (pushed, ready) in enumerate(self.link_transits(stream)):
                ident = f"{stream}#{element}"
                common = {"cat": "link", "pid": 1, "tid": tid, "id": ident, "name": f"transit:{stream}"}
                events.append({**common, "ph": "b", "ts": pushed})
                events.append({**common, "ph": "e", "ts": ready})
        for completion in self.completions:
            if completion.admission >= 0:
                # Lifecycle span: ingest (admission) to sink completion —
                # images render as durations on an "images" track.
                events.append(
                    {
                        "name": f"image {completion.index}",
                        "cat": "image",
                        "ph": "X",
                        "pid": 0,
                        "tid": len(self.kernel_spans),
                        "ts": completion.admission,
                        "dur": max(1, completion.span_cycles),
                        "args": {
                            "admission_cycle": completion.admission,
                            "completion_cycle": completion.cycle,
                            "span_cycles": completion.span_cycles,
                        },
                    }
                )
            events.append(
                {
                    "name": f"image {completion.index} complete",
                    "cat": "image",
                    "ph": "i",
                    "pid": 0,
                    "tid": 0,
                    "ts": completion.cycle,
                    "s": "g",
                }
            )
        if any(c.admission >= 0 for c in self.completions):
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": 0,
                    "tid": len(self.kernel_spans),
                    "args": {"name": "images"},
                }
            )
        return {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "otherData": {
                "engine": self.engine_name,
                "schema": "repro-trace/2",
                "total_cycles": self.total_cycles,
                "time_unit": "1 trace us == 1 simulated cycle",
                "streams": self._stream_meta,
            },
        }

    def write_chrome_trace(self, path: str | Path) -> Path:
        """Serialize :meth:`to_chrome_trace` to ``path``; returns the path."""
        path = Path(path)
        path.write_text(json.dumps(self.to_chrome_trace()) + "\n")
        return path

    # -- equality (used by the fast/exhaustive property tests) -----------
    def state(self) -> dict[str, Any]:
        """The full event log as plain data, for equality assertions."""
        return {
            "engine": self.engine_name,
            "total_cycles": self.total_cycles,
            "kernel_spans": {k: [asdict(s) for s in v] for k, v in self.kernel_spans.items()},
            "stream_events": {k: [asdict(e) for e in v] for k, v in self.stream_events.items()},
            "reject_spans": {k: [asdict(r) for r in v] for k, v in self.reject_spans.items()},
            "completions": [asdict(c) for c in self.completions],
        }


def load_chrome_trace(path: str | Path) -> dict[str, Any]:
    """Load and minimally validate a Chrome-trace JSON file."""
    data = json.loads(Path(path).read_text())
    if not isinstance(data, dict) or not isinstance(data.get("traceEvents"), list):
        raise ValueError(f"{path}: not a Chrome-trace JSON object")
    return data
