"""Inter-chip link models: PCIe (CPU <-> DFE) and MaxRing (DFE <-> DFE).

The paper's §III-B6 bandwidth argument: a 2-bit pixel stream at a 105 MHz
fabric clock needs only 210 Mbps of DFE-to-DFE bandwidth, while a MaxRing
link provides several Gbps — so splitting a network across DFEs is
essentially free.  These classes carry the numbers; the cycle simulator
realises a link as extra stream latency, and the analytic timing model uses
:meth:`LinkSpec.supports` to check feasibility.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["LinkSpec", "MAXRING", "PCIE_GEN2_X8", "required_bandwidth_mbps"]


@dataclass(frozen=True)
class LinkSpec:
    """An inter-chip serial link."""

    name: str
    bandwidth_gbps: float
    latency_cycles: int

    def supports(self, stream_bits: int, fclk_mhz: float) -> bool:
        """Can this link sustain one ``stream_bits``-wide element per fabric clock?"""
        return required_bandwidth_mbps(stream_bits, fclk_mhz) <= self.bandwidth_gbps * 1000.0

    def utilization(self, stream_bits: int, fclk_mhz: float) -> float:
        """Fraction of link bandwidth consumed by the stream."""
        return required_bandwidth_mbps(stream_bits, fclk_mhz) / (self.bandwidth_gbps * 1000.0)


def required_bandwidth_mbps(stream_bits: int, fclk_mhz: float) -> float:
    """Bandwidth for one element per clock: ``bits × f_clk`` (the paper's 210 Mbps)."""
    return stream_bits * fclk_mhz


# The paper: "this link can be set to rates of up to several Gbps".
MAXRING = LinkSpec(name="MaxRing", bandwidth_gbps=4.0, latency_cycles=16)

# The host link; generous for a 2-bit pixel stream either way.
PCIE_GEN2_X8 = LinkSpec(name="PCIe Gen2 x8", bandwidth_gbps=32.0, latency_cycles=64)
