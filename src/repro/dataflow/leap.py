"""Steady-state leap scheduler: fast-forward whole pipeline periods.

The park/wake fast path (engine.py) skips *cycles* no kernel can use; this
module skips entire steady-state *periods*.  Once the pipeline reaches its
steady state — the regime the paper's §IV-B4 clocks-per-picture model
describes — the whole machine repeats the same control schedule every
``P`` cycles, shifted in time.  The leap controller proves that repetition
from two equal state snapshots and then jumps ``n`` periods at once:
counters are extrapolated linearly, cycle-stamped lists are replayed
shifted, parked kernels keep their relative wake offsets, and the trace
recorder replays the reference window's event stream ``n`` times so the
merged event log stays byte-identical to the exhaustive loop's.

Why this is exact and not an approximation:

* **Value independence.**  No opted-in kernel branches on stream element
  *values* — only on counts, scan positions and stream occupancy (the
  :attr:`~repro.dataflow.kernel.Kernel.supports_leap` contract).  Control
  state is therefore fully captured by
  :meth:`~repro.dataflow.kernel.Kernel.leap_phase` plus the park/FIFO
  bookkeeping this module snapshots itself.
* **Phase equality ⇒ periodicity.**  The engine is deterministic, so two
  instants with equal phase (everything cycle-stamped compared *relative*
  to the instant) evolve identically, shifted by their distance ``P``.
  Snapshots are anchored at sink completions; equality of two of them is a
  proof, not a heuristic — there is nothing left that could diverge until
  the host source runs dry, and the window budget keeps the source wet
  through every leaped period.
* **Values come from the functional path.**  Leaped windows never compute
  element values; :func:`batch_reference_outputs` recomputes every output
  through the kernels' vectorized ``batch_compute`` methods (exact integer
  arithmetic in float64, far below 2**53), which is bit-identical to the
  streaming datapath — a tested property.

Anything that breaks the contract — an open-loop arrival schedule, a
custom kernel that never opted in, a phase mismatch, a non-linear counter
delta — demotes the run to the plain fast path (no controller, or a vetoed
jump); results stay bit-identical either way, only the wall-clock changes.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

import numpy as np

from .interval import exact_completion_period
from .kernel import WAKE_NEVER, Kernel
from .stream import Stream
from .trace import Tracer

if TYPE_CHECKING:
    from .engine import Engine
    from .manager import Pipeline

__all__ = ["LeapController", "LeapReport", "batch_reference_outputs"]

# Snapshots kept for period detection.  Most pipelines complete one image
# per period (snapshot distance 1); a few snapshots of slack let the
# detector catch schedules whose phase only recurs every few completions.
_MAX_SNAPSHOTS = 8


@dataclass
class LeapReport:
    """What the leap controller did during one run.

    A ``mode="leap"`` request that never got a controller (an open-loop
    source, a multi-source/sink graph, a kernel outside the contract) still
    produces a report: ``demoted`` is set and ``demotion_reason`` carries
    the human-readable reason from :meth:`LeapController.ineligibility`, so
    the CLI can warn instead of silently running the fast path.
    """

    leaps: int = 0  # jumps taken
    windows: int = 0  # total periods skipped across all jumps
    leaped_cycles: int = 0  # total cycles skipped
    period: int = 0  # last proven period, in cycles
    vetoes: int = 0  # jumps abandoned by delta validation
    demoted: bool = False  # True when no controller could be built at all
    demotion_reason: str | None = None


@dataclass
class _Snapshot:
    """Full control-state fingerprint at one sink-completion instant.

    ``phase`` is the comparable part (everything relative to ``cycle``);
    the remaining fields are the absolute counter/list readings the jump
    needs to extrapolate deltas from.
    """

    cycle: int
    phase: tuple[Any, ...]
    kernel_stats: list[tuple[int, int, int, int, int | None, int | None, int, int]]
    counters: list[tuple[int, ...]]
    list_lens: list[tuple[int, ...]]
    stream_stats: list[tuple[int, int, int]]
    mark_lens: list[int]
    n_admitted: int
    n_completed: int
    trace_mark: int


class _RecordingTracer(Tracer):
    """Forwards every hook to the real tracer while buffering the window.

    Installed in place of the user's tracer for leap runs (it *is* a
    :class:`Tracer`, so every engine/stream/kernel call site type-checks).
    On a jump the buffered reference window is replayed ``n`` times with
    all cycle stamps shifted by ``j * P`` and image indices by the
    window's admission/completion counts; the tracer's span merging then
    reconstructs exactly the event log the exhaustive loop would have
    written — long stall spans chain across the jump because a parked
    kernel's re-park instant sits exactly one period after the previous
    one (that is what phase equality asserts).
    """

    def __init__(self, inner: Tracer) -> None:
        super().__init__()
        self._inner = inner
        self._buffer: list[tuple[Any, ...]] = []

    # -- engine lifecycle: delegate, then steal the hook pointers --------
    def attach(self, engine: Engine) -> None:
        self._inner.attach(engine)
        for kernel in engine.kernels:
            kernel._tracer = self
        for stream in engine.streams:
            stream.tracer = self

    def detach(self, engine: Engine) -> None:
        self._inner.detach(engine)

    def finish(self, total_cycles: int) -> None:
        self._inner.finish(total_cycles)

    # -- recording hooks -------------------------------------------------
    def on_tick(self, kernel: str, cycle: int, status: int | None) -> None:
        self._inner.on_tick(kernel, cycle, status)
        self._buffer.append(("tick", kernel, cycle, status))

    def on_stall_span(self, kernel: str, status: int, start: int, end: int) -> None:
        self._inner.on_stall_span(kernel, status, start, end)
        self._buffer.append(("stall", kernel, status, start, end))

    def on_push(self, stream: str, cycle: int, ready: int, occupancy: int) -> None:
        self._inner.on_push(stream, cycle, ready, occupancy)
        self._buffer.append(("push", stream, cycle, ready, occupancy))

    def on_pop(self, stream: str, cycle: int, occupancy: int) -> None:
        self._inner.on_pop(stream, cycle, occupancy)
        self._buffer.append(("pop", stream, cycle, occupancy))

    # on_reject is inherited: the base implementation routes through
    # on_reject_span, so overriding the span hook covers both.
    def on_reject_span(self, stream: str, start: int, end: int) -> None:
        self._inner.on_reject_span(stream, start, end)
        self._buffer.append(("reject", stream, start, end))

    def on_image_admitted(self, index: int, cycle: int) -> None:
        self._inner.on_image_admitted(index, cycle)
        self._buffer.append(("admit", index, cycle))

    def on_image_complete(self, index: int, cycle: int) -> None:
        self._inner.on_image_complete(index, cycle)
        self._buffer.append(("complete", index, cycle))

    # -- window bookkeeping ----------------------------------------------
    def mark(self) -> int:
        return len(self._buffer)

    def trim(self, mark: int) -> None:
        del self._buffer[:mark]

    def replay(self, mark: int, n: int, period: int, d_adm: int, d_comp: int) -> None:
        """Emit the buffered window ``[mark:]`` ``n`` more times, shifted."""
        inner = self._inner
        window = self._buffer[mark:]
        for j in range(1, n + 1):
            shift = j * period
            for ev in window:
                kind = ev[0]
                if kind == "tick":
                    inner.on_tick(ev[1], ev[2] + shift, ev[3])
                elif kind == "push":
                    inner.on_push(ev[1], ev[2] + shift, ev[3] + shift, ev[4])
                elif kind == "pop":
                    inner.on_pop(ev[1], ev[2] + shift, ev[3])
                elif kind == "stall":
                    inner.on_stall_span(ev[1], ev[2], ev[3] + shift, ev[4] + shift)
                elif kind == "reject":
                    inner.on_reject_span(ev[1], ev[2] + shift, ev[3] + shift)
                elif kind == "admit":
                    inner.on_image_admitted(ev[1] + j * d_adm, ev[2] + shift)
                else:
                    inner.on_image_complete(ev[1] + j * d_comp, ev[2] + shift)


class LeapController:
    """Periodicity detector + whole-period fast-forward for one engine run.

    Create via :meth:`for_engine` (returns ``None`` when any kernel has
    not opted into the leap contract — the run then uses the plain fast
    path).  The engine calls :meth:`on_cycle_end` after every swept cycle;
    the controller answers with the post-jump cycle when it can prove and
    afford a leap, ``None`` otherwise.
    """

    def __init__(self, engine: Engine, source: Kernel, sink: Kernel) -> None:
        self._engine = engine
        self._source = source
        self._sink = sink
        self._max_cycles = 0
        self._recorder: _RecordingTracer | None = None
        self._snaps: deque[_Snapshot] = deque(maxlen=_MAX_SNAPSHOTS)
        self._seen_completions = 0
        self.report = LeapReport()

    @classmethod
    def ineligibility(cls, engine: Engine) -> str | None:
        """Why ``engine`` cannot leap, or ``None`` when it can.

        The single source of the demotion rules: :meth:`for_engine` builds a
        controller exactly when this returns ``None``, and the returned
        string is what ``StreamingRun.leap_report.demotion_reason`` (and the
        CLI's one-line warning) surface to the user.
        """
        kernels = engine.kernels
        if not kernels:
            return "engine has no kernels"
        outside = [k for k in kernels if not k.supports_leap]
        if outside:
            # An open-loop host source opts out on construction; name that
            # case explicitly — it is the routine one (repro load, fleet
            # replicas), not a custom-kernel escape hatch.
            open_loop = [k for k in outside if getattr(k, "arrival_cycles", None) is not None]
            if open_loop:
                return (
                    f"open-loop arrival schedule on source {open_loop[0].name!r} "
                    "(leap requires closed-loop, back-to-back admission)"
                )
            names = ", ".join(repr(k.name) for k in outside[:3])
            more = f" (+{len(outside) - 3} more)" if len(outside) > 3 else ""
            return f"kernel(s) outside the value-independence contract: {names}{more}"
        sources = [k for k in kernels if hasattr(k, "leap_images_left")]
        sinks = [k for k in kernels if hasattr(k, "completion_cycles")]
        if len(sources) != 1 or len(sinks) != 1:
            return (
                f"{len(sources)} host source(s) and {len(sinks)} host sink(s); "
                "the periodicity proof needs exactly one of each"
            )
        return None

    @classmethod
    def for_engine(cls, engine: Engine) -> LeapController | None:
        """A controller for ``engine``, or ``None`` when leap cannot apply.

        Mirrors the fast scheduler's "no classification, no parking" rule:
        a single kernel outside the contract (a custom test kernel, an
        open-loop host source) demotes the whole run to the fast path
        rather than risking a wrong schedule.
        """
        if cls.ineligibility(engine) is not None:
            return None
        kernels = engine.kernels
        sources = [k for k in kernels if hasattr(k, "leap_images_left")]
        sinks = [k for k in kernels if hasattr(k, "completion_cycles")]
        return cls(engine, sources[0], sinks[0])

    # -- run lifecycle ---------------------------------------------------
    def begin_run(self, max_cycles: int, trace: Tracer | None) -> Tracer | None:
        """Arm the controller for one run; returns the tracer to install."""
        self._max_cycles = max_cycles
        self._snaps.clear()
        self._seen_completions = 0
        self.report = LeapReport()
        if trace is None:
            self._recorder = None
            return None
        self._recorder = _RecordingTracer(trace)
        return self._recorder

    # -- per-cycle hook ---------------------------------------------------
    def on_cycle_end(self, cycle: int) -> int | None:
        """Detect/extend periodicity after the sweep at ``cycle``.

        Returns the new engine cycle after a jump, else ``None``.  Cheap
        when nothing completed this cycle (one ``len`` compare).
        """
        completions: list[int] = getattr(self._sink, "completion_cycles")
        n_done = len(completions)
        if n_done == self._seen_completions:
            return None
        self._seen_completions = n_done
        # The shared steady-state primitive gates snapshot comparison: with
        # fewer than two completions there is no candidate period at all.
        if exact_completion_period(completions, window=1) is None:
            self._snaps.append(self._snapshot(cycle))
            return None
        snap = self._snapshot(cycle)
        matched: _Snapshot | None = None
        for old in reversed(self._snaps):
            if old.cycle < cycle and snap.phase == old.phase:
                matched = old
                break
        if matched is None:
            self._snaps.append(snap)
            return None
        period = cycle - matched.cycle
        n = self._window_budget(cycle, period, matched, snap)
        if n <= 0:
            self._snaps.append(snap)
            return None
        if not self._validate(matched, snap, period):
            self.report.vetoes += 1
            self._snaps.append(snap)
            return None
        self._apply(matched, snap, n, period)
        self.report.leaps += 1
        self.report.windows += n
        self.report.leaped_cycles += n * period
        self.report.period = period
        # Post-jump state is a fresh exhaustive-exact instant: re-arm from
        # scratch (stale snapshots hold pre-jump absolute readings).
        self._snaps.clear()
        self._seen_completions = len(completions)
        recorder = self._recorder
        if recorder is not None:
            recorder.trim(recorder.mark())
        return cycle + n * period

    # -- snapshotting ------------------------------------------------------
    def _snapshot(self, cycle: int) -> _Snapshot:
        phase: list[Any] = []
        kstats: list[tuple[int, int, int, int, int | None, int | None, int, int]] = []
        counters: list[tuple[int, ...]] = []
        list_lens: list[tuple[int, ...]] = []
        for k in self._engine.kernels:
            phase.append(k.leap_phase(cycle))
            if k._parked:
                wake = k._wake_at
                phase.append(
                    (1, k._park_kind, cycle - k._park_cycle, wake - cycle if wake < WAKE_NEVER else None)
                )
            else:
                phase.append((0,))
            st = k.stats
            kstats.append(
                (
                    st.active_cycles,
                    st.input_starved_cycles,
                    st.output_blocked_cycles,
                    st.idle_cycles,
                    st.first_active_cycle,
                    st.last_active_cycle,
                    st.elements_in,
                    st.elements_out,
                )
            )
            counters.append(tuple(int(getattr(k, a)) for a in k.leap_counters))
            list_lens.append(
                tuple(len(getattr(k, a)) for a in (*k.leap_cycle_lists, *k.leap_value_lists))
            )
        sstats: list[tuple[int, int, int]] = []
        mark_lens: list[int] = []
        for s in self._engine.streams:
            fifo = s._fifo
            tail: list[int] = []
            for i in range(len(fifo) - 1, -1, -1):
                ready = fifo[i][1]
                if ready <= cycle:
                    break  # ready cycles are monotone: the rest is visible
                tail.append(ready - cycle)
            phase.append(
                (len(fifo), tuple(tail), s.stats.pushes % s.mark_every if s.mark_every else 0)
            )
            sstats.append((s.stats.pushes, s.stats.pops, s.stats.full_rejections))
            mark_lens.append(len(s.mark_cycles))
        recorder = self._recorder
        return _Snapshot(
            cycle=cycle,
            phase=tuple(phase),
            kernel_stats=kstats,
            counters=counters,
            list_lens=list_lens,
            stream_stats=sstats,
            mark_lens=mark_lens,
            n_admitted=len(getattr(self._source, "admission_cycles")),
            n_completed=len(getattr(self._sink, "completion_cycles")),
            trace_mark=recorder.mark() if recorder is not None else 0,
        )

    # -- jump sizing -------------------------------------------------------
    def _window_budget(self, cycle: int, period: int, prev: _Snapshot, cur: _Snapshot) -> int:
        """How many periods the run can afford to skip, conservatively.

        * steady state conserves images: one window must admit exactly as
          many images as it completes (else the pipeline is still filling
          or draining — not safe to extrapolate);
        * the source must stay wet through every leaped window, so at least
          one window's worth of images is held back for live simulation
          (the final approach to dryness is never leaped over);
        * the clock may not jump past ``max_cycles - 1`` — the budget abort
          must fire at exactly the cycle the exhaustive loop aborts at.
        """
        d_adm = cur.n_admitted - prev.n_admitted
        d_comp = cur.n_completed - prev.n_completed
        if d_adm != d_comp or d_adm <= 0:
            return 0
        images_left = int(getattr(self._source, "leap_images_left")())
        n_images = images_left // d_adm - 1
        n_budget = (self._max_cycles - 1 - cycle) // period
        return min(n_images, n_budget)

    # -- delta validation --------------------------------------------------
    def _validate(self, prev: _Snapshot, cur: _Snapshot, period: int) -> bool:
        """Every extrapolated quantity must actually be linear in the window.

        Counters may only grow; cycle-stamped stats may only advance by 0
        or exactly one period.  A violation means the window was not the
        steady state it appeared to be — the jump is vetoed and the run
        continues live (bit-identical, just slower).
        """
        for ps, cs in zip(prev.kernel_stats, cur.kernel_stats):
            for i in (0, 1, 2, 3, 6, 7):
                if int(cs[i]) < int(ps[i]):
                    return False
            p_la, c_la = ps[5], cs[5]
            if p_la is not None:
                if c_la is None:
                    return False
                if c_la - p_la not in (0, period):
                    return False
        for pc, cc in zip(prev.counters, cur.counters):
            if any(c < p for p, c in zip(pc, cc)):
                return False
        for pl, cl in zip(prev.list_lens, cur.list_lens):
            if any(c < p for p, c in zip(pl, cl)):
                return False
        for pss, css in zip(prev.stream_stats, cur.stream_stats):
            if any(c < p for p, c in zip(pss, css)):
                return False
        return not any(c < p for p, c in zip(prev.mark_lens, cur.mark_lens))

    # -- the jump ----------------------------------------------------------
    def _apply(self, prev: _Snapshot, cur: _Snapshot, n: int, period: int) -> None:
        """Fast-forward the whole engine ``n`` periods from ``cur.cycle``."""
        shift_total = n * period
        for idx, k in enumerate(self._engine.kernels):
            ps, cs = prev.kernel_stats[idx], cur.kernel_stats[idx]
            st = k.stats
            st.active_cycles += n * (cs[0] - ps[0])
            st.input_starved_cycles += n * (cs[1] - ps[1])
            st.output_blocked_cycles += n * (cs[2] - ps[2])
            st.idle_cycles += n * (cs[3] - ps[3])
            st.elements_in += n * (cs[6] - ps[6])
            st.elements_out += n * (cs[7] - ps[7])
            # first_active_cycle is set once and never moves.  last_active:
            # a kernel active in the window is active (shifted) in every
            # leaped window; one inactive in the window stays put.
            la = st.last_active_cycle
            if la is not None and (ps[5] is None or la - ps[5] == period):
                st.last_active_cycle = la + shift_total
            for name, pv, cv in zip(k.leap_counters, prev.counters[idx], cur.counters[idx]):
                setattr(k, name, cv + n * (cv - pv))
            names = (*k.leap_cycle_lists, *k.leap_value_lists)
            n_cycle_lists = len(k.leap_cycle_lists)
            for li, name in enumerate(names):
                d = cur.list_lens[idx][li] - prev.list_lens[idx][li]
                if not d:
                    continue
                lst: list[Any] = getattr(k, name)
                window = lst[len(lst) - d :]
                if li < n_cycle_lists:
                    for j in range(1, n + 1):
                        s = j * period
                        lst.extend(v + s for v in window)
                else:
                    # Placeholder values: leap-mode outputs come from
                    # batch_reference_outputs, not the streamed elements.
                    for _ in range(n):
                        lst.extend(window)
            if k._parked:
                k._park_cycle += shift_total
                if k._wake_at < WAKE_NEVER:
                    k._wake_at += shift_total
        for idx, s2 in enumerate(self._engine.streams):
            self._apply_stream(s2, prev.stream_stats[idx], cur.stream_stats[idx],
                               prev.mark_lens[idx], cur.mark_lens[idx], cur.cycle, n, period)
        recorder = self._recorder
        if recorder is not None:
            d_adm = cur.n_admitted - prev.n_admitted
            d_comp = cur.n_completed - prev.n_completed
            recorder.replay(prev.trace_mark, n, period, d_adm, d_comp)

    @staticmethod
    def _apply_stream(
        stream: Stream,
        prev_stats: tuple[int, int, int],
        cur_stats: tuple[int, int, int],
        prev_marks: int,
        cur_marks: int,
        cycle: int,
        n: int,
        period: int,
    ) -> None:
        shift_total = n * period
        st = stream.stats
        st.pushes += n * (cur_stats[0] - prev_stats[0])
        st.pops += n * (cur_stats[1] - prev_stats[1])
        st.full_rejections += n * (cur_stats[2] - prev_stats[2])
        # max_occupancy is pinned, not extrapolated: every leaped window
        # repeats the reference window's occupancy profile, whose peak is
        # already folded into the current maximum.
        d = cur_marks - prev_marks
        if d:
            marks = stream.mark_cycles
            window = marks[len(marks) - d :]
            for j in range(1, n + 1):
                s = j * period
                marks.extend(v + s for v in window)
        # Elements still in flight (ready in the future) ride along with
        # the clock; ready cycles are monotone so only the tail shifts.
        fifo = stream._fifo
        for i in range(len(fifo) - 1, -1, -1):
            value, ready = fifo[i]
            if ready <= cycle:
                break
            fifo[i] = (value, ready + shift_total)


def batch_reference_outputs(pipeline: Pipeline, images: np.ndarray) -> np.ndarray:
    """All images' outputs through the kernels' batched functional paths.

    Walks the IR graph topologically, feeding each kernel's
    ``batch_compute`` the (port-ordered) parent tensors.  Bit-identical to
    both the streamed outputs and :func:`repro.nn.inference.run_graph`
    (tested properties); the leap scheduler substitutes this for the
    element streams it never simulated.
    """
    graph = pipeline.graph
    images = np.asarray(images)
    if images.ndim == 3:
        images = images[None]
    values: dict[str, np.ndarray] = {graph.input_name: images.astype(np.int64)}
    for name in graph.topological():
        if name == graph.input_name:
            continue
        kernel = pipeline.kernels_by_node[name]
        ins = [values[p] for p in graph.parents(name)]
        compute = getattr(kernel, "batch_compute")
        values[name] = np.asarray(compute(*ins), dtype=np.int64)
    return values[graph.output_name]
