"""The cycle-driven dataflow engine.

An :class:`Engine` owns a set of kernels and the streams between them and
advances them clock by clock.  Kernels tick in topological order; since a
stream element pushed at cycle *t* only becomes visible at *t + 1* (plus
link latency), tick order cannot create same-cycle combinational paths —
the model is a registered pipeline, like the synthesized fabric.

The engine is where the paper's overlap claim becomes measurable: "due to
this computation overlap, the latency is pretty small, and after the
initiation interval, computations are performed by all layers
simultaneously."  :meth:`Engine.run` reports per-kernel activity windows
and per-image completion cycles so that claim can be tested, not assumed.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from .interval import mean_completion_interval
from .kernel import STALL_BLOCKED, STALL_STARVED, WAKE_NEVER, Kernel, KernelStats
from .stream import Stream, StreamStats
from .trace import Tracer

if TYPE_CHECKING:
    from ..telemetry.collector import Telemetry
    from .leap import LeapController

__all__ = ["Engine", "RunResult"]


@dataclass
class RunResult:
    """Outcome of an engine run."""

    cycles: int
    completion_cycles: list[int]
    output: np.ndarray | None
    kernel_stats: dict[str, KernelStats]
    stream_stats: dict[str, StreamStats]
    converged: bool

    @property
    def latency_cycles(self) -> int:
        """Cycles until the first image fully emerged."""
        if not self.completion_cycles:
            raise ValueError("no image completed")
        return self.completion_cycles[0]

    @property
    def steady_state_interval(self) -> float | None:
        """Mean cycles between completions (throughput⁻¹); ``None`` under two."""
        return mean_completion_interval(self.completion_cycles)

    def overlap_fraction(self, kernels: list[str]) -> float:
        """Fraction of the run during which all named kernels were concurrently live.

        A kernel is "live" between its first and last active cycle; full
        pipelining means every layer's live window covers nearly the whole
        run after the initiation interval.
        """
        windows = []
        for name in kernels:
            st = self.kernel_stats[name]
            if st.first_active_cycle is None:
                return 0.0
            windows.append((st.first_active_cycle, st.last_active_cycle))
        start = max(w[0] for w in windows)
        end = min(w[1] for w in windows)
        if end <= start:
            return 0.0
        return (end - start) / max(1, self.cycles)


class Engine:
    """A single simulated DFE (or a chain of them when links have latency)."""

    def __init__(self, name: str = "dfe") -> None:
        self.name = name
        self.kernels: list[Kernel] = []
        self.streams: list[Stream] = []
        # Active tracer for the current run (None = tracing off).  Held on
        # the engine so the bulk stall accounting can synthesize the spans
        # the fast path never ticked.
        self._tracer: Tracer | None = None
        # Active telemetry collector (None = telemetry off).  The run loops
        # pay one `is not None` test per cycle for it — no per-event hooks.
        self._telemetry: Telemetry | None = None

    def add_kernel(self, kernel: Kernel) -> Kernel:
        self.kernels.append(kernel)
        return kernel

    def add_stream(self, stream: Stream) -> Stream:
        self.streams.append(stream)
        return stream

    def connect(self, producer: Kernel, consumer: Kernel, stream: Stream) -> Stream:
        self.add_stream(stream)
        producer.connect_output(stream)
        consumer.connect_input(stream)
        stream.writer = producer
        stream.reader = consumer
        return stream

    def run(
        self,
        done: Callable[[], bool],
        max_cycles: int = 50_000_000,
        fast: bool = True,
        trace: Tracer | None = None,
        telemetry: "Telemetry | None" = None,
        leap: "LeapController | None" = None,
    ) -> int:
        """Tick kernels until ``done()`` is true; returns the cycle count.

        ``fast=True`` (the default) runs the runnable-set scheduler: kernels
        that report a stall (starved / blocked / idle) are parked and woken
        by stream push/pop events, with the skipped cycles bulk-accounted so
        every counter matches the exhaustive loop bit for bit.  When no
        kernel is runnable the engine fast-forwards straight to the next
        scheduled wake-up.  ``fast=False`` keeps the original
        tick-everything loop as the executable reference semantics.

        ``trace`` accepts a fresh :class:`~repro.dataflow.trace.Tracer`;
        the engine installs its hooks on every kernel and stream for the
        duration of the run, so the tracer sees every tick classification,
        push/pop/reject, link transit, and image completion with exact
        cycle timestamps.  Both schedulers produce the identical event log
        (the fast path synthesizes stall spans for the cycles it skipped);
        tracing changes no observable behaviour, only records it.

        ``telemetry`` accepts a fresh
        :class:`~repro.telemetry.collector.Telemetry`; the run loops sample
        it every ``telemetry.sample_every`` simulated cycles (mirroring the
        aggregate counters into its metrics registry) and seal it with a
        final sample at the run's cycle count, which therefore reconciles
        exactly with :meth:`collect_stats`.  On a non-converging run the
        collector is left unsealed for the caller (see
        :func:`repro.telemetry.attribution.run_attributed`).

        ``leap`` accepts a :class:`~repro.dataflow.leap.LeapController`
        (built by ``LeapController.for_engine``): on top of the fast
        scheduler, proven steady-state periods are skipped wholesale, with
        every counter, list, park offset and trace event synthesized to
        stay bit-identical to the exhaustive loop.  Requires ``fast=True``.
        """
        if max_cycles <= 0:
            raise ValueError(
                f"engine {self.name!r}: max_cycles must be a positive cycle budget, "
                f"got {max_cycles!r}"
            )
        if leap is not None:
            if not fast:
                raise ValueError(
                    f"engine {self.name!r}: the leap scheduler extends the fast path; "
                    "pass fast=True (or drop the controller)"
                )
            trace = leap.begin_run(max_cycles, trace)
        if trace is not None:
            trace.attach(self)
        if telemetry is not None:
            telemetry.attach(self)
        self._tracer = trace
        self._telemetry = telemetry
        try:
            if fast:
                cycles = self._run_fast(done, max_cycles, leap)
            else:
                cycles = self._run_exhaustive(done, max_cycles)
            if trace is not None:
                trace.finish(cycles)
            if telemetry is not None:
                telemetry.finish(cycles)
            return cycles
        finally:
            self._tracer = None
            self._telemetry = None
            if trace is not None:
                trace.detach(self)

    def _run_exhaustive(self, done: Callable[[], bool], max_cycles: int) -> int:
        """The reference loop: every kernel ticks every cycle."""
        tracer = self._tracer
        if tracer is not None:
            return self._run_exhaustive_traced(done, max_cycles, tracer)
        telemetry = self._telemetry
        cycle = 0
        kernels = self.kernels
        while not done():
            for kernel in kernels:
                kernel.tick(cycle)
            cycle += 1
            if telemetry is not None and cycle >= telemetry.next_sample_at:
                telemetry.sample(cycle)
            if cycle >= max_cycles:
                raise self._no_convergence(max_cycles)
        return cycle

    def _run_exhaustive_traced(
        self, done: Callable[[], bool], max_cycles: int, tracer: Tracer
    ) -> int:
        """The reference loop with every tick classification recorded."""
        telemetry = self._telemetry
        cycle = 0
        kernels = self.kernels
        on_tick = tracer.on_tick
        while not done():
            for kernel in kernels:
                on_tick(kernel.name, cycle, kernel.tick(cycle))
            cycle += 1
            if telemetry is not None and cycle >= telemetry.next_sample_at:
                telemetry.sample(cycle)
            if cycle >= max_cycles:
                raise self._no_convergence(max_cycles)
        return cycle

    # -- fast path -------------------------------------------------------
    #
    # Invariants that make event-skipping exact (see DESIGN.md):
    #
    # * A kernel that reported STARVED cannot unstall until an input stream
    #   gains a ready element — either a pending element's ready cycle
    #   passes (timed wake scheduled at park time) or a new push arrives
    #   (push hook fires with the exact ready cycle).
    # * A kernel that reported BLOCKED cannot unstall until an output pop
    #   frees space (pop hook).
    # * An IDLE kernel (host endpoints after their data is exhausted) never
    #   unstalls; its idle cycles are settled when the run ends.
    # * Stall ticks are side-effect-free except for their counters: one
    #   stall counter per cycle, plus one ``full_rejections`` per cycle on
    #   ``outputs[0]`` for kernels whose blocked tick attempts a push
    #   (``blocked_rejects_output``).  Parked cycles replay exactly those
    #   increments, so stats are bit-identical to the exhaustive loop.
    # * Kernels whose tick reports no classification are never parked and
    #   tick every cycle, so arbitrary user kernels degrade to the
    #   exhaustive semantics rather than to wrong schedules.

    def _run_fast(
        self,
        done: Callable[[], bool],
        max_cycles: int,
        leap: "LeapController | None" = None,
    ) -> int:
        kernels = self.kernels
        tracer = self._tracer
        telemetry = self._telemetry
        for kernel in kernels:
            kernel._parked = False
            kernel._wake_at = WAKE_NEVER
        n = len(kernels)
        n_parked = 0
        cycle = 0
        while not done():
            if n_parked == n:
                # Nothing runnable: fast-forward straight to the earliest
                # wake-up (pending stream latency, usually a link in flight).
                # The clamp matters: a pop hook can leave a parked writer
                # with a _wake_at in the *past* (the pop's cycle, when the
                # writer's sweep slot had already gone by), and jumping to
                # it would rewind the clock and replay cycles the exhaustive
                # loop ran exactly once.  Stale wake-ups are instead served
                # by the ``_wake_at <= cycle`` test in the sweep below.
                target = min(k._wake_at for k in kernels)
                if target >= max_cycles:
                    self._settle(max_cycles)
                if target > cycle:
                    cycle = target
            for kernel in kernels:
                if kernel._parked:
                    if kernel._wake_at > cycle:
                        continue
                    # Wake: replay the stall counters for the skipped cycles.
                    skipped = cycle - kernel._park_cycle - 1
                    if skipped > 0:
                        self._account(kernel, skipped)
                    kernel._parked = False
                    kernel._wake_at = WAKE_NEVER
                    n_parked -= 1
                status = kernel.tick(cycle)
                if tracer is not None:
                    tracer.on_tick(kernel.name, cycle, status)
                if status is not None:
                    kernel._parked = True
                    kernel._park_cycle = cycle
                    kernel._park_kind = status
                    n_parked += 1
                    if status == STALL_STARVED:
                        # Timed wake at the earliest not-yet-ready input
                        # element; inputs that are already ready cannot
                        # change this kernel's state (only a new push on
                        # another input can, via the push hook).
                        best = WAKE_NEVER
                        for stream in kernel.inputs:
                            fifo = stream._fifo
                            if fifo:
                                ready = fifo[0][1]
                                if cycle < ready < best:
                                    best = ready
                        kernel._wake_at = best
                    elif status == STALL_BLOCKED:
                        # Defensive: with a non-topological tick order a
                        # consumer may pop before this kernel ticks; re-check
                        # next cycle if space already exists.
                        if all(s.can_push() for s in kernel.outputs):
                            kernel._wake_at = cycle + 1
                    elif kernel._wake_hint > cycle:
                        # An idle park with a self-scheduled wake-up: the
                        # open-loop host source knows the exact cycle its
                        # next image arrives.  Other STALL_IDLE kernels never
                        # wake and are settled at end of run.
                        kernel._wake_at = kernel._wake_hint
            if leap is not None:
                # After the sweep the cycle's state is final: the controller
                # snapshots at sink completions and, once periodicity is
                # proven, fast-forwards whole steady-state periods.  The
                # jump lands on the same all-counters-exact state the loop
                # would reach by simulating them, so everything below
                # (telemetry sampling, budget abort, park bookkeeping)
                # continues unchanged.
                jumped = leap.on_cycle_end(cycle)
                if jumped is not None:
                    cycle = jumped
            cycle += 1
            if telemetry is not None and cycle >= telemetry.next_sample_at:
                # Mid-run samples virtually account parked kernels' pending
                # stall cycles (see Telemetry.sample), so sampled counters
                # match the exhaustive loop's at this very cycle.
                telemetry.sample(cycle)
            if cycle >= max_cycles:
                self._settle(max_cycles)
        # The exhaustive loop ticked still-parked kernels through the final
        # cycle (cycle - 1); settle their stall counters to match.
        for kernel in kernels:
            if kernel._parked:
                skipped = cycle - kernel._park_cycle - 1
                if skipped > 0:
                    self._account(kernel, skipped)
                kernel._parked = False
                kernel._wake_at = WAKE_NEVER
        return cycle

    def _settle(self, max_cycles: int) -> None:
        """Account parked kernels up to ``max_cycles`` and raise (no convergence)."""
        for kernel in self.kernels:
            if kernel._parked:
                skipped = max_cycles - kernel._park_cycle - 1
                if skipped > 0:
                    self._account(kernel, skipped)
                kernel._parked = False
                kernel._wake_at = WAKE_NEVER
        raise self._no_convergence(max_cycles)

    def _no_convergence(self, max_cycles: int) -> RuntimeError:
        """Build the abort error, naming the starved/blocked edges at abort.

        A deadlocked pipeline shows a cycle of blame: some kernel blocked on
        a full stream (usually an undersized skip FIFO) starves everything
        downstream of it.  Reporting each stalled kernel with the offending
        stream's occupancy turns "no convergence" into a pointer at the
        exact edge; the static verifier can then name the minimum safe
        capacity without re-running anything.
        """
        cycle = max_cycles  # visibility at the abort point (all pushes settled)
        lines: list[str] = []
        for kernel in self.kernels:
            full = [s for s in kernel.outputs if len(s._fifo) >= s.capacity]
            if full:
                detail = ", ".join(
                    f"full {s.name!r} (occupancy {len(s._fifo)}/{s.capacity})" for s in full
                )
                lines.append(f"    {kernel.name}: blocked on {detail}")
                continue
            starved = [s for s in kernel.inputs if s.ready_count(cycle) == 0]
            if kernel.inputs and starved:
                detail = ", ".join(
                    f"{s.name!r} (occupancy {len(s._fifo)}/{s.capacity}, 0 ready)"
                    for s in starved
                )
                lines.append(f"    {kernel.name}: starved on empty {detail}")
        message = (
            f"engine {self.name!r}: no convergence after {max_cycles} cycles "
            "(deadlock or undersized run budget)"
        )
        if lines:
            shown = lines[:8]
            if len(lines) > len(shown):
                shown.append(f"    ... and {len(lines) - len(shown)} more stalled kernels")
            message += (
                "\n  stalled kernels at abort:\n"
                + "\n".join(shown)
                + "\n  hint: `python -m repro check` statically verifies FIFO sizing, "
                "bitwidths and partition feasibility before any cycle is simulated"
            )
        return RuntimeError(message)

    def _account(self, kernel: Kernel, skipped: int) -> None:
        """Replay ``skipped`` stall cycles' worth of counters on a parked kernel."""
        stats = kernel.stats
        kind = kernel._park_kind
        if kind == STALL_STARVED:
            stats.input_starved_cycles += skipped
        elif kind == STALL_BLOCKED:
            stats.output_blocked_cycles += skipped
            if kernel.blocked_rejects_output:
                kernel.outputs[0].stats.full_rejections += skipped
        else:
            stats.idle_cycles += skipped
        tracer = self._tracer
        if tracer is not None:
            # Synthesize the stall span the fast path never ticked so the
            # event trace is identical to the exhaustive loop's: the span
            # extends the live park tick through the cycle before the wake.
            start = kernel._park_cycle + 1
            end = kernel._park_cycle + skipped
            tracer.on_stall_span(kernel.name, kind, start, end)
            if kind == STALL_BLOCKED and kernel.blocked_rejects_output:
                tracer.on_reject_span(kernel.outputs[0].name, start, end)

    def reset(self) -> None:
        for kernel in self.kernels:
            kernel.reset()
        for stream in self.streams:
            stream.reset()

    def collect_stats(self) -> tuple[dict[str, KernelStats], dict[str, StreamStats]]:
        return (
            {k.name: k.stats for k in self.kernels},
            {s.name: s.stats for s in self.streams},
        )
