"""The cycle-driven dataflow engine.

An :class:`Engine` owns a set of kernels and the streams between them and
advances them clock by clock.  Kernels tick in topological order; since a
stream element pushed at cycle *t* only becomes visible at *t + 1* (plus
link latency), tick order cannot create same-cycle combinational paths —
the model is a registered pipeline, like the synthesized fabric.

The engine is where the paper's overlap claim becomes measurable: "due to
this computation overlap, the latency is pretty small, and after the
initiation interval, computations are performed by all layers
simultaneously."  :meth:`Engine.run` reports per-kernel activity windows
and per-image completion cycles so that claim can be tested, not assumed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .kernel import Kernel, KernelStats
from .stream import Stream, StreamStats

__all__ = ["Engine", "RunResult"]


@dataclass
class RunResult:
    """Outcome of an engine run."""

    cycles: int
    completion_cycles: list[int]
    output: np.ndarray | None
    kernel_stats: dict[str, KernelStats]
    stream_stats: dict[str, StreamStats]
    converged: bool

    @property
    def latency_cycles(self) -> int:
        """Cycles until the first image fully emerged."""
        if not self.completion_cycles:
            raise ValueError("no image completed")
        return self.completion_cycles[0]

    @property
    def steady_state_interval(self) -> float:
        """Mean cycles between consecutive image completions (throughput⁻¹)."""
        if len(self.completion_cycles) < 2:
            raise ValueError("need at least two completed images for an interval")
        diffs = np.diff(self.completion_cycles)
        return float(diffs.mean())

    def overlap_fraction(self, kernels: list[str]) -> float:
        """Fraction of the run during which all named kernels were concurrently live.

        A kernel is "live" between its first and last active cycle; full
        pipelining means every layer's live window covers nearly the whole
        run after the initiation interval.
        """
        windows = []
        for name in kernels:
            st = self.kernel_stats[name]
            if st.first_active_cycle is None:
                return 0.0
            windows.append((st.first_active_cycle, st.last_active_cycle))
        start = max(w[0] for w in windows)
        end = min(w[1] for w in windows)
        if end <= start:
            return 0.0
        return (end - start) / max(1, self.cycles)


class Engine:
    """A single simulated DFE (or a chain of them when links have latency)."""

    def __init__(self, name: str = "dfe") -> None:
        self.name = name
        self.kernels: list[Kernel] = []
        self.streams: list[Stream] = []

    def add_kernel(self, kernel: Kernel) -> Kernel:
        self.kernels.append(kernel)
        return kernel

    def add_stream(self, stream: Stream) -> Stream:
        self.streams.append(stream)
        return stream

    def connect(self, producer: Kernel, consumer: Kernel, stream: Stream) -> Stream:
        self.add_stream(stream)
        producer.connect_output(stream)
        consumer.connect_input(stream)
        return stream

    def run(self, done: callable, max_cycles: int = 50_000_000) -> int:
        """Tick all kernels until ``done()`` is true; returns the cycle count."""
        cycle = 0
        kernels = self.kernels
        while not done():
            for kernel in kernels:
                kernel.tick(cycle)
            cycle += 1
            if cycle >= max_cycles:
                raise RuntimeError(
                    f"engine {self.name!r}: no convergence after {max_cycles} cycles "
                    "(deadlock or undersized run budget)"
                )
        return cycle

    def reset(self) -> None:
        for kernel in self.kernels:
            kernel.reset()
        for stream in self.streams:
            stream.reset()

    def collect_stats(self) -> tuple[dict[str, KernelStats], dict[str, StreamStats]]:
        return (
            {k.name: k.stats for k in self.kernels},
            {s.name: s.stats for s in self.streams},
        )
