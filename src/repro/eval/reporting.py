"""Plain-text rendering of experiment tables and series.

The benchmark harness prints the same rows/series the paper reports; these
helpers keep the formatting consistent and machine-greppable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

__all__ = ["ExperimentResult", "format_table", "format_series"]


@dataclass
class ExperimentResult:
    """One reproduced table or figure."""

    exp_id: str
    title: str
    columns: list[str]
    rows: list[dict[str, Any]]
    notes: list[str] = field(default_factory=list)

    def render(self) -> str:
        lines = [f"== {self.exp_id}: {self.title} ==", format_table(self.columns, self.rows)]
        for note in self.notes:
            lines.append(f"  note: {note}")
        return "\n".join(lines)


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.3f}"
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)


def format_table(columns: list[str], rows: list[dict[str, Any]]) -> str:
    """Render rows of dicts as an aligned text table."""
    cells = [[_fmt(row.get(c, "")) for c in columns] for row in rows]
    widths = [max(len(c), *(len(r[i]) for r in cells)) if cells else len(c) for i, c in enumerate(columns)]
    out = ["  ".join(c.ljust(w) for c, w in zip(columns, widths))]
    out.append("  ".join("-" * w for w in widths))
    for r in cells:
        out.append("  ".join(v.ljust(w) for v, w in zip(r, widths)))
    return "\n".join(out)


def format_series(name: str, xs: list[Any], ys: list[float], unit: str = "") -> str:
    """Render one figure series as 'name: x=y' pairs."""
    pairs = ", ".join(f"{x}={_fmt(y)}{unit}" for x, y in zip(xs, ys))
    return f"{name}: {pairs}"
