"""Experiment harness regenerating every table and figure of the paper."""

from .experiments import EXPERIMENTS, SLOW_EXPERIMENTS, run_all, run_experiment
from .figures import (
    VGG_SWEEP_SIZES,
    figure5_runtime,
    minibatch_analysis,
    figure6_resources,
    figure7_power,
    figure8_energy,
    scalability_analysis,
)
from .reporting import ExperimentResult, format_series, format_table
from .tables import (
    accuracy_experiment,
    cached_graph,
    table1_resnet_architecture,
    table2_hardware_spec,
    table3_resnet_vs_alexnet,
    table4_finn_comparison,
)

__all__ = [
    "EXPERIMENTS",
    "SLOW_EXPERIMENTS",
    "run_all",
    "run_experiment",
    "VGG_SWEEP_SIZES",
    "figure5_runtime",
    "minibatch_analysis",
    "figure6_resources",
    "figure7_power",
    "figure8_energy",
    "scalability_analysis",
    "ExperimentResult",
    "format_series",
    "format_table",
    "accuracy_experiment",
    "cached_graph",
    "table1_resnet_architecture",
    "table2_hardware_spec",
    "table3_resnet_vs_alexnet",
    "table4_finn_comparison",
]
