"""Reproduction of the paper's figures (5–8) and the §IV-B4 scalability analysis."""

from __future__ import annotations

from ..hardware import (
    GTX1080,
    P100,
    STRATIX_10_PROJECTION,
    STRATIX_V_5SGSD8,
    FPGAPowerModel,
    GPUModel,
    estimate_network,
    estimate_network_timing,
    partition_network,
)
from .reporting import ExperimentResult
from .tables import cached_graph

__all__ = [
    "figure5_runtime",
    "figure6_resources",
    "figure7_power",
    "figure8_energy",
    "scalability_analysis",
    "minibatch_analysis",
    "VGG_SWEEP_SIZES",
]

# The paper's input-size sweep: CIFAR-10 (32), STL-10 (96), STL-10 resized
# (144) on the VGG-like network, plus ImageNet (224) on ResNet-18/AlexNet.
VGG_SWEEP_SIZES = (32, 96, 144)


def _dfe_point(kind: str, size: int) -> dict:
    """(latency_ms, power_w, n_dfes, energy_j) for a network on DFEs."""
    pool_to = 4 if kind == "vgg" else None
    g = cached_graph(kind, size, pool_to=pool_to)
    part = partition_network(g)
    r = estimate_network(g, n_dfes=part.n_dfes)
    t = estimate_network_timing(g, partition=part.groups)
    power = FPGAPowerModel(STRATIX_V_5SGSD8).power(r, n_dfes=part.n_dfes)
    return {
        "latency_ms": t.latency_ms,
        "power_w": power.total_w,
        "n_dfes": part.n_dfes,
        "energy_j": power.energy_per_image_j(t.latency_ms),
        "graph": g,
    }


def _sweep_rows() -> list[dict]:
    """One row per (input size, network) operating point of Figures 5/7/8."""
    rows = []
    for size in VGG_SWEEP_SIZES:
        rows.append({"input": f"{size}x{size}", "network": "vgg-like", "kind": "vgg", "size": size})
    rows.append({"input": "224x224", "network": "alexnet", "kind": "alexnet", "size": 224})
    rows.append({"input": "224x224", "network": "resnet18", "kind": "resnet18", "size": 224})
    return rows


def figure5_runtime() -> ExperimentResult:
    """Figure 5: runtime of our architecture vs GPUs across input sizes."""
    rows = []
    for point in _sweep_rows():
        dfe = _dfe_point(point["kind"], point["size"])
        g = dfe["graph"]
        row = {
            "input": point["input"],
            "network": point["network"],
            "DFE (ms)": dfe["latency_ms"],
            "P100 (ms)": GPUModel(P100).time_per_image(g).per_image_ms,
            "GTX1080 (ms)": GPUModel(GTX1080).time_per_image(g).per_image_ms,
            "DFEs": dfe["n_dfes"],
        }
        row["DFE/GPU"] = row["DFE (ms)"] / row["P100 (ms)"]
        rows.append(row)
    notes = [
        "paper: DFE ~12% faster than GPU at 32x32; GPUs faster at larger inputs "
        "(ResNet-18 ~4x); ours reproduces both directions "
        f"(32x32 ratio {rows[0]['DFE/GPU']:.2f}, ResNet {rows[-1]['DFE/GPU']:.2f}).",
        "paper DFE measurements: 0.8 ms @32 (Table IV), 13.7/16.1 ms AlexNet/ResNet (Table III).",
    ]
    return ExperimentResult(
        exp_id="figure5",
        title="Runtime comparison vs GPUs (ms)",
        columns=["input", "network", "DFE (ms)", "P100 (ms)", "GTX1080 (ms)", "DFE/GPU", "DFEs"],
        rows=rows,
        notes=notes,
    )


def figure6_resources(sizes: tuple[int, ...] = (32, 64, 96, 144, 224)) -> ExperimentResult:
    """Figure 6: resource utilisation vs input size, change from 32x32 baseline."""
    base = estimate_network(cached_graph("vgg", 32, pool_to=4)).total
    rows = []
    for size in sizes:
        tot = estimate_network(cached_graph("vgg", size, pool_to=4)).total
        rows.append(
            {
                "input": f"{size}x{size}",
                "LUT": round(tot.luts),
                "FF": round(tot.ffs),
                "BRAM (Kbits)": round(tot.bram_kbits),
                "LUT vs 32": f"{(tot.luts / base.luts - 1) * 100:+.1f}%",
                "FF vs 32": f"{(tot.ffs / base.ffs - 1) * 100:+.1f}%",
                "BRAM vs 32": f"{(tot.bram_kbits / base.bram_kbits - 1) * 100:+.1f}%",
            }
        )
    notes = [
        "paper: 32x32 -> 96x96 increases every resource class by ~5%.",
        "the FC stage pools to a fixed 4x4 geometry (see build_vgg_like(pool_to=4)); "
        "growth therefore comes only from line-buffer length, as in the paper.",
    ]
    return ExperimentResult(
        exp_id="figure6",
        title="Resource utilisation vs input size (change from 32x32)",
        columns=["input", "LUT", "FF", "BRAM (Kbits)", "LUT vs 32", "FF vs 32", "BRAM vs 32"],
        rows=rows,
        notes=notes,
    )


def figure7_power() -> ExperimentResult:
    """Figure 7: power of FPGA- vs GPU-based systems (W)."""
    rows = []
    for point in _sweep_rows():
        dfe = _dfe_point(point["kind"], point["size"])
        row = {
            "input": point["input"],
            "network": point["network"],
            "DFE (W)": dfe["power_w"],
            "P100 (W)": GPUModel(P100).power_w(),
            "GTX1080 (W)": GPUModel(GTX1080).power_w(),
            "DFEs": dfe["n_dfes"],
        }
        row["GPU/DFE"] = row["P100 (W)"] / row["DFE (W)"]
        rows.append(row)
    notes = [
        "paper: DFE power at least 15x lower for VGG-like networks; rises when "
        "multiple DFEs are needed (AlexNet: 3).",
        f"ours: single-DFE ratio {rows[0]['GPU/DFE']:.1f}x; "
        f"AlexNet (3 DFEs) {rows[3]['GPU/DFE']:.1f}x.",
    ]
    return ExperimentResult(
        exp_id="figure7",
        title="Power comparison (W)",
        columns=["input", "network", "DFE (W)", "P100 (W)", "GTX1080 (W)", "GPU/DFE", "DFEs"],
        rows=rows,
        notes=notes,
    )


def figure8_energy() -> ExperimentResult:
    """Figure 8: energy per single-image inference (J)."""
    rows = []
    for point in _sweep_rows():
        dfe = _dfe_point(point["kind"], point["size"])
        g = dfe["graph"]
        row = {
            "input": point["input"],
            "network": point["network"],
            "DFE (J)": dfe["energy_j"],
            "P100 (J)": GPUModel(P100).energy_per_image_j(g),
            "GTX1080 (J)": GPUModel(GTX1080).energy_per_image_j(g),
        }
        row["GPU/DFE"] = row["P100 (J)"] / row["DFE (J)"]
        rows.append(row)
    notes = [
        "paper: energy up to 20x better on FPGA; at least 50% less even multi-DFE.",
        f"ours: best ratio {max(r['GPU/DFE'] for r in rows):.1f}x, "
        f"worst {min(r['GPU/DFE'] for r in rows):.1f}x.",
    ]
    return ExperimentResult(
        exp_id="figure8",
        title="Energy per inference (J)",
        columns=["input", "network", "DFE (J)", "P100 (J)", "GTX1080 (J)", "GPU/DFE"],
        rows=rows,
    )


def scalability_analysis() -> ExperimentResult:
    """§IV-B4: clocks per picture and the Stratix 10 projection."""
    g = cached_graph("resnet18")
    t = estimate_network_timing(g)
    t10 = t.at_clock(STRATIX_10_PROJECTION.fabric_mhz)
    part = partition_network(g)
    rows = [
        {
            "quantity": "ResNet-18 clocks/picture (ours)",
            "value": t.latency_cycles,
            "paper": "~1.85e6",
        },
        {"quantity": "runtime @105 MHz (ms)", "value": t.latency_ms, "paper": "16.1 measured"},
        {
            "quantity": "runtime @Stratix-10 5x clock (ms)",
            "value": t10.latency_ms,
            "paper": "3-4 projected",
        },
        {"quantity": "throughput (fps, pipelined)", "value": t.throughput_fps, "paper": ">60 required"},
        {"quantity": "DFEs required", "value": part.n_dfes, "paper": "2 (abstract)"},
        {
            "quantity": "DFEs required on Stratix 10",
            "value": partition_network(g, device=STRATIX_10_PROJECTION).n_dfes,
            "paper": "1 ('fit even bigger networks onto a single FPGA')",
        },
        {
            "quantity": "Stratix-10 DFE / P100 runtime ratio",
            "value": t10.latency_ms / GPUModel(P100).time_per_image(g).per_image_ms,
            "paper": "<1 speculated ('could outperform GPUs')",
        },
        {
            "quantity": "overlap speedup vs layer-sequential",
            "value": t.overlap_speedup,
            "paper": "(the architecture's premise)",
        },
        {
            "quantity": "one-time parameter load (ms)",
            "value": t.parameter_load_ms,
            "paper": "(loaded once before inference, §III-B1a)",
        },
    ]
    return ExperimentResult(
        exp_id="scalability",
        title="Scalability analysis (§IV-B4)",
        columns=["quantity", "value", "paper"],
        rows=rows,
    )


def minibatch_analysis(batches: tuple[int, ...] = (1, 8, 32, 128, 256)) -> ExperimentResult:
    """§IV-B1 discussion: GPUs amortise overheads over minibatches.

    "Modern GPUs can process at least 128-256 inputs with very small
    inference time degradation.  While this is not helpful in real-time
    applications, it can speed up the process if a large amount of
    already-available data must be processed."  The DFE column is constant:
    the streaming pipeline processes one image at a time by construction.
    """
    g = cached_graph("resnet18")
    dfe_ms = estimate_network_timing(g).latency_ms
    rows = []
    for batch in batches:
        rows.append(
            {
                "batch": batch,
                "P100 ms/image": GPUModel(P100).time_per_image(g, batch=batch).per_image_ms,
                "GTX1080 ms/image": GPUModel(GTX1080).time_per_image(g, batch=batch).per_image_ms,
                "DFE ms/image": dfe_ms,
            }
        )
    return ExperimentResult(
        exp_id="minibatch",
        title="GPU minibatch amortisation vs single-image DFE streaming (ResNet-18)",
        columns=["batch", "P100 ms/image", "GTX1080 ms/image", "DFE ms/image"],
        rows=rows,
        notes=[
            "real-time (batch 1): the DFE's gap to the GPU is smallest; "
            "bulk processing: GPUs pull further ahead, exactly as §IV-B1 concedes.",
        ],
    )
