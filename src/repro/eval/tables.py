"""Reproduction of the paper's tables (I–IV)."""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from ..baselines.finn import FINN_PAPER_POINT, finn_performance_model
from ..datasets import make_dataset
from ..hardware import (
    GTX1080,
    P100,
    STRATIX_V_5SGSD8,
    FPGAPowerModel,
    estimate_network,
    estimate_network_timing,
    partition_network,
)
from ..models import build_vgg_like, direct_alexnet_graph, direct_resnet18_graph, direct_vgg_graph
from ..nn import export_model, input_to_levels
from ..nn.graph import LayerGraph
from ..nn.training import evaluate, train
from .reporting import ExperimentResult

__all__ = [
    "cached_graph",
    "table1_resnet_architecture",
    "table2_hardware_spec",
    "table3_resnet_vs_alexnet",
    "table4_finn_comparison",
    "accuracy_experiment",
]


@lru_cache(maxsize=16)
def cached_graph(kind: str, size: int = 224, pool_to: int | None = None) -> LayerGraph:
    """Build-once cache for the cost-model graphs used across experiments."""
    if kind == "vgg":
        return direct_vgg_graph(size, pool_to=pool_to)
    if kind == "alexnet":
        return direct_alexnet_graph(size)
    if kind == "resnet18":
        return direct_resnet18_graph(size)
    raise ValueError(f"unknown graph kind {kind!r}")


def table1_resnet_architecture() -> ExperimentResult:
    """Table I: the ResNet-18 layer table, derived from the built graph."""
    g = cached_graph("resnet18")
    rows = []
    spec = g.specs["conv1"]
    rows.append(
        {"layer": "conv1", "output size": f"{spec.height}x{spec.width}", "parameters": "7x7, 64, stride 2"}
    )
    pool_spec = g.specs["maxpool"]
    stage_names = ["conv2_x", "conv3_x", "conv4_x", "conv5_x"]
    stage_channels = [64, 128, 256, 512]
    for i, (nm, c) in enumerate(zip(stage_names, stage_channels)):
        out = g.specs[f"conv{i + 2}_2.bnact2"]
        extra = "3x3 max pool /2; " if i == 0 else ""
        rows.append(
            {
                "layer": nm,
                "output size": f"{out.height}x{out.width}",
                "parameters": f"{extra}[3x3, {c}] x2 blocks x2",
            }
        )
    fc = g.specs["fc"]
    rows.append(
        {"layer": "head", "output size": "1x1", "parameters": f"avg pool, {fc.channels}-d fc, softmax"}
    )
    expected = {"conv1": (112, 112), "conv2_x": (56, 56), "conv3_x": (28, 28), "conv4_x": (14, 14), "conv5_x": (7, 7)}
    notes = []
    for row in rows[:-1]:
        nm = row["layer"]
        if nm in expected:
            got = tuple(int(v) for v in row["output size"].split("x"))
            status = "OK" if got == expected[nm] else f"MISMATCH (paper {expected[nm]})"
            notes.append(f"{nm}: {row['output size']} {status}")
    return ExperimentResult(
        exp_id="table1",
        title="ResNet-18 architecture (derived from the constructed graph)",
        columns=["layer", "output size", "parameters"],
        rows=rows,
        notes=notes,
    )


def table2_hardware_spec() -> ExperimentResult:
    """Table II: hardware specifications used by the models."""
    rows = [
        {"device": P100.name, "CUDA cores": P100.cuda_cores, "clock (MHz)": P100.core_clock_mhz},
        {"device": GTX1080.name, "CUDA cores": GTX1080.cuda_cores, "clock (MHz)": GTX1080.core_clock_mhz},
        {
            "device": STRATIX_V_5SGSD8.name,
            "ALMs": STRATIX_V_5SGSD8.alms,
            "M20K": STRATIX_V_5SGSD8.m20k_blocks,
            "FFs": STRATIX_V_5SGSD8.ffs,
        },
    ]
    return ExperimentResult(
        exp_id="table2",
        title="Hardware specifications",
        columns=["device", "CUDA cores", "clock (MHz)", "ALMs", "M20K", "FFs"],
        rows=rows,
    )


# Paper Table III values.
_TABLE3_PAPER = {
    "alexnet": {"LUT": 343295, "BRAM (Kbits)": 34600, "FF": 664767, "runtime (ms)": 13.7},
    "resnet18": {"LUT": 596081, "BRAM (Kbits)": 30854, "FF": 1175373, "runtime (ms)": 16.1},
}


def table3_resnet_vs_alexnet() -> ExperimentResult:
    """Table III: ResNet-18 vs AlexNet resources and runtime at 224x224."""
    rows = []
    results = {}
    for kind in ("alexnet", "resnet18"):
        g = cached_graph(kind)
        r = estimate_network(g)
        t = estimate_network_timing(g)
        p = partition_network(g)
        paper = _TABLE3_PAPER[kind]
        results[kind] = (r, t, p)
        rows.append(
            {
                "network": kind,
                "LUT": round(r.total.luts),
                "BRAM (Kbits)": round(r.total.bram_kbits),
                "FF": round(r.total.ffs),
                "runtime (ms)": t.latency_ms,
                "DFEs": p.n_dfes,
                "paper LUT": paper["LUT"],
                "paper BRAM": paper["BRAM (Kbits)"],
                "paper FF": paper["FF"],
                "paper ms": paper["runtime (ms)"],
            }
        )
    r_ax, t_ax, _ = results["alexnet"]
    r_rn, t_rn, _ = results["resnet18"]
    notes = [
        f"ResNet/AlexNet LUT ratio: ours {r_rn.total.luts / r_ax.total.luts:.2f} vs paper {596081 / 343295:.2f}",
        f"ResNet BRAM < AlexNet BRAM: ours {r_rn.total.bram_kbits < r_ax.total.bram_kbits} (paper: True)",
        f"ResNet/AlexNet runtime: ours {t_rn.latency_ms / t_ax.latency_ms:.2f}x vs paper 1.18x",
        "AlexNet BRAM exceeds the paper's figure: its 62.4 Mbit of raw 1-bit weights "
        "cannot fit 34.6 Mbit; see EXPERIMENTS.md.",
    ]
    return ExperimentResult(
        exp_id="table3",
        title="ResNet-18 vs AlexNet (224x224)",
        columns=[
            "network", "LUT", "BRAM (Kbits)", "FF", "runtime (ms)", "DFEs",
            "paper LUT", "paper BRAM", "paper FF", "paper ms",
        ],
        rows=rows,
        notes=notes,
    )


def accuracy_experiment(
    act_bits: int,
    input_size: int = 16,
    width: float = 0.25,
    classes: int = 5,
    epochs: int = 6,
    n_train: int = 320,
    n_test: int = 160,
    seed: int = 0,
) -> float:
    """Train a (scaled-down) VGG-like QNN and return integer-path accuracy.

    Used for the accuracy rows of Table IV and the 1-bit-vs-2-bit
    activation claim: the same topology trained with 1-bit and 2-bit
    activations, evaluated through the exported integer graph.
    """
    ds = make_dataset("cifar10-like", n_train=n_train, n_test=n_test, classes=classes,
                      size=input_size, seed=seed)
    model = build_vgg_like(
        input_size=input_size, classes=classes, act_bits=act_bits, width=width, seed=seed
    )
    train(model, ds.x_train, ds.y_train, epochs=epochs, batch_size=32, lr=2e-3, seed=seed)
    graph = export_model(model, ds.input_shape, name=f"vgg-acc-{act_bits}b")
    in_q = model.layers[0].quantizer
    levels = input_to_levels(ds.x_test, in_q)
    from ..nn.inference import classify

    preds = classify(graph, levels)
    return float((preds == ds.y_test).mean())


def table4_finn_comparison(train_accuracy: bool = True) -> ExperimentResult:
    """Table IV: comparison with FINN at 32x32.

    Resources/time/power for our DFE come from the cost models on the full
    VGG-like network; the FINN column reports their published point plus
    our folded-MVU throughput model.  Accuracy (when ``train_accuracy``)
    comes from actually training scaled-down 1-bit vs 2-bit instances on
    the synthetic CIFAR-like dataset — reproducing the *ordering*, not the
    absolute ImageNet-scale numbers.
    """
    g = cached_graph("vgg", 32)
    r = estimate_network(g)
    t = estimate_network_timing(g)
    power = FPGAPowerModel(STRATIX_V_5SGSD8).power(r)
    finn_perf = finn_performance_model(g)

    acc_ours = acc_finn = float("nan")
    if train_accuracy:
        acc_ours = accuracy_experiment(act_bits=2)
        acc_finn = accuracy_experiment(act_bits=1)

    rows = [
        {
            "metric": "time (ms)",
            "FINN": FINN_PAPER_POINT.time_ms,
            "FINN (our model)": finn_perf["time_ms"],
            "DFE (ours)": t.latency_ms,
            "DFE (paper)": 0.8,
        },
        {
            "metric": "power (W)",
            "FINN": FINN_PAPER_POINT.power_w,
            "DFE (ours)": power.total_w,
            "DFE (paper)": 12.0,
        },
        {
            "metric": "accuracy",
            "FINN": FINN_PAPER_POINT.accuracy,
            "FINN (our model)": acc_finn,
            "DFE (ours)": acc_ours,
            "DFE (paper)": 0.842,
        },
        {
            "metric": "LUT",
            "FINN": FINN_PAPER_POINT.luts,
            "DFE (ours)": round(r.total.luts),
            "DFE (paper)": 133887,
        },
        {
            "metric": "BRAM (Kbits)",
            "FINN": FINN_PAPER_POINT.bram_kbits,
            "DFE (ours)": round(r.total.bram_kbits),
            "DFE (paper)": 11020,
        },
        {
            "metric": "FF",
            "DFE (ours)": round(r.total.ffs),
            "DFE (paper)": 278501,
        },
    ]
    notes = [
        "FINN accuracy/resources are their published Zynq numbers (different vendor; "
        "the paper compares trends, not absolutes).",
        "accuracy rows are synthetic-data scaled-down instances: the reproduced claim "
        "is the ordering 2-bit > 1-bit, matching 84.2% > 80.1%.",
    ]
    return ExperimentResult(
        exp_id="table4",
        title="Comparison with FINN (32x32)",
        columns=["metric", "FINN", "FINN (our model)", "DFE (ours)", "DFE (paper)"],
        rows=rows,
        notes=notes,
    )
