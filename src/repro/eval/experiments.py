"""Experiment registry: one entry per table/figure of the paper.

``run_experiment(exp_id)`` regenerates a single artefact;
``run_all()`` regenerates everything (as ``examples/reproduce_paper.py``
does).  Entries marked slow (training or cycle simulation) can be skipped
with ``quick=True``.
"""

from __future__ import annotations

from typing import Callable

from .figures import (
    figure5_runtime,
    minibatch_analysis,
    figure6_resources,
    figure7_power,
    figure8_energy,
    scalability_analysis,
)
from .reporting import ExperimentResult
from .tables import (
    table1_resnet_architecture,
    table2_hardware_spec,
    table3_resnet_vs_alexnet,
    table4_finn_comparison,
)

__all__ = ["EXPERIMENTS", "SLOW_EXPERIMENTS", "run_experiment", "run_all"]

EXPERIMENTS: dict[str, Callable[[], ExperimentResult]] = {
    "table1": table1_resnet_architecture,
    "table2": table2_hardware_spec,
    "table3": table3_resnet_vs_alexnet,
    "table4": table4_finn_comparison,
    "figure5": figure5_runtime,
    "figure6": figure6_resources,
    "figure7": figure7_power,
    "figure8": figure8_energy,
    "scalability": scalability_analysis,
    "minibatch": minibatch_analysis,
}

# Experiments that train models or run long simulations.
SLOW_EXPERIMENTS = {"table4"}


def run_experiment(exp_id: str, quick: bool = False) -> ExperimentResult:
    """Regenerate one table/figure by id."""
    if exp_id not in EXPERIMENTS:
        raise KeyError(f"unknown experiment {exp_id!r}; choose from {sorted(EXPERIMENTS)}")
    if exp_id == "table4" and quick:
        return table4_finn_comparison(train_accuracy=False)
    return EXPERIMENTS[exp_id]()


def run_all(quick: bool = False) -> list[ExperimentResult]:
    """Regenerate every table and figure, in paper order."""
    return [run_experiment(exp_id, quick=quick) for exp_id in EXPERIMENTS]
