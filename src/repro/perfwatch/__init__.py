"""Continuous perf/resource regression harness.

Four pieces, one policy:

* :mod:`~repro.perfwatch.policy` — the shared strict/loose threshold
  (5% strict on quiet machines, 40% loose on shared CI runners) every
  perf guard in the repo draws from;
* :mod:`~repro.perfwatch.plugin` — a zero-modification pytest plugin
  metering wall time, CPU time, and peak RSS for every test and bench
  case, emitting typed ``repro-perf/1`` reports;
* :mod:`~repro.perfwatch.baseline` — the known-case registry, trajectory
  integrity validation, and the diff engine that gates CI (newest vs
  previous recording per case, worst offender named);
* :mod:`~repro.perfwatch.render` — the trajectory report (ANSI sparkline
  table, markdown, HTML, JSON) behind ``repro perf report``.

See DESIGN.md §4.9 for the architecture.
"""

from .baseline import (
    KNOWN_CASES,
    CaseDelta,
    DiffResult,
    case_series,
    default_trajectory_path,
    diff_reports,
    diff_trajectory,
    latest_rate,
    load_trajectory,
    validate_entry,
    validate_trajectory,
)
from .policy import (
    LOOSE_FLOOR,
    STRICT_FLOOR,
    Violation,
    check_cost,
    check_rate,
    rate_floor,
    strict_mode,
)
from .records import REPORT_SCHEMA, PerfDataError, PerfRecord, PerfReport
from .render import render_html, render_markdown, render_table, sparkline, trajectory_payload

__all__ = [
    "KNOWN_CASES",
    "CaseDelta",
    "DiffResult",
    "case_series",
    "default_trajectory_path",
    "diff_reports",
    "diff_trajectory",
    "latest_rate",
    "load_trajectory",
    "validate_entry",
    "validate_trajectory",
    "LOOSE_FLOOR",
    "STRICT_FLOOR",
    "Violation",
    "check_cost",
    "check_rate",
    "rate_floor",
    "strict_mode",
    "REPORT_SCHEMA",
    "PerfDataError",
    "PerfRecord",
    "PerfReport",
    "render_html",
    "render_markdown",
    "render_table",
    "sparkline",
    "trajectory_payload",
]
