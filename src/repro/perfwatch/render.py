"""Trajectory report rendering: ANSI sparkline table, markdown, HTML, JSON.

``repro perf report`` feeds the parsed ``BENCH_streaming.json`` entries
through these renderers.  The summary table compresses each case's whole
history into one row (first/last/best rate plus a sparkline); the
markdown and HTML renderings additionally list **every** recording of
every case — timestamp, revision, rate — so the full trajectory across
all revisions is readable without touching the raw JSON.
"""

from __future__ import annotations

from typing import Any

from .baseline import case_series

__all__ = [
    "sparkline",
    "trajectory_payload",
    "render_table",
    "render_markdown",
    "render_html",
]

_SPARK_CHARS = "▁▂▃▄▅▆▇█"


def sparkline(values: list[float]) -> str:
    """One block character per value, scaled to the min..max span."""
    if not values:
        return ""
    lo, hi = min(values), max(values)
    if hi <= lo:
        return _SPARK_CHARS[3] * len(values)
    span = hi - lo
    top = len(_SPARK_CHARS) - 1
    return "".join(_SPARK_CHARS[round((v - lo) / span * top)] for v in values)


def _fmt_rate(rate: float) -> str:
    return f"{rate:,.0f}"


def trajectory_payload(entries: list[dict[str, Any]]) -> dict[str, Any]:
    """Machine-readable trajectory: per-case recording lists + summary."""
    series = case_series(entries)
    cases = {}
    for case, recordings in sorted(series.items()):
        rates = [r["rate"] for r in recordings]
        cases[case] = {
            "recordings": [
                {
                    "timestamp": r["timestamp"],
                    "revision": r["revision"],
                    "simulated_cycles_per_second": r["rate"],
                }
                for r in recordings
            ],
            "first": rates[0],
            "last": rates[-1],
            "best": max(rates),
            "overall_change": rates[-1] / rates[0] - 1 if rates[0] else None,
        }
    return {
        "schema": "repro-perf-trajectory/1",
        "entries": len(entries),
        "cases": cases,
    }


def render_table(entries: list[dict[str, Any]]) -> str:
    """The ANSI summary: one sparkline row per case across all entries."""
    series = case_series(entries)
    if not series:
        return "no recorded cases"
    width = max(len(case) for case in series)
    header = (
        f"{'case':<{width}}  {'runs':>4}  {'first':>12}  {'last':>12}  "
        f"{'best':>12}  {'Δ overall':>9}  trajectory"
    )
    lines = [f"perf trajectory — {len(entries)} entr(ies)", header, "-" * len(header)]
    for case, recordings in sorted(series.items()):
        rates = [r["rate"] for r in recordings]
        change = f"{rates[-1] / rates[0] - 1:+.0%}" if rates[0] else "n/a"
        lines.append(
            f"{case:<{width}}  {len(rates):>4}  {_fmt_rate(rates[0]):>12}  "
            f"{_fmt_rate(rates[-1]):>12}  {_fmt_rate(max(rates)):>12}  "
            f"{change:>9}  {sparkline(rates)}"
        )
    lines.append("(rates are simulated cycles per wall second)")
    return "\n".join(lines)


def render_markdown(entries: list[dict[str, Any]]) -> str:
    """Markdown: summary table plus every recording of every case."""
    series = case_series(entries)
    lines = [
        "# Simulator perf trajectory",
        "",
        f"{len(entries)} trajectory entr(ies), {len(series)} case(s); rates are "
        "simulated cycles per wall second.",
        "",
        "| case | runs | first | last | best | Δ overall | trajectory |",
        "|---|---:|---:|---:|---:|---:|---|",
    ]
    for case, recordings in sorted(series.items()):
        rates = [r["rate"] for r in recordings]
        change = f"{rates[-1] / rates[0] - 1:+.0%}" if rates[0] else "n/a"
        lines.append(
            f"| `{case}` | {len(rates)} | {_fmt_rate(rates[0])} | {_fmt_rate(rates[-1])} "
            f"| {_fmt_rate(max(rates))} | {change} | `{sparkline(rates)}` |"
        )
    for case, recordings in sorted(series.items()):
        lines += [
            "",
            f"## `{case}`",
            "",
            "| timestamp | revision | simulated cycles/s |",
            "|---|---|---:|",
        ]
        for r in recordings:
            lines.append(f"| {r['timestamp']} | `{r['revision']}` | {_fmt_rate(r['rate'])} |")
    lines.append("")
    return "\n".join(lines)


def render_html(entries: list[dict[str, Any]]) -> str:
    """A standalone HTML page with the same content as the markdown report."""
    series = case_series(entries)
    rows = []
    for case, recordings in sorted(series.items()):
        rates = [r["rate"] for r in recordings]
        change = f"{rates[-1] / rates[0] - 1:+.0%}" if rates[0] else "n/a"
        rows.append(
            f"<tr><td><code>{case}</code></td><td>{len(rates)}</td>"
            f"<td>{_fmt_rate(rates[0])}</td><td>{_fmt_rate(rates[-1])}</td>"
            f"<td>{_fmt_rate(max(rates))}</td><td>{change}</td>"
            f"<td><code>{sparkline(rates)}</code></td></tr>"
        )
    details = []
    for case, recordings in sorted(series.items()):
        body = "".join(
            f"<tr><td>{r['timestamp']}</td><td><code>{r['revision']}</code></td>"
            f"<td>{_fmt_rate(r['rate'])}</td></tr>"
            for r in recordings
        )
        details.append(
            f"<h2><code>{case}</code></h2><table>"
            "<tr><th>timestamp</th><th>revision</th><th>simulated cycles/s</th></tr>"
            f"{body}</table>"
        )
    return (
        "<!doctype html><html><head><meta charset='utf-8'>"
        "<title>Simulator perf trajectory</title><style>"
        "body{font-family:sans-serif;margin:2em}table{border-collapse:collapse}"
        "td,th{border:1px solid #999;padding:4px 8px;text-align:right}"
        "td:first-child,th:first-child{text-align:left}</style></head><body>"
        f"<h1>Simulator perf trajectory</h1><p>{len(entries)} trajectory entr(ies), "
        f"{len(series)} case(s); rates are simulated cycles per wall second.</p>"
        "<table><tr><th>case</th><th>runs</th><th>first</th><th>last</th>"
        "<th>best</th><th>Δ overall</th><th>trajectory</th></tr>"
        f"{''.join(rows)}</table>{''.join(details)}</body></html>\n"
    )
