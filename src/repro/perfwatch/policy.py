"""Shared strict/loose regression threshold policy.

Every perf guard in the repository — the per-case trajectory guards in
``benchmarks/bench_streaming_sim.py``, the telemetry/loadgen overhead
bounds, and the ``repro perf diff`` CI gate — draws its floor from here
instead of hard-coding it.  Two regimes:

* **strict** (``REPRO_BENCH_STRICT=1``, quiet dedicated machine): a run
  may lose at most 5% against its baseline (floor 0.95).
* **loose** (default, shared/noisy CI runner): a 40% sanity bound
  (floor 0.60) that still catches real regressions without flaking on
  scheduler noise.

The same floor doubles for *cost* metrics (wall seconds, peak RSS) with
the inequality inverted: a cost may grow to at most ``baseline / floor``.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

__all__ = [
    "STRICT_FLOOR",
    "LOOSE_FLOOR",
    "STRICT_ENV",
    "strict_mode",
    "rate_floor",
    "Violation",
    "check_rate",
    "check_cost",
]

STRICT_FLOOR = 0.95
LOOSE_FLOOR = 0.60
STRICT_ENV = "REPRO_BENCH_STRICT"


def strict_mode(strict: bool | None = None) -> bool:
    """Resolve the strictness flag: explicit argument wins, else the env var."""
    if strict is None:
        return bool(os.environ.get(STRICT_ENV))
    return strict


def rate_floor(strict: bool | None = None) -> float:
    """The fraction of the baseline a rate must retain (0.95 strict, 0.60 loose)."""
    return STRICT_FLOOR if strict_mode(strict) else LOOSE_FLOOR


@dataclass(frozen=True)
class Violation:
    """One threshold breach: which case, which metric, by how much."""

    case: str
    metric: str
    kind: str  # "rate" (bigger is better) or "cost" (smaller is better)
    current: float
    baseline: float
    floor: float

    @property
    def ratio(self) -> float:
        """current / baseline (below ``floor`` for rates, above ``1/floor`` for costs)."""
        return self.current / self.baseline if self.baseline else float("inf")

    @property
    def severity(self) -> float:
        """How many times past the allowed bound (>1 by construction); sortable."""
        if self.kind == "rate":
            return (self.baseline * self.floor) / self.current if self.current else float("inf")
        return self.current / (self.baseline / self.floor)

    def __str__(self) -> str:
        if self.kind == "rate":
            return (
                f"{self.case}: {self.metric} {self.current:,.1f} is below "
                f"{self.floor:.0%} of the baseline {self.baseline:,.1f} "
                f"({self.ratio:.1%} retained)"
            )
        return (
            f"{self.case}: {self.metric} {self.current:,.1f} exceeds "
            f"{1 / self.floor:.2f}x the baseline {self.baseline:,.1f} "
            f"({self.ratio:.2f}x)"
        )


def check_rate(
    case: str,
    current: float,
    baseline: float,
    *,
    metric: str = "simulated cycles/s",
    strict: bool | None = None,
) -> Violation | None:
    """Bigger-is-better check: None if ``current >= baseline * floor``."""
    floor = rate_floor(strict)
    if current >= baseline * floor:
        return None
    return Violation(case, metric, "rate", float(current), float(baseline), floor)


def check_cost(
    case: str,
    current: float,
    baseline: float,
    *,
    metric: str = "wall seconds",
    strict: bool | None = None,
) -> Violation | None:
    """Smaller-is-better check: None if ``current <= baseline / floor``."""
    floor = rate_floor(strict)
    if baseline <= 0 or current <= baseline / floor:
        return None
    return Violation(case, metric, "cost", float(current), float(baseline), floor)
