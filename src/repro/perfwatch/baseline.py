"""Baseline engine: load, validate, and diff perf trajectories and reports.

Two baseline sources, one policy:

* the append-only ``BENCH_streaming.json`` trajectory (one entry per
  benchmark session, per-case ``simulated_cycles_per_second``), diffed
  per case as newest-recording vs its previous (or best) recording; and
* stored ``repro-perf/1`` reports from the pytest plugin, diffed per test
  on wall seconds and peak RSS.

Both feed :mod:`repro.perfwatch.policy` for the strict/loose floors and
produce a :class:`DiffResult` whose worst offender is named when the gate
fails — the ``repro perf diff`` CLI exits non-zero on it.

The module also owns the known-case registry: every case key a trajectory
entry may carry.  ``benchmarks/perf_trajectory.py`` validates each entry
against it before appending, and the integrity test in
``tests/test_perfwatch.py`` re-validates the committed file in CI so a
malformed append fails fast.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable

from ..telemetry.manifest import manifest_delta
from .policy import Violation, check_cost, check_rate, rate_floor, strict_mode
from .records import PerfDataError, PerfReport

__all__ = [
    "KNOWN_CASES",
    "REQUIRED_ENTRY_KEYS",
    "default_trajectory_path",
    "load_trajectory",
    "validate_entry",
    "validate_trajectory",
    "case_series",
    "latest_rate",
    "CaseDelta",
    "DiffResult",
    "diff_trajectory",
    "diff_reports",
]

# Every case key a BENCH_streaming.json entry may carry.  Adding a bench
# case means adding it here — the trajectory flush and the CI integrity
# test both refuse unknown keys, so a typo'd case name cannot silently
# fork its own unguarded trajectory.
KNOWN_CASES = frozenset(
    {
        "tiny_chain",
        "tiny_chain_telemetry",
        "tiny_chain_loadgen",
        "tiny_chain_traced",
        "tiny_chain_plan",
        "tiny_resnet",
        "vgg32_dense",
        "vgg32_bitops",
        "vgg32_leap",
        "alexnet224_leap",
        "resnet18_224_leap",
        "fleet_4x_vgg16",
    }
)

REQUIRED_ENTRY_KEYS = ("timestamp", "revision", "python", "numpy")

_TIMESTAMP_FORMAT = "%Y-%m-%dT%H:%M:%SZ"


def default_trajectory_path() -> Path:
    """Resolve ``BENCH_streaming.json``: env override, cwd, then repo root."""
    env = os.environ.get("REPRO_BENCH_PATH")
    if env:
        return Path(env)
    cwd = Path.cwd() / "BENCH_streaming.json"
    if cwd.exists():
        return cwd
    return Path(__file__).resolve().parents[3] / "BENCH_streaming.json"


def load_trajectory(path: str | Path) -> list[dict[str, Any]]:
    """Parse a trajectory file; :class:`PerfDataError` on anything malformed."""
    try:
        entries = json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise PerfDataError(f"cannot read trajectory {path}: {exc}") from exc
    if not isinstance(entries, list):
        raise PerfDataError(f"trajectory {path} is not a JSON list of entries")
    return entries


def validate_entry(
    entry: Any, index: int = 0, *, known_cases: frozenset[str] = KNOWN_CASES
) -> list[str]:
    """Problems with one trajectory entry (empty list = valid)."""
    where = f"entry[{index}]"
    if not isinstance(entry, dict):
        return [f"{where}: not an object"]
    problems = []
    for key in REQUIRED_ENTRY_KEYS:
        if not entry.get(key):
            problems.append(f"{where}: missing required key {key!r}")
    timestamp = entry.get("timestamp")
    if timestamp:
        try:
            time.strptime(str(timestamp), _TIMESTAMP_FORMAT)
        except ValueError:
            problems.append(f"{where}: timestamp {timestamp!r} is not UTC ISO (YYYY-MM-DDTHH:MM:SSZ)")
    cases = entry.get("cases")
    if not isinstance(cases, dict) or not cases:
        problems.append(f"{where}: missing or empty 'cases' object")
        return problems
    for case, data in cases.items():
        if case not in known_cases:
            problems.append(f"{where}: unknown case {case!r} (not in the known-case registry)")
            continue
        if not isinstance(data, dict):
            problems.append(f"{where}: case {case!r} is not an object")
            continue
        rate = data.get("simulated_cycles_per_second")
        if not isinstance(rate, (int, float)) or rate <= 0:
            problems.append(
                f"{where}: case {case!r} has no positive simulated_cycles_per_second"
            )
    return problems


def validate_trajectory(
    entries: list[dict[str, Any]], *, known_cases: frozenset[str] = KNOWN_CASES
) -> list[str]:
    """Problems with the whole trajectory: per-entry shape + append-only order."""
    problems = []
    last_ts: str | None = None
    for index, entry in enumerate(entries):
        problems.extend(validate_entry(entry, index, known_cases=known_cases))
        ts = entry.get("timestamp") if isinstance(entry, dict) else None
        if isinstance(ts, str) and ts:
            # The format is fixed-width UTC ISO, so string order is time order.
            if last_ts is not None and ts < last_ts:
                problems.append(
                    f"entry[{index}]: timestamp {ts} precedes entry[{index - 1}]'s "
                    f"{last_ts} — the trajectory must be append-only"
                )
            last_ts = ts
    return problems


def case_series(entries: list[dict[str, Any]]) -> dict[str, list[dict[str, Any]]]:
    """Chronological recordings per case: entry metadata + the case payload."""
    series: dict[str, list[dict[str, Any]]] = {}
    for index, entry in enumerate(entries):
        if not isinstance(entry, dict):
            continue
        for case, data in (entry.get("cases") or {}).items():
            if not isinstance(data, dict):
                continue
            rate = data.get("simulated_cycles_per_second")
            if not isinstance(rate, (int, float)):
                continue
            series.setdefault(case, []).append(
                {
                    "index": index,
                    "timestamp": entry.get("timestamp"),
                    "revision": entry.get("revision"),
                    "rate": float(rate),
                    "data": data,
                    "entry": entry,
                }
            )
    return series


def latest_rate(entries: list[dict[str, Any]], case: str) -> float | None:
    """The most recent recorded cycles/s for ``case``, or None."""
    recordings = case_series(entries).get(case)
    return recordings[-1]["rate"] if recordings else None


@dataclass(frozen=True)
class CaseDelta:
    """One case's newest measurement against its baseline."""

    case: str
    metric: str
    current: float
    baseline: float | None
    floor: float
    violation: Violation | None = None
    current_label: str = ""
    baseline_label: str = ""
    cross_host: dict[str, Any] = field(default_factory=dict)

    @property
    def new(self) -> bool:
        return self.baseline is None

    @property
    def ok(self) -> bool:
        return self.violation is None

    @property
    def ratio(self) -> float | None:
        if self.baseline is None or not self.baseline:
            return None
        return self.current / self.baseline

    def as_dict(self) -> dict[str, Any]:
        return {
            "case": self.case,
            "metric": self.metric,
            "current": self.current,
            "baseline": self.baseline,
            "ratio": self.ratio,
            "floor": self.floor,
            "ok": self.ok,
            "new": self.new,
            "current_label": self.current_label,
            "baseline_label": self.baseline_label,
            "cross_host": dict(self.cross_host),
        }


@dataclass
class DiffResult:
    """Every per-case delta plus the verdict and the worst offender."""

    deltas: list[CaseDelta]
    strict: bool
    source: str

    @property
    def violations(self) -> list[CaseDelta]:
        return [d for d in self.deltas if not d.ok]

    @property
    def worst(self) -> CaseDelta | None:
        offenders = self.violations
        if not offenders:
            return None
        return max(offenders, key=lambda d: d.violation.severity)  # type: ignore[union-attr]

    @property
    def ok(self) -> bool:
        return not self.violations

    def as_dict(self) -> dict[str, Any]:
        worst = self.worst
        return {
            "schema": "repro-perf-diff/1",
            "source": self.source,
            "strict": self.strict,
            "floor": rate_floor(self.strict),
            "ok": self.ok,
            "worst_offender": worst.case if worst else None,
            "deltas": [d.as_dict() for d in self.deltas],
        }

    def render(self) -> str:
        lines = [
            f"perf diff [{'strict' if self.strict else 'loose'} "
            f"floor {rate_floor(self.strict):.0%}] — {self.source}"
        ]
        width = max((len(d.case) for d in self.deltas), default=4)
        for delta in sorted(self.deltas, key=lambda d: (d.ok, d.case)):
            if delta.new:
                verdict, change = "NEW", "baseline recorded"
            else:
                ratio = delta.ratio or 0.0
                change = f"{ratio - 1:+.1%} ({delta.baseline_label} -> {delta.current_label})"
                verdict = "ok" if delta.ok else "REGRESSED"
            note = " [cross-host]" if delta.cross_host else ""
            lines.append(
                f"  {delta.case:<{width}}  {delta.metric:<22} "
                f"{delta.current:>14,.1f}  {verdict:<9} {change}{note}"
            )
        worst = self.worst
        if worst is not None:
            lines.append(f"WORST OFFENDER: {worst.violation}")
        else:
            lines.append(f"all {len(self.deltas)} case(s) within threshold")
        return "\n".join(lines)


def _delta_from_recordings(
    case: str,
    current: dict[str, Any],
    baseline: dict[str, Any] | None,
    strict: bool | None,
) -> CaseDelta:
    floor = rate_floor(strict)
    if baseline is None:
        return CaseDelta(
            case,
            "simulated cycles/s",
            current["rate"],
            None,
            floor,
            current_label=str(current.get("revision")),
        )
    violation = check_rate(case, current["rate"], baseline["rate"], strict=strict)
    return CaseDelta(
        case,
        "simulated cycles/s",
        current["rate"],
        baseline["rate"],
        floor,
        violation=violation,
        current_label=str(current.get("revision")),
        baseline_label=str(baseline.get("revision")),
        cross_host=manifest_delta(current["entry"], baseline["entry"]),
    )


def diff_trajectory(
    entries: list[dict[str, Any]],
    *,
    strict: bool | None = None,
    against: str = "prev",
    cases: Iterable[str] | None = None,
) -> DiffResult:
    """Diff each case's newest recording against its ``prev`` or ``best`` one.

    A case with a single recording is reported as NEW and always passes —
    the first recording *is* the baseline being established.
    """
    if against not in ("prev", "best"):
        raise ValueError(f"against must be 'prev' or 'best', got {against!r}")
    series = case_series(entries)
    wanted = set(cases) if cases is not None else set(series)
    deltas = []
    for case in sorted(wanted):
        recordings = series.get(case)
        if not recordings:
            continue
        current = recordings[-1]
        history = recordings[:-1]
        if not history:
            baseline = None
        elif against == "best":
            baseline = max(history, key=lambda r: r["rate"])
        else:
            baseline = history[-1]
        deltas.append(_delta_from_recordings(case, current, baseline, strict))
    return DiffResult(
        deltas,
        strict_mode(strict),
        f"trajectory newest-vs-{against} over {len(entries)} entr(ies)",
    )


def diff_reports(
    current: PerfReport, baseline: PerfReport, *, strict: bool | None = None
) -> DiffResult:
    """Diff two ``repro-perf/1`` reports: wall seconds and peak RSS per test.

    Both are *cost* metrics — the current value may exceed the baseline by
    at most ``1/floor`` (~1.05x strict, ~1.67x loose).  Tests present only
    in one report are reported as NEW (no baseline) and pass.
    """
    floor = rate_floor(strict)
    cross_host = manifest_delta(current.manifest, baseline.manifest)
    deltas = []
    for nodeid in sorted(current.records):
        cur = current.records[nodeid]
        base = baseline.records.get(nodeid)
        if base is None:
            deltas.append(CaseDelta(nodeid, "wall seconds", cur.wall_s, None, floor))
            continue
        for metric, cur_value, base_value in (
            ("wall seconds", cur.wall_s, base.wall_s),
            ("peak RSS KB", float(cur.peak_rss_kb), float(base.peak_rss_kb)),
        ):
            violation = check_cost(nodeid, cur_value, base_value, metric=metric, strict=strict)
            deltas.append(
                CaseDelta(
                    nodeid,
                    metric,
                    cur_value,
                    base_value,
                    floor,
                    violation=violation,
                    current_label="current",
                    baseline_label="baseline",
                    cross_host=cross_host,
                )
            )
    return DiffResult(
        deltas,
        strict_mode(strict),
        f"report-vs-report over {len(current.records)} test(s)",
    )
