"""Zero-modification pytest plugin: per-test wall/CPU/RSS recording.

No test changes are needed — the plugin wraps ``pytest_runtest_call`` and
meters every test (benchmark cases included, since each bench case is a
test) with :class:`PerfMeter`: wall clock via ``time.perf_counter``, CPU
time and peak RSS via ``resource.getrusage``, and optionally the
tracemalloc allocation peak (off by default: starting tracemalloc slows
allocation-heavy tests severely, so it is opt-in).  At session end the
records — plus the bench trajectory cases, when the session recorded any
through ``benchmarks.perf_trajectory`` — are written as one
``repro-perf/1`` report.

Activation paths, any of which suffices:

* installed entry point (``[project.entry-points.pytest11]`` in
  ``pyproject.toml``) — automatic for installed checkouts;
* explicit ``-p repro.perfwatch.plugin`` on the pytest command line;
* the repo's ``tests/conftest.py`` / ``benchmarks/conftest.py``, which
  call :func:`pytest_configure` for ``PYTHONPATH=src`` runs.

Configuration (CLI options exist only when the plugin loaded early
enough to add them; the environment variables always work):

* ``--perf-report PATH`` / ``REPRO_PERF_REPORT=PATH`` — write the
  ``repro-perf/1`` report here (no report is written otherwise).
* ``--perf-tracemalloc`` / ``REPRO_PERF_TRACEMALLOC=1`` — also record
  each test's tracemalloc peak.
"""

from __future__ import annotations

import os
import time
import tracemalloc
from typing import Any, Generator

import pytest

try:
    import resource
except ImportError:  # pragma: no cover - non-POSIX platforms
    resource = None  # type: ignore[assignment]

from .records import PerfRecord, PerfReport

__all__ = ["PLUGIN_NAME", "REPORT_ENV", "TRACEMALLOC_ENV", "PerfMeter", "PerfWatch"]

PLUGIN_NAME = "repro-perfwatch"
REPORT_ENV = "REPRO_PERF_REPORT"
TRACEMALLOC_ENV = "REPRO_PERF_TRACEMALLOC"


def _rusage() -> tuple[int, float]:
    """(peak RSS in KB, CPU seconds user+system) for this process."""
    if resource is None:  # pragma: no cover - non-POSIX platforms
        return 0, time.process_time()
    ru = resource.getrusage(resource.RUSAGE_SELF)
    return int(ru.ru_maxrss), ru.ru_utime + ru.ru_stime


class PerfMeter:
    """Meters one region: wall clock, CPU time, RSS, optional tracemalloc.

    The wall clock is read innermost (last on start, first on stop) so the
    meter's own bookkeeping never inflates the measured wall time.
    """

    __slots__ = ("trace_alloc", "_started_tracing", "_wall0", "_cpu0", "_rss0")

    def __init__(self, trace_alloc: bool = False) -> None:
        self.trace_alloc = trace_alloc
        self._started_tracing = False

    def start(self) -> "PerfMeter":
        self._rss0, self._cpu0 = _rusage()
        if self.trace_alloc and not tracemalloc.is_tracing():
            tracemalloc.start()
            self._started_tracing = True
        self._wall0 = time.perf_counter()
        return self

    def stop(self, outcome: str = "passed") -> PerfRecord:
        wall = time.perf_counter() - self._wall0
        peak_kb: int | None = None
        if self._started_tracing:
            _, peak_bytes = tracemalloc.get_traced_memory()
            tracemalloc.stop()
            self._started_tracing = False
            peak_kb = peak_bytes // 1024
        rss1, cpu1 = _rusage()
        return PerfRecord(
            wall_s=wall,
            cpu_s=max(cpu1 - self._cpu0, 0.0),
            peak_rss_kb=rss1,
            rss_growth_kb=max(rss1 - self._rss0, 0),
            tracemalloc_peak_kb=peak_kb,
            outcome=outcome,
        )


class PerfWatch:
    """The registered plugin object: meters every test, writes the report."""

    def __init__(self, report_path: str | None, trace_alloc: bool) -> None:
        self.report_path = report_path
        self.trace_alloc = trace_alloc
        self.report = PerfReport()

    @pytest.hookimpl(wrapper=True)
    def pytest_runtest_call(self, item: pytest.Item) -> Generator[None, Any, Any]:
        meter = PerfMeter(self.trace_alloc).start()
        try:
            result = yield
        except BaseException:
            self.report.records[item.nodeid] = meter.stop(outcome="failed")
            raise
        self.report.records[item.nodeid] = meter.stop()
        return result

    def pytest_sessionfinish(self, session: pytest.Session, exitstatus: int) -> None:
        if not self.report_path:
            return
        try:
            # Bench sessions record per-case cycles/s through the trajectory
            # module; fold them into the report so one artifact carries both
            # resource usage and throughput.  Ordering-safe: peek() returns
            # the pending cases or, post-flush, the last flushed snapshot.
            from benchmarks.perf_trajectory import peek

            self.report.cases = peek()
        except ImportError:
            pass
        self.report.write(self.report_path)


def pytest_addoption(parser: pytest.Parser) -> None:
    group = parser.getgroup("perfwatch", "perfwatch: per-test wall/CPU/RSS recording")
    group.addoption(
        "--perf-report",
        action="store",
        default=None,
        metavar="PATH",
        help=f"write the repro-perf/1 resource report to PATH (or set {REPORT_ENV})",
    )
    group.addoption(
        "--perf-tracemalloc",
        action="store_true",
        default=False,
        help=f"also record each test's tracemalloc peak (slower; or set {TRACEMALLOC_ENV}=1)",
    )


def pytest_configure(config: pytest.Config) -> None:
    """Register the meter once, however the plugin module was reached.

    Callable both as a plugin hook (entry point / ``-p`` load) and directly
    from a conftest's own ``pytest_configure`` — the conftest path cannot
    add CLI options (option parsing already happened), so the environment
    variables are the config surface there.
    """
    if config.pluginmanager.get_plugin(PLUGIN_NAME) is not None:
        return
    report_path = getattr(config.option, "perf_report", None) or os.environ.get(REPORT_ENV)
    trace_alloc = bool(
        getattr(config.option, "perf_tracemalloc", False) or os.environ.get(TRACEMALLOC_ENV)
    )
    config.pluginmanager.register(PerfWatch(report_path or None, trace_alloc), PLUGIN_NAME)
