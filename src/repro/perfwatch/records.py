"""Typed ``repro-perf/1`` resource reports.

One :class:`PerfReport` is the durable artifact of a pytest session run
under the perfwatch plugin: per-test wall time, CPU time, and peak RSS
(plus the optional tracemalloc peak), stamped with the same host manifest
(`repro.telemetry.manifest.host_manifest`) that every trajectory entry in
``BENCH_streaming.json`` carries, so reports from different machines and
revisions stay comparable.  When the session was a benchmark sweep, the
report also folds in the per-case ``simulated_cycles_per_second`` payload
the trajectory recorded, making the report self-contained evidence for a
speed claim.
"""

from __future__ import annotations

import json
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any

from ..telemetry.manifest import host_manifest

__all__ = [
    "REPORT_SCHEMA",
    "TIMING_FIELDS",
    "PerfDataError",
    "PerfRecord",
    "PerfReport",
]

REPORT_SCHEMA = "repro-perf/1"

# Every field whose value depends on how fast the host happened to run —
# stripped by ``PerfReport.stable_dict`` so determinism tests can compare
# two sessions of the same suite byte-for-byte.
TIMING_FIELDS = frozenset(
    {"wall_s", "cpu_s", "peak_rss_kb", "rss_growth_kb", "tracemalloc_peak_kb"}
)


class PerfDataError(ValueError):
    """A perf report or trajectory file is malformed."""


@dataclass(frozen=True)
class PerfRecord:
    """Resource measurements for one test (or one metered region)."""

    wall_s: float
    cpu_s: float
    peak_rss_kb: int
    rss_growth_kb: int
    tracemalloc_peak_kb: int | None = None
    outcome: str = "passed"

    def as_dict(self) -> dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "PerfRecord":
        try:
            return cls(
                wall_s=float(payload["wall_s"]),
                cpu_s=float(payload["cpu_s"]),
                peak_rss_kb=int(payload["peak_rss_kb"]),
                rss_growth_kb=int(payload["rss_growth_kb"]),
                tracemalloc_peak_kb=(
                    None
                    if payload.get("tracemalloc_peak_kb") is None
                    else int(payload["tracemalloc_peak_kb"])
                ),
                outcome=str(payload.get("outcome", "passed")),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise PerfDataError(f"malformed perf record: {exc}") from exc


@dataclass
class PerfReport:
    """A full session report: manifest + per-test records + bench cases."""

    records: dict[str, PerfRecord] = field(default_factory=dict)
    cases: dict[str, dict[str, Any]] = field(default_factory=dict)
    manifest: dict[str, Any] = field(default_factory=host_manifest)
    timestamp: str = field(
        default_factory=lambda: time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime())
    )

    def as_dict(self) -> dict[str, Any]:
        return {
            "schema": REPORT_SCHEMA,
            "timestamp": self.timestamp,
            **self.manifest,
            "records": {k: r.as_dict() for k, r in sorted(self.records.items())},
            "cases": dict(sorted(self.cases.items())),
        }

    def stable_dict(self) -> dict[str, Any]:
        """The report minus every timing-dependent field.

        Two runs of the same suite on the same tree must produce identical
        stable dicts: same tests, same outcomes, same case keys, same host
        manifest (modulo the ``-dirty`` describe suffix and the wall clock).
        """
        payload = self.as_dict()
        payload.pop("timestamp", None)
        payload.pop("git_describe", None)
        payload["records"] = {
            node: {k: v for k, v in rec.items() if k not in TIMING_FIELDS}
            for node, rec in payload["records"].items()
        }
        payload["cases"] = {
            case: {
                k: v
                for k, v in data.items()
                if k not in ("seconds", "simulated_cycles_per_second", "serial_seconds", "speedup")
            }
            for case, data in payload["cases"].items()
        }
        return payload

    def write(self, path: str | Path) -> Path:
        out = Path(path)
        out.write_text(json.dumps(self.as_dict(), indent=2) + "\n")
        return out

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "PerfReport":
        if not isinstance(payload, dict) or payload.get("schema") != REPORT_SCHEMA:
            raise PerfDataError(
                f"not a {REPORT_SCHEMA} report (schema={payload.get('schema')!r})"
                if isinstance(payload, dict)
                else "not a repro-perf/1 report (top level is not an object)"
            )
        records_raw = payload.get("records")
        if not isinstance(records_raw, dict):
            raise PerfDataError("repro-perf/1 report has no 'records' object")
        manifest = {
            k: v
            for k, v in payload.items()
            if k not in ("schema", "timestamp", "records", "cases")
        }
        return cls(
            records={k: PerfRecord.from_dict(v) for k, v in records_raw.items()},
            cases=dict(payload.get("cases") or {}),
            manifest=manifest,
            timestamp=str(payload.get("timestamp", "")),
        )

    @classmethod
    def load(cls, path: str | Path) -> "PerfReport":
        try:
            payload = json.loads(Path(path).read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise PerfDataError(f"cannot read perf report {path}: {exc}") from exc
        return cls.from_dict(payload)
