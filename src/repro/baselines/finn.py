"""FINN-style baseline model (paper §IV-B3, Table IV).

The paper compares against FINN (Umuroglu et al., FPGA'17) on the same
VGG-like topology at 32x32.  The architectural differences the paper calls
out, all represented here:

* FINN uses **1-bit (sign) activations** — less accurate (80.1% vs 84.2%
  CIFAR-10 in the paper) but cheaper and faster;
* FINN stores **inputs in on-chip memory** rather than streaming them from
  the CPU, removing the input-streaming bound;
* FINN's compute is **folded matrix-vector units** with per-layer
  parallelism chosen to balance the pipeline, achieving far higher
  throughput on small inputs (0.0456 ms vs 0.8 ms) at lower power (3.6 W
  vs 12 W) on a Zynq-class part.

The functional side is exact: a FINN network is our VGG-like model built
with ``act_bits=1``, trainable and exportable through the same pipeline
(sign thresholds are the 1-bit special case of §III-B3).  The performance
side is an analytic model with FINN's published operating point as its
calibration anchor.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..nn.graph import ConvNode, LayerGraph
from ..nn.modules import Sequential
from ..models.vgg import build_vgg_like

__all__ = ["FINN_PAPER_POINT", "FinnOperatingPoint", "build_finn_cnv", "finn_performance_model"]


@dataclass(frozen=True)
class FinnOperatingPoint:
    """A FINN design point (as reported for the CNV network on CIFAR-10)."""

    time_ms: float
    power_w: float
    luts: int
    bram_kbits: int
    accuracy: float


# Table IV of the paper (FINN column): time/power/accuracy and resources.
FINN_PAPER_POINT = FinnOperatingPoint(
    time_ms=0.0456, power_w=3.6, luts=46_253, bram_kbits=6_696, accuracy=0.801
)


def build_finn_cnv(
    input_size: int = 32,
    classes: int = 10,
    width: float = 1.0,
    seed: int = 0,
) -> Sequential:
    """The FINN CNV network: our VGG-like topology with sign activations."""
    return build_vgg_like(
        input_size=input_size, classes=classes, act_bits=1, width=width, seed=seed
    )


def finn_performance_model(
    graph: LayerGraph,
    fclk_mhz: float = 200.0,
    fold_parallelism: int = 64,
) -> dict[str, float]:
    """Analytic FINN-style throughput: folded MVU processing.

    FINN processes each layer as a matrix-vector unit computing
    ``fold_parallelism`` MACs per PE column per cycle with layer-balanced
    folding; per-image cycles are ``total_MACs / (PEs × SIMD)`` for the
    slowest layer.  With the default folding this reproduces the order of
    magnitude of FINN's published 0.0456 ms (21.9 kFPS) CNV point.
    """
    worst_cycles = 0
    for name in graph.order:
        node = graph.nodes[name]
        if isinstance(node, ConvNode):
            out_spec = graph.specs[name]
            macs = out_spec.pixels * node.out_channels * (
                node.kernel_size * node.kernel_size * node.in_channels
            )
            # PE x SIMD product per layer, FINN-style balanced folding.
            cycles = macs / (fold_parallelism * fold_parallelism)
            worst_cycles = max(worst_cycles, cycles)
    time_ms = worst_cycles / (fclk_mhz * 1e3)
    return {
        "cycles_per_image": worst_cycles,
        "time_ms": time_ms,
        "throughput_fps": 1000.0 / time_ms if time_ms else float("inf"),
    }
