"""Comparator baselines: the FINN-style accelerator model."""

from .finn import FINN_PAPER_POINT, FinnOperatingPoint, build_finn_cnv, finn_performance_model

__all__ = ["FINN_PAPER_POINT", "FinnOperatingPoint", "build_finn_cnv", "finn_performance_model"]
