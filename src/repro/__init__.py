"""repro — Streaming Architecture for Large-Scale Quantized Neural Networks
on an FPGA-Based Dataflow Platform (Baskin et al., IPPS 2018): a complete
Python reproduction.

Subpackages
-----------
``repro.quantization``
    Bit-packed XNOR/AND-popcount arithmetic, quantizers, threshold folding.
``repro.nn``
    Reference ops, QAT training (STE autograd), integer inference IR.
``repro.dataflow``
    Cycle-driven Maxeler-style streaming substrate (streams, kernels,
    engine, manager, multi-DFE links).
``repro.kernels``
    The QNN streaming kernels of paper §III-B.
``repro.models``
    VGG-like / AlexNet / ResNet-18 model zoo.
``repro.hardware``
    Stratix V resource, timing, power models; GPU baseline model;
    multi-DFE partitioner.
``repro.baselines``
    FINN comparison model.
``repro.datasets``
    Synthetic stand-ins for CIFAR-10 / STL-10 / ImageNet.
``repro.eval``
    The experiment harness regenerating every table and figure.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
