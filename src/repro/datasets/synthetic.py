"""Synthetic class-structured image datasets.

The paper evaluates on CIFAR-10 (32x32), STL-10 (96x96, also resized to
144x144) and ImageNet (224x224).  Those datasets cannot ship with an
offline reproduction, so this module generates deterministic synthetic
stand-ins with the same shapes and a controllable degree of class
structure: each class owns a set of smooth spatial prototypes (random
low-frequency patterns) and samples are noisy mixtures of their class's
prototypes.  A QNN must learn real spatial features to separate them —
chance level is ``1/classes`` and the gap above chance measures learning,
which is exactly what the accuracy-ordering experiments need
(2-bit vs 1-bit activations, trained vs untrained).

Images are float in [0, 1), HWC, channels last — ready for the input
quantizer.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["SyntheticImageDataset", "make_dataset", "DATASET_PRESETS"]

# Shape presets mirroring the paper's evaluation datasets.
DATASET_PRESETS: dict[str, tuple[int, int, int]] = {
    "cifar10-like": (32, 3, 10),
    "stl10-like": (96, 3, 10),
    "stl10-resized-like": (144, 3, 10),
    "imagenet-like": (224, 3, 1000),
}


@dataclass
class SyntheticImageDataset:
    """A train/test split of synthetic images."""

    x_train: np.ndarray
    y_train: np.ndarray
    x_test: np.ndarray
    y_test: np.ndarray
    classes: int
    name: str

    @property
    def input_shape(self) -> tuple[int, int, int]:
        return self.x_train.shape[1:]


def _smooth_prototype(rng: np.random.Generator, size: int, channels: int, grid: int) -> np.ndarray:
    """A low-frequency random pattern: coarse grid upsampled bilinearly."""
    coarse = rng.uniform(0.0, 1.0, size=(grid, grid, channels))
    # Bilinear upsample to (size, size) via separable interpolation.
    xs = np.linspace(0, grid - 1, size)
    i0 = np.floor(xs).astype(int)
    i1 = np.minimum(i0 + 1, grid - 1)
    frac = xs - i0
    rows = coarse[i0] * (1 - frac)[:, None, None] + coarse[i1] * frac[:, None, None]
    cols = rows[:, i0] * (1 - frac)[None, :, None] + rows[:, i1] * frac[None, :, None]
    return cols


def make_dataset(
    preset: str = "cifar10-like",
    n_train: int = 512,
    n_test: int = 128,
    classes: int | None = None,
    size: int | None = None,
    channels: int | None = None,
    noise: float = 0.15,
    prototypes_per_class: int = 3,
    seed: int = 0,
) -> SyntheticImageDataset:
    """Generate a deterministic synthetic dataset.

    Parameters
    ----------
    preset:
        One of :data:`DATASET_PRESETS`; explicit ``size``/``channels``/
        ``classes`` override the preset (handy for tiny test instances).
    noise:
        Per-pixel uniform noise amplitude; higher is harder.
    """
    if preset not in DATASET_PRESETS:
        raise ValueError(f"unknown preset {preset!r}; choose from {sorted(DATASET_PRESETS)}")
    p_size, p_channels, p_classes = DATASET_PRESETS[preset]
    size = p_size if size is None else size
    channels = p_channels if channels is None else channels
    classes = p_classes if classes is None else classes

    rng = np.random.default_rng(seed)
    grid = max(2, size // 8)
    protos = np.stack(
        [
            np.stack([_smooth_prototype(rng, size, channels, grid) for _ in range(prototypes_per_class)])
            for _ in range(classes)
        ]
    )  # (classes, P, H, W, C)

    def sample(n: int) -> tuple[np.ndarray, np.ndarray]:
        y = rng.integers(0, classes, size=n)
        weights = rng.dirichlet(np.ones(prototypes_per_class), size=n)
        base = np.einsum("np,nphwc->nhwc", weights, protos[y])
        x = base + rng.uniform(-noise, noise, size=base.shape)
        return np.clip(x, 0.0, 1.0 - 1e-9), y

    x_train, y_train = sample(n_train)
    x_test, y_test = sample(n_test)
    return SyntheticImageDataset(
        x_train=x_train,
        y_train=y_train,
        x_test=x_test,
        y_test=y_test,
        classes=classes,
        name=preset,
    )
