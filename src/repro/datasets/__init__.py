"""Synthetic dataset substrate (stands in for CIFAR-10 / STL-10 / ImageNet)."""

from .synthetic import DATASET_PRESETS, SyntheticImageDataset, make_dataset

__all__ = ["DATASET_PRESETS", "SyntheticImageDataset", "make_dataset"]
