"""Multi-DFE partitioning (paper §III-B6).

"Since our architecture comprises independent kernels and the Maxeler
platform allows data to directly flow from DFE to DFE, the workload can be
divided into multiple DFEs with very small performance degradation if the
design cannot fit one DFE."

The partitioner assigns the kernel chain to the minimum number of DFEs such
that each DFE stays under a routing-friendly fill cap, keeping assignments
*contiguous in topological order* (streams only ever flow forward through
the MaxRing daisy chain).  Residual blocks are kept whole on one DFE so
skip streams never cross chips.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..dataflow.links import MAXRING, LinkSpec, required_bandwidth_mbps
from ..nn.graph import AddNode, InputNode, LayerGraph
from .calibration import DEFAULT_RESOURCE_CAL, ResourceCalibration
from .device import FPGASpec, STRATIX_V_5SGSD8
from .resources import M20K_KBITS, NetworkResources, ResourceEstimate, estimate_node

__all__ = [
    "PartitionResult",
    "partition_network",
    "atomic_groups",
    "infrastructure_estimate",
    "per_kernel_overhead",
    "group_estimate",
    "partition_resources",
    "partition_crossings",
]


@dataclass
class PartitionResult:
    """A feasible multi-DFE assignment."""

    groups: list[list[str]]
    per_dfe: list[ResourceEstimate]
    crossings: list[tuple[str, str, float]]  # (from, to, required Mbps)
    device: FPGASpec
    fill_cap: float

    @property
    def n_dfes(self) -> int:
        return len(self.groups)

    def utilization(self, dfe: int) -> dict[str, float]:
        est = self.per_dfe[dfe]
        return {
            "lut": est.luts / self.device.luts,
            "ff": est.ffs / self.device.ffs,
            "bram": est.bram_kbits / self.device.bram_kbits,
        }

    def link_feasible(self, link: LinkSpec = MAXRING, fclk_mhz: float = 105.0) -> bool:
        return all(mbps <= link.bandwidth_gbps * 1000.0 for _, _, mbps in self.crossings)


def atomic_groups(graph: LayerGraph) -> list[list[str]]:
    """Split node order into atomic units that must share a DFE.

    A residual block (everything between a fork point and its re-joining
    AddNode chain) is atomic: skip streams stay on-chip.  We approximate
    this by grouping each AddNode with every node between its two parents'
    common ancestor and itself; for graphs built by the exporter this keeps
    each ``QResidualBlock`` expansion together.
    """
    order = [n for n in graph.order if not isinstance(graph.nodes[n], InputNode)]
    groups: list[list[str]] = []
    i = 0
    name_to_idx = {n: i for i, n in enumerate(order)}
    while i < len(order):
        name = order[i]
        # Find the furthest AddNode consumer chain reachable through fan-out.
        j = i
        frontier = [name]
        while frontier:
            nxt: list[str] = []
            for n in frontier:
                for consumer in graph.consumers(n):
                    if isinstance(graph.nodes[consumer], AddNode):
                        j = max(j, name_to_idx[consumer])
                        nxt.append(consumer)
            frontier = nxt
        if j == i:
            groups.append([name])
            i += 1
        else:
            groups.append(order[i : j + 1])
            i = j + 1
    return groups


def infrastructure_estimate(cal: ResourceCalibration = DEFAULT_RESOURCE_CAL) -> ResourceEstimate:
    """Per-DFE Maxeler infrastructure (PCIe/MaxRing/manager fabric)."""
    return ResourceEstimate(
        luts=cal.lut_infrastructure,
        ffs=cal.ff_infrastructure,
        bram_blocks=int(round(cal.bram_kbits_infrastructure / M20K_KBITS)),
    )


def per_kernel_overhead(cal: ResourceCalibration = DEFAULT_RESOURCE_CAL) -> ResourceEstimate:
    """Per-kernel manager overhead (stream FIFOs, control)."""
    return ResourceEstimate(bram_blocks=int(round(cal.bram_kbits_per_kernel / M20K_KBITS)))


def group_estimate(
    graph: LayerGraph,
    group: list[str],
    cal: ResourceCalibration = DEFAULT_RESOURCE_CAL,
    node_estimates: dict[str, ResourceEstimate] | None = None,
) -> ResourceEstimate:
    """Resources of one contiguous node group, excluding DFE infrastructure.

    ``node_estimates`` lets callers that score many candidate partitions
    (the planner's DP) amortize the per-node estimation over the search.
    """
    overhead = per_kernel_overhead(cal)
    est = ResourceEstimate()
    for name in group:
        node_est = (
            node_estimates[name]
            if node_estimates is not None
            else estimate_node(graph, name, cal).estimate
        )
        est = est + node_est + overhead
    return est


def partition_resources(
    graph: LayerGraph,
    partition: list[list[str]],
    cal: ResourceCalibration = DEFAULT_RESOURCE_CAL,
    node_estimates: dict[str, ResourceEstimate] | None = None,
) -> list[ResourceEstimate]:
    """Per-DFE resource ledger (infrastructure + kernels) for a partition."""
    infra = infrastructure_estimate(cal)
    return [
        infra + group_estimate(graph, group, cal, node_estimates) for group in partition
    ]


def partition_crossings(
    graph: LayerGraph,
    partition: list[list[str]],
    fclk_mhz: float = 105.0,
) -> list[tuple[str, str, float]]:
    """Inter-DFE edges of a partition with their §III-B6 bandwidth needs.

    Nodes absent from every group (the input) are attributed to DFE 0.
    """
    dfe_of: dict[str, int] = {}
    for idx, g in enumerate(partition):
        for n in g:
            dfe_of[n] = idx
    if graph.input_name is not None:
        dfe_of.setdefault(graph.input_name, 0)
    crossings: list[tuple[str, str, float]] = []
    for u, v in graph.graph.edges:
        if dfe_of.get(u, 0) != dfe_of.get(v, 0):
            bits = graph.specs[u].stream_bits
            crossings.append((u, v, required_bandwidth_mbps(bits, fclk_mhz)))
    return crossings


def partition_network(
    graph: LayerGraph,
    device: FPGASpec = STRATIX_V_5SGSD8,
    cal: ResourceCalibration = DEFAULT_RESOURCE_CAL,
    fill_cap: float = 0.8,
    fclk_mhz: float = 105.0,
) -> PartitionResult:
    """Greedy first-fit contiguous partition under the fill cap.

    Raises if a single atomic group exceeds one device (the design cannot
    be built at all, regardless of DFE count).
    """
    infra = infrastructure_estimate(cal)
    caps = {
        "lut": device.luts * fill_cap,
        "ff": device.ffs * fill_cap,
        "bram": device.bram_kbits * fill_cap,
    }

    def fits(est: ResourceEstimate) -> bool:
        return (
            est.luts <= caps["lut"] and est.ffs <= caps["ff"] and est.bram_kbits <= caps["bram"]
        )

    groups_out: list[list[str]] = [[]]
    per_dfe: list[ResourceEstimate] = [infra]
    node_estimates = {name: estimate_node(graph, name, cal).estimate for name in graph.order}

    for group in atomic_groups(graph):
        group_est = group_estimate(graph, group, cal, node_estimates)
        if not fits(infra + group_est):
            raise ValueError(
                f"atomic group {group[0]}..{group[-1]} exceeds a single "
                f"{device.name} even empty; cannot partition"
            )
        candidate = per_dfe[-1] + group_est
        if fits(candidate):
            per_dfe[-1] = candidate
            groups_out[-1].extend(group)
        else:
            groups_out.append(list(group))
            per_dfe.append(infra + group_est)

    return PartitionResult(
        groups=groups_out,
        per_dfe=per_dfe,
        crossings=partition_crossings(graph, groups_out, fclk_mhz),
        device=device,
        fill_cap=fill_cap,
    )
