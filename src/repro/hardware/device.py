"""Hardware specifications (paper Table II) and device projections.

The FPGA is Intel Stratix V 5SGSD8 (one per MAX4 "Maia" DFE of the Maxeler
MPC-X node used in the paper); GPUs are the paper's two baselines.  The
Stratix 10 projection implements the paper's §IV-B4 forecast: "Intel's
upcoming Stratix 10 FPGA promises 5x higher frequency".
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["FPGASpec", "GPUSpec", "STRATIX_V_5SGSD8", "STRATIX_10_PROJECTION", "P100", "GTX1080", "MAX4_FABRIC_MHZ"]

# The paper's measured designs close timing at 105 MHz on the MAX4 fabric.
MAX4_FABRIC_MHZ = 105.0


@dataclass(frozen=True)
class FPGASpec:
    """An FPGA device: capacity (Table IIb) and base power characteristics."""

    name: str
    alms: int
    m20k_blocks: int
    ffs: int
    fabric_mhz: float
    static_power_w: float

    @property
    def luts(self) -> int:
        """Usable LUT capacity: each Stratix ALM packs two combinational LUTs."""
        return 2 * self.alms

    @property
    def bram_kbits(self) -> int:
        """Total block-RAM capacity in Kbits (M20K = 20 Kbit each)."""
        return self.m20k_blocks * 20


@dataclass(frozen=True)
class GPUSpec:
    """A GPU baseline device (Table IIa) with power envelope."""

    name: str
    cuda_cores: int
    core_clock_mhz: float
    tdp_w: float
    idle_power_w: float

    @property
    def peak_fp32_gflops(self) -> float:
        """2 FLOPs per core per clock (FMA)."""
        return 2.0 * self.cuda_cores * self.core_clock_mhz / 1000.0


STRATIX_V_5SGSD8 = FPGASpec(
    name="Stratix V 5SGSD8",
    alms=262_400,
    m20k_blocks=2_567,
    ffs=1_050_000,
    fabric_mhz=MAX4_FABRIC_MHZ,
    static_power_w=2.5,
)

# §IV-B4: 5x the fabric clock, and a larger device (Stratix 10 GX 2800-class
# capacity) so bigger networks fit a single chip.
STRATIX_10_PROJECTION = FPGASpec(
    name="Stratix 10 (projection)",
    alms=933_120,
    m20k_blocks=11_721,
    ffs=3_732_480,
    fabric_mhz=5 * MAX4_FABRIC_MHZ,
    static_power_w=5.0,
)

P100 = GPUSpec(
    name="Tesla P100-12GB",
    cuda_cores=3_584,
    core_clock_mhz=1_480.0,
    tdp_w=250.0,
    idle_power_w=30.0,
)

GTX1080 = GPUSpec(
    name="GeForce GTX 1080",
    cuda_cores=2_560,
    core_clock_mhz=1_733.0,
    tdp_w=180.0,
    idle_power_w=10.0,
)
