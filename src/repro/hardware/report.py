"""Whole-design reports: one call from network graph to deployment summary.

Bundles the cost models into the report a user actually wants when deciding
whether (and how) a network deploys on the DFE platform: resources per
kernel, partition across devices, timing, power, energy, link budgets and
the GPU baseline comparison — the full Table-III/Figure-5/7/8 story for an
arbitrary LayerGraph.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..dataflow.links import MAXRING, LinkSpec
from ..nn.graph import LayerGraph
from .device import GPUSpec, P100, STRATIX_V_5SGSD8, FPGASpec
from .gpu import GPUModel
from .partition import PartitionResult, partition_network
from .power import FPGAPowerModel, PowerReport
from .resources import NetworkResources, estimate_network
from .timing import NetworkTiming, estimate_network_timing

__all__ = ["DesignReport", "build_design_report"]


@dataclass
class DesignReport:
    """Everything the cost models can say about one network on one device."""

    graph: LayerGraph
    device: FPGASpec
    resources: NetworkResources
    partition: PartitionResult
    timing: NetworkTiming
    power: PowerReport
    gpu_spec: GPUSpec
    gpu_ms: float
    gpu_w: float

    @property
    def energy_per_image_j(self) -> float:
        return self.power.energy_per_image_j(self.timing.latency_ms)

    @property
    def gpu_energy_per_image_j(self) -> float:
        return self.gpu_w * self.gpu_ms / 1000.0

    def render(self) -> str:
        g, t, p = self.graph, self.timing, self.power
        lines = [
            f"=== design report: {g.name} on {self.device.name} ===",
            f"kernels: {len(g.nodes) - 1}; 1-bit weights: {g.total_weight_bits():,} bits",
            f"resources: {self.resources.total.luts:,.0f} LUT, "
            f"{self.resources.total.ffs:,.0f} FF, "
            f"{self.resources.total.bram_kbits:,.0f} Kbit BRAM",
            f"DFEs: {self.partition.n_dfes} (fill cap {self.partition.fill_cap:.0%})",
        ]
        for i in range(self.partition.n_dfes):
            util = self.partition.utilization(i)
            lines.append(
                f"  DFE {i}: LUT {util['lut']:.0%}, FF {util['ff']:.0%}, "
                f"BRAM {util['bram']:.0%} ({len(self.partition.groups[i])} kernels)"
            )
        for u, v, mbps in self.partition.crossings:
            lines.append(f"  link {u} -> {v}: {mbps:.0f} Mbps")
        lines += [
            f"latency: {t.latency_cycles:,} cycles = {t.latency_ms:.2f} ms @{t.fclk_mhz:.0f} MHz",
            f"throughput: {t.throughput_fps:,.0f} fps pipelined "
            f"(interval {t.interval_cycles:,} cycles, bottleneck {t.bottleneck.name})",
            f"overlap speedup vs layer-sequential: {t.overlap_speedup:.1f}x",
            f"power: {p.total_w:.1f} W "
            f"(static {p.static_w:.1f} + dynamic {p.dynamic_w:.1f} + board {p.board_overhead_w:.1f})",
            f"energy/image: {self.energy_per_image_j * 1000:.1f} mJ",
            f"{self.gpu_spec.name} baseline: {self.gpu_ms:.2f} ms, {self.gpu_w:.0f} W, "
            f"{self.gpu_energy_per_image_j * 1000:.1f} mJ "
            f"(DFE/GPU runtime {t.latency_ms / self.gpu_ms:.2f}x, "
            f"energy {self.gpu_energy_per_image_j / max(self.energy_per_image_j, 1e-12):.1f}x in our favour)",
        ]
        return "\n".join(lines)


def build_design_report(
    graph: LayerGraph,
    device: FPGASpec = STRATIX_V_5SGSD8,
    gpu: GPUSpec = P100,
    link: LinkSpec = MAXRING,
    fill_cap: float = 0.8,
) -> DesignReport:
    """Run every cost model over ``graph`` and bundle the results."""
    partition = partition_network(graph, device=device, fill_cap=fill_cap)
    resources = estimate_network(graph, n_dfes=partition.n_dfes)
    timing = estimate_network_timing(
        graph, fclk_mhz=device.fabric_mhz, partition=partition.groups, link=link
    )
    power = FPGAPowerModel(device).power(resources, n_dfes=partition.n_dfes)
    gpu_model = GPUModel(gpu)
    return DesignReport(
        graph=graph,
        device=device,
        resources=resources,
        partition=partition,
        timing=timing,
        power=power,
        gpu_spec=gpu,
        gpu_ms=gpu_model.time_per_image(graph).per_image_ms,
        gpu_w=gpu_model.power_w(),
    )
