"""GPU baseline model: layer-sequential execution (paper §IV-B).

The paper's GPU baseline runs Hubara et al.'s QNN code under Theano +
cuDNN, which executes quantized layers as ordinary floating-point kernels
launched one after another.  Two properties of that execution mode drive
every GPU-side observation in the paper, and both are first-class in this
model:

* **fixed per-layer overhead** (kernel launch, framework dispatch) — why
  the DFE wins at 32x32 ("presumably results from the overhead of kernel
  invocation processes between the CPU and GPU") and why "twice as many
  layers would take twice more time, even if GPU resources are not fully
  utilized" (the +42.5% ResNet-over-AlexNet increase);
* **minibatch amortisation** — "modern GPUs can process at least 128-256
  inputs with very small inference time degradation", which helps batch
  throughput but not real-time single-image latency.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..nn.graph import (
    AddNode,
    ConvNode,
    GlobalAvgSumNode,
    InputNode,
    LayerGraph,
    MaxPoolNode,
    ThresholdNode,
)
from .calibration import DEFAULT_GPU_CAL, GPUCalibration
from .device import GPUSpec

__all__ = ["GPUModel", "GPUTimingReport", "network_macs", "gpu_launch_count"]


def network_macs(graph: LayerGraph) -> int:
    """Multiply-accumulate count per image (convolutions and FC layers)."""
    total = 0
    for name in graph.order:
        node = graph.nodes[name]
        if isinstance(node, ConvNode):
            out_spec = graph.specs[name]
            total += out_spec.pixels * node.out_channels * (
                node.kernel_size * node.kernel_size * node.in_channels
            )
    return total


def gpu_launch_count(graph: LayerGraph) -> int:
    """Major kernel launches per inference.

    Convolutions, pooling and global reductions each dispatch a cuDNN /
    Theano kernel; BatchNorm + activation and residual adds are cheap
    elementwise ops that frameworks fuse, so they do not add a launch.
    This is the layer count behind the paper's observation that "twice as
    many layers would take twice more time" on a GPU.
    """
    launches = 0
    for name in graph.order:
        node = graph.nodes[name]
        if isinstance(node, (ConvNode, MaxPoolNode, GlobalAvgSumNode)):
            launches += 1
    return launches


@dataclass(frozen=True)
class GPUTimingReport:
    """Per-image GPU timing decomposition."""

    compute_s: float
    overhead_s: float
    batch: int

    @property
    def per_image_s(self) -> float:
        return self.compute_s + self.overhead_s

    @property
    def per_image_ms(self) -> float:
        return self.per_image_s * 1000.0


class GPUModel:
    """Analytic GPU inference timing + power for a LayerGraph."""

    def __init__(self, spec: GPUSpec, cal: GPUCalibration = DEFAULT_GPU_CAL) -> None:
        self.spec = spec
        self.cal = cal

    def time_per_image(self, graph: LayerGraph, batch: int = 1) -> GPUTimingReport:
        """Average per-image time for a minibatch of ``batch`` inputs.

        Fixed overheads (invocation + per-layer launches) amortise over the
        batch; compute scales per image until the saturation batch, after
        which throughput is flat.
        """
        if batch < 1:
            raise ValueError(f"batch must be >= 1, got {batch}")
        macs = network_macs(graph)
        launches = gpu_launch_count(graph)
        flops = 2.0 * macs
        sustained = self.spec.peak_fp32_gflops * 1e9 * self.cal.conv_efficiency
        # Below saturation the device is underutilised and per-image compute
        # time barely falls with batch; model that as interpolation toward
        # the saturated (fully parallel) regime.
        fill = min(1.0, batch / self.cal.saturation_batch)
        per_image_compute = (flops / sustained) * (1.0 - 0.35 * fill)
        overhead = (
            self.cal.invocation_overhead_s + launches * self.cal.layer_overhead_s
        ) / batch
        return GPUTimingReport(compute_s=per_image_compute, overhead_s=overhead, batch=batch)

    def power_w(self) -> float:
        """Board power while running inference."""
        return self.spec.idle_power_w + self.cal.load_power_fraction * (
            self.spec.tdp_w - self.spec.idle_power_w
        )

    def energy_per_image_j(self, graph: LayerGraph, batch: int = 1) -> float:
        return self.power_w() * self.time_per_image(graph, batch).per_image_s
