"""Calibration constants for the hardware cost models.

Every constant here is a *named, documented* fit parameter.  The structural
models (buffer sizes, cache geometry, cycle counts) come from the paper's
formulas and our simulator; these constants translate structure into
post-synthesis resource units (LUT / FF / BRAM) and watts, absorbing what
MaxCompiler + Quartus do that no analytic model can see (logic packing,
pipeline register insertion, control FSMs, Maxeler infrastructure).

They were fitted (see ``examples/calibrate_resources.py`` for the
procedure) against the paper's published operating points:

* Table IV(b): VGG-like @ 32x32 — LUT 133,887; BRAM 11,020 Kbit; FF 278,501
* Table III: AlexNet / ResNet-18 @ 224x224 — LUT 343,295 / 596,081;
  FF 664,767 / 1,175,373
* Table IV(a): 12 W board power for the single-DFE VGG design
* Figure 5 GPU operating points (P100 / GTX1080 runtimes).

The *shape* of every reproduced curve (growth with input size, relative
cost of skip connections, who needs how many DFEs) comes from the
structural models, not from these constants.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ResourceCalibration", "PowerCalibration", "GPUCalibration", "DEFAULT_RESOURCE_CAL", "DEFAULT_POWER_CAL", "DEFAULT_GPU_CAL"]


@dataclass(frozen=True)
class ResourceCalibration:
    """LUT / FF / BRAM translation constants."""

    # LUTs per popcount-tree input bit (XNOR/AND + compressor tree): pinned
    # by the VGG-like 32x32 point of Table IV(b).
    lut_per_popcount_bit: float = 4.568
    # LUTs per kernel-base unit for control FSM, counters, stream handshakes
    # (absorbed into the tree/buffer terms by the fit).
    lut_kernel_base: float = 0.0
    # LUTs per 16-bit add (residual adder) or comparator (threshold stage).
    lut_per_adder_bit: float = 1.2
    # LUTs per buffered window-bit (shift-register addressing/muxing):
    # pinned by Figure 6's ~5% growth from 32x32 to 96x96.
    lut_per_buffer_bit: float = 0.0639
    # LUTs per skip-path bit (16-bit delay lines + wider datapaths in
    # residual blocks): pinned by ResNet-18's Table III LUT count.
    lut_per_skip_bit: float = 0.1085
    # Pipeline flip-flops per popcount-tree input bit (tree depth registers).
    ff_pipeline_per_popcount_bit: float = 10.528
    # Flip-flops per buffered window-bit.
    ff_per_buffer_bit: float = 0.133
    # Flip-flops per skip-path bit.
    ff_per_skip_bit: float = 0.1756
    # Flip-flops per kernel-base unit for control.
    ff_kernel_base: float = 0.0
    # FMem Kbits per kernel for stream FIFOs and manager plumbing.
    bram_kbits_per_kernel: float = 137.0
    # Fixed Maxeler infrastructure (PCIe, MaxRing, manager) per DFE, Kbits.
    bram_kbits_infrastructure: float = 3_535.0
    # Fixed infrastructure logic per DFE.
    lut_infrastructure: float = 30_000.0
    ff_infrastructure: float = 40_000.0


@dataclass(frozen=True)
class PowerCalibration:
    """FPGA board power model: static + dynamic-per-resource at f_clk."""

    # Watts per utilised LUT at 105 MHz (switching + clock tree share).
    w_per_lut_at_105mhz: float = 2.0e-5
    # Watts per utilised FF at 105 MHz.
    w_per_ff_at_105mhz: float = 6.0e-6
    # Watts per BRAM Kbit in use at 105 MHz.
    w_per_bram_kbit_at_105mhz: float = 1.4e-4
    # Fixed board overhead beyond the FPGA die (DRAM, fans, regulators).
    board_overhead_w: float = 3.5


@dataclass(frozen=True)
class GPUCalibration:
    """Layer-sequential GPU execution model constants.

    The paper ran Hubara et al.'s QNN Theano/cuDNN code; QNN GPU kernels
    execute as ordinary floating-point convolutions, so the model charges
    MACs against a derated FP32 throughput plus a fixed per-layer kernel
    launch + framework overhead — the overhead the paper blames for the
    GPU losing at 32x32.
    """

    # Per-layer fixed overhead (kernel launches, Theano dispatch), seconds.
    layer_overhead_s: float = 1.0e-4
    # Fraction of peak FP32 FLOPs actually sustained by conv kernels.
    conv_efficiency: float = 0.195
    # Per-inference fixed host<->device transfer + sync overhead, seconds.
    invocation_overhead_s: float = 1.0e-4
    # Batch size above which throughput saturates (minibatch amortisation).
    saturation_batch: int = 128
    # Fraction of TDP drawn while running inference.
    load_power_fraction: float = 0.55


DEFAULT_RESOURCE_CAL = ResourceCalibration()
DEFAULT_POWER_CAL = PowerCalibration()
DEFAULT_GPU_CAL = GPUCalibration()
