"""FPGA resource estimation for a LayerGraph (paper Tables III, IV; Figure 6).

The estimators implement the storage arithmetic the paper spells out and
translate it to LUT/FF/BRAM with the calibrated constants:

* **Weight cache** (§III-B1a): each conv/FC layer stores ``O`` entries of
  ``K·K·I`` bits so one output pixel's weights are readable in one cycle.
  M20K block RAMs have fixed width/depth configurations with minimum depth
  512, so "at least 25% of each BRAM used for weights cache is wasted"
  whenever ``O <= 384`` — the waste emerges from the geometry model here.
* **Normalization cache**: ``O`` entries of 64 bits (two packed 32-bit
  parameters per channel, §III-B3).
* **Window buffers** (§III-B1b): depth-first shift registers of
  ``I·L·(K−1) + I·K`` elements, held in flip-flops.
* **Skip delay buffers** (§III-B5): same element count as the skipped
  convolution's buffer, 16 bits wide, held in FMem (BRAM).
* **Compute**: XNOR + popcount adder trees sized by ``K·K·I`` inputs per
  activation bit-plane; 16-bit adders for residual sums; a ``2^n -> 1``
  multiplexer + comparator cascade per threshold unit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ..dataflow.window import depth_first_buffer_elements
from ..nn.graph import (
    AddNode,
    ConvNode,
    GlobalAvgSumNode,
    InputNode,
    LayerGraph,
    MaxPoolNode,
    ThresholdNode,
)
from .calibration import DEFAULT_RESOURCE_CAL, ResourceCalibration
from .device import FPGASpec

__all__ = [
    "M20K_CONFIGS",
    "m20k_blocks",
    "ResourceEstimate",
    "NodeResources",
    "NetworkResources",
    "weight_cache_blocks",
    "estimate_node",
    "estimate_network",
]

# Stratix V M20K width/depth configurations (bits x entries).
M20K_CONFIGS: tuple[tuple[int, int], ...] = (
    (512, 40),
    (1024, 20),
    (2048, 10),
    (4096, 5),
    (8192, 2),
    (16384, 1),
)

M20K_KBITS = 20


def m20k_blocks(width_bits: int, depth: int) -> int:
    """Minimum M20K blocks for a ``depth x width`` single-port memory.

    Tries every legal configuration and tiles the requested geometry; the
    minimum-depth-512 constraint is what makes shallow weight caches wasteful.
    """
    if width_bits <= 0 or depth <= 0:
        return 0
    return min(
        -(-width_bits // cfg_width) * -(-depth // cfg_depth)
        for cfg_depth, cfg_width in M20K_CONFIGS
    )


@dataclass(frozen=True)
class ResourceEstimate:
    """A LUT / FF / BRAM triple (BRAM in allocated blocks and Kbits)."""

    luts: float = 0.0
    ffs: float = 0.0
    bram_blocks: int = 0

    @property
    def bram_kbits(self) -> float:
        return self.bram_blocks * M20K_KBITS

    def __add__(self, other: "ResourceEstimate") -> "ResourceEstimate":
        return ResourceEstimate(
            luts=self.luts + other.luts,
            ffs=self.ffs + other.ffs,
            bram_blocks=self.bram_blocks + other.bram_blocks,
        )

    def scaled(self, factor: float) -> "ResourceEstimate":
        return ResourceEstimate(
            luts=self.luts * factor,
            ffs=self.ffs * factor,
            bram_blocks=int(round(self.bram_blocks * factor)),
        )


@dataclass(frozen=True)
class NodeResources:
    """Resources of one kernel plus explanatory detail."""

    name: str
    kind: str
    estimate: ResourceEstimate
    detail: dict[str, Any] = field(default_factory=dict)


@dataclass
class NetworkResources:
    """Roll-up over a LayerGraph."""

    per_node: list[NodeResources]
    infrastructure: ResourceEstimate
    total: ResourceEstimate

    def utilization(self, device: FPGASpec) -> dict[str, float]:
        """Fraction of device capacity consumed per resource class."""
        return {
            "lut": self.total.luts / device.luts,
            "ff": self.total.ffs / device.ffs,
            "bram": self.total.bram_kbits / device.bram_kbits,
        }

    def max_utilization(self, device: FPGASpec) -> float:
        return max(self.utilization(device).values())

    def dfes_required(self, device: FPGASpec, fill_cap: float = 0.8) -> int:
        """Lower bound on DFEs needed at a routing-friendly fill cap."""
        util = self.max_utilization(device)
        return max(1, int(np.ceil(util / fill_cap)))


def weight_cache_blocks(node: ConvNode) -> tuple[int, float]:
    """(M20K blocks, waste fraction) of a conv layer's weight cache.

    The cache stores ``O`` entries of ``K·K·I`` bits (one output pixel's
    weights per entry, §III-B1a).
    """
    width = node.kernel_size * node.kernel_size * node.in_channels
    depth = node.out_channels
    blocks = m20k_blocks(width, depth)
    raw_bits = width * depth
    allocated_bits = blocks * M20K_KBITS * 1024
    waste = 1.0 - raw_bits / allocated_bits if allocated_bits else 0.0
    return blocks, waste


def _conv_resources(
    graph: LayerGraph, name: str, node: ConvNode, cal: ResourceCalibration
) -> NodeResources:
    in_spec = graph.specs[graph.parents(name)[0]]
    padded_line = in_spec.width + 2 * node.pad
    buffer_elements = depth_first_buffer_elements(padded_line, node.in_channels, node.kernel_size)
    buffer_bits = buffer_elements * in_spec.bits
    popcount_inputs = node.kernel_size * node.kernel_size * node.in_channels
    tree_bits = popcount_inputs * max(1, in_spec.bits)

    luts = (
        cal.lut_per_popcount_bit * tree_bits
        + cal.lut_per_buffer_bit * buffer_bits
        + cal.lut_kernel_base
    )
    ffs = (
        cal.ff_per_buffer_bit * buffer_bits
        + cal.ff_pipeline_per_popcount_bit * tree_bits
        + cal.ff_kernel_base
    )
    wblocks, waste = weight_cache_blocks(node)
    blocks = wblocks
    detail = {
        "buffer_elements": buffer_elements,
        "buffer_bits": buffer_bits,
        "popcount_inputs": popcount_inputs,
        "weight_cache_blocks": wblocks,
        "weight_cache_waste": waste,
        "weight_bits": node.weight_count,
    }
    if node.threshold is not None:
        # Normalization cache: O entries x 64 bits; comparator + mux logic.
        blocks += m20k_blocks(64, node.out_channels)
        levels = 1 << node.threshold.bits
        luts += cal.lut_per_adder_bit * 16 * (levels - 1) + levels  # comparators + mux
    return NodeResources(
        name=name,
        kind="conv",
        estimate=ResourceEstimate(luts=luts, ffs=ffs, bram_blocks=blocks),
        detail=detail,
    )


def _pool_resources(
    graph: LayerGraph, name: str, node: MaxPoolNode, cal: ResourceCalibration
) -> NodeResources:
    in_spec = graph.specs[graph.parents(name)[0]]
    padded_line = in_spec.width + 2 * node.pad
    buffer_elements = depth_first_buffer_elements(padded_line, in_spec.channels, node.kernel_size)
    buffer_bits = buffer_elements * in_spec.bits
    # Comparators over the K x K window of n-bit values.
    luts = (
        cal.lut_per_adder_bit * in_spec.bits * (node.kernel_size**2 - 1)
        + cal.lut_per_buffer_bit * buffer_bits
        + cal.lut_kernel_base * 0.5
    )
    ffs = cal.ff_per_buffer_bit * buffer_bits + cal.ff_kernel_base * 0.5
    return NodeResources(
        name=name,
        kind="maxpool",
        estimate=ResourceEstimate(luts=luts, ffs=ffs, bram_blocks=0),
        detail={"buffer_elements": buffer_elements, "buffer_bits": buffer_bits},
    )


def _threshold_resources(
    graph: LayerGraph, name: str, node: ThresholdNode, cal: ResourceCalibration
) -> NodeResources:
    levels = 1 << node.unit.bits
    luts = cal.lut_per_adder_bit * 16 * (levels - 1) + levels + cal.lut_kernel_base * 0.25
    ffs = cal.ff_kernel_base * 0.25
    blocks = m20k_blocks(64, node.unit.channels)
    return NodeResources(
        name=name,
        kind="threshold",
        estimate=ResourceEstimate(luts=luts, ffs=ffs, bram_blocks=blocks),
        detail={"channels": node.unit.channels},
    )


def _add_resources(
    graph: LayerGraph, name: str, node: AddNode, cal: ResourceCalibration
) -> NodeResources:
    """The §III-B5 skip infrastructure: one 16-bit adder + the delay buffer.

    The delay buffer matches the convolution buffer of the regular-path
    convolution feeding port 0 ("exactly same size ... not accidental") and
    lives in FMem at 16 bits per element.
    """
    parents = graph.parents(name)
    conv_parent = graph.nodes[parents[0]]
    if isinstance(conv_parent, ConvNode):
        conv_in = graph.specs[graph.parents(parents[0])[0]]
        padded_line = conv_in.width + 2 * conv_parent.pad
        elements = depth_first_buffer_elements(
            padded_line, conv_parent.in_channels, conv_parent.kernel_size
        )
    else:  # defensive: size on the output tensor
        elements = graph.specs[name].elements
    skip_bits = elements * 16
    blocks = m20k_blocks(16, elements)
    luts = cal.lut_per_adder_bit * 16 + cal.lut_per_skip_bit * skip_bits + cal.lut_kernel_base * 0.1
    ffs = cal.ff_per_skip_bit * skip_bits + cal.ff_kernel_base * 0.1
    return NodeResources(
        name=name,
        kind="add",
        estimate=ResourceEstimate(luts=luts, ffs=ffs, bram_blocks=blocks),
        detail={"skip_buffer_elements": elements, "skip_buffer_bits": skip_bits},
    )


def _avg_resources(
    graph: LayerGraph, name: str, node: GlobalAvgSumNode, cal: ResourceCalibration
) -> NodeResources:
    spec = graph.specs[name]
    acc_bits = spec.bits
    ffs = spec.channels * acc_bits + cal.ff_kernel_base * 0.25
    luts = cal.lut_per_adder_bit * acc_bits + cal.lut_kernel_base * 0.25
    return NodeResources(
        name=name, kind="avgsum", estimate=ResourceEstimate(luts=luts, ffs=ffs), detail={}
    )


def estimate_node(
    graph: LayerGraph, name: str, cal: ResourceCalibration = DEFAULT_RESOURCE_CAL
) -> NodeResources:
    """Resource estimate of a single IR node's streaming kernel."""
    node = graph.nodes[name]
    if isinstance(node, ConvNode):
        return _conv_resources(graph, name, node, cal)
    if isinstance(node, MaxPoolNode):
        return _pool_resources(graph, name, node, cal)
    if isinstance(node, ThresholdNode):
        return _threshold_resources(graph, name, node, cal)
    if isinstance(node, AddNode):
        return _add_resources(graph, name, node, cal)
    if isinstance(node, GlobalAvgSumNode):
        return _avg_resources(graph, name, node, cal)
    if isinstance(node, InputNode):
        return NodeResources(name=name, kind="input", estimate=ResourceEstimate(), detail={})
    raise TypeError(f"no resource model for {type(node).__name__}")


def estimate_network(
    graph: LayerGraph,
    cal: ResourceCalibration = DEFAULT_RESOURCE_CAL,
    n_dfes: int = 1,
) -> NetworkResources:
    """Estimate the whole network, including per-DFE Maxeler infrastructure."""
    per_node = [estimate_node(graph, name, cal) for name in graph.order]
    kernel_count = sum(1 for nr in per_node if nr.kind != "input")
    infra = ResourceEstimate(
        luts=cal.lut_infrastructure * n_dfes,
        ffs=cal.ff_infrastructure * n_dfes,
        bram_blocks=int(
            round(
                (cal.bram_kbits_infrastructure * n_dfes + cal.bram_kbits_per_kernel * kernel_count)
                / M20K_KBITS
            )
        ),
    )
    total = infra
    for nr in per_node:
        total = total + nr.estimate
    return NetworkResources(per_node=per_node, infrastructure=infra, total=total)
