"""Analytic timing model: clocks per picture, latency, throughput (§IV-B4).

The paper validates its design with a closed-form clock count ("our
theoretical estimation of the number of clocks per picture for ResNet-18
... approximately 1.85e6 ... matches the measured time at 105 MHz").  This
module implements the same style of estimate from the IR alone, using the
per-kernel cycle formulas the streaming kernels obey:

* convolution: scan of the padded grid (one element per clock, padding
  injected) plus ``O`` emit clocks at every valid output position;
* pooling / threshold / add / fork: one element per clock, no extra stalls;
* global average: the scan plus ``C`` drain clocks.

From these the model derives

* ``interval_cycles`` — steady-state clocks between consecutive images
  (the pipelined throughput bound: the slowest kernel);
* ``latency_cycles`` — single-image end-to-end clocks via a fill/tail
  recurrence over the DAG (validated against the cycle simulator);
* ``sequential_cycles`` — the sum over kernels, i.e. the "traditional
  approach in which the computation of the current layer starts once the
  previous one has finished"; the overlap speedup the streaming
  architecture buys is ``sequential / latency``.

Multi-DFE execution adds one link latency per crossing to the image
latency and (§III-B6) changes nothing else as long as the links sustain
``bits x f_clk`` — reproducing "the workload can be divided into multiple
DFEs with very small performance degradation".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..dataflow.links import MAXRING, LinkSpec
from ..nn.graph import (
    AddNode,
    ConvNode,
    GlobalAvgSumNode,
    InputNode,
    LayerGraph,
    MaxPoolNode,
    ThresholdNode,
)
from .device import MAX4_FABRIC_MHZ

__all__ = ["KernelTiming", "NetworkTiming", "kernel_timing", "estimate_network_timing"]


@dataclass(frozen=True)
class KernelTiming:
    """Cycle characteristics of one streaming kernel."""

    name: str
    kind: str
    cycles_per_image: int
    fill_cycles: int
    tail_cycles: int


def kernel_timing(graph: LayerGraph, name: str) -> KernelTiming:
    """Closed-form per-image cycles for one node's kernel."""
    node = graph.nodes[name]
    parents = graph.parents(name)
    in_spec = graph.specs[parents[0]] if parents else None

    if isinstance(node, InputNode):
        spec = graph.specs[name]
        return KernelTiming(name, "input", spec.elements, 0, 0)
    if isinstance(node, ConvNode):
        hp = in_spec.height + 2 * node.pad
        wp = in_spec.width + 2 * node.pad
        scan = hp * wp * in_spec.channels
        out_spec = graph.specs[name]
        emits = out_spec.pixels * node.out_channels
        k = node.kernel_size
        fill = ((k - 1) * wp + k) * in_spec.channels + node.out_channels
        return KernelTiming(name, "conv", scan + emits, fill, node.out_channels)
    if isinstance(node, MaxPoolNode):
        hp = in_spec.height + 2 * node.pad
        wp = in_spec.width + 2 * node.pad
        scan = hp * wp * in_spec.channels
        k = node.kernel_size
        fill = ((k - 1) * wp + k) * in_spec.channels
        return KernelTiming(name, "maxpool", scan, fill, 1)
    if isinstance(node, ThresholdNode):
        return KernelTiming(name, "threshold", in_spec.elements, 1, 1)
    if isinstance(node, AddNode):
        return KernelTiming(name, "add", graph.specs[name].elements, 1, 1)
    if isinstance(node, GlobalAvgSumNode):
        c = graph.specs[name].channels
        return KernelTiming(name, "avgsum", in_spec.elements + c, in_spec.elements + 1, c)
    raise TypeError(f"no timing model for {type(node).__name__}")


@dataclass
class NetworkTiming:
    """Whole-network timing summary."""

    per_kernel: list[KernelTiming]
    interval_cycles: int
    latency_cycles: int
    sequential_cycles: int
    link_crossings: int
    fclk_mhz: float
    parameter_load_cycles: int = 0

    @property
    def bottleneck(self) -> KernelTiming:
        return max(self.per_kernel, key=lambda t: t.cycles_per_image)

    @property
    def latency_ms(self) -> float:
        return self.latency_cycles / (self.fclk_mhz * 1e3)

    @property
    def interval_ms(self) -> float:
        return self.interval_cycles / (self.fclk_mhz * 1e3)

    @property
    def throughput_fps(self) -> float:
        return 1000.0 / self.interval_ms

    @property
    def sequential_ms(self) -> float:
        return self.sequential_cycles / (self.fclk_mhz * 1e3)

    @property
    def overlap_speedup(self) -> float:
        """How much layer overlap beats run-to-completion scheduling."""
        return self.sequential_cycles / self.latency_cycles

    @property
    def parameter_load_ms(self) -> float:
        """One-time cache-fill cost before inference starts (§III-B1a)."""
        return self.parameter_load_cycles / (self.fclk_mhz * 1e3)

    def at_clock(self, fclk_mhz: float) -> "NetworkTiming":
        """Re-time at another fabric clock (the Stratix 10 projection)."""
        return NetworkTiming(
            per_kernel=self.per_kernel,
            interval_cycles=self.interval_cycles,
            latency_cycles=self.latency_cycles,
            sequential_cycles=self.sequential_cycles,
            link_crossings=self.link_crossings,
            fclk_mhz=fclk_mhz,
            parameter_load_cycles=self.parameter_load_cycles,
        )


def estimate_network_timing(
    graph: LayerGraph,
    fclk_mhz: float = MAX4_FABRIC_MHZ,
    partition: list[list[str]] | None = None,
    link: LinkSpec = MAXRING,
) -> NetworkTiming:
    """Analytic latency/throughput for ``graph`` (optionally multi-DFE).

    The latency recurrence per node::

        first_out(v) = max_parent first_out(p) + fill(v)
        last_out(v)  = max( max_parent last_out(p) + tail(v),
                            max_parent first_out(p) + cycles(v) )

    i.e. a kernel finishes either as soon as its last input arrives (plus
    its drain tail) or as late as its own throughput allows from the moment
    it started.  Cross-DFE edges add the link latency to both terms.
    """
    timings = {name: kernel_timing(graph, name) for name in graph.order}
    dfe_of: dict[str, int] = {}
    if partition:
        for idx, group in enumerate(partition):
            for n in group:
                dfe_of[n] = idx

    first_out: dict[str, float] = {}
    last_out: dict[str, float] = {}
    crossings = 0
    for name in graph.topological():
        t = timings[name]
        parents = graph.parents(name)
        if not parents:
            first_out[name] = 1.0
            last_out[name] = float(t.cycles_per_image)
            continue
        link_lat = 0
        for p in parents:
            if dfe_of and dfe_of.get(p, 0) != dfe_of.get(name, 0):
                crossings += 1
                link_lat = max(link_lat, link.latency_cycles)
        pf = max(first_out[p] for p in parents) + link_lat
        pl = max(last_out[p] for p in parents) + link_lat
        first_out[name] = pf + t.fill_cycles
        last_out[name] = max(pl + t.tail_cycles, pf + t.cycles_per_image)

    compute = [timings[n] for n in graph.order if timings[n].kind != "input"]
    interval = max(t.cycles_per_image for t in compute)
    sequential = sum(t.cycles_per_image for t in compute)
    latency = int(np.ceil(last_out[graph.output_name]))

    # One-time parameter fetch (§III-B1a): "the weights and normalization
    # parameters ... are loaded into their dedicated caches only once,
    # before inference of images starts."  One cache entry per cycle.
    load = 0
    for name in graph.order:
        node = graph.nodes[name]
        if isinstance(node, ConvNode):
            load += node.out_channels  # weight-cache entries
            if node.threshold is not None:
                load += node.out_channels  # normalization-cache words
        elif isinstance(node, ThresholdNode):
            load += node.unit.channels

    return NetworkTiming(
        per_kernel=compute,
        interval_cycles=interval,
        latency_cycles=latency,
        sequential_cycles=sequential,
        link_crossings=crossings,
        fclk_mhz=fclk_mhz,
        parameter_load_cycles=load,
    )
