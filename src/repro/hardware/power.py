"""FPGA power and energy models (Figures 7 and 8).

Board power is static die power + board overhead per DFE, plus dynamic
power proportional to utilised resources and fabric clock — the standard
first-order CMOS model (dynamic power ∝ switched capacitance × frequency).
The calibration reproduces the paper's 12 W single-DFE operating point
(Table IVa); power then *grows with the number of DFEs* exactly as Figure 7
shows for three-DFE AlexNet.

Energy per image (Figure 8) is board power × single-image latency, matching
the paper's single-picture inference methodology.
"""

from __future__ import annotations

from dataclasses import dataclass

from .calibration import DEFAULT_POWER_CAL, PowerCalibration
from .device import FPGASpec, MAX4_FABRIC_MHZ
from .resources import NetworkResources, ResourceEstimate

__all__ = ["FPGAPowerModel", "PowerReport"]


@dataclass(frozen=True)
class PowerReport:
    """Power breakdown of a (possibly multi-DFE) design."""

    static_w: float
    dynamic_w: float
    board_overhead_w: float
    n_dfes: int

    @property
    def total_w(self) -> float:
        return self.static_w + self.dynamic_w + self.board_overhead_w

    def energy_per_image_j(self, latency_ms: float) -> float:
        return self.total_w * latency_ms / 1000.0


class FPGAPowerModel:
    """Resource- and clock-aware FPGA board power estimator."""

    def __init__(
        self,
        device: FPGASpec,
        cal: PowerCalibration = DEFAULT_POWER_CAL,
    ) -> None:
        self.device = device
        self.cal = cal

    def power(
        self,
        resources: NetworkResources | ResourceEstimate,
        n_dfes: int = 1,
        fclk_mhz: float | None = None,
    ) -> PowerReport:
        """Board power for a design using ``resources`` spread over ``n_dfes``."""
        fclk = self.device.fabric_mhz if fclk_mhz is None else fclk_mhz
        est = resources.total if isinstance(resources, NetworkResources) else resources
        scale = fclk / MAX4_FABRIC_MHZ
        dynamic = scale * (
            self.cal.w_per_lut_at_105mhz * est.luts
            + self.cal.w_per_ff_at_105mhz * est.ffs
            + self.cal.w_per_bram_kbit_at_105mhz * est.bram_kbits
        )
        return PowerReport(
            static_w=self.device.static_power_w * n_dfes,
            dynamic_w=dynamic,
            board_overhead_w=self.cal.board_overhead_w * n_dfes,
            n_dfes=n_dfes,
        )
