"""Hardware cost models: devices, resources, timing, power, GPU baseline."""

from .calibration import (
    DEFAULT_GPU_CAL,
    DEFAULT_POWER_CAL,
    DEFAULT_RESOURCE_CAL,
    GPUCalibration,
    PowerCalibration,
    ResourceCalibration,
)
from .device import (
    GTX1080,
    MAX4_FABRIC_MHZ,
    P100,
    STRATIX_10_PROJECTION,
    STRATIX_V_5SGSD8,
    FPGASpec,
    GPUSpec,
)
from .gpu import GPUModel, GPUTimingReport, gpu_launch_count, network_macs
from .partition import (
    PartitionResult,
    atomic_groups,
    group_estimate,
    infrastructure_estimate,
    partition_crossings,
    partition_network,
    partition_resources,
    per_kernel_overhead,
)
from .power import FPGAPowerModel, PowerReport
from .report import DesignReport, build_design_report
from .resources import (
    M20K_CONFIGS,
    NetworkResources,
    NodeResources,
    ResourceEstimate,
    estimate_network,
    estimate_node,
    m20k_blocks,
    weight_cache_blocks,
)
from .timing import KernelTiming, NetworkTiming, estimate_network_timing, kernel_timing

__all__ = [
    "DEFAULT_GPU_CAL",
    "DEFAULT_POWER_CAL",
    "DEFAULT_RESOURCE_CAL",
    "GPUCalibration",
    "PowerCalibration",
    "ResourceCalibration",
    "GTX1080",
    "MAX4_FABRIC_MHZ",
    "P100",
    "STRATIX_10_PROJECTION",
    "STRATIX_V_5SGSD8",
    "FPGASpec",
    "GPUSpec",
    "GPUModel",
    "GPUTimingReport",
    "gpu_launch_count",
    "network_macs",
    "PartitionResult",
    "atomic_groups",
    "partition_network",
    "group_estimate",
    "infrastructure_estimate",
    "partition_crossings",
    "partition_resources",
    "per_kernel_overhead",
    "DesignReport",
    "build_design_report",
    "FPGAPowerModel",
    "PowerReport",
    "M20K_CONFIGS",
    "NetworkResources",
    "NodeResources",
    "ResourceEstimate",
    "estimate_network",
    "estimate_node",
    "m20k_blocks",
    "weight_cache_blocks",
    "KernelTiming",
    "NetworkTiming",
    "estimate_network_timing",
    "kernel_timing",
]
