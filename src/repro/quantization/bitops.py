"""Bit-packed arithmetic primitives for quantized neural networks.

This module implements the arithmetic substrate of the paper's convolution
kernel (Section III-B1): binary {-1, +1} weights are packed into ``uint64``
words and multiplied against activations with the **XNOR-popcount** algorithm
instead of element-wise multiply-accumulate.

Two regimes are supported:

* **binary x binary** — both operands live in {-1, +1}.  For sign vectors
  ``a`` and ``b`` encoded as bits (``+1 -> 1``, ``-1 -> 0``),

  ``dot(a, b) = n - 2 * popcount(a_bits XOR b_bits)``

  which is the classic XNOR-popcount identity (``popcount(XNOR) = n -
  popcount(XOR)``).  Using the XOR form makes zero-padded tail bits (both
  zero) contribute nothing, so packed vectors whose length is not a multiple
  of 64 need no masking.

* **binary weights x n-bit unsigned activations** — the paper's actual
  configuration (1-bit weights, 2-bit activations).  An n-bit activation
  vector ``x`` decomposes into bit-planes ``x = sum_b 2**b * p_b`` with
  ``p_b in {0, 1}``, and for a sign vector ``w``

  ``dot(w, p) = 2 * popcount(w_bits AND p_bits) - popcount(p_bits)``

  (positions where ``p = 1`` contribute ``+1`` when ``w = +1`` and ``-1``
  when ``w = -1``).  Summing planes weighted by ``2**b`` yields the exact
  integer dot product.

All functions are vectorised over leading axes; packing always happens along
the **last** axis.  Popcounts use :func:`numpy.bitwise_count`, which lowers
to hardware ``popcnt`` — mirroring the LUT-based popcount adder trees the
FPGA design instantiates.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "WORD_BITS",
    "packed_words",
    "pack_bits",
    "unpack_bits",
    "pack_signs",
    "unpack_signs",
    "pack_bitplanes",
    "popcount",
    "xnor_popcount_dot",
    "xnor_popcount_gemm",
    "masked_popcount_dot",
    "bitplane_dot",
    "bitplane_gemm",
    "BitPackedMatrix",
    "BitplaneTensor",
]

WORD_BITS = 64
_WORD_DTYPE = np.uint64

# Popcount lowers through numpy's bitwise_count (NumPy >= 2.0).  Fail at
# import with a clear message rather than deep inside a simulation run.
if not hasattr(np, "bitwise_count"):  # pragma: no cover - depends on numpy build
    raise ImportError(
        "repro.quantization.bitops requires numpy>=2.0 for np.bitwise_count "
        f"(found numpy {np.__version__}); upgrade numpy to use the bit-packed "
        "arithmetic paths"
    )


def packed_words(n: int) -> int:
    """Number of 64-bit words needed to hold ``n`` bits."""
    if n < 0:
        raise ValueError(f"bit length must be non-negative, got {n}")
    return (n + WORD_BITS - 1) // WORD_BITS


def pack_bits(bits: np.ndarray) -> np.ndarray:
    """Pack a {0, 1} array into ``uint64`` words along the last axis.

    Bit ``i`` of the logical vector is stored at word ``i // 64``,
    bit position ``i % 64`` (LSB-first).  Tail bits are zero.

    Parameters
    ----------
    bits:
        Integer or boolean array with values in {0, 1}; shape ``(..., n)``.

    Returns
    -------
    ``uint64`` array of shape ``(..., ceil(n / 64))``.
    """
    bits = np.asarray(bits)
    if bits.ndim == 0:
        raise ValueError("pack_bits requires at least a 1-D input")
    n = bits.shape[-1]
    nwords = packed_words(n)
    # np.packbits is big-endian within bytes; request little so bit i of the
    # logical vector lands at byte i//8, bit i%8, then view bytes as uint64.
    padded = np.zeros(bits.shape[:-1] + (nwords * WORD_BITS,), dtype=np.uint8)
    padded[..., :n] = bits.astype(np.uint8)
    packed_bytes = np.packbits(padded, axis=-1, bitorder="little")
    return packed_bytes.view(_WORD_DTYPE) if packed_bytes.flags["C_CONTIGUOUS"] else np.ascontiguousarray(packed_bytes).view(_WORD_DTYPE)


def unpack_bits(words: np.ndarray, n: int) -> np.ndarray:
    """Inverse of :func:`pack_bits`; returns a ``uint8`` {0, 1} array of shape ``(..., n)``."""
    words = np.ascontiguousarray(words, dtype=_WORD_DTYPE)
    as_bytes = words.view(np.uint8)
    bits = np.unpackbits(as_bytes, axis=-1, bitorder="little")
    return bits[..., :n]


def pack_signs(x: np.ndarray) -> np.ndarray:
    """Pack a {-1, +1} array into ``uint64`` words (``+1 -> 1``, ``-1 -> 0``).

    This is exactly the paper's weight-storage transformation: weights arrive
    as 32-bit floats and are reduced to one bit via the Sign function before
    entering the on-chip weight cache.
    """
    x = np.asarray(x)
    bad = (x != 1) & (x != -1)
    if bad.any():
        raise ValueError("pack_signs expects values in {-1, +1}")
    return pack_bits((x > 0).astype(np.uint8))


def unpack_signs(words: np.ndarray, n: int) -> np.ndarray:
    """Inverse of :func:`pack_signs`; returns an ``int8`` {-1, +1} array."""
    bits = unpack_bits(words, n)
    return (bits.astype(np.int8) * 2) - 1


def pack_bitplanes(x: np.ndarray, bits: int) -> list[np.ndarray]:
    """Decompose an unsigned ``bits``-bit integer array into packed bit-planes.

    Returns a list ``planes`` of length ``bits`` with ``planes[b]`` the packed
    plane of weight ``2**b``.  Values must lie in ``[0, 2**bits)``.
    """
    x = np.asarray(x)
    if bits < 1:
        raise ValueError(f"bits must be >= 1, got {bits}")
    if np.any(x < 0) or np.any(x >= (1 << bits)):
        raise ValueError(f"values out of range for {bits}-bit unsigned")
    xi = x.astype(np.int64)
    return [pack_bits(((xi >> b) & 1).astype(np.uint8)) for b in range(bits)]


def popcount(words: np.ndarray, axis: int | None = -1) -> np.ndarray:
    """Population count of packed words, summed along ``axis`` (or elementwise if None)."""
    counts = np.bitwise_count(np.asarray(words, dtype=_WORD_DTYPE))
    if axis is None:
        return counts
    return counts.sum(axis=axis, dtype=np.int64)


def xnor_popcount_dot(a_words: np.ndarray, b_words: np.ndarray, n: int) -> np.ndarray:
    """Dot product of two packed {-1, +1} vectors of logical length ``n``.

    Broadcasts over leading axes.  Implements ``n - 2 * popcount(a XOR b)``;
    zero tail bits cancel in the XOR so no mask is required.
    """
    xor = np.bitwise_xor(a_words, b_words)
    return n - 2 * popcount(xor)


def xnor_popcount_gemm(w_words: np.ndarray, x_words: np.ndarray, n: int) -> np.ndarray:
    """Binary-binary matrix product via XNOR-popcount.

    Parameters
    ----------
    w_words:
        Packed weight matrix, shape ``(O, W)`` for ``O`` output neurons.
    x_words:
        Packed activation matrix, shape ``(N, W)`` for ``N`` samples/pixels.
    n:
        Logical (unpacked) vector length.

    Returns
    -------
    ``int64`` array of shape ``(N, O)`` equal to the dense ±1 product.
    """
    w_words = np.asarray(w_words, dtype=_WORD_DTYPE)
    x_words = np.asarray(x_words, dtype=_WORD_DTYPE)
    xor = np.bitwise_xor(x_words[:, None, :], w_words[None, :, :])
    return n - 2 * popcount(xor)


def masked_popcount_dot(w_words: np.ndarray, mask_words: np.ndarray) -> np.ndarray:
    """Dot of packed sign vector ``w`` with a packed {0, 1} mask.

    ``sum_{i : mask_i = 1} w_i  =  2 * popcount(w AND mask) - popcount(mask)``.
    Broadcasts over leading axes.
    """
    both = np.bitwise_and(w_words, mask_words)
    return 2 * popcount(both) - popcount(mask_words)


def bitplane_dot(w_words: np.ndarray, planes: list[np.ndarray]) -> np.ndarray:
    """Dot of a packed sign vector with an n-bit activation given as bit-planes."""
    acc = None
    for b, plane in enumerate(planes):
        term = masked_popcount_dot(w_words, plane) << b
        acc = term if acc is None else acc + term
    if acc is None:
        raise ValueError("at least one bit-plane is required")
    return acc


def bitplane_gemm(
    w_words: np.ndarray, planes: list[np.ndarray], block_elements: int = 1 << 22
) -> np.ndarray:
    """Binary-weight x n-bit-activation matrix product via AND-popcount planes.

    Parameters
    ----------
    w_words:
        Packed weights, shape ``(O, W)``.
    planes:
        List of packed activation planes, each of shape ``(N, W)``;
        ``planes[b]`` carries weight ``2**b``.
    block_elements:
        Cap on the ``rows x O x W`` broadcast intermediate.  Activation rows
        are processed in blocks so memory stays bounded for large ``N``
        instead of materialising the full ``(N, O, W)`` AND tensor at once.

    Returns
    -------
    ``int64`` array of shape ``(N, O)``.
    """
    if not planes:
        raise ValueError("at least one bit-plane is required")
    w_words = np.asarray(w_words, dtype=_WORD_DTYPE)
    planes = [np.asarray(p, dtype=_WORD_DTYPE) for p in planes]
    n_rows, n_out = planes[0].shape[0], w_words.shape[0]
    words = w_words.shape[-1]
    rows_per_block = max(1, block_elements // max(1, n_out * words))
    out = np.zeros((n_rows, n_out), dtype=np.int64)
    for start in range(0, n_rows, rows_per_block):
        stop = min(n_rows, start + rows_per_block)
        acc = None
        for b, plane in enumerate(planes):
            block = plane[start:stop]
            and_pc = popcount(np.bitwise_and(block[:, None, :], w_words[None, :, :]))
            mask_pc = popcount(block)[:, None]
            term = (2 * and_pc - mask_pc) << b
            acc = term if acc is None else acc + term
        out[start:stop] = acc
    return out


@dataclass(frozen=True)
class BitPackedMatrix:
    """A sign matrix stored bit-packed, as the FPGA weight cache stores it.

    Each of the ``rows`` logical rows (one per output feature map, i.e. one
    cache entry in the paper's weight cache) holds ``cols`` sign bits packed
    into ``uint64`` words.
    """

    words: np.ndarray
    rows: int
    cols: int

    @classmethod
    def from_signs(cls, signs: np.ndarray) -> "BitPackedMatrix":
        signs = np.asarray(signs)
        if signs.ndim != 2:
            raise ValueError(f"expected a 2-D sign matrix, got shape {signs.shape}")
        return cls(words=pack_signs(signs), rows=signs.shape[0], cols=signs.shape[1])

    @classmethod
    def from_float(cls, weights: np.ndarray) -> "BitPackedMatrix":
        """Binarize float weights with Sign (zero maps to +1) and pack them."""
        weights = np.asarray(weights, dtype=np.float64)
        signs = np.where(weights >= 0, 1, -1).astype(np.int8)
        return cls.from_signs(signs)

    def to_signs(self) -> np.ndarray:
        return unpack_signs(self.words, self.cols)

    def matmul_binary(self, x_words: np.ndarray) -> np.ndarray:
        """Multiply against packed ±1 activations of shape ``(N, W)``."""
        return xnor_popcount_gemm(self.words, x_words, self.cols)

    def matmul_planes(self, planes: list[np.ndarray]) -> np.ndarray:
        """Multiply against n-bit activations given as packed bit-planes."""
        return bitplane_gemm(self.words, planes)

    @property
    def nbytes(self) -> int:
        return int(self.words.nbytes)


@dataclass(frozen=True)
class BitplaneTensor:
    """An n-bit unsigned activation tensor stored as packed bit-planes.

    ``planes[b]`` has shape ``(N, ceil(cols / 64))`` and weight ``2**b``; the
    logical tensor is ``sum_b 2**b * unpack(planes[b])`` of shape
    ``(N, cols)``.
    """

    planes: tuple[np.ndarray, ...]
    rows: int
    cols: int
    bits: int

    @classmethod
    def from_levels(cls, levels: np.ndarray, bits: int) -> "BitplaneTensor":
        levels = np.asarray(levels)
        if levels.ndim != 2:
            raise ValueError(f"expected 2-D level matrix, got shape {levels.shape}")
        planes = tuple(pack_bitplanes(levels, bits))
        return cls(planes=planes, rows=levels.shape[0], cols=levels.shape[1], bits=bits)

    def to_levels(self) -> np.ndarray:
        out = np.zeros((self.rows, self.cols), dtype=np.int64)
        for b, plane in enumerate(self.planes):
            out += unpack_bits(plane, self.cols).astype(np.int64) << b
        return out

    @property
    def nbytes(self) -> int:
        return int(sum(p.nbytes for p in self.planes))
