"""Quantization substrate: bit-packed arithmetic, quantizers, threshold folding.

The three pillars of the paper's arithmetic:

* :mod:`repro.quantization.bitops` — XNOR-popcount and bit-plane
  AND-popcount replacements for multiply-accumulate;
* :mod:`repro.quantization.quantizers` — 1-bit sign weights and n-bit
  uniform activations;
* :mod:`repro.quantization.thresholds` — BatchNorm + activation fused into
  two per-channel parameters evaluated by binary search (§III-B3).
"""

from .bitops import (
    WORD_BITS,
    BitPackedMatrix,
    BitplaneTensor,
    bitplane_dot,
    bitplane_gemm,
    masked_popcount_dot,
    pack_bitplanes,
    pack_bits,
    pack_signs,
    packed_words,
    popcount,
    unpack_bits,
    unpack_signs,
    xnor_popcount_dot,
    xnor_popcount_gemm,
)
from .quantizers import SignQuantizer, UniformQuantizer
from .thresholds import BatchNormParams, ThresholdUnit, fold_batchnorm, fold_batchnorm_sign

__all__ = [
    "WORD_BITS",
    "BitPackedMatrix",
    "BitplaneTensor",
    "bitplane_dot",
    "bitplane_gemm",
    "masked_popcount_dot",
    "pack_bitplanes",
    "pack_bits",
    "pack_signs",
    "packed_words",
    "popcount",
    "unpack_bits",
    "unpack_signs",
    "xnor_popcount_dot",
    "xnor_popcount_gemm",
    "SignQuantizer",
    "UniformQuantizer",
    "BatchNormParams",
    "ThresholdUnit",
    "fold_batchnorm",
    "fold_batchnorm_sign",
]
