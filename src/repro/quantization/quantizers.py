"""Quantizer definitions: 1-bit sign weights and n-bit uniform activations.

The paper (following Hubara et al.) uses 1-bit weights obtained with the
Sign function and n-bit *uniform* activations: the input range is divided
into ``2**n`` equally-sized ranges of width ``d``, each mapped to one output
level.  These classes are the pure-math description of that scheme; the
hardware realisation (threshold comparisons) lives in
:mod:`repro.quantization.thresholds` and is property-tested to agree with
these references bit-exactly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["SignQuantizer", "UniformQuantizer"]


@dataclass(frozen=True)
class SignQuantizer:
    """1-bit quantizer: ``x -> +1`` if ``x >= 0`` else ``-1``.

    Matches the paper's weight binarization ("transformed into a 1-bit
    representation, using the Sign function") with the common convention
    that zero maps to ``+1``.
    """

    def quantize(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x)
        return np.where(x >= 0, 1, -1).astype(np.int8)

    def dequantize(self, q: np.ndarray) -> np.ndarray:
        return np.asarray(q, dtype=np.float64)

    @property
    def bits(self) -> int:
        return 1

    @property
    def levels(self) -> int:
        return 2


@dataclass(frozen=True)
class UniformQuantizer:
    """n-bit uniform activation quantizer over ``[lo, lo + 2**bits * d)``.

    The quantizer divides its input range into ``2**bits`` equal ranges of
    width ``d``; inputs below the range clamp to level 0, inputs at or above
    the top clamp to level ``2**bits - 1``.  ``quantize_level`` returns the
    integer range index (what the FPGA streams between layers);
    ``dequantize`` returns the representative value of a level, used by the
    floating-point training path.

    Parameters
    ----------
    bits:
        Activation bit width ``n`` (the paper uses 2).
    lo:
        Lower edge of the quantization range.
    d:
        Width of each of the ``2**bits`` ranges.
    midpoint:
        If True (default), a level dequantizes to its range midpoint
        ``lo + (level + 0.5) * d``; otherwise to the range's left edge.
    """

    bits: int
    lo: float = 0.0
    d: float = 1.0
    midpoint: bool = True

    def __post_init__(self) -> None:
        if self.bits < 1:
            raise ValueError(f"bits must be >= 1, got {self.bits}")
        if not self.d > 0:
            raise ValueError(f"range width d must be positive, got {self.d}")

    @property
    def levels(self) -> int:
        return 1 << self.bits

    @property
    def hi(self) -> float:
        """Upper edge of the representable range."""
        return self.lo + self.levels * self.d

    def quantize_level(self, x: np.ndarray) -> np.ndarray:
        """Map inputs to integer levels in ``[0, 2**bits)`` (clamped floor)."""
        x = np.asarray(x, dtype=np.float64)
        idx = np.floor((x - self.lo) / self.d)
        return np.clip(idx, 0, self.levels - 1).astype(np.int64)

    def dequantize(self, level: np.ndarray) -> np.ndarray:
        level = np.asarray(level, dtype=np.float64)
        offset = 0.5 if self.midpoint else 0.0
        return self.lo + (level + offset) * self.d

    def quantize(self, x: np.ndarray) -> np.ndarray:
        """Round-trip ``x`` through the quantizer (quantize then dequantize)."""
        return self.dequantize(self.quantize_level(x))

    def boundaries(self) -> np.ndarray:
        """The ``2**bits - 1`` interior range endpoints ``lo + a * d``, a=1..2**bits-1."""
        alphas = np.arange(1, self.levels)
        return self.lo + alphas * self.d
