"""Fused BatchNorm + n-bit activation as a threshold unit (paper §III-B3).

FINN showed that BatchNorm followed by a 1-bit activation collapses into a
single threshold comparison.  The paper extends this to multi-bit
activations: with BatchNorm

    BatchNorm(a_k, Θ_k) = γ_k · (a_k − µ_k) · i_k + B_k

and an n-bit uniform activation of range width ``d``, solving
``BatchNorm(τ_k) = 0`` gives ``τ_k = µ_k − B_k / (γ_k · i_k)`` and solving
``BatchNorm(t_k) = α · d`` gives

    t_k(α) = τ_k + α · [d / (γ_k · i_k)].

So per channel only **two parameters** — ``τ_k`` and ``step_k = d / (γ_k ·
i_k)`` — generate every range endpoint, and the activation level is found by
a binary search over the ``2**n − 1`` interior endpoints (an n-input
comparator feeding a ``2**n -> 1`` multiplexer in hardware).

This module implements both the parameter folding and the binary-search
evaluation, exactly mirroring the paper's two stored 32-bit parameters per
channel (packed as one 64-bit word in the normalization cache).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .quantizers import UniformQuantizer

__all__ = ["BatchNormParams", "ThresholdUnit", "fold_batchnorm", "fold_batchnorm_sign"]


@dataclass(frozen=True)
class BatchNormParams:
    """Per-channel inference-time BatchNorm parameters Θ_k = (γ, µ, i, B).

    ``i`` is the reciprocal standard deviation ``1 / sqrt(var + eps)``
    (the paper's ``i_k``); all arrays share one shape ``(channels,)``.
    """

    gamma: np.ndarray
    mu: np.ndarray
    inv_std: np.ndarray
    beta: np.ndarray

    def __post_init__(self) -> None:
        shapes = {np.shape(self.gamma), np.shape(self.mu), np.shape(self.inv_std), np.shape(self.beta)}
        if len(shapes) != 1:
            raise ValueError(f"BatchNorm parameter shapes differ: {shapes}")

    @property
    def channels(self) -> int:
        return int(np.shape(self.gamma)[0])

    @property
    def slope(self) -> np.ndarray:
        """The affine slope ``γ_k · i_k`` of the folded BatchNorm."""
        return np.asarray(self.gamma, dtype=np.float64) * np.asarray(self.inv_std, dtype=np.float64)

    def apply(self, a: np.ndarray, channel_axis: int = -1) -> np.ndarray:
        """Reference floating-point BatchNorm along ``channel_axis``."""
        a = np.asarray(a, dtype=np.float64)
        shape = [1] * a.ndim
        shape[channel_axis] = self.channels
        gamma = np.asarray(self.gamma, dtype=np.float64).reshape(shape)
        mu = np.asarray(self.mu, dtype=np.float64).reshape(shape)
        inv_std = np.asarray(self.inv_std, dtype=np.float64).reshape(shape)
        beta = np.asarray(self.beta, dtype=np.float64).reshape(shape)
        return gamma * (a - mu) * inv_std + beta

    @classmethod
    def from_moments(
        cls,
        gamma: np.ndarray,
        beta: np.ndarray,
        running_mean: np.ndarray,
        running_var: np.ndarray,
        eps: float = 1e-5,
    ) -> "BatchNormParams":
        """Build Θ_k from trained BatchNorm statistics."""
        inv_std = 1.0 / np.sqrt(np.asarray(running_var, dtype=np.float64) + eps)
        return cls(
            gamma=np.asarray(gamma, dtype=np.float64),
            mu=np.asarray(running_mean, dtype=np.float64),
            inv_std=inv_std,
            beta=np.asarray(beta, dtype=np.float64),
        )


@dataclass(frozen=True)
class ThresholdUnit:
    """Per-channel threshold evaluator for fused BatchNorm + n-bit activation.

    Stores, per channel, the paper's two parameters: ``tau`` (the input at
    which the normalized output crosses zero) and ``step = d / (γ·i)``
    (spacing between consecutive pre-activation endpoints).  ``slope_sign``
    records the sign of ``γ·i``: with a negative slope the BatchNorm output
    *decreases* in ``a`` and the comparison direction flips; with a zero
    slope the output is the constant ``B_k`` and so is the level.
    """

    tau: np.ndarray
    step: np.ndarray
    slope_sign: np.ndarray
    const_level: np.ndarray
    bits: int

    @property
    def channels(self) -> int:
        return int(np.shape(self.tau)[0])

    @property
    def levels(self) -> int:
        return 1 << self.bits

    def endpoints(self) -> np.ndarray:
        """Pre-activation endpoints ``t_k(α) = τ_k + α·step_k``; shape (channels, 2**n − 1).

        For channels with zero slope the endpoints are meaningless (NaN).
        """
        alphas = np.arange(1, self.levels, dtype=np.float64)
        return self.tau[:, None] + alphas[None, :] * self.step[:, None]

    def apply(self, a: np.ndarray, channel_axis: int = -1) -> np.ndarray:
        """Evaluate activation levels for pre-BatchNorm values ``a``.

        Equivalent to a per-channel binary search over the sorted endpoints:
        the returned level is the number of endpoints at or below ``a``
        (slope > 0) or at or above ``a`` (slope < 0), i.e. exactly which of
        the ``2**n`` ranges ``BatchNorm(a)`` falls into.
        """
        a = np.asarray(a, dtype=np.float64)
        a_moved = np.moveaxis(a, channel_axis, -1)
        if a_moved.shape[-1] != self.channels:
            raise ValueError(
                f"channel axis has size {a_moved.shape[-1]}, expected {self.channels}"
            )
        ends = self.endpoints()  # (C, L-1)
        # level = #{alpha : BN(a) >= alpha * d}.  BN(a) >= alpha*d  <=>
        # a >= t(alpha) for positive slope, a <= t(alpha) for negative slope.
        pos = (a_moved[..., None] >= ends).sum(axis=-1, dtype=np.int64)
        neg = (a_moved[..., None] <= ends).sum(axis=-1, dtype=np.int64)
        out = np.where(self.slope_sign > 0, pos, neg)
        out = np.where(self.slope_sign == 0, self.const_level, out)
        return np.moveaxis(out, -1, channel_axis)

    def apply_binary_search(self, a: np.ndarray, channel_axis: int = -1) -> np.ndarray:
        """Literal binary-search evaluation (the hardware comparator tree).

        Functionally identical to :meth:`apply`; kept separate so tests can
        pin the hardware-faithful algorithm against the vectorised one.
        """
        a = np.asarray(a, dtype=np.float64)
        a_moved = np.moveaxis(a, channel_axis, -1)
        ends = self.endpoints()
        out = np.empty(a_moved.shape, dtype=np.int64)
        flat = a_moved.reshape(-1, self.channels)
        res = np.empty(flat.shape, dtype=np.int64)
        for c in range(self.channels):
            sign = self.slope_sign[c]
            if sign == 0:
                res[:, c] = self.const_level[c]
                continue
            e = ends[c]
            if sign > 0:
                res[:, c] = np.searchsorted(e, flat[:, c], side="right")
            else:
                # Endpoints are decreasing in alpha; search the reversed array
                # for how many endpoints are >= a.
                rev = e[::-1]
                res[:, c] = len(e) - np.searchsorted(rev, flat[:, c], side="left")
        out = res.reshape(a_moved.shape)
        return np.moveaxis(out, -1, channel_axis)

    def cache_words(self) -> np.ndarray:
        """The normalization cache contents: one 64-bit word per channel.

        The paper stores the two per-channel parameters as 32-bit values
        packed into a single 64-bit cache word; we mirror that layout with
        two float32 halves.
        """
        lo = np.asarray(self.tau, dtype=np.float32).view(np.uint32).astype(np.uint64)
        hi = np.asarray(self.step, dtype=np.float32).view(np.uint32).astype(np.uint64)
        return (hi << np.uint64(32)) | lo

    @classmethod
    def from_cache_words(cls, words: np.ndarray, bits: int) -> "ThresholdUnit":
        """Rebuild a (float32-rounded) unit from packed normalization-cache words."""
        words = np.asarray(words, dtype=np.uint64)
        tau = (words & np.uint64(0xFFFFFFFF)).astype(np.uint32).view(np.float32).astype(np.float64)
        step = (words >> np.uint64(32)).astype(np.uint32).view(np.float32).astype(np.float64)
        sign = np.sign(step).astype(np.int64)
        return cls(
            tau=tau,
            step=step,
            slope_sign=sign,
            const_level=np.zeros_like(sign),
            bits=bits,
        )


def fold_batchnorm(params: BatchNormParams, quantizer: UniformQuantizer) -> ThresholdUnit:
    """Fold BatchNorm parameters + an n-bit uniform activation into thresholds.

    Implements the paper's derivation: ``τ_k = µ_k − B_k / (γ_k · i_k)`` and
    ``step_k = d / (γ_k · i_k)``.  The paper anchors the activation at
    ``lo = 0`` (ranges ``[α·d, (α+1)·d)``); an arbitrary anchor shifts every
    BatchNorm-domain endpoint by ``lo``, i.e. shifts ``τ`` by
    ``lo / (γ_k · i_k)`` in the pre-activation domain.
    """
    slope = params.slope
    beta = np.asarray(params.beta, dtype=np.float64)
    mu = np.asarray(params.mu, dtype=np.float64)
    d = quantizer.d
    lo = quantizer.lo

    sign = np.sign(slope).astype(np.int64)
    safe = np.where(slope == 0, 1.0, slope)
    tau = np.where(sign == 0, 0.0, mu - (beta - lo) / safe)
    step = np.where(sign == 0, 0.0, d / safe)
    # Zero slope: BatchNorm output is the constant B_k; its level is fixed.
    const_level = np.clip(np.floor((beta - lo) / d), 0, quantizer.levels - 1).astype(np.int64)
    return ThresholdUnit(
        tau=tau, step=step, slope_sign=sign, const_level=const_level, bits=quantizer.bits
    )


def fold_batchnorm_sign(params: BatchNormParams) -> ThresholdUnit:
    """Fold BatchNorm + a 1-bit *sign* activation (the FINN/BNN case).

    The output level is ``1`` iff ``BatchNorm(a) >= 0``, i.e. a single
    comparison against ``τ_k`` whose direction follows the sign of the
    slope.  Represented as a 1-bit :class:`ThresholdUnit` whose single
    endpoint sits exactly at ``τ_k`` (``tau_eff = τ − step``, ``step``
    carries the slope sign).
    """
    slope = params.slope
    beta = np.asarray(params.beta, dtype=np.float64)
    mu = np.asarray(params.mu, dtype=np.float64)

    sign = np.sign(slope).astype(np.int64)
    safe = np.where(slope == 0, 1.0, slope)
    tau_true = mu - beta / safe
    step = np.where(sign == 0, 0.0, 1.0 / safe)
    tau = np.where(sign == 0, 0.0, tau_true - step)
    const_level = (beta >= 0).astype(np.int64)
    return ThresholdUnit(tau=tau, step=step, slope_sign=sign, const_level=const_level, bits=1)
