"""Cross-backend verification: one call to check all execution routes agree.

The repository's central correctness contract is a chain of bit-exact
equivalences (float QAT model ≡ integer IR ≡ packed-popcount arithmetic ≡
cycle-accurate streaming).  :func:`verify_backends` exercises the last
three on a given graph and input batch and returns a structured report;
tests, examples and users of custom graphs can call it instead of wiring
the comparisons by hand.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .graph import LayerGraph
from .inference import run_graph

__all__ = ["BackendReport", "verify_backends"]


@dataclass
class BackendReport:
    """Outcome of a cross-backend agreement check."""

    functional_vs_bitops: bool
    functional_vs_streaming: bool
    streaming_cycles: int
    streaming_latency_cycles: int
    output_shape: tuple[int, ...]

    @property
    def all_agree(self) -> bool:
        return self.functional_vs_bitops and self.functional_vs_streaming

    def summary(self) -> str:
        status = "OK" if self.all_agree else "MISMATCH"
        return (
            f"[{status}] functional==bitops: {self.functional_vs_bitops}; "
            f"functional==streaming: {self.functional_vs_streaming}; "
            f"streaming latency {self.streaming_latency_cycles:,} cycles"
        )


def verify_backends(
    graph: LayerGraph,
    levels: np.ndarray,
    check_bitops: bool = True,
    max_cycles: int = 50_000_000,
) -> BackendReport:
    """Run ``levels`` through every backend and compare outputs element-wise.

    Parameters
    ----------
    graph:
        An exported (or directly built) LayerGraph.
    levels:
        Integer input levels, shape ``(N, H, W, C)`` or ``(H, W, C)``.
    check_bitops:
        Also route convolutions through the packed XNOR/AND-popcount path
        (slower; skip for very large graphs).
    """
    from ..dataflow.manager import simulate  # local import: avoid cycle

    reference = run_graph(graph, levels)
    bit_ok = True
    if check_bitops:
        packed = run_graph(graph, levels, use_bitops=True)
        bit_ok = bool((packed.output == reference.output).all())

    streaming = simulate(graph, levels, max_cycles=max_cycles)
    ref_shaped = reference.output.reshape(streaming.output.shape)
    stream_ok = bool((streaming.output == ref_shaped).all())

    return BackendReport(
        functional_vs_bitops=bit_ok,
        functional_vs_streaming=stream_ok,
        streaming_cycles=streaming.cycles,
        streaming_latency_cycles=streaming.latency_cycles,
        output_shape=tuple(reference.output.shape),
    )
