"""A small reverse-mode autograd engine over NumPy arrays.

This is the training substrate for quantization-aware training (QAT): the
paper's networks are trained with full-precision shadow weights whose
forward pass uses the Sign function (1-bit weights) and an n-bit uniform
activation, with **straight-through estimators** (STE) carrying gradients
through the non-differentiable quantizers (Hubara et al.).

The engine is deliberately minimal — tensors, a handful of fused ops with
hand-written backward passes, and topological-order backprop — but fully
vectorised: convolution backward is K² shifted scatter-adds, never a Python
loop over pixels.
"""

from __future__ import annotations

import numpy as np

from ..quantization.quantizers import UniformQuantizer
from . import functional as F

__all__ = [
    "Tensor",
    "add",
    "matmul",
    "conv2d",
    "maxpool2d",
    "global_avgpool",
    "batchnorm",
    "sign_ste",
    "uniform_quant_ste",
    "relu",
    "reshape",
    "cross_entropy",
]


class Tensor:
    """A NumPy array with an optional gradient and backward closure."""

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_prev", "name")

    def __init__(
        self,
        data: np.ndarray,
        requires_grad: bool = False,
        _prev: tuple["Tensor", ...] = (),
        name: str = "",
    ) -> None:
        self.data = np.asarray(data, dtype=np.float64)
        self.grad: np.ndarray | None = None
        self.requires_grad = requires_grad
        self._backward = lambda: None
        self._prev = _prev
        self.name = name

    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Tensor(shape={self.data.shape}, requires_grad={self.requires_grad}, name={self.name!r})"

    def accumulate_grad(self, g: np.ndarray) -> None:
        """Accumulate a gradient contribution, un-broadcasting as needed."""
        g = _unbroadcast(np.asarray(g, dtype=np.float64), self.data.shape)
        if self.grad is None:
            self.grad = g.copy()
        else:
            self.grad += g

    def zero_grad(self) -> None:
        self.grad = None

    def backward(self, grad: np.ndarray | None = None) -> None:
        """Run reverse-mode autodiff from this tensor."""
        if grad is None:
            if self.data.size != 1:
                raise ValueError("backward() without an explicit gradient requires a scalar")
            grad = np.ones_like(self.data)
        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for p in node._prev:
                if id(p) not in visited:
                    stack.append((p, False))
        self.accumulate_grad(grad)
        for node in reversed(topo):
            node._backward()

    # Operator sugar -------------------------------------------------
    def __add__(self, other: "Tensor") -> "Tensor":
        return add(self, other)

    def __mul__(self, scalar: float) -> "Tensor":
        return scale(self, scalar)

    __rmul__ = __mul__


def _unbroadcast(g: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Sum a gradient down to ``shape`` (inverse of NumPy broadcasting)."""
    while g.ndim > len(shape):
        g = g.sum(axis=0)
    for axis, size in enumerate(shape):
        if size == 1 and g.shape[axis] != 1:
            g = g.sum(axis=axis, keepdims=True)
    return g


def _needs_grad(*ts: Tensor) -> bool:
    return any(t.requires_grad for t in ts)


def add(a: Tensor, b: Tensor) -> Tensor:
    out = Tensor(a.data + b.data, _needs_grad(a, b), (a, b))

    def backward() -> None:
        if a.requires_grad:
            a.accumulate_grad(out.grad)
        if b.requires_grad:
            b.accumulate_grad(out.grad)

    out._backward = backward
    return out


def scale(a: Tensor, s: float) -> Tensor:
    out = Tensor(a.data * s, a.requires_grad, (a,))

    def backward() -> None:
        if a.requires_grad:
            a.accumulate_grad(out.grad * s)

    out._backward = backward
    return out


def matmul(x: Tensor, w: Tensor) -> Tensor:
    out = Tensor(x.data @ w.data, _needs_grad(x, w), (x, w))

    def backward() -> None:
        if x.requires_grad:
            x.accumulate_grad(out.grad @ w.data.T)
        if w.requires_grad:
            xd = x.data.reshape(-1, x.data.shape[-1])
            gd = out.grad.reshape(-1, out.grad.shape[-1])
            w.accumulate_grad(xd.T @ gd)

    out._backward = backward
    return out


def _col2im(
    gcols: np.ndarray, x_shape: tuple[int, ...], k: int, stride: int, pad: int
) -> np.ndarray:
    """Scatter-add patch gradients back to the (padded-then-cropped) input.

    ``gcols`` has shape ``(N, Ho, Wo, K*K*C)`` in (row, col, channel) patch
    order.  Runs K² vectorised adds.
    """
    n, h, w_, c = x_shape
    hp, wp = h + 2 * pad, w_ + 2 * pad
    gx = np.zeros((n, hp, wp, c), dtype=np.float64)
    _, ho, wo, _ = gcols.shape
    g6 = gcols.reshape(n, ho, wo, k, k, c)
    for di in range(k):
        for dj in range(k):
            gx[:, di : di + ho * stride : stride, dj : dj + wo * stride : stride, :] += g6[
                :, :, :, di, dj, :
            ]
    if pad:
        gx = gx[:, pad:-pad, pad:-pad, :]
    return gx


def conv2d(
    x: Tensor, w: Tensor, stride: int = 1, pad: int = 0, pad_value: float = 0.0
) -> Tensor:
    """Convolution of NHWC ``x`` with (K, K, I, O) filters ``w``."""
    k, _, _, co = w.data.shape
    xp = F.pad2d(x.data, pad, pad_value)
    cols = F.im2col(xp, k, stride)
    wmat = w.data.reshape(-1, co)
    out_data = cols @ wmat
    out = Tensor(out_data, _needs_grad(x, w), (x, w))

    def backward() -> None:
        g = out.grad
        if w.requires_grad:
            gw = cols.reshape(-1, cols.shape[-1]).T @ g.reshape(-1, co)
            w.accumulate_grad(gw.reshape(w.data.shape))
        if x.requires_grad:
            gcols = g @ wmat.T
            x.accumulate_grad(_col2im(gcols, x.data.shape, k, stride, pad))

    out._backward = backward
    return out


def maxpool2d(
    x: Tensor, k: int, stride: int | None = None, pad: int = 0, pad_value: float = 0.0
) -> Tensor:
    stride = k if stride is None else stride
    xb = F.pad2d(x.data, pad, pad_value) if pad else x.data
    from numpy.lib.stride_tricks import sliding_window_view

    windows = sliding_window_view(xb, (k, k), axis=(1, 2))[:, ::stride, ::stride]
    n, ho, wo, c = windows.shape[:4]
    flat = windows.reshape(n, ho, wo, c, k * k)
    arg = flat.argmax(axis=-1)
    out = Tensor(np.take_along_axis(flat, arg[..., None], axis=-1)[..., 0], x.requires_grad, (x,))

    def backward() -> None:
        if not x.requires_grad:
            return
        gx = np.zeros_like(xb)
        di, dj = np.divmod(arg, k)
        ii, jj, cc = np.meshgrid(np.arange(ho), np.arange(wo), np.arange(c), indexing="ij")
        for b in range(n):
            np.add.at(
                gx[b],
                (ii * stride + di[b], jj * stride + dj[b], cc),
                out.grad[b],
            )
        if pad:
            gx = gx[:, pad:-pad, pad:-pad, :]
        x.accumulate_grad(gx)

    out._backward = backward
    return out


def global_avgpool(x: Tensor) -> Tensor:
    n, h, w_, c = x.data.shape
    out = Tensor(x.data.mean(axis=(1, 2)), x.requires_grad, (x,))

    def backward() -> None:
        if x.requires_grad:
            g = out.grad[:, None, None, :] / (h * w_)
            x.accumulate_grad(np.broadcast_to(g, x.data.shape))

    out._backward = backward
    return out


def batchnorm(
    x: Tensor,
    gamma: Tensor,
    beta: Tensor,
    running_mean: np.ndarray,
    running_var: np.ndarray,
    training: bool,
    momentum: float = 0.1,
    eps: float = 1e-5,
) -> Tensor:
    """Batch normalization over all axes but the last (channel) axis.

    In training mode batch statistics are used and the running buffers are
    updated in place; in eval mode the running buffers are used.
    """
    axes = tuple(range(x.data.ndim - 1))
    if training:
        mean = x.data.mean(axis=axes)
        var = x.data.var(axis=axes)
        m = x.data.size // x.data.shape[-1]
        running_mean *= 1 - momentum
        running_mean += momentum * mean
        running_var *= 1 - momentum
        # unbiased variance for the running buffer, as torch does
        running_var += momentum * var * (m / max(m - 1, 1))
    else:
        mean, var = running_mean, running_var
    inv_std = 1.0 / np.sqrt(var + eps)
    xhat = (x.data - mean) * inv_std
    out = Tensor(gamma.data * xhat + beta.data, _needs_grad(x, gamma, beta), (x, gamma, beta))

    def backward() -> None:
        g = out.grad
        if gamma.requires_grad:
            gamma.accumulate_grad((g * xhat).sum(axis=axes))
        if beta.requires_grad:
            beta.accumulate_grad(g.sum(axis=axes))
        if x.requires_grad:
            if training:
                m = x.data.size // x.data.shape[-1]
                gxhat = g * gamma.data
                gx = (
                    gxhat
                    - gxhat.mean(axis=axes)
                    - xhat * (gxhat * xhat).mean(axis=axes)
                ) * inv_std
                x.accumulate_grad(gx)
            else:
                x.accumulate_grad(g * gamma.data * inv_std)

    out._backward = backward
    return out


def sign_ste(w: Tensor, clip: float = 1.0) -> Tensor:
    """Sign with straight-through gradient, clipped where |w| > clip.

    This is the BinaryConnect/Hubara estimator: the forward pass binarizes,
    the backward pass is the identity inside the clipping region and zero
    outside (so saturated weights stop receiving gradient).
    """
    out = Tensor(np.where(w.data >= 0, 1.0, -1.0), w.requires_grad, (w,))

    def backward() -> None:
        if w.requires_grad:
            w.accumulate_grad(out.grad * (np.abs(w.data) <= clip))

    out._backward = backward
    return out


def uniform_quant_ste(x: Tensor, quantizer: UniformQuantizer) -> Tensor:
    """n-bit uniform quantization with a clipped straight-through gradient.

    Forward: quantize-dequantize through ``quantizer``.  Backward: identity
    for inputs inside the representable range ``[lo, hi)``, zero outside —
    the standard clipped STE used by DoReFa/QNN training.
    """
    out = Tensor(quantizer.quantize(x.data), x.requires_grad, (x,))

    def backward() -> None:
        if x.requires_grad:
            inside = (x.data >= quantizer.lo) & (x.data < quantizer.hi)
            x.accumulate_grad(out.grad * inside)

    out._backward = backward
    return out


def relu(x: Tensor) -> Tensor:
    out = Tensor(np.maximum(x.data, 0.0), x.requires_grad, (x,))

    def backward() -> None:
        if x.requires_grad:
            x.accumulate_grad(out.grad * (x.data > 0))

    out._backward = backward
    return out


def reshape(x: Tensor, shape: tuple[int, ...]) -> Tensor:
    out = Tensor(x.data.reshape(shape), x.requires_grad, (x,))

    def backward() -> None:
        if x.requires_grad:
            x.accumulate_grad(out.grad.reshape(x.data.shape))

    out._backward = backward
    return out


def cross_entropy(logits: Tensor, labels: np.ndarray) -> Tensor:
    """Mean cross-entropy of (N, C) logits against integer labels."""
    labels = np.asarray(labels)
    n = logits.data.shape[0]
    logp = F.log_softmax(logits.data, axis=-1)
    loss = -logp[np.arange(n), labels].mean()
    out = Tensor(loss, logits.requires_grad, (logits,))

    def backward() -> None:
        if logits.requires_grad:
            p = np.exp(logp)
            p[np.arange(n), labels] -= 1.0
            logits.accumulate_grad(out.grad * p / n)

    out._backward = backward
    return out
