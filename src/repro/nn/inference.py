"""Functional (vectorised) execution of the integer inference IR.

This is the reference backend: it walks the :class:`~repro.nn.graph.LayerGraph`
in topological order and evaluates each node with dense NumPy integer math.
The cycle-driven streaming backend (:mod:`repro.dataflow`) is verified
bit-exact against this executor, and this executor in turn is verified
bit-exact (modulo the documented affine) against the floating-point training
model.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .graph import InputNode, LayerGraph

__all__ = ["run_graph", "classify", "InferenceResult"]


@dataclass
class InferenceResult:
    """Outputs of a graph execution."""

    output: np.ndarray
    activations: dict[str, np.ndarray]

    def logits(self, graph: LayerGraph) -> np.ndarray:
        """Float logits recovered through the exporter's output affine."""
        if graph.output_affine is None:
            raise ValueError("graph has no output affine; was it built by the exporter?")
        out = self.output
        if out.ndim >= 3 and out.shape[-3] == 1 and out.shape[-2] == 1:
            out = out[..., 0, 0, :]
        return graph.output_affine.apply(out)


def run_graph(
    graph: LayerGraph,
    x: np.ndarray,
    keep_activations: bool = False,
    use_bitops: bool = False,
) -> InferenceResult:
    """Execute ``graph`` on integer level input ``x`` (HWC or NHWC).

    Parameters
    ----------
    graph:
        The IR to execute.
    x:
        Input levels in ``[0, 2**bits)`` with shape matching the graph's
        input spec (``(H, W, C)`` or ``(N, H, W, C)``).
    keep_activations:
        Retain every node's output (for debugging / cross-backend checks).
    use_bitops:
        Evaluate convolutions through the packed XNOR/AND-popcount path
        instead of dense integer matmul.  Identical results, different
        arithmetic route — the hardware-faithful one.
    """
    graph.validate()
    spec = graph.input_spec
    x = np.asarray(x)
    expected = (spec.height, spec.width, spec.channels)
    if x.shape[-3:] != expected:
        raise ValueError(f"input shape {x.shape} does not match graph input {expected}")
    if x.min(initial=0) < 0 or x.max(initial=0) >= (1 << spec.bits):
        raise ValueError(f"input levels out of range for {spec.bits}-bit input")

    values: dict[str, np.ndarray] = {}
    for name in graph.topological():
        node = graph.nodes[name]
        if isinstance(node, InputNode):
            values[name] = x.astype(np.int64)
            continue
        inputs = [values[p] for p in graph.parents(name)]
        if use_bitops and hasattr(node, "accumulate_bitpacked") and node.threshold is not None:
            in_spec = graph.specs[graph.parents(name)[0]]
            if in_spec.kind == "levels":
                acc = node.accumulate_bitpacked(inputs[0], in_spec.bits)
                values[name] = node.threshold.apply(acc, channel_axis=-1)
                continue
        if use_bitops and hasattr(node, "accumulate_bitpacked") and node.threshold is None:
            in_spec = graph.specs[graph.parents(name)[0]]
            if in_spec.kind == "levels":
                values[name] = node.accumulate_bitpacked(inputs[0], in_spec.bits)
                continue
        values[name] = node.compute(inputs)

    output = values[graph.output_name]
    acts = values if keep_activations else {}
    return InferenceResult(output=output, activations=acts)


def classify(graph: LayerGraph, x: np.ndarray, use_bitops: bool = False) -> np.ndarray:
    """Top-1 class prediction for a batch of inputs."""
    result = run_graph(graph, x, use_bitops=use_bitops)
    logits = result.logits(graph)
    return np.argmax(logits, axis=-1)
