"""Export trained QAT models into the integer inference IR.

The exporter performs the paper's deployment step: the CPU holds trained
floating-point parameters; before inference they are folded into the forms
the DFE actually stores — 1-bit packed weights and the two-parameter
threshold units of §III-B3 — and the network becomes a chain of integer
kernels.

Correctness contract.  Every IR edge carries integers related to the
floating-point training value by an affine map ``float = scale * int +
offset[c]`` that the exporter tracks symbolically:

* an n-bit activation output has ``scale = d`` and a scalar offset (the
  dequantized value of level 0);
* a convolution multiplies integers by ±1 weights, so ``scale`` is
  preserved and the new per-output-channel offset is ``sum_w w * offset``;
* BatchNorm + activation consume the affine: the folded threshold unit is
  built over the *integer accumulator* domain, so the streamed levels are
  bit-exact with the float model evaluated in eval mode;
* the global average pool is exported as an integer **sum**, dividing
  ``scale`` by the pixel count instead;
* the final affine is stored on the graph (``output_affine``) so logits are
  recovered exactly on the host side — just as the paper keeps softmax and
  class readout on the CPU.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..quantization.quantizers import UniformQuantizer
from ..quantization.thresholds import BatchNormParams, ThresholdUnit, fold_batchnorm, fold_batchnorm_sign
from .graph import AddNode, Affine, ConvNode, GlobalAvgSumNode, InputNode, LayerGraph, MaxPoolNode, ThresholdNode
from .modules import (
    BatchNorm2d,
    Flatten,
    GlobalAvgPool,
    MaxPool2d,
    Module,
    QActivation,
    QConv2d,
    QLinear,
    QResidualBlock,
    Sequential,
    SignActivation,
)

__all__ = ["export_model", "input_to_levels", "ExportError"]


class ExportError(ValueError):
    """Raised when a module sequence cannot be lowered to the IR."""


def input_to_levels(images: np.ndarray, quantizer: UniformQuantizer) -> np.ndarray:
    """Quantize host-side float images into the input level stream."""
    return quantizer.quantize_level(images)


@dataclass
class _State:
    """Walker state: last emitted node, its affine, and layout bookkeeping."""

    node_name: str
    affine: Affine
    height: int
    width: int
    channels: int
    flattened: bool = False


def _sign_weights(w: np.ndarray) -> np.ndarray:
    return np.where(np.asarray(w) >= 0, 1, -1).astype(np.int8)


def _conv_offset(signs: np.ndarray, offset: np.ndarray | float, in_channels: int) -> np.ndarray:
    """Per-output-channel offset after a ±1-weight convolution."""
    off = np.asarray(offset, dtype=np.float64)
    if off.ndim == 0:
        off = np.full(in_channels, float(off))
    # signs: (K, K, I, O); sum over taps weighted by the input-channel offset
    return np.einsum("abio,i->o", signs.astype(np.float64), off)


def _acc_domain_params(bn: BatchNorm2d, affine: Affine, channels: int) -> BatchNormParams:
    """Re-express BatchNorm statistics over the integer accumulator domain.

    With ``float = scale * acc + off[c]``, BatchNorm(float) becomes an
    affine in ``acc`` with slope ``γ·i·scale`` and centre ``(µ − off)/scale``.
    """
    off = affine.offset_vector(channels)
    inv_std = 1.0 / np.sqrt(bn.running_var + bn.eps)
    return BatchNormParams(
        gamma=bn.gamma.data.copy(),
        mu=(bn.running_mean - off) / affine.scale,
        inv_std=inv_std * affine.scale,
        beta=bn.beta.data.copy(),
    )


def _activation_affine(act: Module) -> Affine:
    if isinstance(act, QActivation):
        q = act.quantizer
        offset = q.lo + (0.5 if q.midpoint else 0.0) * q.d
        return Affine(scale=q.d, offset=offset)
    if isinstance(act, SignActivation):
        # level in {0, 1} maps to float ±1
        return Affine(scale=2.0, offset=-1.0)
    raise ExportError(f"unsupported activation module {type(act).__name__}")


def _fold(bn: BatchNorm2d, act: Module, affine: Affine, channels: int) -> ThresholdUnit:
    params = _acc_domain_params(bn, affine, channels)
    if isinstance(act, QActivation):
        return fold_batchnorm(params, act.quantizer)
    if isinstance(act, SignActivation):
        return fold_batchnorm_sign(params)
    raise ExportError(f"unsupported activation module {type(act).__name__}")


def _check_pad(conv: QConv2d, affine: Affine) -> None:
    """The hardware pads with level 0; training must pad with its float value."""
    if conv.pad == 0:
        return
    off = np.asarray(affine.offset, dtype=np.float64)
    if off.ndim != 0:
        raise ExportError(
            f"{conv.name}: padding after a per-channel-offset edge is not representable"
        )
    if not np.isclose(conv.pad_value, float(off)):
        raise ExportError(
            f"{conv.name}: pad_value {conv.pad_value} does not equal the level-0 "
            f"float value {float(off)}; the integer path would diverge"
        )


class _Exporter:
    def __init__(self, graph: LayerGraph) -> None:
        self.graph = graph
        self._counter = 0

    def _name(self, base: str) -> str:
        self._counter += 1
        return f"{base}_{self._counter}"

    # -- individual lowerings -----------------------------------------
    def conv(self, conv: QConv2d, st: _State, bn: BatchNorm2d | None, act: Module | None) -> _State:
        if not conv.binary:
            raise ExportError(f"{conv.name}: only binary-weight convolutions are exportable")
        _check_pad(conv, st.affine)
        signs = _sign_weights(conv.weight.data)
        acc_offset = _conv_offset(signs, st.affine.offset, conv.in_channels)
        acc_affine = Affine(scale=st.affine.scale, offset=acc_offset)
        threshold = None
        out_affine = acc_affine
        if bn is not None:
            if act is None:
                raise ExportError(f"{conv.name}: BatchNorm must be followed by an activation")
            threshold = _fold(bn, act, acc_affine, conv.out_channels)
            out_affine = _activation_affine(act)
        node = ConvNode(
            self._name(conv.name or "conv"),
            signs,
            stride=conv.stride,
            pad=conv.pad,
            pad_level=0,
            threshold=threshold,
        )
        self.graph.add(node, [st.node_name])
        spec = self.graph.specs[node.name]
        return _State(node.name, out_affine, spec.height, spec.width, spec.channels)

    def linear(self, lin: QLinear, st: _State, bn: BatchNorm2d | None, act: Module | None) -> _State:
        if not lin.binary:
            raise ExportError(f"{lin.name}: only binary-weight FC layers are exportable")
        k = st.height
        if st.height != st.width:
            raise ExportError(f"{lin.name}: FC-as-convolution requires a square feature map")
        expected = st.height * st.width * st.channels
        if lin.in_features != expected:
            raise ExportError(
                f"{lin.name}: in_features {lin.in_features} != flattened input {expected}"
            )
        signs = _sign_weights(
            lin.weight.data.reshape(st.height, st.width, st.channels, lin.out_features)
        )
        acc_offset = _conv_offset(signs, st.affine.offset, st.channels)
        acc_affine = Affine(scale=st.affine.scale, offset=acc_offset)
        threshold = None
        out_affine = acc_affine
        if bn is not None:
            if act is None:
                raise ExportError(f"{lin.name}: BatchNorm must be followed by an activation")
            threshold = _fold(bn, act, acc_affine, lin.out_features)
            out_affine = _activation_affine(act)
        node = ConvNode(self._name(lin.name or "fc"), signs, stride=1, pad=0, threshold=threshold)
        self.graph.add(node, [st.node_name])
        spec = self.graph.specs[node.name]
        return _State(node.name, out_affine, spec.height, spec.width, spec.channels)

    def residual_block(self, block: QResidualBlock, st: _State) -> _State:
        conv1 = block.conv1
        _check_pad(conv1, st.affine)
        signs1 = _sign_weights(conv1.weight.data)
        n1 = ConvNode(
            self._name(f"{block.name}.conv1"), signs1, stride=conv1.stride, pad=conv1.pad
        )
        self.graph.add(n1, [st.node_name])
        off1 = _conv_offset(signs1, st.affine.offset, conv1.in_channels)

        if block.downsample is not None:
            proj = block.downsample
            signs_p = _sign_weights(proj.weight.data)
            np_ = ConvNode(
                self._name(f"{block.name}.proj"), signs_p, stride=proj.stride, pad=proj.pad
            )
            self.graph.add(np_, [st.node_name])
            identity_name = np_.name
            off_id = _conv_offset(signs_p, st.affine.offset, proj.in_channels)
        else:
            identity_name = st.node_name
            off_id = st.affine.offset_vector(st.channels) if np.ndim(st.affine.offset) else np.full(
                conv1.out_channels, float(st.affine.offset)
            )
            off_id = np.broadcast_to(np.asarray(off_id, dtype=np.float64), (conv1.out_channels,))

        add1 = AddNode(self._name(f"{block.name}.add1"))
        self.graph.add(add1, [n1.name, identity_name])
        sum_affine = Affine(scale=st.affine.scale, offset=off1 + off_id)

        th1 = ThresholdNode(
            self._name(f"{block.name}.bnact1"),
            _fold(block.bn1, block.act1, sum_affine, block.conv1.out_channels),
        )
        self.graph.add(th1, [add1.name])
        act1_affine = _activation_affine(block.act1)

        conv2 = block.conv2
        if not np.isclose(act1_affine.scale, st.affine.scale):
            raise ExportError(
                f"{block.name}: skip-path scale {st.affine.scale} differs from "
                f"activation scale {act1_affine.scale}; residual add would be inexact"
            )
        _check_pad(conv2, act1_affine)
        signs2 = _sign_weights(conv2.weight.data)
        n2 = ConvNode(self._name(f"{block.name}.conv2"), signs2, stride=conv2.stride, pad=conv2.pad)
        self.graph.add(n2, [th1.name])
        off2 = _conv_offset(signs2, act1_affine.offset, conv2.in_channels)

        add2 = AddNode(self._name(f"{block.name}.add2"))
        self.graph.add(add2, [n2.name, add1.name])
        sum2_affine = Affine(scale=act1_affine.scale, offset=off2 + sum_affine.offset_vector(conv2.out_channels))

        th2 = ThresholdNode(
            self._name(f"{block.name}.bnact2"),
            _fold(block.bn2, block.act2, sum2_affine, conv2.out_channels),
        )
        self.graph.add(th2, [add2.name])
        spec = self.graph.specs[th2.name]
        return _State(
            th2.name, _activation_affine(block.act2), spec.height, spec.width, spec.channels
        )


def export_model(
    model: Sequential,
    input_shape: tuple[int, int, int],
    name: str = "network",
) -> LayerGraph:
    """Lower a trained :class:`Sequential` QAT model to a :class:`LayerGraph`.

    The model must begin with an input :class:`QActivation` (the host-side
    quantizer that produces the pixel level stream) and otherwise consist of
    the supported module vocabulary: ``QConv2d``/``QLinear`` optionally
    followed by ``BatchNorm2d`` + activation, ``MaxPool2d``,
    ``GlobalAvgPool``, ``Flatten`` and ``QResidualBlock``.

    Parameters
    ----------
    model:
        The trained model (will be switched to eval mode).
    input_shape:
        ``(H, W, C)`` of a single input image.
    """
    model.eval()
    layers = list(model)
    if not layers or not isinstance(layers[0], QActivation):
        raise ExportError("model must start with a QActivation input quantizer")
    in_q: QActivation = layers[0]
    h, w, c = input_shape

    graph = LayerGraph(name=name)
    inp = InputNode("input", h, w, c, in_q.bits)
    graph.add(inp)
    state = _State("input", _activation_affine(in_q), h, w, c)
    exp = _Exporter(graph)

    i = 1
    while i < len(layers):
        layer = layers[i]
        if isinstance(layer, (QConv2d, QLinear)):
            bn: BatchNorm2d | None = None
            act: Module | None = None
            j = i + 1
            if j < len(layers) and isinstance(layers[j], BatchNorm2d):
                bn = layers[j]
                j += 1
                if j < len(layers) and isinstance(layers[j], (QActivation, SignActivation)):
                    act = layers[j]
                    j += 1
                else:
                    raise ExportError(
                        f"BatchNorm after {layer.name} must be followed by an activation"
                    )
            if isinstance(layer, QConv2d):
                if state.flattened:
                    raise ExportError("convolution after Flatten is not supported")
                state = exp.conv(layer, state, bn, act)
            else:
                state = exp.linear(layer, state, bn, act)
                state.flattened = False
            i = j
            continue
        if isinstance(layer, QResidualBlock):
            state = exp.residual_block(layer, state)
            i += 1
            continue
        if isinstance(layer, MaxPool2d):
            if layer.pad:
                off = np.asarray(state.affine.offset, dtype=np.float64)
                if off.ndim != 0:
                    raise ExportError("padded max pooling after a per-channel-offset edge")
                if not np.isclose(layer.pad_value, float(off)):
                    raise ExportError(
                        f"max pool pad_value {layer.pad_value} != level-0 value {float(off)}"
                    )
            node = MaxPoolNode(exp._name("maxpool"), layer.kernel_size, layer.stride, pad=layer.pad)
            graph.add(node, [state.node_name])
            spec = graph.specs[node.name]
            state = _State(node.name, state.affine, spec.height, spec.width, spec.channels, state.flattened)
            i += 1
            continue
        if isinstance(layer, GlobalAvgPool):
            node = GlobalAvgSumNode(exp._name("avgpool"))
            graph.add(node, [state.node_name])
            pixels = state.height * state.width
            affine = Affine(scale=state.affine.scale / pixels, offset=state.affine.offset)
            state = _State(node.name, affine, 1, 1, state.channels)
            i += 1
            continue
        if isinstance(layer, Flatten):
            state.flattened = True
            i += 1
            continue
        raise ExportError(f"unsupported module {type(layer).__name__} at position {i}")

    graph.output_affine = Affine(
        scale=state.affine.scale,
        offset=state.affine.offset_vector(state.channels),
    )
    graph.validate()
    return graph
