"""NN substrate: reference ops, QAT training path, and the integer inference IR."""

from . import autograd, functional
from .autograd import Tensor
from .export import ExportError, export_model, input_to_levels
from .graph import (
    AddNode,
    Affine,
    ConvNode,
    GlobalAvgSumNode,
    InputNode,
    LayerGraph,
    MaxPoolNode,
    Node,
    TensorSpec,
    ThresholdNode,
)
from .inference import InferenceResult, classify, run_graph
from .modules import (
    BatchNorm2d,
    Flatten,
    GlobalAvgPool,
    MaxPool2d,
    Module,
    Parameter,
    QActivation,
    QConv2d,
    QLinear,
    QResidualBlock,
    Sequential,
    SignActivation,
)
from .training import SGD, Adam, TrainResult, evaluate, train
from .verify import BackendReport, verify_backends

__all__ = [
    "autograd",
    "functional",
    "Tensor",
    "ExportError",
    "export_model",
    "input_to_levels",
    "AddNode",
    "Affine",
    "ConvNode",
    "GlobalAvgSumNode",
    "InputNode",
    "LayerGraph",
    "MaxPoolNode",
    "Node",
    "TensorSpec",
    "ThresholdNode",
    "InferenceResult",
    "classify",
    "run_graph",
    "BatchNorm2d",
    "Flatten",
    "GlobalAvgPool",
    "MaxPool2d",
    "Module",
    "Parameter",
    "QActivation",
    "QConv2d",
    "QLinear",
    "QResidualBlock",
    "Sequential",
    "SignActivation",
    "SGD",
    "Adam",
    "TrainResult",
    "evaluate",
    "train",
    "BackendReport",
    "verify_backends",
]
