"""Integer inference IR: the layer graph shared by every execution backend.

A :class:`LayerGraph` is a DAG of integer-domain nodes.  The same graph is

* executed functionally (vectorised NumPy) by :mod:`repro.nn.inference`,
* lowered to cycle-driven streaming kernels by :mod:`repro.dataflow.manager`,
* costed by the FPGA resource/timing/power models in :mod:`repro.hardware`.

All tensors in the IR are integers:

* ``levels`` — n-bit activation codes in ``[0, 2**bits)`` (what the FPGA
  streams between layers: 2 bits/pixel in the paper),
* ``acc`` — convolution accumulators / residual sums (16-bit integers on
  the paper's skip path).

The mapping back to the floating-point training semantics is an affine
``float = scale * int + offset[c]`` tracked per edge by the exporter
(:mod:`repro.nn.export`); the IR itself never touches floats except inside
pre-folded threshold units.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import networkx as nx
import numpy as np

from ..quantization.bitops import BitPackedMatrix, BitplaneTensor, bitplane_gemm, pack_signs
from ..quantization.thresholds import ThresholdUnit
from . import functional as F

__all__ = [
    "TensorSpec",
    "Affine",
    "Node",
    "InputNode",
    "ConvNode",
    "ThresholdNode",
    "MaxPoolNode",
    "GlobalAvgSumNode",
    "AddNode",
    "LayerGraph",
]

SKIP_DTYPE_BITS = 16  # the paper carries 16-bit integers on skip connections


@dataclass(frozen=True)
class TensorSpec:
    """Shape and integer kind of an IR edge (single image, HWC)."""

    height: int
    width: int
    channels: int
    kind: str  # "levels" | "acc"
    bits: int  # level bit-width, or accumulator width bound for "acc"

    def __post_init__(self) -> None:
        if self.kind not in ("levels", "acc"):
            raise ValueError(f"unknown tensor kind {self.kind!r}")

    @property
    def pixels(self) -> int:
        return self.height * self.width

    @property
    def elements(self) -> int:
        return self.pixels * self.channels

    @property
    def stream_bits(self) -> int:
        """Bits per element on a stream carrying this tensor."""
        return self.bits


@dataclass(frozen=True)
class Affine:
    """float = scale * int + offset; offset is scalar or per-channel."""

    scale: float
    offset: np.ndarray | float

    def offset_vector(self, channels: int) -> np.ndarray:
        off = np.asarray(self.offset, dtype=np.float64)
        if off.ndim == 0:
            return np.full(channels, float(off))
        if off.shape != (channels,):
            raise ValueError(f"offset shape {off.shape} does not match {channels} channels")
        return off

    def apply(self, ints: np.ndarray) -> np.ndarray:
        """Map integer IR values back to training-domain floats."""
        return self.scale * np.asarray(ints, dtype=np.float64) + np.asarray(self.offset)


class Node:
    """Base IR node.  Subclasses implement shape inference and compute."""

    def __init__(self, name: str) -> None:
        self.name = name

    @property
    def arity(self) -> int:
        return 1

    def infer(self, in_specs: list[TensorSpec]) -> TensorSpec:  # pragma: no cover - abstract
        raise NotImplementedError

    def compute(self, inputs: list[np.ndarray]) -> np.ndarray:  # pragma: no cover - abstract
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r})"


class InputNode(Node):
    """Graph input: a stream of n-bit pixel levels from the host CPU."""

    def __init__(self, name: str, height: int, width: int, channels: int, bits: int) -> None:
        super().__init__(name)
        self.height = height
        self.width = width
        self.channels = channels
        self.bits = bits

    @property
    def arity(self) -> int:
        return 0

    def infer(self, in_specs: list[TensorSpec]) -> TensorSpec:
        return TensorSpec(self.height, self.width, self.channels, "levels", self.bits)

    def compute(self, inputs: list[np.ndarray]) -> np.ndarray:
        raise RuntimeError("InputNode values are provided by the executor")


def _acc_bits(k: int, in_channels: int, in_bits: int) -> int:
    """Worst-case accumulator width for a K x K x I dot with ±1 weights."""
    max_abs = k * k * in_channels * ((1 << in_bits) - 1)
    return int(np.ceil(np.log2(max_abs + 1))) + 1 if max_abs else 1


class ConvNode(Node):
    """Convolution kernel with 1-bit weights (paper §III-B1).

    ``weights`` are ±1 signs of shape ``(K, K, I, O)``.  If ``threshold`` is
    set, the node fuses BatchNorm + n-bit activation (the normal case,
    matching the hardware kernel of Figure 3); otherwise it emits raw
    accumulators (the residual-block case, where BatchNorm/activation are
    applied after the skip add).  Fully connected layers are this node with
    ``k`` equal to the full spatial extent (§III-B4, all-convolutional).
    """

    def __init__(
        self,
        name: str,
        weights: np.ndarray,
        stride: int = 1,
        pad: int = 0,
        pad_level: int = 0,
        threshold: ThresholdUnit | None = None,
    ) -> None:
        super().__init__(name)
        weights = np.asarray(weights)
        if weights.ndim != 4 or weights.shape[0] != weights.shape[1]:
            raise ValueError(f"expected (K, K, I, O) sign weights, got {weights.shape}")
        if not np.isin(weights, (-1, 1)).all():
            raise ValueError("ConvNode weights must be ±1 signs")
        self.weights = weights.astype(np.int8)
        self.stride = stride
        self.pad = pad
        self.pad_level = pad_level
        self.threshold = threshold
        self._packed: BitPackedMatrix | None = None

    @property
    def kernel_size(self) -> int:
        return int(self.weights.shape[0])

    @property
    def in_channels(self) -> int:
        return int(self.weights.shape[2])

    @property
    def out_channels(self) -> int:
        return int(self.weights.shape[3])

    @property
    def weight_count(self) -> int:
        return int(self.weights.size)

    def packed_weights(self) -> BitPackedMatrix:
        """Weight-cache view: O entries of K*K*I bits (lazily packed)."""
        if self._packed is None:
            wmat = self.weights.reshape(-1, self.out_channels).T  # (O, K*K*I)
            self._packed = BitPackedMatrix.from_signs(wmat)
        return self._packed

    def infer(self, in_specs: list[TensorSpec]) -> TensorSpec:
        (spec,) = in_specs
        if spec.channels != self.in_channels:
            raise ValueError(
                f"{self.name}: input has {spec.channels} channels, weights expect {self.in_channels}"
            )
        if spec.kind == "levels" and not (0 <= self.pad_level < (1 << spec.bits)):
            raise ValueError(f"{self.name}: pad level {self.pad_level} out of range")
        ho = F.conv_output_size(spec.height, self.kernel_size, self.stride, self.pad)
        wo = F.conv_output_size(spec.width, self.kernel_size, self.stride, self.pad)
        if self.threshold is not None:
            if self.threshold.channels != self.out_channels:
                raise ValueError(f"{self.name}: threshold has wrong channel count")
            return TensorSpec(ho, wo, self.out_channels, "levels", self.threshold.bits)
        bits = _acc_bits(self.kernel_size, self.in_channels, spec.bits)
        return TensorSpec(ho, wo, self.out_channels, "acc", min(bits, SKIP_DTYPE_BITS))

    def accumulate(self, x: np.ndarray) -> np.ndarray:
        """Integer convolution accumulators via dense matmul (reference)."""
        x = np.asarray(x, dtype=np.int64)
        xp = F.pad2d(x, self.pad, self.pad_level)
        cols = F.im2col(xp, self.kernel_size, self.stride)
        wmat = self.weights.reshape(-1, self.out_channels).astype(np.int64)
        return cols @ wmat

    def accumulate_bitpacked(self, x: np.ndarray, bits: int) -> np.ndarray:
        """Integer accumulators via the XNOR/AND-popcount path (hardware math).

        Only valid for ``levels`` inputs; bit-plane decomposes every im2col
        patch and multiplies with the packed weight cache.
        """
        x = np.asarray(x, dtype=np.int64)
        xp = F.pad2d(x, self.pad, self.pad_level)
        cols = F.im2col(xp, self.kernel_size, self.stride)
        batched = cols.ndim == 4
        if not batched:
            cols = cols[None]
        n, ho, wo, taps = cols.shape
        flat = cols.reshape(-1, taps)
        planes = BitplaneTensor.from_levels(flat, bits)
        acc = bitplane_gemm(self.packed_weights().words, list(planes.planes))
        acc = acc.reshape(n, ho, wo, self.out_channels)
        return acc if batched else acc[0]

    def compute(self, inputs: list[np.ndarray]) -> np.ndarray:
        acc = self.accumulate(inputs[0])
        if self.threshold is not None:
            return self.threshold.apply(acc, channel_axis=-1)
        return acc


class ThresholdNode(Node):
    """Standalone fused BatchNorm + n-bit activation (post-residual-add)."""

    def __init__(self, name: str, unit: ThresholdUnit) -> None:
        super().__init__(name)
        self.unit = unit

    def infer(self, in_specs: list[TensorSpec]) -> TensorSpec:
        (spec,) = in_specs
        if spec.channels != self.unit.channels:
            raise ValueError(f"{self.name}: channel mismatch")
        return replace(spec, kind="levels", bits=self.unit.bits)

    def compute(self, inputs: list[np.ndarray]) -> np.ndarray:
        return self.unit.apply(inputs[0], channel_axis=-1)


class MaxPoolNode(Node):
    """Max pooling (paper §III-B2: output produced the cycle input arrives).

    Optional padding injects level 0, which is neutral under max because
    levels are non-negative (the hardware equivalent of −inf padding).
    """

    def __init__(
        self, name: str, kernel_size: int, stride: int | None = None, pad: int = 0
    ) -> None:
        super().__init__(name)
        self.kernel_size = kernel_size
        self.stride = kernel_size if stride is None else stride
        self.pad = pad

    def infer(self, in_specs: list[TensorSpec]) -> TensorSpec:
        (spec,) = in_specs
        if self.pad and spec.kind != "levels":
            raise ValueError(f"{self.name}: padded max pooling requires a level stream")
        ho = (spec.height + 2 * self.pad - self.kernel_size) // self.stride + 1
        wo = (spec.width + 2 * self.pad - self.kernel_size) // self.stride + 1
        if ho < 1 or wo < 1:
            raise ValueError(f"{self.name}: pooling window larger than input")
        return replace(spec, height=ho, width=wo)

    def compute(self, inputs: list[np.ndarray]) -> np.ndarray:
        x = np.asarray(inputs[0], dtype=np.int64)
        if self.pad:
            x = F.pad2d(x, self.pad, 0)
        return F.maxpool2d(x, self.kernel_size, self.stride)


class GlobalAvgSumNode(Node):
    """Global average pooling kept exact as an integer *sum*.

    The divisor (H·W) is folded into the edge affine by the exporter, so the
    integer path stays exact.  Used for ResNet-18's final pooling (the one
    place the paper uses average rather than max pooling).
    """

    def __init__(self, name: str) -> None:
        super().__init__(name)

    def infer(self, in_specs: list[TensorSpec]) -> TensorSpec:
        (spec,) = in_specs
        max_abs = spec.pixels * ((1 << spec.bits) - 1)
        bits = int(np.ceil(np.log2(max_abs + 1))) + 1
        return TensorSpec(1, 1, spec.channels, "acc", bits)

    def compute(self, inputs: list[np.ndarray]) -> np.ndarray:
        x = np.asarray(inputs[0], dtype=np.int64)
        if x.ndim == 3:
            return x.sum(axis=(0, 1), keepdims=True)
        return x.sum(axis=(1, 2), keepdims=True)


class AddNode(Node):
    """Residual adder: one integer add per element (paper §III-B5).

    The skip path carries 16-bit integers in hardware; ``compute`` checks
    the accumulated values actually fit that width and records the high
    -water mark in :attr:`max_abs_seen`.
    """

    def __init__(self, name: str) -> None:
        super().__init__(name)
        self.max_abs_seen = 0

    @property
    def arity(self) -> int:
        return 2

    def infer(self, in_specs: list[TensorSpec]) -> TensorSpec:
        a, b = in_specs
        if (a.height, a.width, a.channels) != (b.height, b.width, b.channels):
            raise ValueError(f"{self.name}: cannot add {a} and {b}")
        bits = min(max(a.bits, b.bits) + 1, SKIP_DTYPE_BITS)
        return TensorSpec(a.height, a.width, a.channels, "acc", bits)

    def compute(self, inputs: list[np.ndarray]) -> np.ndarray:
        a = np.asarray(inputs[0], dtype=np.int64)
        b = np.asarray(inputs[1], dtype=np.int64)
        out = a + b
        self.max_abs_seen = max(self.max_abs_seen, int(np.abs(out).max(initial=0)))
        limit = 1 << (SKIP_DTYPE_BITS - 1)
        if self.max_abs_seen >= limit:
            raise OverflowError(
                f"{self.name}: residual sum {self.max_abs_seen} exceeds "
                f"{SKIP_DTYPE_BITS}-bit skip-path range"
            )
        return out


@dataclass
class LayerGraph:
    """A DAG of IR nodes with shape inference and edge specs.

    Nodes are added in construction order; ``inputs`` names the producing
    nodes.  ``specs[name]`` is the output :class:`TensorSpec` of each node,
    available immediately after ``add``.
    """

    graph: nx.DiGraph = field(default_factory=nx.DiGraph)
    nodes: dict[str, Node] = field(default_factory=dict)
    specs: dict[str, TensorSpec] = field(default_factory=dict)
    order: list[str] = field(default_factory=list)
    input_name: str | None = None
    output_name: str | None = None
    output_affine: Affine | None = None
    name: str = "network"

    def add(self, node: Node, inputs: tuple[str, ...] | list[str] = ()) -> Node:
        if node.name in self.nodes:
            raise ValueError(f"duplicate node name {node.name!r}")
        inputs = tuple(inputs)
        if len(inputs) != node.arity:
            raise ValueError(f"{node.name}: expected {node.arity} inputs, got {len(inputs)}")
        for parent in inputs:
            if parent not in self.nodes:
                raise ValueError(f"{node.name}: unknown input {parent!r}")
        in_specs = [self.specs[p] for p in inputs]
        spec = node.infer(in_specs)
        self.nodes[node.name] = node
        self.specs[node.name] = spec
        self.order.append(node.name)
        self.graph.add_node(node.name)
        for i, parent in enumerate(inputs):
            self.graph.add_edge(parent, node.name, port=i)
        if isinstance(node, InputNode):
            if self.input_name is not None:
                raise ValueError("LayerGraph supports a single input node")
            self.input_name = node.name
        self.output_name = node.name
        return node

    def parents(self, name: str) -> list[str]:
        """Producing nodes of ``name`` in port order."""
        preds = [(self.graph.edges[p, name]["port"], p) for p in self.graph.predecessors(name)]
        return [p for _, p in sorted(preds)]

    def consumers(self, name: str) -> list[str]:
        return list(self.graph.successors(name))

    def topological(self) -> list[str]:
        return list(nx.topological_sort(self.graph))

    @property
    def input_spec(self) -> TensorSpec:
        if self.input_name is None:
            raise ValueError("graph has no input node")
        return self.specs[self.input_name]

    @property
    def output_spec(self) -> TensorSpec:
        if self.output_name is None:
            raise ValueError("graph is empty")
        return self.specs[self.output_name]

    def conv_nodes(self) -> list[ConvNode]:
        return [n for n in (self.nodes[name] for name in self.order) if isinstance(n, ConvNode)]

    def total_weight_bits(self) -> int:
        """Total 1-bit weight storage across all conv/FC layers."""
        return sum(n.weight_count for n in self.conv_nodes())

    def validate(self) -> None:
        """Structural checks: single component, acyclic, one input."""
        if self.input_name is None:
            raise ValueError("graph has no input")
        if not nx.is_directed_acyclic_graph(self.graph):
            raise ValueError("graph has cycles")
        reachable = nx.descendants(self.graph, self.input_name) | {self.input_name}
        unreachable = set(self.nodes) - reachable
        if unreachable:
            raise ValueError(f"nodes unreachable from input: {sorted(unreachable)}")
