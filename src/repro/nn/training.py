"""Optimizers, losses and the quantization-aware training loop.

The paper trains its QNNs on GPUs with Hubara et al.'s recipe and then loads
frozen parameters onto the DFEs.  Here the same recipe runs in NumPy: Adam
over the full-precision shadow weights, Sign/uniform-quantizer STE in the
forward pass, cross-entropy loss.  Scale is laptop-sized (the substitution
is recorded in DESIGN.md): the point is to produce *real trained weights*
whose accuracy ordering (2-bit activations > 1-bit activations > chance)
reproduces the paper's accuracy claims on synthetic datasets.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from . import autograd as ag
from .autograd import Tensor
from .modules import Module, Parameter

__all__ = ["SGD", "Adam", "TrainResult", "train", "evaluate", "iterate_minibatches"]


class SGD:
    """Plain SGD with optional momentum and weight clipping.

    BinaryConnect-style training clips shadow weights to [-1, 1] after each
    update so the Sign STE stays in its active region.
    """

    def __init__(
        self,
        params: list[Parameter],
        lr: float = 0.01,
        momentum: float = 0.0,
        clip: float | None = 1.0,
    ) -> None:
        self.params = list(params)
        self.lr = lr
        self.momentum = momentum
        self.clip = clip
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        for p, v in zip(self.params, self._velocity):
            if p.grad is None:
                continue
            v *= self.momentum
            v -= self.lr * p.grad
            p.data += v
            if self.clip is not None and p.name.endswith(".weight"):
                np.clip(p.data, -self.clip, self.clip, out=p.data)

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()


class Adam:
    """Adam optimizer with BinaryConnect weight clipping."""

    def __init__(
        self,
        params: list[Parameter],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        clip: float | None = 1.0,
    ) -> None:
        self.params = list(params)
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.clip = clip
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        b1t = 1 - self.beta1**self._t
        b2t = 1 - self.beta2**self._t
        for p, m, v in zip(self.params, self._m, self._v):
            if p.grad is None:
                continue
            m *= self.beta1
            m += (1 - self.beta1) * p.grad
            v *= self.beta2
            v += (1 - self.beta2) * p.grad**2
            p.data -= self.lr * (m / b1t) / (np.sqrt(v / b2t) + self.eps)
            if self.clip is not None and p.name.endswith(".weight"):
                np.clip(p.data, -self.clip, self.clip, out=p.data)

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()


def iterate_minibatches(
    x: np.ndarray, y: np.ndarray, batch_size: int, rng: np.random.Generator
):
    """Yield shuffled (x, y) minibatches."""
    idx = rng.permutation(len(x))
    for start in range(0, len(x), batch_size):
        sel = idx[start : start + batch_size]
        yield x[sel], y[sel]


@dataclass
class TrainResult:
    """Per-epoch training history."""

    losses: list[float] = field(default_factory=list)
    train_accuracies: list[float] = field(default_factory=list)
    val_accuracies: list[float] = field(default_factory=list)

    @property
    def final_val_accuracy(self) -> float:
        return self.val_accuracies[-1] if self.val_accuracies else float("nan")


def evaluate(model: Module, x: np.ndarray, y: np.ndarray, batch_size: int = 256) -> float:
    """Top-1 accuracy of ``model`` on (x, y)."""
    model.eval()
    correct = 0
    for start in range(0, len(x), batch_size):
        xb = x[start : start + batch_size]
        yb = y[start : start + batch_size]
        logits = model(Tensor(xb)).data
        correct += int((logits.argmax(axis=-1) == yb).sum())
    return correct / len(x)


def train(
    model: Module,
    x_train: np.ndarray,
    y_train: np.ndarray,
    x_val: np.ndarray | None = None,
    y_val: np.ndarray | None = None,
    epochs: int = 5,
    batch_size: int = 64,
    lr: float = 1e-3,
    optimizer: str = "adam",
    seed: int = 0,
    verbose: bool = False,
) -> TrainResult:
    """Quantization-aware training loop (forward quantized, STE backward)."""
    rng = np.random.default_rng(seed)
    params = list(model.parameters())
    opt = Adam(params, lr=lr) if optimizer == "adam" else SGD(params, lr=lr, momentum=0.9)
    result = TrainResult()
    for epoch in range(epochs):
        model.train()
        epoch_losses = []
        correct = 0
        for xb, yb in iterate_minibatches(x_train, y_train, batch_size, rng):
            opt.zero_grad()
            logits = model(Tensor(xb))
            loss = ag.cross_entropy(logits, yb)
            loss.backward()
            opt.step()
            epoch_losses.append(float(loss.data))
            correct += int((logits.data.argmax(axis=-1) == yb).sum())
        result.losses.append(float(np.mean(epoch_losses)))
        result.train_accuracies.append(correct / len(x_train))
        if x_val is not None and y_val is not None:
            result.val_accuracies.append(evaluate(model, x_val, y_val))
        if verbose:  # pragma: no cover - console output
            msg = f"epoch {epoch + 1}/{epochs} loss={result.losses[-1]:.4f} train_acc={result.train_accuracies[-1]:.3f}"
            if result.val_accuracies:
                msg += f" val_acc={result.val_accuracies[-1]:.3f}"
            print(msg)
    return result
