"""Reference NumPy implementations of the NN operators (NHWC layout).

These are the ground-truth semantics against which both the bit-packed
integer path and the cycle-driven streaming kernels are verified.  The
layout is **NHWC / HWC with channels innermost**, deliberately matching the
paper's depth-first streaming order (§III-B1b): a stream position advances
channel-first, then width, then height.

All convolutions use *valid* correlation after explicit padding, matching
the hardware kernel which stalls the input stream to inject padding values
(the paper pads with −1 because zero does not exist in the binary alphabet).
"""

from __future__ import annotations

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

__all__ = [
    "pad2d",
    "im2col",
    "conv2d",
    "conv_output_size",
    "maxpool2d",
    "avgpool2d",
    "global_avgpool",
    "linear",
    "softmax",
    "log_softmax",
]


def conv_output_size(size: int, k: int, stride: int, pad: int) -> int:
    """Spatial output size of a K-tap, stride-S convolution with symmetric padding."""
    out = (size + 2 * pad - k) // stride + 1
    if out < 1:
        raise ValueError(
            f"convolution produces empty output (size={size}, k={k}, stride={stride}, pad={pad})"
        )
    return out


def _ensure_nhwc(x: np.ndarray) -> tuple[np.ndarray, bool]:
    """Promote HWC to NHWC; return (array, was_batched)."""
    x = np.asarray(x)
    if x.ndim == 3:
        return x[None], False
    if x.ndim == 4:
        return x, True
    raise ValueError(f"expected HWC or NHWC input, got shape {x.shape}")


def pad2d(x: np.ndarray, pad: int, value: float = 0.0) -> np.ndarray:
    """Pad the two spatial axes of an (N)HWC tensor with a constant value."""
    if pad < 0:
        raise ValueError(f"pad must be non-negative, got {pad}")
    if pad == 0:
        return np.asarray(x)
    xb, batched = _ensure_nhwc(x)
    out = np.pad(
        xb,
        ((0, 0), (pad, pad), (pad, pad), (0, 0)),
        mode="constant",
        constant_values=value,
    )
    return out if batched else out[0]


def im2col(x: np.ndarray, k: int, stride: int = 1) -> np.ndarray:
    """Extract K x K sliding patches from an (N)HWC tensor.

    Returns shape ``(N, Ho, Wo, K*K*C)`` (or without N for HWC input), with
    the patch flattened in **(row, col, channel)** order — the same order the
    streaming window buffer presents bits to the popcount tree, so packed
    weights can be shared verbatim between the functional and streaming
    paths.
    """
    xb, batched = _ensure_nhwc(x)
    windows = sliding_window_view(xb, (k, k), axis=(1, 2))
    # windows: (N, Ho_full, Wo_full, C, k, k) -> reorder to (.., k, k, C)
    windows = windows[:, ::stride, ::stride]
    windows = np.moveaxis(windows, 3, 5)
    n, ho, wo = windows.shape[:3]
    cols = windows.reshape(n, ho, wo, -1)
    return cols if batched else cols[0]


def conv2d(
    x: np.ndarray,
    w: np.ndarray,
    stride: int = 1,
    pad: int = 0,
    pad_value: float = 0.0,
    bias: np.ndarray | None = None,
) -> np.ndarray:
    """2-D convolution (cross-correlation) of an (N)HWC tensor.

    Parameters
    ----------
    x:
        Input of shape ``(N, H, W, I)`` or ``(H, W, I)``.
    w:
        Filters of shape ``(K, K, I, O)``.
    stride, pad, pad_value:
        Spatial stride and constant padding (the paper uses −1 padding for
        binary feature maps).
    bias:
        Optional per-output-channel bias of shape ``(O,)``.
    """
    xb, batched = _ensure_nhwc(x)
    w = np.asarray(w)
    if w.ndim != 4 or w.shape[0] != w.shape[1]:
        raise ValueError(f"expected square (K, K, I, O) filters, got shape {w.shape}")
    k, _, ci, co = w.shape
    if xb.shape[-1] != ci:
        raise ValueError(f"input has {xb.shape[-1]} channels, filters expect {ci}")
    xp = pad2d(xb, pad, pad_value)
    cols = im2col(xp, k, stride)  # (N, Ho, Wo, K*K*I)
    wmat = w.reshape(-1, co)  # (K*K*I, O), same (row, col, channel) order
    out = cols @ wmat
    if bias is not None:
        out = out + np.asarray(bias)
    return out if batched else out[0]


def maxpool2d(x: np.ndarray, k: int, stride: int | None = None) -> np.ndarray:
    """Max pooling over non-overlapping (or strided) K x K windows, (N)HWC."""
    stride = k if stride is None else stride
    xb, batched = _ensure_nhwc(x)
    windows = sliding_window_view(xb, (k, k), axis=(1, 2))[:, ::stride, ::stride]
    out = windows.max(axis=(-2, -1))
    return out if batched else out[0]


def avgpool2d(x: np.ndarray, k: int, stride: int | None = None) -> np.ndarray:
    """Average pooling over K x K windows, (N)HWC; returns float64."""
    stride = k if stride is None else stride
    xb, batched = _ensure_nhwc(x)
    windows = sliding_window_view(xb, (k, k), axis=(1, 2))[:, ::stride, ::stride]
    out = windows.mean(axis=(-2, -1), dtype=np.float64)
    return out if batched else out[0]


def global_avgpool(x: np.ndarray) -> np.ndarray:
    """Global average over the spatial axes of an (N)HWC tensor."""
    xb, batched = _ensure_nhwc(x)
    out = xb.mean(axis=(1, 2), dtype=np.float64)
    return out if batched else out[0]


def linear(x: np.ndarray, w: np.ndarray, bias: np.ndarray | None = None) -> np.ndarray:
    """Fully connected layer ``x @ w`` with ``w`` of shape ``(in, out)``."""
    out = np.asarray(x) @ np.asarray(w)
    if bias is not None:
        out = out + np.asarray(bias)
    return out


def softmax(logits: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax."""
    z = np.asarray(logits, dtype=np.float64)
    z = z - z.max(axis=axis, keepdims=True)
    e = np.exp(z)
    return e / e.sum(axis=axis, keepdims=True)


def log_softmax(logits: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable log-softmax."""
    z = np.asarray(logits, dtype=np.float64)
    z = z - z.max(axis=axis, keepdims=True)
    return z - np.log(np.exp(z).sum(axis=axis, keepdims=True))
