"""Trainable quantized NN modules (QAT path).

These modules mirror Hubara et al.'s QNN training recipe used by the paper:
full-precision shadow weights binarized with Sign (STE) on the forward pass,
BatchNorm, and an n-bit uniform activation (STE).  After training, a model
is *exported* (see :mod:`repro.nn.export`) into the integer inference IR
that both the functional integer executor and the streaming dataflow
simulator consume.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from ..quantization.quantizers import UniformQuantizer
from . import autograd as ag
from .autograd import Tensor

__all__ = [
    "Module",
    "Parameter",
    "QConv2d",
    "BatchNorm2d",
    "QActivation",
    "SignActivation",
    "MaxPool2d",
    "GlobalAvgPool",
    "Flatten",
    "QLinear",
    "Sequential",
    "QResidualBlock",
]


class Parameter(Tensor):
    """A trainable tensor."""

    def __init__(self, data: np.ndarray, name: str = "") -> None:
        super().__init__(data, requires_grad=True, name=name)


class Module:
    """Base class: parameter discovery, train/eval mode, call syntax."""

    def __init__(self) -> None:
        self.training = True

    def forward(self, x: Tensor) -> Tensor:  # pragma: no cover - abstract
        raise NotImplementedError

    def __call__(self, x: Tensor) -> Tensor:
        return self.forward(x)

    def parameters(self) -> Iterator[Parameter]:
        for value in vars(self).values():
            if isinstance(value, Parameter):
                yield value
            elif isinstance(value, Module):
                yield from value.parameters()
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        yield from item.parameters()

    def modules(self) -> Iterator["Module"]:
        yield self
        for value in vars(self).values():
            if isinstance(value, Module):
                yield from value.modules()
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        yield from item.modules()

    def train(self, mode: bool = True) -> "Module":
        for m in self.modules():
            m.training = mode
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()


def _kaiming(rng: np.random.Generator, shape: tuple[int, ...], fan_in: int) -> np.ndarray:
    return rng.normal(0.0, np.sqrt(2.0 / fan_in), size=shape)


class QConv2d(Module):
    """Convolution with 1-bit (Sign + STE) weights.

    ``binary=False`` keeps full-precision weights — used for the
    first-layer ablation and for the floating-point baselines.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        pad: int = 0,
        pad_value: float = -1.0,
        binary: bool = True,
        rng: np.random.Generator | None = None,
        name: str = "conv",
    ) -> None:
        super().__init__()
        rng = rng or np.random.default_rng(0)
        fan_in = kernel_size * kernel_size * in_channels
        self.weight = Parameter(
            _kaiming(rng, (kernel_size, kernel_size, in_channels, out_channels), fan_in),
            name=f"{name}.weight",
        )
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.pad = pad
        self.pad_value = pad_value
        self.binary = binary
        self.name = name

    def effective_weight(self) -> Tensor:
        return ag.sign_ste(self.weight) if self.binary else self.weight

    def forward(self, x: Tensor) -> Tensor:
        return ag.conv2d(
            x, self.effective_weight(), stride=self.stride, pad=self.pad, pad_value=self.pad_value
        )


class BatchNorm2d(Module):
    """BatchNorm over the channel (last) axis of NHWC tensors."""

    def __init__(self, channels: int, momentum: float = 0.1, eps: float = 1e-5, name: str = "bn") -> None:
        super().__init__()
        self.gamma = Parameter(np.ones(channels), name=f"{name}.gamma")
        self.beta = Parameter(np.zeros(channels), name=f"{name}.beta")
        self.running_mean = np.zeros(channels)
        self.running_var = np.ones(channels)
        self.momentum = momentum
        self.eps = eps
        self.channels = channels
        self.name = name

    def forward(self, x: Tensor) -> Tensor:
        return ag.batchnorm(
            x,
            self.gamma,
            self.beta,
            self.running_mean,
            self.running_var,
            training=self.training,
            momentum=self.momentum,
            eps=self.eps,
        )


class QActivation(Module):
    """n-bit uniform activation with clipped STE (the paper uses n = 2)."""

    def __init__(self, bits: int = 2, lo: float = 0.0, d: float = 0.5) -> None:
        super().__init__()
        self.quantizer = UniformQuantizer(bits=bits, lo=lo, d=d)
        self.bits = bits

    def forward(self, x: Tensor) -> Tensor:
        return ag.uniform_quant_ste(x, self.quantizer)


class SignActivation(Module):
    """1-bit sign activation (±1) with hard-tanh STE — the BNN/FINN case.

    The paper's comparison network (Umuroglu et al.) uses binary activations;
    we keep them available to reproduce the accuracy gap between 1-bit and
    2-bit activations (Table IVa and the AlexNet 41.8% → 51.03% claim).
    """

    def __init__(self, clip: float = 1.0) -> None:
        super().__init__()
        self.clip = clip
        self.bits = 1

    def forward(self, x: Tensor) -> Tensor:
        return ag.sign_ste(x, clip=self.clip)


class MaxPool2d(Module):
    """Max pooling.  Padding (when used) must inject the *minimum* float
    value of the incoming quantized stream (the level-0 value) so that the
    padded entries never win the max — mirroring the hardware's level-0
    injection, which is neutral because levels are non-negative."""

    def __init__(
        self,
        kernel_size: int,
        stride: int | None = None,
        pad: int = 0,
        pad_value: float = 0.0,
    ) -> None:
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = kernel_size if stride is None else stride
        self.pad = pad
        self.pad_value = pad_value

    def forward(self, x: Tensor) -> Tensor:
        return ag.maxpool2d(x, self.kernel_size, self.stride, self.pad, self.pad_value)


class GlobalAvgPool(Module):
    def forward(self, x: Tensor) -> Tensor:
        return ag.global_avgpool(x)


class Flatten(Module):
    def forward(self, x: Tensor) -> Tensor:
        n = x.data.shape[0]
        return ag.reshape(x, (n, -1))


class QLinear(Module):
    """Fully connected layer with 1-bit (Sign + STE) weights."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        binary: bool = True,
        rng: np.random.Generator | None = None,
        name: str = "fc",
    ) -> None:
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.weight = Parameter(
            _kaiming(rng, (in_features, out_features), in_features), name=f"{name}.weight"
        )
        self.in_features = in_features
        self.out_features = out_features
        self.binary = binary
        self.name = name

    def effective_weight(self) -> Tensor:
        return ag.sign_ste(self.weight) if self.binary else self.weight

    def forward(self, x: Tensor) -> Tensor:
        return ag.matmul(x, self.effective_weight())


class Sequential(Module):
    def __init__(self, *layers: Module) -> None:
        super().__init__()
        self.layers = list(layers)

    def forward(self, x: Tensor) -> Tensor:
        for layer in self.layers:
            x = layer(x)
        return x

    def __iter__(self) -> Iterator[Module]:
        return iter(self.layers)

    def __getitem__(self, idx: int) -> Module:
        return self.layers[idx]


class QResidualBlock(Module):
    """A quantized residual block matching the paper's Figure 2 semantics.

    The running skip value is the *non-quantized* convolution accumulation
    (16-bit integers in hardware); BatchNorm + activation are applied to a
    copy before the next convolution.  Structure for one block::

        s_out = conv2(act(bn1(conv1(x) + s_in_or_0)))-ish

    Concretely, following §III-B5: input arrives as (x_levels, skip); conv1
    output is summed with the skip input, the sum continues as the new skip
    stream, and bn+act of the sum feeds conv2.  A block here bundles the two
    convolutions of a ResNet basic block.  ``downsample`` inserts a stride-2
    1x1 binary projection on the skip path when shapes change.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        stride: int = 1,
        bits: int = 2,
        act_d: float = 0.5,
        rng: np.random.Generator | None = None,
        name: str = "block",
    ) -> None:
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.conv1 = QConv2d(
            in_channels, out_channels, 3, stride=stride, pad=1, rng=rng, name=f"{name}.conv1"
        )
        self.bn1 = BatchNorm2d(out_channels, name=f"{name}.bn1")
        self.act1 = QActivation(bits=bits, d=act_d)
        self.conv2 = QConv2d(out_channels, out_channels, 3, stride=1, pad=1, rng=rng, name=f"{name}.conv2")
        self.bn2 = BatchNorm2d(out_channels, name=f"{name}.bn2")
        self.act2 = QActivation(bits=bits, d=act_d)
        self.downsample: QConv2d | None = None
        if stride != 1 or in_channels != out_channels:
            self.downsample = QConv2d(
                in_channels, out_channels, 1, stride=stride, pad=0, rng=rng, name=f"{name}.proj"
            )
        self.name = name

    def forward(self, x: Tensor) -> Tensor:
        identity = self.downsample(x) if self.downsample is not None else x
        out = self.conv1(x)
        out = ag.add(out, identity)
        skip = out
        out = self.act1(self.bn1(out))
        out = self.conv2(out)
        out = ag.add(out, skip)
        return self.act2(self.bn2(out))
