"""Exact plan timing by value-independent abstract replay.

The analytic rate model (:mod:`repro.hardware.timing`) is good enough to
rank candidates inside the search loop but only ~5% accurate on absolute
cycles.  The *shipped* prediction has to be exact: the acceptance contract
is that the plan's predicted steady-state interval equals the simulated
interval of the planned partitioning bit-for-bit.

That exactness is free here because kernel scheduling is completely
value-independent (the same property the §III-B5 skip solver and the leap
scheduler's periodicity proof rest on): the cycle at which any kernel
consumes or emits depends only on tensor geometry.  So we build the real
pipeline on a zero batch, stub out the convolution arithmetic, run the
fast engine once, and read the sink's completion instants — the identical
schedule any real run of the same geometry walks, at a fraction of the
compute.  No search-loop candidate is ever replayed; only the winner (and,
in tests, its neighbors) pays this cost.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ..dataflow.interval import exact_completion_period, mean_completion_interval
from ..dataflow.links import MAXRING, LinkSpec
from ..nn.graph import LayerGraph
from .plan import PredictedTiming

__all__ = ["PREDICT_IMAGES", "predict_partition_timing"]

# Images the predictor replays.  Four gives three completion gaps — enough
# for `exact_completion_period` to certify a steady-state period — while
# keeping the replay a few pipeline fills long.  Tests that compare against
# a real simulation must stream the same count (the mean interval is
# count-dependent; the exact period is not).
PREDICT_IMAGES = 4


def predict_partition_timing(
    graph: LayerGraph,
    partition: list[list[str]],
    *,
    link: LinkSpec = MAXRING,
    fclk_mhz: float = 105.0,
    n_images: int = PREDICT_IMAGES,
    max_cycles: int = 500_000_000,
) -> PredictedTiming:
    """Exact interval/latency of ``partition`` via one zero-batch replay.

    Bit-equal to a real ``simulate(...)`` of the same partition and image
    count in any mode (exhaustive/fast/leap) — tested property.  Results
    are cached on the graph per (partition, link, f_clk, n_images).
    """
    key = (
        tuple(tuple(group) for group in partition),
        link,
        float(fclk_mhz),
        int(n_images),
    )
    cache: dict[Any, PredictedTiming] | None = getattr(graph, "_plan_replay_cache", None)
    if cache is None:
        cache = {}
        graph._plan_replay_cache = cache  # type: ignore[attr-defined]
    hit = cache.get(key)
    if hit is not None:
        return hit

    from ..kernels.conv import ConvKernel
    from ..dataflow.manager import build_pipeline
    from ..telemetry.latency import segment_summaries

    spec = graph.input_spec
    zeros = np.zeros((n_images, spec.height, spec.width, spec.channels), dtype=np.int64)
    pipeline = build_pipeline(
        graph,
        zeros,
        partition=partition,
        link=link,
        fclk_mhz=fclk_mhz,
        skip_sizing="exact",
    )
    for kernel in pipeline.engine.kernels:
        if isinstance(kernel, ConvKernel):
            # Timing abstraction (as in verify.solve_skip_capacities): emit
            # the right *number* of outputs with no arithmetic.
            zero_out = [0] * kernel.out_channels
            kernel._compute_outputs = lambda window, _z=zero_out: _z  # type: ignore[method-assign]
    cycles = pipeline.engine.run(lambda: pipeline.sink.done, max_cycles=max_cycles)
    if not pipeline.sink.done:
        raise RuntimeError(
            f"plan replay of {graph.name!r} did not finish within {max_cycles:,} "
            "cycles — run `python -m repro check` on this partition"
        )
    completions = list(pipeline.sink.completion_cycles)
    segments = tuple(
        (label, float(summary.mean))
        for label, summary in segment_summaries(pipeline)
        if summary.mean is not None
    )
    timing = PredictedTiming(
        n_images=n_images,
        replay_cycles=cycles,
        latency_cycles=completions[0],
        completion_cycles=tuple(completions),
        interval=mean_completion_interval(completions),
        period=exact_completion_period(completions),
        segments=segments,
    )
    cache[key] = timing
    return timing
