"""Static partition search: DP over chain cuts + branch-and-bound for skips.

The search space is the set of *contiguous* splits of the compute nodes in
topological order (§III-B6: streams only flow forward through the MaxRing
daisy chain).  A candidate is a tuple of cut positions; every candidate is
scored **statically** — per-device LUT/FF/BRAM ledgers from
:mod:`repro.hardware.resources` prefix sums, link bandwidth and residual
atomicity from :func:`repro.dataflow.verify.partition_feasibility`'s rules,
throughput/latency from the analytic rate model.  No cycle is simulated in
the search loop; only the winner is replayed (exactly) by
:mod:`repro.planner.replay`.

Two search layers:

* **DP** (linear families — VGG/AlexNet): ``f[k][j]`` = the smallest
  achievable *bottleneck device utilization* packing the first ``j`` nodes
  onto exactly ``k`` devices, with lexicographically-smallest cuts as the
  tie-break.  Segment feasibility is monotone (estimates are non-negative),
  so inner loops cut off at the first overflow; infeasible segments land in
  the audit trail with the V-code of the overflowing resource.
* **Branch-and-bound** (residual graphs — ResNet): DFS over node-level cut
  positions.  A cut through a residual block is killed by the skip-crossing
  rule (V503 — the §III-B6 atomicity constraint *emerges* from the verifier
  rather than being assumed), a device over budget by V701/V702/V703, and
  subtrees that cannot beat the incumbent by the lower bound
  ``devices_used + ceil(max_r remaining_r / capacity_r)``.

Objectives: ``min-dfes`` (fewest devices under the budgets and an optional
throughput SLO, then smallest bottleneck utilization) and ``min-latency``
(fixed device count; smallest predicted fill+steady latency, then smallest
bottleneck utilization).  For a pure chain every cut adds exactly one
crossing, making the analytic latency cut-invariant — the utilization
tie-break is then what separates candidates; reconvergent graphs can cross
more than one edge per cut, so B&B scores the analytic latency explicitly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ..dataflow.links import MAXRING, LinkSpec
from ..dataflow.verify import partition_feasibility
from ..hardware.calibration import DEFAULT_RESOURCE_CAL, ResourceCalibration
from ..hardware.device import STRATIX_V_5SGSD8, FPGASpec
from ..hardware.partition import infrastructure_estimate, per_kernel_overhead
from ..hardware.resources import estimate_node
from ..hardware.timing import estimate_network_timing
from ..nn.graph import AddNode, InputNode, LayerGraph
from .plan import DeviceLedger, PartitionPlan, PlanError, PredictedTiming, PrunedCandidate
from .replay import PREDICT_IMAGES, predict_partition_timing

__all__ = ["plan_partition", "neighbor_partitions", "allowed_cut_positions"]


@dataclass(slots=True)
class _CostModel:
    """Prefix-sum resource ledgers + budget checks shared by both searches."""

    nodes: list[str]
    pre_luts: list[float]
    pre_ffs: list[float]
    pre_bram: list[int]
    infra_luts: float
    infra_ffs: float
    infra_bram_kbits: float
    budget_luts: float
    budget_ffs: float
    budget_bram_kbits: float
    dev_luts: float
    dev_ffs: float
    dev_bram_kbits: float

    def segment(self, i: int, j: int) -> tuple[float, float, float]:
        """(luts, ffs, bram_kbits) of devices holding nodes[i:j], with infra."""
        from ..hardware.resources import M20K_KBITS

        return (
            self.infra_luts + self.pre_luts[j] - self.pre_luts[i],
            self.infra_ffs + self.pre_ffs[j] - self.pre_ffs[i],
            self.infra_bram_kbits + (self.pre_bram[j] - self.pre_bram[i]) * M20K_KBITS,
        )

    def overflow(self, i: int, j: int) -> tuple[str, str] | None:
        """First violated budget of segment [i, j), as (V-code, resource)."""
        luts, ffs, bram = self.segment(i, j)
        if luts > self.budget_luts:
            return "V701", "lut"
        if ffs > self.budget_ffs:
            return "V702", "ff"
        if bram > self.budget_bram_kbits:
            return "V703", "bram"
        return None

    def utilization(self, i: int, j: int) -> float:
        """Max LUT/FF/BRAM fraction of the *device* (not the fill cap)."""
        luts, ffs, bram = self.segment(i, j)
        return max(luts / self.dev_luts, ffs / self.dev_ffs, bram / self.dev_bram_kbits)

    def min_devices_lower_bound(self, i: int) -> int:
        """Devices needed for nodes[i:] if packing were perfectly fractional."""
        from ..hardware.resources import M20K_KBITS

        n = len(self.nodes)
        luts = self.pre_luts[n] - self.pre_luts[i]
        ffs = self.pre_ffs[n] - self.pre_ffs[i]
        bram = (self.pre_bram[n] - self.pre_bram[i]) * M20K_KBITS
        if luts <= 0 and ffs <= 0 and bram <= 0:
            return 0
        need = 1
        for used, budget, infra in (
            (luts, self.budget_luts, self.infra_luts),
            (ffs, self.budget_ffs, self.infra_ffs),
            (bram, self.budget_bram_kbits, self.infra_bram_kbits),
        ):
            cap = budget - infra
            if used > 0 and cap > 0:
                need = max(need, -(-int(used) // max(1, int(cap))))
            elif used > 0:
                raise PlanError(
                    f"per-device budget leaves no room beyond infrastructure "
                    f"({used:,.0f} needed, {cap:,.0f} available per device)"
                )
        return need


def _compute_nodes(graph: LayerGraph) -> list[str]:
    return [n for n in graph.order if not isinstance(graph.nodes[n], InputNode)]


def allowed_cut_positions(graph: LayerGraph) -> list[int]:
    """Cut positions (in compute-node order) that keep residual blocks whole.

    Position ``p`` cuts between ``nodes[p-1]`` and ``nodes[p]``.  A position
    strictly between a residual adder and any of its operand producers would
    route a skip stream across chips (V503), so it is excluded; for linear
    graphs every interior position is allowed.
    """
    nodes = _compute_nodes(graph)
    index = {name: i for i, name in enumerate(nodes)}
    forbidden: set[int] = set()
    for name, node in graph.nodes.items():
        if not isinstance(node, AddNode):
            continue
        a = index[name]
        for parent in graph.parents(name):
            if parent in index:
                forbidden.update(range(index[parent] + 1, a + 1))
    return [p for p in range(1, len(nodes)) if p not in forbidden]


def _cuts_to_partition(nodes: list[str], cuts: tuple[int, ...]) -> list[list[str]]:
    bounds = [0, *cuts, len(nodes)]
    return [nodes[bounds[i] : bounds[i + 1]] for i in range(len(bounds) - 1)]


class _Audit:
    """Bounded audit-trail collector (drops beyond the limit, keeps count)."""

    def __init__(self, limit: int) -> None:
        self.limit = limit
        self.entries: list[PrunedCandidate] = []
        self.dropped = 0

    def add(self, cuts: tuple[int, ...], killed_by: str, where: str, message: str) -> None:
        if len(self.entries) < self.limit:
            self.entries.append(PrunedCandidate(cuts, killed_by, where, message))
        else:
            self.dropped += 1


def _dp_min_dfes(
    model: _CostModel,
    positions: list[int],
    audit: _Audit,
) -> tuple[tuple[int, ...], int]:
    """DP over allowed cut positions: fewest devices, then bottleneck, then lex.

    ``best[j]`` holds the optimum for covering ``nodes[:pos[j]]``; transitions
    append the segment ``[pos[i], pos[j])``.  Returns (cuts, candidates_scored).
    """
    pos = [0, *positions, len(model.nodes)]
    m = len(pos)
    # best[j]: (devices, bottleneck_util, cuts) — lexicographic minimum.
    best: list[tuple[float, float, tuple[int, ...]] | None] = [None] * m
    best[0] = (0, 0.0, ())
    scored = 0
    for j in range(1, m):
        for i in range(j - 1, -1, -1):
            prev = best[i]
            if prev is None:
                continue
            kill = model.overflow(pos[i], pos[j])
            if kill is not None:
                code, resource = kill
                audit.add(
                    (*prev[2], pos[i]) if i else prev[2],
                    code,
                    f"dfe{int(prev[0])}",
                    f"segment {model.nodes[pos[i]]}..{model.nodes[pos[j] - 1]} "
                    f"overflows the per-device {resource} budget",
                )
                # Estimates are non-negative: widening [pos[i'], pos[j]) with
                # i' < i only grows — stop scanning earlier starts.
                break
            util = model.utilization(pos[i], pos[j])
            cuts = (*prev[2], pos[i]) if i else prev[2]
            cand = (prev[0] + 1, max(prev[1], util), cuts)
            scored += 1
            if best[j] is None or cand < best[j]:
                best[j] = cand
    final = best[m - 1]
    if final is None:
        raise PlanError(
            "no feasible partition: some single atomic segment exceeds the "
            "per-device budgets (see the audit trail)"
        )
    return final[2], scored


def _branch_and_bound(
    model: _CostModel,
    graph: LayerGraph,
    boundary_set: set[int],
    audit: _Audit,
    *,
    exact_k: int | None,
    link: LinkSpec,
    fclk_mhz: float,
) -> tuple[tuple[int, ...], int]:
    """DFS over node-level cut positions with feasibility + bound pruning.

    With ``exact_k=None`` the objective is (devices, bottleneck util, cuts);
    with a fixed ``exact_k`` it is (analytic fill+steady latency, bottleneck
    util, cuts) over exactly that many devices.  Every prune is recorded.
    """
    nodes = model.nodes
    n = len(nodes)
    best: list[tuple[Any, ...] | None] = [None]
    scored = [0]

    def latency_of(cuts: tuple[int, ...]) -> int:
        timing = estimate_network_timing(
            graph,
            fclk_mhz=fclk_mhz,
            partition=_cuts_to_partition(nodes, cuts),
            link=link,
        )
        return timing.latency_cycles + timing.interval_cycles

    def dfs(start: int, cuts: tuple[int, ...], util_so_far: float) -> None:
        devices_used = len(cuts)
        # Bound: even fractional packing of the remainder cannot beat the
        # incumbent device count / reach the requested count.
        remaining_lb = model.min_devices_lower_bound(start)
        if exact_k is None:
            if best[0] is not None and devices_used + remaining_lb >= best[0][0] + 1:
                audit.add(
                    cuts,
                    "bound",
                    f"dfe{devices_used}",
                    f"lower bound {devices_used + remaining_lb} device(s) cannot "
                    f"beat the incumbent {int(best[0][0])}",
                )
                return
        else:
            left = exact_k - devices_used
            if remaining_lb > left or (n - start) < left or left <= 0:
                audit.add(
                    cuts,
                    "bound",
                    f"dfe{devices_used}",
                    f"{n - start} node(s) left cannot fill exactly {left} device(s)",
                )
                return
        for end in range(start + 1, n + 1):
            kill = model.overflow(start, end)
            if kill is not None:
                code, resource = kill
                audit.add(
                    (*cuts, end) if end < n else cuts,
                    code,
                    f"dfe{devices_used}",
                    f"segment {nodes[start]}..{nodes[end - 1]} overflows the "
                    f"per-device {resource} budget",
                )
                break  # monotone: wider segments only grow
            util = max(util_so_far, model.utilization(start, end))
            if end == n:
                if exact_k is not None and devices_used + 1 != exact_k:
                    continue
                scored[0] += 1
                cand: tuple[Any, ...]
                if exact_k is None:
                    cand = (devices_used + 1, util, cuts)
                else:
                    cand = (latency_of(cuts), util, cuts)
                if best[0] is None or cand < best[0]:
                    best[0] = cand
                continue
            if end not in boundary_set:
                audit.add(
                    (*cuts, end),
                    "V503",
                    nodes[end],
                    f"cut before {nodes[end]!r} routes a residual skip stream "
                    "across chips (§III-B6 keeps blocks on one DFE)",
                )
                continue
            dfs(end, (*cuts, end), util)

    dfs(0, (), 0.0)
    if best[0] is None:
        raise PlanError(
            "no feasible partition under the budgets"
            + (f" with exactly {exact_k} device(s)" if exact_k is not None else "")
            + " (see the audit trail)"
        )
    return best[0][2], scored[0]


def plan_partition(
    graph: LayerGraph,
    *,
    objective: str = "min-dfes",
    n_dfes: int | None = None,
    slo_fps: float | None = None,
    device: FPGASpec = STRATIX_V_5SGSD8,
    cal: ResourceCalibration = DEFAULT_RESOURCE_CAL,
    fill_cap: float = 0.8,
    link: LinkSpec = MAXRING,
    fclk_mhz: float = 105.0,
    predict: bool = True,
    n_images: int = PREDICT_IMAGES,
    audit_limit: int = 64,
) -> PartitionPlan:
    """Search the cut space and return the optimal :class:`PartitionPlan`.

    ``objective="min-dfes"`` minimizes device count under the per-device
    budgets (``device`` × ``fill_cap``) and, if given, a throughput
    ``slo_fps``; ``objective="min-latency"`` needs ``n_dfes`` and minimizes
    the predicted fill+steady latency over exactly that many devices.  The
    winner is re-scored by :func:`partition_feasibility` (it must come back
    clean) and, with ``predict=True``, replayed once for its exact timing.
    """
    if objective not in ("min-dfes", "min-latency"):
        raise ValueError(f"objective must be 'min-dfes' or 'min-latency', got {objective!r}")
    if objective == "min-latency" and (n_dfes is None or n_dfes < 1):
        raise ValueError("objective='min-latency' requires n_dfes >= 1")

    nodes = _compute_nodes(graph)
    if not nodes:
        raise PlanError(f"graph {graph.name!r} has no compute nodes to place")
    overhead = per_kernel_overhead(cal)
    infra = infrastructure_estimate(cal)
    pre_luts = [0.0]
    pre_ffs = [0.0]
    pre_bram = [0]
    for name in nodes:
        est = estimate_node(graph, name, cal).estimate + overhead
        pre_luts.append(pre_luts[-1] + est.luts)
        pre_ffs.append(pre_ffs[-1] + est.ffs)
        pre_bram.append(pre_bram[-1] + est.bram_blocks)
    model = _CostModel(
        nodes=nodes,
        pre_luts=pre_luts,
        pre_ffs=pre_ffs,
        pre_bram=pre_bram,
        infra_luts=infra.luts,
        infra_ffs=infra.ffs,
        infra_bram_kbits=infra.bram_kbits,
        budget_luts=device.luts * fill_cap,
        budget_ffs=device.ffs * fill_cap,
        budget_bram_kbits=device.bram_kbits * fill_cap,
        dev_luts=float(device.luts),
        dev_ffs=float(device.ffs),
        dev_bram_kbits=device.bram_kbits,
    )
    positions = allowed_cut_positions(graph)
    audit = _Audit(audit_limit)
    linear = not any(isinstance(node, AddNode) for node in graph.nodes.values())

    if objective == "min-dfes" and linear:
        cuts, scored = _dp_min_dfes(model, positions, audit)
    else:
        cuts, scored = _branch_and_bound(
            model,
            graph,
            set(positions),
            audit,
            exact_k=n_dfes if objective == "min-latency" else None,
            link=link,
            fclk_mhz=fclk_mhz,
        )

    partition = _cuts_to_partition(nodes, cuts)
    diags = partition_feasibility(
        graph,
        partition,
        device=device,
        cal=cal,
        fill_cap=fill_cap,
        link=link,
        fclk_mhz=fclk_mhz,
        slo_fps=slo_fps,
    )
    problems = [d for d in diags if d.severity in ("error", "warning")]
    if problems:
        for d in problems:
            audit.add(cuts, d.code, d.where, d.message)
        raise PlanError(
            "winning candidate fails static feasibility: "
            + "; ".join(f"{d.code} {d.where}: {d.message}" for d in problems)
        )

    from ..hardware.partition import partition_resources

    ledgers = [
        DeviceLedger.from_estimate(idx, group, est, device)
        for idx, (group, est) in enumerate(
            zip(partition, partition_resources(graph, partition, cal))
        )
    ]
    predicted: PredictedTiming | None = None
    if predict:
        predicted = predict_partition_timing(
            graph, partition, link=link, fclk_mhz=fclk_mhz, n_images=n_images
        )
    return PartitionPlan(
        graph_name=graph.name,
        objective=objective,
        device_name=device.name,
        fill_cap=fill_cap,
        link_name=link.name,
        fclk_mhz=fclk_mhz,
        groups=partition,
        cuts=cuts,
        ledgers=ledgers,
        predicted=predicted,
        audit=audit.entries,
        candidates_scored=scored,
        slo_fps=slo_fps,
    )


def neighbor_partitions(
    graph: LayerGraph,
    plan: PartitionPlan,
) -> list[tuple[tuple[int, ...], list[list[str]]]]:
    """Every ±1-position perturbation of the plan's cuts, as (cuts, partition).

    Each cut moves to the adjacent *allowed* position (so neighbors keep
    residual blocks whole and stay buildable/leap-eligible); perturbations
    that collide with another cut or empty a device are skipped.  This is
    the verification protocol's candidate set: simulating these must show
    the winner is no worse on the chosen objective.
    """
    nodes = _compute_nodes(graph)
    positions = allowed_cut_positions(graph)
    neighbors: list[tuple[tuple[int, ...], list[list[str]]]] = []
    seen: set[tuple[int, ...]] = {plan.cuts}
    for idx, cut in enumerate(plan.cuts):
        at = positions.index(cut)
        for step in (-1, 1):
            alt_idx = at + step
            if alt_idx < 0 or alt_idx >= len(positions):
                continue
            alt = positions[alt_idx]
            cand = tuple(sorted((*plan.cuts[:idx], alt, *plan.cuts[idx + 1 :])))
            if len(set(cand)) != len(cand) or cand in seen:
                continue
            seen.add(cand)
            neighbors.append((cand, _cuts_to_partition(nodes, cand)))
    return neighbors
