"""Static multi-DFE partition planner (§III-B6 as a compiler backend).

Turns the V501–V601 feasibility verifier into an optimizing search over
pipeline cut points: a DP over chain cut positions for linear families and
a branch-and-bound layer honoring skip-connection constraints for residual
graphs, every candidate scored statically (resource ledgers, link
bandwidth, analytic rates) and the winner's timing predicted *exactly* by
a value-independent abstract replay.
"""

from .plan import (
    DeviceLedger,
    PartitionPlan,
    PlanError,
    PredictedTiming,
    PrunedCandidate,
)
from .replay import PREDICT_IMAGES, predict_partition_timing
from .search import allowed_cut_positions, neighbor_partitions, plan_partition

__all__ = [
    "DeviceLedger",
    "PartitionPlan",
    "PlanError",
    "PredictedTiming",
    "PrunedCandidate",
    "PREDICT_IMAGES",
    "predict_partition_timing",
    "allowed_cut_positions",
    "neighbor_partitions",
    "plan_partition",
]
