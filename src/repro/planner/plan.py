"""Typed partition plans: the planner's output contract.

A :class:`PartitionPlan` is everything a deployment needs to reproduce the
planner's decision: the winning cuts, the per-device resource ledger
(infrastructure plus kernels, with utilizations against the target FPGA),
the *exact* predicted steady-state interval and fill latency (from a
value-independent abstract replay — not the ~5%-accurate analytic model),
and an audit trail of pruned candidates with the verifier code that killed
each one.  Plans serialize to the ``repro-plan/1`` schema and feed
``repro check``, ``repro simulate`` and ``repro fleet --mix`` unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:
    from ..hardware.device import FPGASpec
    from ..hardware.resources import ResourceEstimate

__all__ = [
    "DeviceLedger",
    "PrunedCandidate",
    "PredictedTiming",
    "PartitionPlan",
    "PlanError",
]


class PlanError(RuntimeError):
    """No feasible partition exists under the given budgets/SLO."""


@dataclass(frozen=True, slots=True)
class DeviceLedger:
    """Resource accounting for one DFE of a plan."""

    index: int
    nodes: tuple[str, ...]
    luts: float
    ffs: float
    bram_blocks: int
    bram_kbits: float
    utilization: tuple[tuple[str, float], ...]  # ("lut"|"ff"|"bram", fraction)

    @property
    def max_utilization(self) -> float:
        return max(frac for _, frac in self.utilization)

    @classmethod
    def from_estimate(
        cls, index: int, nodes: list[str], est: "ResourceEstimate", device: "FPGASpec"
    ) -> "DeviceLedger":
        return cls(
            index=index,
            nodes=tuple(nodes),
            luts=est.luts,
            ffs=est.ffs,
            bram_blocks=est.bram_blocks,
            bram_kbits=est.bram_kbits,
            utilization=(
                ("lut", est.luts / device.luts),
                ("ff", est.ffs / device.ffs),
                ("bram", est.bram_kbits / device.bram_kbits),
            ),
        )

    def as_dict(self) -> dict[str, Any]:
        return {
            "index": self.index,
            "nodes": list(self.nodes),
            "luts": self.luts,
            "ffs": self.ffs,
            "bram_blocks": self.bram_blocks,
            "bram_kbits": self.bram_kbits,
            "utilization": {name: frac for name, frac in self.utilization},
            "max_utilization": self.max_utilization,
        }


@dataclass(frozen=True, slots=True)
class PrunedCandidate:
    """One candidate the search rejected, and the exact reason.

    ``killed_by`` is a verifier diagnostic code (V503 for a cut through a
    residual block, V701/V702/V703 for a device-budget overflow, V704 for
    an SLO miss) or ``"bound"`` for a branch-and-bound lower-bound prune.
    """

    cuts: tuple[int, ...]
    killed_by: str
    where: str
    message: str

    def as_dict(self) -> dict[str, Any]:
        return {
            "cuts": list(self.cuts),
            "killed_by": self.killed_by,
            "where": self.where,
            "message": self.message,
        }


@dataclass(frozen=True, slots=True)
class PredictedTiming:
    """Exact timing of the winner, from the value-independent replay.

    ``interval`` and ``latency_cycles`` are *bit-equal* to what
    ``simulate(graph, images, partition=...)`` measures with the same
    image count (leap/fast bit-identity): kernel scheduling never depends
    on data values, so a zero-batch replay with stubbed convolution
    arithmetic walks the identical cycle schedule.  ``period`` is the
    count-independent exact completion period when the run reached one.
    """

    n_images: int
    replay_cycles: int
    latency_cycles: int
    completion_cycles: tuple[int, ...]
    interval: float | None
    period: int | None
    segments: tuple[tuple[str, float], ...] = ()  # (label, mean cycles)

    def as_dict(self) -> dict[str, Any]:
        return {
            "n_images": self.n_images,
            "replay_cycles": self.replay_cycles,
            "latency_cycles": self.latency_cycles,
            "completion_cycles": list(self.completion_cycles),
            "interval": self.interval,
            "period": self.period,
            "segments": [
                {"label": label, "mean_cycles": mean} for label, mean in self.segments
            ],
        }


@dataclass(slots=True)
class PartitionPlan:
    """The planner's winner plus everything needed to audit the choice."""

    graph_name: str
    objective: str  # "min-dfes" | "min-latency"
    device_name: str
    fill_cap: float
    link_name: str
    fclk_mhz: float
    groups: list[list[str]]
    cuts: tuple[int, ...]  # node-index start of each device but the first
    ledgers: list[DeviceLedger]
    predicted: PredictedTiming | None
    audit: list[PrunedCandidate] = field(default_factory=list)
    candidates_scored: int = 0
    slo_fps: float | None = None

    @property
    def n_dfes(self) -> int:
        return len(self.groups)

    @property
    def max_utilization(self) -> float:
        return max(ledger.max_utilization for ledger in self.ledgers)

    def as_dict(self) -> dict[str, Any]:
        return {
            "schema": "repro-plan/1",
            "graph": self.graph_name,
            "objective": self.objective,
            "device": self.device_name,
            "fill_cap": self.fill_cap,
            "link": self.link_name,
            "fclk_mhz": self.fclk_mhz,
            "slo_fps": self.slo_fps,
            "n_dfes": self.n_dfes,
            "cuts": list(self.cuts),
            "groups": [list(group) for group in self.groups],
            "max_utilization": self.max_utilization,
            "ledgers": [ledger.as_dict() for ledger in self.ledgers],
            "predicted": self.predicted.as_dict() if self.predicted else None,
            "candidates_scored": self.candidates_scored,
            "audit": [pruned.as_dict() for pruned in self.audit],
        }

    def render(self) -> str:
        lines = [
            f"plan {self.graph_name}: {self.n_dfes} DFE(s) on {self.device_name} "
            f"(objective {self.objective}, fill cap {self.fill_cap:.0%}, "
            f"{self.candidates_scored} candidate(s) scored, "
            f"{len(self.audit)} pruned)"
        ]
        for ledger in self.ledgers:
            utils = ", ".join(f"{name} {frac:.1%}" for name, frac in ledger.utilization)
            lines.append(
                f"  dfe{ledger.index}: {len(ledger.nodes)} kernel(s) "
                f"[{ledger.nodes[0]} .. {ledger.nodes[-1]}] — {utils}"
            )
        if self.predicted is not None:
            p = self.predicted
            interval = f"{p.interval:,.1f}" if p.interval is not None else "n/a"
            period = f"{p.period:,}" if p.period is not None else "n/a"
            lines.append(
                f"  predicted: interval {interval} cycles/image (exact period {period}), "
                f"fill latency {p.latency_cycles:,} cycles "
                f"(replay of {p.n_images} images, {p.replay_cycles:,} cycles)"
            )
        return "\n".join(lines)
