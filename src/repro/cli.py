"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``reproduce [--quick] [EXP_ID ...]``
    Regenerate the paper's tables/figures (default: all of them).
``report NETWORK [--size N] [--device stratix5|stratix10]``
    Full design report (resources / partition / timing / power / GPU
    baseline) for ``vgg``, ``alexnet`` or ``resnet18``.
``simulate [--size N] [--images M] [--mode MODE] [--json] [--prom F] [--snapshot F]``
    Train nothing, build a tiny random-threshold network, stream images
    through the cycle-accurate simulator and print the pipeline waterfall
    (or, with ``--json``, a machine-readable telemetry snapshot).
    ``--mode`` picks the scheduler — ``exhaustive``, ``fast`` (default) or
    ``leap`` — all bit-identical, fastest last.
``trace [--size N] [--images M] [--out trace.json] [--force]``
    Stream a network with event tracing enabled and write the full
    cycle-exact event log as Chrome-trace JSON (load it at
    https://ui.perfetto.dev or chrome://tracing).
``top [--size N] [--images M] [--every N]``
    Live dashboard: kernel utilization bars, FIFO occupancy and
    throughput, re-rendered while the simulation runs in-process.
``load [--rate FPS] [--process fixed|poisson] [--sweep R ...] [--json]``
    Open-loop load generation: stream images at a target offered rate
    (deterministic seeded arrivals), report offered vs achieved FPS and
    exact p50/p95/p99/max latency, optionally gate on a p99 SLO
    (``--slo-p99-cycles``, exits non-zero on violation) or sweep a rate
    ladder into a FINN-style latency-throughput JSON curve.
``stats [--network vgg|resnet18] [--skip-capacity N]``
    Bottleneck attribution: kernels ranked by stall-adjusted utilization,
    the starving/back-pressuring edge for each, and the paper summary
    (II, FPS, link budget, BRAM waste).  ``--skip-capacity`` injects
    undersized skip FIFOs to demonstrate deadlock attribution.
``check [TOPOLOGY ...] [--multi-dfe] [--strict] [--graph-only] [--json]``
    Statically verify pipelines without simulating a cycle: graph
    well-formedness, stream bitwidth contracts, §III-B5 skip buffer
    sizing (exact solver), link feasibility, BRAM geometry.  Topologies
    are ``name[:size[:width]]`` with name in vgg/alexnet/resnet18.
    ``--json`` emits the machine-readable ``repro-check/1`` reports;
    ``--plan`` verifies the partition planner's winner instead of the
    greedy ``--multi-dfe`` cut.
``plan TOPOLOGY [--objective min-dfes|min-latency] [--fill-cap F]``
    Static partition planning: search the multi-DFE cut space (DP for
    chains, branch-and-bound under skip constraints), score candidates
    with the verifier's feasibility rules and resource ledgers, and emit
    the winning ``repro-plan/1`` plan with its exact predicted interval.
    ``--check`` re-verifies the winner strictly; ``--simulate`` streams
    images through the planned partition and asserts the measured
    interval equals the prediction bit-for-bit.
``perf report [--trajectory F] [--markdown|--html|--json] [--out F] [--force]``
    Render the full perf trajectory in ``BENCH_streaming.json`` — every
    case across every recorded revision — as an ANSI sparkline table
    (default), markdown, HTML, or the ``repro-perf-trajectory/1`` JSON.
``perf diff [--baseline F] [--report F] [--strict] [--against prev|best]``
    The perf-regression gate: diff each case's newest recording against
    its previous (or best) one under the shared strict/loose threshold
    policy (5% / 40%), or diff two ``repro-perf/1`` plugin reports on
    wall time and peak RSS.  Exits non-zero naming the worst offender.
``list``
    List available experiment ids.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

__all__ = ["main"]


def _cmd_list(_args: argparse.Namespace) -> int:
    from .eval import EXPERIMENTS

    for exp_id in EXPERIMENTS:
        print(exp_id)
    return 0


def _cmd_reproduce(args: argparse.Namespace) -> int:
    from .eval import EXPERIMENTS, run_experiment

    exp_ids = args.experiments or list(EXPERIMENTS)
    for exp_id in exp_ids:
        result = run_experiment(exp_id, quick=args.quick)
        print(result.render())
        print()
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from .hardware import STRATIX_10_PROJECTION, STRATIX_V_5SGSD8
    from .hardware.report import build_design_report
    from .models import direct_alexnet_graph, direct_resnet18_graph, direct_vgg_graph

    device = STRATIX_10_PROJECTION if args.device == "stratix10" else STRATIX_V_5SGSD8
    if args.network == "vgg":
        graph = direct_vgg_graph(args.size or 32, pool_to=4)
    elif args.network == "alexnet":
        graph = direct_alexnet_graph(args.size or 224)
    elif args.network == "resnet18":
        graph = direct_resnet18_graph(args.size or 224)
    else:  # pragma: no cover - argparse choices guard this
        raise ValueError(args.network)
    print(build_design_report(graph, device=device).render())
    return 0


def _tiny_vgg(args: argparse.Namespace):
    """The CLI's stock tiny network + input batch (simulate/trace/top)."""
    from .models import direct_vgg_graph

    size = args.size
    if size % 8:
        raise ValueError(f"size must be divisible by 8, got {size}")
    graph = direct_vgg_graph(size, width=0.0625, classes=4)
    rng = np.random.default_rng(args.seed)
    images = rng.integers(0, 4, size=(args.images, size, size, 3))
    return graph, images


def _cmd_simulate(args: argparse.Namespace) -> int:
    import json

    from .dataflow import simulate
    from .dataflow.tracing import analyze_run, render_waterfall

    try:
        graph, images = _tiny_vgg(args)
    except ValueError as exc:
        print(exc, file=sys.stderr)
        return 2

    telemetry = None
    if args.json or args.prom or args.snapshot:
        from .telemetry import PeriodicExporter, Telemetry, run_manifest

        telemetry = Telemetry(sample_every=args.every)
        telemetry.manifest = run_manifest(
            graph, seed=args.seed, images=args.images, fclk_mhz=105.0
        )
        if args.prom or args.snapshot:
            try:
                telemetry.add_listener(
                    PeriodicExporter(
                        prom_path=args.prom, json_path=args.snapshot, force=args.force
                    )
                )
            except FileExistsError as exc:
                print(exc, file=sys.stderr)
                return 2

    arrival_cycles = None
    if args.rate is not None:
        from .telemetry.loadgen import make_schedule

        arrival_cycles = make_schedule(
            int(images.shape[0]), args.rate, args.process, args.seed
        ).cycles

    run = simulate(
        graph, images, telemetry=telemetry, mode=args.mode, arrival_cycles=arrival_cycles
    )
    rep = run.leap_report
    if rep is not None and rep.demoted:
        print(
            f"warning: leap demoted to the fast path: {rep.demotion_reason}",
            file=sys.stderr,
        )

    if args.json:
        assert telemetry is not None
        payload = telemetry.export_json()
        stats: dict[str, object] = {
            "cycles": run.cycles,
            "latency_cycles": run.latency_cycles,
            "images": int(images.shape[0]),
            "initiation_interval_cycles": telemetry.last.get("initiation"),
        }
        interval = run.run.steady_state_interval
        if interval is not None:
            stats["steady_state_interval_cycles"] = interval
            stats["fps"] = run.pipeline.fclk_mhz * 1e6 / interval
        payload["stats"] = stats
        print(json.dumps(payload, indent=2))
        return 0

    print(
        f"{args.images} image(s) through {graph.name}: {run.cycles:,} cycles; "
        f"latency {run.latency_cycles:,}"
    )
    interval = run.run.steady_state_interval
    if interval is not None:
        print(f"steady-state interval: {interval:,.0f} cycles/image")
    if run.leap_report is not None:
        rep = run.leap_report
        if rep.leaps:
            print(
                f"leap: skipped {rep.leaped_cycles:,} cycles in {rep.leaps} jump(s) "
                f"({rep.windows} period(s) of {rep.period:,} cycles)"
            )
        elif not rep.demoted:  # demotion already warned on stderr above
            print("leap: no steady-state window found (ran on the fast path)")
    trace = analyze_run(run.run)
    print(render_waterfall(trace))
    if args.prom:
        print(f"wrote Prometheus exposition to {args.prom}")
    if args.snapshot:
        print(f"wrote telemetry snapshot to {args.snapshot}")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from pathlib import Path

    from .dataflow import Tracer, simulate
    from .dataflow.tracing import analyze_trace, render_waterfall

    try:
        graph, images = _tiny_vgg(args)
    except ValueError as exc:
        print(exc, file=sys.stderr)
        return 2
    if Path(args.out).exists() and not args.force:
        print(f"{args.out} exists; pass --force to overwrite", file=sys.stderr)
        return 2
    tracer = Tracer()
    run = simulate(graph, images, fast=not args.exhaustive, trace=tracer)
    path = tracer.write_chrome_trace(args.out)
    print(
        f"{args.images} image(s) through {graph.name}: {run.cycles:,} cycles; "
        f"latency {run.latency_cycles:,}"
    )
    print(render_waterfall(analyze_trace(tracer)))
    print(
        f"wrote {tracer.event_count():,} events ({path.stat().st_size:,} bytes) to {path} — "
        "open in https://ui.perfetto.dev"
    )
    return 0


def _cmd_top(args: argparse.Namespace) -> int:
    from .dataflow import simulate
    from .telemetry import Dashboard, Telemetry

    try:
        graph, images = _tiny_vgg(args)
    except ValueError as exc:
        print(exc, file=sys.stderr)
        return 2
    telemetry = Telemetry(sample_every=args.every)
    telemetry.add_listener(
        Dashboard(ansi=False if args.plain else None, min_interval_s=args.refresh)
    )
    run = simulate(graph, images, telemetry=telemetry)
    print(
        f"\n{args.images} image(s) through {graph.name}: {run.cycles:,} cycles; "
        f"latency {run.latency_cycles:,}"
    )
    return 0


def _cmd_load(args: argparse.Namespace) -> int:
    import json
    from pathlib import Path

    from .telemetry.loadgen import run_load, sweep

    try:
        graph, images = _tiny_vgg(args)
    except ValueError as exc:
        print(exc, file=sys.stderr)
        return 2
    if args.out and Path(args.out).exists() and not args.force:
        print(f"{args.out} exists; pass --force to overwrite", file=sys.stderr)
        return 2

    if args.sweep:
        payload = sweep(
            graph,
            images,
            args.sweep,
            process=args.process,
            seed=args.seed,
            fast=not args.exhaustive,
            max_cycles=args.max_cycles,
        )
        text = json.dumps(payload, indent=2)
        if args.out:
            Path(args.out).write_text(text + "\n")
            print(f"wrote {len(payload['points'])}-point latency-throughput sweep to {args.out}")
        else:
            print(text)
        return 0

    if args.rate is None:
        print("repro load needs --rate FPS (or --sweep R1 R2 ...)", file=sys.stderr)
        return 2
    result = run_load(
        graph,
        images,
        rate_fps=args.rate,
        process=args.process,
        seed=args.seed,
        fast=not args.exhaustive,
        max_cycles=args.max_cycles,
    )
    if args.json:
        text = json.dumps(result.as_dict(), indent=2)
        if args.out:
            Path(args.out).write_text(text + "\n")
            print(f"wrote load result to {args.out}")
        else:
            print(text)
    else:
        print(result.render())
    if args.slo_p99_cycles is not None and result.slo_violated(args.slo_p99_cycles):
        p99 = result.report.sojourn.p99
        shown = f"{p99:,}" if p99 is not None else "n/a"
        print(
            f"SLO VIOLATION: p99 sojourn latency {shown} cycles "
            f"exceeds --slo-p99-cycles {args.slo_p99_cycles:,}"
            + (" (run aborted)" if result.aborted else ""),
            file=sys.stderr,
        )
        return 1
    return 1 if result.aborted else 0


def _cmd_fleet(args: argparse.Namespace) -> int:
    import json
    from pathlib import Path

    from .fleet import (
        FleetConfig,
        ReplicaSpec,
        default_rate_ladder,
        fleet_capacity_fps,
        fleet_sweep,
        min_replicas_for_slo,
        parse_mix,
        simulate_fleet,
    )

    try:
        if args.mix:
            specs = parse_mix(args.mix)
        else:
            specs = [ReplicaSpec(args.network, args.size, width=args.width)] * args.replicas
    except ValueError as exc:
        print(exc, file=sys.stderr)
        return 2
    if args.out and Path(args.out).exists() and not args.force:
        print(f"{args.out} exists; pass --force to overwrite", file=sys.stderr)
        return 2

    def emit(payload: dict, what: str) -> None:
        text = json.dumps(payload, indent=2)
        if args.out:
            Path(args.out).write_text(text + "\n")
            print(f"wrote {what} to {args.out}")
        else:
            print(text)

    if args.plan_dfes:
        from .fleet import plan_fleet_dfes
        from .planner import PlanError

        try:
            answer = plan_fleet_dfes(specs, fill_cap=args.fill_cap)
        except PlanError as exc:
            print(f"fleet --plan-dfes: {exc}", file=sys.stderr)
            return 1
        if args.json or args.out:
            emit(answer, "fleet DFE plan")
        else:
            for rep in answer["replicas"]:
                print(
                    f"  {rep['label']}: {rep['n_dfes']} DFE(s), "
                    f"peak utilization {rep['max_utilization']:.1%}"
                )
            verdict = "fits" if answer["fits_node"] else "DOES NOT FIT"
            print(
                f"fleet of {len(specs)} replica(s): {answer['total_dfes']} DFE(s) total — "
                f"{verdict} one {answer['node_dfes']}-DFE MPC-X node "
                f"(fill cap {answer['fill_cap']:.0%})"
            )
        return 0 if answer["fits_node"] else 1

    if args.find_capacity:
        if args.rate is None:
            print("--find-capacity needs --rate FPS (the offered load)", file=sys.stderr)
            return 2
        if args.slo_p99_cycles is None:
            print("--find-capacity needs --slo-p99-cycles (the SLO)", file=sys.stderr)
            return 2
        answer = min_replicas_for_slo(
            specs[0],
            args.rate,
            args.images,
            args.slo_p99_cycles,
            policy=args.policy,
            max_replicas=args.max_replicas,
            seed=args.seed,
            process=args.process,
            workers=args.workers,
        )
        if args.json or args.out:
            emit(answer, "capacity answer")
        else:
            n = answer["min_replicas"]
            verdict = (
                f"{n} replica(s) of {specs[0].label()}"
                if n is not None
                else f"NOT satisfiable within {args.max_replicas} replica(s)"
            )
            print(
                f"capacity [{args.policy}] p99 sojourn <= {args.slo_p99_cycles:,} cycles "
                f"at {args.rate:,.1f} FPS: {verdict}"
            )
            for step in answer["trail"]:
                p99 = step["p99_sojourn_cycles"]
                shown = f"{p99:,}" if p99 is not None else "n/a"
                mark = "ok" if step["satisfied"] else "MISS"
                print(f"  R={step['replicas']}: p99 sojourn {shown} cycles [{mark}]")
        return 0 if answer["min_replicas"] is not None else 1

    if args.sweep is not None:
        rates = args.sweep or default_rate_ladder(specs)
        policies = args.policies or [args.policy]
        config = FleetConfig(
            replicas=specs,
            rate_fps=rates[0],
            n_requests=args.images,
            policy=policies[0],
            process="poisson" if policies[0] == "static" else args.process,
            seed=args.seed,
            batch=args.batch,
            max_cycles=args.max_cycles,
            workers=args.workers,
        )
        payload = fleet_sweep(config, rates, policies)
        emit(payload, f"{len(rates)}-point fleet frontier ({', '.join(policies)})")
        return 0

    if args.rate is None:
        rate = 0.5 * fleet_capacity_fps(specs)
    else:
        rate = args.rate
    try:
        config = FleetConfig(
            replicas=specs,
            rate_fps=rate,
            n_requests=args.images,
            policy=args.policy,
            process="poisson" if args.policy == "static" else args.process,
            seed=args.seed,
            batch=args.batch,
            max_cycles=args.max_cycles,
            workers=args.workers,
        )
    except ValueError as exc:
        print(exc, file=sys.stderr)
        return 2
    report = simulate_fleet(config)
    if args.json or args.out:
        emit(report.as_dict(), "fleet report")
    else:
        print(report.render())
    if args.slo_p99_cycles is not None and report.slo_violated(args.slo_p99_cycles):
        p99 = report.aggregate["sojourn_cycles"]["p99"]
        shown = f"{p99:,}" if p99 is not None else "n/a"
        print(
            f"SLO VIOLATION: fleet p99 sojourn {shown} cycles "
            f"exceeds --slo-p99-cycles {args.slo_p99_cycles:,}",
            file=sys.stderr,
        )
        return 1
    return 0 if report.aggregate["conserved"] else 1


def _cmd_stats(args: argparse.Namespace) -> int:
    from .models import direct_resnet18_graph, direct_vgg_graph
    from .nn.graph import AddNode
    from .telemetry import run_attributed

    size = args.size
    if args.network == "vgg":
        if size % 8:
            print(f"size must be divisible by 8, got {size}", file=sys.stderr)
            return 2
        graph = direct_vgg_graph(size, width=args.width, classes=4)
    else:
        graph = direct_resnet18_graph(size, width=args.width, classes=4, stages=[(64, 1, 1)])
    rng = np.random.default_rng(args.seed)
    images = rng.integers(0, 4, size=(args.images, size, size, 3))

    skip_sizing: str | dict[str, int] = "exact"
    if args.skip_capacity is not None:
        adds = [n for n, node in graph.nodes.items() if isinstance(node, AddNode)]
        if not adds:
            print(
                f"--skip-capacity needs a residual topology; {graph.name} has no adders",
                file=sys.stderr,
            )
            return 2
        skip_sizing = {n: args.skip_capacity for n in adds}

    report = run_attributed(
        graph,
        images,
        skip_sizing=skip_sizing,
        max_cycles=args.max_cycles,
        fast=not args.exhaustive,
    )
    print(report.render())
    return 1 if report.aborted else 0


DEFAULT_CHECK_TOPOLOGIES = ["vgg:16:0.0625", "vgg:32:0.25", "alexnet:64:0.25", "resnet18:32:0.25"]


def _check_graph(name: str, size: int | None, width: float | None):
    from .models import direct_alexnet_graph, direct_resnet18_graph, direct_vgg_graph

    if name == "vgg":
        return direct_vgg_graph(size or 32, width=width or 1.0, classes=4)
    if name == "alexnet":
        return direct_alexnet_graph(size or 224, width=width or 1.0)
    if name == "resnet18":
        return direct_resnet18_graph(size or 224, width=width or 1.0)
    raise ValueError(f"unknown network {name!r} (want vgg, alexnet or resnet18)")


def _parse_topology(spec: str) -> tuple[str, int | None, float | None]:
    parts = spec.split(":")
    name = parts[0]
    size = int(parts[1]) if len(parts) > 1 and parts[1] else None
    width = float(parts[2]) if len(parts) > 2 and parts[2] else None
    return name, size, width


def _cmd_check(args: argparse.Namespace) -> int:
    import json
    from pathlib import Path

    from .dataflow.verify import verify

    specs = args.topologies or DEFAULT_CHECK_TOPOLOGIES
    if args.out and Path(args.out).exists() and not args.force:
        print(f"{args.out} exists; pass --force to overwrite", file=sys.stderr)
        return 2
    n_errors = n_warnings = 0
    reports = []
    for spec in specs:
        name, size, width = _parse_topology(spec)
        try:
            graph = _check_graph(name, size, width)
        except ValueError as exc:
            print(f"check {spec}: {exc}", file=sys.stderr)
            return 2
        partition = None
        if args.plan:
            from .planner import PlanError, plan_partition

            try:
                plan = plan_partition(graph, fill_cap=args.fill_cap, predict=False)
            except PlanError as exc:
                print(f"check {spec}: {exc}", file=sys.stderr)
                return 2
            partition = plan.groups
        elif args.multi_dfe:
            from .hardware.partition import partition_network

            partition = partition_network(graph).groups
        report = verify(
            graph,
            partition=partition,
            exact=args.exact,
            build=not args.graph_only,
        )
        if args.json or args.out:
            reports.append(report.as_dict())
        else:
            print(report.render(show_info=not args.no_info))
            print()
        n_errors += len(report.errors)
        n_warnings += len(report.warnings)
    if args.json or args.out:
        payload = {"schema": "repro-check/1", "reports": reports}
        text = json.dumps(payload, indent=2)
        if args.out:
            Path(args.out).write_text(text + "\n")
            print(f"wrote {len(reports)} check report(s) to {args.out}")
        else:
            print(text)
    if n_errors or (args.strict and n_warnings):
        return 1
    return 0


def _cmd_plan(args: argparse.Namespace) -> int:
    import json
    from pathlib import Path

    from .planner import PlanError, neighbor_partitions, plan_partition

    name, size, width = _parse_topology(args.topology)
    try:
        graph = _check_graph(name, size, width)
    except ValueError as exc:
        print(f"plan {args.topology}: {exc}", file=sys.stderr)
        return 2
    if args.out and Path(args.out).exists() and not args.force:
        print(f"{args.out} exists; pass --force to overwrite", file=sys.stderr)
        return 2
    if args.device == "stratix10":
        from .hardware.device import STRATIX_10_PROJECTION as device
    else:
        from .hardware.device import STRATIX_V_5SGSD8 as device

    try:
        plan = plan_partition(
            graph,
            objective=args.objective,
            n_dfes=args.dfes,
            slo_fps=args.slo_fps,
            device=device,
            fill_cap=args.fill_cap,
        )
    except PlanError as exc:
        print(f"plan {args.topology}: {exc}", file=sys.stderr)
        return 1

    rc = 0
    if args.check:
        from .dataflow.verify import verify

        report = verify(graph, partition=plan.groups)
        if not (args.json or args.out):
            print(report.render(show_info=False))
        if report.errors or report.warnings:
            print(
                f"plan {args.topology}: winner FAILED strict re-verification",
                file=sys.stderr,
            )
            rc = 1
    if args.simulate and rc == 0:
        from .dataflow import simulate

        assert plan.predicted is not None
        spec = graph.input_spec
        rng = np.random.default_rng(args.seed)
        images = rng.integers(
            0, 4, size=(plan.predicted.n_images, spec.height, spec.width, spec.channels)
        )
        run = simulate(graph, images, partition=plan.groups, mode="leap")
        measured = run.steady_state_interval
        predicted = plan.predicted.interval
        exact = (
            measured == predicted
            and run.latency_cycles == plan.predicted.latency_cycles
        )
        if not (args.json or args.out):
            shown = f"{measured:,.1f}" if measured is not None else "n/a"
            print(
                f"  simulated: interval {shown} cycles/image, "
                f"latency {run.latency_cycles:,} cycles "
                f"[{'exact match' if exact else 'MISMATCH'}]"
            )
        if not exact:
            print(
                f"plan {args.topology}: simulated timing diverged from prediction "
                f"(interval {measured} vs {predicted}, "
                f"latency {run.latency_cycles} vs {plan.predicted.latency_cycles})",
                file=sys.stderr,
            )
            rc = 1
    if args.neighbors and rc == 0:
        from .dataflow import simulate

        assert plan.predicted is not None
        spec = graph.input_spec
        rng = np.random.default_rng(args.seed)
        images = rng.integers(
            0, 4, size=(plan.predicted.n_images, spec.height, spec.width, spec.channels)
        )
        for cuts, partition in neighbor_partitions(graph, plan):
            run = simulate(graph, images, partition=partition, mode="leap")
            interval = run.steady_state_interval
            winner = plan.predicted.interval
            worse = interval is None or winner is None or interval >= winner
            if not (args.json or args.out):
                shown = f"{interval:,.1f}" if interval is not None else "n/a"
                print(
                    f"  neighbor cuts={list(cuts)}: interval {shown} "
                    f"[{'dominated' if worse else 'BEATS WINNER'}]"
                )
            if not worse:
                print(
                    f"plan {args.topology}: neighbor {list(cuts)} beats the winner "
                    f"({interval} < {winner})",
                    file=sys.stderr,
                )
                rc = 1

    if args.json or args.out:
        text = json.dumps(plan.as_dict(), indent=2)
        if args.out:
            Path(args.out).write_text(text + "\n")
            print(f"wrote plan to {args.out}")
        else:
            print(text)
    else:
        print(plan.render())
        if args.audit:
            for pruned in plan.audit:
                print(
                    f"  pruned cuts={list(pruned.cuts)}: {pruned.killed_by} "
                    f"at {pruned.where} — {pruned.message}"
                )
    return rc


def _cmd_perf_report(args: argparse.Namespace) -> int:
    import json
    from pathlib import Path

    from .perfwatch import (
        PerfDataError,
        default_trajectory_path,
        load_trajectory,
        render_html,
        render_markdown,
        render_table,
        trajectory_payload,
        validate_trajectory,
    )

    path = Path(args.trajectory) if args.trajectory else default_trajectory_path()
    try:
        entries = load_trajectory(path)
    except PerfDataError as exc:
        print(f"perf report: {exc}", file=sys.stderr)
        return 2
    for problem in validate_trajectory(entries):
        print(f"perf report: warning: {problem}", file=sys.stderr)
    if args.out and Path(args.out).exists() and not args.force:
        print(f"{args.out} exists; pass --force to overwrite", file=sys.stderr)
        return 2

    if args.json:
        text = json.dumps(trajectory_payload(entries), indent=2)
    elif args.html:
        text = render_html(entries)
    elif args.markdown:
        text = render_markdown(entries)
    else:
        text = render_table(entries)
    if args.out:
        Path(args.out).write_text(text if text.endswith("\n") else text + "\n")
        print(f"wrote perf trajectory report to {args.out}")
    else:
        print(text)
    return 0


def _cmd_perf_diff(args: argparse.Namespace) -> int:
    import json
    from pathlib import Path

    from .perfwatch import (
        PerfDataError,
        PerfReport,
        default_trajectory_path,
        diff_reports,
        diff_trajectory,
        load_trajectory,
        validate_trajectory,
    )

    strict = True if args.strict else None  # None defers to REPRO_BENCH_STRICT
    try:
        if args.report:
            if not args.baseline:
                print(
                    "perf diff --report needs --baseline (a repro-perf/1 report to diff against)",
                    file=sys.stderr,
                )
                return 2
            result = diff_reports(
                PerfReport.load(args.report), PerfReport.load(args.baseline), strict=strict
            )
        else:
            path = Path(args.baseline) if args.baseline else default_trajectory_path()
            entries = load_trajectory(path)
            problems = validate_trajectory(entries)
            if problems:
                for problem in problems:
                    print(f"perf diff: {problem}", file=sys.stderr)
                print(f"perf diff: trajectory {path} is malformed", file=sys.stderr)
                return 2
            result = diff_trajectory(entries, strict=strict, against=args.against)
    except PerfDataError as exc:
        print(f"perf diff: {exc}", file=sys.stderr)
        return 2

    if args.out and Path(args.out).exists() and not args.force:
        print(f"{args.out} exists; pass --force to overwrite", file=sys.stderr)
        return 2
    if args.json or args.out:
        text = json.dumps(result.as_dict(), indent=2)
        if args.out:
            Path(args.out).write_text(text + "\n")
            print(f"wrote perf diff to {args.out}")
        else:
            print(text)
    else:
        print(result.render())
    if not result.ok:
        print(f"PERF REGRESSION: {result.worst.violation}", file=sys.stderr)
        return 1
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Streaming QNN-on-FPGA reproduction (Baskin et al., IPPS 2018)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_list = sub.add_parser("list", help="list experiment ids")
    p_list.set_defaults(func=_cmd_list)

    p_rep = sub.add_parser("reproduce", help="regenerate paper tables/figures")
    p_rep.add_argument("experiments", nargs="*", help="experiment ids (default: all)")
    p_rep.add_argument("--quick", action="store_true", help="skip training-based rows")
    p_rep.set_defaults(func=_cmd_reproduce)

    p_report = sub.add_parser("report", help="design report for a network")
    p_report.add_argument("network", choices=["vgg", "alexnet", "resnet18"])
    p_report.add_argument("--size", type=int, default=None, help="input resolution")
    p_report.add_argument("--device", choices=["stratix5", "stratix10"], default="stratix5")
    p_report.set_defaults(func=_cmd_report)

    p_sim = sub.add_parser("simulate", help="cycle-simulate a tiny network")
    p_sim.add_argument("--size", type=int, default=16)
    p_sim.add_argument("--images", type=int, default=1)
    p_sim.add_argument("--seed", type=int, default=0)
    p_sim.add_argument(
        "--mode",
        choices=["exhaustive", "fast", "leap"],
        default="fast",
        help="scheduler: exhaustive tick loop, park/wake fast path, or "
        "steady-state leap (bit-identical results; see DESIGN.md §4.6)",
    )
    p_sim.add_argument(
        "--rate",
        type=float,
        default=None,
        help="open-loop arrivals at this offered FPS instead of back-to-back "
        "streaming (note: an open-loop source demotes --mode leap)",
    )
    p_sim.add_argument(
        "--process",
        choices=["fixed", "poisson"],
        default="fixed",
        help="arrival process for --rate (poisson draws seeded exponential gaps)",
    )
    p_sim.add_argument(
        "--json",
        action="store_true",
        help="print a machine-readable telemetry snapshot instead of the waterfall",
    )
    p_sim.add_argument(
        "--prom", default=None, help="write the Prometheus text exposition to this file"
    )
    p_sim.add_argument(
        "--snapshot", default=None, help="write the JSON telemetry snapshot to this file"
    )
    p_sim.add_argument(
        "--every", type=int, default=256, help="telemetry sample cadence in simulated cycles"
    )
    p_sim.add_argument(
        "--force", action="store_true", help="overwrite existing --prom/--snapshot files"
    )
    p_sim.set_defaults(func=_cmd_simulate)

    p_trace = sub.add_parser(
        "trace", help="cycle-simulate with event tracing and write Perfetto JSON"
    )
    p_trace.add_argument("--size", type=int, default=16)
    p_trace.add_argument("--images", type=int, default=2)
    p_trace.add_argument("--seed", type=int, default=0)
    p_trace.add_argument("--out", default="trace.json", help="output Chrome-trace path")
    p_trace.add_argument(
        "--exhaustive",
        action="store_true",
        help="trace the exhaustive reference scheduler instead of the fast path",
    )
    p_trace.add_argument(
        "--force", action="store_true", help="overwrite an existing --out file"
    )
    p_trace.set_defaults(func=_cmd_trace)

    p_top = sub.add_parser(
        "top", help="live dashboard over an in-process simulation"
    )
    p_top.add_argument("--size", type=int, default=16)
    p_top.add_argument("--images", type=int, default=2)
    p_top.add_argument("--seed", type=int, default=0)
    p_top.add_argument(
        "--every", type=int, default=256, help="telemetry sample cadence in simulated cycles"
    )
    p_top.add_argument(
        "--refresh", type=float, default=0.2, help="minimum seconds between redraws"
    )
    p_top.add_argument(
        "--plain",
        action="store_true",
        help="append plain-text frames instead of redrawing in place",
    )
    p_top.set_defaults(func=_cmd_top)

    p_load = sub.add_parser(
        "load", help="open-loop load generation: offered rate, latency percentiles, SLO gate"
    )
    p_load.add_argument("--size", type=int, default=16)
    p_load.add_argument("--images", type=int, default=8)
    p_load.add_argument("--seed", type=int, default=0)
    p_load.add_argument(
        "--rate", type=float, default=None, help="offered arrival rate in frames per second"
    )
    p_load.add_argument(
        "--process",
        choices=["fixed", "poisson"],
        default="fixed",
        help="arrival process (poisson draws seeded exponential gaps)",
    )
    p_load.add_argument(
        "--sweep",
        type=float,
        nargs="+",
        default=None,
        metavar="FPS",
        help="sweep these offered rates and emit the latency-throughput curve as JSON",
    )
    p_load.add_argument(
        "--json", action="store_true", help="print the machine-readable result instead of text"
    )
    p_load.add_argument("--out", default=None, help="write the JSON payload to this file")
    p_load.add_argument(
        "--force", action="store_true", help="overwrite an existing --out file"
    )
    p_load.add_argument(
        "--slo-p99-cycles",
        type=int,
        default=None,
        help="exit non-zero unless p99 service latency is within this many cycles",
    )
    p_load.add_argument(
        "--max-cycles", type=int, default=50_000_000, help="abort budget in cycles"
    )
    p_load.add_argument(
        "--exhaustive",
        action="store_true",
        help="use the exhaustive reference scheduler instead of the fast path",
    )
    p_load.set_defaults(func=_cmd_load)

    p_fleet = sub.add_parser(
        "fleet",
        help="fleet-scale serving: R replicas, admission routing, shared PCIe ingress",
    )
    p_fleet.add_argument("--replicas", type=int, default=4, help="homogeneous replica count")
    p_fleet.add_argument(
        "--mix",
        default=None,
        help=(
            "heterogeneous fleet as comma-separated name[:size[:width]] specs "
            "(overrides --replicas/--network/--size/--width)"
        ),
    )
    p_fleet.add_argument("--network", choices=["vgg", "alexnet", "resnet18"], default="vgg")
    p_fleet.add_argument("--size", type=int, default=16)
    p_fleet.add_argument("--width", type=float, default=0.0625)
    p_fleet.add_argument("--images", type=int, default=16, help="total requests across the fleet")
    p_fleet.add_argument(
        "--policy",
        choices=["rr", "jsq", "batch", "static"],
        default="rr",
        help="admission policy (static pre-partitions independent Poisson streams)",
    )
    p_fleet.add_argument(
        "--policies",
        nargs="+",
        choices=["rr", "jsq", "batch", "static"],
        default=None,
        metavar="POLICY",
        help="with --sweep: emit one frontier per policy",
    )
    p_fleet.add_argument(
        "--rate",
        type=float,
        default=None,
        help="offered fleet-wide rate in FPS (default: half the profiled capacity)",
    )
    p_fleet.add_argument(
        "--sweep",
        type=float,
        nargs="*",
        default=None,
        metavar="FPS",
        help=(
            "emit per-policy latency-throughput frontiers over these rates "
            "(bare --sweep auto-brackets the profiled fleet capacity)"
        ),
    )
    p_fleet.add_argument(
        "--process",
        choices=["fixed", "poisson"],
        default="fixed",
        help="arrival process for shared-router policies",
    )
    p_fleet.add_argument("--seed", type=int, default=0)
    p_fleet.add_argument(
        "--workers",
        type=int,
        default=0,
        help="process-pool size for replica simulation (0 = serial reference path)",
    )
    p_fleet.add_argument(
        "--batch", type=int, default=4, help="batch-aware policy's re-route granularity"
    )
    p_fleet.add_argument(
        "--slo-p99-cycles",
        type=int,
        default=None,
        help="exit non-zero unless fleet p99 sojourn is within this many cycles",
    )
    p_fleet.add_argument(
        "--find-capacity",
        action="store_true",
        help="answer: how many replicas hold the --slo-p99-cycles SLO at --rate?",
    )
    p_fleet.add_argument(
        "--plan-dfes",
        action="store_true",
        help=(
            "static capacity check: min-DFE plan per replica via the partition "
            "planner; exit non-zero if the mix overflows one 8-DFE MPC-X node"
        ),
    )
    p_fleet.add_argument(
        "--fill-cap",
        type=float,
        default=0.8,
        help="with --plan-dfes: per-device resource budget fraction (default 0.8)",
    )
    p_fleet.add_argument(
        "--max-replicas",
        type=int,
        default=8,
        help="--find-capacity search ceiling (the MPC-X node holds 8 DFEs)",
    )
    p_fleet.add_argument(
        "--json", action="store_true", help="print the machine-readable report instead of text"
    )
    p_fleet.add_argument("--out", default=None, help="write the JSON payload to this file")
    p_fleet.add_argument(
        "--force", action="store_true", help="overwrite an existing --out file"
    )
    p_fleet.add_argument(
        "--max-cycles", type=int, default=50_000_000, help="per-replica abort budget in cycles"
    )
    p_fleet.set_defaults(func=_cmd_fleet)

    p_stats = sub.add_parser(
        "stats", help="bottleneck attribution report for a simulated run"
    )
    p_stats.add_argument("--network", choices=["vgg", "resnet18"], default="vgg")
    p_stats.add_argument("--size", type=int, default=16)
    p_stats.add_argument("--width", type=float, default=0.0625)
    p_stats.add_argument("--images", type=int, default=2)
    p_stats.add_argument("--seed", type=int, default=0)
    p_stats.add_argument(
        "--skip-capacity",
        type=int,
        default=None,
        help="fault injection: force every skip FIFO to this capacity",
    )
    p_stats.add_argument(
        "--max-cycles", type=int, default=10_000_000, help="abort budget in cycles"
    )
    p_stats.add_argument(
        "--exhaustive",
        action="store_true",
        help="use the exhaustive reference scheduler instead of the fast path",
    )
    p_stats.set_defaults(func=_cmd_stats)

    p_check = sub.add_parser(
        "check", help="statically verify pipelines (no cycle is simulated)"
    )
    p_check.add_argument(
        "topologies",
        nargs="*",
        help=(
            "topologies as name[:size[:width]] with name in vgg/alexnet/resnet18 "
            f"(default: {' '.join(DEFAULT_CHECK_TOPOLOGIES)})"
        ),
    )
    p_check.add_argument(
        "--multi-dfe",
        action="store_true",
        help="partition with the resource partitioner and verify link feasibility",
    )
    p_check.add_argument(
        "--plan",
        action="store_true",
        help="verify the partition planner's winner instead of the greedy --multi-dfe cut",
    )
    p_check.add_argument(
        "--fill-cap",
        type=float,
        default=0.8,
        help="with --plan: per-device resource budget fraction (default 0.8)",
    )
    p_check.add_argument(
        "--strict", action="store_true", help="exit non-zero on warnings too"
    )
    p_check.add_argument(
        "--json",
        action="store_true",
        help="emit the machine-readable repro-check/1 reports instead of text",
    )
    p_check.add_argument("--out", default=None, help="write the JSON payload to this file")
    p_check.add_argument(
        "--force", action="store_true", help="overwrite an existing --out file"
    )
    p_check.add_argument(
        "--graph-only",
        action="store_true",
        help="skip pipeline construction (graph-level checks only; cheap at paper scale)",
    )
    p_check.add_argument("--no-info", action="store_true", help="hide info-level findings")
    exact_group = p_check.add_mutually_exclusive_group()
    exact_group.add_argument(
        "--exact",
        dest="exact",
        action="store_true",
        default=None,
        help="force the exact §III-B5 skip solver (default: auto by replay budget)",
    )
    exact_group.add_argument(
        "--bound",
        dest="exact",
        action="store_false",
        help="skip the solver; use the closed-form §III-B5 bound",
    )
    p_check.set_defaults(func=_cmd_check)

    p_plan = sub.add_parser(
        "plan",
        help="static multi-DFE partition search (DP + branch-and-bound, no simulation)",
    )
    p_plan.add_argument(
        "topology",
        help="topology as name[:size[:width]] with name in vgg/alexnet/resnet18",
    )
    p_plan.add_argument(
        "--objective",
        choices=["min-dfes", "min-latency"],
        default="min-dfes",
        help=(
            "min-dfes: fewest devices under budgets/SLO; "
            "min-latency: best fill+steady latency at a fixed --dfes count"
        ),
    )
    p_plan.add_argument(
        "--dfes",
        type=int,
        default=None,
        help="device count for --objective min-latency (required there)",
    )
    p_plan.add_argument(
        "--slo-fps",
        type=float,
        default=None,
        help="minimum predicted throughput; plans below it are rejected (V704)",
    )
    p_plan.add_argument(
        "--fill-cap",
        type=float,
        default=0.8,
        help="per-device resource budget as a fraction of the FPGA (default 0.8)",
    )
    p_plan.add_argument(
        "--device", choices=["stratix5", "stratix10"], default="stratix5"
    )
    p_plan.add_argument(
        "--check",
        action="store_true",
        help="re-verify the winner with the full strict checker (exit 1 on any finding)",
    )
    p_plan.add_argument(
        "--simulate",
        action="store_true",
        help="leap-simulate the winner and assert the measured interval equals the prediction",
    )
    p_plan.add_argument(
        "--neighbors",
        action="store_true",
        help="also simulate every ±1-cut neighbor and assert none beats the winner",
    )
    p_plan.add_argument(
        "--audit", action="store_true", help="print the pruned-candidate audit trail"
    )
    p_plan.add_argument("--seed", type=int, default=0, help="--simulate image seed")
    p_plan.add_argument(
        "--json", action="store_true", help="print the repro-plan/1 JSON instead of text"
    )
    p_plan.add_argument("--out", default=None, help="write the JSON payload to this file")
    p_plan.add_argument(
        "--force", action="store_true", help="overwrite an existing --out file"
    )
    p_plan.set_defaults(func=_cmd_plan)

    p_perf = sub.add_parser(
        "perf", help="perf-regression harness: trajectory reports and the diff gate"
    )
    perf_sub = p_perf.add_subparsers(dest="perf_command", required=True)

    pp_report = perf_sub.add_parser(
        "report", help="render the full per-case cycles/s trajectory across all revisions"
    )
    pp_report.add_argument(
        "--trajectory",
        default=None,
        metavar="PATH",
        help="trajectory file (default: BENCH_streaming.json at the repo root)",
    )
    fmt = pp_report.add_mutually_exclusive_group()
    fmt.add_argument(
        "--markdown", action="store_true", help="emit markdown instead of the ANSI table"
    )
    fmt.add_argument("--html", action="store_true", help="emit a standalone HTML page")
    fmt.add_argument(
        "--json",
        action="store_true",
        help="emit the machine-readable repro-perf-trajectory/1 payload",
    )
    pp_report.add_argument("--out", default=None, help="write the report to this file")
    pp_report.add_argument(
        "--force", action="store_true", help="overwrite an existing --out file"
    )
    pp_report.set_defaults(func=_cmd_perf_report)

    pp_diff = perf_sub.add_parser(
        "diff", help="regression gate: exit non-zero naming the worst offender"
    )
    pp_diff.add_argument(
        "--baseline",
        default=None,
        metavar="PATH",
        help=(
            "baseline file: the trajectory to self-diff (default: BENCH_streaming.json), "
            "or with --report a repro-perf/1 report to diff against"
        ),
    )
    pp_diff.add_argument(
        "--report",
        default=None,
        metavar="PATH",
        help="diff this repro-perf/1 plugin report (wall time + peak RSS) against --baseline",
    )
    pp_diff.add_argument(
        "--strict",
        action="store_true",
        help="apply the 5%% quiet-machine floor (default: 40%%, or REPRO_BENCH_STRICT=1)",
    )
    pp_diff.add_argument(
        "--against",
        choices=["prev", "best"],
        default="prev",
        help="trajectory baseline per case: previous recording (default) or all-time best",
    )
    pp_diff.add_argument(
        "--json", action="store_true", help="emit the repro-perf-diff/1 payload instead of text"
    )
    pp_diff.add_argument("--out", default=None, help="write the JSON payload to this file")
    pp_diff.add_argument(
        "--force", action="store_true", help="overwrite an existing --out file"
    )
    pp_diff.set_defaults(func=_cmd_perf_diff)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
