"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``reproduce [--quick] [EXP_ID ...]``
    Regenerate the paper's tables/figures (default: all of them).
``report NETWORK [--size N] [--device stratix5|stratix10]``
    Full design report (resources / partition / timing / power / GPU
    baseline) for ``vgg``, ``alexnet`` or ``resnet18``.
``simulate [--size N] [--images M]``
    Train nothing, build a tiny random-threshold network, stream images
    through the cycle-accurate simulator and print the pipeline waterfall.
``trace [--size N] [--images M] [--out trace.json]``
    Stream a network with event tracing enabled and write the full
    cycle-exact event log as Chrome-trace JSON (load it at
    https://ui.perfetto.dev or chrome://tracing).
``list``
    List available experiment ids.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

__all__ = ["main"]


def _cmd_list(_args: argparse.Namespace) -> int:
    from .eval import EXPERIMENTS

    for exp_id in EXPERIMENTS:
        print(exp_id)
    return 0


def _cmd_reproduce(args: argparse.Namespace) -> int:
    from .eval import EXPERIMENTS, run_experiment

    exp_ids = args.experiments or list(EXPERIMENTS)
    for exp_id in exp_ids:
        result = run_experiment(exp_id, quick=args.quick)
        print(result.render())
        print()
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from .hardware import STRATIX_10_PROJECTION, STRATIX_V_5SGSD8
    from .hardware.report import build_design_report
    from .models import direct_alexnet_graph, direct_resnet18_graph, direct_vgg_graph

    device = STRATIX_10_PROJECTION if args.device == "stratix10" else STRATIX_V_5SGSD8
    if args.network == "vgg":
        graph = direct_vgg_graph(args.size or 32, pool_to=4)
    elif args.network == "alexnet":
        graph = direct_alexnet_graph(args.size or 224)
    elif args.network == "resnet18":
        graph = direct_resnet18_graph(args.size or 224)
    else:  # pragma: no cover - argparse choices guard this
        raise ValueError(args.network)
    print(build_design_report(graph, device=device).render())
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    from .dataflow import simulate
    from .dataflow.tracing import analyze_run, render_waterfall
    from .models import direct_vgg_graph

    size = args.size
    if size % 8:
        print(f"size must be divisible by 8, got {size}", file=sys.stderr)
        return 2
    graph = direct_vgg_graph(size, width=0.0625, classes=4)
    rng = np.random.default_rng(args.seed)
    images = rng.integers(0, 4, size=(args.images, size, size, 3))
    run = simulate(graph, images)
    print(
        f"{args.images} image(s) through {graph.name}: {run.cycles:,} cycles; "
        f"latency {run.latency_cycles:,}"
    )
    if args.images > 1:
        print(f"steady-state interval: {run.run.steady_state_interval:,.0f} cycles/image")
    trace = analyze_run(run.run)
    print(render_waterfall(trace))
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from .dataflow import Tracer, simulate
    from .dataflow.tracing import analyze_trace, render_waterfall
    from .models import direct_vgg_graph

    size = args.size
    if size % 8:
        print(f"size must be divisible by 8, got {size}", file=sys.stderr)
        return 2
    graph = direct_vgg_graph(size, width=0.0625, classes=4)
    rng = np.random.default_rng(args.seed)
    images = rng.integers(0, 4, size=(args.images, size, size, 3))
    tracer = Tracer()
    run = simulate(graph, images, fast=not args.exhaustive, trace=tracer)
    path = tracer.write_chrome_trace(args.out)
    print(
        f"{args.images} image(s) through {graph.name}: {run.cycles:,} cycles; "
        f"latency {run.latency_cycles:,}"
    )
    print(render_waterfall(analyze_trace(tracer)))
    print(
        f"wrote {tracer.event_count():,} events ({path.stat().st_size:,} bytes) to {path} — "
        "open in https://ui.perfetto.dev"
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Streaming QNN-on-FPGA reproduction (Baskin et al., IPPS 2018)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_list = sub.add_parser("list", help="list experiment ids")
    p_list.set_defaults(func=_cmd_list)

    p_rep = sub.add_parser("reproduce", help="regenerate paper tables/figures")
    p_rep.add_argument("experiments", nargs="*", help="experiment ids (default: all)")
    p_rep.add_argument("--quick", action="store_true", help="skip training-based rows")
    p_rep.set_defaults(func=_cmd_reproduce)

    p_report = sub.add_parser("report", help="design report for a network")
    p_report.add_argument("network", choices=["vgg", "alexnet", "resnet18"])
    p_report.add_argument("--size", type=int, default=None, help="input resolution")
    p_report.add_argument("--device", choices=["stratix5", "stratix10"], default="stratix5")
    p_report.set_defaults(func=_cmd_report)

    p_sim = sub.add_parser("simulate", help="cycle-simulate a tiny network")
    p_sim.add_argument("--size", type=int, default=16)
    p_sim.add_argument("--images", type=int, default=1)
    p_sim.add_argument("--seed", type=int, default=0)
    p_sim.set_defaults(func=_cmd_simulate)

    p_trace = sub.add_parser(
        "trace", help="cycle-simulate with event tracing and write Perfetto JSON"
    )
    p_trace.add_argument("--size", type=int, default=16)
    p_trace.add_argument("--images", type=int, default=2)
    p_trace.add_argument("--seed", type=int, default=0)
    p_trace.add_argument("--out", default="trace.json", help="output Chrome-trace path")
    p_trace.add_argument(
        "--exhaustive",
        action="store_true",
        help="trace the exhaustive reference scheduler instead of the fast path",
    )
    p_trace.set_defaults(func=_cmd_trace)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
