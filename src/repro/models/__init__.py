"""Model zoo: the three networks of the paper's evaluation."""

from .alexnet import ALEXNET_CONV_PLAN, build_alexnet
from .common import (
    ACT_D,
    INPUT_D,
    activation_level0_value,
    conv_bn_act,
    fc_bn_act,
    make_activation,
    make_input_quantizer,
    randomize_batchnorm,
)
from .direct import (
    direct_alexnet_graph,
    direct_resnet18_graph,
    direct_vgg_graph,
    random_threshold_unit,
)
from .resnet import RESNET18_STAGES, build_resnet, build_resnet18
from .vgg import build_vgg_like, vgg_channel_plan

__all__ = [
    "ALEXNET_CONV_PLAN",
    "build_alexnet",
    "ACT_D",
    "INPUT_D",
    "activation_level0_value",
    "conv_bn_act",
    "fc_bn_act",
    "make_activation",
    "make_input_quantizer",
    "randomize_batchnorm",
    "direct_alexnet_graph",
    "direct_resnet18_graph",
    "direct_vgg_graph",
    "random_threshold_unit",
    "RESNET18_STAGES",
    "build_resnet",
    "build_resnet18",
    "build_vgg_like",
    "vgg_channel_plan",
]
