"""Shared model-construction helpers and quantization conventions.

All models in the zoo use the paper's configuration: 1-bit weights, n-bit
uniform activations (n = 2 by default, n = 1 sign for the FINN-style
comparison).  Quantizer ranges are chosen dyadic so that the float training
path and the integer IR agree exactly in float64:

* input quantizer: ``lo = 0, d = 0.25`` (2-bit) — images in [0, 1);
* activation quantizer: ``lo = 0, d = 0.5`` (2-bit) — post-BatchNorm range.

Padding values are always the level-0 dequantized value of the incoming
stream, matching the hardware's level-0 injection (and the paper's −1
padding in the binary case, where level 0 *is* −1).
"""

from __future__ import annotations

import numpy as np

from ..nn.modules import (
    BatchNorm2d,
    Module,
    QActivation,
    QConv2d,
    QLinear,
    SignActivation,
)

__all__ = [
    "ACT_D",
    "INPUT_D",
    "make_input_quantizer",
    "make_activation",
    "activation_level0_value",
    "conv_bn_act",
    "fc_bn_act",
    "randomize_batchnorm",
]

ACT_D = 0.5
INPUT_D = 0.25


def make_input_quantizer(bits: int = 2) -> QActivation:
    """Host-side quantizer producing the input pixel level stream."""
    # Images are in [0, 1); cover that range with 2**bits levels.
    return QActivation(bits=bits, lo=0.0, d=1.0 / (1 << bits))


def make_activation(act_bits: int) -> Module:
    """The inter-layer activation: n-bit uniform, or sign for act_bits=1."""
    if act_bits == 1:
        return SignActivation()
    return QActivation(bits=act_bits, d=ACT_D)


def activation_level0_value(act: Module) -> float:
    """Dequantized value of level 0 — the padding value for the next conv."""
    if isinstance(act, SignActivation):
        return -1.0
    if isinstance(act, QActivation):
        q = act.quantizer
        return q.lo + (0.5 if q.midpoint else 0.0) * q.d
    raise TypeError(f"unsupported activation {type(act).__name__}")


def conv_bn_act(
    in_ch: int,
    out_ch: int,
    k: int,
    stride: int,
    pad: int,
    pad_value: float,
    act_bits: int,
    rng: np.random.Generator,
    name: str,
) -> list[Module]:
    """A convolution + BatchNorm + activation triple (one streaming kernel)."""
    return [
        QConv2d(in_ch, out_ch, k, stride=stride, pad=pad, pad_value=pad_value, rng=rng, name=name),
        BatchNorm2d(out_ch, name=f"{name}.bn"),
        make_activation(act_bits),
    ]


def fc_bn_act(
    in_features: int, out_features: int, act_bits: int, rng: np.random.Generator, name: str
) -> list[Module]:
    """A fully connected + BatchNorm + activation triple."""
    return [
        QLinear(in_features, out_features, rng=rng, name=name),
        BatchNorm2d(out_features, name=f"{name}.bn"),
        make_activation(act_bits),
    ]


def randomize_batchnorm(model: Module, rng: np.random.Generator, spread: float = 1.0) -> None:
    """Give BatchNorm layers non-trivial statistics.

    Untrained models have degenerate (identity) BatchNorm, which makes all
    thresholds identical and inference paths uninteresting; simulation and
    property tests call this to exercise threshold folding with realistic
    parameter diversity, including negative γ.
    """
    for m in model.modules():
        if isinstance(m, BatchNorm2d):
            m.running_mean = rng.normal(0.0, 2.0 * spread, m.channels)
            m.running_var = rng.uniform(0.5, 3.0, m.channels)
            m.gamma.data = rng.normal(1.0, 0.5 * spread, m.channels)
            m.beta.data = rng.normal(0.0, spread, m.channels)
