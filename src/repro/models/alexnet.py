"""Full-sized quantized AlexNet (paper §III-A).

Eight layers: five convolutions intermediated with max pooling, then three
fully connected layers feeding the 1000-way softmax.  Quantized per Hubara
et al. with 1-bit weights; the paper's headline accuracy claim is that
2-bit activations lift AlexNet top-1 from 41.8% (binary) to 51.03%.

Geometry at 224x224 (matching the paper's three-DFE implementation):
conv1 11x11/4 -> 55, pool/2 -> 27, conv2 5x5 -> 27, pool -> 13,
conv3/4/5 3x3 -> 13, pool -> 6, then FC 4096 -> 4096 -> 1000 as
full-spatial convolutions (§III-B4).

``width`` scales channels and FC features for laptop-sized instances; the
topology (and therefore every architectural property the paper measures)
is unchanged.
"""

from __future__ import annotations

import numpy as np

from ..nn.modules import Flatten, MaxPool2d, QLinear, Sequential
from .common import (
    activation_level0_value,
    conv_bn_act,
    fc_bn_act,
    make_input_quantizer,
)

__all__ = ["build_alexnet", "ALEXNET_CONV_PLAN"]

# (out_channels, kernel, stride, pad, pool_after)
ALEXNET_CONV_PLAN = [
    (96, 11, 4, 2, True),
    (256, 5, 1, 2, True),
    (384, 3, 1, 1, False),
    (384, 3, 1, 1, False),
    (256, 3, 1, 1, True),
]


def build_alexnet(
    input_size: int = 224,
    in_channels: int = 3,
    classes: int = 1000,
    act_bits: int = 2,
    input_bits: int = 2,
    width: float = 1.0,
    fc_features: int = 4096,
    seed: int = 0,
) -> Sequential:
    """Construct the trainable quantized AlexNet.

    ``input_size`` other than 224 is supported as long as the geometry
    stays valid (used by scaled-down tests).
    """
    rng = np.random.default_rng(seed)
    in_q = make_input_quantizer(input_bits)
    layers: list = [in_q]
    pad_value = activation_level0_value(in_q)
    prev = in_channels
    size = input_size
    for li, (c_out, k, s, p, pool) in enumerate(ALEXNET_CONV_PLAN):
        c = max(1, int(round(c_out * width)))
        triple = conv_bn_act(prev, c, k, s, p, pad_value, act_bits, rng, name=f"conv{li + 1}")
        layers.extend(triple)
        pad_value = activation_level0_value(triple[-1])
        prev = c
        size = (size + 2 * p - k) // s + 1
        if pool:
            layers.append(MaxPool2d(3, 2))
            size = (size - 3) // 2 + 1
        if size < 1:
            raise ValueError(f"input_size {input_size} collapses at conv{li + 1}")

    fc = max(1, int(round(fc_features * width)))
    layers.append(Flatten())
    layers.extend(fc_bn_act(size * size * prev, fc, act_bits, rng, name="fc6"))
    layers.extend(fc_bn_act(fc, fc, act_bits, rng, name="fc7"))
    layers.append(QLinear(fc, classes, rng=rng, name="fc8"))
    model = Sequential(*layers)
    model.name = f"alexnet-{input_size}" + ("-bnn" if act_bits == 1 else "")
    return model
