"""Quantized ResNet-18 per the paper's Table I.

| layer    | output size | parameters                        |
|----------|-------------|-----------------------------------|
| conv1    | 112x112     | 7x7, 64, stride 2                 |
| conv2_x  | 56x56       | 3x3 max pool /2; [3x3,64]x2 x2    |
| conv3_x  | 28x28       | [3x3,128]x2 x2 (first stride 2)   |
| conv4_x  | 14x14       | [3x3,256]x2 x2 (first stride 2)   |
| conv5_x  | 7x7         | [3x3,512]x2 x2 (first stride 2)   |
|          | 1x1         | average pool, 1000-d fc, softmax  |

Skip connections follow §III-B5: the skip path carries the non-quantized
convolution accumulators (16-bit integers); BatchNorm + activation are
applied to a copy after each residual add.  Downsampling blocks use a 1x1
stride-2 binary projection on the skip path.

``width`` and ``blocks_per_stage`` scale the network for tests (a "ResNet"
with the same block structure but laptop-sized layers).
"""

from __future__ import annotations

import numpy as np

from ..nn.modules import GlobalAvgPool, MaxPool2d, QLinear, QResidualBlock, Sequential
from .common import ACT_D, activation_level0_value, conv_bn_act, make_input_quantizer

__all__ = ["build_resnet18", "build_resnet", "RESNET18_STAGES"]

# (out_channels, blocks, first_stride) per stage — Table I.
RESNET18_STAGES = [(64, 2, 1), (128, 2, 2), (256, 2, 2), (512, 2, 2)]


def build_resnet(
    input_size: int = 224,
    in_channels: int = 3,
    classes: int = 1000,
    act_bits: int = 2,
    input_bits: int = 2,
    width: float = 1.0,
    stages: list[tuple[int, int, int]] | None = None,
    stem_kernel: int = 7,
    stem_stride: int = 2,
    stem_pool: bool = True,
    seed: int = 0,
) -> Sequential:
    """Construct a trainable quantized residual network.

    With default arguments this is ResNet-18 exactly as in Table I; the
    knobs produce smaller residual networks with identical block structure
    for tests and examples.
    """
    if act_bits == 1:
        raise ValueError(
            "residual blocks carry non-quantized sums on the skip path; the "
            "paper's ResNet uses 2-bit activations"
        )
    rng = np.random.default_rng(seed)
    stages = RESNET18_STAGES if stages is None else stages
    in_q = make_input_quantizer(input_bits)
    layers: list = [in_q]
    pad_value = activation_level0_value(in_q)

    stem_out = max(1, int(round(stages[0][0] * width)))
    stem_pad = stem_kernel // 2
    triple = conv_bn_act(
        in_channels, stem_out, stem_kernel, stem_stride, stem_pad, pad_value, act_bits, rng, "conv1"
    )
    layers.extend(triple)
    act_pad_value = activation_level0_value(triple[-1])
    if stem_pool:
        # Table I: 3x3 max pool, stride 2 (pad 1 keeps the 56x56 output size).
        layers.append(MaxPool2d(3, 2, pad=1, pad_value=act_pad_value))

    prev = stem_out
    for si, (c_out, blocks, first_stride) in enumerate(stages):
        c = max(1, int(round(c_out * width)))
        for bi in range(blocks):
            stride = first_stride if bi == 0 else 1
            block = QResidualBlock(
                prev, c, stride=stride, bits=act_bits, act_d=ACT_D, rng=rng,
                name=f"conv{si + 2}_{bi + 1}",
            )
            # Block convolutions pad with the level-0 value of the 2-bit
            # activation stream feeding them.
            block.conv1.pad_value = act_pad_value
            block.conv2.pad_value = act_pad_value
            layers.append(block)
            prev = c

    layers.append(GlobalAvgPool())
    layers.append(QLinear(prev, classes, rng=rng, name="fc"))
    model = Sequential(*layers)
    model.name = f"resnet-{input_size}"
    return model


def build_resnet18(
    input_size: int = 224, classes: int = 1000, act_bits: int = 2, seed: int = 0
) -> Sequential:
    """The paper's full ResNet-18 (Table I)."""
    model = build_resnet(input_size=input_size, classes=classes, act_bits=act_bits, seed=seed)
    model.name = f"resnet18-{input_size}"
    return model
