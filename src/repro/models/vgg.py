"""The VGG-like CNN of the paper's small-input evaluations.

"The VGG-like CNN consisted of three blocks of two convolutions and one
pooling layer, and three FC layers at the end" — the topology Umuroglu et
al. (FINN) proposed, which the paper reuses for CIFAR-10 (32x32), STL-10
(96x96 / resized 144x144) and its input-size scalability sweep (Figure 6).

Convolutions are 3x3, padded, with channel plan (64, 128, 256) doubled
within each block's pair; FC layers are 512 -> 512 -> classes.  A ``width``
multiplier scales every channel count for laptop-sized tests while keeping
the exact topology.
"""

from __future__ import annotations

import numpy as np

from ..nn.modules import Flatten, MaxPool2d, QLinear, Sequential
from .common import (
    activation_level0_value,
    conv_bn_act,
    fc_bn_act,
    make_input_quantizer,
)

__all__ = ["build_vgg_like", "vgg_channel_plan"]


def vgg_channel_plan(width: float = 1.0) -> list[int]:
    """Per-block output channels of the VGG-like network, scaled by ``width``."""
    return [max(1, int(round(c * width))) for c in (64, 128, 256)]


def build_vgg_like(
    input_size: int = 32,
    in_channels: int = 3,
    classes: int = 10,
    act_bits: int = 2,
    input_bits: int = 2,
    width: float = 1.0,
    fc_features: int = 512,
    pool_to: int | None = None,
    seed: int = 0,
) -> Sequential:
    """Construct the (trainable) VGG-like QNN.

    Parameters
    ----------
    input_size:
        Square input resolution; must be divisible by 8 (three 2x2 pools).
    act_bits:
        Activation bit width: 2 for the paper's configuration, 1 for the
        FINN-style binary-activation variant of Table IV.
    width:
        Channel multiplier (1.0 = paper size; small fractions for tests).
    pool_to:
        If set, pool the final conv feature map down to ``pool_to x
        pool_to`` before the FC stage so the FC geometry is independent of
        input size.  This is required to reproduce Figure 6's ≈5% resource
        growth: with FC consuming the full feature map, resources would
        grow quadratically with input size.
    """
    if input_size % 8 != 0:
        raise ValueError(f"input_size must be divisible by 8, got {input_size}")
    rng = np.random.default_rng(seed)
    chans = vgg_channel_plan(width)
    fc = max(1, int(round(fc_features * width)))

    in_q = make_input_quantizer(input_bits)
    layers: list = [in_q]
    pad_value = activation_level0_value(in_q)
    prev = in_channels
    for bi, c in enumerate(chans):
        for ci in range(2):
            triple = conv_bn_act(
                prev, c, 3, 1, 1, pad_value, act_bits, rng, name=f"conv{bi + 1}_{ci + 1}"
            )
            layers.extend(triple)
            pad_value = activation_level0_value(triple[-1])
            prev = c
        layers.append(MaxPool2d(2))
    feat = input_size // 8
    if pool_to is not None and feat > pool_to:
        stride = feat // pool_to
        k = feat - (pool_to - 1) * stride
        layers.append(MaxPool2d(k, stride))
        feat = pool_to

    layers.append(Flatten())
    layers.extend(fc_bn_act(feat * feat * prev, fc, act_bits, rng, name="fc1"))
    layers.extend(fc_bn_act(fc, fc, act_bits, rng, name="fc2"))
    layers.append(QLinear(fc, classes, rng=rng, name="fc3"))
    model = Sequential(*layers)
    model.name = f"vgg-like-{input_size}" + ("-bnn" if act_bits == 1 else "")
    return model
