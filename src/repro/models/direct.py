"""Direct IR builders: construct LayerGraphs without a float training model.

The exporter path (`build_* -> export_model`) is the semantically faithful
route and is used wherever outputs matter.  For *cost* studies — resource
utilisation, timing, power, partitioning across a sweep of input sizes —
only the graph structure matters, and building float shadow weights for a
224x224 VGG (an ~800 MB tensor for its first FC layer) is pure waste.
These builders create the identical topologies with random ±1 ``int8``
weights and random valid threshold units, two orders of magnitude lighter.

Structural equality with the exporter route is covered by tests (same node
kinds, shapes, and specs for matching configurations).
"""

from __future__ import annotations

import numpy as np

from ..nn.graph import (
    AddNode,
    ConvNode,
    GlobalAvgSumNode,
    InputNode,
    LayerGraph,
    MaxPoolNode,
    ThresholdNode,
)
from ..quantization.thresholds import ThresholdUnit
from .alexnet import ALEXNET_CONV_PLAN
from .resnet import RESNET18_STAGES
from .vgg import vgg_channel_plan

__all__ = ["random_threshold_unit", "direct_vgg_graph", "direct_alexnet_graph", "direct_resnet18_graph"]


def random_threshold_unit(rng: np.random.Generator, channels: int, bits: int) -> ThresholdUnit:
    """A valid, diverse threshold unit (random τ, step of either sign)."""
    tau = rng.normal(0.0, 5.0, channels)
    step = rng.uniform(0.5, 3.0, channels) * rng.choice([-1.0, 1.0], channels)
    return ThresholdUnit(
        tau=tau,
        step=step,
        slope_sign=np.sign(step).astype(np.int64),
        const_level=np.zeros(channels, dtype=np.int64),
        bits=bits,
    )


def _signs(rng: np.random.Generator, shape: tuple[int, ...]) -> np.ndarray:
    return (rng.integers(0, 2, size=shape, dtype=np.int8) * 2 - 1).astype(np.int8)


def direct_vgg_graph(
    input_size: int = 32,
    in_channels: int = 3,
    classes: int = 10,
    act_bits: int = 2,
    input_bits: int = 2,
    width: float = 1.0,
    fc_features: int = 512,
    pool_to: int | None = None,
    seed: int = 0,
) -> LayerGraph:
    """The VGG-like network as a bare IR graph (see build_vgg_like)."""
    if input_size % 8 != 0:
        raise ValueError(f"input_size must be divisible by 8, got {input_size}")
    rng = np.random.default_rng(seed)
    chans = vgg_channel_plan(width)
    fc = max(1, int(round(fc_features * width)))
    g = LayerGraph(name=f"vgg-like-{input_size}-direct")
    g.add(InputNode("input", input_size, input_size, in_channels, input_bits))
    prev_name = "input"
    prev = in_channels
    idx = 0
    for bi, c in enumerate(chans):
        for ci in range(2):
            idx += 1
            node = ConvNode(
                f"conv{bi + 1}_{ci + 1}",
                _signs(rng, (3, 3, prev, c)),
                stride=1,
                pad=1,
                threshold=random_threshold_unit(rng, c, act_bits),
            )
            g.add(node, [prev_name])
            prev_name, prev = node.name, c
        pool = MaxPoolNode(f"pool{bi + 1}", 2)
        g.add(pool, [prev_name])
        prev_name = pool.name
    feat = input_size // 8
    if pool_to is not None and feat > pool_to:
        stride = feat // pool_to
        k = feat - (pool_to - 1) * stride
        pnode = MaxPoolNode("pool_fc", k, stride)
        g.add(pnode, [prev_name])
        prev_name = pnode.name
        feat = pool_to
    for fi, out in enumerate([fc, fc]):
        k = feat if fi == 0 else 1
        node = ConvNode(
            f"fc{fi + 1}",
            _signs(rng, (k, k, prev, out)),
            threshold=random_threshold_unit(rng, out, act_bits),
        )
        g.add(node, [prev_name])
        prev_name, prev = node.name, out
    head = ConvNode("fc3", _signs(rng, (1, 1, prev, classes)))
    g.add(head, [prev_name])
    g.validate()
    return g


def direct_alexnet_graph(
    input_size: int = 224,
    in_channels: int = 3,
    classes: int = 1000,
    act_bits: int = 2,
    input_bits: int = 2,
    width: float = 1.0,
    fc_features: int = 4096,
    seed: int = 0,
) -> LayerGraph:
    """AlexNet as a bare IR graph."""
    rng = np.random.default_rng(seed)
    g = LayerGraph(name=f"alexnet-{input_size}-direct")
    g.add(InputNode("input", input_size, input_size, in_channels, input_bits))
    prev_name, prev, size = "input", in_channels, input_size
    for li, (c_out, k, s, p, pool) in enumerate(ALEXNET_CONV_PLAN):
        c = max(1, int(round(c_out * width)))
        node = ConvNode(
            f"conv{li + 1}",
            _signs(rng, (k, k, prev, c)),
            stride=s,
            pad=p,
            threshold=random_threshold_unit(rng, c, act_bits),
        )
        g.add(node, [prev_name])
        prev_name, prev = node.name, c
        size = (size + 2 * p - k) // s + 1
        if pool:
            pnode = MaxPoolNode(f"pool{li + 1}", 3, 2)
            g.add(pnode, [prev_name])
            prev_name = pnode.name
            size = (size - 3) // 2 + 1
    fc = max(1, int(round(fc_features * width)))
    for fi, out in enumerate([fc, fc]):
        k = size if fi == 0 else 1
        node = ConvNode(
            f"fc{fi + 6}",
            _signs(rng, (k, k, prev, out)),
            threshold=random_threshold_unit(rng, out, act_bits),
        )
        g.add(node, [prev_name])
        prev_name, prev = node.name, out
    g.add(ConvNode("fc8", _signs(rng, (1, 1, prev, classes))), [prev_name])
    g.validate()
    return g


def direct_resnet18_graph(
    input_size: int = 224,
    in_channels: int = 3,
    classes: int = 1000,
    act_bits: int = 2,
    input_bits: int = 2,
    width: float = 1.0,
    stages: list[tuple[int, int, int]] | None = None,
    seed: int = 0,
) -> LayerGraph:
    """ResNet-18 (Table I) as a bare IR graph with explicit skip structure."""
    rng = np.random.default_rng(seed)
    stages = RESNET18_STAGES if stages is None else stages
    g = LayerGraph(name=f"resnet18-{input_size}-direct")
    g.add(InputNode("input", input_size, input_size, in_channels, input_bits))
    stem_out = max(1, int(round(stages[0][0] * width)))
    stem = ConvNode(
        "conv1",
        _signs(rng, (7, 7, in_channels, stem_out)),
        stride=2,
        pad=3,
        threshold=random_threshold_unit(rng, stem_out, act_bits),
    )
    g.add(stem, ["input"])
    pool = MaxPoolNode("maxpool", 3, 2, pad=1)
    g.add(pool, ["conv1"])
    prev_name, prev = "maxpool", stem_out

    for si, (c_out, blocks, first_stride) in enumerate(stages):
        c = max(1, int(round(c_out * width)))
        for bi in range(blocks):
            stride = first_stride if bi == 0 else 1
            tag = f"conv{si + 2}_{bi + 1}"
            c1 = ConvNode(f"{tag}.conv1", _signs(rng, (3, 3, prev, c)), stride=stride, pad=1)
            g.add(c1, [prev_name])
            if stride != 1 or prev != c:
                proj = ConvNode(f"{tag}.proj", _signs(rng, (1, 1, prev, c)), stride=stride)
                g.add(proj, [prev_name])
                identity = proj.name
            else:
                identity = prev_name
            add1 = AddNode(f"{tag}.add1")
            g.add(add1, [c1.name, identity])
            th1 = ThresholdNode(f"{tag}.bnact1", random_threshold_unit(rng, c, act_bits))
            g.add(th1, [add1.name])
            c2 = ConvNode(f"{tag}.conv2", _signs(rng, (3, 3, c, c)), stride=1, pad=1)
            g.add(c2, [th1.name])
            add2 = AddNode(f"{tag}.add2")
            g.add(add2, [c2.name, add1.name])
            th2 = ThresholdNode(f"{tag}.bnact2", random_threshold_unit(rng, c, act_bits))
            g.add(th2, [add2.name])
            prev_name, prev = th2.name, c

    g.add(GlobalAvgSumNode("avgpool"), [prev_name])
    g.add(ConvNode("fc", _signs(rng, (1, 1, prev, classes))), ["avgpool"])
    g.validate()
    return g
