"""The streaming convolution kernel (paper Figure 3, §III-B1).

Behaviour per clock cycle, exactly as the paper describes:

* the kernel scans the (padded) input grid depth-first, consuming one
  stream element per cycle; at padding positions it "stops the input stream
  and inputs padding values into the buffer instead";
* every time the shift-register window completes at a valid output position
  (stride-aligned, inside the border), the kernel **halts the input** and
  emits one output pixel per clock until all ``O`` filters have been applied
  at this position;
* positions that produce no output (borders, stride-skipped pixels) consume
  input without an emit phase — the source of the ~13x first-layer speedup
  the paper reports for stride 4;
* the XNOR-popcount dot product, BatchNorm and activation all happen inside
  the kernel's pipeline and cost no extra cycles (they add pipeline depth,
  not initiation-interval cycles).

Fully connected layers reuse this kernel with ``K`` equal to the feature
map size (§III-B4).
"""

from __future__ import annotations

from collections import deque

import numpy as np

from ..dataflow.kernel import Kernel
from ..dataflow.window import ScanWindow, depth_first_buffer_elements
from ..nn.graph import ConvNode, TensorSpec

__all__ = ["ConvKernel"]


class ConvKernel(Kernel):
    """Streaming convolution of one IR :class:`ConvNode`.

    Parameters
    ----------
    name:
        Kernel name (usually the IR node name).
    node:
        The convolution node carrying ±1 weights, stride/pad and the
        optional fused threshold unit.
    in_spec:
        Input tensor spec (unpadded).
    use_bitops:
        Compute each output position through the packed XNOR/AND-popcount
        route instead of a dense ±1 matmul.  Bit-identical; slower in
        NumPy, faithful to the hardware datapath.
    """

    def __init__(
        self, name: str, node: ConvNode, in_spec: TensorSpec, use_bitops: bool = False
    ) -> None:
        super().__init__(name)
        self.node = node
        self.in_spec = in_spec
        self.k = node.kernel_size
        self.stride = node.stride
        self.pad = node.pad
        self.hp = in_spec.height + 2 * node.pad
        self.wp = in_spec.width + 2 * node.pad
        self.channels = in_spec.channels
        self.out_channels = node.out_channels
        self.use_bitops = use_bitops
        self._wmat = node.weights.reshape(-1, node.out_channels).astype(np.int64)
        self._window = ScanWindow(self.hp, self.wp, self.channels, self.k)
        self._pending: deque[int] = deque()
        self.images_done = 0
        # Parameter-fetch cost (paper: weights + normalization parameters are
        # streamed in depth-first once, before inference starts).
        self.param_load_cycles = node.weight_count // max(1, self.k * self.k * self.channels) + (
            node.out_channels if node.threshold is not None else 0
        )

    # -- geometry ------------------------------------------------------
    def _is_pad(self, r: int, c: int) -> bool:
        p = self.pad
        return r < p or r >= self.hp - p or c < p or c >= self.wp - p

    def _is_valid_position(self, r: int, c: int) -> bool:
        return (r - (self.k - 1)) % self.stride == 0 and (c - (self.k - 1)) % self.stride == 0

    def hardware_buffer_elements(self) -> int:
        """Shift-register footprint: ``I·L·(K−1) + I·K`` over the padded line."""
        return depth_first_buffer_elements(self.wp, self.channels, self.k)

    def expected_cycles_per_image(self) -> int:
        """Closed-form per-image cycles: scan elements + per-position emits.

        This is the quantity the paper's §IV-B4 "theoretical estimation of
        the number of clocks per picture" sums over layers; the cycle
        simulator is tested to match it exactly in steady state.
        """
        scan = self.hp * self.wp * self.channels
        n_out_r = (self.hp - self.k) // self.stride + 1
        n_out_c = (self.wp - self.k) // self.stride + 1
        return scan + n_out_r * n_out_c * self.out_channels

    # -- per-position math ----------------------------------------------
    def _compute_outputs(self, window: np.ndarray) -> list[int]:
        vec = window.reshape(-1)
        if self.use_bitops:
            acc = self._accumulate_bitpacked(vec)
        else:
            acc = vec @ self._wmat
        if self.node.threshold is not None:
            acc = self.node.threshold.apply(acc.astype(np.float64), channel_axis=-1)
        return [int(v) for v in acc]

    def _accumulate_bitpacked(self, vec: np.ndarray) -> np.ndarray:
        from ..quantization.bitops import bitplane_gemm, pack_bitplanes

        planes = pack_bitplanes(vec[None, :], self.in_spec.bits)
        return bitplane_gemm(self.node.packed_weights().words, planes)[0]

    # -- cycle behaviour --------------------------------------------------
    def tick(self, cycle: int) -> None:
        out = self.outputs[0]
        if self._pending:
            # Emit phase: input halted, one output pixel (channel) per clock.
            if out.push(self._pending[0], cycle):
                self._pending.popleft()
                self.stats.mark_active(cycle)
                self.stats.elements_out += 1
                if not self._pending and self._window.done:
                    self._finish_image()
            else:
                self._blocked(cycle)
            return

        if self._window.done:
            self._finish_image()

        r, c, _ = self._window.position
        if self._is_pad(r, c):
            self._feed(self.node.pad_level, cycle)
            return
        inp = self.inputs[0]
        if inp.can_pop(cycle):
            value = inp.pop(cycle)
            self.stats.elements_in += 1
            self._feed(value, cycle)
        else:
            self._starved(cycle)

    def _feed(self, value: int, cycle: int) -> None:
        completed = self._window.feed(value)
        self.stats.mark_active(cycle)
        if completed is not None:
            r, c, window = completed
            if self._is_valid_position(r, c):
                self._pending.extend(self._compute_outputs(window))
        if self._window.done and not self._pending:
            self._finish_image()

    def _finish_image(self) -> None:
        self.images_done += 1
        self._window.reset()

    def reset(self) -> None:
        super().reset()
        self._window.reset()
        self._pending.clear()
        self.images_done = 0
