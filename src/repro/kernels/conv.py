"""The streaming convolution kernel (paper Figure 3, §III-B1).

Behaviour per clock cycle, exactly as the paper describes:

* the kernel scans the (padded) input grid depth-first, consuming one
  stream element per cycle; at padding positions it "stops the input stream
  and inputs padding values into the buffer instead";
* every time the shift-register window completes at a valid output position
  (stride-aligned, inside the border), the kernel **halts the input** and
  emits one output pixel per clock until all ``O`` filters have been applied
  at this position;
* positions that produce no output (borders, stride-skipped pixels) consume
  input without an emit phase — the source of the ~13x first-layer speedup
  the paper reports for stride 4;
* the XNOR-popcount dot product, BatchNorm and activation all happen inside
  the kernel's pipeline and cost no extra cycles (they add pipeline depth,
  not initiation-interval cycles).

Fully connected layers reuse this kernel with ``K`` equal to the feature
map size (§III-B4).
"""

from __future__ import annotations

from collections import deque

import numpy as np

from ..dataflow.kernel import Kernel
from ..dataflow.window import ScanWindow, depth_first_buffer_elements
from ..nn.graph import ConvNode, TensorSpec

__all__ = ["ConvKernel"]


class ConvKernel(Kernel):
    """Streaming convolution of one IR :class:`ConvNode`.

    Parameters
    ----------
    name:
        Kernel name (usually the IR node name).
    node:
        The convolution node carrying ±1 weights, stride/pad and the
        optional fused threshold unit.
    in_spec:
        Input tensor spec (unpadded).
    use_bitops:
        Compute each output position through the packed XNOR/AND-popcount
        route instead of a dense ±1 matmul.  Bit-identical; slower in
        NumPy, faithful to the hardware datapath.
    """

    blocked_rejects_output = True
    supports_leap = True
    leap_counters = ("images_done",)

    def __init__(
        self, name: str, node: ConvNode, in_spec: TensorSpec, use_bitops: bool = False
    ) -> None:
        super().__init__(name)
        self.node = node
        self.in_spec = in_spec
        self.k = node.kernel_size
        self.stride = node.stride
        self.pad = node.pad
        self.hp = in_spec.height + 2 * node.pad
        self.wp = in_spec.width + 2 * node.pad
        self.channels = in_spec.channels
        self.out_channels = node.out_channels
        self.use_bitops = use_bitops
        self._wmat = node.weights.reshape(-1, node.out_channels).astype(np.int64)
        # Float64 weight matrix routes the per-window GEMM through BLAS; all
        # magnitudes stay far below 2**53, so the product is exact.
        self._wmat_f = self._wmat.astype(np.float64)
        # Bitops operands hoisted out of the per-position path: the packed
        # weight words, activation bit width, and a reusable plane-packing
        # buffer sized to the window vector (tail bits stay zero).
        self._in_bits = in_spec.bits
        if use_bitops:
            self._packed_words = node.packed_weights().words
            n_taps = self.k * self.k * self.channels
            n_words = (n_taps + 63) // 64
            self._pack_buf = np.zeros((self._in_bits, n_words * 64), dtype=np.uint8)
            self._plane_shifts = np.arange(self._in_bits, dtype=np.int64)[:, None]
        else:
            self._packed_words = None
        # Fused-threshold tables, precomputed once (the paper's
        # normalization cache): per-output-channel endpoints, slope signs
        # and constant levels for the vectorized comparison cascade.
        if node.threshold is not None:
            unit = node.threshold
            ends = unit.endpoints()  # (O, 2**n - 1)
            sign = np.asarray(unit.slope_sign)
            # Fold the slope sign into the endpoints so one >= comparison
            # covers both polarities: count(acc <= e) == count(-acc >= -e).
            sv = np.where(sign < 0, -1.0, 1.0)
            self._th_ends = ends * sv[:, None]
            self._th_sv = sv
            self._th_is_const = sign == 0
            self._th_const = np.asarray(unit.const_level)
        else:
            self._th_ends = None
        self._window = ScanWindow(self.hp, self.wp, self.channels, self.k)
        self._pending: deque[int] = deque()
        self.images_done = 0
        self._pad_value = int(node.pad_level)
        # Per-pixel geometry tables: padding membership and emit validity,
        # indexed by the scan pixel ``r * wp + c``.
        self._pad_px = [
            self._is_pad(r, c) for r in range(self.hp) for c in range(self.wp)
        ]
        self._valid_px = [
            self._is_valid_position(r, c) for r in range(self.hp) for c in range(self.wp)
        ]
        # Parameter-fetch cost (paper: weights + normalization parameters are
        # streamed in depth-first once, before inference starts).
        self.param_load_cycles = node.weight_count // max(1, self.k * self.k * self.channels) + (
            node.out_channels if node.threshold is not None else 0
        )

    # -- geometry ------------------------------------------------------
    def _is_pad(self, r: int, c: int) -> bool:
        p = self.pad
        return r < p or r >= self.hp - p or c < p or c >= self.wp - p

    def _is_valid_position(self, r: int, c: int) -> bool:
        return (r - (self.k - 1)) % self.stride == 0 and (c - (self.k - 1)) % self.stride == 0

    def hardware_buffer_elements(self) -> int:
        """Shift-register footprint: ``I·L·(K−1) + I·K`` over the padded line."""
        return depth_first_buffer_elements(self.wp, self.channels, self.k)

    def expected_cycles_per_image(self) -> int:
        """Closed-form per-image cycles: scan elements + per-position emits.

        This is the quantity the paper's §IV-B4 "theoretical estimation of
        the number of clocks per picture" sums over layers; the cycle
        simulator is tested to match it exactly in steady state.
        """
        scan = self.hp * self.wp * self.channels
        n_out_r = (self.hp - self.k) // self.stride + 1
        n_out_c = (self.wp - self.k) // self.stride + 1
        return scan + n_out_r * n_out_c * self.out_channels

    # -- per-position math ----------------------------------------------
    def _compute_outputs(self, window: np.ndarray) -> list[int]:
        """All ``O`` filter outputs of one completed window, as one batch.

        One GEMM (or one bitplane GEMM in bitops mode) plus one vectorized
        threshold pass replaces the per-filter loop; the results are then
        replayed onto the output stream one element per clock, so cycle
        accounting is untouched.
        """
        if self.use_bitops:
            acc = self._accumulate_bitpacked(window.reshape(-1))
            acc_f = acc.astype(np.float64)
        else:
            acc_f = window.reshape(-1).astype(np.float64) @ self._wmat_f
        ends = self._th_ends
        if ends is None:
            return acc_f.astype(np.int64).tolist()
        # Vectorized equivalent of ThresholdUnit.apply for a (O,) vector:
        # the level is the count of sign-folded endpoints at-or-below the
        # accumulator, constant level where the slope is zero.
        out = ((acc_f * self._th_sv)[:, None] >= ends).sum(axis=-1, dtype=np.int64)
        out = np.where(self._th_is_const, self._th_const, out)
        return out.tolist()

    def leap_phase(self, cycle: int) -> tuple[int, ...]:
        # Scan position and emit backlog fully determine the next tick's
        # control flow; window *contents* are data and never steer it.
        return (self._window._pos, len(self._pending))

    def batch_compute(self, x: np.ndarray) -> np.ndarray:
        """All output pixels of a batch of images as one blocked GEMM.

        ``x`` is ``(N, H, W, C)`` level-space int64; the result is
        ``(N, Ho, Wo, O)``.  The W-windows × N-images im2col matrix goes
        through the same float64 weight matrix and vectorized threshold
        cascade as the streaming per-window path — every product and sum is
        an exact integer far below 2**53, so the batched result is
        bit-identical regardless of BLAS blocking (and to the bitops route,
        a tested property).  The leap scheduler uses this to synthesize the
        outputs of images whose cycles it fast-forwarded over.
        """
        n = x.shape[0]
        k, stride = self.k, self.stride
        grid = np.full((n, self.hp, self.wp, self.channels), float(self._pad_value))
        p = self.pad
        grid[:, p : self.hp - p, p : self.wp - p, :] = x
        n_out_r = (self.hp - k) // stride + 1
        n_out_c = (self.wp - k) // stride + 1
        # One (C_in, O) GEMM per window tap, accumulated over the k*k taps:
        # im2col would gather the same data into one giant matrix, but the
        # strided 6D copy dwarfs the GEMM itself at batch scale.  The weight
        # matrix unflattens back to (k, k, C, O) — the ScanWindow tap order.
        taps = self._wmat_f.reshape(k, k, self.channels, self.out_channels)
        acc = np.zeros((n, n_out_r, n_out_c, self.out_channels))
        for dr in range(k):
            for dc in range(k):
                rows = grid[:, dr : dr + (n_out_r - 1) * stride + 1 : stride,
                            dc : dc + (n_out_c - 1) * stride + 1 : stride, :]
                acc += rows @ taps[dr, dc]
        ends = self._th_ends
        if ends is None:
            out = acc.astype(np.int64)
        else:
            out = ((acc * self._th_sv)[..., None] >= ends).sum(axis=-1, dtype=np.int64)
            out = np.where(self._th_is_const, self._th_const, out)
        return out

    def _accumulate_bitpacked(self, vec: np.ndarray) -> np.ndarray:
        """One AND-popcount GEMM for a single window vector.

        Equivalent to ``bitplane_gemm(packed_weights, pack_bitplanes(vec))``
        but packs into a reusable buffer and skips the (1, O, W) broadcast
        shape, since the conv hot loop always computes one position.
        """
        buf = self._pack_buf
        buf[:, : vec.shape[0]] = (vec >> self._plane_shifts) & 1
        planes = np.packbits(buf, axis=-1, bitorder="little").view(np.uint64)
        w_words = self._packed_words
        acc = None
        for b in range(self._in_bits):
            plane = planes[b]
            and_pc = np.bitwise_count(w_words & plane).sum(axis=-1, dtype=np.int64)
            mask_pc = int(np.bitwise_count(plane).sum())
            term = (2 * and_pc - mask_pc) << b
            acc = term if acc is None else acc + term
        return acc

    # -- cycle behaviour --------------------------------------------------
    def tick(self, cycle: int) -> None:
        pending = self._pending
        if pending:
            # Emit phase: input halted, one output pixel (channel) per clock.
            if self.outputs[0].push(pending[0], cycle):
                pending.popleft()
                stats = self.stats
                stats.active_cycles += 1
                if stats.first_active_cycle is None:
                    stats.first_active_cycle = cycle
                stats.last_active_cycle = cycle
                stats.elements_out += 1
                window = self._window
                if not pending and window._pos >= window._total:
                    self._finish_image()
                return None
            return self._blocked(cycle)

        window = self._window
        if window._pos >= window._total:
            self._finish_image()

        if self._pad_px[window._pixel]:
            self._feed(self._pad_value, cycle)
            return
        inp = self.inputs[0]
        fifo = inp._fifo
        if fifo and fifo[0][1] <= cycle:
            value = inp.pop(cycle)
            self.stats.elements_in += 1
            self._feed(value, cycle)
        else:
            return self._starved(cycle)

    def _feed(self, value: int, cycle: int) -> None:
        window = self._window
        completed = window.feed(value)
        stats = self.stats
        stats.active_cycles += 1
        if stats.first_active_cycle is None:
            stats.first_active_cycle = cycle
        stats.last_active_cycle = cycle
        if completed is not None:
            r, c, win = completed
            if self._valid_px[r * self.wp + c]:
                self._pending.extend(self._compute_outputs(win))
        if window._pos >= window._total and not self._pending:
            self._finish_image()

    def _finish_image(self) -> None:
        self.images_done += 1
        self._window.reset()

    def reset(self) -> None:
        super().reset()
        self._window.reset()
        self._pending.clear()
        self.images_done = 0
