"""Global average pooling as a streaming integer reduction.

ResNet-18's final pooling (the only non-max pooling in the paper's
networks) is exported as an exact integer *sum* per channel; the divisor is
folded into the output affine.  The kernel consumes the whole feature map
(one element per cycle) and then drains one channel sum per cycle.
"""

from __future__ import annotations

import numpy as np

from ..dataflow.kernel import Kernel
from ..nn.graph import TensorSpec

__all__ = ["GlobalAvgSumKernel"]


class GlobalAvgSumKernel(Kernel):
    """Per-channel integer sum over the full spatial extent."""

    blocked_rejects_output = True
    supports_leap = True
    leap_counters = ("images_done",)

    def __init__(self, name: str, in_spec: TensorSpec) -> None:
        super().__init__(name)
        self.channels = in_spec.channels
        self._per_image = in_spec.elements
        self._sums = [0] * self.channels
        self._count = 0
        self._emit_chan: int | None = None
        self.images_done = 0

    def expected_cycles_per_image(self) -> int:
        """Consume every element, then drain the C channel sums."""
        return self._per_image + self.channels

    def leap_phase(self, cycle: int) -> tuple[int, ...]:
        return (self._count, -1 if self._emit_chan is None else self._emit_chan)

    def batch_compute(self, x: np.ndarray) -> np.ndarray:
        """Batched exact integer channel sums, ``(N, H, W, C)`` -> ``(N, 1, 1, C)``."""
        return x.sum(axis=(1, 2), keepdims=True, dtype=np.int64)

    def tick(self, cycle: int) -> None:
        out = self.outputs[0]
        if self._emit_chan is not None:
            if out.push(self._sums[self._emit_chan], cycle):
                self.stats.elements_out += 1
                self.stats.mark_active(cycle)
                self._emit_chan += 1
                if self._emit_chan >= self.channels:
                    self._emit_chan = None
                    self._sums = [0] * self.channels
                    self.images_done += 1
                return None
            return self._blocked(cycle)
        inp = self.inputs[0]
        fifo = inp._fifo
        if not (fifo and fifo[0][1] <= cycle):
            return self._starved(cycle)
        value = inp.pop(cycle)
        self.stats.elements_in += 1
        self._sums[self._count % self.channels] += value
        self._count += 1
        self.stats.mark_active(cycle)
        if self._count >= self._per_image:
            self._count = 0
            self._emit_chan = 0

    def reset(self) -> None:
        super().reset()
        self._sums = [0] * self.channels
        self._count = 0
        self._emit_chan = None
        self.images_done = 0
