"""Element-wise streaming kernels: the residual adder and the stream fork.

The paper's skip-connection infrastructure (§III-B5, Figure 2) is exactly
these two pieces plus a delay buffer: the convolution output is *forked*
into the regular path and the skip path, and a later *adder* sums the
delayed skip stream with the next convolution's output.  "The addition of a
skip connection requires a minimal amount of resources — one adder and the
buffer."
"""

from __future__ import annotations

import numpy as np

from ..dataflow.kernel import Kernel

__all__ = ["AddKernel", "ForkKernel"]


class AddKernel(Kernel):
    """Sum two integer streams element-wise (the residual adder).

    Consumes one element from each input when both are available and the
    output has space; the skip path carries 16-bit integers in hardware.
    """

    supports_leap = True
    leap_counters = ("images_done",)

    def __init__(self, name: str, per_image_elements: int) -> None:
        super().__init__(name)
        self._per_image = per_image_elements
        self._count = 0
        self.images_done = 0

    def expected_cycles_per_image(self) -> int:
        return self._per_image

    def leap_phase(self, cycle: int) -> tuple[int, ...]:
        return (self._count,)

    def batch_compute(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Batched functional residual add over ``(N, H, W, C)`` tensors."""
        return a + b

    def tick(self, cycle: int) -> None:
        a, b = self.inputs
        fa, fb = a._fifo, b._fifo
        if not (fa and fa[0][1] <= cycle and fb and fb[0][1] <= cycle):
            return self._starved(cycle)
        out = self.outputs[0]
        if len(out._fifo) >= out.capacity:
            return self._blocked(cycle)
        va = a.pop(cycle)
        vb = b.pop(cycle)
        stats = self.stats
        stats.elements_in += 2
        out.push(va + vb, cycle)
        stats.elements_out += 1
        stats.active_cycles += 1
        if stats.first_active_cycle is None:
            stats.first_active_cycle = cycle
        stats.last_active_cycle = cycle
        self._count += 1
        if self._count >= self._per_image:
            self._count = 0
            self.images_done += 1

    def reset(self) -> None:
        super().reset()
        self._count = 0
        self.images_done = 0


class ForkKernel(Kernel):
    """Duplicate a stream to N consumers (the skip-path split of Figure 2).

    An element advances only when *every* output has space — a wire fork
    has no storage of its own.
    """

    supports_leap = True
    leap_counters = ("images_done",)

    def __init__(self, name: str, per_image_elements: int) -> None:
        super().__init__(name)
        self._per_image = per_image_elements
        self._count = 0
        self.images_done = 0

    def expected_cycles_per_image(self) -> int:
        return self._per_image

    def leap_phase(self, cycle: int) -> tuple[int, ...]:
        return (self._count,)

    def tick(self, cycle: int) -> None:
        inp = self.inputs[0]
        fifo = inp._fifo
        if not (fifo and fifo[0][1] <= cycle):
            return self._starved(cycle)
        outputs = self.outputs
        for o in outputs:
            if len(o._fifo) >= o.capacity:
                return self._blocked(cycle)
        value = inp.pop(cycle)
        stats = self.stats
        stats.elements_in += 1
        for o in outputs:
            o.push(value, cycle)
        stats.elements_out += len(outputs)
        stats.active_cycles += 1
        if stats.first_active_cycle is None:
            stats.first_active_cycle = cycle
        stats.last_active_cycle = cycle
        self._count += 1
        if self._count >= self._per_image:
            self._count = 0
            self.images_done += 1

    def reset(self) -> None:
        super().reset()
        self._count = 0
        self.images_done = 0
