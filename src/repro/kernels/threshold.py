"""Standalone BatchNorm + activation threshold kernel (§III-B3).

In the common case the threshold unit is fused into the convolution kernel
(no extra cycles).  After a residual add, however, BatchNorm + activation
run as their own streaming stage: one element in, one level out per clock,
evaluated as the paper describes — a comparison cascade (binary search)
over the ``2**n − 1`` pre-computed endpoints of the element's channel.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right

import numpy as np

from ..dataflow.kernel import Kernel
from ..nn.graph import TensorSpec, ThresholdNode

__all__ = ["ThresholdKernel"]


class ThresholdKernel(Kernel):
    """Streaming fused BatchNorm + n-bit activation."""

    supports_leap = True
    leap_counters = ("images_done",)

    def __init__(self, name: str, node: ThresholdNode, in_spec: TensorSpec) -> None:
        super().__init__(name)
        self.unit = node.unit
        self.channels = in_spec.channels
        if self.unit.channels != self.channels:
            raise ValueError(f"{name}: threshold channels != stream channels")
        # Pre-compute per-channel endpoint tables once (the normalization
        # cache of the paper: two parameters per channel, expanded here).
        ends = self.unit.endpoints()
        self._endpoints: list[np.ndarray] = [np.asarray(ends[c]) for c in range(self.channels)]
        self._signs = [int(s) for s in self.unit.slope_sign]
        self._const = [int(v) for v in self.unit.const_level]
        # Ascending per-channel endpoint lists for the hot path: plain
        # Python bisect beats an np.searchsorted call per element by ~5x.
        # Negative-slope channels store the reversed (ascending) endpoints.
        self._asc: list[list[float]] = [
            ends[c][::-1].tolist() if self._signs[c] < 0 else ends[c].tolist()
            for c in range(self.channels)
        ]
        self._n_ends = ends.shape[1]
        self._chan = 0
        self.images_done = 0
        self._count = 0
        self._per_image = in_spec.elements

    def expected_cycles_per_image(self) -> int:
        return self._per_image

    def leap_phase(self, cycle: int) -> tuple[int, ...]:
        return (self._chan, self._count)

    def batch_compute(self, x: np.ndarray) -> np.ndarray:
        """Batched threshold pass over ``(N, H, W, C)``, one searchsorted per channel.

        Mirrors the per-element bisect of :meth:`tick` exactly — bisect_right
        on ascending endpoints for positive slopes, the reversed left-search
        count for negative ones, the constant level where the slope is zero.
        """
        out = np.empty(x.shape, dtype=np.int64)
        for c in range(self.channels):
            v = x[..., c]
            sign = self._signs[c]
            if sign == 0:
                out[..., c] = self._const[c]
            elif sign > 0:
                out[..., c] = np.searchsorted(self._asc[c], v, side="right")
            else:
                out[..., c] = self._n_ends - np.searchsorted(self._asc[c], v, side="left")
        return out

    def _level(self, value: float, chan: int) -> int:
        sign = self._signs[chan]
        if sign == 0:
            return self._const[chan]
        ends = self._endpoints[chan]
        # Binary search over the (monotone in alpha) endpoints.
        if sign > 0:
            return int(np.searchsorted(ends, value, side="right"))
        rev = ends[::-1]
        return len(ends) - int(np.searchsorted(rev, value, side="left"))

    def tick(self, cycle: int) -> None:
        inp = self.inputs[0]
        out = self.outputs[0]
        fifo = inp._fifo
        if not (fifo and fifo[0][1] <= cycle):
            return self._starved(cycle)
        if len(out._fifo) >= out.capacity:
            return self._blocked(cycle)
        value = inp.pop(cycle)
        chan = self._chan
        sign = self._signs[chan]
        if sign == 0:
            level = self._const[chan]
        elif sign > 0:
            level = bisect_right(self._asc[chan], value)
        else:
            level = self._n_ends - bisect_left(self._asc[chan], value)
        out.push(level, cycle)
        stats = self.stats
        stats.elements_in += 1
        stats.elements_out += 1
        stats.active_cycles += 1
        if stats.first_active_cycle is None:
            stats.first_active_cycle = cycle
        stats.last_active_cycle = cycle
        self._chan = chan + 1 if chan + 1 < self.channels else 0
        self._count += 1
        if self._count >= self._per_image:
            self._count = 0
            self.images_done += 1

    def reset(self) -> None:
        super().reset()
        self._chan = 0
        self._count = 0
        self.images_done = 0
