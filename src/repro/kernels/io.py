"""Host-side source and sink kernels (the CPU ends of the PCIe streams).

The paper keeps all pre-trained parameters on the CPU and streams images in
"directly from the CPU" (unlike FINN, which stores inputs on-chip); results
stream back for the CPU-side softmax/readout.  :class:`HostSource` replays
a batch of images as a depth-first element stream; :class:`HostSink`
reassembles output tensors and records per-image completion cycles — the
measurement point for latency, throughput and initiation-interval claims.
"""

from __future__ import annotations

import numpy as np

from ..dataflow.kernel import Kernel
from ..nn.graph import TensorSpec

__all__ = ["HostSource", "HostSink"]


class HostSource(Kernel):
    """Streams a batch of images into the first on-fabric kernel.

    Each image's *admission cycle* — the cycle its first element entered the
    fabric — is stamped into :attr:`admission_cycles`, giving every image
    the ingest end of its lifecycle span (the sink records the completion
    end).  An optional ``arrival_cycles`` schedule turns the source into an
    **open-loop** load generator: image *i* is withheld until its arrival
    cycle, modelling requests landing at the host at a target rate instead
    of back-to-back.  The gap between arrival and admission is the
    host-queue wait (backpressure from a saturated pipeline shows up here
    first).  While waiting for a future arrival the source parks idle with a
    self-scheduled wake at exactly that cycle, so the fast scheduler skips
    the gap and the idle accounting stays bit-identical to the exhaustive
    loop.
    """

    blocked_rejects_output = True
    leap_counters = ("_pos", "_boundary")
    leap_cycle_lists = ("admission_cycles",)

    def __init__(
        self,
        name: str,
        images: np.ndarray,
        spec: TensorSpec,
        arrival_cycles: list[int] | None = None,
    ) -> None:
        super().__init__(name)
        images = np.asarray(images)
        if images.ndim == 3:
            images = images[None]
        expected = (spec.height, spec.width, spec.channels)
        if images.shape[1:] != expected:
            raise ValueError(f"images shape {images.shape[1:]} != input spec {expected}")
        self.n_images = images.shape[0]
        # Depth-first flattening: row, column, channel — C order of HWC.
        # Stored as plain Python ints: the per-cycle push path then never
        # touches numpy scalars.
        self._flat = images.reshape(-1).astype(np.int64).tolist()
        self._n = len(self._flat)
        self._per_image = spec.elements
        self._pos = 0
        # Position of the next image boundary: pos == _boundary means the
        # next element pushed is the first element of image len(admission_cycles).
        self._boundary = 0
        self.admission_cycles: list[int] = []
        if arrival_cycles is not None:
            arrival_cycles = [int(c) for c in arrival_cycles]
            if len(arrival_cycles) != self.n_images:
                raise ValueError(
                    f"arrival schedule has {len(arrival_cycles)} entries "
                    f"for {self.n_images} image(s)"
                )
            if any(c < 0 for c in arrival_cycles):
                raise ValueError("arrival cycles must be >= 0")
            if any(b < a for a, b in zip(arrival_cycles, arrival_cycles[1:])):
                raise ValueError("arrival cycles must be non-decreasing")
        self.arrival_cycles = arrival_cycles
        # An open-loop source's behaviour depends on the absolute arrival
        # schedule, which a leaped clock would skip over — the leap
        # scheduler must fall back to the plain fast path (tested property).
        self.supports_leap = arrival_cycles is None

    @property
    def done(self) -> bool:
        return self._pos >= self._n

    def leap_phase(self, cycle: int) -> tuple[int, ...]:
        # Position within the current image (drives boundary marks) plus a
        # wet/dry flag: a drained source idles where a wet one pushes, so
        # the two states must never compare equal.
        return (self._boundary - self._pos, int(self._pos < self._n))

    def leap_images_left(self) -> int:
        """Whole images not yet begun — the leap scheduler's admission budget."""
        return (self._n - self._pos) // self._per_image

    def arrived_count(self, cycle: int) -> int:
        """Images available at the host by ``cycle`` (all of them closed-loop)."""
        if self.arrival_cycles is None:
            return self.n_images
        count = 0
        for arrival in self.arrival_cycles:
            if arrival <= cycle:
                count += 1
            else:
                break
        return count

    def tick(self, cycle: int) -> int | None:
        pos = self._pos
        if pos >= self._n:
            return self._idle(cycle)
        at_boundary = pos == self._boundary
        if at_boundary and self.arrival_cycles is not None:
            arrival = self.arrival_cycles[len(self.admission_cycles)]
            if cycle < arrival:
                # The next image has not arrived yet: idle until it does.
                self._wake_hint = arrival
                return self._idle(cycle)
        if self.outputs[0].push(self._flat[pos], cycle):
            if at_boundary:
                self.admission_cycles.append(cycle)
                self._boundary += self._per_image
                tracer = self._tracer
                if tracer is not None:
                    tracer.on_image_admitted(len(self.admission_cycles) - 1, cycle)
            self._pos = pos + 1
            stats = self.stats
            stats.elements_out += 1
            stats.active_cycles += 1
            if stats.first_active_cycle is None:
                stats.first_active_cycle = cycle
            stats.last_active_cycle = cycle
            return None
        else:
            return self._blocked(cycle)

    def reset(self) -> None:
        super().reset()
        self._pos = 0
        self._boundary = 0
        self.admission_cycles = []


class HostSink(Kernel):
    """Collects the output stream and reassembles per-image tensors."""

    supports_leap = True
    leap_counters = ("_pos",)
    leap_cycle_lists = ("completion_cycles",)
    leap_value_lists = ("_values",)

    def __init__(self, name: str, spec: TensorSpec, n_images: int) -> None:
        super().__init__(name)
        self.spec = spec
        self.n_images = n_images
        self._per_image = spec.elements
        self._total = n_images * self._per_image
        self._values: list[int] = []
        self._pos = 0
        self.completion_cycles: list[int] = []

    @property
    def done(self) -> bool:
        return self._pos >= self._total

    def leap_phase(self, cycle: int) -> tuple[int, ...]:
        return (self._pos % self._per_image,)

    def tick(self, cycle: int) -> None:
        pos = self._pos
        if pos >= self._total:
            return self._idle(cycle)
        inp = self.inputs[0]
        fifo = inp._fifo
        if not (fifo and fifo[0][1] <= cycle):
            return self._starved(cycle)
        self._values.append(inp.pop(cycle))
        pos += 1
        self._pos = pos
        stats = self.stats
        stats.elements_in += 1
        stats.active_cycles += 1
        if stats.first_active_cycle is None:
            stats.first_active_cycle = cycle
        stats.last_active_cycle = cycle
        if pos % self._per_image == 0:
            self.completion_cycles.append(cycle)
            tracer = self._tracer
            if tracer is not None:
                tracer.on_image_complete(len(self.completion_cycles) - 1, cycle)

    def output_tensor(self) -> np.ndarray:
        """The collected outputs, shape (N, H, W, C)."""
        if not self.done:
            raise RuntimeError(f"sink {self.name!r}: only {self._pos}/{self._total} elements received")
        return np.asarray(self._values, dtype=np.int64).reshape(
            self.n_images, self.spec.height, self.spec.width, self.spec.channels
        )

    def reset(self) -> None:
        super().reset()
        self._values = []
        self._pos = 0
        self.completion_cycles = []
