"""Host-side source and sink kernels (the CPU ends of the PCIe streams).

The paper keeps all pre-trained parameters on the CPU and streams images in
"directly from the CPU" (unlike FINN, which stores inputs on-chip); results
stream back for the CPU-side softmax/readout.  :class:`HostSource` replays
a batch of images as a depth-first element stream; :class:`HostSink`
reassembles output tensors and records per-image completion cycles — the
measurement point for latency, throughput and initiation-interval claims.
"""

from __future__ import annotations

import numpy as np

from ..dataflow.kernel import Kernel
from ..nn.graph import TensorSpec

__all__ = ["HostSource", "HostSink"]


class HostSource(Kernel):
    """Streams a batch of images into the first on-fabric kernel."""

    blocked_rejects_output = True

    def __init__(self, name: str, images: np.ndarray, spec: TensorSpec) -> None:
        super().__init__(name)
        images = np.asarray(images)
        if images.ndim == 3:
            images = images[None]
        expected = (spec.height, spec.width, spec.channels)
        if images.shape[1:] != expected:
            raise ValueError(f"images shape {images.shape[1:]} != input spec {expected}")
        self.n_images = images.shape[0]
        # Depth-first flattening: row, column, channel — C order of HWC.
        # Stored as plain Python ints: the per-cycle push path then never
        # touches numpy scalars.
        self._flat = images.reshape(-1).astype(np.int64).tolist()
        self._n = len(self._flat)
        self._pos = 0

    @property
    def done(self) -> bool:
        return self._pos >= self._n

    def tick(self, cycle: int) -> None:
        pos = self._pos
        if pos >= self._n:
            return self._idle(cycle)
        if self.outputs[0].push(self._flat[pos], cycle):
            self._pos = pos + 1
            stats = self.stats
            stats.elements_out += 1
            stats.active_cycles += 1
            if stats.first_active_cycle is None:
                stats.first_active_cycle = cycle
            stats.last_active_cycle = cycle
        else:
            return self._blocked(cycle)

    def reset(self) -> None:
        super().reset()
        self._pos = 0


class HostSink(Kernel):
    """Collects the output stream and reassembles per-image tensors."""

    def __init__(self, name: str, spec: TensorSpec, n_images: int) -> None:
        super().__init__(name)
        self.spec = spec
        self.n_images = n_images
        self._per_image = spec.elements
        self._total = n_images * self._per_image
        self._values: list[int] = []
        self._pos = 0
        self.completion_cycles: list[int] = []

    @property
    def done(self) -> bool:
        return self._pos >= self._total

    def tick(self, cycle: int) -> None:
        pos = self._pos
        if pos >= self._total:
            return self._idle(cycle)
        inp = self.inputs[0]
        fifo = inp._fifo
        if not (fifo and fifo[0][1] <= cycle):
            return self._starved(cycle)
        self._values.append(inp.pop(cycle))
        pos += 1
        self._pos = pos
        stats = self.stats
        stats.elements_in += 1
        stats.active_cycles += 1
        if stats.first_active_cycle is None:
            stats.first_active_cycle = cycle
        stats.last_active_cycle = cycle
        if pos % self._per_image == 0:
            self.completion_cycles.append(cycle)
            tracer = self._tracer
            if tracer is not None:
                tracer.on_image_complete(len(self.completion_cycles) - 1, cycle)

    def output_tensor(self) -> np.ndarray:
        """The collected outputs, shape (N, H, W, C)."""
        if not self.done:
            raise RuntimeError(f"sink {self.name!r}: only {self._pos}/{self._total} elements received")
        return np.asarray(self._values, dtype=np.int64).reshape(
            self.n_images, self.spec.height, self.spec.width, self.spec.channels
        )

    def reset(self) -> None:
        super().reset()
        self._values = []
        self._pos = 0
        self.completion_cycles = []
