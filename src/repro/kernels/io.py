"""Host-side source and sink kernels (the CPU ends of the PCIe streams).

The paper keeps all pre-trained parameters on the CPU and streams images in
"directly from the CPU" (unlike FINN, which stores inputs on-chip); results
stream back for the CPU-side softmax/readout.  :class:`HostSource` replays
a batch of images as a depth-first element stream; :class:`HostSink`
reassembles output tensors and records per-image completion cycles — the
measurement point for latency, throughput and initiation-interval claims.
"""

from __future__ import annotations

import numpy as np

from ..dataflow.kernel import Kernel
from ..nn.graph import TensorSpec

__all__ = ["HostSource", "HostSink"]


class HostSource(Kernel):
    """Streams a batch of images into the first on-fabric kernel."""

    def __init__(self, name: str, images: np.ndarray, spec: TensorSpec) -> None:
        super().__init__(name)
        images = np.asarray(images)
        if images.ndim == 3:
            images = images[None]
        expected = (spec.height, spec.width, spec.channels)
        if images.shape[1:] != expected:
            raise ValueError(f"images shape {images.shape[1:]} != input spec {expected}")
        self.n_images = images.shape[0]
        # Depth-first flattening: row, column, channel — C order of HWC.
        self._flat = images.reshape(-1).astype(np.int64)
        self._pos = 0

    @property
    def done(self) -> bool:
        return self._pos >= self._flat.size

    def tick(self, cycle: int) -> None:
        if self.done:
            self._idle(cycle)
            return
        out = self.outputs[0]
        if out.push(int(self._flat[self._pos]), cycle):
            self._pos += 1
            self.stats.elements_out += 1
            self.stats.mark_active(cycle)
        else:
            self._blocked(cycle)

    def reset(self) -> None:
        super().reset()
        self._pos = 0


class HostSink(Kernel):
    """Collects the output stream and reassembles per-image tensors."""

    def __init__(self, name: str, spec: TensorSpec, n_images: int) -> None:
        super().__init__(name)
        self.spec = spec
        self.n_images = n_images
        self._per_image = spec.elements
        self._values = np.zeros(n_images * self._per_image, dtype=np.int64)
        self._pos = 0
        self.completion_cycles: list[int] = []

    @property
    def done(self) -> bool:
        return self._pos >= self._values.size

    def tick(self, cycle: int) -> None:
        if self.done:
            self._idle(cycle)
            return
        inp = self.inputs[0]
        if not inp.can_pop(cycle):
            self._starved(cycle)
            return
        self._values[self._pos] = inp.pop(cycle)
        self._pos += 1
        self.stats.elements_in += 1
        self.stats.mark_active(cycle)
        if self._pos % self._per_image == 0:
            self.completion_cycles.append(cycle)

    def output_tensor(self) -> np.ndarray:
        """The collected outputs, shape (N, H, W, C)."""
        if not self.done:
            raise RuntimeError(f"sink {self.name!r}: only {self._pos}/{self._values.size} elements received")
        return self._values.reshape(
            self.n_images, self.spec.height, self.spec.width, self.spec.channels
        )

    def reset(self) -> None:
        super().reset()
        self._values.fill(0)
        self._pos = 0
        self.completion_cycles = []
